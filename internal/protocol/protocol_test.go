package protocol

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/fn"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/solve"
)

func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

func TestConvergesOnIncreasingAlgebra(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(3))
		out := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: r})
		if !out.Converged {
			t.Fatalf("trial %d: increasing algebra must converge", trial)
		}
		// The quiescent state is a stable (locally optimal) routing.
		res := outcomeToResult(out, g)
		if ok, why := solve.VerifyLocal(a, g, 0, 0, res); !ok {
			t.Fatalf("trial %d: quiescent state not stable: %s", trial, why)
		}
	}
}

func TestMatchesBellmanFordWeightsOnMonotoneIncreasing(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(9))
	g := graph.Random(r, 8, 0.35, graph.UniformLabels(3))
	out := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 2, Rand: r})
	bf := solve.BellmanFord(a, g, 0, 0, 0)
	if !out.Converged || !bf.Converged {
		t.Fatal("both must converge")
	}
	for u := 0; u < g.N; u++ {
		if out.Routed[u] != bf.Routed[u] {
			t.Fatalf("node %d routedness differs", u)
		}
		if out.Routed[u] && !a.Ord.Equiv(out.Weights[u], bf.Weights[u]) {
			// For M ∧ I algebras both converge to the unique local
			// optimum, which is also global.
			t.Fatalf("node %d: %v vs %v", u, out.Weights[u], bf.Weights[u])
		}
	}
}

// TestBadGadgetDiverges reproduces persistent route oscillation [16]:
// the SPP gadget algebra filters paths so that each node permits exactly
// its direct route and the route via its clockwise neighbour, preferring
// the latter. No stable routing exists, so the protocol can never
// quiesce — it runs until the step budget is exhausted.
func TestBadGadgetDiverges(t *testing.T) {
	a := alg(t, "gadget")
	// Label 0 = direct arc, label 1 = via-neighbour arc.
	g, _ := graph.BadGadgetArcs()
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		out := Run(a, g, Config{Dest: 0, Origin: 0, MaxSteps: 3000, MaxDelay: 2, Rand: r})
		if out.Converged {
			t.Fatalf("seed %d: BAD GADGET must not converge, but quiesced after %d steps:\n%s",
				seed, out.Steps, out.Describe())
		}
	}
}

// TestGadgetAlgebraRejectsLongPaths: the SPP gadget algebra filters any
// path other than (i,0) and (i,i+1,0) to ⊤.
func TestGadgetAlgebraRejectsLongPaths(t *testing.T) {
	a := alg(t, "gadget")
	direct, _ := a.F.ByName("direct")
	via, _ := a.F.ByName("via")
	// (3,1,2,0): via∘via∘direct applied to the origin 0.
	w := a.PathWeight([]fn.Fn{via, via, direct}, 0)
	if w != 3 {
		t.Fatalf("three-hop path must be filtered to ⊤: got %v", w)
	}
	if a.PathWeight([]fn.Fn{via, direct}, 0) != 1 {
		t.Fatal("(i,i+1,0) must get the preferred weight 1")
	}
	if a.PathWeight([]fn.Fn{direct}, 0) != 2 {
		t.Fatal("(i,0) must get the fallback weight 2")
	}
}

// TestGoodGadgetConverges: the same topology with satisfiable preferences
// (every node prefers its direct route) quiesces immediately.
func TestGoodGadgetConverges(t *testing.T) {
	a := alg(t, "lp(2)")
	g := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 2}, {From: 2, To: 0, Label: 2}, {From: 3, To: 0, Label: 2},
		{From: 1, To: 2, Label: 1}, {From: 2, To: 3, Label: 1}, {From: 3, To: 1, Label: 1},
	})
	r := rand.New(rand.NewSource(1))
	out := Run(a, g, Config{Dest: 0, Origin: 2, MaxDelay: 2, Rand: r})
	if !out.Converged {
		t.Fatalf("good gadget must converge:\n%s", out.Describe())
	}
	for u := 1; u <= 3; u++ {
		if !out.Routed[u] || out.Weights[u] != 2 {
			t.Fatalf("node %d must hold its preferred direct route: %s", u, out.Describe())
		}
	}
}

// TestLoopRejection: advertised paths never contain the receiving node,
// and final paths are loop-free.
func TestLoopRejection(t *testing.T) {
	a := alg(t, "delay(64,2)")
	r := rand.New(rand.NewSource(4))
	g := graph.Ring(r, 6, graph.UniformLabels(2))
	out := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 4, Rand: r})
	if !out.Converged {
		t.Fatal("ring with delay must converge")
	}
	for u, p := range out.Paths {
		if !out.Routed[u] {
			continue
		}
		seen := map[int]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("node %d: path %v has a loop", u, p)
			}
			seen[n] = true
		}
		if p[0] != u || p[len(p)-1] != 0 {
			t.Fatalf("node %d: path %v malformed", u, p)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := alg(t, "delay(64,3)")
	g := graph.Random(rand.New(rand.NewSource(2)), 7, 0.3, graph.UniformLabels(3))
	run := func(seed int64) *Outcome {
		return Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: rand.New(rand.NewSource(seed))})
	}
	a1, a2 := run(5), run(5)
	if a1.Steps != a2.Steps {
		t.Fatal("same seed must give identical runs")
	}
	for u := range a1.Weights {
		if a1.Routed[u] != a2.Routed[u] || (a1.Routed[u] && a1.Weights[u] != a2.Weights[u]) {
			t.Fatal("same seed must give identical state")
		}
	}
}

func TestRequiresRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rand")
		}
	}()
	a := alg(t, "delay(4,1)")
	Run(a, graph.GoodGadget(), Config{Dest: 0, Origin: 0})
}

// outcomeToResult adapts a protocol outcome to the solve.Result shape so
// the stability verifier can inspect it.
func outcomeToResult(out *Outcome, g *graph.Graph) *solve.Result {
	res := &solve.Result{
		Dest:    0,
		Routed:  out.Routed,
		Weights: out.Weights,
		NextHop: make([]int, g.N),
	}
	for u := range res.NextHop {
		res.NextHop[u] = -1
		if out.Routed[u] && len(out.Paths[u]) > 1 {
			res.NextHop[u] = out.Paths[u][1]
		}
	}
	return res
}
