package protocol

import (
	"math/rand"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/graph"
)

// TestConfigValidate (satellite): malformed configurations produce
// descriptive errors from Validate, and RunEngine surfaces the same text
// as a documented panic instead of an index panic from deep inside the
// simulator.
func TestConfigValidate(t *testing.T) {
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 0}, {From: 2, To: 1, Label: 0}})
	r := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"valid", Config{Dest: 0, Origin: 0, Rand: r()}, ""},
		{"nil rand", Config{Dest: 0, Origin: 0}, "Rand is required"},
		{"per-node delays need no rand", Config{Dest: 0, Origin: 0, PerNodeDelays: true, Seed: 1}, ""},
		{"max rounds valid", Config{Dest: 0, Origin: 0, Rand: r(), MaxRounds: 5}, ""},
		{"max rounds negative", Config{Dest: 0, Origin: 0, Rand: r(), MaxRounds: -1}, "MaxRounds -1"},
		{"negative dest", Config{Dest: -1, Origin: 0, Rand: r()}, "destination -1 out of range"},
		{"dest too large", Config{Dest: 3, Origin: 0, Rand: r()}, "destination 3 out of range"},
		{"negative delay", Config{Dest: 0, Origin: 0, Rand: r(), MaxDelay: -2}, "MaxDelay -2"},
		{"event arc too large", Config{Dest: 0, Origin: 0, Rand: r(),
			Events: []LinkEvent{{At: 10, Arc: 2, Fail: true}}}, "references arc 2"},
		{"event arc negative", Config{Dest: 0, Origin: 0, Rand: r(),
			Events: []LinkEvent{{At: 10, Arc: -1, Fail: true}}}, "references arc -1"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(g)
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunEnginePanicsDescriptively: the documented panic carries the
// Validate error text.
func TestRunEnginePanicsDescriptively(t *testing.T) {
	a, err := core.InferString("delay(8,2)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(2, []graph.Arc{{From: 1, To: 0, Label: 0}})
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "destination 7 out of range") {
			t.Fatalf("want descriptive panic, got %v", msg)
		}
	}()
	Run(a.OT, g, Config{Dest: 7, Origin: 0, Rand: rand.New(rand.NewSource(1))})
}
