// Package validate turns convergence theory into executable checks.
//
// Daggitt–Griffin (PAPERS.md) prove that distributed Bellman–Ford over a
// strictly-increasing routing algebra quiesces within a bounded number of
// asynchronous rounds, and that non-increasing gadget algebras admit
// schedules that never quiesce. This package runs both directions of the
// theorem against the simulator: a Case pairs an algebra expression and
// topology with an Expectation (quiesce within the round bound, or keep
// oscillating past a generous multiple of it), Check executes it on the
// serial or parallel engine, and RunCorpus sweeps a scenario corpus (flap
// storms, node churn, partition/heal over GNP/ring/grid/ScaleFree
// topologies) with convergence telemetry. The property gate is checked
// first: a Case whose Expectation disagrees with the inferred I status is
// an error, not a failure — the harness validates the theory, it does not
// second-guess the inference engine.
package validate

import (
	"context"
	"fmt"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// RoundBound is the Daggitt–Griffin asynchronous-round bound for a
// strictly-increasing algebra on n nodes: the path-vector iteration is
// an n²-step contraction in the worst case (n candidate path lengths ×
// n activation orders), so any fair schedule quiesces within n² rounds
// of the last topology change. It is deliberately loose — the corpus
// asserts an upper bound from theory, not a performance target.
func RoundBound(n int) int { return n * n }

// OscFactor is the default oscillation cutoff multiplier: a
// non-increasing case must still be busy after OscFactor× the round
// bound a strictly-increasing algebra would be held to.
const OscFactor = 4

// Expectation is the theory-predicted behaviour of a Case.
type Expectation int

const (
	// ExpectQuiesce: strictly increasing ⇒ convergence within
	// Epochs × RoundBound(n) asynchronous rounds.
	ExpectQuiesce Expectation = iota
	// ExpectOscillate: non-increasing gadget ⇒ still oscillating when
	// the round cutoff (OscFactor × bound) fires.
	ExpectOscillate
)

func (e Expectation) String() string {
	if e == ExpectOscillate {
		return "oscillate"
	}
	return "quiesce"
}

// MarshalJSON emits the expectation as its name — corpus results are
// read by humans and grep, not round-tripped.
func (e Expectation) MarshalJSON() ([]byte, error) {
	return []byte(`"` + e.String() + `"`), nil
}

// Case is one corpus entry: an algebra, a topology, a schedule of
// topology events, and the behaviour theory predicts for them.
type Case struct {
	// Name identifies the case in results and telemetry.
	Name string
	// Expr is the algebra expression, compiled through the inference
	// engine so the property gate sees the derived I status.
	Expr string
	// Graph is the topology; Dest the destination node.
	Graph *graph.Graph
	Dest  int
	// Origin is the originated weight; nil means the algebra's
	// DefaultOrigin.
	Origin value.V
	// Events is the topology-change schedule.
	Events []protocol.LinkEvent
	// Seed drives the per-node delay streams (Config.PerNodeDelays).
	Seed int64
	// Expect is the theory prediction being validated.
	Expect Expectation
	// MaxSteps overrides the simulator's message budget (0 = default).
	MaxSteps int
}

// Epochs counts the reconvergence epochs of the case: the initial
// origination plus one per distinct event time. The round bound applies
// per epoch (theory bounds rounds since the *last* topology change), so
// the whole-run budget is Epochs × RoundBound(n).
func (c *Case) Epochs() int {
	seen := make(map[int64]bool, len(c.Events))
	for _, ev := range c.Events {
		seen[ev.At] = true
	}
	return 1 + len(seen)
}

// Bound is the whole-run round budget for the case.
func (c *Case) Bound() int { return c.Epochs() * RoundBound(c.Graph.N) }

// Result records one executed Case.
type Result struct {
	Case   string
	Expect Expectation
	// Pass is the verdict; Detail explains a failure.
	Pass   bool
	Detail string
	// Converged, Rounds, Steps, TotalFlaps, QuiescedAt summarize the
	// simulator Outcome; Bound is the round budget the run was held to.
	Converged  bool
	Rounds     int
	Bound      int
	Steps      int
	TotalFlaps int
	QuiescedAt int64
}

// Check compiles and executes one Case. With p non-nil the parallel
// engine runs it; otherwise the serial oracle does. The returned error
// covers infrastructure problems (bad expression, expectation
// contradicting the inferred property); a theory violation is reported
// through Result.Pass so a corpus sweep can collect every failure.
func Check(ctx context.Context, p *protocol.Parallel, c Case) (*Result, error) {
	a, err := core.InferString(c.Expr)
	if err != nil {
		return nil, fmt.Errorf("validate %s: %v", c.Name, err)
	}
	increasing := a.Props.Holds(prop.ILeft)
	switch c.Expect {
	case ExpectQuiesce:
		if !increasing {
			return nil, fmt.Errorf("validate %s: expects quiescence but %q is not strictly increasing (I=%v)",
				c.Name, c.Expr, a.Props.Status(prop.ILeft))
		}
	case ExpectOscillate:
		if increasing {
			return nil, fmt.Errorf("validate %s: expects oscillation but %q is strictly increasing — theory forbids it",
				c.Name, c.Expr)
		}
	}
	origin := c.Origin
	if origin == nil {
		origin = a.OT.DefaultOrigin()
	}
	bound := c.Bound()
	cfg := protocol.Config{
		Dest: c.Dest, Origin: origin, MaxDelay: 3,
		PerNodeDelays: true, Seed: c.Seed,
		Events: c.Events, MaxSteps: c.MaxSteps,
	}
	if c.Expect == ExpectOscillate {
		// The cutoff is what ends an oscillating run; make it generous
		// enough that quiescence had every chance to happen first.
		cfg.MaxRounds = OscFactor * bound
	}
	var out *protocol.Outcome
	if p != nil {
		out, err = p.Run(ctx, exec.For(a.OT, origin), c.Graph, cfg)
		if err != nil {
			return nil, fmt.Errorf("validate %s: %v", c.Name, err)
		}
	} else {
		out = protocol.Run(a.OT, c.Graph, cfg)
	}
	r := &Result{
		Case: c.Name, Expect: c.Expect, Bound: bound,
		Converged: out.Converged, Rounds: out.Convergence.Rounds,
		Steps: out.Steps, TotalFlaps: out.Convergence.TotalFlaps,
		QuiescedAt: out.Convergence.QuiescedAt,
	}
	switch c.Expect {
	case ExpectQuiesce:
		switch {
		case !out.Converged:
			r.Detail = fmt.Sprintf("did not quiesce within %d messages (%d rounds)", out.Steps, r.Rounds)
		case r.Rounds > bound:
			r.Detail = fmt.Sprintf("quiesced but took %d rounds, bound is %d", r.Rounds, bound)
		default:
			r.Pass = true
		}
	case ExpectOscillate:
		switch {
		case out.Converged:
			r.Detail = fmt.Sprintf("quiesced after %d rounds despite non-increasing algebra", r.Rounds)
		case r.Rounds < cfg.MaxRounds:
			// The run stopped for some other reason (step budget) before
			// the round cutoff — that is not evidence of oscillation.
			r.Detail = fmt.Sprintf("stopped at %d rounds before the %d-round cutoff (step budget?)", r.Rounds, cfg.MaxRounds)
		default:
			r.Pass = true
		}
	}
	return r, nil
}

// RunCorpus executes every case, optionally publishing convergence
// telemetry (time-to-quiescence, flap counts, message totals) to reg.
// It stops early only on infrastructure errors; theory violations are
// collected in the returned results.
func RunCorpus(ctx context.Context, p *protocol.Parallel, cases []Case, reg *telemetry.Registry) ([]Result, error) {
	var (
		quiesceTime = telemetry.NewHistogram([]int64{10, 50, 100, 500, 1000, 5000, 10000, 50000})
		flaps       = telemetry.NewHistogram([]int64{1, 10, 50, 100, 500, 1000, 5000})
		messages    = telemetry.NewHistogram([]int64{100, 1000, 10000, 100000, 1000000})
		pass, fail  telemetry.Counter
	)
	if reg != nil {
		reg.AddHistogram("validate_quiescence_time", "simulated time to quiescence per converged case", quiesceTime, 1)
		reg.AddHistogram("validate_flaps", "best-route changes per case", flaps, 1)
		reg.AddHistogram("validate_messages", "delivered messages per case", messages, 1)
		reg.AddCounter("validate_cases_pass", "corpus cases matching theory", &pass)
		reg.AddCounter("validate_cases_fail", "corpus cases violating theory", &fail)
	}
	results := make([]Result, 0, len(cases))
	for _, c := range cases {
		r, err := Check(ctx, p, c)
		if err != nil {
			return results, err
		}
		if r.Converged {
			quiesceTime.Observe(r.QuiescedAt)
		}
		flaps.Observe(int64(r.TotalFlaps))
		messages.Observe(int64(r.Steps))
		if r.Pass {
			pass.Inc()
		} else {
			fail.Inc()
		}
		results = append(results, *r)
	}
	return results, nil
}

// Failures filters results down to theory violations.
func Failures(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}
