package validate

import (
	"fmt"
	"math/rand"

	"metarouting/internal/graph"
	"metarouting/internal/protocol"
)

// FlapStorm schedules cycles fail/up flaps on count randomly chosen
// arcs, staggered so reconvergence waves overlap: arc i's k-th flap
// fails at start + k·period + i·(period/count) and heals half a period
// later. Every distinct time is one reconvergence epoch.
func FlapStorm(r *rand.Rand, g *graph.Graph, count, cycles int, start, period int64) []protocol.LinkEvent {
	if count > len(g.Arcs) {
		count = len(g.Arcs)
	}
	picks := r.Perm(len(g.Arcs))[:count]
	var evs []protocol.LinkEvent
	for i, arc := range picks {
		stagger := int64(i) * period / int64(count)
		for k := 0; k < cycles; k++ {
			down := start + int64(k)*period + stagger
			evs = append(evs, protocol.LinkEvent{At: down, Arc: arc, Fail: true})
			evs = append(evs, protocol.LinkEvent{At: down + period/2, Arc: arc, Fail: false})
		}
	}
	return evs
}

// NodeChurn takes count non-destination nodes down (every incident arc
// fails) and brings them back half a period later, cycles times. Churn
// exercises withdraw propagation: a down node's neighbours must flush
// routes through it and re-learn them on revival.
func NodeChurn(r *rand.Rand, g *graph.Graph, dest, count, cycles int, start, period int64) []protocol.LinkEvent {
	var candidates []int
	for u := 0; u < g.N; u++ {
		if u != dest {
			candidates = append(candidates, u)
		}
	}
	r.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if count > len(candidates) {
		count = len(candidates)
	}
	var evs []protocol.LinkEvent
	for i, u := range candidates[:count] {
		var incident []int
		for ai, a := range g.Arcs {
			if a.From == u || a.To == u {
				incident = append(incident, ai)
			}
		}
		stagger := int64(i) * period / int64(count)
		for k := 0; k < cycles; k++ {
			down := start + int64(k)*period + stagger
			for _, ai := range incident {
				evs = append(evs, protocol.LinkEvent{At: down, Arc: ai, Fail: true})
				evs = append(evs, protocol.LinkEvent{At: down + period/2, Arc: ai, Fail: false})
			}
		}
	}
	return evs
}

// PartitionHeal cuts every arc crossing the index-halves boundary at
// time at and heals the cut at time heal. With the destination in the
// lower half, the upper half loses all routes during the partition —
// the harshest withdraw wave a topology admits — then fully re-learns.
func PartitionHeal(g *graph.Graph, at, heal int64) []protocol.LinkEvent {
	h := g.N / 2
	var evs []protocol.LinkEvent
	for ai, a := range g.Arcs {
		if (a.From < h) != (a.To < h) {
			evs = append(evs, protocol.LinkEvent{At: at, Arc: ai, Fail: true})
			evs = append(evs, protocol.LinkEvent{At: heal, Arc: ai, Fail: false})
		}
	}
	return evs
}

// corpusExprs are the strictly-increasing algebras the quiescence side
// of the corpus cycles through, each with the size of its arc-function
// set (graph labels must index into it). All three carry a derived
// I=True.
var corpusExprs = []struct {
	expr   string
	labels int
}{
	{"delay(32,3)", 3},
	{"hops(16)", 1},
	{"lex(delay(16,3), hops(8))", 3},
}

// Corpus generates the standard validation corpus from one seed:
// quiescence cases crossing {GNP, ring, grid, ScaleFree} topologies
// with {flap storm, node churn, partition/heal} schedules under
// strictly-increasing algebras, plus the oscillation regression set
// (BAD GADGET across seeds and the two-triangle wedgie). Same seed ⇒
// identical corpus, so a corpus run is as reproducible as a single
// simulation.
func Corpus(seed int64) []Case {
	r := rand.New(rand.NewSource(seed))
	// Each case gets its own topology, generated with a label range
	// matching its algebra's arc-function set.
	gen := []struct {
		name  string
		build func(labels int) *graph.Graph
	}{
		{"gnp", func(l int) *graph.Graph { return graph.Random(r, 24, 0.2, graph.UniformLabels(l)) }},
		{"ring", func(l int) *graph.Graph { return graph.Ring(r, 16, graph.UniformLabels(l)) }},
		{"grid", func(l int) *graph.Graph { return graph.Grid(r, 4, 5, graph.UniformLabels(l)) }},
		{"scalefree", func(l int) *graph.Graph { return graph.ScaleFree(r, 24, 2, graph.UniformLabels(l)) }},
	}
	var cases []Case
	for i, tp := range gen {
		caseSeed := seed + int64(i)*101
		storm, churn, split := corpusExprs[i%3], corpusExprs[(i+1)%3], corpusExprs[(i+2)%3]
		gStorm, gChurn, gSplit := tp.build(storm.labels), tp.build(churn.labels), tp.build(split.labels)
		cases = append(cases,
			Case{
				Name: fmt.Sprintf("flapstorm/%s", tp.name),
				Expr: storm.expr, Graph: gStorm, Dest: 0,
				Events: FlapStorm(r, gStorm, 4, 3, 40, 120),
				Seed:   caseSeed, Expect: ExpectQuiesce,
			},
			Case{
				Name: fmt.Sprintf("nodechurn/%s", tp.name),
				Expr: churn.expr, Graph: gChurn, Dest: 0,
				Events: NodeChurn(r, gChurn, 0, 3, 2, 60, 150),
				Seed:   caseSeed + 1, Expect: ExpectQuiesce,
			},
			Case{
				Name: fmt.Sprintf("partitionheal/%s", tp.name),
				Expr: split.expr, Graph: gSplit, Dest: 0,
				Events: PartitionHeal(gSplit, 50, 200),
				Seed:   caseSeed + 2, Expect: ExpectQuiesce,
			},
		)
	}
	cases = append(cases, OscillationCases(seed)...)
	return cases
}

// OscillationCases is the theory's negative direction: non-increasing
// gadget algebras that must be caught still oscillating at the round
// cutoff. BAD GADGET is Varadhan et al.'s classic 4-node construction
// (the seed of examples/gadget); the wedgie doubles it — two preference
// triangles sharing the destination, oscillating independently.
func OscillationCases(seed int64) []Case {
	badG, _ := graph.BadGadgetArcs()
	var cases []Case
	for i := int64(0); i < 3; i++ {
		cases = append(cases, Case{
			Name: fmt.Sprintf("badgadget/seed=%d", seed+i),
			Expr: "gadget", Graph: badG, Dest: 0,
			Seed: seed + i, Expect: ExpectOscillate,
		})
	}
	cases = append(cases, Case{
		Name: "wedgie/double-gadget",
		Expr: "gadget", Graph: DoubleGadget(), Dest: 0,
		Seed: seed, Expect: ExpectOscillate,
	})
	return cases
}

// DoubleGadget is the BGP-wedgie construction: two BAD GADGET triangles
// (1,2,3 and 4,5,6) sharing destination 0. Each triangle's preference
// cycle is unsatisfiable on its own, so the combined system oscillates
// in both halves at once — a minimal model of interacting policy
// disputes.
func DoubleGadget() *graph.Graph {
	return graph.MustNew(7, []graph.Arc{
		{From: 1, To: 0, Label: 0}, {From: 2, To: 0, Label: 0}, {From: 3, To: 0, Label: 0},
		{From: 1, To: 2, Label: 1}, {From: 2, To: 3, Label: 1}, {From: 3, To: 1, Label: 1},
		{From: 4, To: 0, Label: 0}, {From: 5, To: 0, Label: 0}, {From: 6, To: 0, Label: 0},
		{From: 4, To: 5, Label: 1}, {From: 5, To: 6, Label: 1}, {From: 6, To: 4, Label: 1},
	})
}
