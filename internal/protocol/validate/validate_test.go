package validate

// The committed form of examples/gadget (satellite): the corpus guards
// the convergence theory in both directions. Strictly-increasing cases
// must quiesce within the Daggitt–Griffin bound; the BAD GADGET and
// wedgie cases must still be oscillating when a 4× multiple of that
// bound fires. Both engines run the same corpus.

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/telemetry"
)

func TestCorpusSerial(t *testing.T) {
	results, err := RunCorpus(context.Background(), nil, Corpus(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Failures(results) {
		t.Errorf("%s (%s): %s [rounds=%d bound=%d steps=%d]",
			r.Case, r.Expect, r.Detail, r.Rounds, r.Bound, r.Steps)
	}
	if len(results) < 12 {
		t.Fatalf("corpus too small: %d cases", len(results))
	}
}

func TestCorpusParallel(t *testing.T) {
	p := protocol.NewParallel(4)
	defer p.Close()
	results, err := RunCorpus(context.Background(), p, Corpus(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Failures(results) {
		t.Errorf("%s (%s): %s [rounds=%d bound=%d steps=%d]",
			r.Case, r.Expect, r.Detail, r.Rounds, r.Bound, r.Steps)
	}
}

// TestGadgetOscillationRegression pins the theory's negative direction
// across seeds: the SPP gadget algebra on BAD GADGET must never quiesce
// within OscFactor× the increasing-algebra round bound. A regression
// here means either the simulator stopped modelling asynchrony or the
// algebra stopped being a counterexample — both are release blockers.
func TestGadgetOscillationRegression(t *testing.T) {
	badG, _ := graph.BadGadgetArcs()
	for seed := int64(1); seed <= 5; seed++ {
		c := Case{
			Name: "badgadget", Expr: "gadget", Graph: badG, Dest: 0,
			Seed: seed, Expect: ExpectOscillate,
		}
		r, err := Check(context.Background(), nil, c)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass {
			t.Errorf("seed %d: %s (rounds=%d)", seed, r.Detail, r.Rounds)
		}
		if r.Rounds < OscFactor*c.Bound() {
			t.Errorf("seed %d: cutoff never fired (rounds=%d)", seed, r.Rounds)
		}
	}
}

// TestGadgetTheoryBothWays: the same algebra converges when the
// topology removes the preference cycle, and the same topology
// converges under an increasing algebra — oscillation needs both the
// non-increasing algebra and the cyclic preferences.
func TestGadgetTheoryBothWays(t *testing.T) {
	directOnly := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0}, {From: 2, To: 0, Label: 0}, {From: 3, To: 0, Label: 0},
	})
	// Non-increasing algebra, acyclic preferences: Check would reject
	// ExpectQuiesce for a non-increasing expr (the property gate), so
	// run the simulator directly.
	out := runDirect(t, "gadget", directOnly, 1)
	if !out.Converged {
		t.Error("gadget algebra on direct-only topology must converge")
	}

	badG, _ := graph.BadGadgetArcs()
	c := Case{
		Name: "increasing-on-gadget-topology", Expr: "delay(32,2)",
		Graph: badG, Dest: 0, Seed: 1, Expect: ExpectQuiesce,
	}
	r, err := Check(context.Background(), nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("increasing algebra on the gadget topology: %s", r.Detail)
	}
}

func runDirect(t *testing.T, expr string, g *graph.Graph, seed int64) *protocol.Outcome {
	t.Helper()
	c := Case{Name: "direct", Expr: expr, Graph: g, Dest: 0, Seed: seed, Expect: ExpectOscillate}
	// Reuse Check's plumbing by asking for oscillation and reading the
	// raw outcome fields back out of the result.
	r, err := Check(context.Background(), nil, c)
	if err != nil {
		t.Fatal(err)
	}
	return &protocol.Outcome{Converged: r.Converged}
}

// TestCheckRejectsTheoryMismatch: the property gate refuses a Case whose
// expectation contradicts the inferred I status — such a case is a bug
// in the corpus, not a finding about the simulator.
func TestCheckRejectsTheoryMismatch(t *testing.T) {
	badG, _ := graph.BadGadgetArcs()
	_, err := Check(context.Background(), nil, Case{
		Name: "x", Expr: "gadget", Graph: badG, Dest: 0, Expect: ExpectQuiesce,
	})
	if err == nil || !strings.Contains(err.Error(), "not strictly increasing") {
		t.Fatalf("want property-gate error, got %v", err)
	}
	_, err = Check(context.Background(), nil, Case{
		Name: "y", Expr: "hops(8)", Graph: badG, Dest: 0, Expect: ExpectOscillate,
	})
	if err == nil || !strings.Contains(err.Error(), "theory forbids") {
		t.Fatalf("want property-gate error, got %v", err)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(7), Corpus(7)
	if len(a) != len(b) {
		t.Fatal("corpus size depends on more than the seed")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Seed != b[i].Seed ||
			len(a[i].Events) != len(b[i].Events) ||
			a[i].Graph.N != b[i].Graph.N || len(a[i].Graph.Arcs) != len(b[i].Graph.Arcs) {
			t.Fatalf("case %d differs between identically-seeded corpora", i)
		}
	}
}

func TestCorpusTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cases := Corpus(3)[:4]
	if _, err := RunCorpus(context.Background(), nil, cases, reg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"validate_quiescence_time", "validate_flaps", "validate_messages", "validate_cases_pass"} {
		if !strings.Contains(sb.String(), metric) {
			t.Errorf("telemetry export missing %s", metric)
		}
	}
}

func TestCorpusGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := graph.Random(r, 20, 0.3, graph.UniformLabels(1))

	storm := FlapStorm(r, g, 5, 3, 100, 60)
	if len(storm) != 5*3*2 {
		t.Fatalf("flap storm: want 30 events, got %d", len(storm))
	}
	for _, ev := range storm {
		if ev.At < 100 || ev.Arc < 0 || ev.Arc >= len(g.Arcs) {
			t.Fatalf("flap storm event out of range: %+v", ev)
		}
	}

	churn := NodeChurn(r, g, 0, 2, 2, 50, 80)
	for _, ev := range churn {
		a := g.Arcs[ev.Arc]
		if a.From == 0 && a.To == 0 {
			t.Fatal("node churn touched the destination's self loop")
		}
	}
	if len(churn) == 0 {
		t.Fatal("node churn produced no events")
	}

	cut := PartitionHeal(g, 40, 90)
	if len(cut) == 0 || len(cut)%2 != 0 {
		t.Fatalf("partition/heal: %d events", len(cut))
	}
	h := g.N / 2
	for _, ev := range cut {
		a := g.Arcs[ev.Arc]
		if (a.From < h) == (a.To < h) {
			t.Fatalf("partition cut a same-side arc %+v", a)
		}
	}
}

// TestMeasureSimSmall: the bench helper on a tiny spec — identical
// outcomes, nonzero throughput. The committed BENCH_sim.json rows come
// from cmd/mrexp -sim-bench at full size.
func TestMeasureSimSmall(t *testing.T) {
	res, err := MeasureSim(context.Background(), nil, BenchSpec{
		Nodes: 64, Degree: 6, Seed: 1, Shards: 2, FlapArcs: 8, FlapCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("bench run: parallel outcome diverged from serial oracle")
	}
	if res.Messages <= 0 || res.SerialMsgsPerSec <= 0 || res.ParallelMsgsPerSec <= 0 {
		t.Fatalf("bench produced empty measurement: %+v", res)
	}
	if !res.Converged {
		t.Fatal("small bench spec should converge")
	}
}

func TestRoundBound(t *testing.T) {
	if RoundBound(4) != 16 || RoundBound(10) != 100 {
		t.Fatal("round bound is n²")
	}
	c := Case{Graph: graph.MustNew(3, nil), Events: []protocol.LinkEvent{
		{At: 5, Arc: 0, Fail: true}, {At: 5, Arc: 1, Fail: true}, {At: 9, Arc: 0, Fail: false},
	}}
	if c.Epochs() != 3 {
		t.Fatalf("epochs: want 3 (origination + two distinct times), got %d", c.Epochs())
	}
	if c.Bound() != 3*9 {
		t.Fatalf("bound: want 27, got %d", c.Bound())
	}
}
