package validate

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
)

// BenchSpec sizes one serial-vs-parallel measurement: a GNP topology
// with the given node count and target mean degree, driven past initial
// convergence by a flap storm (FlapArcs arcs × FlapCycles fail/up
// cycles) so the run sustains a realistic churn workload instead of a
// single convergence wave.
type BenchSpec struct {
	Nodes  int
	Degree float64
	Expr   string
	Seed   int64
	// Shards is the parallel engine's shard count (≤0: worker default).
	Shards int
	// Storm sizing; zero values get workload defaults scaled to Nodes.
	FlapArcs   int
	FlapCycles int
	Period     int64
	// MaxSteps caps delivered messages (0: a generous bench default).
	MaxSteps int
}

// BenchResult is one row of BENCH_sim.json.
type BenchResult struct {
	Nodes  int    `json:"nodes"`
	Arcs   int    `json:"arcs"`
	Expr   string `json:"expr"`
	Seed   int64  `json:"seed"`
	Shards int    `json:"shards"`
	// Messages is the delivered-message count — identical for both
	// engines when Identical holds.
	Messages int `json:"messages"`
	Rounds   int `json:"rounds"`
	// Converged: the run quiesced (rather than hitting the step cap).
	Converged bool `json:"converged"`
	// Identical: the parallel Outcome was bit-identical to the serial
	// oracle's (reflect.DeepEqual over routes, weights, convergence).
	Identical bool `json:"identical"`

	SerialSec          float64 `json:"serial_sec"`
	ParallelSec        float64 `json:"parallel_sec"`
	SerialMsgsPerSec   float64 `json:"serial_msgs_per_sec"`
	ParallelMsgsPerSec float64 `json:"parallel_msgs_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// MeasureSim times the serial oracle and the parallel engine on the
// same seeded workload and cross-checks their Outcomes. The graph and
// event schedule are derived deterministically from the spec, so a
// BenchResult is reproducible bit-for-bit (timings aside).
func MeasureSim(ctx context.Context, p *protocol.Parallel, spec BenchSpec) (*BenchResult, error) {
	if spec.Nodes < 2 {
		return nil, fmt.Errorf("bench: need ≥ 2 nodes")
	}
	if spec.Degree <= 0 {
		spec.Degree = 8
	}
	if spec.Expr == "" {
		spec.Expr = "delay(64,3)"
	}
	a, err := core.InferString(spec.Expr)
	if err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}
	r := rand.New(rand.NewSource(spec.Seed))
	pEdge := spec.Degree / float64(spec.Nodes-1)
	if pEdge > 1 {
		pEdge = 1
	}
	g := graph.Random(r, spec.Nodes, pEdge, graph.UniformLabels(a.OT.F.Size()))
	if spec.FlapArcs == 0 {
		spec.FlapArcs = spec.Nodes / 4
	}
	if spec.FlapCycles == 0 {
		spec.FlapCycles = 8
		// Scale the storm so benchmark-size runs (≥256 nodes) sustain
		// over a million delivered messages rather than a single
		// convergence wave.
		if spec.Nodes >= 256 {
			if c := 400_000 / spec.Nodes; c > spec.FlapCycles {
				spec.FlapCycles = c
			}
		}
	}
	if spec.Period == 0 {
		spec.Period = 200
	}
	events := FlapStorm(r, g, spec.FlapArcs, spec.FlapCycles, 50, spec.Period)
	maxSteps := spec.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100_000_000
	}
	cfg := protocol.Config{
		Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 3,
		PerNodeDelays: true, Seed: spec.Seed,
		Events: events, MaxSteps: maxSteps,
	}
	eng := exec.For(a.OT, cfg.Origin)

	t0 := time.Now()
	serial := protocol.RunEngine(eng, g, cfg)
	serialSec := time.Since(t0).Seconds()

	closePool := false
	if p == nil {
		p = protocol.NewParallel(spec.Shards)
		closePool = true
	}
	t1 := time.Now()
	par, err := p.Run(ctx, eng, g, cfg)
	parallelSec := time.Since(t1).Seconds()
	shards := p.Shards()
	if closePool {
		p.Close()
	}
	if err != nil {
		return nil, fmt.Errorf("bench: parallel run: %v", err)
	}

	res := &BenchResult{
		Nodes: g.N, Arcs: len(g.Arcs), Expr: spec.Expr, Seed: spec.Seed,
		Shards:    shards,
		Messages:  serial.Steps,
		Rounds:    serial.Convergence.Rounds,
		Converged: serial.Converged,
		Identical: reflect.DeepEqual(serial, par),
		SerialSec: serialSec, ParallelSec: parallelSec,
	}
	if serialSec > 0 {
		res.SerialMsgsPerSec = float64(serial.Steps) / serialSec
	}
	if parallelSec > 0 {
		res.ParallelMsgsPerSec = float64(par.Steps) / parallelSec
	}
	if parallelSec > 0 && serialSec > 0 {
		res.Speedup = serialSec / parallelSec
	}
	return res, nil
}
