package protocol

import (
	"math/rand"
	"testing"

	"metarouting/internal/graph"
	"metarouting/internal/solve"
)

// lineWithBackup: 2 → 1 → 0 with a more expensive backup 2 → 0.
// Labels index delay steps +1..+4.
func lineWithBackup() *graph.Graph {
	return graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0}, // +1, arc 0
		{From: 2, To: 1, Label: 0}, // +1, arc 1
		{From: 2, To: 0, Label: 3}, // +4, arc 2 (backup)
	})
}

// TestFailoverToBackup: failing the primary next-hop link mid-run makes
// the network reconverge onto the backup route — increasing algebras
// reconverge after any topology change (the dynamic-routing claim).
func TestFailoverToBackup(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineWithBackup()
	r := rand.New(rand.NewSource(6))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
		Events: []LinkEvent{{At: 50, Arc: 1, Fail: true}}, // cut 2 → 1
	})
	if !out.Converged {
		t.Fatalf("must reconverge after failure:\n%s", out.Describe())
	}
	if !out.Routed[2] || out.Weights[2] != 4 {
		t.Fatalf("node 2 must fail over to the +4 backup: %s", out.Describe())
	}
	if len(out.Paths[2]) != 2 || out.Paths[2][0] != 2 || out.Paths[2][1] != 0 {
		t.Fatalf("node 2 path must be the direct backup: %v", out.Paths[2])
	}
	// Node 1 keeps its primary route (its link is intact).
	if !out.Routed[1] || out.Weights[1] != 1 {
		t.Fatalf("node 1 must be unaffected: %s", out.Describe())
	}
}

// TestPartitionWithdrawsRoutes: failing the only exit of a node leaves
// it route-less — withdrawals must propagate, not just fade.
func TestPartitionWithdrawsRoutes(t *testing.T) {
	a := alg(t, "delay(32,2)")
	// 2 → 1 → 0, no backup.
	g := graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 1, Label: 0},
	})
	r := rand.New(rand.NewSource(7))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
		Events: []LinkEvent{{At: 50, Arc: 0, Fail: true}}, // cut 1 → 0
	})
	if !out.Converged {
		t.Fatal("must quiesce after the partition")
	}
	if out.Routed[1] || out.Routed[2] {
		t.Fatalf("partitioned nodes must withdraw: %s", out.Describe())
	}
}

// TestLinkRevival: failing then reviving a link restores the original
// routes.
func TestLinkRevival(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineWithBackup()
	r := rand.New(rand.NewSource(8))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
		Events: []LinkEvent{
			{At: 50, Arc: 1, Fail: true},
			{At: 200, Arc: 1, Fail: false},
		},
	})
	if !out.Converged {
		t.Fatal("must reconverge after revival")
	}
	if !out.Routed[2] || out.Weights[2] != 2 {
		t.Fatalf("node 2 must return to the primary (+1+1) route: %s", out.Describe())
	}
}

// TestReconvergenceIsStable: after random failure events on random
// graphs, the quiescent state of an increasing algebra is a stable
// routing of the *surviving* topology.
func TestReconvergenceIsStable(t *testing.T) {
	a := alg(t, "delay(128,3)")
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 8, 0.35, graph.UniformLabels(3))
		// Fail two random arcs at staggered times.
		evts := []LinkEvent{
			{At: 20, Arc: r.Intn(len(g.Arcs)), Fail: true},
			{At: 40, Arc: r.Intn(len(g.Arcs)), Fail: true},
		}
		out := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: r, Events: evts})
		if !out.Converged {
			t.Fatalf("trial %d: increasing algebra must reconverge", trial)
		}
		// Build the surviving topology and verify stability on it.
		var arcs []graph.Arc
		for i, arc := range g.Arcs {
			dead := false
			for _, e := range evts {
				if e.Arc == i && e.Fail {
					dead = true
				}
			}
			if !dead {
				arcs = append(arcs, arc)
			}
		}
		sur := graph.MustNew(g.N, arcs)
		res := outcomeToResult(out, sur)
		if ok, why := solve.VerifyLocal(a, sur, 0, 0, res); !ok {
			t.Fatalf("trial %d: quiescent state unstable on surviving topology: %s", trial, why)
		}
	}
}

// TestEventOnIdleNetwork: events arriving after quiescence must wake the
// network up (the loop must not exit while events are pending).
func TestEventOnIdleNetwork(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineWithBackup()
	r := rand.New(rand.NewSource(10))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 0, Rand: r,
		// At=10000: long after initial convergence.
		Events: []LinkEvent{{At: 10000, Arc: 1, Fail: true}},
	})
	if !out.Converged {
		t.Fatal("must converge")
	}
	if out.Weights[2] != 4 {
		t.Fatalf("late failure must still be processed: %s", out.Describe())
	}
}

// TestDuplicateEventIgnored: failing an already-failed arc is a no-op.
func TestDuplicateEventIgnored(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineWithBackup()
	r := rand.New(rand.NewSource(11))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 1, Rand: r,
		Events: []LinkEvent{
			{At: 30, Arc: 1, Fail: true},
			{At: 35, Arc: 1, Fail: true}, // duplicate failure: a no-op
		},
	})
	if !out.Converged || out.Weights[2] != 4 {
		t.Fatalf("idempotent failure handling broken: %s", out.Describe())
	}
}

// TestObserverStreamsEvents: the observer sees deliveries, selections and
// topology changes in chronological order.
func TestObserverStreamsEvents(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineWithBackup()
	r := rand.New(rand.NewSource(12))
	var events []Event
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
		Events:   []LinkEvent{{At: 50, Arc: 1, Fail: true}},
		Observer: func(e Event) { events = append(events, e) },
	})
	if !out.Converged {
		t.Fatal("must converge")
	}
	if len(events) == 0 {
		t.Fatal("observer saw nothing")
	}
	var sawDeliver, sawSelect, sawLink bool
	last := int64(-1)
	for _, e := range events {
		if e.At < last {
			t.Fatalf("events out of order: %d after %d", e.At, last)
		}
		last = e.At
		switch e.Kind {
		case EvDeliver:
			sawDeliver = true
		case EvSelect:
			sawSelect = true
			if !e.Withdraw && len(e.Path) == 0 {
				t.Fatal("selection without a path")
			}
		case EvLinkChange:
			sawLink = true
			if e.Arc != 1 || !e.Fail {
				t.Fatalf("wrong link event: %+v", e)
			}
		}
	}
	if !sawDeliver || !sawSelect || !sawLink {
		t.Fatalf("missing kinds: deliver=%v select=%v link=%v", sawDeliver, sawSelect, sawLink)
	}
}
