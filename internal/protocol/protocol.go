// Package protocol implements an event-driven asynchronous path-vector
// protocol simulator over metarouting algebras — the substitute for the
// real BGP/OSPF deployments the paper's claims are ultimately about.
//
// Each node keeps a RIB of candidate routes (one per neighbour), selects a
// best route under the algebra's preorder with AS-path-style loop
// rejection, and advertises changes to its neighbours over FIFO links with
// randomized (seeded) delivery delays. The simulator detects quiescence
// (convergence) and, via a step budget, divergence — the behaviour the
// increasing property I is meant to guarantee against (Sobrinho [23],
// Varadhan et al. [16]).
//
// The simulator runs on the unified execution layer (internal/exec):
// message payloads carry int32 weight indices, per-arc policy application
// and route selection are engine operations — table lookups on the
// compiled backend. Run picks the backend automatically; RunEngine pins
// one.
package protocol

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// route is an advertised route: a weight index plus the node path it
// traversed (destination last), used for loop rejection exactly as BGP
// uses AS paths.
type route struct {
	weight int32
	path   []int // from advertising node to destination
}

func (r route) contains(node int) bool {
	for _, n := range r.path {
		if n == node {
			return true
		}
	}
	return false
}

// message is an advertisement (or withdrawal) from one node to a
// neighbour.
type message struct {
	from, to int
	withdraw bool
	rt       route
	// seq orders messages on the same link (FIFO).
	seq int
	// at is the delivery time.
	at int64
}

// msgQueue is a delivery-time priority queue. Simultaneous deliveries
// order deterministically by (time, sender, seq) — not heap-insertion
// order — so a run is a pure function of its seed and inputs.
type msgQueue []*message

func (q msgQueue) Len() int { return len(q) }
func (q msgQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].from != q[j].from {
		return q[i].from < q[j].from
	}
	return q[i].seq < q[j].seq
}
func (q msgQueue) Swap(i, j int)   { q[i], q[j] = q[j], q[i] }
func (q *msgQueue) Push(x any)     { *q = append(*q, x.(*message)) }
func (q *msgQueue) Pop() any       { old := *q; n := len(old); m := old[n-1]; *q = old[:n-1]; return m }
func (q msgQueue) PeekTime() int64 { return q[0].at }

// LinkEvent is a topology change applied during a run — the dynamic
// routing setting of Sobrinho's algebraic theory [23].
type LinkEvent struct {
	// At is the simulation time at which the event fires.
	At int64
	// Arc indexes the affected arc in the graph.
	Arc int
	// Fail is true for a link failure, false for (re)activation.
	Fail bool
}

// Config parameterizes a simulation run.
type Config struct {
	// Dest is the destination node; it originates Origin.
	Dest int
	// Origin is the weight originated at Dest.
	Origin value.V
	// MaxSteps bounds delivered messages before declaring divergence
	// (≤ 0 means 200·N·N).
	MaxSteps int
	// MaxDelay is the maximum extra per-message delivery delay
	// (≥ 0; delays are drawn uniformly from [1, 1+MaxDelay]).
	MaxDelay int
	// Rand drives delay choices; required unless PerNodeDelays is set.
	Rand *rand.Rand
	// PerNodeDelays switches delay drawing from the shared Rand stream to
	// per-sender counter-hashed streams derived from Seed: node u's k-th
	// draw is a pure function of (Seed, u, k). A node's draw order depends
	// only on its own activity order, never on the global interleaving —
	// which is what lets the parallel engine process nodes concurrently
	// and still produce the bit-identical Outcome the serial engine
	// produces for the same Config. Rand may be nil in this mode.
	PerNodeDelays bool
	// Seed parameterizes the PerNodeDelays streams (ignored otherwise).
	Seed int64
	// MaxRounds, when > 0, stops the run before it would enter
	// asynchronous round MaxRounds+1 (see Convergence.Rounds). It is the
	// oscillation cutoff the convergence-validation harness uses: a
	// strictly-increasing algebra must quiesce within its proven round
	// bound, so a run still generating traffic at N× that bound is
	// flagged oscillating without burning the whole step budget.
	MaxRounds int
	// Events lists topology changes, in any order; each fires once when
	// simulation time first reaches its At.
	Events []LinkEvent
	// Observer, when non-nil, receives every simulation event in
	// chronological order — message deliveries, selections, and topology
	// changes. For tracing and debugging; it must not retain the Event's
	// Path slice beyond the call.
	Observer func(Event)
	// Trace, when non-nil, receives the same stream as telemetry trace
	// events (kinds "deliver", "select", "link") with weights and paths
	// rendered into Detail. A deterministic run produces a bit-identical
	// trace — the determinism regression test relies on this.
	Trace telemetry.Tracer
	// DistanceVector disables route paths and loop rejection, turning the
	// protocol into an asynchronous distance-vector (RIP-like) scheme.
	// On increasing algebras with a saturating ⊤ this counts up to the
	// ceiling after failures (bounded count-to-infinity); path-vector
	// mode withdraws instead — the classic argument for AS paths.
	DistanceVector bool
}

// EventKind classifies observer events.
type EventKind int

// The observer event kinds.
const (
	// EvDeliver: a message arrived (From → To advertisement/withdrawal).
	EvDeliver EventKind = iota
	// EvSelect: a node changed its best route.
	EvSelect
	// EvLinkChange: a topology event fired.
	EvLinkChange
)

// Event is a single simulation occurrence streamed to Config.Observer.
type Event struct {
	Kind EventKind
	At   int64
	// Node is the acting node (receiver for EvDeliver, selector for
	// EvSelect; the arc tail for EvLinkChange).
	Node int
	// From is the advertising neighbour (EvDeliver only).
	From int
	// Withdraw marks withdrawal deliveries and route losses.
	Withdraw bool
	// Weight/Path describe the delivered or newly selected route.
	Weight value.V
	Path   []int
	// Arc and Fail describe EvLinkChange.
	Arc  int
	Fail bool
}

// Outcome reports a simulation run.
type Outcome struct {
	// Converged is true if the network quiesced within the step budget.
	Converged bool
	// Steps counts delivered messages.
	Steps int
	// Routed/Weights/Paths give the final routing state per node.
	// Paths are nil in distance-vector mode.
	Routed  []bool
	Weights []value.V
	Paths   [][]int
	// NextHop records each routed node's selected neighbour (-1 at the
	// destination and for unrouted nodes).
	NextHop []int
	// Oscillating is set when the same global state recurred while
	// messages were still in flight — a certificate of livelock for
	// deterministic schedules.
	Oscillating bool
	// Convergence holds the run's convergence telemetry.
	Convergence Convergence
}

// Convergence is the per-run convergence telemetry: what an operator
// watches after a topology event — how long the network took to go
// quiet, how chatty each node was, and how often routes flapped. All
// counters are exact and deterministic for a given seed and config.
type Convergence struct {
	// QuiescedAt is the simulation time of the last processed activity
	// (message delivery or topology event). When the run converged it is
	// the time-to-quiescence; for a diverging run it is just where the
	// step budget ran out.
	QuiescedAt int64
	// Announcements counts advertisements/withdrawals sent per node.
	Announcements []int
	// Deliveries counts messages processed per node.
	Deliveries []int
	// Flaps counts best-route changes per node toward the run's
	// destination (the origination never flaps).
	Flaps []int
	// TotalFlaps sums Flaps.
	TotalFlaps int
	// Rounds counts asynchronous rounds: a round ends once every message
	// that was in flight at its start has been delivered and reacted to
	// (quiet gaps collapse into the round that crosses them). This is the
	// unit of the Daggitt–Griffin DBF convergence theorems (PAPERS.md):
	// strictly-increasing algebras provably quiesce within O(n²) rounds,
	// and the validation harness asserts exactly that.
	Rounds int
}

// Validate checks a configuration against the graph it will run on:
// Rand must be present, Dest in range, and every event must reference an
// existing arc. Run and RunEngine call it and panic with the resulting
// error; callers that want the error form (the scenario loader, the
// route server) validate first.
func (cfg Config) Validate(g *graph.Graph) error {
	if cfg.Rand == nil && !cfg.PerNodeDelays {
		return fmt.Errorf("protocol: Config.Rand is required (or set PerNodeDelays)")
	}
	if cfg.Dest < 0 || cfg.Dest >= g.N {
		return fmt.Errorf("protocol: destination %d out of range [0,%d)", cfg.Dest, g.N)
	}
	if cfg.MaxDelay < 0 {
		return fmt.Errorf("protocol: MaxDelay %d must be ≥ 0", cfg.MaxDelay)
	}
	if cfg.MaxRounds < 0 {
		return fmt.Errorf("protocol: MaxRounds %d must be ≥ 0 (0 means unbounded)", cfg.MaxRounds)
	}
	for i, ev := range cfg.Events {
		if ev.Arc < 0 || ev.Arc >= len(g.Arcs) {
			return fmt.Errorf("protocol: event %d references arc %d, but the graph has %d arcs",
				i, ev.Arc, len(g.Arcs))
		}
	}
	return nil
}

// node is the per-node protocol state.
type node struct {
	rib      map[int]route // candidate per neighbour (key: neighbour)
	best     route
	hasBest  bool
	bestFrom int
}

// Run simulates the path-vector protocol for alg on g, on the backend
// exec.For picks (compiled tables for finite algebras). It panics on an
// invalid configuration (see Config.Validate for the error form).
func Run(alg *ost.OrderTransform, g *graph.Graph, cfg Config) *Outcome {
	return RunEngine(exec.For(alg, cfg.Origin), g, cfg)
}

// RunEngine simulates the path-vector protocol over an explicit
// execution engine. An invalid configuration — nil Rand, out-of-range
// destination, an event referencing a nonexistent arc, or an origin
// outside the engine's carrier — panics with a descriptive error;
// callers that want the error instead call cfg.Validate(g) first.
func RunEngine(eng exec.Algebra, g *graph.Graph, cfg Config) *Outcome {
	if err := cfg.Validate(g); err != nil {
		panic(err.Error())
	}
	origin, err := eng.Intern(cfg.Origin)
	if err != nil {
		panic(fmt.Sprintf("protocol: %v", err))
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200 * g.N * g.N
	}
	nodes := make([]node, g.N)
	for i := range nodes {
		nodes[i] = node{rib: make(map[int]route), bestFrom: -1}
	}
	nodes[cfg.Dest].best = route{weight: origin, path: []int{cfg.Dest}}
	nodes[cfg.Dest].hasBest = true

	disabled := make([]bool, len(g.Arcs))
	events := append([]LinkEvent(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	conv := Convergence{
		Announcements: make([]int, g.N),
		Deliveries:    make([]int, g.N),
		Flaps:         make([]int, g.N),
	}
	var q msgQueue
	seq := 0
	now := int64(0)
	// maxAt tracks the largest scheduled delivery time so far; together
	// with roundEnd it implements the asynchronous-round counter (a round
	// ends when every message in flight at its start has been delivered).
	maxAt := int64(0)
	// draw holds the per-sender delay-draw counters of PerNodeDelays mode.
	var draw []uint64
	if cfg.PerNodeDelays {
		draw = make([]uint64, g.N)
	}
	// lastAt enforces per-link FIFO: a message never overtakes an earlier
	// one on the same (from, to) link, even under randomized delays.
	// Without this, a stale advertisement can arrive last and freeze the
	// network in an inconsistent "quiescent" state — masking oscillation.
	// Advertisements travel the reverse of the arc they answer for, so the
	// in-arc index is the link key.
	lastAt := make([]int64, len(g.Arcs))
	advertise := func(u int) {
		// Send u's current best (or withdrawal) to every in-neighbour
		// (nodes whose arcs point at u are the ones that can route via u).
		for _, ai := range g.In(u) {
			if disabled[ai] {
				continue
			}
			p := g.Arcs[ai].From
			m := &message{from: u, to: p, seq: seq}
			seq++
			if cfg.PerNodeDelays {
				m.at = now + nodeDelay(cfg.Seed, u, draw[u], cfg.MaxDelay)
				draw[u]++
			} else {
				m.at = now + 1 + int64(cfg.Rand.Intn(cfg.MaxDelay+1))
			}
			if m.at <= lastAt[ai] {
				m.at = lastAt[ai] + 1
			}
			lastAt[ai] = m.at
			if m.at > maxAt {
				maxAt = m.at
			}
			if nodes[u].hasBest {
				m.rt = nodes[u].best
			} else {
				m.withdraw = true
			}
			conv.Announcements[u]++
			heap.Push(&q, m)
		}
	}
	// reselect recomputes u's best from its RIB over enabled arcs and
	// returns whether the selection changed.
	reselect := func(u int) bool {
		if u == cfg.Dest {
			return false // the destination always keeps its originated route
		}
		prevHas, prev, prevFrom := nodes[u].hasBest, nodes[u].best, nodes[u].bestFrom
		nodes[u].hasBest = false
		nodes[u].bestFrom = -1
		for _, ai := range g.Out(u) {
			if disabled[ai] {
				continue
			}
			v := g.Arcs[ai].To
			cand, ok := nodes[u].rib[v]
			if !ok {
				continue
			}
			if !nodes[u].hasBest || eng.Lt(cand.weight, nodes[u].best.weight) {
				nodes[u].best = cand
				nodes[u].hasBest = true
				nodes[u].bestFrom = v
			}
		}
		changed := prevHas != nodes[u].hasBest ||
			(nodes[u].hasBest && (prevFrom != nodes[u].bestFrom || prev.weight != nodes[u].best.weight ||
				!samePath(prev.path, nodes[u].best.path)))
		if changed {
			conv.Flaps[u]++
			conv.TotalFlaps++
		}
		return changed
	}

	// noteSelect reports a committed route change at u to the observer
	// and the trace — every reselection, whether a delivery or a local
	// interface-down triggered it, goes through here so flap counts and
	// trace "select" events stay in one-to-one correspondence.
	noteSelect := func(u int) {
		if cfg.Observer != nil {
			ev := Event{Kind: EvSelect, At: now, Node: u, Withdraw: !nodes[u].hasBest}
			if nodes[u].hasBest {
				ev.Weight = eng.Value(nodes[u].best.weight)
				ev.Path = nodes[u].best.path
			}
			cfg.Observer(ev)
		}
		if cfg.Trace != nil {
			detail := "lost"
			if nodes[u].hasBest {
				detail = fmt.Sprintf("%s %v", value.Format(eng.Value(nodes[u].best.weight)), nodes[u].best.path)
			}
			cfg.Trace.Trace(telemetry.TraceEvent{At: now, Kind: "select", Node: u, Detail: detail})
		}
	}

	// fire applies a topology event: a failed out-arc costs its tail the
	// corresponding RIB candidate immediately (interface down); a revived
	// arc makes the head re-advertise so the tail relearns the route.
	fire := func(ev LinkEvent) {
		if ev.Arc < 0 || ev.Arc >= len(g.Arcs) || disabled[ev.Arc] == ev.Fail {
			return
		}
		disabled[ev.Arc] = ev.Fail
		arc := g.Arcs[ev.Arc]
		if cfg.Observer != nil {
			cfg.Observer(Event{Kind: EvLinkChange, At: now, Node: arc.From, Arc: ev.Arc, Fail: ev.Fail})
		}
		if cfg.Trace != nil {
			detail := "up"
			if ev.Fail {
				detail = "fail"
			}
			cfg.Trace.Trace(telemetry.TraceEvent{At: now, Kind: "link", Node: arc.From, Arc: ev.Arc, Detail: detail})
		}
		if ev.Fail {
			delete(nodes[arc.From].rib, arc.To)
			if reselect(arc.From) {
				noteSelect(arc.From)
				advertise(arc.From)
			}
		} else {
			advertise(arc.To)
		}
	}

	advertise(cfg.Dest)

	steps := 0
	nextEv := 0
	roundEnd := int64(0)
	for (q.Len() > 0 || nextEv < len(events)) && steps < maxSteps {
		eventNext := nextEv < len(events) && (q.Len() == 0 || events[nextEv].At <= q[0].at)
		t := int64(0)
		if eventNext {
			t = events[nextEv].At
		} else {
			t = q[0].at
		}
		// Crossing roundEnd means every message in flight at the start of
		// the current round has been processed: a new round begins. Quiet
		// gaps (an event long after quiescence) collapse into one round.
		if t > roundEnd {
			if cfg.MaxRounds > 0 && conv.Rounds >= cfg.MaxRounds {
				break
			}
			conv.Rounds++
			roundEnd = maxAt
			if roundEnd < t {
				roundEnd = t
			}
		}
		// Fire any events due before the next delivery.
		if eventNext {
			now = t
			fire(events[nextEv])
			nextEv++
			continue
		}
		m := heap.Pop(&q).(*message)
		now = m.at
		steps++
		u := m.to
		conv.Deliveries[u]++
		if cfg.Observer != nil {
			ev := Event{Kind: EvDeliver, At: now, Node: u, From: m.from,
				Withdraw: m.withdraw, Path: m.rt.path}
			if !m.withdraw {
				ev.Weight = eng.Value(m.rt.weight)
			}
			cfg.Observer(ev)
		}
		if cfg.Trace != nil {
			detail := "withdraw"
			if !m.withdraw {
				detail = fmt.Sprintf("%s %v", value.Format(eng.Value(m.rt.weight)), m.rt.path)
			}
			cfg.Trace.Trace(telemetry.TraceEvent{At: now, Kind: "deliver", Node: u, From: m.from, Detail: detail})
		}
		// Resolve the arc (u → m.from) the advertisement travelled
		// against; deliveries over a failed link are lost.
		arcIdx := -1
		for _, ai := range g.Out(u) {
			if g.Arcs[ai].To == m.from {
				arcIdx = ai
				break
			}
		}
		if arcIdx < 0 || disabled[arcIdx] {
			continue
		}
		if m.withdraw {
			delete(nodes[u].rib, m.from)
		} else if !cfg.DistanceVector && m.rt.contains(u) {
			// Loop rejection: drop routes that already traverse u.
			delete(nodes[u].rib, m.from)
		} else {
			w := eng.Apply(g.Arcs[arcIdx].Label, m.rt.weight)
			var path []int
			if !cfg.DistanceVector {
				path = make([]int, 0, len(m.rt.path)+1)
				path = append(path, u)
				path = append(path, m.rt.path...)
			}
			nodes[u].rib[m.from] = route{weight: w, path: path}
		}
		if reselect(u) {
			noteSelect(u)
			advertise(u)
		}
	}

	conv.QuiescedAt = now
	out := &Outcome{
		Converged:   q.Len() == 0,
		Steps:       steps,
		Routed:      make([]bool, g.N),
		Weights:     make([]value.V, g.N),
		Paths:       make([][]int, g.N),
		NextHop:     make([]int, g.N),
		Convergence: conv,
	}
	out.Oscillating = !out.Converged
	for i := range nodes {
		out.NextHop[i] = -1
		out.Routed[i] = nodes[i].hasBest
		if nodes[i].hasBest {
			out.Weights[i] = eng.Value(nodes[i].best.weight)
			out.Paths[i] = nodes[i].best.path
			out.NextHop[i] = nodes[i].bestFrom
		}
	}
	return out
}

// nodeDelay is the PerNodeDelays draw: sender node's k-th delay, a pure
// function of (seed, node, k) in [1, 1+maxDelay]. Both engines share it —
// a node's stream advances with its own activity only, so the parallel
// engine's concurrent shards reproduce the serial engine's draws exactly.
func nodeDelay(seed int64, node int, k uint64, maxDelay int) int64 {
	h := splitmix64(splitmix64(uint64(seed)^(uint64(node)+1)*0x9E3779B97F4A7C15) + k)
	return 1 + int64(h%uint64(maxDelay+1))
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed stateless
// hash (Steele et al.), the standard seeding permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Describe renders an outcome for logs and examples.
func (o *Outcome) Describe() string {
	s := fmt.Sprintf("converged=%v steps=%d\n", o.Converged, o.Steps)
	for u := range o.Routed {
		if o.Routed[u] {
			s += fmt.Sprintf("  node %d: weight %s via %v\n", u, value.Format(o.Weights[u]), o.Paths[u])
		} else {
			s += fmt.Sprintf("  node %d: no route\n", u)
		}
	}
	return s
}
