package protocol_test

// Determinism regression: the simulator promises that one (seed,
// config) pair produces one run — same RIB-equivalent outcome AND a
// bit-identical telemetry trace — and that the promise holds on both
// execution backends. This is what makes convergence traces diffable
// across machines and what the incident-replay workflow in DESIGN.md
// rests on.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/telemetry"
)

func TestDeterministicTraceAndOutcome(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	topoRand := rand.New(rand.NewSource(41))
	g := graph.Random(topoRand, 12, 0.3, graph.UniformLabels(a.OT.F.Size()))
	events := []protocol.LinkEvent{
		{At: 40, Arc: 0, Fail: true},
		{At: 90, Arc: 0, Fail: false},
		{At: 120, Arc: 3, Fail: true},
	}

	dyn, err := exec.New(a.OT, exec.ModeDynamic)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := exec.New(a.OT, exec.ModeCompiled)
	if err != nil {
		t.Fatal(err)
	}

	run := func(eng exec.Algebra, seed int64) (*protocol.Outcome, []telemetry.TraceEvent) {
		tr := telemetry.NewRingTracer(1 << 14)
		out := protocol.RunEngine(eng, g, protocol.Config{
			Dest:     0,
			Origin:   a.OT.DefaultOrigin(),
			MaxDelay: 3,
			Rand:     rand.New(rand.NewSource(seed)),
			Events:   events,
			Trace:    tr,
		})
		return out, tr.Events()
	}

	for _, seed := range []int64{1, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			outA, traceA := run(dyn, seed)
			outB, traceB := run(dyn, seed)
			if !reflect.DeepEqual(outA, outB) {
				t.Fatalf("dynamic backend: same seed, different outcome:\n A: %+v\n B: %+v", outA, outB)
			}
			if !reflect.DeepEqual(traceA, traceB) {
				t.Fatalf("dynamic backend: same seed, different trace (%d vs %d events)", len(traceA), len(traceB))
			}
			if len(traceA) == 0 {
				t.Fatal("trace empty — hooks not firing")
			}
			if !outA.Converged || outA.Convergence.QuiescedAt <= 0 {
				t.Fatalf("run must converge with a quiescence time: %+v", outA.Convergence)
			}

			outC, traceC := run(comp, seed)
			outD, traceD := run(comp, seed)
			if !reflect.DeepEqual(outC, outD) {
				t.Fatalf("compiled backend: same seed, different outcome")
			}
			if !reflect.DeepEqual(traceC, traceD) {
				t.Fatalf("compiled backend: same seed, different trace")
			}

			// Cross-backend: weights intern to different indices but the
			// rendered trace and the value-level outcome must agree.
			if !reflect.DeepEqual(traceA, traceC) {
				for i := range traceA {
					if i < len(traceC) && !reflect.DeepEqual(traceA[i], traceC[i]) {
						t.Fatalf("trace diverges at event %d:\n dyn: %+v\ncomp: %+v", i, traceA[i], traceC[i])
					}
				}
				t.Fatalf("trace length diverges across backends: %d vs %d", len(traceA), len(traceC))
			}
			if !reflect.DeepEqual(outA.Convergence, outC.Convergence) {
				t.Fatalf("convergence telemetry diverges across backends:\n dyn: %+v\ncomp: %+v",
					outA.Convergence, outC.Convergence)
			}
			if !reflect.DeepEqual(outA.Weights, outC.Weights) || !reflect.DeepEqual(outA.Paths, outC.Paths) {
				t.Fatal("routing state diverges across backends")
			}

			// Different seed ⇒ (almost surely) a different message
			// schedule; the telemetry must reflect that rather than being
			// seed-independent boilerplate.
			outE, traceE := run(dyn, seed+1000)
			if reflect.DeepEqual(traceA, traceE) && outA.Steps == outE.Steps {
				t.Log("warning: distinct seeds produced identical runs (possible but unlikely)")
			}
			_ = outE
		})
	}
}

// TestConvergenceTelemetryCounts sanity-checks the Convergence
// aggregates against the trace on a run with a failure mid-flight.
func TestConvergenceTelemetryCounts(t *testing.T) {
	a, err := core.InferString("delay(32,4)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(5)), 8, graph.UniformLabels(a.OT.F.Size()))

	// Pre-run without events to find an arc a routed node actually
	// selected, so the failure below is guaranteed to force a re-route.
	pre := protocol.Run(a.OT, g, protocol.Config{
		Dest: 0, Origin: a.OT.DefaultOrigin(), Rand: rand.New(rand.NewSource(9)),
	})
	failArc := -1
	for u := g.N - 1; u > 0 && failArc < 0; u-- {
		if !pre.Routed[u] {
			continue
		}
		for i, arc := range g.Arcs {
			if arc.From == u && arc.To == pre.NextHop[u] {
				failArc = i
				break
			}
		}
	}
	if failArc < 0 {
		t.Fatal("no selected arc found to fail")
	}

	tr := telemetry.NewRingTracer(1 << 14)
	out := protocol.Run(a.OT, g, protocol.Config{
		Dest:   0,
		Origin: a.OT.DefaultOrigin(),
		Rand:   rand.New(rand.NewSource(9)),
		Events: []protocol.LinkEvent{{At: 30, Arc: failArc, Fail: true}},
		Trace:  tr,
	})
	if !out.Converged {
		t.Fatal("ring with one failure must reconverge")
	}
	c := out.Convergence
	var deliveries, selects int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "deliver":
			deliveries++
		case "select":
			selects++
		}
	}
	var totalDeliveries, totalFlaps int
	for u := range c.Deliveries {
		totalDeliveries += c.Deliveries[u]
		totalFlaps += c.Flaps[u]
	}
	if totalDeliveries != deliveries || totalDeliveries != out.Steps {
		t.Fatalf("deliveries: convergence says %d, trace says %d, steps say %d",
			totalDeliveries, deliveries, out.Steps)
	}
	if totalFlaps != c.TotalFlaps || selects != c.TotalFlaps {
		t.Fatalf("flaps: per-node sum %d, total %d, trace selects %d",
			totalFlaps, c.TotalFlaps, selects)
	}
	if c.QuiescedAt <= 30 {
		t.Fatalf("quiescence at %d must postdate the At=30 failure", c.QuiescedAt)
	}
	if c.Announcements[0] == 0 {
		t.Fatal("the destination must announce at least once")
	}
}
