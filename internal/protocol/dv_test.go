package protocol

import (
	"math/rand"
	"testing"

	"metarouting/internal/graph"
)

// countTopology is the classic count-to-infinity setup: 1 → 0 directly,
// and a 2-cycle between 1 and 2.
func countTopology() *graph.Graph {
	return graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0}, // arc 0: the only exit
		{From: 2, To: 1, Label: 0},
		{From: 1, To: 2, Label: 0},
	})
}

// TestDistanceVectorCountsToCeiling: after the exit fails, distance
// vector has 1 and 2 bouncing routes off each other, counting up until
// the saturating ceiling ⊤ absorbs the process — "counting to infinity",
// bounded by the finite carrier exactly as RIP bounds it at 16.
func TestDistanceVectorCountsToCeiling(t *testing.T) {
	a := alg(t, "delay(16,1)")
	g := countTopology()
	r := rand.New(rand.NewSource(13))
	out := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 1, Rand: r,
		DistanceVector: true,
		Events:         []LinkEvent{{At: 50, Arc: 0, Fail: true}},
	})
	if !out.Converged {
		t.Fatalf("bounded DV must converge (at the ceiling): %s", out.Describe())
	}
	// Both nodes end at the ceiling ⊤ = 16 — the "unreachable" marker.
	for _, u := range []int{1, 2} {
		if !out.Routed[u] || out.Weights[u] != 16 {
			t.Fatalf("node %d must count up to ⊤=16: %s", u, out.Describe())
		}
	}
	// The count must have taken many more messages than the path-vector
	// run below — that is the cost of not carrying paths.
	pv := Run(a, g, Config{
		Dest: 0, Origin: 0, MaxDelay: 1, Rand: rand.New(rand.NewSource(13)),
		Events: []LinkEvent{{At: 50, Arc: 0, Fail: true}},
	})
	if !pv.Converged {
		t.Fatal("path vector must converge")
	}
	if pv.Routed[1] || pv.Routed[2] {
		t.Fatalf("path vector must withdraw (loop rejection): %s", pv.Describe())
	}
	if out.Steps <= pv.Steps {
		t.Fatalf("count-to-ceiling must cost more messages: DV=%d PV=%d", out.Steps, pv.Steps)
	}
}

// TestDistanceVectorAgreesWhenStable: absent failures, DV and PV converge
// to the same weights on increasing algebras.
func TestDistanceVectorAgreesWhenStable(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(3))
		dv := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 2,
			Rand: rand.New(rand.NewSource(int64(trial))), DistanceVector: true})
		pv := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 2,
			Rand: rand.New(rand.NewSource(int64(trial)))})
		if !dv.Converged || !pv.Converged {
			t.Fatalf("trial %d: both must converge", trial)
		}
		for u := 0; u < g.N; u++ {
			if dv.Routed[u] != pv.Routed[u] {
				t.Fatalf("trial %d node %d: routedness differs", trial, u)
			}
			if dv.Routed[u] && dv.Weights[u] != pv.Weights[u] {
				t.Fatalf("trial %d node %d: DV %v vs PV %v", trial, u, dv.Weights[u], pv.Weights[u])
			}
		}
	}
}

// TestNextHopPopulated: outcomes expose next hops in both modes.
func TestNextHopPopulated(t *testing.T) {
	a := alg(t, "delay(32,2)")
	g := countTopology()
	r := rand.New(rand.NewSource(15))
	out := Run(a, g, Config{Dest: 0, Origin: 0, MaxDelay: 1, Rand: r})
	if out.NextHop[1] != 0 || out.NextHop[2] != 1 {
		t.Fatalf("next hops = %v", out.NextHop)
	}
	if out.NextHop[0] != -1 {
		t.Fatal("destination has no next hop")
	}
}
