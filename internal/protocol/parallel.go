// Parallel discrete-event simulation engine.
//
// Run shards per-node event wheels across an internal/sched worker pool
// and advances simulation time in tick-sized windows with a barrier
// merge between them. The design exploits two structural facts:
//
//  1. Every message delay is ≥ 1 tick, so a message processed at tick T
//     can only schedule deliveries at ≥ T+1 — all deliveries at one tick
//     are causally independent across nodes, and the whole tick is a safe
//     parallel window with no lookahead computation.
//  2. Node state (RIB, best route, per-sender sequence and delay-draw
//     counters, per-in-arc FIFO floors) partitions by node, and a shard
//     owns all of its nodes' state — workers never share mutable state
//     inside a window.
//
// Determinism. With Config.PerNodeDelays, a node's delay draws are a pure
// function of (Seed, node, draw counter), and its draw/sequence counters
// advance only with its own activity — which the shard replays in the
// serial engine's exact per-node order (deliveries pop in (time, sender,
// seq) order; topology events fire between windows, exactly where the
// serial engine fires them). Messages produced inside a window land in
// per-shard outboxes and are merged into the destination wheels at the
// barrier; since (time, sender, seq) is a total order on messages, wheel
// pop order is independent of insertion order. The result: the same
// (engine, graph, Config) produces an Outcome bit-identical to
// RunEngine's, regardless of worker count or interleaving — the serial
// engine stays the differential oracle, and the determinism suite holds
// the two equal under the race detector.
package protocol

import (
	"context"
	"fmt"
	"sort"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/sched"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// inlineWindow is the window-size cutover below which a window is
// processed on the coordinator goroutine instead of being fanned out:
// for a handful of messages the pool hand-off costs more than the work.
// Inline processing is outcome-identical (windows are order-free across
// nodes), so the cutover is a pure performance knob.
const inlineWindow = 64

// Parallel is a reusable parallel simulation engine: a fixed sched pool
// whose workers process event-wheel shards. One Parallel can run many
// simulations, sequentially or concurrently (Run is safe for concurrent
// use; each call owns its simulation state and uses the pool only
// through Map).
type Parallel struct {
	pool   *sched.Pool[struct{}]
	shards int
}

// NewParallel starts a parallel engine with the given shard/worker count
// (≤ 0: sched.DefaultWorkers). Close releases the workers.
func NewParallel(shards int) *Parallel {
	if shards <= 0 {
		shards = sched.DefaultWorkers()
	}
	return &Parallel{
		pool:   sched.New(shards, func() struct{} { return struct{}{} }),
		shards: shards,
	}
}

// Shards returns the engine's shard (= worker) count.
func (p *Parallel) Shards() int { return p.shards }

// Close shuts the worker pool down. No Run may be in flight or follow.
func (p *Parallel) Close() { p.pool.Close() }

// RunParallel is the one-shot convenience wrapper: it builds a parallel
// engine, runs the simulation, and tears the engine down.
func RunParallel(ctx context.Context, eng exec.Algebra, g *graph.Graph, cfg Config, shards int) (*Outcome, error) {
	p := NewParallel(shards)
	defer p.Close()
	return p.Run(ctx, eng, g, cfg)
}

// pmsg is the parallel engine's message: a value type so wheels hold
// flat slices instead of heap-boxed pointers.
type pmsg struct {
	at       int64
	from, to int32
	seq      int32
	withdraw bool
	rt       route
}

// pmsgLess is the (time, sender, seq) delivery order — a total order on
// messages (per-sender seq is unique), so wheel pop order is independent
// of insertion order.
func pmsgLess(a, b *pmsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// wheel is a shard's event wheel: a value-typed binary min-heap in
// (time, sender, seq) order.
type wheel struct{ h []pmsg }

func (w *wheel) push(m pmsg) {
	w.h = append(w.h, m)
	i := len(w.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pmsgLess(&w.h[i], &w.h[p]) {
			break
		}
		w.h[i], w.h[p] = w.h[p], w.h[i]
		i = p
	}
}

// peekAt returns the next delivery time, or -1 when the wheel is empty.
func (w *wheel) peekAt() int64 {
	if len(w.h) == 0 {
		return -1
	}
	return w.h[0].at
}

func (w *wheel) pop() pmsg {
	top := w.h[0]
	n := len(w.h) - 1
	w.h[0] = w.h[n]
	w.h = w.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && pmsgLess(&w.h[l], &w.h[small]) {
			small = l
		}
		if r < n && pmsgLess(&w.h[r], &w.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		w.h[i], w.h[small] = w.h[small], w.h[i]
		i = small
	}
	return top
}

// obsRec buffers one delivery's observer/trace output inside a window,
// keyed by the delivered message so the barrier can emit records in the
// serial engine's global (sender, seq) order.
type obsRec struct {
	from, seq int32
	obs       []Event
	trs       []telemetry.TraceEvent
}

// pshard is one event-wheel shard: the wheel, the window's popped batch,
// the outbox of messages produced during the window, and the buffered
// observer/trace records. A shard is touched by exactly one worker per
// window; the coordinator owns it at barriers.
type pshard struct {
	wheel  wheel
	batch  []pmsg
	outbox []pmsg
	recs   []obsRec
}

// psim is one parallel simulation run. Node-indexed state is written
// only by the owning shard inside windows and only by the coordinator at
// barriers.
type psim struct {
	eng      exec.Algebra
	g        *graph.Graph
	cfg      *Config
	nodes    []node
	disabled []bool
	conv     Convergence
	lastAt   []int64  // per in-arc FIFO floor (owned by the arc's head shard)
	seq      []int32  // per-sender sequence counters
	draw     []uint64 // per-sender delay-draw counters
	shards   []pshard
	nshards  int
	tracing  bool
	now      int64
	maxAt    int64
}

func (ps *psim) shardOf(u int) int { return u % ps.nshards }

// advertise mirrors the serial engine's advertise: u's current best (or
// a withdrawal) to every enabled in-neighbour, with the per-sender delay
// draw and per-arc FIFO clamp. Messages go to the caller's outbox; the
// coordinator distributes them at the barrier.
func (ps *psim) advertise(s *pshard, u int) {
	for _, ai := range ps.g.In(u) {
		if ps.disabled[ai] {
			continue
		}
		p := ps.g.Arcs[ai].From
		at := ps.now + nodeDelay(ps.cfg.Seed, u, ps.draw[u], ps.cfg.MaxDelay)
		ps.draw[u]++
		if at <= ps.lastAt[ai] {
			at = ps.lastAt[ai] + 1
		}
		ps.lastAt[ai] = at
		m := pmsg{at: at, from: int32(u), to: int32(p), seq: ps.seq[u]}
		ps.seq[u]++
		if ps.nodes[u].hasBest {
			m.rt = ps.nodes[u].best
		} else {
			m.withdraw = true
		}
		ps.conv.Announcements[u]++
		s.outbox = append(s.outbox, m)
	}
}

// reselect recomputes u's best from its RIB over enabled arcs — the
// serial engine's selection rule, verbatim.
func (ps *psim) reselect(u int) bool {
	if u == ps.cfg.Dest {
		return false
	}
	prevHas, prev, prevFrom := ps.nodes[u].hasBest, ps.nodes[u].best, ps.nodes[u].bestFrom
	ps.nodes[u].hasBest = false
	ps.nodes[u].bestFrom = -1
	for _, ai := range ps.g.Out(u) {
		if ps.disabled[ai] {
			continue
		}
		v := ps.g.Arcs[ai].To
		cand, ok := ps.nodes[u].rib[v]
		if !ok {
			continue
		}
		if !ps.nodes[u].hasBest || ps.eng.Lt(cand.weight, ps.nodes[u].best.weight) {
			ps.nodes[u].best = cand
			ps.nodes[u].hasBest = true
			ps.nodes[u].bestFrom = v
		}
	}
	changed := prevHas != ps.nodes[u].hasBest ||
		(ps.nodes[u].hasBest && (prevFrom != ps.nodes[u].bestFrom || prev.weight != ps.nodes[u].best.weight ||
			!samePath(prev.path, ps.nodes[u].best.path)))
	if changed {
		ps.conv.Flaps[u]++
	}
	return changed
}

// selectEvents renders u's committed route change as observer/trace
// events (the serial engine's noteSelect, in buffered form).
func (ps *psim) selectEvents(u int, rec *obsRec) {
	if ps.cfg.Observer != nil {
		ev := Event{Kind: EvSelect, At: ps.now, Node: u, Withdraw: !ps.nodes[u].hasBest}
		if ps.nodes[u].hasBest {
			ev.Weight = ps.eng.Value(ps.nodes[u].best.weight)
			ev.Path = ps.nodes[u].best.path
		}
		rec.obs = append(rec.obs, ev)
	}
	if ps.cfg.Trace != nil {
		detail := "lost"
		if ps.nodes[u].hasBest {
			detail = fmt.Sprintf("%s %v", value.Format(ps.eng.Value(ps.nodes[u].best.weight)), ps.nodes[u].best.path)
		}
		rec.trs = append(rec.trs, telemetry.TraceEvent{At: ps.now, Kind: "select", Node: u, Detail: detail})
	}
}

// deliver processes one message at u — the serial engine's delivery
// body. Observer/trace output is buffered on rec for ordered emission at
// the barrier.
func (ps *psim) deliver(s *pshard, m pmsg) {
	u := int(m.to)
	ps.conv.Deliveries[u]++
	var rec *obsRec
	if ps.tracing {
		s.recs = append(s.recs, obsRec{from: m.from, seq: m.seq})
		rec = &s.recs[len(s.recs)-1]
		if ps.cfg.Observer != nil {
			ev := Event{Kind: EvDeliver, At: ps.now, Node: u, From: int(m.from),
				Withdraw: m.withdraw, Path: m.rt.path}
			if !m.withdraw {
				ev.Weight = ps.eng.Value(m.rt.weight)
			}
			rec.obs = append(rec.obs, ev)
		}
		if ps.cfg.Trace != nil {
			detail := "withdraw"
			if !m.withdraw {
				detail = fmt.Sprintf("%s %v", value.Format(ps.eng.Value(m.rt.weight)), m.rt.path)
			}
			rec.trs = append(rec.trs, telemetry.TraceEvent{At: ps.now, Kind: "deliver", Node: u, From: int(m.from), Detail: detail})
		}
	}
	// Resolve the arc (u → m.from) the advertisement travelled against;
	// deliveries over a failed link are lost.
	arcIdx := -1
	for _, ai := range ps.g.Out(u) {
		if ps.g.Arcs[ai].To == int(m.from) {
			arcIdx = ai
			break
		}
	}
	if arcIdx < 0 || ps.disabled[arcIdx] {
		return
	}
	if m.withdraw {
		delete(ps.nodes[u].rib, int(m.from))
	} else if !ps.cfg.DistanceVector && m.rt.contains(u) {
		delete(ps.nodes[u].rib, int(m.from))
	} else {
		w := ps.eng.Apply(ps.g.Arcs[arcIdx].Label, m.rt.weight)
		var path []int
		if !ps.cfg.DistanceVector {
			path = make([]int, 0, len(m.rt.path)+1)
			path = append(path, u)
			path = append(path, m.rt.path...)
		}
		ps.nodes[u].rib[int(m.from)] = route{weight: w, path: path}
	}
	if ps.reselect(u) {
		if rec != nil {
			ps.selectEvents(u, rec)
		}
		ps.advertise(s, u)
	}
}

// fire applies a topology event at the barrier — the serial engine's
// fire, with observer/trace emitted directly (the coordinator owns the
// whole simulation between windows).
func (ps *psim) fire(ev LinkEvent) {
	if ev.Arc < 0 || ev.Arc >= len(ps.g.Arcs) || ps.disabled[ev.Arc] == ev.Fail {
		return
	}
	ps.disabled[ev.Arc] = ev.Fail
	arc := ps.g.Arcs[ev.Arc]
	if ps.cfg.Observer != nil {
		ps.cfg.Observer(Event{Kind: EvLinkChange, At: ps.now, Node: arc.From, Arc: ev.Arc, Fail: ev.Fail})
	}
	if ps.cfg.Trace != nil {
		detail := "up"
		if ev.Fail {
			detail = "fail"
		}
		ps.cfg.Trace.Trace(telemetry.TraceEvent{At: ps.now, Kind: "link", Node: arc.From, Arc: ev.Arc, Detail: detail})
	}
	if ev.Fail {
		delete(ps.nodes[arc.From].rib, arc.To)
		if ps.reselect(arc.From) {
			var rec obsRec
			ps.selectEvents(arc.From, &rec)
			ps.emitRec(&rec)
			ps.advertise(&ps.shards[ps.shardOf(arc.From)], arc.From)
		}
	} else {
		ps.advertise(&ps.shards[ps.shardOf(arc.To)], arc.To)
	}
}

// emitRec flushes one record's buffered events to the observer/tracer.
func (ps *psim) emitRec(rec *obsRec) {
	for i := range rec.obs {
		ps.cfg.Observer(rec.obs[i])
	}
	for i := range rec.trs {
		ps.cfg.Trace.Trace(rec.trs[i])
	}
}

// merge is the deterministic barrier merge: distribute every outbox
// message to its destination shard's wheel (updating maxAt), then emit
// the window's buffered observer/trace records in the serial engine's
// global (sender, seq) order.
func (ps *psim) merge() {
	for i := range ps.shards {
		s := &ps.shards[i]
		for _, m := range s.outbox {
			if m.at > ps.maxAt {
				ps.maxAt = m.at
			}
			ps.shards[ps.shardOf(int(m.to))].wheel.push(m)
		}
		s.outbox = s.outbox[:0]
	}
	if !ps.tracing {
		return
	}
	var recs []obsRec
	for i := range ps.shards {
		recs = append(recs, ps.shards[i].recs...)
		ps.shards[i].recs = ps.shards[i].recs[:0]
	}
	// All records belong to the current tick; (sender, seq) is unique, so
	// this sort reproduces the serial pop order exactly.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].from != recs[j].from {
			return recs[i].from < recs[j].from
		}
		return recs[i].seq < recs[j].seq
	})
	for i := range recs {
		ps.emitRec(&recs[i])
	}
}

// Run simulates the path-vector protocol on the parallel engine. The
// configuration must set PerNodeDelays — the shared-Rand delay stream is
// drawn in global processing order and is inherently serial. Same
// (engine, graph, Config) as a RunEngine call ⇒ bit-identical Outcome
// and identical observer/trace streams. Unlike RunEngine it returns
// errors instead of panicking; a context cancellation abandons the run
// and returns ctx.Err().
func (p *Parallel) Run(ctx context.Context, eng exec.Algebra, g *graph.Graph, cfg Config) (*Outcome, error) {
	if err := cfg.Validate(g); err != nil {
		return nil, err
	}
	if !cfg.PerNodeDelays {
		return nil, fmt.Errorf("protocol: the parallel engine requires Config.PerNodeDelays (shared-Rand delay draws are inherently serial)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The dynamic backend interns lazily; wrap it for concurrent use.
	// (Index assignment order then depends on scheduling, but hash-consing
	// keeps index equality ≡ value equality, so behaviour is unchanged.)
	eng = exec.Concurrent(eng)
	origin, err := eng.Intern(cfg.Origin)
	if err != nil {
		return nil, fmt.Errorf("protocol: %v", err)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200 * g.N * g.N
	}

	ps := &psim{
		eng:      eng,
		g:        g,
		cfg:      &cfg,
		nodes:    make([]node, g.N),
		disabled: make([]bool, len(g.Arcs)),
		lastAt:   make([]int64, len(g.Arcs)),
		seq:      make([]int32, g.N),
		draw:     make([]uint64, g.N),
		shards:   make([]pshard, p.shards),
		nshards:  p.shards,
		tracing:  cfg.Observer != nil || cfg.Trace != nil,
	}
	for i := range ps.nodes {
		ps.nodes[i] = node{rib: make(map[int]route), bestFrom: -1}
	}
	ps.nodes[cfg.Dest].best = route{weight: origin, path: []int{cfg.Dest}}
	ps.nodes[cfg.Dest].hasBest = true
	ps.conv = Convergence{
		Announcements: make([]int, g.N),
		Deliveries:    make([]int, g.N),
		Flaps:         make([]int, g.N),
	}

	events := append([]LinkEvent(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	ps.advertise(&ps.shards[ps.shardOf(cfg.Dest)], cfg.Dest)
	ps.merge()

	steps := 0
	nextEv := 0
	roundEnd := int64(0)
	leftover := false
	for steps < maxSteps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nextMsg := int64(-1)
		for i := range ps.shards {
			if t := ps.shards[i].wheel.peekAt(); t >= 0 && (nextMsg < 0 || t < nextMsg) {
				nextMsg = t
			}
		}
		eventNext := nextEv < len(events) && (nextMsg < 0 || events[nextEv].At <= nextMsg)
		if !eventNext && nextMsg < 0 {
			break
		}
		t := nextMsg
		if eventNext {
			t = events[nextEv].At
		}
		if t > roundEnd {
			if cfg.MaxRounds > 0 && ps.conv.Rounds >= cfg.MaxRounds {
				break
			}
			ps.conv.Rounds++
			roundEnd = ps.maxAt
			if roundEnd < t {
				roundEnd = t
			}
		}
		if eventNext {
			ps.now = t
			ps.fire(events[nextEv])
			nextEv++
			ps.merge()
			continue
		}

		// Window T: pop every delivery at this tick into shard batches.
		ps.now = t
		total := 0
		for i := range ps.shards {
			s := &ps.shards[i]
			s.batch = s.batch[:0]
			for s.wheel.peekAt() == t {
				s.batch = append(s.batch, s.wheel.pop())
			}
			total += len(s.batch)
		}
		switch {
		case steps+total > maxSteps:
			// The step budget expires mid-window: replay the serial
			// engine's cut exactly by processing the window's messages in
			// global (sender, seq) order until the budget runs out.
			all := make([]pmsg, 0, total)
			for i := range ps.shards {
				all = append(all, ps.shards[i].batch...)
			}
			sort.Slice(all, func(i, j int) bool { return pmsgLess(&all[i], &all[j]) })
			for i := 0; i < maxSteps-steps; i++ {
				m := all[i]
				ps.deliver(&ps.shards[ps.shardOf(int(m.to))], m)
			}
			steps = maxSteps
			leftover = true
		case total < inlineWindow || ps.nshards == 1:
			// Small window: the pool hand-off would dominate; process
			// inline. Order across nodes inside a window is immaterial.
			for i := range ps.shards {
				s := &ps.shards[i]
				for _, m := range s.batch {
					ps.deliver(s, m)
				}
			}
			steps += total
		default:
			if err := p.pool.Map(ctx, ps.nshards, func(i int, _ struct{}) error {
				s := &ps.shards[i]
				for j := range s.batch {
					ps.deliver(s, s.batch[j])
				}
				return nil
			}); err != nil {
				return nil, err
			}
			steps += total
		}
		ps.merge()
	}

	ps.conv.QuiescedAt = ps.now
	for u := range ps.conv.Flaps {
		ps.conv.TotalFlaps += ps.conv.Flaps[u]
	}
	remaining := leftover
	for i := range ps.shards {
		if len(ps.shards[i].wheel.h) > 0 {
			remaining = true
		}
	}
	out := &Outcome{
		Converged:   !remaining,
		Steps:       steps,
		Routed:      make([]bool, g.N),
		Weights:     make([]value.V, g.N),
		Paths:       make([][]int, g.N),
		NextHop:     make([]int, g.N),
		Convergence: ps.conv,
	}
	out.Oscillating = !out.Converged
	for i := range ps.nodes {
		out.NextHop[i] = -1
		out.Routed[i] = ps.nodes[i].hasBest
		if ps.nodes[i].hasBest {
			out.Weights[i] = eng.Value(ps.nodes[i].best.weight)
			out.Paths[i] = ps.nodes[i].best.path
			out.NextHop[i] = ps.nodes[i].bestFrom
		}
	}
	return out, nil
}
