package protocol

import (
	"container/heap"
	"math/rand"
	"testing"
)

// TestMsgQueueTieBreak: simultaneous deliveries pop in (time, sender,
// seq) order regardless of heap-insertion order, so a run is a pure
// function of its seed — not of scheduler internals.
func TestMsgQueueTieBreak(t *testing.T) {
	msgs := []*message{
		{at: 5, from: 2, seq: 9},
		{at: 5, from: 0, seq: 7},
		{at: 5, from: 2, seq: 3},
		{at: 2, from: 9, seq: 1},
		{at: 5, from: 1, seq: 4},
		{at: 7, from: 0, seq: 0},
		{at: 5, from: 0, seq: 2},
	}
	want := []*message{
		{at: 2, from: 9, seq: 1},
		{at: 5, from: 0, seq: 2},
		{at: 5, from: 0, seq: 7},
		{at: 5, from: 1, seq: 4},
		{at: 5, from: 2, seq: 3},
		{at: 5, from: 2, seq: 9},
		{at: 7, from: 0, seq: 0},
	}
	// Every insertion order must produce the same pop order.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(len(msgs))
		var q msgQueue
		for _, i := range perm {
			heap.Push(&q, msgs[i])
		}
		for i := range want {
			got := heap.Pop(&q).(*message)
			if got.at != want[i].at || got.from != want[i].from || got.seq != want[i].seq {
				t.Fatalf("trial %d pop %d: got (at=%d from=%d seq=%d), want (at=%d from=%d seq=%d)",
					trial, i, got.at, got.from, got.seq, want[i].at, want[i].from, want[i].seq)
			}
		}
	}
}
