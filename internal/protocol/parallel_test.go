package protocol_test

// Differential determinism suite (satellite): the parallel engine must
// produce an Outcome bit-identical to the serial oracle — routes,
// traces, convergence counters, rounds — for every seed, across random
// algebras × topologies × both execution backends × shard counts. CI
// runs this under -race, which also proves the window sharding never
// lets two workers touch the same node state.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/telemetry"
)

// diffTopos builds the differential topology suite.
func diffTopos(r *rand.Rand, labels int) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":       graph.Random(r, 16, 0.25, graph.UniformLabels(labels)),
		"ring":      graph.Ring(r, 12, graph.UniformLabels(labels)),
		"grid":      graph.Grid(r, 3, 4, graph.UniformLabels(labels)),
		"scalefree": graph.ScaleFree(r, 20, 2, graph.UniformLabels(labels)),
	}
}

func TestParallelMatchesSerialOracle(t *testing.T) {
	exprs := []string{"delay(32,3)", "hops(16)", "lex(delay(16,3), hops(8))"}
	for _, expr := range exprs {
		a, err := core.InferString(expr)
		if err != nil {
			t.Fatal(err)
		}
		topoRand := rand.New(rand.NewSource(99))
		for topoName, g := range diffTopos(topoRand, a.OT.F.Size()) {
			// Staggered failures and a revival exercise the barrier's
			// event-firing path.
			events := []protocol.LinkEvent{
				{At: 30, Arc: 0, Fail: true},
				{At: 70, Arc: len(g.Arcs) / 2, Fail: true},
				{At: 120, Arc: 0, Fail: false},
			}
			for _, mode := range []exec.Mode{exec.ModeDynamic, exec.ModeCompiled} {
				eng, err := exec.New(a.OT, mode, a.OT.DefaultOrigin())
				if err != nil {
					t.Fatal(err)
				}
				for _, seed := range []int64{1, 42} {
					for _, shards := range []int{1, 3, 8} {
						name := fmt.Sprintf("%s/%s/%s/seed=%d/shards=%d", expr, topoName, mode, seed, shards)
						t.Run(name, func(t *testing.T) {
							cfg := protocol.Config{
								Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 3,
								PerNodeDelays: true, Seed: seed, Events: events,
							}
							serialTr := telemetry.NewRingTracer(1 << 15)
							scfg := cfg
							scfg.Trace = serialTr
							want := protocol.RunEngine(eng, g, scfg)

							parTr := telemetry.NewRingTracer(1 << 15)
							pcfg := cfg
							pcfg.Trace = parTr
							got, err := protocol.RunParallel(context.Background(), eng, g, pcfg, shards)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(want, got) {
								t.Fatalf("parallel outcome diverges from serial oracle:\nserial: %+v\nparallel: %+v", want, got)
							}
							if !reflect.DeepEqual(serialTr.Events(), parTr.Events()) {
								se, pe := serialTr.Events(), parTr.Events()
								for i := range se {
									if i >= len(pe) || !reflect.DeepEqual(se[i], pe[i]) {
										t.Fatalf("trace diverges at event %d:\nserial: %+v\nparallel: %+v", i, se[i], pe[i])
									}
								}
								t.Fatalf("trace length diverges: serial %d, parallel %d", len(se), len(pe))
							}
							if !want.Converged {
								t.Fatal("differential scenario should converge (increasing algebra)")
							}
							if want.Convergence.Rounds <= 0 {
								t.Fatal("rounds counter never advanced")
							}
						})
					}
				}
			}
		}
	}
}

// TestParallelBudgetCutMatchesSerial: when the step budget expires
// mid-window, the parallel engine must replay the serial engine's exact
// cut — same Steps, same partial routing state, Converged=false.
func TestParallelBudgetCutMatchesSerial(t *testing.T) {
	a, err := core.InferString("delay(32,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(5)), 14, 0.3, graph.UniformLabels(a.OT.F.Size()))
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	for _, budget := range []int{1, 7, 23, 61} {
		cfg := protocol.Config{
			Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 2,
			PerNodeDelays: true, Seed: 9, MaxSteps: budget,
		}
		want := protocol.RunEngine(eng, g, cfg)
		got, err := protocol.RunParallel(context.Background(), eng, g, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("budget=%d: cut diverges:\nserial: %+v\nparallel: %+v", budget, want, got)
		}
		if want.Converged {
			t.Fatalf("budget=%d should truncate the run", budget)
		}
	}
}

// TestParallelMaxRoundsCutMatchesSerial: the round cutoff must stop both
// engines at the identical point.
func TestParallelMaxRoundsCutMatchesSerial(t *testing.T) {
	a, err := core.InferString("delay(32,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(3)), 10, graph.UniformLabels(a.OT.F.Size()))
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	for _, maxRounds := range []int{1, 2, 3} {
		cfg := protocol.Config{
			Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 3,
			PerNodeDelays: true, Seed: 4, MaxRounds: maxRounds,
		}
		want := protocol.RunEngine(eng, g, cfg)
		got, err := protocol.RunParallel(context.Background(), eng, g, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("maxRounds=%d: diverges:\nserial: %+v\nparallel: %+v", maxRounds, want, got)
		}
		if want.Convergence.Rounds > maxRounds {
			t.Fatalf("maxRounds=%d: serial ran %d rounds", maxRounds, want.Convergence.Rounds)
		}
	}
}

// TestPerNodeDelaysSerialDeterminism: the per-node delay mode is itself
// a pure function of (Seed, Config) on the serial engine — the property
// the parallel equivalence builds on.
func TestPerNodeDelaysSerialDeterminism(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(77)), 12, 0.3, graph.UniformLabels(a.OT.F.Size()))
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	cfg := protocol.Config{Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 3, PerNodeDelays: true, Seed: 11}
	outA := protocol.RunEngine(eng, g, cfg)
	outB := protocol.RunEngine(eng, g, cfg)
	if !reflect.DeepEqual(outA, outB) {
		t.Fatal("per-node delay mode must be deterministic")
	}
	cfg.Seed = 12
	outC := protocol.RunEngine(eng, g, cfg)
	if reflect.DeepEqual(outA, outC) && outA.Steps == outC.Steps {
		t.Log("warning: distinct seeds produced identical runs (possible but unlikely)")
	}
}

// TestParallelRequiresPerNodeDelays: the shared-Rand stream is drawn in
// global processing order, so the parallel engine must reject it rather
// than silently break determinism.
func TestParallelRequiresPerNodeDelays(t *testing.T) {
	a, err := core.InferString("delay(8,2)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(2, []graph.Arc{{From: 1, To: 0, Label: 0}})
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	_, err = protocol.RunParallel(context.Background(), eng, g,
		protocol.Config{Dest: 0, Origin: a.OT.DefaultOrigin(), Rand: rand.New(rand.NewSource(1))}, 2)
	if err == nil {
		t.Fatal("shared-Rand config must be rejected")
	}
}

// TestParallelCancellation: a context canceled mid-run abandons the
// simulation with ctx.Err() and leaves the pool reusable — the parallel
// sim's cancellation path over sched.Map.
func TestParallelCancellation(t *testing.T) {
	a, err := core.InferString("delay(64,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(8)), 40, 0.2, graph.UniformLabels(a.OT.F.Size()))
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	p := protocol.NewParallel(4)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := protocol.Config{Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 3, PerNodeDelays: true, Seed: 2}
	if _, err := p.Run(ctx, eng, g, cfg); err != context.Canceled {
		t.Fatalf("pre-canceled context: want context.Canceled, got %v", err)
	}

	// The pool must be reusable after a cancellation: a fresh run on the
	// same Parallel matches the serial oracle.
	want := protocol.RunEngine(eng, g, cfg)
	got, err := p.Run(context.Background(), eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-cancel run diverges from serial oracle")
	}
}

// TestParallelConcurrentRuns: one Parallel engine hosts concurrent Run
// calls (the corpus runner's shape) — each must still match its serial
// oracle. Exercises concurrent sched.Map use on one pool under -race.
func TestParallelConcurrentRuns(t *testing.T) {
	a, err := core.InferString("delay(32,3)")
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	p := protocol.NewParallel(3)
	defer p.Close()

	type job struct {
		g    *graph.Graph
		cfg  protocol.Config
		want *protocol.Outcome
	}
	r := rand.New(rand.NewSource(21))
	jobs := make([]job, 6)
	for i := range jobs {
		g := graph.Random(r, 14, 0.3, graph.UniformLabels(a.OT.F.Size()))
		cfg := protocol.Config{
			Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 2,
			PerNodeDelays: true, Seed: int64(i + 1),
			Events: []protocol.LinkEvent{{At: 25, Arc: i % len(g.Arcs), Fail: true}},
		}
		jobs[i] = job{g: g, cfg: cfg, want: protocol.RunEngine(eng, g, cfg)}
	}
	errs := make(chan error, len(jobs))
	for i := range jobs {
		go func(j job) {
			got, err := p.Run(context.Background(), eng, j.g, j.cfg)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(j.want, got) {
				errs <- fmt.Errorf("concurrent run diverges from serial oracle")
				return
			}
			errs <- nil
		}(jobs[i])
	}
	for range jobs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelDistanceVector: the DV mode (no paths, no loop rejection)
// must also hold the serial equivalence — it shares every code path
// except route construction.
func TestParallelDistanceVector(t *testing.T) {
	a, err := core.InferString("delay(16,1)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 1, Label: 0},
		{From: 1, To: 2, Label: 0},
	})
	eng := exec.For(a.OT, a.OT.DefaultOrigin())
	cfg := protocol.Config{
		Dest: 0, Origin: a.OT.DefaultOrigin(), MaxDelay: 1,
		PerNodeDelays: true, Seed: 13, DistanceVector: true,
		Events: []protocol.LinkEvent{{At: 50, Arc: 0, Fail: true}},
	}
	want := protocol.RunEngine(eng, g, cfg)
	got, err := protocol.RunParallel(context.Background(), eng, g, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("DV mode diverges:\nserial: %+v\nparallel: %+v", want, got)
	}
}
