package sg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metarouting/internal/value"
)

// quickCI derives a deterministic CI semigroup from a seed.
func quickCI(seed int64, n int) *Semigroup {
	r := rand.New(rand.NewSource(seed))
	car := value.Ints(0, n-1)
	perm := r.Perm(n)
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	switch r.Intn(3) {
	case 0:
		s := New("qmin", car, func(a, b value.V) value.V {
			if inv[a.(int)] <= inv[b.(int)] {
				return a
			}
			return b
		})
		return s
	case 1:
		s := New("qmax", car, func(a, b value.V) value.V {
			if inv[a.(int)] >= inv[b.(int)] {
				return a
			}
			return b
		})
		return s
	default:
		return New("qand", value.Ints(0, 3), func(a, b value.V) value.V {
			return a.(int) & b.(int)
		})
	}
}

// Property: the lexicographic semigroup product is associative whenever
// defined over CI factors — pointwise, for arbitrary triples.
func TestQuickLexAssociativityPointwise(t *testing.T) {
	f := func(s1, s2 int64, raw [6]uint8) bool {
		a := quickCI(s1, 4)
		b := quickCI(s2, 4)
		if _, ok := b.Identity(); !ok {
			if st, _ := a.CheckSelective(nil, 0); st.String() != "true" {
				return true // undefined product: vacuous
			}
		}
		l, err := Lex(a, b)
		if err != nil {
			return true
		}
		na, nb := a.Car.Size(), b.Car.Size()
		x := value.Pair{A: a.Car.Elems[int(raw[0])%na], B: b.Car.Elems[int(raw[1])%nb]}
		y := value.Pair{A: a.Car.Elems[int(raw[2])%na], B: b.Car.Elems[int(raw[3])%nb]}
		z := value.Pair{A: a.Car.Elems[int(raw[4])%na], B: b.Car.Elems[int(raw[5])%nb]}
		return l.Op(l.Op(x, y), z) == l.Op(x, l.Op(y, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// Property: for selective first factors the lex product never invents
// elements — the result's components come from the operands.
func TestQuickLexSelectiveNoInvention(t *testing.T) {
	f := func(s2 int64, raw [4]uint8) bool {
		a := quickCI(1, 4) // qmin under a fixed permutation: selective
		b := quickCI(s2, 4)
		if _, ok := b.Identity(); !ok {
			return true
		}
		l, err := Lex(a, b)
		if err != nil {
			return true
		}
		na, nb := a.Car.Size(), b.Car.Size()
		x := value.Pair{A: a.Car.Elems[int(raw[0])%na], B: b.Car.Elems[int(raw[1])%nb]}
		y := value.Pair{A: a.Car.Elems[int(raw[2])%na], B: b.Car.Elems[int(raw[3])%nb]}
		got := l.Op(x, y).(value.Pair)
		if got.A != x.A && got.A != y.A {
			return false
		}
		// The T component is one of the inputs or their ⊕ (never α-injected
		// when S is selective).
		return got.B == x.B || got.B == y.B || got.B == b.Op(x.B, y.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Property: natural orders are compatible with the operation:
// a ⊕ b ≲ᴸ a and a ⊕ b ≲ᴸ b for CI semigroups (⊕ is the meet of NOᴸ).
func TestQuickNaturalLeftIsMeet(t *testing.T) {
	f := func(seed int64, ai, bi uint8) bool {
		s := quickCI(seed, 5)
		n := s.Car.Size()
		a, b := s.Car.Elems[int(ai)%n], s.Car.Elems[int(bi)%n]
		l := NaturalLeft(s)
		m := s.Op(a, b)
		return l.Leq(m, a) && l.Leq(m, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddIdentity leaves old combinations untouched and its α is a
// genuine two-sided identity.
func TestQuickAddIdentity(t *testing.T) {
	f := func(seed int64, ai, bi uint8) bool {
		s := quickCI(seed, 4)
		n := s.Car.Size()
		a, b := s.Car.Elems[int(ai)%n], s.Car.Elems[int(bi)%n]
		w := AddIdentity(s)
		if w.Op(a, b) != s.Op(a, b) {
			return false
		}
		alpha := value.V(value.Bot{})
		return w.Op(alpha, a) == a && w.Op(a, alpha) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Szendrei ×ω collapses exactly the ω_S-producing combinations.
func TestQuickSzendreiCollapse(t *testing.T) {
	// Fixed structure: multiplication mod 4 (absorber 0) × max monoid.
	prod := New("×mod4", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) * b.(int) % 4 })
	prod.WithAbsorber(0)
	mx := New("max", value.Ints(0, 3), func(a, b value.V) value.V {
		if a.(int) >= b.(int) {
			return a
		}
		return b
	})
	mx.WithIdentity(0)
	z, err := SzendreiLex(prod, mx)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a1, a2, b1, b2 uint8) bool {
		x1, y1 := 1+int(a1)%3, 1+int(b1)%3 // avoid ω_S = 0 in inputs
		x := value.Pair{A: x1, B: int(a2) % 4}
		y := value.Pair{A: y1, B: int(b2) % 4}
		got := z.Op(x, y)
		if prod.Op(x1, y1) == 0 {
			return got == value.V(value.Omega{})
		}
		p, ok := got.(value.Pair)
		return ok && p.A == prod.Op(x1, y1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
