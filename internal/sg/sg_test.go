package sg

import (
	"math/rand"
	"testing"

	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

func minSG(cap int) *Semigroup {
	s := New("min", value.Ints(0, cap), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	return s
}

func maxSG(cap int) *Semigroup {
	s := New("max", value.Ints(0, cap), func(a, b value.V) value.V {
		if a.(int) > b.(int) {
			return a
		}
		return b
	})
	return s
}

func plusModSG(n int) *Semigroup {
	return New("+mod", value.Ints(0, n-1), func(a, b value.V) value.V {
		return (a.(int) + b.(int)) % n
	})
}

func TestIdentityAbsorberDiscovery(t *testing.T) {
	s := minSG(5)
	e, ok := s.Identity()
	if !ok || e != 5 {
		t.Fatalf("identity = %v, %v", e, ok)
	}
	w, ok := s.Absorber()
	if !ok || w != 0 {
		t.Fatalf("absorber = %v, %v", w, ok)
	}
	p := plusModSG(4)
	if e, ok := p.Identity(); !ok || e != 0 {
		t.Fatalf("mod identity = %v, %v", e, ok)
	}
	if _, ok := p.Absorber(); ok {
		t.Fatal("modular addition has no absorber")
	}
}

func TestBasicChecks(t *testing.T) {
	s := minSG(4)
	s.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.Associative, prop.Commutative, prop.Idempotent, prop.Selective} {
		if !s.Props.Holds(id) {
			t.Fatalf("min should satisfy %s", id)
		}
	}
	p := plusModSG(4)
	p.CheckAll(nil, 0)
	if !p.Props.Holds(prop.Associative) || !p.Props.Holds(prop.Commutative) {
		t.Fatal("modular addition is associative and commutative")
	}
	if !p.Props.Fails(prop.Idempotent) || !p.Props.Fails(prop.Selective) {
		t.Fatal("modular addition is neither idempotent nor selective")
	}
}

func TestCheckAssociativeCatchesViolation(t *testing.T) {
	bad := New("sub", value.Ints(0, 3), func(a, b value.V) value.V {
		d := a.(int) - b.(int)
		if d < 0 {
			d = 0
		}
		return d
	})
	st, w := bad.CheckAssociative(nil, 0)
	if st != prop.False || w == "" {
		t.Fatalf("truncated subtraction is not associative: %v %q", st, w)
	}
}

func TestFoldLeft(t *testing.T) {
	s := minSG(9)
	v, ok := s.FoldLeft([]value.V{7, 3, 5})
	if !ok || v != 3 {
		t.Fatalf("fold = %v, %v", v, ok)
	}
	v, ok = s.FoldLeft(nil)
	if !ok || v != 9 {
		t.Fatalf("empty fold must give the identity: %v, %v", v, ok)
	}
}

func TestNaturalOrders(t *testing.T) {
	s := minSG(5)
	// NOᴸ(min): a ≲ b ⟺ a = min(a,b) ⟺ a ≤ b numerically.
	l := NaturalLeft(s)
	if !l.Leq(2, 4) || l.Leq(4, 2) {
		t.Fatal("NOᴸ(min) must coincide with ≤")
	}
	// NOᴿ(min): a ≲ b ⟺ b = min(a,b) ⟺ b ≤ a numerically (the dual).
	r := NaturalRight(s)
	if !r.Leq(4, 2) || r.Leq(2, 4) {
		t.Fatal("NOᴿ(min) must coincide with ≥")
	}
	// Duality for commutative idempotent semigroups.
	for a := 0; a <= 5; a++ {
		for b := 0; b <= 5; b++ {
			if l.Leq(a, b) != r.Leq(b, a) {
				t.Fatalf("NOᴸ and NOᴿ must be dual at %d,%d", a, b)
			}
		}
	}
	// Bot of NOᴸ is the absorber (0 = min-absorber is most preferred).
	if b, ok := l.Bot(); !ok || b != 0 {
		t.Fatalf("NOᴸ bot = %v, %v", b, ok)
	}
	if top, ok := l.Top(); !ok || top != 5 {
		t.Fatalf("NOᴸ top = %v, %v", top, ok)
	}
}

func TestNaturalOrderIsPartialOrderForCI(t *testing.T) {
	rsrc := rand.New(rand.NewSource(3))
	l := NaturalLeft(minSG(4))
	l.CheckAll(rsrc, 0)
	for _, id := range []prop.ID{prop.Reflexive, prop.Transitive, prop.Antisymmetric} {
		if !l.Props.Holds(id) {
			t.Fatalf("natural order of a CI semigroup must satisfy %s", id)
		}
	}
}

// TestLexCases verifies the four-case definition of §IV.A directly.
func TestLexCases(t *testing.T) {
	s := minSG(9) // selective
	tt := maxSG(9)
	tt.WithIdentity(0)
	l := MustLex(s, tt)
	// Case s1 = s2: combine second components.
	if got := l.Op(value.Pair{A: 3, B: 4}, value.Pair{A: 3, B: 2}); got != (value.Pair{A: 3, B: 4}) {
		t.Fatalf("equal firsts: got %v", got)
	}
	// Case s wins on the left.
	if got := l.Op(value.Pair{A: 2, B: 1}, value.Pair{A: 5, B: 9}); got != (value.Pair{A: 2, B: 1}) {
		t.Fatalf("left wins: got %v", got)
	}
	// Case s wins on the right.
	if got := l.Op(value.Pair{A: 7, B: 1}, value.Pair{A: 4, B: 9}); got != (value.Pair{A: 4, B: 9}) {
		t.Fatalf("right wins: got %v", got)
	}
}

// TestLexFourthCase exercises the identity-injection case: a non-selective
// first factor whose combination is a third element.
func TestLexFourthCase(t *testing.T) {
	// ⊕ = bitwise AND on {0..3}: commutative, idempotent, NOT selective
	// (1 ⊕ 2 = 0).
	and := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	tt := maxSG(5)
	tt.WithIdentity(0)
	l, err := Lex(and, tt)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Op(value.Pair{A: 1, B: 4}, value.Pair{A: 2, B: 5})
	// 1 & 2 = 0, a third element: the T component must be the identity 0.
	if got != (value.Pair{A: 0, B: 0}) {
		t.Fatalf("fourth case must inject α_T: got %v", got)
	}
}

func TestLexUndefined(t *testing.T) {
	and := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	noID := New("max+1", value.Ints(0, 3), func(a, b value.V) value.V {
		m := a.(int)
		if b.(int) > m {
			m = b.(int)
		}
		if m < 3 {
			m++
		}
		return m
	})
	if _, err := Lex(and, noID); err == nil {
		t.Fatal("lex of non-selective × non-monoid must be undefined")
	}
}

// TestLexAssociativeCommutativeIdempotent: the product of CI semigroups is
// CI, and ⊕ is associative (§IV.A).
func TestLexAlgebraicLaws(t *testing.T) {
	l := MustLex(minSG(3), maxSG(3))
	l.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.Associative, prop.Commutative, prop.Idempotent} {
		if !l.Props.Holds(id) {
			t.Fatalf("lex of CI semigroups must satisfy %s: %s", id, l.Props.Get(id).Witness)
		}
	}
}

// TestTheorem3 verifies NOᴸ(S ×lex T) = NOᴸ(S) ×lex NOᴸ(T) and the NOᴿ
// version, by exhaustive comparison of the two orders.
func TestTheorem3(t *testing.T) {
	s := minSG(3)
	tt := maxSG(3)
	lexSG := MustLex(s, tt)

	lhsL := NaturalLeft(lexSG)
	rhsL := order.Lex(NaturalLeft(s), NaturalLeft(tt))
	lhsR := NaturalRight(lexSG)
	rhsR := order.Lex(NaturalRight(s), NaturalRight(tt))

	for _, a := range lexSG.Car.Elems {
		for _, b := range lexSG.Car.Elems {
			if lhsL.Leq(a, b) != rhsL.Leq(a, b) {
				t.Fatalf("NOᴸ mismatch at %v, %v", a, b)
			}
			if lhsR.Leq(a, b) != rhsR.Leq(a, b) {
				t.Fatalf("NOᴿ mismatch at %v, %v", a, b)
			}
		}
	}
}

// TestTheorem2NAry: S1 selective, S2 arbitrary CI, S3 monoid — the 3-ary
// product is defined, commutative and idempotent.
func TestTheorem2NAry(t *testing.T) {
	s1 := minSG(2) // selective
	s2 := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	s3 := maxSG(2)
	s3.WithIdentity(0)
	// s2 is not selective and not a monoid-tail problem: s3 is a monoid,
	// and s1 ×lex s2 needs s1 selective — both hold.
	l, err := LexN(s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	l.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.Associative, prop.Commutative, prop.Idempotent} {
		if !l.Props.Holds(id) {
			t.Fatalf("3-ary lex must satisfy %s: %s", id, l.Props.Get(id).Witness)
		}
	}
}

func TestTheorem2ViolationDetected(t *testing.T) {
	nonSel := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	noMonoid := New("max+1", value.Ints(0, 3), func(a, b value.V) value.V {
		m := a.(int)
		if b.(int) > m {
			m = b.(int)
		}
		if m < 3 {
			m++
		}
		return m
	})
	if _, err := LexN(nonSel, nonSel, noMonoid); err == nil {
		t.Fatal("non-selective prefix before a non-monoid must be rejected")
	}
}

func TestDirectProduct(t *testing.T) {
	d := Direct(minSG(3), maxSG(3))
	if got := d.Op(value.Pair{A: 1, B: 2}, value.Pair{A: 2, B: 1}); got != (value.Pair{A: 1, B: 2}) {
		t.Fatalf("direct product wrong: %v", got)
	}
	if e, ok := d.Identity(); !ok || e != (value.Pair{A: 3, B: 0}) {
		t.Fatalf("direct identity = %v, %v", e, ok)
	}
}

func TestSzendreiLex(t *testing.T) {
	s := minSG(3)
	s.WithAbsorber(0)
	tt := maxSG(3)
	tt.WithIdentity(0)
	z, err := SzendreiLex(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	// ω absorbs.
	if got := z.Op(value.Omega{}, value.Pair{A: 1, B: 2}); got != value.V(value.Omega{}) {
		t.Fatalf("ω must absorb: %v", got)
	}
	// min(1,2)=1 ≠ 0: ordinary lex behaviour.
	if got := z.Op(value.Pair{A: 1, B: 2}, value.Pair{A: 2, B: 3}); got != (value.Pair{A: 1, B: 2}) {
		t.Fatalf("ordinary case wrong: %v", got)
	}
	// min(… ) hitting the absorber 0 collapses to ω... requires operands
	// whose ⊕ yields 0; carrier excludes 0 itself, but min(a,b) of
	// non-zero values is non-zero, so use a semigroup where the absorber
	// arises from distinct elements.
	prod := New("×mod4", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) * b.(int) % 4 })
	prod.WithAbsorber(0)
	z2, err := SzendreiLex(prod, tt)
	if err != nil {
		t.Fatal(err)
	}
	if got := z2.Op(value.Pair{A: 2, B: 1}, value.Pair{A: 2, B: 1}); got != value.V(value.Omega{}) {
		t.Fatalf("collapse to ω expected: %v", got)
	}
	// Carrier excludes pairs whose first component is the absorber.
	for _, e := range z.Car.Elems {
		if p, ok := e.(value.Pair); ok && p.A == 0 {
			t.Fatalf("carrier must exclude ω_S pairs: %v", e)
		}
	}
	if w, ok := z.Absorber(); !ok || w != value.V(value.Omega{}) {
		t.Fatalf("ω must be the absorber: %v %v", w, ok)
	}
}

func TestSzendreiRequiresAbsorber(t *testing.T) {
	if _, err := SzendreiLex(plusModSG(4), maxSG(3).WithIdentity(0)); err == nil {
		t.Fatal("×ω without an absorbing first factor must fail")
	}
}

func TestAddIdentity(t *testing.T) {
	s := New("max+1", value.Ints(0, 3), func(a, b value.V) value.V {
		m := a.(int)
		if b.(int) > m {
			m = b.(int)
		}
		if m < 3 {
			m++
		}
		return m
	})
	n := AddIdentity(s)
	e, ok := n.Identity()
	if !ok || e != value.V(value.Bot{}) {
		t.Fatalf("adjoined identity = %v, %v", e, ok)
	}
	if got := n.Op(value.Bot{}, 2); got != 2 {
		t.Fatalf("α⊕2 = %v", got)
	}
	if got := n.Op(1, 2); got != s.Op(1, 2) {
		t.Fatal("old elements must combine as before")
	}
}

func TestAddAbsorber(t *testing.T) {
	n := AddAbsorber(plusModSG(4))
	w, ok := n.Absorber()
	if !ok || w != value.V(value.Top{}) {
		t.Fatalf("adjoined absorber = %v, %v", w, ok)
	}
	if got := n.Op(value.Top{}, 2); got != value.V(value.Top{}) {
		t.Fatalf("ω⊕2 = %v", got)
	}
	if e, ok := n.Identity(); !ok || e != 0 {
		t.Fatalf("identity must persist: %v, %v", e, ok)
	}
}

func TestSampledChecksInfinite(t *testing.T) {
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(50) })
	plus := New("+", car, func(a, b value.V) value.V { return a.(int) + b.(int) })
	r := rand.New(rand.NewSource(9))
	if st, _ := plus.CheckAssociative(r, 200); st != prop.Unknown {
		t.Fatal("sampling a true property must stay Unknown")
	}
	if st, _ := plus.CheckIdempotent(r, 200); st != prop.False {
		t.Fatal("sampling must find idempotence violations in (ℕ,+)")
	}
}

func TestIsCI(t *testing.T) {
	if !minSG(3).IsCI() {
		t.Fatal("min is CI")
	}
	if plusModSG(4).IsCI() {
		t.Fatal("modular addition is not idempotent")
	}
}

// TestMixedLexNModes: ×ω then ×lex composes when the shapes allow it.
// The first factor must be a genuine CI semigroup with an absorber whose
// collapse can arise from distinct elements: bitwise AND (1∧2 = 0 = ω).
func TestMixedLexNModes(t *testing.T) {
	prod := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	prod.WithAbsorber(0)
	mx := maxSG(3)
	mx.WithIdentity(0)
	mx2 := maxSG(2)
	mx2.WithIdentity(0)
	m, err := MixedLexN([]bool{true, false}, prod, mx, mx2)
	if err != nil {
		t.Fatal(err)
	}
	m.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.Associative, prop.Commutative, prop.Idempotent} {
		if !m.Props.Holds(id) {
			t.Fatalf("mixed product must stay CI: %s fails (%s)", id, m.Props.Get(id).Witness)
		}
	}
	// Arity validation.
	if _, err := MixedLexN([]bool{true}, prod, mx, mx2); err == nil {
		t.Fatal("wrong mode count must be rejected")
	}
	if _, err := MixedLexN(nil); err == nil {
		t.Fatal("empty chain must be rejected")
	}
	// ×ω without an absorber must fail (modular addition has none).
	if _, err := MixedLexN([]bool{true}, plusModSG(4), mx2); err == nil {
		t.Fatal("×ω needs an absorbing first factor")
	}
}

// TestMixedModeOmegaBlurring pins §VI's caveat: after ×ω-then-×lex, the
// inner ω is just an ordinary first component — (ω, t) pairs still
// combine live T data, so "error" and "least preferred" blur; a final
// outer ×ω would be needed to keep ω globally absorbing.
func TestMixedModeOmegaBlurring(t *testing.T) {
	prod := New("∧bits", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	prod.WithAbsorber(0)
	mx := maxSG(3)
	mx.WithIdentity(0)
	mx2 := maxSG(2)
	mx2.WithIdentity(0)
	m, err := MixedLexN([]bool{true, false}, prod, mx, mx2)
	if err != nil {
		t.Fatal(err)
	}
	// Inner collapse: 1∧2 = 0 (ω_S) ⇒ inner pair becomes ω.
	inner, _ := SzendreiLex(prod, mx)
	if inner.Op(value.Pair{A: 1, B: 1}, value.Pair{A: 2, B: 3}) != value.V(value.Omega{}) {
		t.Fatal("inner ×ω must collapse")
	}
	// Outer level: two ω-weighted routes still combine their T₂ data —
	// ω does NOT absorb the whole tuple any more.
	got := m.Op(
		value.Pair{A: value.Omega{}, B: 1},
		value.Pair{A: value.Omega{}, B: 2},
	).(value.Pair)
	if got.A != value.V(value.Omega{}) {
		t.Fatalf("first components agree on ω: %v", got)
	}
	if got.B != 2 {
		t.Fatalf("the T₂ component stays live under blurred ω: got %v, want max(1,2)=2", got.B)
	}
}
