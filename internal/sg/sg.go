// Package sg implements semigroups — the "algebraic" approach to weight
// summarization and computation in the quadrants model (§III of the paper)
// — together with the lexicographic product of semigroups developed in
// §IV.A, the Szendrei product ×ω of §VI, natural orders, and property
// checking.
package sg

import (
	"fmt"
	"math/rand"

	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// Semigroup is a set with a binary operation (S, ⊕). Associativity is a
// property to be checked or declared, not a construction-time requirement,
// in keeping with the paper's "infer, don't insist" principle.
type Semigroup struct {
	// Name is a diagnostic label, e.g. "(ℕ,min)".
	Name string
	// Car is the carrier.
	Car *value.Carrier
	// Op is the binary operation.
	Op func(a, b value.V) value.V
	// Props caches property judgements.
	Props prop.Set

	identity, absorber       value.V
	hasIdentity, hasAbsorber bool
}

// New builds a semigroup from a carrier and an operation.
func New(name string, car *value.Carrier, op func(a, b value.V) value.V) *Semigroup {
	return &Semigroup{Name: name, Car: car, Op: op, Props: prop.Make()}
}

// WithIdentity declares e as the identity element α and returns the
// semigroup (needed for infinite carriers).
func (s *Semigroup) WithIdentity(e value.V) *Semigroup {
	s.identity, s.hasIdentity = e, true
	s.Props.Declare(prop.HasIdentity)
	return s
}

// WithAbsorber declares w as the absorbing element ω.
func (s *Semigroup) WithAbsorber(w value.V) *Semigroup {
	s.absorber, s.hasAbsorber = w, true
	s.Props.Declare(prop.HasAbsorber)
	return s
}

// Identity returns the declared or discovered identity element α:
// α⊕x = x = x⊕α. Discovery requires a finite carrier; it is memoised.
func (s *Semigroup) Identity() (value.V, bool) {
	if s.hasIdentity {
		return s.identity, true
	}
	if s.Props.Fails(prop.HasIdentity) || !s.Car.Finite() {
		return nil, false
	}
	for _, cand := range s.Car.Elems {
		ok := true
		for _, x := range s.Car.Elems {
			if s.Op(cand, x) != x || s.Op(x, cand) != x {
				ok = false
				break
			}
		}
		if ok {
			s.identity, s.hasIdentity = cand, true
			s.Props.Derive(prop.HasIdentity, prop.True, "enumerated")
			return cand, true
		}
	}
	s.Props.Derive(prop.HasIdentity, prop.False, "enumerated")
	return nil, false
}

// Absorber returns the declared or discovered absorbing element ω:
// ω⊕x = ω = x⊕ω.
func (s *Semigroup) Absorber() (value.V, bool) {
	if s.hasAbsorber {
		return s.absorber, true
	}
	if s.Props.Fails(prop.HasAbsorber) || !s.Car.Finite() {
		return nil, false
	}
	for _, cand := range s.Car.Elems {
		ok := true
		for _, x := range s.Car.Elems {
			if s.Op(cand, x) != cand || s.Op(x, cand) != cand {
				ok = false
				break
			}
		}
		if ok {
			s.absorber, s.hasAbsorber = cand, true
			s.Props.Derive(prop.HasAbsorber, prop.True, "enumerated")
			return cand, true
		}
	}
	s.Props.Derive(prop.HasAbsorber, prop.False, "enumerated")
	return nil, false
}

// IsMonoid reports whether the semigroup has an identity (declared or
// discoverable).
func (s *Semigroup) IsMonoid() bool {
	_, ok := s.Identity()
	return ok
}

// FoldLeft combines xs left-to-right, returning (zero value, false) on an
// empty slice unless the semigroup has an identity.
func (s *Semigroup) FoldLeft(xs []value.V) (value.V, bool) {
	if len(xs) == 0 {
		return s.Identity()
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = s.Op(acc, x)
	}
	return acc, true
}

// NaturalLeft returns the left natural order of §III:
// s1 ≲ᴸ s2 ⟺ s1 = s1 ⊕ s2. For commutative idempotent semigroups this
// is a partial order (⊕ read as greatest lower bound).
func NaturalLeft(s *Semigroup) *order.Preorder {
	p := order.New("NOᴸ("+s.Name+")", s.Car, func(a, b value.V) bool {
		return a == s.Op(a, b)
	})
	if w, ok := s.Absorber(); ok {
		// ω ⊕ x = ω, so ω ≲ᴸ everything: the absorber is ⊥ of NOᴸ.
		p.WithBot(w)
	}
	if e, ok := s.Identity(); ok {
		// x ⊕ α = x, so x ≲ᴸ α for all x: the identity is ⊤ of NOᴸ.
		p.WithTop(e)
	}
	return p
}

// NaturalRight returns the right natural order of §III:
// s1 ≲ᴿ s2 ⟺ s2 = s1 ⊕ s2 (⊕ read as least upper bound). For
// commutative idempotent semigroups NOᴸ and NOᴿ are dual.
func NaturalRight(s *Semigroup) *order.Preorder {
	p := order.New("NOᴿ("+s.Name+")", s.Car, func(a, b value.V) bool {
		return b == s.Op(a, b)
	})
	if w, ok := s.Absorber(); ok {
		p.WithTop(w)
	}
	if e, ok := s.Identity(); ok {
		p.WithBot(e)
	}
	return p
}

// Direct returns the direct (componentwise) product of s and t:
// (s1,t1) ⊕ (s2,t2) = (s1 ⊕ₛ s2, t1 ⊕ₜ t2). This is the ⊗ of a
// lexicographic bisemigroup product and of product order semigroups.
func Direct(s, t *Semigroup) *Semigroup {
	d := New("("+s.Name+" × "+t.Name+")", value.Product(s.Car, t.Car),
		func(a, b value.V) value.V {
			x, y := a.(value.Pair), b.(value.Pair)
			return value.Pair{A: s.Op(x.A, y.A), B: t.Op(x.B, y.B)}
		})
	if es, ok := s.Identity(); ok {
		if et, ok2 := t.Identity(); ok2 {
			d.WithIdentity(value.Pair{A: es, B: et})
		}
	}
	if ws, ok := s.Absorber(); ok {
		if wt, ok2 := t.Absorber(); ok2 {
			d.WithAbsorber(value.Pair{A: ws, B: wt})
		}
	}
	return d
}

// Lex returns the lexicographic product of semigroups defined in §IV.A:
//
//	(s1,t1) ⊕ (s2,t2) := (s, [s = s1]t1 ⊕ₜ [s = s2]t2)   where s = s1 ⊕ₛ s2
//
// and [P]x is x when P holds and αₜ otherwise. The product is defined when
// S is selective or T is a monoid (Theorem 2's side condition); Lex
// returns an error otherwise. Both operands are expected to be commutative
// and idempotent for the product to be well behaved; that is checked by
// the inference layer, not here.
func Lex(s, t *Semigroup) (*Semigroup, error) {
	alphaT, tIsMonoid := t.Identity()
	sSelective := s.Props.Holds(prop.Selective)
	if !tIsMonoid && !sSelective {
		// Selectivity may be checkable rather than declared.
		if st, _ := s.CheckSelective(nil, 0); st == prop.True {
			sSelective = true
		}
	}
	if !tIsMonoid && !sSelective {
		return nil, fmt.Errorf("sg: %s ×lex %s undefined: %s is not selective and %s has no identity",
			s.Name, t.Name, s.Name, t.Name)
	}
	l := New("("+s.Name+" ×lex "+t.Name+")", value.Product(s.Car, t.Car),
		func(a, b value.V) value.V {
			x, y := a.(value.Pair), b.(value.Pair)
			sum := s.Op(x.A, y.A)
			e1, e2 := sum == x.A, sum == y.A
			switch {
			case e1 && e2:
				return value.Pair{A: sum, B: t.Op(x.B, y.B)}
			case e1:
				return value.Pair{A: sum, B: x.B}
			case e2:
				return value.Pair{A: sum, B: y.B}
			default:
				return value.Pair{A: sum, B: alphaT}
			}
		})
	if es, ok := s.Identity(); ok && tIsMonoid {
		l.WithIdentity(value.Pair{A: es, B: alphaT})
	}
	return l, nil
}

// MustLex is Lex but panics on undefined products; for use with operands
// statically known to satisfy Theorem 2's side condition.
func MustLex(s, t *Semigroup) *Semigroup {
	l, err := Lex(s, t)
	if err != nil {
		panic(err)
	}
	return l
}

// LexN folds Lex over a non-empty list left-associatively:
// S1 ×lex S2 ×lex … ×lex Sn. Theorem 2 gives the definedness condition:
// S1…S(k-1) selective, S(k+1)…Sn monoids, for some k.
func LexN(ss ...*Semigroup) (*Semigroup, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("sg: LexN of zero semigroups")
	}
	acc := ss[0]
	for _, next := range ss[1:] {
		var err error
		acc, err = Lex(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MixedLexN folds a product chain left-associatively with per-step mode
// selection (§VI's "mixed-mode n-ary lexicographic products"): step i
// combines the accumulated product with ss[i+1] using ×ω when
// modes[i] is true (requiring the accumulated left factor to have an
// absorbing element) and plain ×lex otherwise. len(modes) must be
// len(ss)-1.
//
// The paper warns that such mixtures need care: once a plain ×lex is
// applied *after* a ×ω, the ω of the inner product becomes an ordinary
// first component — pairs (ω, t) still carry live T data, so the
// distinction between "error" and "least preferred" blurs exactly as §VI
// describes. TestMixedModeOmegaBlurring pins this behaviour.
func MixedLexN(modes []bool, ss ...*Semigroup) (*Semigroup, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("sg: MixedLexN of zero semigroups")
	}
	if len(modes) != len(ss)-1 {
		return nil, fmt.Errorf("sg: MixedLexN wants %d modes for %d factors, got %d",
			len(ss)-1, len(ss), len(modes))
	}
	acc := ss[0]
	for i, next := range ss[1:] {
		var err error
		if modes[i] {
			acc, err = SzendreiLex(acc, next)
		} else {
			acc, err = Lex(acc, next)
		}
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// SzendreiLex returns the ×ω product of §VI. S must have an absorbing
// element ωₛ; the carrier is ((S∖{ωₛ}) × T) ∪ {ω} and
//
//	ω ⊕ p = p ⊕ ω = ω
//	(s1,t1) ⊕ (s2,t2) = ω                 if s1 ⊕ₛ s2 = ωₛ
//	                  = lex product value  otherwise.
//
// The construction lets finite bounded algebras (whose N property
// necessarily fails at the ceiling) still serve as the first component of
// a lexicographic product: whenever the ceiling ωₛ arises the whole weight
// collapses to ω.
func SzendreiLex(s, t *Semigroup) (*Semigroup, error) {
	ws, ok := s.Absorber()
	if !ok {
		return nil, fmt.Errorf("sg: %s ×ω %s undefined: %s has no absorbing element", s.Name, t.Name, s.Name)
	}
	inner, err := Lex(s, t)
	if err != nil {
		return nil, err
	}
	var car *value.Carrier
	if s.Car.Finite() && t.Car.Finite() {
		car = value.Adjoin(
			value.Product(value.Without(s.Car, ws, s.Car.Name+"∖ω"), t.Car),
			value.Omega{},
			"(("+s.Car.Name+"∖ω)×"+t.Car.Name+")∪{ω}")
	} else {
		base := value.Product(s.Car, t.Car)
		car = value.NewSampled("(("+s.Car.Name+"∖ω)×"+t.Car.Name+")∪{ω}", func(r *rand.Rand) value.V {
			for {
				v := base.Draw(r).(value.Pair)
				if v.A != ws {
					return v
				}
			}
		})
		car = value.Adjoin(car, value.Omega{}, car.Name)
	}
	z := New("("+s.Name+" ×ω "+t.Name+")", car, func(a, b value.V) value.V {
		if (a == value.V(value.Omega{})) || (b == value.V(value.Omega{})) {
			return value.Omega{}
		}
		x, y := a.(value.Pair), b.(value.Pair)
		if s.Op(x.A, y.A) == ws {
			return value.Omega{}
		}
		return inner.Op(a, b)
	})
	z.WithAbsorber(value.Omega{})
	return z, nil
}

// AddIdentity adjoins a fresh identity element α to s. The new element is
// value.Bot{} (an adjoined identity for a min-like ⊕ is the most preferred
// element of the natural order).
func AddIdentity(s *Semigroup) *Semigroup {
	alpha := value.V(value.Bot{})
	n := New("addα("+s.Name+")", value.Adjoin(s.Car, alpha, s.Car.Name+"∪{α}"),
		func(a, b value.V) value.V {
			if a == alpha {
				return b
			}
			if b == alpha {
				return a
			}
			return s.Op(a, b)
		})
	n.WithIdentity(alpha)
	if w, ok := s.Absorber(); ok {
		n.WithAbsorber(w)
	}
	return n
}

// AddAbsorber adjoins a fresh absorbing element ω to s. The new element is
// value.Top{} (an adjoined absorber for a min-like ⊕ is the least
// preferred element: "unreachable").
func AddAbsorber(s *Semigroup) *Semigroup {
	omega := value.V(value.Top{})
	n := New("addω("+s.Name+")", value.Adjoin(s.Car, omega, s.Car.Name+"∪{ω}"),
		func(a, b value.V) value.V {
			if a == omega || b == omega {
				return omega
			}
			return s.Op(a, b)
		})
	n.WithAbsorber(omega)
	if e, ok := s.Identity(); ok {
		n.WithIdentity(e)
	}
	return n
}
