package sg

import (
	"fmt"
	"math/rand"

	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// checkN runs pred over n-tuples of carrier elements: exhaustively when
// the carrier is finite, over `samples` random tuples otherwise (returning
// Unknown if no violation is found by sampling, or if sampling is
// impossible because r is nil).
func (s *Semigroup) checkN(r *rand.Rand, samples, n int,
	pred func(xs []value.V) (bool, string)) (prop.Status, string) {
	if s.Car.Finite() {
		xs := make([]value.V, n)
		var rec func(i int) (prop.Status, string)
		rec = func(i int) (prop.Status, string) {
			if i == n {
				if ok, w := pred(xs); !ok {
					return prop.False, w
				}
				return prop.True, ""
			}
			for _, e := range s.Car.Elems {
				xs[i] = e
				if st, w := rec(i + 1); st == prop.False {
					return st, w
				}
			}
			return prop.True, ""
		}
		return rec(0)
	}
	if r == nil {
		return prop.Unknown, ""
	}
	xs := make([]value.V, n)
	for i := 0; i < samples; i++ {
		for j := range xs {
			xs[j] = s.Car.Draw(r)
		}
		if ok, w := pred(xs); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckAssociative verifies (a⊕b)⊕c = a⊕(b⊕c).
func (s *Semigroup) CheckAssociative(r *rand.Rand, samples int) (prop.Status, string) {
	return s.checkN(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		if s.Op(s.Op(a, b), c) != s.Op(a, s.Op(b, c)) {
			return false, fmt.Sprintf("(%s⊕%s)⊕%s ≠ %s⊕(%s⊕%s)",
				value.Format(a), value.Format(b), value.Format(c),
				value.Format(a), value.Format(b), value.Format(c))
		}
		return true, ""
	})
}

// CheckCommutative verifies a⊕b = b⊕a.
func (s *Semigroup) CheckCommutative(r *rand.Rand, samples int) (prop.Status, string) {
	return s.checkN(r, samples, 2, func(xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if s.Op(a, b) != s.Op(b, a) {
			return false, fmt.Sprintf("%s⊕%s ≠ %s⊕%s",
				value.Format(a), value.Format(b), value.Format(b), value.Format(a))
		}
		return true, ""
	})
}

// CheckIdempotent verifies a⊕a = a.
func (s *Semigroup) CheckIdempotent(r *rand.Rand, samples int) (prop.Status, string) {
	return s.checkN(r, samples, 1, func(xs []value.V) (bool, string) {
		a := xs[0]
		if s.Op(a, a) != a {
			return false, fmt.Sprintf("%s⊕%s ≠ %s", value.Format(a), value.Format(a), value.Format(a))
		}
		return true, ""
	})
}

// CheckSelective verifies a⊕b ∈ {a, b}.
func (s *Semigroup) CheckSelective(r *rand.Rand, samples int) (prop.Status, string) {
	return s.checkN(r, samples, 2, func(xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if v := s.Op(a, b); v != a && v != b {
			return false, fmt.Sprintf("%s⊕%s = %s ∉ {%s, %s}",
				value.Format(a), value.Format(b), value.Format(v), value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckAll populates Props with judgements for the semigroup-level
// properties. samples bounds work on infinite carriers.
func (s *Semigroup) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		// Never overwrite a declared judgement with a weaker sampled one.
		if cur := s.Props.Get(id); cur.Status != prop.Unknown && st == prop.Unknown {
			return
		}
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		s.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	st, w := s.CheckAssociative(r, samples)
	record(prop.Associative, st, w)
	st, w = s.CheckCommutative(r, samples)
	record(prop.Commutative, st, w)
	st, w = s.CheckIdempotent(r, samples)
	record(prop.Idempotent, st, w)
	st, w = s.CheckSelective(r, samples)
	record(prop.Selective, st, w)
	if s.Car.Finite() {
		_, _ = s.Identity()
		_, _ = s.Absorber()
	}
}

// IsCI reports whether the semigroup is known commutative and idempotent
// (checking on demand for finite carriers).
func (s *Semigroup) IsCI() bool {
	for _, id := range []prop.ID{prop.Commutative, prop.Idempotent} {
		st := s.Props.Status(id)
		if st == prop.False {
			return false
		}
		if st == prop.Unknown {
			if !s.Car.Finite() {
				return false
			}
			var cst prop.Status
			var w string
			if id == prop.Commutative {
				cst, w = s.CheckCommutative(nil, 0)
			} else {
				cst, w = s.CheckIdempotent(nil, 0)
			}
			s.Props.Put(id, prop.Judgement{Status: cst, Rule: "model-check", Witness: w})
			if cst != prop.True {
				return false
			}
		}
	}
	return true
}
