package osg

import (
	"math/rand"
	"testing"

	"metarouting/internal/gen"
	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

func shortest(cap int) *OrderSemigroup {
	plus := sg.New("+sat", value.Ints(0, cap), func(a, b value.V) value.V {
		s := a.(int) + b.(int)
		if s > cap {
			s = cap
		}
		return s
	})
	o := order.IntLeq("≤", value.Ints(0, cap))
	o.WithTop(cap)
	return New("(ℕ,≤,+)", o, plus)
}

func widest(cap int) *OrderSemigroup {
	min := sg.New("min", value.Ints(0, cap), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	o := order.New("≥", value.Ints(0, cap), func(a, b value.V) bool { return a.(int) >= b.(int) })
	o.WithTop(0)
	return New("(ℕ,≥,min)", o, min)
}

func TestShortestPathProperties(t *testing.T) {
	s := shortest(5)
	s.CheckAll(nil, 0)
	if !s.Props.Holds(prop.MLeft) || !s.Props.Holds(prop.MRight) {
		t.Fatal("(ℕ,≤,+) is monotone on both sides")
	}
	if !s.Props.Holds(prop.NDLeft) {
		t.Fatal("(ℕ,≤,+) is nondecreasing")
	}
	if !s.Props.Fails(prop.ILeft) {
		t.Fatal("c may be 0, so not increasing")
	}
}

func TestWidestPathProperties(t *testing.T) {
	w := widest(5)
	w.CheckAll(nil, 0)
	if !w.Props.Holds(prop.MLeft) {
		t.Fatal("(ℕ,≥,min) is monotone")
	}
	if !w.Props.Fails(prop.NLeft) {
		t.Fatal("(ℕ,≥,min) is not cancellative")
	}
}

// TestSobrinhoExample validates §III's example on saturating carriers:
// ¬M((ℕ,≥,min) ×lex (ℕ,≤,+)) with a concrete counterexample, and M of
// the reverse composition when the first factor is cancellative — here
// the bounded (ℕ,≤,+sat) loses N at the ceiling, so the product fails M
// as well, with exactly the ceiling as the witness. (The unbounded
// direction is covered by the inference-engine tests.)
func TestSobrinhoExample(t *testing.T) {
	bad := Lex(widest(4), shortest(4))
	st, w := bad.CheckM(true, nil, 0)
	if st != prop.False || w == "" {
		t.Fatalf("bandwidth-first lex must fail M with witness, got %v %q", st, w)
	}
}

// statusOf computes one side of a Theorem 4/5 equation on a structure.
func leftProps(s *OrderSemigroup) map[prop.ID]prop.Status {
	out := map[prop.ID]prop.Status{}
	st, _ := s.CheckM(true, nil, 0)
	out[prop.MLeft] = st
	st, _ = s.CheckN(true, nil, 0)
	out[prop.NLeft] = st
	st, _ = s.CheckC(true, nil, 0)
	out[prop.CLeft] = st
	st, _ = s.CheckND(true, nil, 0)
	out[prop.NDLeft] = st
	st, _ = s.CheckI(true, nil, 0)
	out[prop.ILeft] = st
	st, _ = s.CheckSI(true, nil, 0)
	out[prop.SILeft] = st
	return out
}

// TestTheorem4RandomValidation machine-checks
// M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T)) over hundreds of random order
// semigroups, comparing exhaustive model checks of both sides.
func TestTheorem4RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 250; trial++ {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := New("S", gen.Preorder(r, ns), gen.AssocOp(r, ns))
		u := New("T", gen.Preorder(r, nt), gen.AssocOp(r, nt))
		ps, pt := leftProps(s), leftProps(u)
		lhs, _ := Lex(s, u).CheckM(true, nil, 0)
		rhs := prop.And(prop.And(ps[prop.MLeft], pt[prop.MLeft]),
			prop.Or(ps[prop.NLeft], pt[prop.CLeft]))
		if lhs != rhs {
			t.Fatalf("trial %d: M(S×T)=%v but M∧M∧(N∨C)=%v\nS: M=%v N=%v C=%v (%s,%s)\nT: M=%v C=%v (%s,%s)",
				trial, lhs, rhs,
				ps[prop.MLeft], ps[prop.NLeft], ps[prop.CLeft], s.Ord.Name, s.Mul.Name,
				pt[prop.MLeft], pt[prop.CLeft], u.Ord.Name, u.Mul.Name)
		}
	}
}

// TestTheorem5RandomValidation machine-checks the local-optima rules in
// their SI-exact form:
//
//	ND(S×T) ⟺ SI(S) ∨ (ND(S)∧ND(T))
//	SI(S×T) ⟺ SI(S) ∨ (ND(S)∧SI(T))
//
// and the I rule under its top-case split, over random order semigroups.
func TestTheorem5RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for trial := 0; trial < 250; trial++ {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := New("S", gen.Preorder(r, ns), gen.AssocOp(r, ns))
		u := New("T", gen.Preorder(r, nt), gen.AssocOp(r, nt))
		ps, pt := leftProps(s), leftProps(u)
		prod := Lex(s, u)

		ndLHS, _ := prod.CheckND(true, nil, 0)
		ndRHS := prop.Or(ps[prop.SILeft], prop.And(ps[prop.NDLeft], pt[prop.NDLeft]))
		if ndLHS != ndRHS {
			t.Fatalf("trial %d: ND(S×T)=%v but SI(S)∨(ND∧ND)=%v", trial, ndLHS, ndRHS)
		}

		siLHS, _ := prod.CheckSI(true, nil, 0)
		siRHS := prop.Or(ps[prop.SILeft], prop.And(ps[prop.NDLeft], pt[prop.SILeft]))
		if siLHS != siRHS {
			t.Fatalf("trial %d: SI(S×T)=%v but SI(S)∨(ND∧SI)=%v", trial, siLHS, siRHS)
		}

		iLHS, _ := prod.CheckI(true, nil, 0)
		_, hs := s.Ord.Top()
		_, ht := u.Ord.Top()
		var iRHS prop.Status
		if hs && ht {
			ts, _ := s.topPreserved()
			iRHS = prop.And(ps[prop.ILeft], prop.And(ts, pt[prop.ILeft]))
		} else {
			iRHS = siLHS
		}
		if iLHS != iRHS {
			t.Fatalf("trial %d: I(S×T)=%v but rule says %v (tops %v %v)", trial, iLHS, iRHS, hs, ht)
		}
	}
}

// topPreserved checks the ~-version of the T property for the ⊗ action:
// c ⊗ ⊤ ~ ⊤ for every c.
func (s *OrderSemigroup) topPreserved() (prop.Status, string) {
	top, ok := s.Ord.Top()
	if !ok {
		return prop.False, "no ⊤"
	}
	for _, c := range s.Ord.Car.Elems {
		if !s.Ord.Equiv(s.Mul.Op(c, top), top) {
			return prop.False, "c⊗⊤ ≁ ⊤"
		}
	}
	return prop.True, ""
}

// TestCorollary1TwoSided: S×T is left- and right-monotone iff both
// operands are and one of the four N/C side-condition combinations holds.
func TestCorollary1TwoSided(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 150; trial++ {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := New("S", gen.Preorder(r, ns), gen.AssocOp(r, ns))
		u := New("T", gen.Preorder(r, nt), gen.AssocOp(r, nt))
		prod := Lex(s, u)
		lhsL, _ := prod.CheckM(true, nil, 0)
		lhsR, _ := prod.CheckM(false, nil, 0)
		lhs := prop.And(lhsL, lhsR)

		get := func(x *OrderSemigroup, left bool, f func(bool, *rand.Rand, int) (prop.Status, string)) prop.Status {
			st, _ := f(left, nil, 0)
			return st
		}
		mS := prop.And(get(s, true, s.CheckM), get(s, false, s.CheckM))
		mT := prop.And(get(u, true, u.CheckM), get(u, false, u.CheckM))
		nSL, nSR := get(s, true, s.CheckN), get(s, false, s.CheckN)
		cTL, cTR := get(u, true, u.CheckC), get(u, false, u.CheckC)
		side := prop.Or(prop.Or(prop.And(nSL, nSR), prop.And(nSL, cTR)),
			prop.Or(prop.And(nSR, cTL), prop.And(cTL, cTR)))
		rhs := prop.And(prop.And(mS, mT), side)
		if lhs != rhs {
			t.Fatalf("trial %d: two-sided M(S×T)=%v but Corollary 1 RHS=%v", trial, lhs, rhs)
		}
	}
}

func TestLexCarrierIsProduct(t *testing.T) {
	p := Lex(shortest(2), widest(2))
	if p.Carrier().Size() != 9 {
		t.Fatalf("carrier size = %d", p.Carrier().Size())
	}
	if !p.Finite() {
		t.Fatal("product of finite structures must be finite")
	}
}

func TestCheckAllBothSides(t *testing.T) {
	s := shortest(4)
	s.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.MLeft, prop.MRight, prop.NDLeft, prop.NDRight} {
		if s.Props.Status(id) == prop.Unknown {
			t.Fatalf("%s undecided on a finite structure", id)
		}
	}
}

func TestMismatchedCarriersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	plus := sg.New("+", value.Ints(0, 3), func(a, b value.V) value.V { return a })
	New("bad", order.IntLeq("≤", value.Ints(0, 5)), plus)
}

// TestTheorem1SaitoTotalOrders validates Saitô's original statement in
// its native setting — totally ordered semigroups — where ~ collapses to
// equality, so the preorder-generalized N and C reduce to the classical
// cancellative and condensed properties.
func TestTheorem1SaitoTotalOrders(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	trials := 0
	for trials < 200 {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := New("S", totalOrder(r, ns), gen.AssocOp(r, ns))
		u := New("T", totalOrder(r, nt), gen.AssocOp(r, nt))
		trials++
		// Classical (equality-based) N and C on total orders.
		nS := classicalN(s)
		cT := classicalC(u)
		// They must coincide with the preorder versions.
		pN, _ := s.CheckN(true, nil, 0)
		pC, _ := u.CheckC(true, nil, 0)
		if nS != pN || cT != pC {
			t.Fatalf("trial %d: classical/preorder property mismatch: N %v/%v C %v/%v",
				trials, nS, pN, cT, pC)
		}
		lhs, _ := Lex(s, u).CheckM(true, nil, 0)
		ms, _ := s.CheckM(true, nil, 0)
		mt, _ := u.CheckM(true, nil, 0)
		rhs := prop.And(prop.And(ms, mt), prop.Or(nS, cT))
		if lhs != rhs {
			t.Fatalf("trial %d: Saitô's theorem fails on total orders: %v vs %v", trials, lhs, rhs)
		}
	}
}

// totalOrder draws a random strict total order (a random permutation's
// rank order, no ties).
func totalOrder(r *rand.Rand, n int) *order.Preorder {
	perm := r.Perm(n)
	rank := make([]int, n)
	for i, p := range perm {
		rank[p] = i
	}
	return order.New("total", value.Ints(0, n-1), func(a, b value.V) bool {
		return rank[a.(int)] <= rank[b.(int)]
	})
}

// classicalN: c⊗a = c⊗b ⇒ a = b (equality form).
func classicalN(s *OrderSemigroup) prop.Status {
	for _, a := range s.Ord.Car.Elems {
		for _, b := range s.Ord.Car.Elems {
			for _, c := range s.Ord.Car.Elems {
				if s.Mul.Op(c, a) == s.Mul.Op(c, b) && a != b {
					return prop.False
				}
			}
		}
	}
	return prop.True
}

// classicalC: c⊗a = c⊗b always (equality form).
func classicalC(s *OrderSemigroup) prop.Status {
	for _, a := range s.Ord.Car.Elems {
		for _, b := range s.Ord.Car.Elems {
			for _, c := range s.Ord.Car.Elems {
				if s.Mul.Op(c, a) != s.Mul.Op(c, b) {
					return prop.False
				}
			}
		}
	}
	return prop.True
}
