// Package osg implements order semigroups (S, ≲, ⊗) — the upper-right
// quadrant of the quadrants model: ordered weight summarization with
// algebraic weight computation. Ordered semigroups in the classical sense
// (Birkhoff, Fuchs, Saitô) are the subclass whose ⊗ is monotone; in
// keeping with the paper, monotonicity is inferred rather than required.
package osg

import (
	"fmt"
	"math/rand"

	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

// OrderSemigroup is a structure (S, ≲, ⊗). Ord and Mul share a carrier.
type OrderSemigroup struct {
	// Name is a diagnostic label, e.g. "(ℕ,≤,+)".
	Name string
	// Ord is the preorder used for weight summarization.
	Ord *order.Preorder
	// Mul is the semigroup used for weight computation along paths.
	Mul *sg.Semigroup
	// Props caches property judgements (left and right flavours).
	Props prop.Set
}

// New builds an order semigroup; ord and mul must share their carrier
// (checked extensionally for finite carriers, trusted for infinite ones).
func New(name string, ord *order.Preorder, mul *sg.Semigroup) *OrderSemigroup {
	if !value.Same(ord.Car, mul.Car) {
		panic("osg: order and semigroup carriers differ: " + ord.Car.Name + " vs " + mul.Car.Name)
	}
	return &OrderSemigroup{Name: name, Ord: ord, Mul: mul, Props: prop.Make()}
}

// Carrier returns the weight carrier.
func (s *OrderSemigroup) Carrier() *value.Carrier { return s.Ord.Car }

// Finite reports whether exhaustive property checking is possible.
func (s *OrderSemigroup) Finite() bool { return s.Ord.Car.Finite() }

// Lex returns the lexicographic product S ×lex T (§IV): lexicographic
// order on pairs with componentwise ⊗.
func Lex(s, t *OrderSemigroup) *OrderSemigroup {
	return New("("+s.Name+" ×lex "+t.Name+")", order.Lex(s.Ord, t.Ord), sg.Direct(s.Mul, t.Mul))
}

// forAll enumerates n-tuples (finite) or samples them (infinite).
func (s *OrderSemigroup) forAll(r *rand.Rand, samples, n int,
	pred func(xs []value.V) (bool, string)) (prop.Status, string) {
	if s.Finite() {
		xs := make([]value.V, n)
		var rec func(i int) (prop.Status, string)
		rec = func(i int) (prop.Status, string) {
			if i == n {
				if ok, w := pred(xs); !ok {
					return prop.False, w
				}
				return prop.True, ""
			}
			for _, e := range s.Ord.Car.Elems {
				xs[i] = e
				if st, w := rec(i + 1); st == prop.False {
					return st, w
				}
			}
			return prop.True, ""
		}
		return rec(0)
	}
	if r == nil {
		return prop.Unknown, ""
	}
	xs := make([]value.V, n)
	for i := 0; i < samples; i++ {
		for j := range xs {
			xs[j] = s.Ord.Car.Draw(r)
		}
		if ok, w := pred(xs); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckM verifies monotonicity (Fig 2):
// left:  a ≲ b ⇒ c⊗a ≲ c⊗b;  right: a ≲ b ⇒ a⊗c ≲ b⊗c.
func (s *OrderSemigroup) CheckM(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	side := "c⊗·"
	if !left {
		side = "·⊗c"
	}
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		if !s.Ord.Leq(a, b) {
			return true, ""
		}
		var x, y value.V
		if left {
			x, y = s.Mul.Op(c, a), s.Mul.Op(c, b)
		} else {
			x, y = s.Mul.Op(a, c), s.Mul.Op(b, c)
		}
		if !s.Ord.Leq(x, y) {
			return false, fmt.Sprintf("a=%s b=%s c=%s (%s): a ≲ b but products not ≲",
				value.Format(a), value.Format(b), value.Format(c), side)
		}
		return true, ""
	})
}

// CheckN verifies the cancellative property (Fig 2):
// left:  c⊗a ~ c⊗b ⇒ a ~ b ∨ a # b.
func (s *OrderSemigroup) CheckN(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		var x, y value.V
		if left {
			x, y = s.Mul.Op(c, a), s.Mul.Op(c, b)
		} else {
			x, y = s.Mul.Op(a, c), s.Mul.Op(b, c)
		}
		if s.Ord.Equiv(x, y) && !(s.Ord.Equiv(a, b) || s.Ord.Incomp(a, b)) {
			return false, fmt.Sprintf("a=%s b=%s c=%s: products ~ but a, b strictly ordered",
				value.Format(a), value.Format(b), value.Format(c))
		}
		return true, ""
	})
}

// CheckC verifies the condensed property (Fig 2): left: c⊗a ~ c⊗b always.
func (s *OrderSemigroup) CheckC(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		var x, y value.V
		if left {
			x, y = s.Mul.Op(c, a), s.Mul.Op(c, b)
		} else {
			x, y = s.Mul.Op(a, c), s.Mul.Op(b, c)
		}
		if !s.Ord.Equiv(x, y) {
			return false, fmt.Sprintf("a=%s b=%s c=%s: products not ~",
				value.Format(a), value.Format(b), value.Format(c))
		}
		return true, ""
	})
}

// CheckND verifies nondecreasing (Fig 3): left: a ≲ c⊗a.
func (s *OrderSemigroup) CheckND(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 2, func(xs []value.V) (bool, string) {
		a, c := xs[0], xs[1]
		var x value.V
		if left {
			x = s.Mul.Op(c, a)
		} else {
			x = s.Mul.Op(a, c)
		}
		if !s.Ord.Leq(a, x) {
			return false, fmt.Sprintf("a=%s c=%s: ¬(a ≲ c⊗a)", value.Format(a), value.Format(c))
		}
		return true, ""
	})
}

// CheckI verifies increasing (Fig 3): left: a ≠ ⊤ ⇒ a < c⊗a.
func (s *OrderSemigroup) CheckI(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 2, func(xs []value.V) (bool, string) {
		a, c := xs[0], xs[1]
		if s.Ord.IsTop(a) {
			return true, ""
		}
		var x value.V
		if left {
			x = s.Mul.Op(c, a)
		} else {
			x = s.Mul.Op(a, c)
		}
		if !s.Ord.Lt(a, x) {
			return false, fmt.Sprintf("a=%s c=%s: a ≠ ⊤ but ¬(a < c⊗a)", value.Format(a), value.Format(c))
		}
		return true, ""
	})
}

// CheckSI verifies strictly increasing everywhere (no ⊤ exemption):
// left: a < c⊗a for every a and c. See prop.SILeft for why this
// strengthening of I is what the exact lexicographic rules need.
func (s *OrderSemigroup) CheckSI(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 2, func(xs []value.V) (bool, string) {
		a, c := xs[0], xs[1]
		var x value.V
		if left {
			x = s.Mul.Op(c, a)
		} else {
			x = s.Mul.Op(a, c)
		}
		if !s.Ord.Lt(a, x) {
			return false, fmt.Sprintf("a=%s c=%s: ¬(a < c⊗a)", value.Format(a), value.Format(c))
		}
		return true, ""
	})
}

// sided maps a (base property, left?) pair to the left/right prop ID.
func sided(left bool, l, r prop.ID) prop.ID {
	if left {
		return l
	}
	return r
}

// CheckAll populates Props with left and right judgements for M, N, C, ND
// and I.
func (s *OrderSemigroup) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		if cur := s.Props.Get(id); cur.Status != prop.Unknown && st == prop.Unknown {
			return
		}
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		s.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	for _, left := range []bool{true, false} {
		st, w := s.CheckM(left, r, samples)
		record(sided(left, prop.MLeft, prop.MRight), st, w)
		st, w = s.CheckN(left, r, samples)
		record(sided(left, prop.NLeft, prop.NRight), st, w)
		st, w = s.CheckC(left, r, samples)
		record(sided(left, prop.CLeft, prop.CRight), st, w)
		st, w = s.CheckND(left, r, samples)
		record(sided(left, prop.NDLeft, prop.NDRight), st, w)
		st, w = s.CheckI(left, r, samples)
		record(sided(left, prop.ILeft, prop.IRight), st, w)
		st, w = s.CheckSI(left, r, samples)
		record(sided(left, prop.SILeft, prop.SIRight), st, w)
	}
}
