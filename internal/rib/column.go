package rib

import (
	"fmt"
	"unsafe"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// This file holds the arena-flat route column: the index-form
// replacement for []*Entry. A Column packs one destination's routes
// into two contiguous slices — fixed-width EntrySlots plus a shared
// next-hop pool — so a 100k-node column is two allocations instead of
// 100k, weights are engine indices instead of boxed interface values,
// and snapshots share untouched columns by pointer exactly as the
// pointer table did. The legacy *Entry API remains available as a
// materializing view (Column.Entry, RIB.Lookup).

// EntrySlot is one node's route toward the column's destination in
// index form. The zero slot means unrouted.
type EntrySlot struct {
	// W is the selected weight's engine index (valid only when Routed).
	// Engine intern tables are append-only, so the index stays valid for
	// the life of the engine — across snapshots and warm starts.
	W int32
	// NhOff/NhLen delimit the ECMP next-hop set in Column.Pool, primary
	// first. NhLen is 0 at the destination itself.
	NhOff int32
	NhLen int32
	// Routed marks the node as holding a route.
	Routed bool
}

// entrySlotBytes is the in-memory slot width including padding.
const entrySlotBytes = int(unsafe.Sizeof(EntrySlot{}))

// Column is one destination's full route column in arena form.
type Column struct {
	// Dest is the destination node anchoring the column.
	Dest int
	// Converged reports whether the solver run reached a fixpoint.
	Converged bool
	// Clean is the verified clean-forwarding-tree certificate: every
	// routed slot's primary next-hop chain reaches Dest. Solver-built
	// columns carry a verified verdict; adapters and decoders leave it
	// false (conservative — the next delta then takes the dense path).
	Clean bool
	// Slots[u] is node u's route; len(Slots) == g.N.
	Slots []EntrySlot
	// Pool is the next-hop arena all slots index into.
	Pool []int32

	// live caches the routed-slot count when liveOK (set by builders,
	// which count during their single pass); decoded columns fall back
	// to a scan.
	live   int
	liveOK bool
}

// Bytes returns the column's arena footprint in bytes (slot and pool
// backing arrays; the header is negligible and excluded).
func (c *Column) Bytes() int {
	return len(c.Slots)*entrySlotBytes + len(c.Pool)*4
}

// Live returns the number of routed slots.
func (c *Column) Live() int {
	if c.liveOK {
		return c.live
	}
	n := 0
	for i := range c.Slots {
		if c.Slots[i].Routed {
			n++
		}
	}
	return n
}

// DestNode, NumNodes, IsConverged, IsClean and Flatten adapt the flat
// column to the Col interface (field names already take the direct
// spellings). Flatten is the identity — a flat column is its own
// canonical form.
func (c *Column) DestNode() int     { return c.Dest }
func (c *Column) NumNodes() int     { return len(c.Slots) }
func (c *Column) IsConverged() bool { return c.Converged }
func (c *Column) IsClean() bool     { return c.Clean }
func (c *Column) Flatten() *Column  { return c }

// Normalize recomputes the metadata a column's routing content fully
// determines — the cached live count and the Clean certificate — from
// the slots alone. Replication followers call it on every decoded or
// patched column: the leader's values are pure functions of the same
// content (the delta solver's touched-restricted verification accepts
// exactly the columns whose full forwarding tree is clean), so a
// normalized follower column matches the leader's bit for bit,
// metadata included.
func (c *Column) Normalize() {
	c.live = 0
	for i := range c.Slots {
		if c.Slots[i].Routed {
			c.live++
		}
	}
	c.liveOK = true
	c.Clean = c.Converged && c.treeClean()
}

// treeClean walks every routed slot's primary next-hop chain with
// memoized verification, failing on cycles, chains stepping to
// unrouted nodes, and routed non-destination slots with no next hop.
func (c *Column) treeClean() bool {
	n := len(c.Slots)
	if c.Dest < 0 || c.Dest >= n || !c.Slots[c.Dest].Routed {
		return false
	}
	// 0 unvisited, 1 on the current chain, 2 verified.
	state := make([]uint8, n)
	state[c.Dest] = 2
	var chain []int32
	for u := 0; u < n; u++ {
		if state[u] != 0 || !c.Slots[u].Routed {
			continue
		}
		chain = chain[:0]
		v := u
		for state[v] == 0 {
			s := &c.Slots[v]
			if !s.Routed || s.NhLen == 0 {
				return false
			}
			state[v] = 1
			chain = append(chain, int32(v))
			nh := c.Pool[s.NhOff]
			if nh < 0 || int(nh) >= n {
				return false
			}
			v = int(nh)
		}
		if state[v] == 1 {
			return false // cycle
		}
		for _, x := range chain {
			state[x] = 2
		}
	}
	return true
}

// Route returns node u's selected weight index (ok=false when unrouted
// or out of range) — the index-form point read the batch resolver uses.
func (c *Column) Route(u int) (int32, bool) {
	if u < 0 || u >= len(c.Slots) || !c.Slots[u].Routed {
		return 0, false
	}
	return c.Slots[u].W, true
}

// NextHops returns node u's ECMP next-hop view (aliasing the pool;
// read-only, primary first). Nil when unrouted or at the destination.
func (c *Column) NextHops(u int) []int32 {
	if u < 0 || u >= len(c.Slots) || !c.Slots[u].Routed || c.Slots[u].NhLen == 0 {
		return nil
	}
	s := c.Slots[u]
	return c.Pool[s.NhOff : s.NhOff+s.NhLen : s.NhOff+s.NhLen]
}

// AppendNextHops appends node u's ECMP next-hop span to dst and
// returns the extended slice — the batched query plane's copy-out
// entry point: callers accumulate many nodes' spans into one shared
// pool buffer without per-node slice headers or aliasing hazards.
func (c *Column) AppendNextHops(dst []int32, u int) []int32 {
	if u < 0 || u >= len(c.Slots) || !c.Slots[u].Routed {
		return dst
	}
	s := c.Slots[u]
	return append(dst, c.Pool[s.NhOff:s.NhOff+s.NhLen]...)
}

// Forward resolves the forwarding path from a node to the column's
// destination following primary next hops; it fails on missing routes
// and forwarding loops. The walk needs nothing but the column itself,
// so replication followers forward straight off decoded columns —
// RIB.Forward delegates here.
func (c *Column) Forward(from int) (graph.Path, error) {
	if from < 0 || from >= len(c.Slots) {
		return nil, fmt.Errorf("rib: node %d out of range [0,%d)", from, len(c.Slots))
	}
	var p graph.Path
	// Flat visited bitmap: this sits on the /v1/paths hot path, where a
	// per-call map allocation plus per-hop map ops dominated small walks.
	seen := make([]bool, len(c.Slots))
	u := from
	for {
		if !c.Slots[u].Routed {
			return nil, fmt.Errorf("rib: node %d has no route to %d", u, c.Dest)
		}
		if seen[u] {
			return nil, fmt.Errorf("rib: forwarding loop at node %d toward %d", u, c.Dest)
		}
		seen[u] = true
		p = append(p, u)
		if u == c.Dest {
			return p, nil
		}
		u = int(c.Pool[c.Slots[u].NhOff])
	}
}

// Entry materializes node u's legacy *Entry view (nil when unrouted).
// The returned entry is freshly allocated: this is the compatibility
// adapter, not the hot path.
func (c *Column) Entry(eng exec.Algebra, u int) *Entry {
	if u < 0 || u >= len(c.Slots) || !c.Slots[u].Routed {
		return nil
	}
	s := c.Slots[u]
	e := &Entry{Weight: eng.Value(s.W)}
	if s.NhLen > 0 {
		e.NextHops = make([]int, s.NhLen)
		for i, v := range c.Pool[s.NhOff : s.NhOff+s.NhLen] {
			e.NextHops[i] = int(v)
		}
	}
	return e
}

// BuildDestColumn computes the arena column for a single destination —
// the column-store counterpart of BuildDestEngine, and the unit of work
// the serve snapshot builder shards across its pool. It consumes the
// solver's index-form Raw view directly, so no interface values or
// per-entry allocations are produced: one slot slice, one pool slice.
func BuildDestColumn(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, ws *solve.Workspace) (*Column, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	raw := ws.BellmanFordRaw(eng, g, dest, origin, 0)
	c := &Column{Dest: dest, Converged: raw.Converged, Slots: make([]EntrySlot, g.N)}
	c.Clean = raw.Converged && ws.VerifyForwardTree(raw)
	c.Pool = make([]int32, 0, g.N)
	for u := 0; u < g.N; u++ {
		fillSlot(eng, g, raw.Routed, raw.W, raw.NextHop, dest, u, c)
	}
	c.liveOK = true
	return c, nil
}

// appendNextHopSet appends node u's ECMP next-hop set (primary first,
// then every other routed out-neighbour whose arc extension is
// order-equivalent to the selected weight) to pool. It is the one ECMP
// scan both column layouts share, mirroring entryFromResult exactly, so
// flat, paged and pointer columns stay bit-identical by construction.
// u must be routed and must not be the destination.
func appendNextHopSet(eng exec.Algebra, g *graph.Graph, routed []bool, w []int32, nextHop []int, u int, pool []int32) []int32 {
	pool = append(pool, int32(nextHop[u]))
	best := w[u]
	for _, ai := range g.Out(u) {
		v := g.Arcs[ai].To
		if v == nextHop[u] || !routed[v] {
			continue
		}
		if eng.Equiv(eng.Apply(g.Arcs[ai].Label, w[v]), best) {
			pool = append(pool, int32(v))
		}
	}
	return pool
}

// fillSlot writes node u's slot from index-form solver state, appending
// its ECMP set to the column pool and maintaining the live-count cache.
func fillSlot(eng exec.Algebra, g *graph.Graph, routed []bool, w []int32, nextHop []int, dest, u int, c *Column) {
	if !routed[u] {
		c.Slots[u] = EntrySlot{}
		return
	}
	s := EntrySlot{W: w[u], Routed: true, NhOff: int32(len(c.Pool))}
	c.live++
	if u == dest {
		c.Slots[u] = s
		return
	}
	c.Pool = appendNextHopSet(eng, g, routed, w, nextHop, u, c.Pool)
	s.NhLen = int32(len(c.Pool)) - s.NhOff
	c.Slots[u] = s
}

// DeltaDestColumn recomputes the arena column for a single destination
// after the given arc toggles, warm-starting from prev's slots — the
// column-store counterpart of DeltaDestEngine. The warm start reads
// engine weight indices straight out of prev's arena, so no values are
// re-interned. When the delta drain runs, untouched slots are copied
// wholesale and only touched nodes and toggle tails re-run the ECMP
// scan; on any fallback the column is rebuilt from scratch. Either way
// the result is bit-identical to BuildDestColumn on g.
func DeltaDestColumn(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, origin value.V, ws *solve.Workspace, prev *Column, toggles []solve.ArcToggle) (*Column, solve.DeltaStats, error) {
	if dest < 0 || dest >= g.N {
		return nil, solve.DeltaStats{}, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	if prev == nil || len(prev.Slots) != g.N || !prev.Slots[dest].Routed || !prev.Converged {
		col, err := BuildDestColumn(eng, g, dest, origin, ws)
		return col, solve.DeltaStats{}, err
	}
	warm := func(u int) (bool, int32, int) {
		s := prev.Slots[u]
		if !s.Routed {
			return false, 0, -1
		}
		if u == dest {
			return true, s.W, -1
		}
		return true, s.W, int(prev.Pool[s.NhOff])
	}
	raw, st := ws.BellmanFordDeltaRaw(eng, g, disabled, dest, origin, warm, prev.Clean, toggles, 0)
	c := &Column{Dest: dest, Converged: raw.Converged, Clean: st.Clean, Slots: make([]EntrySlot, g.N)}
	if !st.UsedDelta {
		c.Pool = make([]int32, 0, g.N)
		for u := 0; u < g.N; u++ {
			fillSlot(eng, g, raw.Routed, raw.W, raw.NextHop, dest, u, c)
		}
		c.liveOK = true
		return c, st, nil
	}
	// Delta path: rebuild only touched nodes and toggle tails; every
	// other node's route did not move, so its slot is copied and its
	// next-hop span transplanted verbatim. The pool is rebuilt (offsets
	// shift) but the spans' contents are identical to a from-scratch
	// build, by the same argument as DeltaDestEngine. The redo set is
	// the workspace's reusable epoch bitmap — the only allocations left
	// on this path are the column itself.
	markRedo(ws, g, st.Touched, toggles, dest)
	c.Pool = make([]int32, 0, len(prev.Pool)+8)
	for u := 0; u < g.N; u++ {
		if ws.Marked(u) {
			fillSlot(eng, g, raw.Routed, raw.W, raw.NextHop, dest, u, c)
			continue
		}
		s := prev.Slots[u]
		if !s.Routed {
			c.Slots[u] = EntrySlot{}
			continue
		}
		ns := EntrySlot{W: s.W, Routed: true, NhOff: int32(len(c.Pool)), NhLen: s.NhLen}
		c.Pool = append(c.Pool, prev.Pool[s.NhOff:s.NhOff+s.NhLen]...)
		c.Slots[u] = ns
		c.live++
	}
	c.liveOK = true
	return c, st, nil
}

// markRedo loads the delta rebuild's redo set — touched nodes plus
// toggle tails — into the workspace's reusable epoch bitmap. The raw
// solver state is valid at exactly these nodes on the sparse path, and
// their ECMP scans read only state the drain materialized.
func markRedo(ws *solve.Workspace, g *graph.Graph, touched []int, toggles []solve.ArcToggle, dest int) {
	ws.ResetMarks(g.N)
	for _, u := range touched {
		ws.Mark(u)
	}
	for _, t := range toggles {
		if x := g.Arcs[t.Arc].From; x != dest {
			ws.Mark(x)
		}
	}
}

// ColumnFromEntries converts a legacy pointer column into arena form,
// interning each entry weight on eng. It exists for adapters and
// differential tests; new code should build columns directly.
func ColumnFromEntries(eng exec.Algebra, dest int, entries []*Entry, converged bool) (*Column, error) {
	c := &Column{Dest: dest, Converged: converged, Slots: make([]EntrySlot, len(entries))}
	c.Pool = make([]int32, 0, len(entries))
	for u, e := range entries {
		if e == nil {
			continue
		}
		w, err := eng.Intern(e.Weight)
		if err != nil {
			return nil, fmt.Errorf("rib: column %d node %d: %v", dest, u, err)
		}
		s := EntrySlot{W: w, Routed: true, NhOff: int32(len(c.Pool)), NhLen: int32(len(e.NextHops))}
		for _, v := range e.NextHops {
			c.Pool = append(c.Pool, int32(v))
		}
		c.Slots[u] = s
		c.live++
	}
	c.liveOK = true
	return c, nil
}
