package rib

// Boundary tests for the prefix plane: the /0 default route as a
// covering announcement, AutoPrefix node-id truncation collisions, and
// suppression semantics across the trie's clear-don't-prune deletes —
// plus RestorePrefixTable's node-for-node trie reproduction, which the
// replication follower depends on for matching trie gauges.

import (
	"math/rand"
	"testing"

	"metarouting/internal/value"
)

func mustParse(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPrefixTableDefaultRouteCovering: a /0 announcement is a valid
// covering prefix — it suppresses every same-node same-origin
// more-specific (including /32s), answers for every address, and loses
// to any kept more-specific by longest match.
func TestPrefixTableDefaultRouteCovering(t *testing.T) {
	pt, err := NewPrefixTable([]PrefixOrigin{
		{Prefix: mustParse(t, "0.0.0.0/0"), Node: 1, Origin: value.V(0)},
		{Prefix: mustParse(t, "10.0.0.0/8"), Node: 1, Origin: value.V(0)},     // suppressed: same node under /0
		{Prefix: mustParse(t, "10.1.1.1/32"), Node: 1, Origin: value.V(0)},    // suppressed: /32 under /0
		{Prefix: mustParse(t, "192.168.0.0/16"), Node: 2, Origin: value.V(0)}, // kept: different anchor
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 2 || len(pt.Suppressed()) != 2 {
		t.Fatalf("kept %d suppressed %d, want 2/2", pt.Len(), len(pt.Suppressed()))
	}
	// Every address resolves: the default catches anything the /16 does
	// not.
	for _, tc := range []struct {
		addr string
		node int
	}{
		{"10.1.1.1", 1},    // suppressed /32 answered by the default
		{"172.16.0.1", 1},  // no specific at all
		{"192.168.5.5", 2}, // kept more-specific wins by longest match
		{"255.255.255.255", 1},
		{"0.0.0.0", 1},
	} {
		addr, err := ParseAddr(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		po, ok := pt.Match(addr)
		if !ok || po.Node != tc.node {
			t.Fatalf("Match(%s) = %+v,%v; want node %d", tc.addr, po, ok, tc.node)
		}
	}
	// Prefix-form queries stop the walk at the query length: the /0
	// itself answers for a short query even though a longer kept prefix
	// sits inside it.
	if po, ok := pt.MatchPrefix(mustParse(t, "192.0.0.0/8")); !ok || po.Prefix.Len != 0 {
		t.Fatalf("MatchPrefix(/8) = %+v,%v; want the default route", po, ok)
	}
}

// TestAutoPrefixNodeIDCollision: AutoPrefix embeds the node id in
// 10/8's low 24 bits, so ids 2^24 apart collide on the same /32.
// AutoPrefixTable must surface that as the conflicting-anchor error,
// not silently shadow one node's announcement with the other's.
func TestAutoPrefixNodeIDCollision(t *testing.T) {
	lo, hi := 0, 1<<24
	if AutoPrefix(lo) != AutoPrefix(hi) {
		t.Fatalf("ids %d and %d should collide: %v vs %v", lo, hi, AutoPrefix(lo), AutoPrefix(hi))
	}
	_, err := AutoPrefixTable(map[int]value.V{lo: 0, hi: 0})
	if err == nil {
		t.Fatal("colliding auto-prefixes must be rejected")
	}
	// A genuine duplicate (same prefix, same anchor, same origin) is not
	// a conflict: it deduplicates.
	pt, err := NewPrefixTable([]PrefixOrigin{
		{Prefix: AutoPrefix(5), Node: 5, Origin: value.V(0)},
		{Prefix: AutoPrefix(5), Node: 5, Origin: value.V(0)},
	})
	if err != nil || pt.Len() != 1 {
		t.Fatalf("agreeing duplicate: pt=%v err=%v", pt, err)
	}
	// Same prefix, same anchor, different origin: conflict.
	if _, err := NewPrefixTable([]PrefixOrigin{
		{Prefix: AutoPrefix(5), Node: 5, Origin: value.V(0)},
		{Prefix: AutoPrefix(5), Node: 5, Origin: value.V(1)},
	}); err == nil {
		t.Fatal("conflicting origins on one prefix must be rejected")
	}
}

// TestTrieClearDontPruneDelete: Delete clears the stored value but
// keeps the spine (the trie is rebuilt, not shrunk, on prefix-set
// changes). Lookups must fall back to the covering prefix through the
// cleared node, counts must track stored values only, and re-inserting
// on the retained spine must not grow the pool.
func TestTrieClearDontPruneDelete(t *testing.T) {
	tr := NewTrie()
	cover := mustParse(t, "10.0.0.0/8")
	spec := mustParse(t, "10.1.0.0/16")
	tr.Insert(cover, 0)
	tr.Insert(spec, 1)
	nodes := tr.NodeCount()
	addr, _ := ParseAddr("10.1.2.3")

	if col, l, ok := tr.Lookup(addr); !ok || col != 1 || l != 16 {
		t.Fatalf("pre-delete Lookup = %d/%d/%v", col, l, ok)
	}
	if !tr.Delete(spec) {
		t.Fatal("Delete must report a stored prefix")
	}
	if tr.Delete(spec) {
		t.Fatal("second Delete must miss")
	}
	if tr.NodeCount() != nodes {
		t.Fatalf("Delete pruned: %d nodes, want %d", tr.NodeCount(), nodes)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", tr.Len())
	}
	// The cleared node is transparent: longest match walks through it to
	// the covering /8.
	if col, l, ok := tr.Lookup(addr); !ok || col != 0 || l != 8 {
		t.Fatalf("post-delete Lookup = %d/%d/%v; want covering /8", col, l, ok)
	}
	// Deleting a never-stored prefix whose path dead-ends is a miss, not
	// a panic.
	if tr.Delete(mustParse(t, "172.16.0.0/12")) {
		t.Fatal("absent prefix must miss")
	}
	// Reinsert on the retained spine: no pool growth, value restored.
	tr.Insert(spec, 2)
	if tr.NodeCount() != nodes {
		t.Fatalf("reinsert grew the pool: %d, want %d", tr.NodeCount(), nodes)
	}
	if col, _, ok := tr.Lookup(addr); !ok || col != 2 {
		t.Fatalf("post-reinsert Lookup col = %d, want 2", col)
	}
}

// TestRestorePrefixTableReproducesTrie: rebuilding from Kept() and
// Suppressed() must reproduce the aggregated table exactly — same
// lookups, same kept order, and the same flat trie pool node count, so
// follower trie gauges match the leader's.
func TestRestorePrefixTableReproducesTrie(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var announced []PrefixOrigin
	seen := make(map[Prefix]bool)
	for len(announced) < 40 {
		p := MakePrefix(r.Uint32(), uint8(r.Intn(33)))
		if seen[p] {
			continue
		}
		seen[p] = true
		announced = append(announced, PrefixOrigin{Prefix: p, Node: r.Intn(6), Origin: value.V(0)})
	}
	pt, err := NewPrefixTable(announced)
	if err != nil {
		t.Fatal(err)
	}
	re := RestorePrefixTable(pt.Kept(), pt.Suppressed())
	if re.Len() != pt.Len() || re.TrieNodes() != pt.TrieNodes() ||
		len(re.Suppressed()) != len(pt.Suppressed()) {
		t.Fatalf("restore: len %d/%d trie %d/%d suppressed %d/%d",
			re.Len(), pt.Len(), re.TrieNodes(), pt.TrieNodes(),
			len(re.Suppressed()), len(pt.Suppressed()))
	}
	for i := 0; i < 2000; i++ {
		addr := r.Uint32()
		gp, gok := re.Match(addr)
		wp, wok := pt.Match(addr)
		if gok != wok || (gok && (gp.Prefix != wp.Prefix || gp.Node != wp.Node)) {
			t.Fatalf("Match(%x): restored %+v,%v original %+v,%v", addr, gp, gok, wp, wok)
		}
	}
}
