package rib

// Tests for the warm-start delta column rebuild and for the RIB access
// error paths (out-of-range nodes, missing destinations, unrouted
// sources) that the HTTP handlers lean on.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// TestForwardErrorPaths pins the Forward/ECMPWidth failure modes: each
// must fail (or report zero width) without panicking, and the errors
// must name what went wrong.
func TestForwardErrorPaths(t *testing.T) {
	a := alg(t, "delay(8,1)")
	// 1 → 0 routed; node 2 isolated.
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 0}})
	rb, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		from int
		dest int
		want string
	}{
		{"unknown destination", 1, 2, "unknown destination"},
		{"negative node", -1, 0, "out of range"},
		{"node past the graph", 99, 0, "out of range"},
		{"unrouted source", 2, 0, "no route"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := rb.Forward(tc.from, tc.dest)
			if err == nil {
				t.Fatalf("Forward(%d, %d) must fail", tc.from, tc.dest)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	for _, tc := range []struct{ node, dest int }{
		{1, 2}, {-1, 0}, {99, 0}, {2, 0},
	} {
		if w := rb.ECMPWidth(tc.node, tc.dest); w != 0 {
			t.Fatalf("ECMPWidth(%d, %d) = %d, want 0", tc.node, tc.dest, w)
		}
	}
	if w := rb.ECMPWidth(1, 0); w != 1 {
		t.Fatalf("routed ECMPWidth = %d, want 1", w)
	}
}

// TestDeltaLicensed pins the property gate, including the split that
// motivates serve.WithDeltaProps: composite algebras carry their
// theorem-derived M/I judgements on the inference node, not on the
// order transform the execution engine exposes.
func TestDeltaLicensed(t *testing.T) {
	for _, tc := range []struct {
		src     string
		otGate  bool // DeltaLicensed on the bare order transform
		setGate bool // DeltaLicensedSet on the inferred property set
	}{
		{"delay(8,2)", true, true},                   // M and I declared on the base OT
		{"bw(4)", true, true},                        // M only
		{"lex(bw(4), hops(8))", false, false},        // the non-monotone widest-shortest gadget
		{"scoped(delay(8,2), hops(8))", false, true}, // M via Theorem 6, invisible on the OT
		{"lex(delay(16,3), hops(8))", false, true},   // I via Theorem 5, invisible on the OT
	} {
		a, err := core.InferString(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := DeltaLicensed(a.OT); got != tc.otGate {
			t.Errorf("DeltaLicensed(%s) = %v, want %v", tc.src, got, tc.otGate)
		}
		if got := DeltaLicensedSet(a.Props); got != tc.setGate {
			t.Errorf("DeltaLicensedSet(%s) = %v, want %v", tc.src, got, tc.setGate)
		}
	}
}

// TestDeltaDestEngineMatchesBuild: warm-started columns are bit-identical
// to from-scratch columns across a chain of random toggles, and untouched
// entries are shared by pointer, not copied.
func TestDeltaDestEngineMatchesBuild(t *testing.T) {
	a := alg(t, "delay(16,3)")
	r := rand.New(rand.NewSource(7))
	g := graph.Random(r, 12, 0.3, graph.UniformLabels(a.F.Size()))
	eng := exec.For(a, 0)
	ws := solve.NewWorkspace()
	disabled := make([]bool, len(g.Arcs))
	prev, converged, err := BuildDestEngine(eng, g.MaskArcs(disabled), 0, 0, ws)
	if err != nil || !converged {
		t.Fatalf("seed build: converged=%v err=%v", converged, err)
	}
	shared := false
	for step := 0; step < 8; step++ {
		ai := r.Intn(len(g.Arcs))
		disabled[ai] = !disabled[ai]
		view := g.MaskArcs(disabled)
		toggles := []solve.ArcToggle{{Arc: ai, Down: disabled[ai]}}
		got, conv, st, err := DeltaDestEngine(eng, view, disabled, 0, 0, ws, prev, toggles)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, wconv, err := BuildDestEngine(eng, view, 0, 0, solve.NewWorkspace())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if conv != wconv {
			t.Fatalf("step %d: converged %v, want %v", step, conv, wconv)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d (delta=%v): columns differ\n got: %+v\nwant: %+v", step, st.UsedDelta, got, want)
		}
		if st.UsedDelta && len(st.Touched) < g.N {
			for u := range got {
				if got[u] != nil && got[u] == prev[u] {
					shared = true
				}
			}
		}
		prev = got
	}
	if !shared {
		t.Fatal("no untouched entry was ever shared by pointer — the delta path never paid off")
	}
}

// TestDeltaDestEngineFallbacks pins the unusable-warm-start cases: each
// must quietly rebuild from scratch with zero delta stats, and a bad
// destination must fail loudly.
func TestDeltaDestEngineFallbacks(t *testing.T) {
	a := alg(t, "delay(8,2)")
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 1}, {From: 2, To: 1, Label: 1}})
	eng := exec.For(a, 0)
	disabled := make([]bool, len(g.Arcs))
	want, _, err := BuildDestEngine(eng, g, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DeltaDestEngine(eng, g, disabled, 9, 0, nil, want, nil); err == nil {
		t.Fatal("out-of-range destination must fail")
	}
	for _, tc := range []struct {
		name string
		prev []*Entry
	}{
		{"nil previous column", nil},
		{"wrong-length column", want[:2]},
		{"destination missing from column", []*Entry{nil, want[1], want[2]}},
	} {
		got, conv, st, err := DeltaDestEngine(eng, g, disabled, 0, 0, nil, tc.prev, nil)
		if err != nil || !conv {
			t.Fatalf("%s: converged=%v err=%v", tc.name, conv, err)
		}
		if st.UsedDelta || st.Frontier != 0 || len(st.Touched) != 0 {
			t.Fatalf("%s: fallback must report zero delta stats, got %+v", tc.name, st)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: fallback column differs", tc.name)
		}
	}
}
