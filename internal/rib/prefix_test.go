package rib

import (
	"fmt"
	"math/rand"
	"testing"

	"metarouting/internal/value"
)

func TestParseAddrAndPrefix(t *testing.T) {
	addr, err := ParseAddr("10.1.2.3")
	if err != nil || addr != 10<<24|1<<16|2<<8|3 {
		t.Fatalf("ParseAddr = %x, %v", addr, err)
	}
	for _, bad := range []string{"", "10.1.2", "10.1.2.3.4", "256.0.0.1", "a.b.c.d", "01.2.3.4", "-1.0.0.0"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q): want error", bad)
		}
	}
	p, err := ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("masking: got %v", p)
	}
	if q, _ := ParsePrefix("10.1.2.3"); q.Len != 32 {
		t.Fatalf("bare address must be /32, got %v", q)
	}
	for _, bad := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q): want error", bad)
		}
	}
	if !p.Contains(10<<24 | 1<<16 | 99) {
		t.Fatal("Contains inside")
	}
	if p.Contains(10<<24 | 2<<16) {
		t.Fatal("Contains outside")
	}
	cover, _ := ParsePrefix("10.0.0.0/8")
	if !cover.Covers(p) || p.Covers(cover) {
		t.Fatal("Covers must be asymmetric across lengths")
	}
}

func TestAutoPrefix(t *testing.T) {
	p := AutoPrefix(259)
	if p.String() != "10.0.1.3/32" {
		t.Fatalf("AutoPrefix(259) = %v", p)
	}
}

func TestTrieLongestMatch(t *testing.T) {
	tr := NewTrie()
	ins := func(s string, col int32) Prefix {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(p, col)
		return p
	}
	ins("0.0.0.0/0", 0)
	ins("10.0.0.0/8", 1)
	ins("10.1.0.0/16", 2)
	p32 := ins("10.1.2.3/32", 3)
	cases := []struct {
		addr string
		col  int32
	}{
		{"192.168.0.1", 0},
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.3", 3},
		{"10.1.2.4", 2},
	}
	for _, tc := range cases {
		addr, _ := ParseAddr(tc.addr)
		col, _, ok := tr.Lookup(addr)
		if !ok || col != tc.col {
			t.Errorf("Lookup(%s) = %d,%v, want %d", tc.addr, col, ok, tc.col)
		}
	}
	// Prefix-form lookup stops at the query length: the stored /32
	// inside 10.1.2.0/24 must not answer for the /24.
	q, _ := ParsePrefix("10.1.2.0/24")
	if col, _, ok := tr.LookupPrefix(q); !ok || col != 2 {
		t.Fatalf("LookupPrefix(/24) = %d,%v, want 2", col, ok)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if !tr.Delete(p32) || tr.Delete(p32) {
		t.Fatal("Delete must report presence exactly once")
	}
	addr, _ := ParseAddr("10.1.2.3")
	if col, _, _ := tr.Lookup(addr); col != 2 {
		t.Fatalf("after delete, Lookup = %d, want 2", col)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len after delete = %d, want 3", tr.Len())
	}
	if tr.NodeCount() < 32 {
		t.Fatalf("NodeCount = %d, implausibly small", tr.NodeCount())
	}
}

func TestPrefixTableAggregation(t *testing.T) {
	mk := func(s string, node int) PrefixOrigin {
		p, err := ParsePrefix(s)
		if err != nil {
			t.Fatal(err)
		}
		return PrefixOrigin{Prefix: p, Node: node, Origin: 0}
	}
	pt, err := NewPrefixTable([]PrefixOrigin{
		mk("10.0.0.0/8", 1),
		mk("10.1.0.0/16", 1), // same anchor as the /8: suppressed
		mk("10.2.0.0/16", 2), // different anchor: kept
		mk("10.0.0.7/32", 1), // same-node /32: suppressed
		mk("10.2.0.9/32", 2), // /32 under the node-2 /16: suppressed
		mk("11.0.0.5/32", 3), // uncovered /32: kept
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 3 {
		t.Fatalf("kept %d prefixes, want 3: %v", pt.Len(), pt.Kept())
	}
	if len(pt.Suppressed()) != 3 {
		t.Fatalf("suppressed %v, want 3", pt.Suppressed())
	}
	// Suppressed more-specifics must still resolve — through the cover.
	addr, _ := ParseAddr("10.1.2.3")
	if po, ok := pt.Match(addr); !ok || po.Node != 1 {
		t.Fatalf("Match(10.1.2.3) = %+v,%v, want node 1", po, ok)
	}
	addr, _ = ParseAddr("10.2.0.9")
	if po, ok := pt.Match(addr); !ok || po.Node != 2 {
		t.Fatalf("Match(10.2.0.9) = %+v,%v, want node 2", po, ok)
	}
	if _, ok := pt.Match(0); ok {
		t.Fatal("unannounced space must miss")
	}
	if got := pt.Origins(); len(got) != 3 {
		t.Fatalf("Origins = %v, want 3 nodes", got)
	}

	// Conflicting duplicate announcements and conflicting per-node
	// origins are configuration errors, not silent last-wins.
	if _, err := NewPrefixTable([]PrefixOrigin{mk("10.0.0.0/8", 1), mk("10.0.0.0/8", 2)}); err == nil {
		t.Fatal("conflicting duplicate must error")
	}
	if _, err := NewPrefixTable([]PrefixOrigin{
		{Prefix: MakePrefix(10<<24, 8), Node: 1, Origin: 0},
		{Prefix: MakePrefix(11<<24, 8), Node: 1, Origin: 1},
	}); err == nil {
		t.Fatal("conflicting node origin must error")
	}
	if _, err := NewPrefixTable(nil); err == nil {
		t.Fatal("empty set must error")
	}
}

// naiveLPM is the linear-scan longest-prefix-match oracle the trie is
// fuzzed against.
type naiveLPM map[Prefix]int32

func (n naiveLPM) lookup(addr uint32, maxLen uint8) (int32, uint8, bool) {
	best, bestLen, ok := int32(-1), uint8(0), false
	for p, col := range n {
		if p.Len <= maxLen && p.Contains(addr) && (!ok || p.Len > bestLen) {
			best, bestLen, ok = col, p.Len, true
		}
	}
	return best, bestLen, ok
}

// FuzzTrieLPM drives random insert/delete/lookup sequences through the
// trie and the linear-scan oracle in lockstep.
func FuzzTrieLPM(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTrie()
		oracle := naiveLPM{}
		r := rand.New(rand.NewSource(int64(len(data))))
		next := int32(0)
		for i := 0; i+5 <= len(data); i += 5 {
			op := data[i] % 3
			addr := uint32(data[i+1])<<24 | uint32(data[i+2])<<16 | uint32(data[i+3])<<8 | uint32(data[i+4])
			// Bias lengths short so prefixes overlap often.
			l := uint8(r.Intn(33))
			p := MakePrefix(addr, l)
			switch op {
			case 0:
				tr.Insert(p, next)
				oracle[p] = next
				next++
			case 1:
				got := tr.Delete(p)
				_, want := oracle[p]
				if got != want {
					t.Fatalf("Delete(%v) = %v, oracle %v", p, got, want)
				}
				delete(oracle, p)
			case 2:
				gc, gl, gok := tr.Lookup(addr)
				wc, wl, wok := oracle.lookup(addr, 32)
				if gok != wok || (gok && (gc != wc || gl != wl)) {
					t.Fatalf("Lookup(%x) = %d/%d/%v, oracle %d/%d/%v", addr, gc, gl, gok, wc, wl, wok)
				}
				ql := uint8(r.Intn(33))
				gc, gl, gok = tr.LookupPrefix(MakePrefix(addr, ql))
				wc, wl, wok = oracle.lookup(addr&mask(ql), ql)
				if gok != wok || (gok && (gc != wc || gl != wl)) {
					t.Fatalf("LookupPrefix(%x/%d) = %d/%d/%v, oracle %d/%d/%v", addr, ql, gc, gl, gok, wc, wl, wok)
				}
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
			}
		}
	})
}

func TestTrieAgainstOracleSweep(t *testing.T) {
	// A deterministic heavy sweep in the same shape as the fuzz target,
	// so regular test runs exercise the oracle comparison too.
	r := rand.New(rand.NewSource(42))
	data := make([]byte, 4000)
	r.Read(data)
	tr := NewTrie()
	oracle := naiveLPM{}
	next := int32(0)
	for i := 0; i+5 <= len(data); i += 5 {
		addr := uint32(data[i+1])<<24 | uint32(data[i+2])<<16 | uint32(data[i+3])<<8 | uint32(data[i+4])
		p := MakePrefix(addr, uint8(r.Intn(33)))
		switch data[i] % 3 {
		case 0:
			tr.Insert(p, next)
			oracle[p] = next
			next++
		case 1:
			if tr.Delete(p) != (func() bool { _, ok := oracle[p]; return ok })() {
				t.Fatalf("Delete(%v) disagrees", p)
			}
			delete(oracle, p)
		case 2:
			gc, gl, gok := tr.Lookup(addr)
			wc, wl, wok := oracle.lookup(addr, 32)
			if gok != wok || (gok && (gc != wc || gl != wl)) {
				t.Fatalf("Lookup(%x) = %d/%d/%v, oracle %d/%d/%v", addr, gc, gl, gok, wc, wl, wok)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
}

func TestAutoPrefixTable(t *testing.T) {
	pt, err := AutoPrefixTable(map[int]value.V{0: 0, 7: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pt.Len())
	}
	addr := AutoPrefix(7).Addr
	if po, ok := pt.Match(addr); !ok || po.Node != 7 {
		t.Fatalf("Match(auto 7) = %+v,%v", po, ok)
	}
	if _, ok := pt.Match(AutoPrefix(3).Addr); ok {
		t.Fatal("unannounced node must miss")
	}
	_ = fmt.Sprint(pt.Kept())
}
