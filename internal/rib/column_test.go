package rib

import (
	"fmt"
	"math/rand"
	"testing"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// columnMatchesEntries asserts an arena column is bit-identical to a
// legacy pointer column: same routedness, same resolved weight, same
// ECMP next-hop sequence.
func columnMatchesEntries(t *testing.T, eng exec.Algebra, col *Column, entries []*Entry, tag string) {
	t.Helper()
	if len(col.Slots) != len(entries) {
		t.Fatalf("%s: %d slots vs %d entries", tag, len(col.Slots), len(entries))
	}
	for u := range entries {
		e := entries[u]
		s := col.Slots[u]
		if (e != nil) != s.Routed {
			t.Fatalf("%s node %d: routedness differs", tag, u)
		}
		if e == nil {
			continue
		}
		if w := eng.Value(s.W); w != e.Weight {
			t.Fatalf("%s node %d: weight %v vs %v", tag, u, w, e.Weight)
		}
		nh := col.NextHops(u)
		if len(nh) != len(e.NextHops) {
			t.Fatalf("%s node %d: ECMP %v vs %v", tag, u, nh, e.NextHops)
		}
		for i, v := range e.NextHops {
			if int(nh[i]) != v {
				t.Fatalf("%s node %d: ECMP %v vs %v", tag, u, nh, e.NextHops)
			}
		}
	}
}

// engines returns the dynamic backend and, when the algebra compiles
// (finite carrier), the table-compiled one.
func engines(t *testing.T, a *ost.OrderTransform) map[string]exec.Algebra {
	t.Helper()
	out := map[string]exec.Algebra{"dynamic": exec.NewDynamic(a)}
	if eng, err := exec.Compile(a); err == nil {
		out["compiled"] = eng
	}
	return out
}

// originFor picks a valid origin weight for an algebra: its order
// bottom when one exists, otherwise the first carrier element.
func originFor(a *ost.OrderTransform) value.V {
	if b, ok := a.Ord.Bot(); ok {
		return b
	}
	return a.Carrier().Elems[0]
}

// TestColumnDifferential is the arena-vs-pointer differential from the
// acceptance criteria: across random algebras × GNP/ring/grid × both
// engine backends, BuildDestColumn must be bit-identical to the legacy
// BuildDestEngine pointer path.
func TestColumnDifferential(t *testing.T) {
	algebras := []string{
		"delay(16,3)",
		"hops(16)",
		"bw(8)",
		"lex(delay(8,2), hops(8))",
		"scoped(delay(8,2), hops(8))",
	}
	for _, src := range algebras {
		a := alg(t, src)
		for _, backend := range []string{"dynamic", "compiled"} {
			eng, ok := engines(t, a)[backend]
			if !ok {
				continue
			}
			r := rand.New(rand.NewSource(99))
			topos := map[string]*graph.Graph{
				"gnp":  graph.Random(r, 14, 0.25, graph.UniformLabels(a.F.Size())),
				"ring": graph.Ring(r, 12, graph.UniformLabels(a.F.Size())),
				"grid": graph.Grid(r, 4, 4, graph.UniformLabels(a.F.Size())),
			}
			org := originFor(a)
			for tname, g := range topos {
				tag := fmt.Sprintf("%s/%s/%s", src, backend, tname)
				ws := solve.NewWorkspace()
				for _, dest := range []int{0, g.N / 2} {
					entries, conv1, err := BuildDestEngine(eng, g, dest, org, ws)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					col, err := BuildDestColumn(eng, g, dest, org, ws)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					if col.Converged != conv1 {
						t.Fatalf("%s dest %d: convergence differs", tag, dest)
					}
					columnMatchesEntries(t, eng, col, entries, tag)
				}
			}
		}
	}
}

// TestDeltaColumnDifferential drives a toggle chain through
// DeltaDestColumn and checks each warm-started column against both a
// from-scratch column and the legacy DeltaDestEngine pointer path.
func TestDeltaColumnDifferential(t *testing.T) {
	for _, src := range []string{"delay(16,3)", "lex(delay(8,2), hops(8))"} {
		a := alg(t, src)
		for backend, eng := range engines(t, a) {
			r := rand.New(rand.NewSource(17))
			g := graph.Random(r, 12, 0.3, graph.UniformLabels(a.F.Size()))
			ws := solve.NewWorkspace()
			disabled := make([]bool, len(g.Arcs))
			org := originFor(a)
			prevCol, err := BuildDestColumn(eng, g.MaskArcs(disabled), 0, org, ws)
			if err != nil {
				t.Fatal(err)
			}
			prevEnt, _, err := BuildDestEngine(eng, g.MaskArcs(disabled), 0, org, ws)
			if err != nil {
				t.Fatal(err)
			}
			usedDelta := false
			for step := 0; step < 10; step++ {
				ai := r.Intn(len(g.Arcs))
				disabled[ai] = !disabled[ai]
				view := g.MaskArcs(disabled)
				toggles := []solve.ArcToggle{{Arc: ai, Down: disabled[ai]}}
				tag := fmt.Sprintf("%s/%s step %d", src, backend, step)

				col, st, err := DeltaDestColumn(eng, view, disabled, 0, org, ws, prevCol, toggles)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				usedDelta = usedDelta || st.UsedDelta

				scratch, err := BuildDestColumn(eng, view, 0, org, solve.NewWorkspace())
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if fmt.Sprint(col.Slots) != fmt.Sprint(scratch.Slots) || fmt.Sprint(col.Pool) != fmt.Sprint(scratch.Pool) {
					t.Fatalf("%s: delta column diverges from scratch build", tag)
				}

				ent, _, _, err := DeltaDestEngine(eng, view, disabled, 0, org, ws, prevEnt, toggles)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				columnMatchesEntries(t, eng, col, ent, tag)
				prevCol, prevEnt = col, ent
			}
			if !usedDelta {
				t.Fatalf("%s/%s: warm-start path never engaged", src, backend)
			}
		}
	}
}

// TestColumnFootprint pins the Bytes/Live gauges and the RIB adapters.
func TestColumnFootprint(t *testing.T) {
	a := alg(t, "delay(16,3)")
	eng := exec.NewDynamic(a)
	g := graph.Ring(rand.New(rand.NewSource(3)), 16, graph.UniformLabels(a.F.Size()))
	col, err := BuildDestColumn(eng, g, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if col.Live() != 16 {
		t.Fatalf("Live = %d, want 16", col.Live())
	}
	if want := 16*entrySlotBytes + len(col.Pool)*4; col.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", col.Bytes(), want)
	}
	rb := FromColumns(eng, g, map[int]*Column{0: col})
	if rb.Column(0) != col {
		t.Fatal("Column accessor must return the adopted column")
	}
	e := rb.Lookup(5, 0)
	if e == nil || len(e.NextHops) == 0 {
		t.Fatalf("Lookup adapter = %+v", e)
	}
	if got := rb.ECMPWidth(5, 0); got != len(e.NextHops) {
		t.Fatalf("ECMPWidth = %d, want %d", got, len(e.NextHops))
	}
	if _, err := rb.Forward(5, 0); err != nil {
		t.Fatal(err)
	}
	// FromEntries round-trips through arena form.
	entries, _, err := BuildDestEngine(eng, g, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb2 := FromEntries(eng, g, map[int][]*Entry{0: entries})
	columnMatchesEntries(t, eng, rb2.Column(0).(*Column), entries, "FromEntries")
}

// TestColumnBuildAllocs is the pointer-chasing regression guard: a
// column build on the compiled backend must stay within a handful of
// allocations (the column header, the slot arena, the pool and its
// growth) regardless of node count — one *Entry per node would blow
// this bound immediately.
func TestColumnBuildAllocs(t *testing.T) {
	a := alg(t, "lex(delay(8,2), hops(8))")
	eng, err := exec.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(5)), 256, 0.03, graph.UniformLabels(a.F.Size()))
	ws := solve.NewWorkspace()
	org := originFor(a)
	if _, err := BuildDestColumn(eng, g, 0, org, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := BuildDestColumn(eng, g, 0, org, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("BuildDestColumn allocates %.0f objects per run, want ≤ 8", allocs)
	}
}

// BenchmarkColumnBuild is the column-build benchmark the CI allocs
// guard watches; -benchmem makes allocs/op visible.
func BenchmarkColumnBuild(b *testing.B) {
	a := alg(b, "lex(delay(8,2), hops(8))")
	eng, err := exec.Compile(a)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(5)), 1024, 0.008, graph.UniformLabels(a.F.Size()))
	ws := solve.NewWorkspace()
	org := originFor(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDestColumn(eng, g, 0, org, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntryColumnBuild is the pointer-path baseline for the same
// build, for side-by-side allocs/op comparison.
func BenchmarkEntryColumnBuild(b *testing.B) {
	a := alg(b, "lex(delay(8,2), hops(8))")
	eng, err := exec.Compile(a)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(5)), 1024, 0.008, graph.UniformLabels(a.F.Size()))
	ws := solve.NewWorkspace()
	org := originFor(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildDestEngine(eng, g, 0, org, ws); err != nil {
			b.Fatal(err)
		}
	}
}
