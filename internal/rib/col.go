package rib

import (
	"metarouting/internal/exec"
	"metarouting/internal/graph"
)

// Col is the read surface shared by the two arena column layouts: the
// flat Column (one slot slice + one pool) and the paged PagedColumn
// (fixed-size copy-on-write pages behind a page table). The serve
// snapshot plane holds columns through this interface so the zero-alloc
// batch resolver, the forwarding walker and the replication encoder run
// unchanged over either layout; both implementations are pointer-shaped,
// so storing one in a Col never allocates.
type Col interface {
	// DestNode is the destination node anchoring the column.
	DestNode() int
	// NumNodes is the column length (the graph's node count).
	NumNodes() int
	// IsConverged reports whether the producing solver run reached a
	// fixpoint.
	IsConverged() bool
	// IsClean reports the verified clean-forwarding-tree certificate
	// (see solve.Workspace.VerifyForwardTree); it licenses the sparse
	// delta warm start on the next rebuild.
	IsClean() bool
	// Route returns node u's selected weight index (ok=false when
	// unrouted or out of range).
	Route(u int) (w int32, ok bool)
	// NextHops returns u's ECMP next-hop view (aliasing internal
	// storage; read-only, primary first), nil when unrouted or at the
	// destination.
	NextHops(u int) []int32
	// AppendNextHops appends u's ECMP span to dst — the batched query
	// plane's copy-out entry point.
	AppendNextHops(dst []int32, u int) []int32
	// Forward resolves the forwarding path from a node to the
	// destination following primary next hops.
	Forward(from int) (graph.Path, error)
	// Entry materializes node u's legacy *Entry view (nil when
	// unrouted).
	Entry(eng exec.Algebra, u int) *Entry
	// Bytes is the arena footprint; Live the routed slot count. Both
	// are O(pages) at most — never a full slot scan on built columns.
	Bytes() int
	Live() int
	// Flatten returns the column in flat form (itself for a *Column;
	// a fresh canonical re-lay for a *PagedColumn) — the form the
	// replication wire codec and checksums consume.
	Flatten() *Column
}
