package rib

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"metarouting/internal/value"
)

// This file holds the prefix destination plane: IPv4 prefixes, a binary
// LPM trie over a flat node pool, and the PrefixTable that maps
// announced prefixes onto anchor nodes with DoubleZero-style
// aggregation — a more-specific prefix (including /32 user routes) is
// suppressed when a covering prefix anchored at the same node with the
// same origin already answers for it, since longest-match through the
// covering route forwards identically.

// Prefix is an IPv4 prefix in host byte order. Addr is stored masked:
// bits past Len are zero.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// mask returns the network mask for a prefix length.
func mask(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - l)
}

// MakePrefix masks addr to l bits.
func MakePrefix(addr uint32, l uint8) Prefix {
	if l > 32 {
		l = 32
	}
	return Prefix{Addr: addr & mask(l), Len: l}
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&mask(p.Len) == p.Addr
}

// Covers reports whether p covers q (q is equal or more specific).
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Addr&mask(p.Len) == p.Addr
}

// String renders dotted-quad/len.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", p.Addr>>24, p.Addr>>16&0xff, p.Addr>>8&0xff, p.Addr&0xff, p.Len)
}

// ParseAddr parses a dotted-quad IPv4 address into host byte order.
func ParseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("rib: bad address %q", s)
	}
	var addr uint32
	for _, part := range parts {
		o, err := strconv.Atoi(part)
		if err != nil || o < 0 || o > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("rib: bad address %q", s)
		}
		addr = addr<<8 | uint32(o)
	}
	return addr, nil
}

// ParsePrefix parses "a.b.c.d/len" (a bare address is a /32). The
// address is masked to the prefix length.
func ParsePrefix(s string) (Prefix, error) {
	addrStr, lenStr, ok := strings.Cut(s, "/")
	addr, err := ParseAddr(addrStr)
	if err != nil {
		return Prefix{}, err
	}
	if !ok {
		return Prefix{Addr: addr, Len: 32}, nil
	}
	l, err := strconv.Atoi(lenStr)
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("rib: bad prefix length in %q", s)
	}
	return MakePrefix(addr, uint8(l)), nil
}

// AutoPrefix is the synthetic /32 a node-keyed destination gets when no
// explicit prefix set is configured: node id embedded in 10/8, so
// address-form queries work out of the box on legacy scenarios.
func AutoPrefix(node int) Prefix {
	return Prefix{Addr: 10<<24 | uint32(node)&0xffffff, Len: 32}
}

// trieNode is one flat LPM trie node: two child indices and a column
// id, -1 for absent. 12 bytes per node, no pointers.
type trieNode struct {
	child [2]int32
	col   int32
}

// Trie is a binary longest-prefix-match trie over a flat node pool.
// The zero-index node is the root. Tries are built once per prefix set
// and shared immutably across snapshots.
type Trie struct {
	nodes []trieNode
	count int
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{nodes: []trieNode{{child: [2]int32{-1, -1}, col: -1}}}
}

// Insert stores col at p, replacing any previous value. col must be
// non-negative.
func (t *Trie) Insert(p Prefix, col int32) {
	n := int32(0)
	for i := uint8(0); i < p.Len; i++ {
		b := p.Addr >> (31 - i) & 1
		next := t.nodes[n].child[b]
		if next < 0 {
			next = int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{child: [2]int32{-1, -1}, col: -1})
			t.nodes[n].child[b] = next
		}
		n = next
	}
	if t.nodes[n].col < 0 {
		t.count++
	}
	t.nodes[n].col = col
}

// Delete removes the value stored exactly at p, reporting whether one
// was present. Nodes are not pruned; the trie is rebuilt, not shrunk,
// when prefix sets change.
func (t *Trie) Delete(p Prefix) bool {
	n := int32(0)
	for i := uint8(0); i < p.Len; i++ {
		b := p.Addr >> (31 - i) & 1
		n = t.nodes[n].child[b]
		if n < 0 {
			return false
		}
	}
	if t.nodes[n].col < 0 {
		return false
	}
	t.nodes[n].col = -1
	t.count--
	return true
}

// Lookup returns the longest-match column id for addr, with the length
// of the matching prefix. ok is false when nothing matches.
func (t *Trie) Lookup(addr uint32) (col int32, matchLen uint8, ok bool) {
	return t.lookupN(addr, 32)
}

// LookupPrefix returns the longest stored prefix covering p — the walk
// stops at p.Len, so a stored more-specific inside p never answers for
// it.
func (t *Trie) LookupPrefix(p Prefix) (col int32, matchLen uint8, ok bool) {
	return t.lookupN(p.Addr, p.Len)
}

func (t *Trie) lookupN(addr uint32, maxLen uint8) (col int32, matchLen uint8, ok bool) {
	col = -1
	n := int32(0)
	if t.nodes[0].col >= 0 {
		col, ok = t.nodes[0].col, true
	}
	for i := uint8(0); i < maxLen; i++ {
		b := addr >> (31 - i) & 1
		n = t.nodes[n].child[b]
		if n < 0 {
			break
		}
		if t.nodes[n].col >= 0 {
			col, matchLen, ok = t.nodes[n].col, i+1, true
		}
	}
	return col, matchLen, ok
}

// Len returns the number of stored prefixes.
func (t *Trie) Len() int { return t.count }

// NodeCount returns the flat pool size (a memory gauge, not the prefix
// count; deleted prefixes leave their spine in place).
func (t *Trie) NodeCount() int { return len(t.nodes) }

// PrefixOrigin announces one prefix: anchored at a node, originated
// with a weight.
type PrefixOrigin struct {
	Prefix Prefix
	// Node is the anchor: the graph node whose route column answers for
	// the prefix.
	Node int
	// Origin is the weight the anchor originates the prefix with.
	Origin value.V
}

// PrefixTable is the immutable prefix→anchor index a snapshot carries:
// an LPM trie over the post-aggregation prefix set, plus the
// announcement list and the suppression record. Column ids stored in
// the trie are indices into the kept announcement list.
type PrefixTable struct {
	trie       *Trie
	kept       []PrefixOrigin
	suppressed []PrefixOrigin
}

// NewPrefixTable aggregates and indexes a prefix announcement set.
// Announcements are validated (duplicate prefixes must agree on anchor
// and origin; each anchor node must originate with one weight), then
// aggregated: an announcement is suppressed when a strictly covering
// announcement has the same anchor node and equal origin — longest
// match through the covering prefix forwards identically, so the
// more-specific column would be byte-for-byte redundant. This is the
// same-node /32 suppression rule generalized to any length pair.
func NewPrefixTable(announced []PrefixOrigin) (*PrefixTable, error) {
	if len(announced) == 0 {
		return nil, fmt.Errorf("rib: empty prefix announcement set")
	}
	byPrefix := make(map[Prefix]PrefixOrigin, len(announced))
	nodeOrigin := make(map[int]value.V)
	ordered := make([]PrefixOrigin, 0, len(announced))
	for _, po := range announced {
		po.Prefix = MakePrefix(po.Prefix.Addr, po.Prefix.Len)
		if prev, ok := byPrefix[po.Prefix]; ok {
			if prev.Node != po.Node || prev.Origin != po.Origin {
				return nil, fmt.Errorf("rib: prefix %v announced twice with conflicting anchors", po.Prefix)
			}
			continue
		}
		if o, ok := nodeOrigin[po.Node]; ok {
			if o != po.Origin {
				return nil, fmt.Errorf("rib: node %d originates conflicting weights", po.Node)
			}
		} else {
			nodeOrigin[po.Node] = po.Origin
		}
		byPrefix[po.Prefix] = po
		ordered = append(ordered, po)
	}
	// Shortest first, so every candidate's potential coverers are
	// already in the trie when it is considered.
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Prefix.Len != ordered[j].Prefix.Len {
			return ordered[i].Prefix.Len < ordered[j].Prefix.Len
		}
		return ordered[i].Prefix.Addr < ordered[j].Prefix.Addr
	})
	pt := &PrefixTable{trie: NewTrie()}
	for _, po := range ordered {
		if col, _, ok := pt.trie.LookupPrefix(po.Prefix); ok {
			cover := pt.kept[col]
			if cover.Node == po.Node && cover.Origin == po.Origin {
				pt.suppressed = append(pt.suppressed, po)
				continue
			}
		}
		pt.trie.Insert(po.Prefix, int32(len(pt.kept)))
		pt.kept = append(pt.kept, po)
	}
	return pt, nil
}

// RestorePrefixTable rebuilds a PrefixTable from an already-aggregated
// announcement set — the replication follower's entry point. kept must
// be in trie column order (exactly what Kept() returns); no validation
// or aggregation reruns, and inserting kept in slice order reproduces
// the original trie's flat node pool layout node for node, so a
// follower's LPM answers and trie gauges match the leader's. Origins
// may be zero values: followers never re-solve, they only map
// longest-match hits onto replicated columns.
func RestorePrefixTable(kept, suppressed []PrefixOrigin) *PrefixTable {
	pt := &PrefixTable{trie: NewTrie()}
	for _, po := range kept {
		pt.trie.Insert(po.Prefix, int32(len(pt.kept)))
		pt.kept = append(pt.kept, po)
	}
	pt.suppressed = append(pt.suppressed, suppressed...)
	return pt
}

// AutoPrefixTable builds the synthetic table for node-keyed origins:
// one AutoPrefix /32 per destination.
func AutoPrefixTable(origins map[int]value.V) (*PrefixTable, error) {
	announced := make([]PrefixOrigin, 0, len(origins))
	for node, o := range origins {
		announced = append(announced, PrefixOrigin{Prefix: AutoPrefix(node), Node: node, Origin: o})
	}
	return NewPrefixTable(announced)
}

// Match resolves an address by longest match to its anchor
// announcement.
func (pt *PrefixTable) Match(addr uint32) (PrefixOrigin, bool) {
	col, _, ok := pt.trie.Lookup(addr)
	if !ok {
		return PrefixOrigin{}, false
	}
	return pt.kept[col], true
}

// MatchPrefix resolves a prefix query to the longest kept announcement
// covering it.
func (pt *PrefixTable) MatchPrefix(p Prefix) (PrefixOrigin, bool) {
	col, _, ok := pt.trie.LookupPrefix(MakePrefix(p.Addr, p.Len))
	if !ok {
		return PrefixOrigin{}, false
	}
	return pt.kept[col], true
}

// MatchNode resolves an address to its anchor node and matched prefix
// length without materializing the announcement — the batched binary
// query path's entry point (no interface values cross it).
func (pt *PrefixTable) MatchNode(addr uint32) (node int, matchLen uint8, ok bool) {
	col, matchLen, ok := pt.trie.Lookup(addr)
	if !ok {
		return -1, 0, false
	}
	return pt.kept[col].Node, matchLen, true
}

// MatchPrefixNode resolves a prefix query to its anchor node and
// matched length, the index-form counterpart of MatchPrefix.
func (pt *PrefixTable) MatchPrefixNode(p Prefix) (node int, matchLen uint8, ok bool) {
	col, matchLen, ok := pt.trie.LookupPrefix(MakePrefix(p.Addr, p.Len))
	if !ok {
		return -1, 0, false
	}
	return pt.kept[col].Node, matchLen, true
}

// Kept returns the post-aggregation announcements in trie column
// order (read-only).
func (pt *PrefixTable) Kept() []PrefixOrigin { return pt.kept }

// Suppressed returns the announcements dropped by aggregation
// (read-only).
func (pt *PrefixTable) Suppressed() []PrefixOrigin { return pt.suppressed }

// Origins collapses the kept announcements to per-node origins — the
// destination set the column builder solves for.
func (pt *PrefixTable) Origins() map[int]value.V {
	out := make(map[int]value.V)
	for _, po := range pt.kept {
		out[po.Node] = po.Origin
	}
	return out
}

// TrieNodes returns the trie's flat pool size (a memory gauge).
func (pt *PrefixTable) TrieNodes() int { return pt.trie.NodeCount() }

// Len returns the number of kept prefixes.
func (pt *PrefixTable) Len() int { return pt.trie.Len() }
