package rib

import (
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

func TestBuildAndLookup(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(1))
	g := graph.Random(r, 8, 0.3, graph.UniformLabels(3))
	rib, err := Build(a, g, map[int]value.V{0: 0, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rib.Destinations()) != 2 {
		t.Fatalf("destinations = %v", rib.Destinations())
	}
	for _, dest := range []int{0, 3} {
		// Every entry must match a fresh solver run.
		res := solve.BellmanFord(a, g, dest, 0, 0)
		for u := 0; u < g.N; u++ {
			e := rib.Lookup(u, dest)
			if (e != nil) != res.Routed[u] {
				t.Fatalf("dest %d node %d: routedness differs", dest, u)
			}
			if e != nil && e.Weight != res.Weights[u] {
				t.Fatalf("dest %d node %d: weight %v vs %v", dest, u, e.Weight, res.Weights[u])
			}
		}
	}
	if rib.Lookup(0, 5) != nil {
		t.Fatal("unknown destination must miss")
	}
}

func TestForwardPaths(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(2))
	g := graph.Random(r, 9, 0.3, graph.UniformLabels(3))
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		p, err := rib.Forward(u, 0)
		if err != nil {
			t.Fatalf("node %d: %v", u, err)
		}
		if p[0] != u || p[len(p)-1] != 0 {
			t.Fatalf("node %d: path %v malformed", u, p)
		}
	}
	if _, err := rib.Forward(0, 7); err == nil {
		t.Fatal("unknown destination must fail")
	}
}

func TestECMP(t *testing.T) {
	a := alg(t, "hops(16)")
	// Two equal-length routes from 3: via 1 and via 2.
	g := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 0, Label: 0},
		{From: 3, To: 1, Label: 0},
		{From: 3, To: 2, Label: 0},
	})
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if w := rib.ECMPWidth(3, 0); w != 2 {
		t.Fatalf("node 3 ECMP width = %d, want 2", w)
	}
	if w := rib.ECMPWidth(1, 0); w != 1 {
		t.Fatalf("node 1 ECMP width = %d, want 1", w)
	}
	e := rib.Lookup(3, 0)
	seen := map[int]bool{}
	for _, nh := range e.NextHops {
		seen[nh] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("ECMP set = %v, want {1,2}", e.NextHops)
	}
}

func TestBuildRejectsBadDestination(t *testing.T) {
	a := alg(t, "delay(8,1)")
	g := graph.MustNew(2, []graph.Arc{{From: 1, To: 0, Label: 0}})
	if _, err := Build(a, g, map[int]value.V{7: 0}); err == nil {
		t.Fatal("out-of-range destination must fail")
	}
}

func TestBuildReportsNonConvergence(t *testing.T) {
	a := alg(t, "gadget")
	g, _ := graph.BadGadgetArcs()
	// The synchronous iteration on the gadget may or may not stabilize
	// within budget depending on tie-breaking; if it reports
	// non-convergence the error must name the destination.
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err == nil {
		// Converged: fine — the sync schedule found a stable point.
		if rib.Lookup(0, 0) == nil {
			t.Fatal("destination entry missing")
		}
		return
	}
	if rib == nil {
		t.Fatal("best-effort table must still be returned")
	}
}

func TestUnroutedNodeForwardFails(t *testing.T) {
	a := alg(t, "delay(8,1)")
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 0}}) // node 2 isolated
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rib.Forward(2, 0); err == nil {
		t.Fatal("isolated node must fail to forward")
	}
	if rib.ECMPWidth(2, 0) != 0 {
		t.Fatal("unrouted ECMP width must be 0")
	}
}

// TestForwardDeterminism (satellite): the same seed and the same graph
// yield bit-identical forwarding behaviour — Forward paths and
// ECMPWidth — across two independent builds, on both backends. This is
// the reproducibility guarantee the serve snapshot-equivalence tests
// build on: a snapshot rebuilt from identical inputs is identical.
func TestForwardDeterminism(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		a, err := core.InferString("lex(delay(16,3), bw(4))")
		if err != nil {
			t.Fatal(err)
		}
		build := func(mode exec.Mode) (*RIB, *graph.Graph) {
			// A fresh rand per build: determinism must come from the seed,
			// not from shared generator state.
			r := rand.New(rand.NewSource(int64(1000 + trial)))
			g := graph.Random(r, 6+trial, 0.4, graph.UniformLabels(a.OT.F.Size()))
			origins := map[int]value.V{0: value.Pair{A: 0, B: 4}, g.N - 1: value.Pair{A: 4, B: 1}}
			eng, err := exec.New(a.OT, mode, value.Pair{A: 0, B: 4}, value.Pair{A: 4, B: 1})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := BuildEngine(eng, g, origins)
			if err != nil {
				t.Fatal(err)
			}
			return rb, g
		}
		r1, g1 := build(exec.ModeDynamic)
		r2, _ := build(exec.ModeDynamic)
		r3, _ := build(exec.ModeCompiled)
		for _, dest := range []int{0, g1.N - 1} {
			for u := 0; u < g1.N; u++ {
				w1, w2, w3 := r1.ECMPWidth(u, dest), r2.ECMPWidth(u, dest), r3.ECMPWidth(u, dest)
				if w1 != w2 || w1 != w3 {
					t.Fatalf("trial %d: ECMPWidth(%d,%d) differs across builds: %d %d %d", trial, u, dest, w1, w2, w3)
				}
				p1, e1 := r1.Forward(u, dest)
				p2, e2 := r2.Forward(u, dest)
				p3, e3 := r3.Forward(u, dest)
				if (e1 == nil) != (e2 == nil) || (e1 == nil) != (e3 == nil) {
					t.Fatalf("trial %d: Forward(%d,%d) errors differ: %v %v %v", trial, u, dest, e1, e2, e3)
				}
				if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(p1, p3) {
					t.Fatalf("trial %d: Forward(%d,%d) paths differ: %v %v %v", trial, u, dest, p1, p2, p3)
				}
			}
		}
	}
}
