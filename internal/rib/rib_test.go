package rib

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

func TestBuildAndLookup(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(1))
	g := graph.Random(r, 8, 0.3, graph.UniformLabels(3))
	rib, err := Build(a, g, map[int]value.V{0: 0, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rib.Destinations()) != 2 {
		t.Fatalf("destinations = %v", rib.Destinations())
	}
	for _, dest := range []int{0, 3} {
		// Every entry must match a fresh solver run.
		res := solve.BellmanFord(a, g, dest, 0, 0)
		for u := 0; u < g.N; u++ {
			e := rib.Lookup(u, dest)
			if (e != nil) != res.Routed[u] {
				t.Fatalf("dest %d node %d: routedness differs", dest, u)
			}
			if e != nil && e.Weight != res.Weights[u] {
				t.Fatalf("dest %d node %d: weight %v vs %v", dest, u, e.Weight, res.Weights[u])
			}
		}
	}
	if rib.Lookup(0, 5) != nil {
		t.Fatal("unknown destination must miss")
	}
}

func TestForwardPaths(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(2))
	g := graph.Random(r, 9, 0.3, graph.UniformLabels(3))
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		p, err := rib.Forward(u, 0)
		if err != nil {
			t.Fatalf("node %d: %v", u, err)
		}
		if p[0] != u || p[len(p)-1] != 0 {
			t.Fatalf("node %d: path %v malformed", u, p)
		}
	}
	if _, err := rib.Forward(0, 7); err == nil {
		t.Fatal("unknown destination must fail")
	}
}

func TestECMP(t *testing.T) {
	a := alg(t, "hops(16)")
	// Two equal-length routes from 3: via 1 and via 2.
	g := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 0, Label: 0},
		{From: 3, To: 1, Label: 0},
		{From: 3, To: 2, Label: 0},
	})
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if w := rib.ECMPWidth(3, 0); w != 2 {
		t.Fatalf("node 3 ECMP width = %d, want 2", w)
	}
	if w := rib.ECMPWidth(1, 0); w != 1 {
		t.Fatalf("node 1 ECMP width = %d, want 1", w)
	}
	e := rib.Lookup(3, 0)
	seen := map[int]bool{}
	for _, nh := range e.NextHops {
		seen[nh] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("ECMP set = %v, want {1,2}", e.NextHops)
	}
}

func TestBuildRejectsBadDestination(t *testing.T) {
	a := alg(t, "delay(8,1)")
	g := graph.MustNew(2, []graph.Arc{{From: 1, To: 0, Label: 0}})
	if _, err := Build(a, g, map[int]value.V{7: 0}); err == nil {
		t.Fatal("out-of-range destination must fail")
	}
}

func TestBuildReportsNonConvergence(t *testing.T) {
	a := alg(t, "gadget")
	g, _ := graph.BadGadgetArcs()
	// The synchronous iteration on the gadget may or may not stabilize
	// within budget depending on tie-breaking; if it reports
	// non-convergence the error must name the destination.
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err == nil {
		// Converged: fine — the sync schedule found a stable point.
		if rib.Lookup(0, 0) == nil {
			t.Fatal("destination entry missing")
		}
		return
	}
	if rib == nil {
		t.Fatal("best-effort table must still be returned")
	}
}

func TestUnroutedNodeForwardFails(t *testing.T) {
	a := alg(t, "delay(8,1)")
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 0}}) // node 2 isolated
	rib, err := Build(a, g, map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rib.Forward(2, 0); err == nil {
		t.Fatal("isolated node must fail to forward")
	}
	if rib.ECMPWidth(2, 0) != 0 {
		t.Fatal("unrouted ECMP width must be 0")
	}
}
