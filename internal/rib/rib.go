// Package rib assembles per-destination solver results into a routing
// information base: the table a router would actually hold, with weight
// lookup, next-hop sets (equal-cost multipath over order-equivalent
// routes), and forwarding-path resolution with loop detection.
package rib

import (
	"fmt"
	"sort"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// Entry is one node's route toward one destination.
type Entry struct {
	// Weight is the selected route's weight.
	Weight value.V
	// NextHops lists every neighbour offering an order-equivalent best
	// weight (ECMP set); NextHops[0] is the solver's primary choice.
	NextHops []int
}

// RIB holds routes from every node to every requested destination.
// Internally the table is arena-flat — one *Column per destination —
// and the historical *Entry surface (Lookup) materializes views on
// demand; hot paths (Forward, ECMPWidth) read slots directly.
type RIB struct {
	eng exec.Algebra
	g   *graph.Graph
	// cols[dest] is the destination's arena column (flat or paged).
	cols map[int]Col
}

// Build computes a RIB for the given destinations and their originated
// weights, using the synchronous fixpoint solver (correct for monotone
// algebras; a converged fixpoint is a stable routing for increasing
// ones). The execution backend is chosen by exec.For over all origin
// weights; use BuildEngine to pin one. Destinations whose solver run
// does not converge are reported in the error but present (best-effort)
// in the table.
func Build(alg *ost.OrderTransform, g *graph.Graph, origins map[int]value.V) (*RIB, error) {
	vs := make([]value.V, 0, len(origins))
	for _, v := range origins {
		vs = append(vs, v)
	}
	return BuildEngine(exec.For(alg, vs...), g, origins)
}

// BuildEngine is Build over an explicit execution engine. Columns are
// built arena-form straight from the solver's index-form state.
func BuildEngine(eng exec.Algebra, g *graph.Graph, origins map[int]value.V) (*RIB, error) {
	r := &RIB{eng: eng, g: g, cols: make(map[int]Col, len(origins))}
	var unconverged []int
	ws := solve.NewWorkspace()
	for dest, origin := range origins {
		col, err := BuildDestColumn(eng, g, dest, origin, ws)
		if err != nil {
			return nil, err
		}
		if !col.Converged {
			unconverged = append(unconverged, dest)
		}
		r.cols[dest] = col
	}
	if len(unconverged) > 0 {
		return r, fmt.Errorf("rib: fixpoint did not converge for destinations %v", unconverged)
	}
	return r, nil
}

// BuildDestEngine computes the entry column for a single destination —
// the per-destination unit of work the serve snapshot builder shards
// across its worker pool. ws supplies reusable solver buffers and may be
// nil. The returned entries are freshly allocated and safe to share
// read-only across snapshots.
func BuildDestEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, ws *solve.Workspace) ([]*Entry, bool, error) {
	if dest < 0 || dest >= g.N {
		return nil, false, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	res := ws.BellmanFord(eng, g, dest, origin, 0)
	return entriesFromResult(eng, g, res), res.Converged, nil
}

// entriesFromResult builds a full entry column from a solver result.
func entriesFromResult(eng exec.Algebra, g *graph.Graph, res *solve.Result) []*Entry {
	entries := make([]*Entry, g.N)
	for u := 0; u < g.N; u++ {
		entries[u] = entryFromResult(eng, g, res, u)
	}
	return entries
}

// entryFromResult builds node u's entry toward res.Dest (nil when
// unrouted): the selected weight plus the ECMP set of every neighbour
// offering an order-equivalent best weight, primary first.
func entryFromResult(eng exec.Algebra, g *graph.Graph, res *solve.Result, u int) *Entry {
	if !res.Routed[u] {
		return nil
	}
	e := &Entry{Weight: res.Weights[u]}
	if u == res.Dest {
		return e
	}
	e.NextHops = append(e.NextHops, res.NextHop[u])
	// ECMP: any other neighbour offering an equivalent weight. The
	// solver produced these weights, so they re-intern for free.
	best := exec.MustIntern(eng, res.Weights[u])
	for _, ai := range g.Out(u) {
		v := g.Arcs[ai].To
		if v == res.NextHop[u] || !res.Routed[v] {
			continue
		}
		cand := eng.Apply(g.Arcs[ai].Label, exec.MustIntern(eng, res.Weights[v]))
		if eng.Equiv(cand, best) {
			e.NextHops = append(e.NextHops, v)
		}
	}
	return e
}

// DeltaLicensed reports whether an algebra's inferred properties license
// warm-start delta reconvergence: monotonicity (M) makes every fixpoint
// reached from realisable warm-start values path-optimal, and
// increasingness (I) gives the unique-fixpoint reconvergence guarantee
// of Daggitt & Griffin for policy-rich algebras. Only properties the
// checker established as True count — Unknown or False means the serve
// layer falls back to from-scratch rebuilds.
func DeltaLicensed(t *ost.OrderTransform) bool {
	return DeltaLicensedSet(t.Props)
}

// DeltaLicensedSet is DeltaLicensed over a bare property set — the form
// callers holding a core inference result (whose derived judgements live
// on the Algebra node, not the order transform) use to gate the serve
// layer's warm-start path.
func DeltaLicensedSet(p prop.Set) bool {
	return p.Holds(prop.MLeft) || p.Holds(prop.ILeft)
}

// DeltaDestEngine recomputes the entry column for a single destination
// after the given arc toggles, warm-starting from the previous column
// prev (which the caller asserts came from a converged build of the
// same destination and origin on the pre-toggle graph). g must be the
// post-toggle view and disabled the post-toggle mask. When the delta
// drain runs, only entries of touched nodes and toggle tails are
// rebuilt; every other node shares its previous *Entry pointer, which
// is sound because an untouched node kept its own state, its entire
// out-neighbourhood's state, and its enabled arc set. On any fallback
// (unusable warm start, oversized frontier, budget exhaustion) the
// column is rebuilt from scratch; either way the returned column is
// bit-identical to BuildDestEngine on g.
func DeltaDestEngine(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, origin value.V, ws *solve.Workspace, prev []*Entry, toggles []solve.ArcToggle) ([]*Entry, bool, solve.DeltaStats, error) {
	if dest < 0 || dest >= g.N {
		return nil, false, solve.DeltaStats{}, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	if len(prev) != g.N || prev[dest] == nil {
		entries, converged, err := BuildDestEngine(eng, g, dest, origin, ws)
		return entries, converged, solve.DeltaStats{}, err
	}
	prevRes := &solve.Result{
		Dest:      dest,
		Routed:    make([]bool, g.N),
		Weights:   make([]value.V, g.N),
		NextHop:   make([]int, g.N),
		Converged: true,
	}
	for u, e := range prev {
		prevRes.NextHop[u] = -1
		if e == nil {
			continue
		}
		prevRes.Routed[u] = true
		prevRes.Weights[u] = e.Weight
		if u != dest {
			prevRes.NextHop[u] = e.NextHops[0]
		}
	}
	res, st := ws.BellmanFordDelta(eng, g, disabled, dest, origin, prevRes, toggles, 0)
	if !st.UsedDelta {
		return entriesFromResult(eng, g, res), res.Converged, st, nil
	}
	entries := append([]*Entry(nil), prev...)
	for _, u := range st.Touched {
		entries[u] = entryFromResult(eng, g, res, u)
	}
	// Toggle tails outside the touched set: their weight fixpoint did
	// not move, but a raised arc can add — and a downed non-primary arc
	// can remove — an equal-cost member of their ECMP set.
	for _, t := range toggles {
		x := g.Arcs[t.Arc].From
		if x == dest || containsSorted(st.Touched, x) {
			continue
		}
		entries[x] = entryFromResult(eng, g, res, x)
	}
	return entries, true, st, nil
}

// containsSorted reports membership in an ascending int slice.
func containsSorted(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}

// FromColumns assembles a RIB from per-destination flat arena columns
// computed elsewhere. The columns are adopted, not copied; callers must
// treat them as immutable afterwards.
func FromColumns(eng exec.Algebra, g *graph.Graph, cols map[int]*Column) *RIB {
	cs := make(map[int]Col, len(cols))
	for d, c := range cols {
		cs[d] = c
	}
	return &RIB{eng: eng, g: g, cols: cs}
}

// FromCols assembles a RIB from per-destination columns in either
// layout (the serve snapshot builder's constructor — its column map is
// interface-typed so paged and flat snapshots share one publish path).
// The columns are adopted, not copied.
func FromCols(eng exec.Algebra, g *graph.Graph, cols map[int]Col) *RIB {
	return &RIB{eng: eng, g: g, cols: cols}
}

// FromEntries assembles a RIB from legacy pointer columns, converting
// them to arena form (the compatibility constructor; new code should
// use FromColumns). Entry weights must intern on eng — true for every
// solver-produced column — or FromEntries panics.
func FromEntries(eng exec.Algebra, g *graph.Graph, table map[int][]*Entry) *RIB {
	cols := make(map[int]Col, len(table))
	for dest, entries := range table {
		col, err := ColumnFromEntries(eng, dest, entries, true)
		if err != nil {
			panic(fmt.Sprintf("rib: FromEntries: %v", err))
		}
		cols[dest] = col
	}
	return &RIB{eng: eng, g: g, cols: cols}
}

// Column returns dest's arena column (nil when unknown).
func (r *RIB) Column(dest int) Col {
	c, ok := r.cols[dest]
	if !ok {
		return nil
	}
	return c
}

// Engine exposes the execution engine the RIB was built on.
func (r *RIB) Engine() exec.Algebra { return r.eng }

// Destinations lists the destinations the RIB covers.
func (r *RIB) Destinations() []int {
	out := make([]int, 0, len(r.cols))
	for d := range r.cols {
		out = append(out, d)
	}
	return out
}

// Lookup returns node's entry toward dest (nil if unrouted or unknown
// destination). The entry is materialized from the arena column on
// each call; index-form readers should use Column instead.
func (r *RIB) Lookup(node, dest int) *Entry {
	c, ok := r.cols[dest]
	if !ok {
		return nil
	}
	return c.Entry(r.eng, node)
}

// Forward resolves the forwarding path from a node to dest following
// primary next hops; it fails on missing routes and forwarding loops.
func (r *RIB) Forward(from, dest int) (graph.Path, error) {
	c, ok := r.cols[dest]
	if !ok {
		return nil, fmt.Errorf("rib: unknown destination %d", dest)
	}
	return c.Forward(from)
}

// ECMPWidth returns the number of equal-cost next hops at node toward
// dest (0 when unrouted).
func (r *RIB) ECMPWidth(node, dest int) int {
	c, ok := r.cols[dest]
	if !ok {
		return 0
	}
	return len(c.NextHops(node))
}
