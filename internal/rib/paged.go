package rib

import (
	"fmt"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// This file holds the paged copy-on-write route column: the O(frontier)
// replacement for rebuilding a flat Column on every delta swap. Slots
// and their ECMP pool live in fixed-size pages behind a small page
// table; a delta rebuild clones only the pages containing touched slots
// or toggle tails and shares every other page by pointer with the
// previous snapshot, so a 4-node frontier on a 100k-node column copies
// a handful of kilobytes instead of megabytes.
//
// The copy-on-write ownership rule: a published page is immutable.
// Builders mutate only pages they freshly allocated within the current
// rebuild; once a PagedColumn is handed to a snapshot, every page in it
// is frozen and may be aliased by any number of later columns. Sharing
// is sound because page content is a pure function of its own nodes'
// routes: each page carries its own pool with page-relative offsets,
// slots are laid ascending and spans appended in slot order (the same
// canonical layout the flat builder uses globally), so two columns
// agreeing on a page's routes agree on the page's bytes — and Flatten
// (concatenating pages in order, rebasing offsets) reproduces the flat
// BuildDestColumn layout bit-identically.

// PageShift sets the page size: 1<<PageShift slots per page. 64 slots
// (1 KiB of EntrySlots plus the page's ECMP pool) keeps the
// cloned-fraction of scattered small frontiers low at 100k nodes
// (~1.6k pages) while the page-table copy per delta stays a few KiB.
const PageShift = 6

// PageSize is the number of slots per page; PageMask extracts the
// in-page slot index.
const (
	PageSize = 1 << PageShift
	PageMask = PageSize - 1
)

// ColumnPage is one fixed-size run of PageSize consecutive nodes'
// slots, with its own next-hop pool. Slot NhOff values are
// page-relative. The trailing slots of the last page (beyond the node
// count) stay zero.
type ColumnPage struct {
	Slots [PageSize]EntrySlot
	Pool  []int32
	// Live counts routed slots in this page, so column-level stats are
	// O(pages) instead of a full slot scan.
	Live int32
}

// bytes is the page's arena footprint (slot array + pool backing).
func (p *ColumnPage) bytes() int {
	return PageSize*entrySlotBytes + len(p.Pool)*4
}

// PagedColumn is one destination's route column in paged
// copy-on-write form. It implements Col; readers address slots through
// the page table, writers exist only inside BuildDestPaged and
// DeltaDestPaged.
type PagedColumn struct {
	// Dest is the destination node anchoring the column; N the node
	// count (len(Pages) == ceil(N/PageSize)).
	Dest int
	N    int
	// Converged and Clean mirror Column.
	Converged bool
	Clean     bool
	// Pages is the page table. Pages may be shared by pointer with
	// other columns; see the ownership rule above.
	Pages []*ColumnPage

	// arenaBytes/live cache the column-wide footprint and routed-slot
	// totals at construction (a delta rebuild adjusts the previous
	// column's totals by its cloned pages only), so the per-swap
	// snapshot stats stay O(1) per column instead of O(pages).
	arenaBytes int
	live       int
}

// PageStats reports a paged delta rebuild's copy-on-write outcome.
type PageStats struct {
	// Cloned counts pages rebuilt for this column; Shared counts pages
	// aliased from the previous column.
	Cloned, Shared int
	// DirtyPages lists the cloned page indices, ascending. The slice is
	// freshly allocated (it outlives the workspace scratch) — the serve
	// layer turns it straight into replication wire-patch hints.
	DirtyPages []int32
}

// numPages returns the page count covering n nodes.
func numPages(n int) int { return (n + PageSize - 1) >> PageShift }

// DestNode, NumNodes, IsConverged and IsClean adapt to Col.
func (c *PagedColumn) DestNode() int     { return c.Dest }
func (c *PagedColumn) NumNodes() int     { return c.N }
func (c *PagedColumn) IsConverged() bool { return c.Converged }
func (c *PagedColumn) IsClean() bool     { return c.Clean }

// Route returns node u's selected weight index (ok=false when unrouted
// or out of range).
func (c *PagedColumn) Route(u int) (int32, bool) {
	if u < 0 || u >= c.N {
		return 0, false
	}
	s := &c.Pages[u>>PageShift].Slots[u&PageMask]
	if !s.Routed {
		return 0, false
	}
	return s.W, true
}

// NextHops returns node u's ECMP next-hop view (aliasing the page pool;
// read-only, primary first). Nil when unrouted or at the destination.
func (c *PagedColumn) NextHops(u int) []int32 {
	if u < 0 || u >= c.N {
		return nil
	}
	p := c.Pages[u>>PageShift]
	s := p.Slots[u&PageMask]
	if !s.Routed || s.NhLen == 0 {
		return nil
	}
	return p.Pool[s.NhOff : s.NhOff+s.NhLen : s.NhOff+s.NhLen]
}

// AppendNextHops appends node u's ECMP span to dst — the batched query
// plane's copy-out entry point, allocation-free past dst's capacity.
func (c *PagedColumn) AppendNextHops(dst []int32, u int) []int32 {
	if u < 0 || u >= c.N {
		return dst
	}
	p := c.Pages[u>>PageShift]
	s := p.Slots[u&PageMask]
	if !s.Routed {
		return dst
	}
	return append(dst, p.Pool[s.NhOff:s.NhOff+s.NhLen]...)
}

// Forward resolves the forwarding path from a node to the column's
// destination following primary next hops; it fails on missing routes
// and forwarding loops, mirroring Column.Forward.
func (c *PagedColumn) Forward(from int) (graph.Path, error) {
	if from < 0 || from >= c.N {
		return nil, fmt.Errorf("rib: node %d out of range [0,%d)", from, c.N)
	}
	var path graph.Path
	seen := make([]bool, c.N)
	u := from
	for {
		p := c.Pages[u>>PageShift]
		s := p.Slots[u&PageMask]
		if !s.Routed {
			return nil, fmt.Errorf("rib: node %d has no route to %d", u, c.Dest)
		}
		if seen[u] {
			return nil, fmt.Errorf("rib: forwarding loop at node %d toward %d", u, c.Dest)
		}
		seen[u] = true
		path = append(path, u)
		if u == c.Dest {
			return path, nil
		}
		u = int(p.Pool[s.NhOff])
	}
}

// Entry materializes node u's legacy *Entry view (nil when unrouted).
func (c *PagedColumn) Entry(eng exec.Algebra, u int) *Entry {
	w, ok := c.Route(u)
	if !ok {
		return nil
	}
	e := &Entry{Weight: eng.Value(w)}
	for _, v := range c.NextHops(u) {
		e.NextHops = append(e.NextHops, int(v))
	}
	return e
}

// Bytes returns the column's arena footprint, cached at construction.
// Shared pages are counted in full — this reports the bytes a reader
// can reach, not the marginal cost of this generation.
func (c *PagedColumn) Bytes() int { return c.arenaBytes }

// Live returns the number of routed slots, cached at construction.
func (c *PagedColumn) Live() int { return c.live }

// resum recomputes the cached totals with one pass over the page table
// — the scratch-build path; delta rebuilds adjust incrementally.
func (c *PagedColumn) resum() {
	c.arenaBytes, c.live = 0, 0
	for _, p := range c.Pages {
		c.arenaBytes += p.bytes()
		c.live += int(p.Live)
	}
}

// Flatten re-lays the column into flat arena form: pages concatenated
// in order with pool offsets rebased. Because both layouts use the same
// canonical order (slots ascending, spans appended in slot order), the
// result is bit-identical to BuildDestColumn on the same routes — the
// replication encoder and checksums consume this form.
func (c *PagedColumn) Flatten() *Column {
	poolLen := 0
	for _, p := range c.Pages {
		poolLen += len(p.Pool)
	}
	f := &Column{
		Dest:      c.Dest,
		Converged: c.Converged,
		Clean:     c.Clean,
		Slots:     make([]EntrySlot, c.N),
		Pool:      make([]int32, 0, poolLen),
	}
	for pi, p := range c.Pages {
		base := pi << PageShift
		lim := PageSize
		if base+lim > c.N {
			lim = c.N - base
		}
		off := int32(len(f.Pool))
		for i := 0; i < lim; i++ {
			s := p.Slots[i]
			if s.Routed {
				s.NhOff += off
				f.live++
			}
			f.Slots[base+i] = s
		}
		f.Pool = append(f.Pool, p.Pool...)
	}
	f.liveOK = true
	return f
}

// fillPage rebuilds one page of a paged column from index-form solver
// state: slots ascending, each routed non-destination slot's ECMP span
// appended through the shared appendNextHopSet scan. redo, when
// non-nil, restricts refills to marked nodes and transplants every
// other slot (with its span) from the same page of prev — the
// copy-on-write delta path, where solver state is only valid at marked
// nodes.
func fillPage(eng exec.Algebra, g *graph.Graph, raw solve.Raw, dest, pi int, prev *ColumnPage, redo *solve.Workspace) *ColumnPage {
	np := &ColumnPage{}
	base := pi << PageShift
	lim := PageSize
	if base+lim > g.N {
		lim = g.N - base
	}
	if prev != nil {
		np.Pool = make([]int32, 0, len(prev.Pool)+4)
	} else {
		np.Pool = make([]int32, 0, lim+4)
	}
	for i := 0; i < lim; i++ {
		u := base + i
		if redo != nil && !redo.Marked(u) {
			s := prev.Slots[i]
			if !s.Routed {
				continue
			}
			ns := EntrySlot{W: s.W, Routed: true, NhOff: int32(len(np.Pool)), NhLen: s.NhLen}
			np.Pool = append(np.Pool, prev.Pool[s.NhOff:s.NhOff+s.NhLen]...)
			np.Slots[i] = ns
			np.Live++
			continue
		}
		if !raw.Routed[u] {
			continue
		}
		s := EntrySlot{W: raw.W[u], Routed: true, NhOff: int32(len(np.Pool))}
		if u != dest {
			np.Pool = appendNextHopSet(eng, g, raw.Routed, raw.W, raw.NextHop, u, np.Pool)
		}
		s.NhLen = int32(len(np.Pool)) - s.NhOff
		np.Slots[i] = s
		np.Live++
	}
	return np
}

// pagesFromRaw builds a full page table from scratch solver state.
func pagesFromRaw(eng exec.Algebra, g *graph.Graph, raw solve.Raw, dest int) []*ColumnPage {
	pages := make([]*ColumnPage, numPages(g.N))
	for pi := range pages {
		pages[pi] = fillPage(eng, g, raw, dest, pi, nil, nil)
	}
	return pages
}

// BuildDestPaged computes the paged column for a single destination —
// the paged counterpart of BuildDestColumn, sharing its solver run and
// ECMP scan.
func BuildDestPaged(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, ws *solve.Workspace) (*PagedColumn, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	raw := ws.BellmanFordRaw(eng, g, dest, origin, 0)
	c := &PagedColumn{Dest: dest, N: g.N, Converged: raw.Converged}
	c.Clean = raw.Converged && ws.VerifyForwardTree(raw)
	c.Pages = pagesFromRaw(eng, g, raw, dest)
	c.resum()
	return c, nil
}

// DeltaDestPaged recomputes the paged column for a single destination
// after the given arc toggles, warm-starting from prev — the
// copy-on-write counterpart of DeltaDestColumn. When the delta drain
// runs, only pages containing touched nodes or toggle tails are
// rebuilt; every other page is shared with prev by pointer, so the
// swap's data-plane cost is O(frontier), not O(N). On any fallback the
// column is rebuilt from scratch (every page cloned). Either way the
// result flattens bit-identically to BuildDestColumn on g.
func DeltaDestPaged(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, origin value.V, ws *solve.Workspace, prev *PagedColumn, toggles []solve.ArcToggle) (*PagedColumn, solve.DeltaStats, PageStats, error) {
	if dest < 0 || dest >= g.N {
		return nil, solve.DeltaStats{}, PageStats{}, fmt.Errorf("rib: destination %d out of range", dest)
	}
	if ws == nil {
		ws = solve.NewWorkspace()
	}
	if prev == nil || prev.N != g.N || !prev.Converged {
		col, err := BuildDestPaged(eng, g, dest, origin, ws)
		if err != nil {
			return nil, solve.DeltaStats{}, PageStats{}, err
		}
		return col, solve.DeltaStats{}, PageStats{Cloned: len(col.Pages)}, nil
	}
	if _, ok := prev.Route(dest); !ok {
		col, err := BuildDestPaged(eng, g, dest, origin, ws)
		if err != nil {
			return nil, solve.DeltaStats{}, PageStats{}, err
		}
		return col, solve.DeltaStats{}, PageStats{Cloned: len(col.Pages)}, nil
	}
	warm := func(u int) (bool, int32, int) {
		p := prev.Pages[u>>PageShift]
		s := p.Slots[u&PageMask]
		if !s.Routed {
			return false, 0, -1
		}
		if u == dest {
			return true, s.W, -1
		}
		return true, s.W, int(p.Pool[s.NhOff])
	}
	raw, st := ws.BellmanFordDeltaRaw(eng, g, disabled, dest, origin, warm, prev.Clean, toggles, 0)
	c := &PagedColumn{Dest: dest, N: g.N, Converged: raw.Converged, Clean: st.Clean}
	if !st.UsedDelta {
		c.Pages = pagesFromRaw(eng, g, raw, dest)
		c.resum()
		return c, st, PageStats{Cloned: len(c.Pages)}, nil
	}
	// Copy-on-write delta: mark the redo set, derive the dirty page
	// set, alias every clean page and rebuild only the dirty ones.
	markRedo(ws, g, st.Touched, toggles, dest)
	dirty := make([]int32, 0, len(st.Touched)+len(toggles))
	last := int32(-1)
	for _, u := range st.Touched { // ascending, so dedup is a compare
		if pi := int32(u >> PageShift); pi != last {
			dirty = append(dirty, pi)
			last = pi
		}
	}
	for _, t := range toggles { // tails arrive unsorted; insert-dedup
		x := g.Arcs[t.Arc].From
		if x == dest {
			continue
		}
		dirty = insertPage(dirty, int32(x>>PageShift))
	}
	c.Pages = append([]*ColumnPage(nil), prev.Pages...)
	c.arenaBytes, c.live = prev.arenaBytes, prev.live
	for _, pi := range dirty {
		old := c.Pages[pi]
		np := fillPage(eng, g, raw, dest, int(pi), old, ws)
		c.Pages[pi] = np
		c.arenaBytes += np.bytes() - old.bytes()
		c.live += int(np.Live - old.Live)
	}
	ps := PageStats{Cloned: len(dirty), Shared: len(c.Pages) - len(dirty), DirtyPages: dirty}
	return c, st, ps, nil
}

// insertPage inserts pi into an ascending page-index slice unless
// already present (the slice is a few entries long — linear is fine).
func insertPage(dirty []int32, pi int32) []int32 {
	at := len(dirty)
	for i, d := range dirty {
		if d == pi {
			return dirty
		}
		if d > pi {
			at = i
			break
		}
	}
	dirty = append(dirty, 0)
	copy(dirty[at+1:], dirty[at:])
	dirty[at] = pi
	return dirty
}
