package rib

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/solve"
)

// TestPagedDifferential is the paged-vs-flat acceptance differential:
// across random algebras × GNP/ring/grid × both engine backends, a
// delta toggle chain driven through DeltaDestPaged must flatten
// bit-identically to the flat DeltaDestColumn result (itself pinned to
// from-scratch builds by TestDeltaColumnDifferential) at every step —
// slots, pools, convergence and the clean certificate. CI runs the
// package under -race, which also guards the aliased shared pages.
func TestPagedDifferential(t *testing.T) {
	for _, src := range []string{"delay(16,3)", "lex(delay(8,2), hops(8))"} {
		a := alg(t, src)
		for backend, eng := range engines(t, a) {
			r := rand.New(rand.NewSource(23))
			graphs := map[string]*graph.Graph{
				"gnp":  graph.Random(r, 14, 0.3, graph.UniformLabels(a.F.Size())),
				"ring": graph.Ring(r, 12, graph.UniformLabels(a.F.Size())),
				"grid": graph.Grid(r, 3, 4, graph.UniformLabels(a.F.Size())),
			}
			for shape, g := range graphs {
				ws := solve.NewWorkspace()
				disabled := make([]bool, len(g.Arcs))
				org := originFor(a)
				prevFlat, err := BuildDestColumn(eng, g.MaskArcs(disabled), 0, org, ws)
				if err != nil {
					t.Fatal(err)
				}
				prevPaged, err := BuildDestPaged(eng, g.MaskArcs(disabled), 0, org, ws)
				if err != nil {
					t.Fatal(err)
				}
				sharedPages := false
				for step := 0; step < 10; step++ {
					ai := r.Intn(len(g.Arcs))
					disabled[ai] = !disabled[ai]
					view := g.MaskArcs(disabled)
					toggles := []solve.ArcToggle{{Arc: ai, Down: disabled[ai]}}
					tag := fmt.Sprintf("%s/%s/%s step %d", src, backend, shape, step)

					flat, _, err := DeltaDestColumn(eng, view, disabled, 0, org, ws, prevFlat, toggles)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					paged, _, ps, err := DeltaDestPaged(eng, view, disabled, 0, org, ws, prevPaged, toggles)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					if ps.Shared > 0 {
						sharedPages = true
						// Shared pages must be aliases of the previous
						// generation, never copies.
						aliased := 0
						for pi, p := range paged.Pages {
							if prevPaged.Pages[pi] == p {
								aliased++
							}
						}
						if aliased != ps.Shared {
							t.Fatalf("%s: PageStats says %d shared, %d pages actually aliased", tag, ps.Shared, aliased)
						}
					}
					if got := paged.Flatten(); !reflect.DeepEqual(got, flat) {
						t.Fatalf("%s: flattened paged column differs from flat delta column\n got %+v\nwant %+v", tag, got, flat)
					}
					prevFlat, prevPaged = flat, paged
				}
				if !sharedPages && g.N > PageSize {
					t.Fatalf("%s/%s/%s: copy-on-write never shared a page", src, backend, shape)
				}
			}
		}
	}
}

// boundaryGraph builds a 70-node topology (pages 0 and 1 of a paged
// column) where every non-hub node reaches dest 0 through two
// equal-cost hubs — an ECMP span on both sides of the 64-slot page
// boundary.
func boundaryGraph(t *testing.T) *graph.Graph {
	t.Helper()
	arcs := []graph.Arc{{From: 1, To: 0, Label: 0}, {From: 2, To: 0, Label: 0}}
	for u := 3; u < 70; u++ {
		arcs = append(arcs, graph.Arc{From: u, To: 1, Label: 0}, graph.Arc{From: u, To: 2, Label: 0})
	}
	g, err := graph.New(70, arcs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPageBoundaryECMPSpans pins the page-local pool invariant: a
// node's ECMP span lives wholly inside its own page's pool, including
// for the nodes straddling the 64-slot page boundary, and a delta that
// only touches page 1 leaves page 0 aliased.
func TestPageBoundaryECMPSpans(t *testing.T) {
	a := alg(t, "delay(8,2)")
	eng := exec.NewDynamic(a)
	g := boundaryGraph(t)
	ws := solve.NewWorkspace()
	org := originFor(a)

	col, err := BuildDestPaged(eng, g, 0, org, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Pages) != 2 {
		t.Fatalf("70 nodes laid out over %d pages, want 2", len(col.Pages))
	}
	for _, u := range []int{62, 63, 64, 65} {
		nh := col.NextHops(u)
		if len(nh) != 2 {
			t.Fatalf("node %d: ECMP %v, want both hubs", u, nh)
		}
		p := col.Pages[u>>PageShift]
		s := p.Slots[u&PageMask]
		if int(s.NhOff+s.NhLen) > len(p.Pool) {
			t.Fatalf("node %d: span [%d,%d) escapes its page pool (len %d)", u, s.NhOff, s.NhOff+s.NhLen, len(p.Pool))
		}
	}
	flat, err := BuildDestColumn(eng, g, 0, org, ws)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Flatten(); !reflect.DeepEqual(got, flat) {
		t.Fatalf("boundary column flattens unequal to flat build\n got %+v\nwant %+v", got, flat)
	}

	// Fail one of node 64's hub arcs: the frontier is {64}, wholly in
	// page 1, so page 0 must ride along by pointer.
	ai := -1
	for i, arc := range g.Arcs {
		if arc.From == 64 && arc.To == 1 {
			ai = i
		}
	}
	if ai < 0 {
		t.Fatal("arc 64→1 not found")
	}
	disabled := make([]bool, len(g.Arcs))
	disabled[ai] = true
	view := g.WithArcToggled(ai, disabled)
	toggles := []solve.ArcToggle{{Arc: ai, Down: true}}
	next, st, ps, err := DeltaDestPaged(eng, view, disabled, 0, org, ws, col, toggles)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedDelta {
		t.Fatal("single-arc toggle fell back to a scratch rebuild")
	}
	if len(ps.DirtyPages) != 1 || ps.DirtyPages[0] != 1 {
		t.Fatalf("dirty pages = %v, want [1]", ps.DirtyPages)
	}
	if next.Pages[0] != col.Pages[0] {
		t.Fatal("untouched page 0 was cloned, not shared")
	}
	if next.Pages[1] == col.Pages[1] {
		t.Fatal("touched page 1 was shared, not cloned")
	}
	if nh := next.NextHops(64); len(nh) != 1 || nh[0] != 2 {
		t.Fatalf("node 64 after hub loss: ECMP %v, want [2]", nh)
	}
	scratch, err := BuildDestColumn(eng, view, 0, org, solve.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Flatten(); !reflect.DeepEqual(got, scratch) {
		t.Fatalf("post-delta boundary column flattens unequal to scratch build\n got %+v\nwant %+v", got, scratch)
	}
}

// TestDeltaColumnAllocs pins the flat delta rebuild's allocation count:
// the epoch-stamped redo bitmap replaced the per-call map, so a warm
// rebuild allocates only the column header, slot arena and pool (plus
// solver slice growth) — a handful of objects regardless of node count
// or frontier shape.
func TestDeltaColumnAllocs(t *testing.T) {
	a := alg(t, "lex(delay(8,2), hops(8))")
	eng, err := exec.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(11)), 1024, 0.008, graph.UniformLabels(a.F.Size()))
	ws := solve.NewWorkspace()
	org := originFor(a)
	ai := 7
	disabledDown := make([]bool, len(g.Arcs))
	disabledDown[ai] = true
	disabledUp := make([]bool, len(g.Arcs))
	viewDown := g.WithArcToggled(ai, disabledDown)
	viewUp := g
	togDown := []solve.ArcToggle{{Arc: ai, Down: true}}
	togUp := []solve.ArcToggle{{Arc: ai, Down: false}}

	prev, err := BuildDestColumn(eng, g, 0, org, ws)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the workspace and verify the delta path actually engages.
	down, st, err := DeltaDestColumn(eng, viewDown, disabledDown, 0, org, ws, prev, togDown)
	if err != nil || !st.UsedDelta {
		t.Fatalf("down toggle: err=%v usedDelta=%v", err, st.UsedDelta)
	}
	up, st, err := DeltaDestColumn(eng, viewUp, disabledUp, 0, org, ws, down, togUp)
	if err != nil || !st.UsedDelta {
		t.Fatalf("up toggle: err=%v usedDelta=%v", err, st.UsedDelta)
	}
	prev = up

	allocs := testing.AllocsPerRun(20, func() {
		d, _, err := DeltaDestColumn(eng, viewDown, disabledDown, 0, org, ws, prev, togDown)
		if err != nil {
			t.Fatal(err)
		}
		u, _, err := DeltaDestColumn(eng, viewUp, disabledUp, 0, org, ws, d, togUp)
		if err != nil {
			t.Fatal(err)
		}
		prev = u
	})
	if allocs > 10 {
		t.Fatalf("flat delta rebuild pair allocates %.0f objects per run, want ≤ 10", allocs)
	}
}

// TestDeltaPagedAllocs pins the paged delta rebuild: beyond the flat
// guard's bound it must allocate only the column header, the page
// table copy, the dirty-page set and the cloned pages themselves —
// still a handful of objects at 1024 nodes, and (unlike the flat path)
// O(frontier) bytes.
func TestDeltaPagedAllocs(t *testing.T) {
	a := alg(t, "lex(delay(8,2), hops(8))")
	eng, err := exec.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(rand.New(rand.NewSource(11)), 1024, 0.008, graph.UniformLabels(a.F.Size()))
	ws := solve.NewWorkspace()
	org := originFor(a)
	ai := 7
	disabledDown := make([]bool, len(g.Arcs))
	disabledDown[ai] = true
	disabledUp := make([]bool, len(g.Arcs))
	viewDown := g.WithArcToggled(ai, disabledDown)
	viewUp := g
	togDown := []solve.ArcToggle{{Arc: ai, Down: true}}
	togUp := []solve.ArcToggle{{Arc: ai, Down: false}}

	prev, err := BuildDestPaged(eng, g, 0, org, ws)
	if err != nil {
		t.Fatal(err)
	}
	down, st, ps, err := DeltaDestPaged(eng, viewDown, disabledDown, 0, org, ws, prev, togDown)
	if err != nil || !st.UsedDelta {
		t.Fatalf("down toggle: err=%v usedDelta=%v", err, st.UsedDelta)
	}
	if ps.Shared == 0 {
		t.Fatal("down toggle shared no pages")
	}
	up, st, _, err := DeltaDestPaged(eng, viewUp, disabledUp, 0, org, ws, down, togUp)
	if err != nil || !st.UsedDelta {
		t.Fatalf("up toggle: err=%v usedDelta=%v", err, st.UsedDelta)
	}
	prev = up

	var maxCloned int
	allocs := testing.AllocsPerRun(20, func() {
		d, _, psD, err := DeltaDestPaged(eng, viewDown, disabledDown, 0, org, ws, prev, togDown)
		if err != nil {
			t.Fatal(err)
		}
		u, _, psU, err := DeltaDestPaged(eng, viewUp, disabledUp, 0, org, ws, d, togUp)
		if err != nil {
			t.Fatal(err)
		}
		if psD.Cloned > maxCloned {
			maxCloned = psD.Cloned
		}
		if psU.Cloned > maxCloned {
			maxCloned = psU.Cloned
		}
		prev = u
	})
	pages := numPages(g.N)
	if maxCloned >= pages/2 {
		t.Fatalf("steady-state single-arc delta cloned %d of %d pages", maxCloned, pages)
	}
	// Header + page-table copy + dirty set + (pool per cloned page),
	// twice per run. The bound leaves room for a scattered frontier but
	// catches any return to O(N) slot copies.
	if limit := float64(8 + 4*maxCloned); allocs > limit {
		t.Fatalf("paged delta rebuild pair allocates %.0f objects per run (max %d cloned pages), want ≤ %.0f", allocs, maxCloned, limit)
	}
}
