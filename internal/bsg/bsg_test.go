package bsg

import (
	"math/rand"
	"testing"

	"metarouting/internal/gen"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

func minPlus(cap int) *Bisemigroup {
	min := sg.New("min", value.Ints(0, cap), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	min.WithIdentity(cap)
	plus := sg.New("+sat", value.Ints(0, cap), func(a, b value.V) value.V {
		s := a.(int) + b.(int)
		if s > cap {
			s = cap
		}
		return s
	})
	return New("minplus", min, plus)
}

func TestMinPlusIsSemiring(t *testing.T) {
	st, w := minPlus(6).IsSemiring(nil, 0)
	if st != prop.True {
		t.Fatalf("min-plus must be a semiring: %s", w)
	}
}

func TestNonDistributiveDetected(t *testing.T) {
	// ⊕ = max, ⊗ = saturating add is still distributive; use ⊗ = a table
	// that breaks it: x⊗y = x (left projection) distributes... take
	// ⊗ = multiplication mod 4 with ⊕ = min: 3⊗min(2,3) vs min(3⊗2,3⊗3):
	// 3·2=6%4=2, 3·3=9%4=1 ⇒ lhs=3⊗2=2, rhs=min(2,1)=1: broken.
	min := sg.New("min", value.Ints(0, 3), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	mul := sg.New("×mod4", value.Ints(0, 3), func(a, b value.V) value.V {
		return a.(int) * b.(int) % 4
	})
	b := New("broken", min, mul)
	st, w := b.CheckM(true, nil, 0)
	if st != prop.False || w == "" {
		t.Fatalf("mod-multiplication over min must not distribute: %v %q", st, w)
	}
	if st, _ := b.IsSemiring(nil, 0); st != prop.False {
		t.Fatal("IsSemiring must fail")
	}
}

func TestLexDefinednessFollowsTheorem2(t *testing.T) {
	// First factor's ⊕ non-selective (bitwise AND) and second factor's ⊕
	// without identity ⇒ lex undefined.
	and := sg.New("and", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	noID := sg.New("max+1", value.Ints(0, 3), func(a, b value.V) value.V {
		m := a.(int)
		if b.(int) > m {
			m = b.(int)
		}
		if m < 3 {
			m++
		}
		return m
	})
	mul := sg.New("left", value.Ints(0, 3), func(a, b value.V) value.V { return a })
	s := New("S", and, mul)
	u := New("T", noID, mul)
	if _, err := Lex(s, u); err == nil {
		t.Fatal("lex with non-selective ⊕_S and identity-free ⊕_T must fail")
	}
	// Selective first factor fixes it.
	if _, err := Lex(minPlus(3), u); err != nil {
		t.Fatalf("selective first factor must make lex defined: %v", err)
	}
}

func randBSG(r *rand.Rand, n int) *Bisemigroup {
	add := gen.CISemigroup(r, n)
	mul := gen.AssocOp(r, add.Car.Size())
	return New("rnd", add, mul)
}

func propsOf(b *Bisemigroup) map[prop.ID]prop.Status {
	out := map[prop.ID]prop.Status{}
	st, _ := b.CheckM(true, nil, 0)
	out[prop.MLeft] = st
	st, _ = b.CheckN(true, nil, 0)
	out[prop.NLeft] = st
	st, _ = b.CheckC(true, nil, 0)
	out[prop.CLeft] = st
	st, _ = b.CheckND(true, nil, 0)
	out[prop.NDLeft] = st
	st, _ = b.CheckI(true, nil, 0)
	out[prop.ILeft] = st
	return out
}

// alphaAbsorbsMul reports whether ⊕'s identity α is ⊗-absorbing
// (c ⊗ α = α = α ⊗ c) — the optional semiring axiom of §III. When the
// first factor's ⊕ is not selective, the lexicographic ⊕ injects α_T
// (the [P]x construction), and Theorem 4's characterization needs α_T to
// absorb ⊗_T; TestTheorem4NeedsAlphaAbsorptionWhenNotSelective exhibits
// the machine-found counterexample otherwise.
func alphaAbsorbsMul(b *Bisemigroup) bool {
	alpha, ok := b.Add.Identity()
	if !ok {
		return false
	}
	for _, c := range b.Carrier().Elems {
		if b.Mul.Op(c, alpha) != alpha || b.Mul.Op(alpha, c) != alpha {
			return false
		}
	}
	return true
}

// TestTheorem4RandomValidation machine-checks
// M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T)) for bisemigroups, where M is left
// distributivity, over random structures with CI ⊕ and associative ⊗ —
// restricted to products where the lexicographic ⊕ is "pure" (first
// factor selective, or α_T ⊗-absorbing so the injected identity is
// inert), the setting in which the characterization is exact.
func TestTheorem4RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	trials := 0
	for trials < 250 {
		s := randBSG(r, 2+r.Intn(3))
		u := randBSG(r, 2+r.Intn(3))
		if st, _ := s.Add.CheckSelective(nil, 0); st != prop.True && !alphaAbsorbsMul(u) {
			continue
		}
		prod, err := Lex(s, u)
		if err != nil {
			continue
		}
		trials++
		ps, pt := propsOf(s), propsOf(u)
		lhs, w := prod.CheckM(true, nil, 0)
		rhs := prop.And(prop.And(ps[prop.MLeft], pt[prop.MLeft]),
			prop.Or(ps[prop.NLeft], pt[prop.CLeft]))
		if lhs != rhs {
			t.Fatalf("trial %d: M(S×T)=%v but rule says %v (witness %q)\nS: %s/%s M=%v N=%v\nT: %s/%s M=%v C=%v",
				trials, lhs, rhs, w,
				s.Add.Name, s.Mul.Name, ps[prop.MLeft], ps[prop.NLeft],
				u.Add.Name, u.Mul.Name, pt[prop.MLeft], pt[prop.CLeft])
		}
	}
}

// TestTheorem4NeedsAlphaAbsorptionWhenNotSelective pins the machine-found
// counterexample: S = ({0..3}, ∨bits, right-projection) is M and N;
// T = ({0..3}, ∨bits, ⊗) with 1⊗0 ≠ 0 is M; the rule would predict
// M(S×T), yet distributivity fails in the α-injection case because
// α_T = 0 is not ⊗-absorbing.
func TestTheorem4NeedsAlphaAbsorptionWhenNotSelective(t *testing.T) {
	or1 := sg.New("∨", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) | b.(int) })
	right := sg.New("right", value.Ints(0, 3), func(a, b value.V) value.V { return b })
	s := New("S", or1, right)
	or2 := sg.New("∨", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) | b.(int) })
	// ⊗ = ∨ as well: ∨ distributes over itself (M), but α = 0 is the
	// ∨-identity, not an absorber: 1 ⊗ 0 = 1 ≠ 0.
	orMul := sg.New("∨⊗", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) | b.(int) })
	u := New("T", or2, orMul)

	ps, pt := propsOf(s), propsOf(u)
	rhs := prop.And(prop.And(ps[prop.MLeft], pt[prop.MLeft]),
		prop.Or(ps[prop.NLeft], pt[prop.CLeft]))
	if rhs != prop.True {
		t.Fatalf("precondition: rule RHS should be True (M=%v/%v N=%v C=%v)",
			ps[prop.MLeft], pt[prop.MLeft], ps[prop.NLeft], pt[prop.CLeft])
	}
	prod, err := Lex(s, u)
	if err != nil {
		t.Fatal(err)
	}
	lhs, w := prod.CheckM(true, nil, 0)
	if lhs != prop.False {
		t.Fatal("expected the α-injection distributivity failure")
	}
	if w == "" {
		t.Fatal("expected a concrete witness")
	}
}

// TestTheorem5RandomValidation machine-checks the paper-literal local
// optima rules for bisemigroups (whose I property is exemption-free, so
// no SI refinement is needed):
//
//	ND(S×T) ⟺ I(S) ∨ (ND(S)∧ND(T))
//	I(S×T)  ⟺ I(S) ∨ (ND(S)∧I(T))
func TestTheorem5RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	trials := 0
	for trials < 250 {
		s := randBSG(r, 2+r.Intn(3))
		u := randBSG(r, 2+r.Intn(3))
		prod, err := Lex(s, u)
		if err != nil {
			continue
		}
		trials++
		ps, pt := propsOf(s), propsOf(u)
		ndLHS, _ := prod.CheckND(true, nil, 0)
		ndRHS := prop.Or(ps[prop.ILeft], prop.And(ps[prop.NDLeft], pt[prop.NDLeft]))
		if ndLHS != ndRHS {
			t.Fatalf("trial %d: ND(S×T)=%v but I(S)∨(ND∧ND)=%v\nS: %s/%s I=%v ND=%v\nT: %s/%s ND=%v",
				trials, ndLHS, ndRHS, s.Add.Name, s.Mul.Name, ps[prop.ILeft], ps[prop.NDLeft],
				u.Add.Name, u.Mul.Name, pt[prop.NDLeft])
		}
		iLHS, _ := prod.CheckI(true, nil, 0)
		iRHS := prop.Or(ps[prop.ILeft], prop.And(ps[prop.NDLeft], pt[prop.ILeft]))
		if iLHS != iRHS {
			t.Fatalf("trial %d: I(S×T)=%v but I(S)∨(ND∧I)=%v", trials, iLHS, iRHS)
		}
	}
}

func TestCheckAllPopulatesBothSides(t *testing.T) {
	b := minPlus(4)
	b.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.MLeft, prop.MRight, prop.NLeft, prop.NRight,
		prop.CLeft, prop.CRight, prop.NDLeft, prop.NDRight, prop.ILeft, prop.IRight} {
		if b.Props.Status(id) == prop.Unknown {
			t.Fatalf("%s undecided on a finite bisemigroup", id)
		}
	}
	if !b.Add.Props.Holds(prop.Selective) {
		t.Fatal("CheckAll must populate the ⊕ sub-structure too")
	}
}

func TestMismatchedCarriersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := sg.New("a", value.Ints(0, 3), func(x, y value.V) value.V { return x })
	b := sg.New("b", value.Ints(0, 5), func(x, y value.V) value.V { return x })
	New("bad", a, b)
}
