// Package bsg implements bisemigroups (S, ⊕, ⊗) — the upper-left quadrant
// of the quadrants model: algebraic weight summarization with algebraic
// weight computation. Semirings are the subclass whose ⊗ distributes over
// a commutative ⊕ with identity; distributivity here is exactly the M
// property of Fig 2 and is inferred, not required, so nondistributive
// semirings (Lengauer–Theune) are first-class citizens.
package bsg

import (
	"fmt"
	"math/rand"

	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

// Bisemigroup is a structure (S, ⊕, ⊗). Add and Mul share a carrier.
type Bisemigroup struct {
	// Name is a diagnostic label, e.g. "(ℕ,min,+)".
	Name string
	// Add is the summarization semigroup ⊕.
	Add *sg.Semigroup
	// Mul is the computation semigroup ⊗.
	Mul *sg.Semigroup
	// Props caches property judgements (left and right flavours).
	Props prop.Set
}

// New builds a bisemigroup; add and mul must share their carrier (checked
// extensionally for finite carriers, trusted for infinite ones).
func New(name string, add, mul *sg.Semigroup) *Bisemigroup {
	if !value.Same(add.Car, mul.Car) {
		panic("bsg: add and mul carriers differ: " + add.Car.Name + " vs " + mul.Car.Name)
	}
	return &Bisemigroup{Name: name, Add: add, Mul: mul, Props: prop.Make()}
}

// Carrier returns the weight carrier.
func (s *Bisemigroup) Carrier() *value.Carrier { return s.Add.Car }

// Finite reports whether exhaustive property checking is possible.
func (s *Bisemigroup) Finite() bool { return s.Add.Car.Finite() }

// Lex returns the lexicographic product S ×lex T (§IV): ⊕ is the
// lexicographic product of the two ⊕s (the [P]x construction of §IV.A),
// ⊗ is componentwise. It is defined when S.Add is selective or T.Add is a
// monoid.
func Lex(s, t *Bisemigroup) (*Bisemigroup, error) {
	add, err := sg.Lex(s.Add, t.Add)
	if err != nil {
		return nil, err
	}
	return New("("+s.Name+" ×lex "+t.Name+")", add, sg.Direct(s.Mul, t.Mul)), nil
}

// forAll enumerates n-tuples (finite) or samples them (infinite).
func (s *Bisemigroup) forAll(r *rand.Rand, samples, n int,
	pred func(xs []value.V) (bool, string)) (prop.Status, string) {
	if s.Finite() {
		xs := make([]value.V, n)
		var rec func(i int) (prop.Status, string)
		rec = func(i int) (prop.Status, string) {
			if i == n {
				if ok, w := pred(xs); !ok {
					return prop.False, w
				}
				return prop.True, ""
			}
			for _, e := range s.Add.Car.Elems {
				xs[i] = e
				if st, w := rec(i + 1); st == prop.False {
					return st, w
				}
			}
			return prop.True, ""
		}
		return rec(0)
	}
	if r == nil {
		return prop.Unknown, ""
	}
	xs := make([]value.V, n)
	for i := 0; i < samples; i++ {
		for j := range xs {
			xs[j] = s.Add.Car.Draw(r)
		}
		if ok, w := pred(xs); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckM verifies distributivity, the M property of Fig 2:
// left:  c⊗(a⊕b) = (c⊗a)⊕(c⊗b);  right: (a⊕b)⊗c = (a⊗c)⊕(b⊗c).
func (s *Bisemigroup) CheckM(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		var lhs, rhs value.V
		if left {
			lhs = s.Mul.Op(c, s.Add.Op(a, b))
			rhs = s.Add.Op(s.Mul.Op(c, a), s.Mul.Op(c, b))
		} else {
			lhs = s.Mul.Op(s.Add.Op(a, b), c)
			rhs = s.Add.Op(s.Mul.Op(a, c), s.Mul.Op(b, c))
		}
		if lhs != rhs {
			return false, fmt.Sprintf("a=%s b=%s c=%s: %s ≠ %s",
				value.Format(a), value.Format(b), value.Format(c), value.Format(lhs), value.Format(rhs))
		}
		return true, ""
	})
}

// CheckN verifies cancellativity (Fig 2): left: c⊗a = c⊗b ⇒ a = b.
func (s *Bisemigroup) CheckN(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		var x, y value.V
		if left {
			x, y = s.Mul.Op(c, a), s.Mul.Op(c, b)
		} else {
			x, y = s.Mul.Op(a, c), s.Mul.Op(b, c)
		}
		if x == y && a != b {
			return false, fmt.Sprintf("a=%s b=%s c=%s: products equal but a ≠ b",
				value.Format(a), value.Format(b), value.Format(c))
		}
		return true, ""
	})
}

// CheckC verifies the condensed property (Fig 2): left: c⊗a = c⊗b always.
func (s *Bisemigroup) CheckC(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 3, func(xs []value.V) (bool, string) {
		a, b, c := xs[0], xs[1], xs[2]
		var x, y value.V
		if left {
			x, y = s.Mul.Op(c, a), s.Mul.Op(c, b)
		} else {
			x, y = s.Mul.Op(a, c), s.Mul.Op(b, c)
		}
		if x != y {
			return false, fmt.Sprintf("a=%s b=%s c=%s: products differ",
				value.Format(a), value.Format(b), value.Format(c))
		}
		return true, ""
	})
}

// CheckND verifies nondecreasing (Fig 3): left: a = a ⊕ (c⊗a).
func (s *Bisemigroup) CheckND(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 2, func(xs []value.V) (bool, string) {
		a, c := xs[0], xs[1]
		var x value.V
		if left {
			x = s.Mul.Op(c, a)
		} else {
			x = s.Mul.Op(a, c)
		}
		if s.Add.Op(a, x) != a {
			return false, fmt.Sprintf("a=%s c=%s: a ≠ a ⊕ (c⊗a)", value.Format(a), value.Format(c))
		}
		return true, ""
	})
}

// CheckI verifies increasing (Fig 3): left: a = a ⊕ (c⊗a) ≠ c⊗a.
func (s *Bisemigroup) CheckI(left bool, r *rand.Rand, samples int) (prop.Status, string) {
	return s.forAll(r, samples, 2, func(xs []value.V) (bool, string) {
		a, c := xs[0], xs[1]
		var x value.V
		if left {
			x = s.Mul.Op(c, a)
		} else {
			x = s.Mul.Op(a, c)
		}
		if s.Add.Op(a, x) != a || a == x {
			return false, fmt.Sprintf("a=%s c=%s: ¬(a = a ⊕ (c⊗a) ≠ c⊗a)", value.Format(a), value.Format(c))
		}
		return true, ""
	})
}

// sided maps a (base property, left?) pair to the left/right prop ID.
func sided(left bool, l, r prop.ID) prop.ID {
	if left {
		return l
	}
	return r
}

// CheckAll populates Props with left and right judgements for M, N, C, ND
// and I, plus the ⊕/⊗ semigroup-level properties on the sub-structures.
func (s *Bisemigroup) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		if cur := s.Props.Get(id); cur.Status != prop.Unknown && st == prop.Unknown {
			return
		}
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		s.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	for _, left := range []bool{true, false} {
		st, w := s.CheckM(left, r, samples)
		record(sided(left, prop.MLeft, prop.MRight), st, w)
		st, w = s.CheckN(left, r, samples)
		record(sided(left, prop.NLeft, prop.NRight), st, w)
		st, w = s.CheckC(left, r, samples)
		record(sided(left, prop.CLeft, prop.CRight), st, w)
		st, w = s.CheckND(left, r, samples)
		record(sided(left, prop.NDLeft, prop.NDRight), st, w)
		st, w = s.CheckI(left, r, samples)
		record(sided(left, prop.ILeft, prop.IRight), st, w)
	}
	s.Add.CheckAll(r, samples)
	s.Mul.CheckAll(r, samples)
}

// IsSemiring reports whether the bisemigroup is a semiring in the sense of
// §III: ⊗ distributes over ⊕ on both sides, ⊕ is commutative, and ⊕ has
// an identity. The judgement is exhaustive on finite carriers and may be
// Unknown otherwise.
func (s *Bisemigroup) IsSemiring(r *rand.Rand, samples int) (prop.Status, string) {
	mL, wL := s.CheckM(true, r, samples)
	if mL == prop.False {
		return prop.False, "⊗ not left-distributive: " + wL
	}
	mR, wR := s.CheckM(false, r, samples)
	if mR == prop.False {
		return prop.False, "⊗ not right-distributive: " + wR
	}
	cm, wc := s.Add.CheckCommutative(r, samples)
	if cm == prop.False {
		return prop.False, "⊕ not commutative: " + wc
	}
	if _, ok := s.Add.Identity(); !ok && s.Finite() {
		return prop.False, "⊕ has no identity"
	}
	if mL == prop.True && mR == prop.True && cm == prop.True {
		return prop.True, ""
	}
	return prop.Unknown, ""
}
