// Package ost implements order transforms (S, ≲, F) — the lower-right
// quadrant of the quadrants model and the structure underlying Sobrinho's
// routing algebras and the original metarouting language.
//
// An order transform pairs a preordered weight set with a set of unary
// functions; arcs of a network are labelled with functions and the weight
// of a path is the composition of its arc functions applied to an
// originated value (§II). The package provides the metarouting operators
// over order transforms — lexicographic product ×lex, left(·), right(·),
// disjoint function union +, the BGP-like scoped product ⊙ and the
// OSPF-like partition Δ — and exhaustive/sampled checking of the M, N, C,
// ND, I and T properties of Figures 2 and 3.
package ost

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// OrderTransform is a structure (S, ≲, F).
type OrderTransform struct {
	// Name is a diagnostic label.
	Name string
	// Ord is the preordered weight set (S, ≲).
	Ord *order.Preorder
	// F is the set of arc functions S → S.
	F *fn.Set
	// Props caches property judgements (keys from prop.RoutingIDs).
	Props prop.Set
}

// New builds an order transform.
func New(name string, ord *order.Preorder, f *fn.Set) *OrderTransform {
	return &OrderTransform{Name: name, Ord: ord, F: f, Props: prop.Make()}
}

// Carrier returns the weight carrier.
func (t *OrderTransform) Carrier() *value.Carrier { return t.Ord.Car }

// Finite reports whether both the carrier and the function set are
// enumerable, i.e. whether exhaustive property checking is possible.
func (t *OrderTransform) Finite() bool { return t.Ord.Car.Finite() && t.F.Finite() }

// DefaultOrigin picks a sensible originated weight for experiments and
// servers: ⊥ of the order when known (the most preferred weight), else
// the first carrier element, else 0. Shared by the CLIs and the route
// server so "the default origin" means the same thing everywhere.
func (t *OrderTransform) DefaultOrigin() value.V {
	if b, ok := t.Ord.Bot(); ok {
		return b
	}
	if t.Carrier().Finite() {
		return t.Carrier().Elems[0]
	}
	return 0
}

// Left returns left(S) = (S, ≲, {κ_b | b ∈ S}) (§II): every arc function
// is a constant, so the last link completely determines the value — the
// shape of BGP's local-preference attribute.
func Left(s *OrderTransform) *OrderTransform {
	return New("left("+s.Name+")", s.Ord, fn.Constants(s.Ord.Car))
}

// Right returns right(S) = (S, ≲, {id}) (§II): once a value is originated
// it can only be copied — the shape of BGP's origin attribute.
func Right(s *OrderTransform) *OrderTransform {
	return New("right("+s.Name+")", s.Ord, fn.IdentityOnly())
}

// Lex returns the lexicographic product S ×lex T (§II): the lexicographic
// order on pairs, with functions {(f,g)} acting componentwise.
func Lex(s, t *OrderTransform) *OrderTransform {
	return New("("+s.Name+" ×lex "+t.Name+")", order.Lex(s.Ord, t.Ord), fn.Product(s.F, t.F))
}

// Union returns the disjoint function union S + T (§II). Both operands
// must share their carrier and order; the function sets are combined with
// distinguishing tags whose application ignores the tag.
func Union(s, t *OrderTransform) *OrderTransform {
	return New("("+s.Name+" + "+t.Name+")", s.Ord, fn.DisjointUnion(s.F, t.F))
}

// Scoped returns the BGP-like scoped product (§II):
//
//	S ⊙ T := (S ×lex left(T)) + (right(S) ×lex T).
//
// Weights are pairs compared lexicographically. Inter-region arcs carry
// functions (1, (f, κ_c)) that transform the first component and
// *originate* a fresh second component; intra-region arcs carry
// (2, (id, g)) that copy the inter-region information and transform the
// second component.
func Scoped(s, t *OrderTransform) *OrderTransform {
	inter := Lex(s, Left(t))
	intra := Lex(Right(s), t)
	u := Union(inter, intra)
	u.Name = "(" + s.Name + " ⊙ " + t.Name + ")"
	return u
}

// Delta returns the OSPF-area-like partition (§II):
//
//	S Δ T := (S ×lex T) + (right(S) ×lex T).
//
// Unlike the scoped product, inter-region arcs transform both components,
// so Δ behaves like an ordinary lexicographic product in addition to its
// internal-only mode — which is why Theorem 7 demands more of its
// operands than Theorem 6 does of ⊙'s.
func Delta(s, t *OrderTransform) *OrderTransform {
	inter := Lex(s, t)
	intra := Lex(Right(s), t)
	u := Union(inter, intra)
	u.Name = "(" + s.Name + " Δ " + t.Name + ")"
	return u
}

// AddTop adjoins a fresh ⊤ ("unreachable") element: x ≲ ⊤ for every x and
// every function maps ⊤ to ⊤. AddTop makes the T property of §II hold by
// construction and gives the I property its exempted element.
func AddTop(s *OrderTransform) *OrderTransform {
	top := value.V(value.Top{})
	car := value.Adjoin(s.Ord.Car, top, s.Ord.Car.Name+"∪{⊤}")
	ord := order.New(s.Ord.Name+"∪{⊤}", car, func(a, b value.V) bool {
		if b == top {
			return true
		}
		if a == top {
			return false
		}
		return s.Ord.Leq(a, b)
	})
	ord.WithTop(top)
	if b, ok := s.Ord.Bot(); ok {
		ord.WithBot(b)
	}
	lift := func(f fn.Fn) fn.Fn {
		return fn.Fn{Name: f.Name, Apply: func(v value.V) value.V {
			if v == top {
				return top
			}
			return f.Apply(v)
		}}
	}
	var fs *fn.Set
	if s.F.Finite() {
		lifted := make([]fn.Fn, len(s.F.Fns))
		for i, f := range s.F.Fns {
			lifted[i] = lift(f)
		}
		fs = fn.NewFinite(s.F.Name, lifted)
	} else {
		fs = fn.NewSampled(s.F.Name, func(r *rand.Rand) fn.Fn { return lift(s.F.Draw(r)) })
	}
	out := New("addtop("+s.Name+")", ord, fs)
	out.Props.Declare(prop.TopFixed)
	return out
}

// AdditiveComposite combines two order transforms over int carriers into
// a single scalarized metric (§VI's discussion of EIGRP-style "additive
// composite metrics", after Gouda & Schneider): the carrier is the pair
// carrier, functions act componentwise, but the order compares the
// weighted sum ws·s + wt·t — a fixed formula instead of a lexicographic
// hierarchy. Both operands must have finite int carriers.
//
// Gouda & Schneider proved ND(S) ∧ ND(T) ⇒ ND(S ⊞ T); the condition is
// sufficient but not necessary (one component may decrease if the other
// gains more), which experiment E14 quantifies — the paper's §VI asks
// for exact criteria here and records them as open.
func AdditiveComposite(s, t *OrderTransform, ws, wt int) *OrderTransform {
	for _, o := range []*OrderTransform{s, t} {
		if !o.Ord.Car.Finite() {
			panic("ost: AdditiveComposite requires finite carriers")
		}
		for _, e := range o.Ord.Car.Elems {
			if _, ok := e.(int); !ok {
				panic("ost: AdditiveComposite requires int carriers")
			}
		}
	}
	scal := func(v value.V) int {
		p := v.(value.Pair)
		return ws*p.A.(int) + wt*p.B.(int)
	}
	ord := order.New(
		fmt.Sprintf("%d·%s+%d·%s", ws, s.Ord.Name, wt, t.Ord.Name),
		value.Product(s.Ord.Car, t.Ord.Car),
		func(a, b value.V) bool { return scal(a) <= scal(b) })
	return New("("+s.Name+" ⊞ "+t.Name+")", ord, fn.Product(s.F, t.F))
}

// FromSemigroupOrder is the Cayley construction (§III): an order semigroup
// (S, ≲, ⊗) becomes the order transform (S, ≲, {λy. x⊗y | x ∈ S}).
func FromSemigroupOrder(name string, ord *order.Preorder, op func(a, b value.V) value.V) *OrderTransform {
	return New(name, ord, fn.Cayley("F_"+name, ord.Car, op))
}

// PathWeight applies the arc functions fs (source-side first, matching
// §II's v(p) = (f₁ ∘ f₂ ∘ … ∘ f_k)(a)) to the originated value a.
func (t *OrderTransform) PathWeight(fs []fn.Fn, a value.V) value.V {
	v := a
	for i := len(fs) - 1; i >= 0; i-- {
		v = fs[i].Apply(v)
	}
	return v
}
