package ost

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// DefaultSamples is the number of random probes used per property when a
// structure is not finitely enumerable.
const DefaultSamples = 512

// forAll runs pred over (function, element…) tuples: exhaustively when the
// structure is finite, over samples random tuples otherwise. pred receives
// one function and n elements.
func (t *OrderTransform) forAll(r *rand.Rand, samples, n int,
	pred func(f fn.Fn, xs []value.V) (bool, string)) (prop.Status, string) {
	if t.Finite() {
		xs := make([]value.V, n)
		var rec func(f fn.Fn, i int) (prop.Status, string)
		rec = func(f fn.Fn, i int) (prop.Status, string) {
			if i == n {
				if ok, w := pred(f, xs); !ok {
					return prop.False, w
				}
				return prop.True, ""
			}
			for _, e := range t.Ord.Car.Elems {
				xs[i] = e
				if st, w := rec(f, i+1); st == prop.False {
					return st, w
				}
			}
			return prop.True, ""
		}
		for _, f := range t.F.Fns {
			if st, w := rec(f, 0); st == prop.False {
				return st, w
			}
		}
		return prop.True, ""
	}
	if r == nil {
		return prop.Unknown, ""
	}
	xs := make([]value.V, n)
	for i := 0; i < samples; i++ {
		f := t.F.Draw(r)
		for j := range xs {
			xs[j] = t.Ord.Car.Draw(r)
		}
		if ok, w := pred(f, xs); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckM verifies monotonicity (Fig 2, order transforms):
// a ≲ b ⇒ f(a) ≲ f(b).
func (t *OrderTransform) CheckM(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if t.Ord.Leq(a, b) && !t.Ord.Leq(f.Apply(a), f.Apply(b)) {
			return false, fmt.Sprintf("f=%s a=%s b=%s: a ≲ b but ¬(f(a) ≲ f(b))",
				f.Name, value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckN verifies the cancellative property (Fig 2, order transforms):
// f(a) ~ f(b) ⇒ a ~ b ∨ a # b.
func (t *OrderTransform) CheckN(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if t.Ord.Equiv(f.Apply(a), f.Apply(b)) && !(t.Ord.Equiv(a, b) || t.Ord.Incomp(a, b)) {
			return false, fmt.Sprintf("f=%s a=%s b=%s: f(a) ~ f(b) but a, b strictly ordered",
				f.Name, value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckC verifies the condensed property (Fig 2, order transforms):
// f(a) ~ f(b) for all a, b.
func (t *OrderTransform) CheckC(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if !t.Ord.Equiv(f.Apply(a), f.Apply(b)) {
			return false, fmt.Sprintf("f=%s a=%s b=%s: ¬(f(a) ~ f(b))",
				f.Name, value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckND verifies nondecreasing (Fig 3, order transforms): a ≲ f(a).
func (t *OrderTransform) CheckND(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 1, func(f fn.Fn, xs []value.V) (bool, string) {
		a := xs[0]
		if !t.Ord.Leq(a, f.Apply(a)) {
			return false, fmt.Sprintf("f=%s a=%s: ¬(a ≲ f(a))", f.Name, value.Format(a))
		}
		return true, ""
	})
}

// CheckI verifies increasing (Fig 3, order transforms):
// a ≠ ⊤ ⇒ a < f(a). Elements equivalent to ⊤ are exempt.
func (t *OrderTransform) CheckI(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 1, func(f fn.Fn, xs []value.V) (bool, string) {
		a := xs[0]
		if t.Ord.IsTop(a) {
			return true, ""
		}
		if !t.Ord.Lt(a, f.Apply(a)) {
			return false, fmt.Sprintf("f=%s a=%s: a ≠ ⊤ but ¬(a < f(a))", f.Name, value.Format(a))
		}
		return true, ""
	})
}

// CheckSI verifies strictly increasing everywhere: a < f(a) for every a,
// with no ⊤ exemption. SI is the exemption-free strengthening of I that
// the Theorem 5 lex rules need when the carrier's ⊤ is an ordinary weight
// (see prop.SILeft). SI ⇒ I, and SI is necessarily false whenever a ⊤
// exists and F is nonempty.
func (t *OrderTransform) CheckSI(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 1, func(f fn.Fn, xs []value.V) (bool, string) {
		a := xs[0]
		if !t.Ord.Lt(a, f.Apply(a)) {
			return false, fmt.Sprintf("f=%s a=%s: ¬(a < f(a))", f.Name, value.Format(a))
		}
		return true, ""
	})
}

// CheckT verifies the T property of §II up to equivalence: f(⊤) ~ ⊤ for
// every f (the preorder generalization of the paper's f(⊤) = ⊤; they
// coincide when ⊤ is unique). If the order has no top element the
// property is false — there is no ⊤ to preserve.
func (t *OrderTransform) CheckT(r *rand.Rand, samples int) (prop.Status, string) {
	top, ok := t.Ord.Top()
	if !ok {
		if t.Ord.Car.Finite() {
			return prop.False, "no ⊤ element"
		}
		return prop.Unknown, ""
	}
	return t.forAll(r, samples, 0, func(f fn.Fn, _ []value.V) (bool, string) {
		if !t.Ord.Equiv(f.Apply(top), top) {
			return false, fmt.Sprintf("f=%s: f(⊤) = %s ≁ ⊤", f.Name, value.Format(f.Apply(top)))
		}
		return true, ""
	})
}

// CheckAll populates Props with judgements for M, N, C, ND, I and T.
func (t *OrderTransform) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		if cur := t.Props.Get(id); cur.Status != prop.Unknown && st == prop.Unknown {
			return
		}
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		t.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	st, w := t.CheckM(r, samples)
	record(prop.MLeft, st, w)
	st, w = t.CheckN(r, samples)
	record(prop.NLeft, st, w)
	st, w = t.CheckC(r, samples)
	record(prop.CLeft, st, w)
	st, w = t.CheckND(r, samples)
	record(prop.NDLeft, st, w)
	st, w = t.CheckI(r, samples)
	record(prop.ILeft, st, w)
	st, w = t.CheckSI(r, samples)
	record(prop.SILeft, st, w)
	st, w = t.CheckT(r, samples)
	record(prop.TopFixed, st, w)
}

// Check returns the judgement for a single routing property, computing it
// if absent. Unknown judgements from sampling are recomputed each call.
func (t *OrderTransform) Check(id prop.ID, r *rand.Rand, samples int) prop.Judgement {
	if j := t.Props.Get(id); j.Status != prop.Unknown {
		return j
	}
	var st prop.Status
	var w string
	switch id {
	case prop.MLeft:
		st, w = t.CheckM(r, samples)
	case prop.NLeft:
		st, w = t.CheckN(r, samples)
	case prop.CLeft:
		st, w = t.CheckC(r, samples)
	case prop.NDLeft:
		st, w = t.CheckND(r, samples)
	case prop.ILeft:
		st, w = t.CheckI(r, samples)
	case prop.SILeft:
		st, w = t.CheckSI(r, samples)
	case prop.TopFixed:
		st, w = t.CheckT(r, samples)
	default:
		return prop.Judgement{}
	}
	rule := "model-check"
	if st == prop.Unknown {
		rule = "sampled"
	}
	j := prop.Judgement{Status: st, Rule: rule, Witness: w}
	if st != prop.Unknown {
		t.Props.Put(id, j)
	}
	return j
}
