package ost

import (
	"math/rand"
	"testing"

	"metarouting/internal/gen"
	"metarouting/internal/prop"
)

func randOT(r *rand.Rand) *OrderTransform {
	n := 2 + r.Intn(3)
	return New("rnd", gen.Preorder(r, n), gen.FnSet(r, n, 1+r.Intn(3)))
}

type otProps struct {
	m, n, c, nd, i, si, t prop.Status
	hasTop                bool
}

func propsOf(s *OrderTransform) otProps {
	var p otProps
	p.m, _ = s.CheckM(nil, 0)
	p.n, _ = s.CheckN(nil, 0)
	p.c, _ = s.CheckC(nil, 0)
	p.nd, _ = s.CheckND(nil, 0)
	p.i, _ = s.CheckI(nil, 0)
	p.si, _ = s.CheckSI(nil, 0)
	p.t, _ = s.CheckT(nil, 0)
	_, p.hasTop = s.Ord.Top()
	return p
}

// TestLexRulesRandomValidation machine-checks every rule the inference
// engine uses for ×lex over order transforms, against exhaustive model
// checks on random structures:
//
//	M(S×T)  ⟺ M(S)∧M(T)∧(N(S)∨C(T))          (Theorem 4)
//	N(S×T)  ⟺ N(S)∧N(T)                       (componentwise lemma)
//	C(S×T)  ⟺ C(S)∧C(T)                       (componentwise lemma)
//	ND(S×T) ⟺ SI(S)∨(ND(S)∧ND(T))             (Theorem 5, SI form)
//	SI(S×T) ⟺ SI(S)∨(ND(S)∧SI(T))             (Theorem 5, SI form)
//	T(S×T)  ⟺ tops ∧ T(S)∧T(T)
//	I(S×T)  ⟺ I(S)∧T(S)∧I(T)   when both have tops
//	        ⟺ SI(S×T)          when the product has no top
func TestLexRulesRandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 400; trial++ {
		s, u := randOT(r), randOT(r)
		prod := Lex(s, u)
		ps, pt := propsOf(s), propsOf(u)
		pp := propsOf(prod)

		type eq struct {
			name string
			lhs  prop.Status
			rhs  prop.Status
		}
		var iRHS prop.Status
		if ps.hasTop && pt.hasTop {
			iRHS = prop.And(ps.i, prop.And(ps.t, pt.i))
		} else {
			iRHS = pp.si
		}
		checks := []eq{
			{"M", pp.m, prop.And(prop.And(ps.m, pt.m), prop.Or(ps.n, pt.c))},
			{"N", pp.n, prop.And(ps.n, pt.n)},
			{"C", pp.c, prop.And(ps.c, pt.c)},
			{"ND", pp.nd, prop.Or(ps.si, prop.And(ps.nd, pt.nd))},
			{"SI", pp.si, prop.Or(ps.si, prop.And(ps.nd, pt.si))},
			{"T", pp.t, prop.And(prop.FromBool(ps.hasTop && pt.hasTop), prop.And(ps.t, pt.t))},
			{"I", pp.i, iRHS},
		}
		for _, c := range checks {
			if c.lhs != c.rhs {
				t.Fatalf("trial %d: %s(S×T)=%v but rule says %v\nS=%s (%+v)\nT=%s (%+v)",
					trial, c.name, c.lhs, c.rhs, s.Ord.Name, ps, u.Ord.Name, pt)
			}
		}
	}
}

// TestLeftRightRulesRandomValidation machine-checks the §V rules the
// scoped/Δ expansions rest on, for random orders.
func TestLeftRightRulesRandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(304))
	for trial := 0; trial < 300; trial++ {
		s := randOT(r)
		multiClass, strictPair, multiElem := false, false, s.Ord.Car.Size() >= 2
		for i, a := range s.Ord.Car.Elems {
			for _, b := range s.Ord.Car.Elems[i+1:] {
				if !s.Ord.Equiv(a, b) {
					multiClass = true
				}
				if s.Ord.Lt(a, b) || s.Ord.Lt(b, a) {
					strictPair = true
				}
			}
		}
		_, hasTop := s.Ord.Top()

		l := propsOf(Left(s))
		if l.m != prop.True || l.c != prop.True {
			t.Fatalf("trial %d: left must be M and C", trial)
		}
		if l.n != prop.FromBool(!strictPair) {
			t.Fatalf("trial %d: N(left) = %v, want %v", trial, l.n, !strictPair)
		}
		if l.nd != prop.FromBool(!multiClass) || l.i != prop.FromBool(!multiClass) {
			t.Fatalf("trial %d: ND/I(left) must be ⟺ single class", trial)
		}
		if l.t != prop.FromBool(hasTop && !multiClass) {
			t.Fatalf("trial %d: T(left) = %v, want %v", trial, l.t, hasTop && !multiClass)
		}

		rt := propsOf(Right(s))
		if rt.m != prop.True || rt.n != prop.True || rt.nd != prop.True {
			t.Fatalf("trial %d: right must be M, N, ND", trial)
		}
		if rt.i != prop.FromBool(!multiClass) || rt.c != prop.FromBool(!multiClass) {
			t.Fatalf("trial %d: I/C(right) must be ⟺ single class", trial)
		}
		if rt.t != prop.FromBool(hasTop) {
			t.Fatalf("trial %d: T(right) = %v, want %v", trial, rt.t, hasTop)
		}
		if rt.si != prop.False || l.si != prop.False {
			if multiElem || s.Ord.Car.Size() == 1 {
				// id and κ_a(a)=a never strictly increase on nonempty carriers.
				t.Fatalf("trial %d: SI(left/right) must be False", trial)
			}
		}
	}
}

// TestUnionRuleRandomValidation: P(S+T) ⟺ P(S)∧P(T) for every routing
// property, with operands sharing a random order.
func TestUnionRuleRandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(305))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(3)
		ord := gen.Preorder(r, n)
		s := New("S", ord, gen.FnSet(r, n, 1+r.Intn(3)))
		u := New("T", ord, gen.FnSet(r, n, 1+r.Intn(3)))
		un := Union(s, u)
		ps, pt, pu := propsOf(s), propsOf(u), propsOf(un)
		type eq struct {
			name        string
			got, ls, rs prop.Status
		}
		for _, c := range []eq{
			{"M", pu.m, ps.m, pt.m}, {"N", pu.n, ps.n, pt.n}, {"C", pu.c, ps.c, pt.c},
			{"ND", pu.nd, ps.nd, pt.nd}, {"I", pu.i, ps.i, pt.i},
			{"SI", pu.si, ps.si, pt.si}, {"T", pu.t, ps.t, pt.t},
		} {
			if c.got != prop.And(c.ls, c.rs) {
				t.Fatalf("trial %d: %s(S+T)=%v but %v∧%v", trial, c.name, c.got, c.ls, c.rs)
			}
		}
	}
}

// TestAddTopRulesRandomValidation: the addtop rules, especially
// I(addtop(S)) ⟺ SI(S).
func TestAddTopRulesRandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(306))
	for trial := 0; trial < 300; trial++ {
		s := randOT(r)
		ps := propsOf(s)
		at := AddTop(s)
		pa := propsOf(at)
		if pa.t != prop.True {
			t.Fatalf("trial %d: T(addtop) must hold", trial)
		}
		if pa.m != ps.m || pa.n != ps.n || pa.nd != ps.nd {
			t.Fatalf("trial %d: addtop must preserve M/N/ND (%+v vs %+v)", trial, pa, ps)
		}
		if pa.i != ps.si {
			t.Fatalf("trial %d: I(addtop(S))=%v but SI(S)=%v", trial, pa.i, ps.si)
		}
		if pa.si != prop.False {
			t.Fatalf("trial %d: SI(addtop) must be False", trial)
		}
		if pa.c != prop.False {
			t.Fatalf("trial %d: C(addtop) must be False on nonempty carriers", trial)
		}
	}
}
