package ost

import (
	"math/rand"
	"testing"

	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// delayOT is a small bounded delay algebra: ({0..cap}, ≤, {+1..+maxStep sat}).
func delayOT(cap, maxStep int) *OrderTransform {
	car := value.Ints(0, cap)
	fns := make([]fn.Fn, 0, maxStep)
	for d := 1; d <= maxStep; d++ {
		d := d
		fns = append(fns, fn.Fn{Name: "+" + string(rune('0'+d)), Apply: func(v value.V) value.V {
			x := v.(int) + d
			if x > cap {
				x = cap
			}
			return x
		}})
	}
	o := order.IntLeq("≤", car)
	o.WithTop(cap)
	return New("delay", o, fn.NewFinite("F", fns))
}

// bwOT is a small bandwidth algebra: ({0..cap}, ≥, {min(·,c)}).
func bwOT(cap int) *OrderTransform {
	car := value.Ints(0, cap)
	fns := make([]fn.Fn, 0, cap+1)
	for c := 0; c <= cap; c++ {
		c := c
		fns = append(fns, fn.Fn{Name: "cap", Apply: func(v value.V) value.V {
			if v.(int) < c {
				return v
			}
			return c
		}})
	}
	o := order.New("≥", car, func(a, b value.V) bool { return a.(int) >= b.(int) })
	o.WithTop(0)
	return New("bw", o, fn.NewFinite("F", fns))
}

func TestDelayProperties(t *testing.T) {
	d := delayOT(5, 2)
	d.CheckAll(nil, 0)
	if !d.Props.Holds(prop.MLeft) {
		t.Fatalf("delay must be monotone: %s", d.Props.Get(prop.MLeft).Witness)
	}
	if !d.Props.Holds(prop.NDLeft) || !d.Props.Holds(prop.ILeft) {
		t.Fatal("delay must be ND and I")
	}
	if !d.Props.Holds(prop.TopFixed) {
		t.Fatal("saturating delay fixes ⊤")
	}
	if !d.Props.Fails(prop.NLeft) {
		t.Fatal("bounded delay cannot be cancellative (ceiling collapses)")
	}
}

func TestBandwidthProperties(t *testing.T) {
	b := bwOT(4)
	b.CheckAll(nil, 0)
	if !b.Props.Holds(prop.MLeft) || !b.Props.Holds(prop.NDLeft) {
		t.Fatal("bandwidth must be M and ND")
	}
	if !b.Props.Fails(prop.ILeft) {
		t.Fatal("bandwidth is not increasing (wide links keep the bottleneck)")
	}
	if !b.Props.Fails(prop.NLeft) {
		t.Fatal("bandwidth is not cancellative")
	}
}

// TestSobrinhoExample reproduces §III's example:
// M(delay ×lex bw) when delay is cancellative, and ¬M(bw ×lex delay).
// On the bounded carrier delay loses N at the ceiling, so we use the
// direction that the paper's analysis explains: bandwidth-first fails.
func TestSobrinhoExampleBandwidthFirstFailsM(t *testing.T) {
	l := Lex(bwOT(3), delayOT(3, 2))
	st, w := l.CheckM(nil, 0)
	if st != prop.False {
		t.Fatal("bw ×lex delay must fail monotonicity")
	}
	if w == "" {
		t.Fatal("expected a concrete counterexample")
	}
}

func TestLexComponentFunctionsActComponentwise(t *testing.T) {
	l := Lex(delayOT(3, 1), bwOT(3))
	f := l.F.Fns[0]
	got := f.Apply(value.Pair{A: 1, B: 2})
	if _, ok := got.(value.Pair); !ok {
		t.Fatalf("lex function must return a pair: %v", got)
	}
}

func TestLeftRightShapes(t *testing.T) {
	d := delayOT(3, 1)
	l := Left(d)
	if l.F.Size() != 4 {
		t.Fatalf("left must have one constant per element: %d", l.F.Size())
	}
	r := Right(d)
	if r.F.Size() != 1 || r.F.Fns[0].Name != "id" {
		t.Fatal("right must have exactly the identity")
	}
	r.CheckAll(nil, 0)
	if !r.Props.Holds(prop.MLeft) || !r.Props.Holds(prop.NLeft) || !r.Props.Holds(prop.NDLeft) {
		t.Fatal("right must be M, N, ND")
	}
	if !r.Props.Fails(prop.ILeft) {
		t.Fatal("right on a multi-class order is not increasing")
	}
	l.CheckAll(nil, 0)
	if !l.Props.Holds(prop.MLeft) || !l.Props.Holds(prop.CLeft) {
		t.Fatal("left must be M and C")
	}
	if !l.Props.Fails(prop.NDLeft) {
		t.Fatal("left on a multi-class order is not ND")
	}
}

// TestScopedFunctionTable verifies §II's table for ⊙:
//
//	(1, (f, κ_c))(a, b) = (f(a), c)   inter-region
//	(2, (id, g))(a, b)  = (a, g(b))   intra-region
func TestScopedFunctionTable(t *testing.T) {
	s := delayOT(3, 1)
	u := bwOT(3)
	sc := Scoped(s, u)
	if !sc.F.Finite() {
		t.Fatal("scoped of finite operands must be finite")
	}
	interSeen, intraSeen := false, false
	for _, f := range sc.F.Fns {
		got := f.Apply(value.Pair{A: 1, B: 2}).(value.Pair)
		switch {
		case got.A != 1: // first component transformed: inter-region
			interSeen = true
			// second component must be freshly originated (a constant,
			// independent of the input's second component).
			got2 := f.Apply(value.Pair{A: 1, B: 0}).(value.Pair)
			if got2.B != got.B {
				t.Fatalf("inter-region function %s must originate its second component", f.Name)
			}
		default: // first component copied: could be inter (f=id impossible here: all fns are +d) or intra
			intraSeen = true
			// intra-region: second transformed by u's functions from the
			// input value; first copied.
			if got.A != 1 {
				t.Fatalf("intra-region function %s must copy the first component", f.Name)
			}
		}
	}
	if !interSeen || !intraSeen {
		t.Fatal("scoped must contain both inter- and intra-region functions")
	}
}

// TestScopedMonotone: Theorem 6 headline — bandwidth ⊙ delay is monotone
// although bandwidth ×lex delay is not.
func TestScopedMonotone(t *testing.T) {
	bw, d := bwOT(3), delayOT(3, 2)
	lex := Lex(bw, d)
	if st, _ := lex.CheckM(nil, 0); st != prop.False {
		t.Fatal("bw ×lex delay must fail M")
	}
	sc := Scoped(bw, d)
	if st, w := sc.CheckM(nil, 0); st != prop.True {
		t.Fatalf("bw ⊙ delay must be monotone; counterexample: %s", w)
	}
}

// TestDeltaNeedsMore: Theorem 7 — with the same operands, Δ fails M
// because it inherits lex's N(S) ∨ C(T) requirement.
func TestDeltaNeedsMore(t *testing.T) {
	bw, d := bwOT(3), delayOT(3, 2)
	dl := Delta(bw, d)
	if st, _ := dl.CheckM(nil, 0); st != prop.False {
		t.Fatal("bw Δ delay must fail monotonicity (N(bw) and C(delay) both fail)")
	}
}

func TestUnionProperties(t *testing.T) {
	d := delayOT(3, 1)
	u := Union(d, Right(d))
	u.CheckAll(nil, 0)
	// union is ND iff both are; right is ND, delay is ND.
	if !u.Props.Holds(prop.NDLeft) {
		t.Fatal("union of ND algebras must be ND")
	}
	// union is I iff both are; right is not I.
	if !u.Props.Fails(prop.ILeft) {
		t.Fatal("union with right(·) must fail I")
	}
}

func TestAddTop(t *testing.T) {
	// An algebra without ⊤: unbounded-ish delay on a discrete slice is
	// awkward; instead strip the top by using a cyclic successor.
	car := value.Ints(0, 3)
	succ := fn.Fn{Name: "succ", Apply: func(v value.V) value.V { return (v.(int) + 1) % 4 }}
	o := order.Discrete(car)
	s := New("cyc", o, fn.NewFinite("F", []fn.Fn{succ}))
	a := AddTop(s)
	top, ok := a.Ord.Top()
	if !ok || top != value.V(value.Top{}) {
		t.Fatalf("AddTop must install ⊤: %v %v", top, ok)
	}
	if st, _ := a.CheckT(nil, 0); st != prop.True {
		t.Fatal("AddTop must fix ⊤ under every function")
	}
	if !a.Ord.Leq(2, value.Top{}) || a.Ord.Leq(value.Top{}, 2) {
		t.Fatal("⊤ must sit strictly above every old element")
	}
	// Old elements keep their old relations.
	if a.Ord.Leq(1, 2) {
		t.Fatal("old discrete relations must persist")
	}
}

func TestPathWeightCompositionOrder(t *testing.T) {
	d := delayOT(10, 3)
	plus1, _ := d.F.ByName("+1")
	plus2, _ := d.F.ByName("+2")
	// v(p) applies the destination-side function first.
	got := d.PathWeight([]fn.Fn{plus1, plus2}, 0)
	if got != 3 {
		t.Fatalf("path weight = %v", got)
	}
}

func TestCheckMemoization(t *testing.T) {
	d := delayOT(4, 1)
	j1 := d.Check(prop.MLeft, nil, 0)
	if j1.Status != prop.True {
		t.Fatal("delay is monotone")
	}
	j2 := d.Check(prop.MLeft, nil, 0)
	if j2 != j1 {
		t.Fatal("second Check must return the memoized judgement")
	}
}

func TestSampledCheckInfinite(t *testing.T) {
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(1000) })
	o := order.IntLeq("≤", car)
	bad := New("dec", o, fn.NewFinite("F", []fn.Fn{{
		Name: "-1", Apply: func(v value.V) value.V {
			if v.(int) == 0 {
				return 0
			}
			return v.(int) - 1
		},
	}}))
	r := rand.New(rand.NewSource(4))
	if st, _ := bad.CheckND(r, 300); st != prop.False {
		t.Fatal("sampling must catch the decreasing function")
	}
	good := New("inc", o, fn.NewFinite("F", []fn.Fn{{
		Name: "+1", Apply: func(v value.V) value.V { return v.(int) + 1 },
	}}))
	if st, _ := good.CheckND(r, 300); st != prop.Unknown {
		t.Fatal("sampling a true property must stay Unknown")
	}
}

func TestAddTopInfiniteFunctionSet(t *testing.T) {
	// AddTop over a sampled function set must lift drawn functions.
	car := value.Ints(0, 3)
	s := New("inf", order.IntLeq("≤", car),
		fn.NewSampled("F∞", func(r *rand.Rand) fn.Fn { return fn.Const(r.Intn(4)) }))
	a := AddTop(s)
	r := rand.New(rand.NewSource(9))
	f := a.F.Draw(r)
	if f.Apply(value.Top{}) != value.V(value.Top{}) {
		t.Fatal("lifted functions must fix ⊤")
	}
	if _, ok := f.Apply(1).(int); !ok {
		t.Fatal("lifted functions must act as before on old elements")
	}
}

func TestAdditiveComposite(t *testing.T) {
	d := delayOT(3, 1)
	c := AdditiveComposite(d, d, 1, 2)
	// Order: 1·a + 2·b; (1,1) ≲ (3,0) since 3 ≤ 3.
	if !c.Ord.Leq(value.Pair{A: 1, B: 1}, value.Pair{A: 3, B: 0}) {
		t.Fatal("weighted sum order wrong")
	}
	if c.Ord.Lt(value.Pair{A: 1, B: 1}, value.Pair{A: 3, B: 0}) {
		t.Fatal("equal sums must be equivalent")
	}
	// Functions act componentwise.
	got := c.F.Fns[0].Apply(value.Pair{A: 1, B: 1}).(value.Pair)
	if got.A != 2 || got.B != 2 {
		t.Fatalf("componentwise application broken: %v", got)
	}
}

func TestAdditiveCompositePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-int carriers")
		}
	}()
	d := delayOT(2, 1)
	AdditiveComposite(Lex(d, d), d, 1, 1)
}

func TestCheckUnknownProperty(t *testing.T) {
	d := delayOT(3, 1)
	if j := d.Check(prop.ID("nonsense"), nil, 0); j.Status != prop.Unknown {
		t.Fatal("unknown property IDs must stay Unknown")
	}
}
