// Package scenario loads complete, reproducible simulation scenarios
// from a line-oriented text format:
//
//	# failover drill
//	expr   delay(64, 4)
//	nodes  3
//	arc    1 0 +1
//	arc    2 1 +1
//	arc    2 0 +4
//	dest   0
//	origin 0           # an int, or a nested pair like ((3,0),0)
//	event  50 fail 1 0 # at t=50, fail the arc 1 → 0
//	event  200 up  1 0
//
// The algebra expression is compiled through the inference engine, arc
// labels resolve against its function names (or integer indices), and
// events name arcs by endpoints. Run executes the scenario on the
// asynchronous simulator.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/value"
)

// maxNodes caps the nodes directive: beyond this the adjacency build
// alone is an effective denial of service on a shared corpus runner
// (fuzzing found the hang long before any real scenario needed it).
const maxNodes = 1_000_000

// Scenario is a parsed scenario, ready to run.
type Scenario struct {
	// Expr is the algebra expression source.
	Expr string
	// Algebra is the compiled algebra.
	Algebra *core.Algebra
	// Engine is the execution backend Run simulates on. Parse picks it
	// with exec.For (compiled for finite algebras); UseEngine re-pins it.
	Engine exec.Algebra
	// Graph is the topology.
	Graph *graph.Graph
	// Dest and Origin configure the origination.
	Dest   int
	Origin value.V
	// Events are the topology changes.
	Events []protocol.LinkEvent
}

// Parse reads a scenario. Directives may appear in any order except that
// arcs require a prior nodes directive and events require their arc to
// exist.
func Parse(rd io.Reader) (*Scenario, error) {
	sc := bufio.NewScanner(rd)
	s := &Scenario{Dest: 0}
	n := -1
	var arcs []graph.Arc
	var labelTokens []string
	var originSrc string
	type rawEvent struct {
		at       int64
		fail     bool
		from, to int
	}
	var rawEvents []rawEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "expr":
			s.Expr = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "expr"))
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario line %d: nodes wants one argument", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("scenario line %d: bad node count", lineNo)
			}
			if v > maxNodes {
				return nil, fmt.Errorf("scenario line %d: node count %d exceeds the %d cap", lineNo, v, maxNodes)
			}
			n = v
		case "arc":
			if len(fields) != 4 {
				return nil, fmt.Errorf("scenario line %d: arc wants 'arc from to label'", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("scenario line %d: bad endpoints", lineNo)
			}
			// Labels resolve after the algebra is compiled; stash the
			// token in a side table via a placeholder index.
			arcs = append(arcs, graph.Arc{From: from, To: to, Label: -1 - len(labelTokens)})
			labelTokens = append(labelTokens, fields[3])
		case "dest":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario line %d: dest wants one argument", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("scenario line %d: bad dest", lineNo)
			}
			s.Dest = v
		case "origin":
			originSrc = strings.Join(fields[1:], "")
		case "event":
			if len(fields) != 5 {
				return nil, fmt.Errorf("scenario line %d: event wants 'event at fail|up from to'", lineNo)
			}
			at, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario line %d: bad event time", lineNo)
			}
			if at < 0 {
				return nil, fmt.Errorf("scenario line %d: event time %d must be ≥ 0", lineNo, at)
			}
			var fail bool
			switch fields[2] {
			case "fail":
				fail = true
			case "up":
				fail = false
			default:
				return nil, fmt.Errorf("scenario line %d: event kind must be fail or up", lineNo)
			}
			from, err1 := strconv.Atoi(fields[3])
			to, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("scenario line %d: bad event endpoints", lineNo)
			}
			rawEvents = append(rawEvents, rawEvent{at: at, fail: fail, from: from, to: to})
		default:
			return nil, fmt.Errorf("scenario line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Expr == "" {
		return nil, fmt.Errorf("scenario: missing expr directive")
	}
	if n < 0 {
		return nil, fmt.Errorf("scenario: missing nodes directive")
	}
	a, err := core.InferString(s.Expr)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	s.Algebra = a
	// Resolve labels now that function names are known.
	for i := range arcs {
		tok := labelTokens[-1-arcs[i].Label]
		idx := -1
		if a.OT.F.Finite() {
			for fi, f := range a.OT.F.Fns {
				if f.Name == tok {
					idx = fi
					break
				}
			}
		}
		if idx < 0 {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("scenario: unknown arc label %q", tok)
			}
			idx = v
		}
		// A numeric label past the function set would only surface as an
		// index panic deep inside the simulator; reject it here.
		if idx < 0 || (a.OT.F.Finite() && idx >= a.OT.F.Size()) {
			return nil, fmt.Errorf("scenario: arc label %q out of range for %s", tok, a.OT.F.Name)
		}
		arcs[i].Label = idx
	}
	s.Graph, err = graph.New(n, arcs)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if s.Dest < 0 || s.Dest >= n {
		return nil, fmt.Errorf("scenario: dest %d out of range", s.Dest)
	}
	if originSrc == "" {
		return nil, fmt.Errorf("scenario: missing origin directive")
	}
	s.Origin, err = parseValue(originSrc)
	if err != nil {
		return nil, fmt.Errorf("scenario: origin: %v", err)
	}
	if err := validateOrigin(a, s.Origin); err != nil {
		return nil, fmt.Errorf("scenario: origin: %v", err)
	}
	for _, re := range rawEvents {
		idx := -1
		for ai, arc := range s.Graph.Arcs {
			if arc.From == re.from && arc.To == re.to {
				idx = ai
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("scenario: event names missing arc %d → %d", re.from, re.to)
		}
		s.Events = append(s.Events, protocol.LinkEvent{At: re.at, Arc: idx, Fail: re.fail})
	}
	s.Engine = exec.For(a.OT, s.Origin)
	return s, nil
}

// UseEngine re-pins the execution backend under an explicit mode (the
// CLI's -engine flag). ModeCompiled fails when the algebra has no dense
// form or the origin falls outside the compiled carrier.
func (s *Scenario) UseEngine(m exec.Mode) error {
	eng, err := exec.New(s.Algebra.OT, m, s.Origin)
	if err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	s.Engine = eng
	return nil
}

// validateOrigin checks that the origin literal fits the algebra's
// carrier: membership for finite carriers, and a recover-guarded probe of
// the order and every arc function otherwise (a pair fed to a scalar
// algebra would panic deep inside route computation).
func validateOrigin(a *core.Algebra, v value.V) (err error) {
	car := a.OT.Carrier()
	if car.Finite() && !car.Contains(v) {
		return fmt.Errorf("%s is not in the carrier %s", value.Format(v), car.Name)
	}
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("%s does not fit the carrier %s", value.Format(v), car.Name)
		}
	}()
	a.OT.Ord.Leq(v, v)
	if a.OT.F.Finite() {
		for _, f := range a.OT.F.Fns {
			f.Apply(v)
		}
	}
	return nil
}

// parseValue parses an origin literal: an integer, or a nested pair
// "(a,b)".
func parseValue(src string) (value.V, error) {
	src = strings.TrimSpace(src)
	if !strings.HasPrefix(src, "(") {
		v, err := strconv.Atoi(src)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", src)
		}
		return v, nil
	}
	if !strings.HasSuffix(src, ")") {
		return nil, fmt.Errorf("unbalanced %q", src)
	}
	inner := src[1 : len(src)-1]
	// Split at the top-level comma.
	depth, cut := 0, -1
	for i, c := range inner {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && cut < 0 {
				cut = i
			}
		}
	}
	if cut < 0 {
		return nil, fmt.Errorf("pair %q needs a top-level comma", src)
	}
	a, err := parseValue(inner[:cut])
	if err != nil {
		return nil, err
	}
	b, err := parseValue(inner[cut+1:])
	if err != nil {
		return nil, err
	}
	return value.Pair{A: a, B: b}, nil
}

// SortedEvents returns a copy of the scenario's topology events in
// firing order — the replay order a live route server applies them in
// (the simulator sorts internally; servers consume them one at a time).
func (s *Scenario) SortedEvents() []protocol.LinkEvent {
	evs := append([]protocol.LinkEvent(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Run executes the scenario on the asynchronous simulator with the given
// seed and message budget (≤ 0 for the simulator default).
func (s *Scenario) Run(seed int64, maxSteps int) *protocol.Outcome {
	eng := s.Engine
	if eng == nil {
		eng = exec.For(s.Algebra.OT, s.Origin)
	}
	return protocol.RunEngine(eng, s.Graph, protocol.Config{
		Dest: s.Dest, Origin: s.Origin, MaxDelay: 3,
		Rand: rand.New(rand.NewSource(seed)), MaxSteps: maxSteps,
		Events: s.Events,
	})
}
