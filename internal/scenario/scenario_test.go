package scenario

import (
	"strings"
	"testing"

	"metarouting/internal/value"
)

const failoverScenario = `
# failover drill
expr   delay(64, 4)
nodes  3
arc    1 0 +1
arc    2 1 +1
arc    2 0 +4
dest   0
origin 0
event  50 fail 1 0
`

func TestParseAndRun(t *testing.T) {
	s, err := Parse(strings.NewReader(failoverScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Expr != "delay(64, 4)" || s.Graph.N != 3 || len(s.Events) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Events[0].Fail || s.Graph.Arcs[s.Events[0].Arc].From != 1 {
		t.Fatalf("event wrong: %+v", s.Events[0])
	}
	out := s.Run(1, 0)
	if !out.Converged {
		t.Fatalf("scenario must converge: %s", out.Describe())
	}
	// After the 1→0 failure, node 1 routes via 2? No — node 1 has no
	// other exit; it must withdraw, and node 2 must take the +4 backup.
	if out.Routed[1] {
		t.Fatalf("node 1 must withdraw after losing its only exit: %s", out.Describe())
	}
	if !out.Routed[2] || out.Weights[2] != 4 {
		t.Fatalf("node 2 must take the backup: %s", out.Describe())
	}
}

func TestParsePairOrigin(t *testing.T) {
	src := `
expr   scoped(bw(4), delay(16,2))
nodes  2
arc    1 0 0
dest   0
origin (4, 0)
`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Origin != (value.Pair{A: 4, B: 0}) {
		t.Fatalf("origin = %v", s.Origin)
	}
	out := s.Run(2, 0)
	if !out.Converged || !out.Routed[1] {
		t.Fatalf("must route: %s", out.Describe())
	}
}

func TestParseNestedPairOrigin(t *testing.T) {
	v, err := parseValue("((3,0),7)")
	if err != nil {
		t.Fatal(err)
	}
	want := value.Pair{A: value.Pair{A: 3, B: 0}, B: 7}
	if v != want {
		t.Fatalf("parsed %v, want %v", v, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"nodes 2\narc 1 0 0\ndest 0\norigin 0\n", "missing expr"},
		{"expr delay(4,1)\ndest 0\norigin 0\n", "missing nodes"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\n", "missing origin"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 zap\ndest 0\norigin 0\n", "unknown arc label"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 9\norigin 0\n", "out of range"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin 0\nevent 5 fail 0 1\n", "missing arc"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin 0\nevent 5 boom 1 0\n", "fail or up"},
		{"expr nosuch(1)\nnodes 2\narc 1 0 0\ndest 0\norigin 0\n", "unknown base"},
		{"expr delay(4,1)\nnodes 2\nfrob\n", "unknown directive"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin (1\n", "unbalanced"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin (1)\n", "top-level comma"},
		// Hardening found by the fuzz target: each of these previously
		// panicked or hung inside Run instead of erroring in Parse.
		{"expr delay(4,1)\nnodes 2\narc 1 0 99\ndest 0\norigin 0\n", "out of range"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 -7\ndest 0\norigin 0\n", "out of range"},
		{"expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin 0\nevent -5 fail 1 0\n", "must be ≥ 0"},
		{"expr delay(4,1)\nnodes 99999999\narc 1 0 0\ndest 0\norigin 0\n", "cap"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestLabelResolutionByName(t *testing.T) {
	src := `
expr delay(8, 2)
nodes 2
arc 1 0 +2
dest 0
origin 0
`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// +2 is the second delay function (index 1).
	if s.Graph.Arcs[0].Label != 1 {
		t.Fatalf("label = %d", s.Graph.Arcs[0].Label)
	}
}

// FuzzScenarioParse: the scenario parser must never panic, whatever the
// input (seed corpus runs in normal test mode).
func FuzzScenarioParse(f *testing.F) {
	f.Add(failoverScenario)
	f.Add("expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin ((1,2),(3,4))\n")
	f.Add("nodes\n")
	f.Add("arc a b c\n")
	f.Add("event 1 2 3\n")
	f.Add("origin ((((\n")
	f.Add("expr delay(4,1)\nnodes 2\narc 1 0 99\ndest 0\norigin 0\n")
	f.Add("expr delay(4,1)\nnodes 2\narc 1 0 0\ndest 0\norigin 0\nevent -9223372036854775808 fail 1 0\n")
	f.Add("expr delay(4,1)\nnodes 999999999\ndest 0\norigin 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything accepted must be runnable without panicking.
		s.Run(1, 200)
	})
}

func TestSortedEvents(t *testing.T) {
	src := `
expr   delay(64, 4)
nodes  3
arc    1 0 +1
arc    2 1 +1
arc    2 0 +4
dest   0
origin 0
event  200 up   1 0
event  50  fail 1 0
event  90  fail 2 0
`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	evs := s.SortedEvents()
	if len(evs) != 3 || evs[0].At != 50 || evs[1].At != 90 || evs[2].At != 200 {
		t.Fatalf("events not in firing order: %+v", evs)
	}
	// The original slice keeps declaration order.
	if s.Events[0].At != 200 {
		t.Fatal("SortedEvents must not reorder the scenario in place")
	}
}
