// Package baselib provides the base algebras of the metarouting language:
// the classic routing metrics (distance/delay, bandwidth, reliability, hop
// count, local preference, origin, tags) realized in the quadrants model,
// each with both an exhaustively checkable finite truncation and, where
// meaningful, an unbounded sampled version.
//
// Every constructor returns a structure whose Props are *declared*; the
// package's tests verify each declaration against the model checker on
// the finite truncations, so declarations are trustworthy inputs for the
// inference engine.
package baselib

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// Delay returns the additive-delay order transform: weights {0..cap} (or
// unbounded sampled ℕ when cap == 0) ordered by ≤ (smaller is better),
// with arc functions {λx. x+d | 1 ≤ d ≤ maxStep} (saturating at cap when
// bounded).
//
// Declared properties: M, ND, I always; T when bounded (cap is ⊤);
// N exactly when unbounded (saturation destroys cancellativity).
func Delay(cap, maxStep int) *ost.OrderTransform {
	if maxStep < 1 {
		panic("baselib: Delay needs maxStep ≥ 1")
	}
	var car *value.Carrier
	var apply func(d int) func(value.V) value.V
	if cap > 0 {
		car = value.Ints(0, cap)
		apply = func(d int) func(value.V) value.V {
			return func(v value.V) value.V { return minInt(cap, v.(int)+d) }
		}
	} else {
		car = value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(1 << 16) })
		apply = func(d int) func(value.V) value.V {
			return func(v value.V) value.V { return v.(int) + d }
		}
	}
	fns := make([]fn.Fn, 0, maxStep)
	for d := 1; d <= maxStep; d++ {
		fns = append(fns, fn.Fn{Name: fmt.Sprintf("+%d", d), Apply: apply(d)})
	}
	name := "delay"
	if cap > 0 {
		name = fmt.Sprintf("delay≤%d", cap)
	}
	t := ost.New(name, order.IntLeq("(ℕ,≤)", car), fn.NewFinite("F_delay", fns))
	t.Props.Declare(prop.MLeft)
	t.Props.Declare(prop.NDLeft)
	t.Props.Declare(prop.ILeft)
	t.Props.DeclareFalse(prop.CLeft, "f(0) ≠ f(1) under ≤")
	if cap > 0 {
		t.Ord.WithTop(cap)
		t.Props.Declare(prop.TopFixed)
		t.Props.DeclareFalse(prop.NLeft,
			fmt.Sprintf("+%d maps both %d and %d to the ceiling %d", maxStep, cap, cap-1, cap))
		t.Props.DeclareFalse(prop.SILeft, fmt.Sprintf("the ceiling %d does not strictly increase", cap))
	} else {
		t.Props.Declare(prop.NLeft)
		t.Props.Declare(prop.SILeft)
		t.Props.DeclareFalse(prop.TopFixed, "no ⊤ element")
		t.Ord.Props.DeclareFalse(prop.HasTop, "ℕ has no greatest element")
		t.Ord.Props.Declare(prop.Full)
	}
	return t
}

// Bandwidth returns the bottleneck-bandwidth order transform: weights
// {0..cap} ordered by ≥ (larger is better, so ⊤ = 0 = "no bandwidth"),
// with arc functions {λx. min(x, c) | c ∈ {0..cap}} — each link imposes
// its capacity.
//
// Declared properties: M, ND, T; ¬N (two flows above a link's capacity
// collapse), ¬I (a link wider than the current bottleneck leaves the
// weight unchanged), ¬C.
func Bandwidth(cap int) *ost.OrderTransform {
	if cap < 1 {
		panic("baselib: Bandwidth needs cap ≥ 1")
	}
	car := value.Ints(0, cap)
	fns := make([]fn.Fn, 0, cap+1)
	for c := 0; c <= cap; c++ {
		c := c
		fns = append(fns, fn.Fn{
			Name:  fmt.Sprintf("cap%d", c),
			Apply: func(v value.V) value.V { return minInt(v.(int), c) },
		})
	}
	ord := order.New("(ℕ,≥)", car, func(a, b value.V) bool { return a.(int) >= b.(int) })
	ord.WithTop(0).WithBot(cap)
	t := ost.New(fmt.Sprintf("bw≤%d", cap), ord, fn.NewFinite("F_bw", fns))
	t.Props.Declare(prop.MLeft)
	t.Props.Declare(prop.NDLeft)
	t.Props.Declare(prop.TopFixed)
	t.Props.DeclareFalse(prop.NLeft, fmt.Sprintf("cap1 maps both %d and %d to 1", cap, cap-1))
	t.Props.DeclareFalse(prop.ILeft, fmt.Sprintf("cap%d leaves %d unchanged (≠ ⊤)", cap, cap))
	t.Props.DeclareFalse(prop.SILeft, fmt.Sprintf("cap%d leaves %d unchanged", cap, cap))
	t.Props.DeclareFalse(prop.CLeft, fmt.Sprintf("cap%d separates 0 and %d", cap, cap))
	return t
}

// Reliability returns the most-reliable-path order transform over a
// discretized [0,1]: weights {0, 1/levels, …, 1} ordered by ≥ (more
// reliable is better, ⊤ = 0), with arc functions multiplying by each
// level and rounding down to the grid.
//
// Declared properties: M, ND, T; ¬N (multiplication by 0 collapses
// everything, and grid rounding collapses neighbours), ¬I (multiplying by
// 1 leaves weights unchanged), ¬C.
func Reliability(levels int) *ost.OrderTransform {
	if levels < 2 {
		panic("baselib: Reliability needs levels ≥ 2")
	}
	// Represent probabilities as integer numerators over `levels`.
	car := value.Ints(0, levels)
	fns := make([]fn.Fn, 0, levels+1)
	for p := 0; p <= levels; p++ {
		p := p
		fns = append(fns, fn.Fn{
			Name:  fmt.Sprintf("×%d/%d", p, levels),
			Apply: func(v value.V) value.V { return v.(int) * p / levels },
		})
	}
	ord := order.New("([0,1],≥)", car, func(a, b value.V) bool { return a.(int) >= b.(int) })
	ord.WithTop(0).WithBot(levels)
	t := ost.New(fmt.Sprintf("rel/%d", levels), ord, fn.NewFinite("F_rel", fns))
	t.Props.Declare(prop.MLeft)
	t.Props.Declare(prop.NDLeft)
	t.Props.Declare(prop.TopFixed)
	t.Props.DeclareFalse(prop.NLeft, "×0 collapses all weights")
	t.Props.DeclareFalse(prop.ILeft, fmt.Sprintf("×%d/%d is the identity", levels, levels))
	t.Props.DeclareFalse(prop.SILeft, fmt.Sprintf("×%d/%d is the identity", levels, levels))
	t.Props.DeclareFalse(prop.CLeft, "×1 separates weights")
	return t
}

// HopCount returns the hop-count order transform: Delay with unit steps.
func HopCount(cap int) *ost.OrderTransform {
	t := Delay(cap, 1)
	if cap > 0 {
		t.Name = fmt.Sprintf("hops≤%d", cap)
	} else {
		t.Name = "hops"
	}
	return t
}

// LocalPref returns the local-preference order transform: weights
// {0..levels} ordered by ≥ (higher preference wins, ⊤ = 0), with every
// arc function a constant κ_b — the receiving side of a link dictates the
// preference, as with BGP LOCAL_PREF. This is left(·) of the bare
// preference order.
//
// Declared properties: M, C (constants are condensed!), T is false (κ_b
// moves ⊤), N false, ND/I false (a constant can improve a route).
func LocalPref(levels int) *ost.OrderTransform {
	if levels < 1 {
		panic("baselib: LocalPref needs levels ≥ 1")
	}
	car := value.Ints(0, levels)
	ord := order.New("(pref,≥)", car, func(a, b value.V) bool { return a.(int) >= b.(int) })
	ord.WithTop(0).WithBot(levels)
	t := ost.New(fmt.Sprintf("lp≤%d", levels), ord, fn.Constants(car))
	t.Props.Declare(prop.MLeft)
	t.Props.Declare(prop.CLeft)
	t.Props.DeclareFalse(prop.NLeft, "κ_b maps strictly ordered prefs to the same value")
	t.Props.DeclareFalse(prop.NDLeft, "κ_high improves a low-pref route")
	t.Props.DeclareFalse(prop.ILeft, "κ_b does not strictly worsen")
	t.Props.DeclareFalse(prop.SILeft, "κ_a(a) = a")
	t.Props.DeclareFalse(prop.TopFixed, "κ_b moves ⊤")
	return t
}

// Origin returns the origin-attribute order transform: a small totally
// ordered set of origin codes {0..n} with only the identity function —
// right(·) of the bare order. Once originated, the value is copied.
//
// Declared properties: M, N, ND, T; ¬I (id never strictly worsens),
// ¬C (id separates).
func Origin(n int) *ost.OrderTransform {
	if n < 1 {
		panic("baselib: Origin needs n ≥ 1")
	}
	car := value.Ints(0, n)
	t := ost.New(fmt.Sprintf("origin%d", n), order.IntLeq("(origin,≤)", car), fn.IdentityOnly())
	t.Ord.WithTop(n)
	t.Props.Declare(prop.MLeft)
	t.Props.Declare(prop.NLeft)
	t.Props.Declare(prop.NDLeft)
	t.Props.Declare(prop.TopFixed)
	t.Props.DeclareFalse(prop.ILeft, "id leaves non-⊤ weights unchanged")
	t.Props.DeclareFalse(prop.SILeft, "id never strictly worsens")
	t.Props.DeclareFalse(prop.CLeft, "id separates weights")
	return t
}

// Tags returns a community-tags order transform: weights are bit sets
// over nbits tags under the discrete order (tag sets are policy inputs,
// not preferences), with arc functions that set or clear each tag.
//
// Declared properties: M (discrete order: a ≲ b only when a = b), ND/I
// false, N false (set-tag collapses), C false, T false.
func Tags(nbits int) *ost.OrderTransform {
	if nbits < 1 || nbits > 16 {
		panic("baselib: Tags needs 1 ≤ nbits ≤ 16")
	}
	car := value.Ints(0, 1<<nbits-1)
	car.Name = fmt.Sprintf("2^tags%d", nbits)
	fns := []fn.Fn{fn.Identity()}
	for b := 0; b < nbits; b++ {
		b := b
		fns = append(fns,
			fn.Fn{Name: fmt.Sprintf("set%d", b), Apply: func(v value.V) value.V { return v.(int) | 1<<b }},
			fn.Fn{Name: fmt.Sprintf("clr%d", b), Apply: func(v value.V) value.V { return v.(int) &^ (1 << b) }},
		)
	}
	t := ost.New(fmt.Sprintf("tags%d", nbits), order.Discrete(car), fn.NewFinite("F_tags", fns))
	t.Props.Declare(prop.MLeft)
	// N holds vacuously under the discrete order: distinct elements are
	// incomparable, so the conclusion a ~ b ∨ a # b is always available.
	t.Props.Declare(prop.NLeft)
	t.Props.DeclareFalse(prop.CLeft, "id separates")
	t.Props.DeclareFalse(prop.NDLeft, "discrete order: set0(0) = 1 and ¬(0 ≲ 1)")
	t.Props.DeclareFalse(prop.ILeft, "discrete order admits no strict increase")
	t.Props.DeclareFalse(prop.SILeft, "discrete order admits no strict increase")
	t.Props.DeclareFalse(prop.TopFixed, "no ⊤ in a discrete order with ≥2 elements")
	return t
}

// Unit returns the one-element order transform — the identity of ×lex up
// to isomorphism. Every routing property holds trivially (the sole
// element is ⊤).
func Unit() *ost.OrderTransform {
	car := value.NewFinite("1", []value.V{0})
	t := ost.New("unit", order.Chaotic(car), fn.IdentityOnly())
	t.Ord.WithTop(0)
	for _, id := range []prop.ID{prop.MLeft, prop.NLeft, prop.CLeft, prop.NDLeft, prop.ILeft, prop.TopFixed} {
		t.Props.Declare(id)
	}
	t.Props.DeclareFalse(prop.SILeft, "id(0) = 0")
	return t
}

// SPPGadget returns the stable-paths-problem gadget algebra used to build
// BAD GADGET instances (persistent route oscillation, Varadhan et al.,
// cited as [16]): weights 0 < 1 < 2 < 3, where 0 is the originated
// weight, 1 is a preferred "via my neighbour" route, 2 is a fallback
// direct route, and 3 = ⊤ marks a filtered (forbidden) path. The two arc
// functions are
//
//	direct: 0 ↦ 2, everything else ↦ ⊤   (label 0)
//	via:    2 ↦ 1, everything else ↦ ⊤   (label 1)
//
// so exactly the SPP-permitted paths (i,0) and (i,i+1,0) survive, with
// the two-hop path preferred. The algebra is neither monotone nor
// nondecreasing — as BAD GADGET requires.
func SPPGadget() *ost.OrderTransform {
	car := value.Ints(0, 3)
	direct := fn.Fn{Name: "direct", Apply: func(v value.V) value.V {
		if v.(int) == 0 {
			return 2
		}
		return 3
	}}
	via := fn.Fn{Name: "via", Apply: func(v value.V) value.V {
		if v.(int) == 2 {
			return 1
		}
		return 3
	}}
	t := ost.New("sppgadget", order.IntLeq("(spp,≤)", car), fn.NewFinite("F_spp", []fn.Fn{direct, via}))
	t.Ord.WithTop(3)
	t.Props.Declare(prop.TopFixed)
	t.Props.DeclareFalse(prop.MLeft, "via(1)=⊤ but via(2)=1 although 1 < 2")
	t.Props.DeclareFalse(prop.NDLeft, "via(2)=1 improves the weight")
	t.Props.DeclareFalse(prop.ILeft, "via(2)=1 improves the weight")
	t.Props.DeclareFalse(prop.SILeft, "via(2)=1 improves the weight")
	t.Props.DeclareFalse(prop.NLeft, "direct collapses 1 and 3 to ⊤")
	t.Props.DeclareFalse(prop.CLeft, "direct separates 0 and 1")
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
