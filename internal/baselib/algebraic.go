package baselib

import (
	"fmt"
	"math/rand"

	"metarouting/internal/bsg"
	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/osg"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/sgt"
	"metarouting/internal/value"
)

// MinSG returns ({0..cap}, min) — selective, commutative, idempotent,
// with identity cap and absorber 0.
func MinSG(cap int) *sg.Semigroup {
	s := sg.New(fmt.Sprintf("({0..%d},min)", cap), value.Ints(0, cap),
		func(a, b value.V) value.V { return minInt(a.(int), b.(int)) })
	s.WithIdentity(cap)
	s.WithAbsorber(0)
	s.Props.Declare(prop.Associative)
	s.Props.Declare(prop.Commutative)
	s.Props.Declare(prop.Idempotent)
	s.Props.Declare(prop.Selective)
	return s
}

// MaxSG returns ({0..cap}, max).
func MaxSG(cap int) *sg.Semigroup {
	s := sg.New(fmt.Sprintf("({0..%d},max)", cap), value.Ints(0, cap),
		func(a, b value.V) value.V {
			if a.(int) > b.(int) {
				return a
			}
			return b
		})
	s.WithIdentity(0)
	s.WithAbsorber(cap)
	s.Props.Declare(prop.Associative)
	s.Props.Declare(prop.Commutative)
	s.Props.Declare(prop.Idempotent)
	s.Props.Declare(prop.Selective)
	return s
}

// PlusSatSG returns ({0..cap}, +cap) with saturating addition — the ⊗ of
// the bounded min-plus bisemigroup.
func PlusSatSG(cap int) *sg.Semigroup {
	s := sg.New(fmt.Sprintf("({0..%d},+sat)", cap), value.Ints(0, cap),
		func(a, b value.V) value.V { return minInt(cap, a.(int)+b.(int)) })
	s.WithIdentity(0)
	s.WithAbsorber(cap)
	s.Props.Declare(prop.Associative)
	s.Props.Declare(prop.Commutative)
	return s
}

// MinPlus returns the bounded shortest-distance bisemigroup
// ({0..cap}, min, +sat) — a semiring (§III).
func MinPlus(cap int) *bsg.Bisemigroup {
	return bsg.New(fmt.Sprintf("minplus≤%d", cap), MinSG(cap), PlusSatSG(cap))
}

// MaxMin returns the bounded greatest-bandwidth bisemigroup
// ({0..cap}, max, min) (§III).
func MaxMin(cap int) *bsg.Bisemigroup {
	return bsg.New(fmt.Sprintf("maxmin≤%d", cap), MaxSG(cap), MinSG(cap))
}

// PlusTimes returns the path-counting bisemigroup ({0..cap}, +sat, ×sat)
// (§III: (ℕ, +, ×) for counting the total number of paths), truncated by
// saturation so the carrier stays finite.
func PlusTimes(cap int) *bsg.Bisemigroup {
	times := sg.New(fmt.Sprintf("({0..%d},×sat)", cap), value.Ints(0, cap),
		func(a, b value.V) value.V { return minInt(cap, a.(int)*b.(int)) })
	times.WithIdentity(1)
	times.WithAbsorber(0)
	times.Props.Declare(prop.Associative)
	times.Props.Declare(prop.Commutative)
	return bsg.New(fmt.Sprintf("plustimes≤%d", cap), PlusSatSG(cap), times)
}

// BoolReach returns the reachability bisemigroup ({0,1}, ∨, ∧).
func BoolReach() *bsg.Bisemigroup {
	car := value.Ints(0, 1)
	or := sg.New("({0,1},∨)", car, func(a, b value.V) value.V {
		if a.(int) == 1 || b.(int) == 1 {
			return 1
		}
		return 0
	})
	or.WithIdentity(0)
	or.WithAbsorber(1)
	and := sg.New("({0,1},∧)", car, func(a, b value.V) value.V {
		if a.(int) == 1 && b.(int) == 1 {
			return 1
		}
		return 0
	})
	and.WithIdentity(1)
	and.WithAbsorber(0)
	for _, s := range []*sg.Semigroup{or, and} {
		s.Props.Declare(prop.Associative)
		s.Props.Declare(prop.Commutative)
		s.Props.Declare(prop.Idempotent)
		s.Props.Declare(prop.Selective)
	}
	return bsg.New("bool", or, and)
}

// ShortestPathOSG returns (ℕ, ≤, +) as an order semigroup — Sobrinho's
// shortest-distance example (§III). cap == 0 yields the unbounded sampled
// version (which is N-cancellative); cap > 0 yields the saturating finite
// truncation (which is not).
func ShortestPathOSG(cap int) *osg.OrderSemigroup {
	if cap > 0 {
		s := osg.New(fmt.Sprintf("(ℕ≤%d,≤,+sat)", cap),
			order.IntLeq("(ℕ,≤)", value.Ints(0, cap)), PlusSatSG(cap))
		s.Ord.WithTop(cap)
		s.Ord.WithBot(0)
		return s
	}
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(1 << 12) })
	plus := sg.New("(ℕ,+)", car, func(a, b value.V) value.V { return a.(int) + b.(int) })
	plus.WithIdentity(0)
	plus.Props.Declare(prop.Associative)
	plus.Props.Declare(prop.Commutative)
	return osg.New("(ℕ,≤,+)", order.IntLeq("(ℕ,≤)", car), plus)
}

// WidestPathOSG returns (ℕ, ≥, min) as an order semigroup — Sobrinho's
// greatest-bandwidth example (§III). cap == 0 yields the unbounded
// sampled version.
func WidestPathOSG(cap int) *osg.OrderSemigroup {
	if cap > 0 {
		ord := order.New("(ℕ,≥)", value.Ints(0, cap), func(a, b value.V) bool {
			return a.(int) >= b.(int)
		})
		ord.WithTop(0).WithBot(cap)
		return osg.New(fmt.Sprintf("(ℕ≤%d,≥,min)", cap), ord, MinSG(cap))
	}
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(1 << 12) })
	min := sg.New("(ℕ,min)", car, func(a, b value.V) value.V { return minInt(a.(int), b.(int)) })
	min.Props.Declare(prop.Associative)
	min.Props.Declare(prop.Commutative)
	min.Props.Declare(prop.Idempotent)
	min.Props.Declare(prop.Selective)
	ord := order.New("(ℕ,≥)", car, func(a, b value.V) bool { return a.(int) >= b.(int) })
	return osg.New("(ℕ,≥,min)", ord, min)
}

// BoundedDistSGT returns §VI's finite semigroup transform
//
//	({0,…,n}, min, {λx. min(n, x+y) | y ∈ {0,…,n}}),
//
// whose N property necessarily fails at the ceiling n — the motivating
// example for the Szendrei product ×ω.
func BoundedDistSGT(n int) *sgt.SemigroupTransform {
	fns := make([]fn.Fn, 0, n+1)
	for y := 0; y <= n; y++ {
		y := y
		fns = append(fns, fn.Fn{
			Name:  fmt.Sprintf("+%d", y),
			Apply: func(v value.V) value.V { return minInt(n, v.(int)+y) },
		})
	}
	return sgt.New(fmt.Sprintf("bounded-dist≤%d", n), MinSG(n), fn.NewFinite("F", fns))
}
