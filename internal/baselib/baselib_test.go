package baselib

import (
	"math/rand"
	"testing"

	"metarouting/internal/ost"
	"metarouting/internal/prop"
)

// routingProps are the judgements every base algebra declares.
var routingProps = []prop.ID{prop.MLeft, prop.NLeft, prop.CLeft, prop.NDLeft, prop.ILeft, prop.TopFixed}

// verifyDeclarations model-checks every declared judgement of a finite
// algebra. This is the trust anchor of the whole inference engine: if the
// declarations are right here, the derived properties are right
// everywhere.
func verifyDeclarations(t *testing.T, a *ost.OrderTransform) {
	t.Helper()
	if !a.Finite() {
		t.Fatalf("%s: verifyDeclarations needs a finite algebra", a.Name)
	}
	declared := a.Props.Clone()
	checked := ost.New(a.Name+"#check", a.Ord, a.F)
	checked.CheckAll(nil, 0)
	for _, id := range routingProps {
		d := declared.Status(id)
		c := checked.Props.Status(id)
		if d == prop.Unknown {
			t.Errorf("%s: %s not declared", a.Name, id)
			continue
		}
		if d != c {
			t.Errorf("%s: declared %s=%v but model check says %v (%s)",
				a.Name, id, d, c, checked.Props.Get(id).Witness)
		}
	}
}

func TestDelayDeclarations(t *testing.T) {
	verifyDeclarations(t, Delay(6, 2))
	verifyDeclarations(t, Delay(3, 1))
}

func TestBandwidthDeclarations(t *testing.T) {
	verifyDeclarations(t, Bandwidth(5))
	verifyDeclarations(t, Bandwidth(1))
}

func TestReliabilityDeclarations(t *testing.T) {
	verifyDeclarations(t, Reliability(4))
	verifyDeclarations(t, Reliability(2))
}

func TestHopCountDeclarations(t *testing.T) {
	verifyDeclarations(t, HopCount(5))
}

func TestLocalPrefDeclarations(t *testing.T) {
	verifyDeclarations(t, LocalPref(3))
	verifyDeclarations(t, LocalPref(1))
}

func TestOriginDeclarations(t *testing.T) {
	verifyDeclarations(t, Origin(2))
}

func TestTagsDeclarations(t *testing.T) {
	verifyDeclarations(t, Tags(2))
}

func TestUnitDeclarations(t *testing.T) {
	verifyDeclarations(t, Unit())
}

// TestDelayUnboundedCancellative: the unbounded delay keeps N (sampling
// cannot prove it, but it must not find a counterexample, and the bounded
// version's counterexample must vanish: x+d is injective on ℕ).
func TestDelayUnboundedCancellative(t *testing.T) {
	d := Delay(0, 3)
	if !d.Props.Holds(prop.NLeft) {
		t.Fatal("unbounded delay declares N")
	}
	r := rand.New(rand.NewSource(11))
	if st, w := d.CheckN(r, 500); st == prop.False {
		t.Fatalf("sampling found a bogus N counterexample: %s", w)
	}
}

func TestDelayBoundedLosesN(t *testing.T) {
	d := Delay(4, 2)
	if !d.Props.Fails(prop.NLeft) {
		t.Fatal("bounded delay declares ¬N")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Delay", func() { Delay(5, 0) })
	mustPanic("Bandwidth", func() { Bandwidth(0) })
	mustPanic("Reliability", func() { Reliability(1) })
	mustPanic("LocalPref", func() { LocalPref(0) })
	mustPanic("Origin", func() { Origin(0) })
	mustPanic("Tags", func() { Tags(0) })
	mustPanic("Tags17", func() { Tags(17) })
}

func TestBisemigroupInstances(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mp := MinPlus(6)
	if st, w := mp.IsSemiring(r, 0); st != prop.True {
		t.Fatalf("min-plus must be a semiring: %s", w)
	}
	mm := MaxMin(6)
	if st, w := mm.IsSemiring(r, 0); st != prop.True {
		t.Fatalf("max-min must be a semiring: %s", w)
	}
	pt := PlusTimes(6)
	// Saturated plus-times loses distributivity at the ceiling:
	// 2×min(6,3+4)=min(6,2×6)... check what the model says rather than
	// assert blindly.
	st, _ := pt.IsSemiring(r, 0)
	if st == prop.Unknown {
		t.Fatal("finite plus-times must be decidable")
	}
	br := BoolReach()
	if st, w := br.IsSemiring(r, 0); st != prop.True {
		t.Fatalf("bool must be a semiring: %s", w)
	}
}

func TestMinPlusProperties(t *testing.T) {
	mp := MinPlus(5)
	mp.CheckAll(nil, 0)
	if !mp.Props.Holds(prop.MLeft) || !mp.Props.Holds(prop.MRight) {
		t.Fatal("min-plus is distributive on both sides")
	}
	if !mp.Props.Holds(prop.NDLeft) {
		t.Fatal("min-plus is nondecreasing: a = min(a, a+c)")
	}
	// I fails: c may be 0.
	if !mp.Props.Fails(prop.ILeft) {
		t.Fatal("min-plus with c=0 is not increasing")
	}
}

func TestShortestPathOSG(t *testing.T) {
	s := ShortestPathOSG(5)
	s.CheckAll(nil, 0)
	if !s.Props.Holds(prop.MLeft) || !s.Props.Holds(prop.NDLeft) {
		t.Fatal("(ℕ,≤,+sat) is monotone and nondecreasing")
	}
	// N fails on the saturating carrier.
	if !s.Props.Fails(prop.NLeft) {
		t.Fatal("saturating + is not cancellative")
	}
	// The unbounded version: sampling must find no M violation.
	r := rand.New(rand.NewSource(21))
	u := ShortestPathOSG(0)
	if st, w := u.CheckM(true, r, 400); st == prop.False {
		t.Fatalf("unbounded shortest path must be monotone: %s", w)
	}
	if st, w := u.CheckN(true, r, 400); st == prop.False {
		t.Fatalf("unbounded + must be cancellative: %s", w)
	}
}

func TestWidestPathOSG(t *testing.T) {
	w := WidestPathOSG(5)
	w.CheckAll(nil, 0)
	if !w.Props.Holds(prop.MLeft) {
		t.Fatal("(ℕ,≥,min) is monotone")
	}
	if !w.Props.Fails(prop.NLeft) {
		t.Fatal("(ℕ,≥,min) is not cancellative — the root of the Sobrinho example")
	}
	if !w.Props.Holds(prop.NDLeft) {
		t.Fatal("(ℕ,≥,min) is nondecreasing")
	}
	if !w.Props.Fails(prop.ILeft) {
		t.Fatal("(ℕ,≥,min) is not increasing")
	}
}

func TestBoundedDistSGT(t *testing.T) {
	b := BoundedDistSGT(4)
	b.CheckAll(nil, 0)
	if !b.Props.Holds(prop.MLeft) {
		t.Fatal("bounded-dist functions are min-homomorphisms")
	}
	// §VI: N necessarily fails: f(a) = f(b) = n with a ≠ b.
	if !b.Props.Fails(prop.NLeft) {
		t.Fatal("bounded-dist must fail N at the ceiling")
	}
	if !b.Props.Holds(prop.NDLeft) {
		t.Fatal("bounded-dist is nondecreasing")
	}
}
