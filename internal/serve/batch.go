package serve

// This file holds the batched query plane: POST /v1/routes accepts many
// route queries per request, pins ONE snapshot for the whole batch, and
// answers either JSON (Results elements byte-identical to the single
// /v1/route handler's replies) or the binary codec of
// internal/serve/wire, negotiated via Content-Type:
// application/x-mr-query. The binary path is the zero-allocation fast
// path: request body, decoded query slots, answer slots, the shared
// next-hop pool and the response frame all live in one sync.Pool'd
// scratch, and the per-query resolution (resolveWireBatch) allocates
// nothing once the scratch is warm — TestResolveWireBatchAllocs pins
// that to zero.
//
// The same handler serves leader and follower: both pin an immutable
// view (Snapshot / followerView) behind the small batchView interface,
// so the read scale-out tier answers batches at the leader's
// bit-identical version.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"metarouting/internal/rib"
	"metarouting/internal/serve/wire"
	"metarouting/internal/value"
)

// maxRoutesBody bounds POST /v1/routes bodies; anything larger is 413.
// A full wire.MaxBatch request frame is ~80 KB, so the ceiling leaves
// generous room for the JSON form's overhead.
const maxRoutesBody = 1 << 20

// BatchQuery is one query in a POST /v1/routes JSON body: exactly one
// of Dest, Prefix or Addr names the destination (same forms as the
// /v1/route query parameters), From names the querying node.
type BatchQuery struct {
	From   int    `json:"from"`
	Dest   *int   `json:"dest,omitempty"`
	Prefix string `json:"prefix,omitempty"`
	Addr   string `json:"addr,omitempty"`
}

// BatchRequest is the POST /v1/routes JSON body.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchReply is the POST /v1/routes JSON response. Version is the one
// snapshot the whole batch resolved against; every element of Results
// carries the same snapshot_version and is byte-identical to what the
// single /v1/route handler would answer for that query.
type BatchReply struct {
	Version uint64       `json:"version"`
	Results []RouteReply `json:"results"`
}

// batchView is the immutable state a batch resolves against — pinned
// once per request. The leader's Snapshot (plus its engine for weight
// naming) and the follower's view both satisfy it.
type batchView interface {
	batchVersion() uint64
	batchNodes() int
	batchColumn(dest int) rib.Col
	batchPrefixes() *rib.PrefixTable
	batchWeightName(w int32) string
}

// leaderBatch adapts a pinned leader snapshot; the server reference
// only supplies the engine's weight rendering.
type leaderBatch struct {
	sn  *Snapshot
	srv *Server
}

func (b leaderBatch) batchVersion() uint64            { return b.sn.Version }
func (b leaderBatch) batchNodes() int                 { return b.sn.Graph.N }
func (b leaderBatch) batchColumn(dest int) rib.Col    { return b.sn.Column(dest) }
func (b leaderBatch) batchPrefixes() *rib.PrefixTable { return b.sn.prefixes }
func (b leaderBatch) batchWeightName(w int32) string  { return value.Format(b.srv.eng.Value(w)) }

func (v *followerView) batchVersion() uint64 { return v.state.Version }
func (v *followerView) batchNodes() int      { return v.state.Nodes }
func (v *followerView) batchColumn(dest int) rib.Col {
	// Explicit nil return: wrapping a nil *rib.Column in the interface
	// would defeat the caller's nil check.
	c := v.state.Cols[dest]
	if c == nil {
		return nil
	}
	return c
}
func (v *followerView) batchPrefixes() *rib.PrefixTable { return v.pt }
func (v *followerView) batchWeightName(w int32) string  { return v.state.WeightName(w) }

// batchScratch is one request's worth of reusable buffers for the
// binary path. All slices keep their grown capacity across uses.
type batchScratch struct {
	body []byte
	out  []byte
	qs   []wire.Query
	as   []wire.Answer
	pool []int32
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		body: make([]byte, 0, 4096),
		out:  make([]byte, 0, 4096),
		qs:   make([]wire.Query, 0, 256),
		as:   make([]wire.Answer, 0, 256),
		pool: make([]int32, 0, 512),
	}
}}

// resolveWireBatch answers decoded binary queries against a pinned
// view, appending answer slots to as and shared next-hop spans to
// pool. It allocates nothing on the success path with warm scratch.
// Errors (out-of-range nodes) fail the whole frame: the binary
// protocol is machine-generated, so a malformed query is a client bug,
// mirroring the 400 the single handler answers.
func resolveWireBatch(v batchView, qs []wire.Query, as []wire.Answer, pool []int32) ([]wire.Answer, []int32, error) {
	nodes := v.batchNodes()
	pt := v.batchPrefixes()
	for i := range qs {
		q := &qs[i]
		if q.From < 0 || int(q.From) >= nodes {
			return as, pool, fmt.Errorf("query %d: \"from\" = %d out of range [0,%d)", i, q.From, nodes)
		}
		a := wire.Answer{Dest: -1}
		dest := -1
		switch q.Kind {
		case wire.QueryDest:
			if q.Arg >= uint32(nodes) {
				return as, pool, fmt.Errorf("query %d: \"dest\" = %d out of range [0,%d)", i, q.Arg, nodes)
			}
			dest = int(q.Arg)
			a.Flags |= wire.FlagMatched
		case wire.QueryPrefix:
			if node, ml, ok := pt.MatchPrefixNode(rib.MakePrefix(q.Arg, q.PLen)); ok {
				dest, a.MatchLen = node, ml
				a.Flags |= wire.FlagMatched
			}
		case wire.QueryAddr:
			if node, ml, ok := pt.MatchNode(q.Arg); ok {
				dest, a.MatchLen = node, ml
				a.Flags |= wire.FlagMatched
			}
		default:
			return as, pool, fmt.Errorf("query %d: unknown kind %d", i, q.Kind)
		}
		if dest >= 0 {
			a.Dest = int32(dest)
			if c := v.batchColumn(dest); c != nil {
				if w, routed := c.Route(int(q.From)); routed {
					a.Flags |= wire.FlagRouted
					a.W = w
					a.NhOff = uint32(len(pool))
					pool = c.AppendNextHops(pool, int(q.From))
					a.NhLen = uint16(len(pool) - int(a.NhOff))
				}
			}
		}
		as = append(as, a)
	}
	return as, pool, nil
}

// batchRouteReply answers one JSON batch query against a pinned view,
// constructing the reply exactly as the single /v1/route handlers do
// so the bodies stay byte-identical (the batch differential test
// asserts that against live single-query responses).
func batchRouteReply(v batchView, q BatchQuery) (RouteReply, error) {
	nodes := v.batchNodes()
	if q.From < 0 || q.From >= nodes {
		return RouteReply{}, fmt.Errorf("\"from\" = %d out of range [0,%d)", q.From, nodes)
	}
	reply := RouteReply{From: q.From, Dest: -1, Version: v.batchVersion()}
	var dest int
	switch {
	case q.Prefix != "":
		p, err := rib.ParsePrefix(q.Prefix)
		if err != nil {
			return RouteReply{}, err
		}
		reply.Query = p.String()
		po, ok := v.batchPrefixes().MatchPrefix(p)
		if !ok {
			reply.Err = "no announced prefix covers " + p.String()
			return reply, nil
		}
		reply.Matched = po.Prefix.String()
		dest = po.Node
	case q.Addr != "":
		addr, err := rib.ParseAddr(q.Addr)
		if err != nil {
			return RouteReply{}, err
		}
		reply.Query = q.Addr
		po, ok := v.batchPrefixes().Match(addr)
		if !ok {
			reply.Err = "no announced prefix covers " + q.Addr
			return reply, nil
		}
		reply.Matched = po.Prefix.String()
		dest = po.Node
	case q.Dest != nil:
		dest = *q.Dest
		if dest < 0 || dest >= nodes {
			return RouteReply{}, fmt.Errorf("\"dest\" = %d out of range [0,%d)", dest, nodes)
		}
	default:
		return RouteReply{}, fmt.Errorf("want dest, prefix or addr")
	}
	reply.Dest = dest
	if c := v.batchColumn(dest); c != nil {
		if w, routed := c.Route(q.From); routed {
			reply.Routed = true
			reply.Weight = v.batchWeightName(w)
			for _, nh := range c.NextHops(q.From) {
				reply.ECMP = append(reply.ECMP, int(nh))
			}
			if path, err := c.Forward(q.From); err == nil {
				reply.Path = path
			} else {
				reply.Err = err.Error()
			}
		}
	}
	return reply, nil
}

// routesHandler builds the POST /v1/routes handler over a pin function
// (which writes its own error and returns nil when the view is not
// servable) and an optional per-batch observer (query count). Shared
// by the leader and follower HTTP surfaces.
func routesHandler(pin func(http.ResponseWriter, *http.Request) batchView, observe func(queries int)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, CodeInvalidArgument,
				"want POST /v1/routes (JSON or %s)", wire.ContentType)
			return
		}
		v := pin(w, req)
		if v == nil {
			return
		}
		if req.Header.Get("Content-Type") == wire.ContentType {
			handleRoutesWire(w, req, v, observe)
			return
		}
		handleRoutesJSON(w, req, v, observe)
	}
}

// handleRoutesWire is the binary fast path: pooled scratch end to end.
func handleRoutesWire(w http.ResponseWriter, req *http.Request, v batchView, observe func(int)) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	n := req.ContentLength
	if n < 0 || n > maxRoutesBody {
		writeErr(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			"binary batch needs a Content-Length ≤ %d, got %d", maxRoutesBody, n)
		return
	}
	if cap(sc.body) < int(n) {
		sc.body = make([]byte, n)
	}
	sc.body = sc.body[:n]
	if _, err := io.ReadFull(req.Body, sc.body); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "short body: %v", err)
		return
	}
	var err error
	sc.qs, err = wire.DecodeQueryRequest(sc.body, sc.qs[:0])
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	sc.as, sc.pool, err = resolveWireBatch(v, sc.qs, sc.as[:0], sc.pool[:0])
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	sc.out, err = wire.AppendAnswerResponse(sc.out[:0], v.batchVersion(), sc.as, sc.pool)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInvalidArgument, "%v", err)
		return
	}
	if observe != nil {
		observe(len(sc.qs))
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(sc.out)))
	w.Write(sc.out) //nolint:errcheck
}

// handleRoutesJSON is the JSON batch form.
func handleRoutesJSON(w http.ResponseWriter, req *http.Request, v batchView, observe func(int)) {
	body := http.MaxBytesReader(w, req.Body, maxRoutesBody)
	raw, err := io.ReadAll(body)
	if err != nil {
		status, code := http.StatusBadRequest, CodeInvalidArgument
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, code = http.StatusRequestEntityTooLarge, CodePayloadTooLarge
		}
		writeErr(w, status, code, "bad routes body: %v", err)
		return
	}
	var breq BatchRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "bad routes body: %v", err)
		return
	}
	if err := ensureOneJSONValue(dec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "bad routes body: %v", err)
		return
	}
	if len(breq.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "empty query batch")
		return
	}
	if len(breq.Queries) > wire.MaxBatch {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument,
			"batch of %d queries exceeds limit %d", len(breq.Queries), wire.MaxBatch)
		return
	}
	results := make([]RouteReply, len(breq.Queries))
	for i, q := range breq.Queries {
		r, err := batchRouteReply(v, q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "query %d: %v", i, err)
			return
		}
		results[i] = r
	}
	if observe != nil {
		observe(len(breq.Queries))
	}
	writeJSON(w, http.StatusOK, BatchReply{Version: v.batchVersion(), Results: results})
}
