package serve

// This file is the leader side of snapshot replication: every snapshot
// swap is encoded as a replica record — a full snapshot for the initial
// build and explicit rebuilds, a delta touched-entry set for event
// batches — and handed to the configured RecordSink (the replica
// package's publisher, or anything else that wants the stream).
//
// The delta records lean on the same canonical-layout invariant the
// arena columns already maintain: BuildDestColumn and DeltaDestColumn
// fill slots in ascending node order and append each slot's ECMP span
// contiguously, so a column's bytes are a pure function of its
// per-node route content. A follower that patches only the changed
// slots and re-lays the pool in the same ascending order therefore
// reproduces the leader's column byte for byte — which is what the
// differential storm test asserts at every version.
//
// Weights cross the wire as formatted strings, not engine indices
// alone: dynamic-backend intern tables assign indices in arrival
// order, which differs across processes, so a follower can never
// resolve an index against its own engine. The leader instead ships a
// names table (index → value.Format string) that grows monotonically
// with the record stream, guarded by s.mu like everything else on the
// publish path.

import (
	"encoding/binary"
	"hash/fnv"

	"metarouting/internal/graph"
	"metarouting/internal/replica"
	"metarouting/internal/rib"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// RecordSink consumes the leader's replication record stream: one
// framed record per snapshot swap, called under the server's writer
// lock (so implementations must not call back into the server).
// replica.Publisher implements it.
type RecordSink interface {
	PublishRecord(version uint64, frame []byte) error
}

// LogRotator is the optional size-based rotation surface a RecordSink
// may implement (replica.Publisher does when a byte cap is set). After
// each published record the leader asks RotateDue; when the sink's
// active log segment has outgrown its cap, the leader hands it a
// freshly encoded full frame of the just-published snapshot to seed
// the next segment, so every segment replays from its own checkpoint.
// Both calls happen under the server's writer lock, like
// PublishRecord.
type LogRotator interface {
	RotateDue() bool
	RotateLog(version uint64, full []byte) error
}

// WithReplication streams every snapshot swap into sink as a framed
// replica record. The initial build and every Rebuild publish full
// snapshots; event batches publish deltas carrying only the touched
// entries.
func WithReplication(sink RecordSink) Option {
	return optionFunc(func(c *config) { c.sink = sink })
}

// fingerprintGraph digests the base topology — node count plus every
// arc's endpoints and label — so followers can refuse to mix record
// streams from different leaders.
func fingerprintGraph(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N))
	put(uint64(len(g.Arcs)))
	for _, a := range g.Arcs {
		put(uint64(a.From))
		put(uint64(a.To))
		put(uint64(a.Label))
	}
	return h.Sum64()
}

// Fingerprint identifies the server's base topology on the wire.
func (s *Server) Fingerprint() uint64 { return s.fingerprint }

// Checksum digests the published snapshot's routing content (columns +
// disabled mask). A caught-up follower at the same version reports the
// identical value — the CI leader/follower smoke compares exactly
// this.
func (s *Server) Checksum() uint32 {
	sn := s.snap.Load()
	cols := make(map[int]*rib.Column, len(sn.cols))
	for d, c := range sn.cols {
		// Flatten is the identity on flat columns and the canonical
		// re-lay on paged ones, so both layouts digest identically.
		cols[d] = c.Flatten()
	}
	return replica.Checksum(sn.Disabled, cols)
}

// EncodeFull encodes the current snapshot as a framed full record —
// the bootstrap source a replica.Publisher calls for subscribers too
// far behind its ring. It takes the writer lock so the snapshot and
// the names watermark are read consistently; sinks are called with
// that lock held and must not call back in (replica.Publisher calls
// this outside its own mutex for the same reason).
func (s *Server) EncodeFull() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := s.snap.Load()
	return sn.Version, s.encodeFullLocked(sn), nil
}

// encodeFullLocked encodes sn as a full record. Callers hold s.mu.
func (s *Server) encodeFullLocked(sn *Snapshot) []byte {
	// The names watermark normally already covers every index the
	// columns reference (each publish advances it); advancing here too
	// keeps the invariant even for the very first record.
	required := 0
	for _, d := range s.dests {
		required = maxColWeight(sn.cols[d], required-1) + 1
	}
	if required > s.nameCount {
		s.nameCount = required
	}
	names := make([]string, s.nameCount)
	for i := range names {
		names[i] = value.Format(s.eng.Value(int32(i)))
	}
	f := &replica.Full{
		Version:     sn.Version,
		Fingerprint: s.fingerprint,
		Nodes:       s.base.N,
		Disabled:    sn.Disabled,
		Unconverged: sn.Unconverged,
		Names:       names,
		Kept:        toAnnouncements(s.prefixes.Kept()),
		Suppressed:  toAnnouncements(s.prefixes.Suppressed()),
		Columns:     make([]*rib.Column, 0, len(s.dests)),
	}
	for _, d := range s.dests {
		f.Columns = append(f.Columns, sn.cols[d].Flatten())
	}
	return replica.EncodeFull(f)
}

// encodeDeltaLocked encodes the prev→sn swap as a delta record.
// hints[d], when present, is the sorted candidate set outside which
// DeltaDestColumn transplanted d's slots verbatim — only those nodes
// can differ, so only they are scanned. Destinations rebuilt from
// scratch (no hint) scan every slot. A destination whose diff would
// exceed half its slots ships as a full scratch column instead; one
// whose content did not change at all ships nothing (the follower
// keeps sharing its previous column, which is byte-identical by the
// canonical-layout argument). Callers hold s.mu.
func (s *Server) encodeDeltaLocked(prev, sn *Snapshot, toggles []ArcEvent, hints map[int][]int) []byte {
	d := &replica.Delta{
		FromVersion: prev.Version,
		Version:     sn.Version,
		Fingerprint: s.fingerprint,
		Toggles:     make([]solve.ArcToggle, len(toggles)),
		Unconverged: sn.Unconverged,
	}
	for i, t := range toggles {
		d.Toggles[i] = solve.ArcToggle{Arc: t.Arc, Down: t.Fail}
	}
	maxW := -1
	for _, dest := range s.dests {
		nc, oc := sn.cols[dest], prev.cols[dest]
		if nc == oc {
			continue
		}
		n := nc.NumNodes()
		if oc == nil || oc.NumNodes() != n {
			d.Scratch = append(d.Scratch, nc.Flatten())
			maxW = maxColWeight(nc, maxW)
			continue
		}
		var changes []replica.SlotChange
		scan := func(u int) {
			if slotEqual(nc, oc, u) {
				return
			}
			w, routed := nc.Route(u)
			ch := replica.SlotChange{Node: u, Routed: routed}
			if routed {
				ch.W = w
				if int(w) > maxW {
					maxW = int(w)
				}
				if nh := nc.NextHops(u); len(nh) > 0 {
					ch.NextHop = append([]int32(nil), nh...)
				}
			}
			changes = append(changes, ch)
		}
		if hint, ok := hints[dest]; ok {
			for _, u := range hint {
				scan(u)
			}
		} else {
			for u := 0; u < n; u++ {
				scan(u)
			}
		}
		if len(changes) == 0 && nc.IsConverged() == oc.IsConverged() {
			continue
		}
		if len(changes) > n/2 {
			d.Scratch = append(d.Scratch, nc.Flatten())
			maxW = maxColWeight(nc, maxW)
			continue
		}
		d.Diffs = append(d.Diffs, replica.ColumnDiff{Dest: dest, Converged: nc.IsConverged(), Changes: changes})
	}
	d.NameBase = s.nameCount
	if maxW+1 > s.nameCount {
		d.NamesTail = make([]string, 0, maxW+1-s.nameCount)
		for i := s.nameCount; i <= maxW; i++ {
			d.NamesTail = append(d.NamesTail, value.Format(s.eng.Value(int32(i))))
		}
		s.nameCount = maxW + 1
	}
	return replica.EncodeDelta(d)
}

// maxColWeight folds a column's routed weight indices into a running
// maximum.
func maxColWeight(c rib.Col, cur int) int {
	n := c.NumNodes()
	for u := 0; u < n; u++ {
		if w, ok := c.Route(u); ok && int(w) > cur {
			cur = int(w)
		}
	}
	return cur
}

func toAnnouncements(pos []rib.PrefixOrigin) []replica.Announcement {
	out := make([]replica.Announcement, len(pos))
	for i, po := range pos {
		out[i] = replica.Announcement{Prefix: po.Prefix, Node: po.Node}
	}
	return out
}

// replicate encodes and ships the cur→sn swap. Callers hold s.mu;
// toggles==nil (initial build, explicit rebuild) ships a full record.
func (s *Server) replicate(cur, sn *Snapshot, toggles []ArcEvent, hints map[int][]int) {
	if s.sink == nil {
		return
	}
	var frame []byte
	if toggles == nil || cur == nil {
		frame = s.encodeFullLocked(sn)
		s.repFull.Add(1)
	} else {
		frame = s.encodeDeltaLocked(cur, sn, toggles, hints)
		s.repDelta.Add(1)
	}
	if s.repBytes != nil {
		s.repBytes.Observe(int64(len(frame)))
	}
	if err := s.sink.PublishRecord(sn.Version, frame); err != nil {
		s.repErrors.Add(1)
	}
	// Size-based log rotation: the new segment is seeded with a full
	// checkpoint of the snapshot just published, so it replays on its
	// own. Safe here because s.mu is already held — the sink must not
	// call back into the server, so the rotation driver lives on the
	// leader side.
	if r, ok := s.sink.(LogRotator); ok && r.RotateDue() {
		if err := r.RotateLog(sn.Version, s.encodeFullLocked(sn)); err != nil {
			s.repErrors.Add(1)
		}
	}
}
