package serve

// This file holds the HTTP/JSON API that cmd/mrserve mounts — kept in
// the library so the decoding logic is unit- and fuzz-testable without
// booting the binary. Every endpoint answers JSON; malformed input,
// out-of-range node ids and oversized bodies are 4xx replies, never
// panics (FuzzRouteHandler/FuzzEventHandler assert exactly that).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// maxEventBody bounds POST /event payloads; anything larger is a 4xx.
const maxEventBody = 1 << 20

// RouteReply is the /route response shape.
type RouteReply struct {
	From    int    `json:"from"`
	Dest    int    `json:"dest"`
	Routed  bool   `json:"routed"`
	Weight  string `json:"weight,omitempty"`
	ECMP    []int  `json:"ecmp,omitempty"`
	Path    []int  `json:"path,omitempty"`
	Version uint64 `json:"snapshot_version"`
	Err     string `json:"error,omitempty"`
}

// EventRequest is the POST /event body: either Arc or From/To names the
// link, Kind is "fail" or "up".
type EventRequest struct {
	Arc  *int   `json:"arc,omitempty"`
	From *int   `json:"from,omitempty"`
	To   *int   `json:"to,omitempty"`
	Kind string `json:"kind"`
}

// NewHandler returns the server's HTTP API: /route, /paths, /event
// (GET query params or POST JSON body), /stats, /slowlog and — when reg
// is non-nil — /metrics in Prometheus text format. The returned mux is
// open for extension (cmd/mrserve mounts pprof on it behind -pprof).
func NewHandler(srv *Server, reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	badRequest := func(w http.ResponseWriter, format string, args ...any) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
	}
	intArg := func(req *http.Request, key string) (int, error) {
		v, err := strconv.Atoi(req.URL.Query().Get(key))
		if err != nil {
			return 0, fmt.Errorf("bad or missing %q parameter", key)
		}
		return v, nil
	}
	// nodeArg additionally range-checks against the topology: an id
	// outside [0, N) can never name a node, so it is a client error, not
	// an empty answer.
	nodeArg := func(req *http.Request, key string) (int, error) {
		v, err := intArg(req, key)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= srv.base.N {
			return 0, fmt.Errorf("%q = %d out of range [0,%d)", key, v, srv.base.N)
		}
		return v, nil
	}

	mux.HandleFunc("/route", func(w http.ResponseWriter, req *http.Request) {
		from, err1 := nodeArg(req, "from")
		dest, err2 := nodeArg(req, "dest")
		if err1 != nil || err2 != nil {
			badRequest(w, "want /route?from=U&dest=D: %v", errors.Join(err1, err2))
			return
		}
		sn := srv.Snapshot()
		reply := RouteReply{From: from, Dest: dest, Version: sn.Version}
		if e := srv.Lookup(from, dest); e != nil {
			reply.Routed = true
			reply.Weight = value.Format(e.Weight)
			reply.ECMP = e.NextHops
			if path, err := srv.Forward(from, dest); err == nil {
				reply.Path = path
			} else {
				reply.Err = err.Error()
			}
		}
		writeJSON(w, http.StatusOK, reply)
	})

	mux.HandleFunc("/paths", func(w http.ResponseWriter, req *http.Request) {
		dest, err := nodeArg(req, "dest")
		if err != nil {
			badRequest(w, "want /paths?dest=D: %v", err)
			return
		}
		sn := srv.Snapshot()
		type nodePath struct {
			Node int   `json:"node"`
			Path []int `json:"path,omitempty"`
			Err  string `json:"error,omitempty"`
		}
		var out []nodePath
		for u := 0; u < sn.Graph.N; u++ {
			np := nodePath{Node: u}
			if path, err := sn.Forward(u, dest); err == nil {
				np.Path = path
			} else {
				np.Err = err.Error()
			}
			out = append(out, np)
		}
		writeJSON(w, http.StatusOK, map[string]any{"dest": dest, "version": sn.Version, "paths": out})
	})

	mux.HandleFunc("/event", func(w http.ResponseWriter, req *http.Request) {
		var ev EventRequest
		if req.Method == http.MethodPost {
			body := http.MaxBytesReader(w, req.Body, maxEventBody)
			dec := json.NewDecoder(body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ev); err != nil {
				status := http.StatusBadRequest
				var tooBig *http.MaxBytesError
				if errors.As(err, &tooBig) {
					status = http.StatusRequestEntityTooLarge
				}
				writeJSON(w, status, map[string]string{"error": "bad event body: " + err.Error()})
				return
			}
		} else {
			q := req.URL.Query()
			ev.Kind = q.Get("kind")
			for key, dst := range map[string]**int{"arc": &ev.Arc, "from": &ev.From, "to": &ev.To} {
				if q.Get(key) == "" {
					continue
				}
				v, err := intArg(req, key)
				if err != nil {
					badRequest(w, "%v", err)
					return
				}
				*dst = &v
			}
		}
		if ev.Kind != "fail" && ev.Kind != "up" {
			badRequest(w, "want kind=fail or kind=up")
			return
		}
		fail := ev.Kind == "fail"
		var applied bool
		var recomputed int
		var err error
		switch {
		case ev.Arc != nil:
			applied, recomputed, err = srv.ApplyEvent(*ev.Arc, fail)
		case ev.From != nil && ev.To != nil:
			applied, recomputed, err = srv.ApplyEventEndpoints(*ev.From, *ev.To, fail)
		default:
			badRequest(w, "want arc=A or from=U&to=V")
			return
		}
		if err != nil {
			badRequest(w, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"applied": applied, "recomputed_dests": recomputed,
			"version": srv.Snapshot().Version,
		})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})

	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, req *http.Request) {
		slow := srv.SlowQueries()
		if slow == nil {
			slow = []SlowQuery{}
		}
		writeJSON(w, http.StatusOK, slow)
	})

	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}
