package serve

// This file holds the HTTP/JSON API that cmd/mrserve mounts — kept in
// the library so the decoding logic is unit- and fuzz-testable without
// booting the binary. The API is versioned under /v1/; the original
// unversioned routes remain as thin aliases that answer identically but
// add a Deprecation header pointing at their successor. Every endpoint
// answers JSON; errors use one envelope shape,
//
//	{"error":{"code":"...","message":"..."}}
//
// and malformed input, out-of-range node ids and oversized bodies are
// 4xx replies, never panics (FuzzRouteHandler/FuzzEventHandler assert
// exactly that).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"metarouting/internal/rib"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// maxEventBody bounds POST /v1/events payloads; anything larger is 413.
const maxEventBody = 1 << 20

// Error codes used in the v1 error envelope.
const (
	CodeInvalidArgument = "invalid_argument"
	CodePayloadTooLarge = "payload_too_large"
	CodeBacklogged      = "backlogged"
	CodeTimeout         = "rebuild_timeout"
	CodeVersionBehind   = "version_behind"
	CodeNotReady        = "not_ready"
	CodeReadOnly        = "read_only"
	CodeLegacyRetired   = "legacy_api_retired"
)

// HandlerOption configures NewHandler.
type HandlerOption interface{ applyHandler(*handlerConfig) }

type handlerConfig struct {
	legacyAPI bool
}

type handlerOptionFunc func(*handlerConfig)

func (f handlerOptionFunc) applyHandler(c *handlerConfig) { f(c) }

// WithLegacyAPI re-enables the retired pre-/v1 unversioned aliases
// (/route, /paths, /events, /event, /stats, /slowlog, /metrics). They
// answer byte-identically to their /v1 successors plus Deprecation and
// successor-version Link headers. Without this option the aliases
// answer 404 with the Link header still naming the successor, so
// stragglers get a machine-readable forwarding address instead of a
// silent break; cmd/mrserve exposes it as -legacy-api.
func WithLegacyAPI() HandlerOption {
	return handlerOptionFunc(func(c *handlerConfig) { c.legacyAPI = true })
}

// APIError is the uniform v1 error payload, wrapped as {"error": ...}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON answers v as a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// writeErr answers the uniform v1 error envelope.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]APIError{"error": {Code: code, Message: fmt.Sprintf(format, args...)}})
}

// versionGate implements read-your-version on read endpoints, shared by
// leader and follower handlers: a client that just wrote at version V
// against the leader passes version=V so a follower that has not yet
// applied V answers 404 — with the envelope carrying current_version so
// the client can tell lag from a bad URL — instead of silently serving
// stale routes. An absent parameter always passes; requests at or below
// the current version pass (snapshots are immutable, so any version the
// server has moved past is fully contained in the current one).
func versionGate(w http.ResponseWriter, req *http.Request, current uint64) bool {
	return versionGateValue(w, req.URL.Query().Get("version"), current)
}

// versionGateValue is versionGate over an already-parsed version
// parameter, for handlers that parse the query string once.
func versionGateValue(w http.ResponseWriter, raw string, current uint64) bool {
	if raw == "" {
		return true
	}
	want, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, "bad %q parameter: %v", "version", err)
		return false
	}
	if want > current {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"error": APIError{Code: CodeVersionBehind,
				Message: fmt.Sprintf("snapshot version %d not yet visible here", want)},
			"current_version": current,
		})
		return false
	}
	return true
}

// RouteReply is the /v1/route response shape. Dest is the anchor node
// the query resolved to; for prefix- and address-form queries Query
// echoes the input and Matched names the longest-match announcement
// that answered.
type RouteReply struct {
	From    int    `json:"from"`
	Dest    int    `json:"dest"`
	Query   string `json:"query,omitempty"`
	Matched string `json:"matched_prefix,omitempty"`
	Routed  bool   `json:"routed"`
	Weight  string `json:"weight,omitempty"`
	ECMP    []int  `json:"ecmp,omitempty"`
	Path    []int  `json:"path,omitempty"`
	Version uint64 `json:"snapshot_version"`
	Err     string `json:"error,omitempty"`
}

// routeScratch pools the per-request state of the single-query route
// path: the JSON response buffer (with an encoder bound to it once)
// and the reply's ECMP conversion scratch. GET /v1/route is the
// latency-floor endpoint, so its handler reuses these across requests
// instead of allocating an encoder and fresh slices per call.
type routeScratch struct {
	buf  bytes.Buffer
	enc  *json.Encoder
	ecmp []int
}

var routeScratchPool = sync.Pool{New: func() any {
	rs := &routeScratch{}
	rs.enc = json.NewEncoder(&rs.buf)
	return rs
}}

// writeRouteReply answers a 200 route reply from the pooled buffer —
// byte-identical to writeJSON's encoder output (trailing newline
// included).
func writeRouteReply(w http.ResponseWriter, rs *routeScratch, reply *RouteReply) {
	rs.buf.Reset()
	if err := rs.enc.Encode(reply); err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInvalidArgument, "encoding reply: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(rs.buf.Bytes()) //nolint:errcheck
}

// PrefixReply is one announcement in the /v1/prefixes listing.
type PrefixReply struct {
	Prefix     string `json:"prefix"`
	Node       int    `json:"node"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// EventRequest is one event in a POST /v1/events body: either Arc or
// From/To names the link, Kind is "fail" or "up".
type EventRequest struct {
	Arc  *int   `json:"arc,omitempty"`
	From *int   `json:"from,omitempty"`
	To   *int   `json:"to,omitempty"`
	Kind string `json:"kind"`
}

// EventsRequest is the POST /v1/events batch body. Async selects the
// intake queue (coalesced batched application in the background,
// answering 202; a full queue under the reject policy answers 429)
// instead of the default synchronous batched apply. A bare EventRequest
// object is also accepted and treated as a one-event batch.
type EventsRequest struct {
	Events []EventRequest `json:"events"`
	Async  bool           `json:"async,omitempty"`
}

// EventsReply is the POST /v1/events response: how many arcs actually
// toggled, how many raw events coalesced away, how many destination
// columns were recomputed and the resulting snapshot version. Async
// intake answers Accepted instead.
type EventsReply struct {
	Applied    int    `json:"applied"`
	Coalesced  int    `json:"coalesced,omitempty"`
	Recomputed int    `json:"recomputed_dests"`
	Version    uint64 `json:"version"`
	Accepted   int    `json:"accepted,omitempty"`
}

// NewHandler returns the server's HTTP API: /v1/route, /v1/routes
// (batched, JSON or binary), /v1/paths, /v1/events (GET query params or
// POST JSON body, single or batch), /v1/stats, /v1/slowlog and — when
// reg is non-nil — /v1/metrics in Prometheus text format. The retired
// unversioned aliases answer 404 with a successor-version Link header
// unless WithLegacyAPI re-enables them. The returned mux is open for
// extension (cmd/mrserve mounts pprof on it behind -pprof).
func NewHandler(srv *Server, reg *telemetry.Registry, opts ...HandlerOption) *http.ServeMux {
	var hc handlerConfig
	for _, o := range opts {
		if o != nil {
			o.applyHandler(&hc)
		}
	}
	mux := http.NewServeMux()
	badRequest := func(w http.ResponseWriter, format string, args ...any) {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, format, args...)
	}
	// intArg/nodeArg take the already-parsed query values so handlers
	// parse the query string exactly once per request.
	intArg := func(q url.Values, key string) (int, error) {
		v, err := strconv.Atoi(q.Get(key))
		if err != nil {
			return 0, fmt.Errorf("bad or missing %q parameter", key)
		}
		return v, nil
	}
	// nodeArg additionally range-checks against the topology: an id
	// outside [0, N) can never name a node, so it is a client error, not
	// an empty answer.
	nodeArg := func(q url.Values, key string) (int, error) {
		v, err := intArg(q, key)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= srv.base.N {
			return 0, fmt.Errorf("%q = %d out of range [0,%d)", key, v, srv.base.N)
		}
		return v, nil
	}
	// rebuildCtx derives the context a mutation runs under: the client's,
	// bounded by the server's rebuild deadline when one is configured. A
	// canceled or expired context abandons the recompute and keeps the
	// previous snapshot published.
	rebuildCtx := func(req *http.Request) (context.Context, context.CancelFunc) {
		if d := srv.RebuildTimeout(); d > 0 {
			return context.WithTimeout(req.Context(), d)
		}
		return req.Context(), func() {}
	}

	handleRoute := func(w http.ResponseWriter, req *http.Request) {
		// One query-string parse per request; everything below reads q.
		q := req.URL.Query()
		from, err1 := nodeArg(q, "from")
		if err1 != nil {
			badRequest(w, "want /v1/route?from=U&dest=D (or prefix=P, addr=A): %v", err1)
			return
		}
		sn := srv.Snapshot()
		if !versionGateValue(w, q.Get("version"), sn.Version) {
			return
		}
		rs := routeScratchPool.Get().(*routeScratch)
		defer routeScratchPool.Put(rs)
		reply := RouteReply{From: from, Dest: -1, Version: sn.Version}
		// The destination names either a node id (dest=) or a prefix
		// plane query (prefix=, addr=) resolved by longest match to its
		// anchor node's column.
		var dest int
		switch {
		case q.Get("prefix") != "":
			p, err := rib.ParsePrefix(q.Get("prefix"))
			if err != nil {
				badRequest(w, "%v", err)
				return
			}
			reply.Query = p.String()
			po, ok := sn.MatchPrefix(p)
			if !ok {
				reply.Err = "no announced prefix covers " + p.String()
				writeRouteReply(w, rs, &reply)
				return
			}
			reply.Matched = po.Prefix.String()
			dest = po.Node
		case q.Get("addr") != "":
			addr, err := rib.ParseAddr(q.Get("addr"))
			if err != nil {
				badRequest(w, "%v", err)
				return
			}
			reply.Query = q.Get("addr")
			po, ok := sn.MatchAddr(addr)
			if !ok {
				reply.Err = "no announced prefix covers " + q.Get("addr")
				writeRouteReply(w, rs, &reply)
				return
			}
			reply.Matched = po.Prefix.String()
			dest = po.Node
		default:
			var err2 error
			dest, err2 = nodeArg(q, "dest")
			if err2 != nil {
				badRequest(w, "want /v1/route?from=U&dest=D (or prefix=P, addr=A): %v", err2)
				return
			}
		}
		reply.Dest = dest
		// Resolve index-form against the snapshot column instead of
		// materializing an *Entry — same facts, no per-call entry or
		// next-hop copies. The ECMP set converts into pooled scratch.
		srv.queries.Add(1)
		if c := sn.Column(dest); c != nil {
			if w0, routed := c.Route(from); routed {
				reply.Routed = true
				reply.Weight = value.Format(srv.eng.Value(w0))
				if nh := c.NextHops(from); len(nh) > 0 {
					rs.ecmp = rs.ecmp[:0]
					for _, v := range nh {
						rs.ecmp = append(rs.ecmp, int(v))
					}
					reply.ECMP = rs.ecmp
				}
				if path, err := srv.Forward(from, dest); err == nil {
					reply.Path = path
				} else {
					reply.Err = err.Error()
				}
			}
		}
		writeRouteReply(w, rs, &reply)
	}

	handlePrefixes := func(w http.ResponseWriter, req *http.Request) {
		sn := srv.Snapshot()
		if !versionGate(w, req, sn.Version) {
			return
		}
		pt := sn.Prefixes()
		out := make([]PrefixReply, 0, len(pt.Kept())+len(pt.Suppressed()))
		for _, po := range pt.Kept() {
			out = append(out, PrefixReply{Prefix: po.Prefix.String(), Node: po.Node})
		}
		for _, po := range pt.Suppressed() {
			out = append(out, PrefixReply{Prefix: po.Prefix.String(), Node: po.Node, Suppressed: true})
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version":    sn.Version,
			"trie_nodes": pt.TrieNodes(),
			"prefixes":   out,
		})
	}

	handlePaths := func(w http.ResponseWriter, req *http.Request) {
		dest, err := nodeArg(req.URL.Query(), "dest")
		if err != nil {
			badRequest(w, "want /v1/paths?dest=D: %v", err)
			return
		}
		sn := srv.Snapshot()
		if !versionGate(w, req, sn.Version) {
			return
		}
		type nodePath struct {
			Node int    `json:"node"`
			Path []int  `json:"path,omitempty"`
			Err  string `json:"error,omitempty"`
		}
		var out []nodePath
		for u := 0; u < sn.Graph.N; u++ {
			np := nodePath{Node: u}
			if path, err := sn.Forward(u, dest); err == nil {
				np.Path = path
			} else {
				np.Err = err.Error()
			}
			out = append(out, np)
		}
		writeJSON(w, http.StatusOK, map[string]any{"dest": dest, "version": sn.Version, "paths": out})
	}

	// resolveEvent turns one EventRequest into an ArcEvent, validating
	// kind and arc naming.
	resolveEvent := func(ev EventRequest) (ArcEvent, error) {
		if ev.Kind != "fail" && ev.Kind != "up" {
			return ArcEvent{}, fmt.Errorf("want kind=fail or kind=up")
		}
		switch {
		case ev.Arc != nil:
			if *ev.Arc < 0 || *ev.Arc >= len(srv.base.Arcs) {
				return ArcEvent{}, fmt.Errorf("arc %d out of range [0,%d)", *ev.Arc, len(srv.base.Arcs))
			}
			return ArcEvent{Arc: *ev.Arc, Fail: ev.Kind == "fail"}, nil
		case ev.From != nil && ev.To != nil:
			ai, err := srv.arcByEndpoints(*ev.From, *ev.To)
			if err != nil {
				return ArcEvent{}, err
			}
			return ArcEvent{Arc: ai, Fail: ev.Kind == "fail"}, nil
		}
		return ArcEvent{}, fmt.Errorf("want arc=A or from=U&to=V")
	}

	handleEvents := func(w http.ResponseWriter, req *http.Request) {
		var batch EventsRequest
		if req.Method == http.MethodPost {
			body := http.MaxBytesReader(w, req.Body, maxEventBody)
			raw, err := io.ReadAll(body)
			if err != nil {
				status, code := http.StatusBadRequest, CodeInvalidArgument
				var tooBig *http.MaxBytesError
				if errors.As(err, &tooBig) {
					status, code = http.StatusRequestEntityTooLarge, CodePayloadTooLarge
				}
				writeErr(w, status, code, "bad events body: %v", err)
				return
			}
			if err := decodeEvents(raw, &batch); err != nil {
				badRequest(w, "bad events body: %v", err)
				return
			}
		} else {
			var ev EventRequest
			q := req.URL.Query()
			ev.Kind = q.Get("kind")
			for key, dst := range map[string]**int{"arc": &ev.Arc, "from": &ev.From, "to": &ev.To} {
				if q.Get(key) == "" {
					continue
				}
				v, err := intArg(q, key)
				if err != nil {
					badRequest(w, "%v", err)
					return
				}
				*dst = &v
			}
			batch.Events = []EventRequest{ev}
		}
		if len(batch.Events) == 0 {
			badRequest(w, "empty event batch")
			return
		}
		events := make([]ArcEvent, len(batch.Events))
		for i, ev := range batch.Events {
			ae, err := resolveEvent(ev)
			if err != nil {
				badRequest(w, "event %d: %v", i, err)
				return
			}
			events[i] = ae
		}
		if batch.Async {
			for i, ev := range events {
				if err := srv.EnqueueEvent(ev); err != nil {
					if errors.Is(err, ErrBacklogged) {
						writeErr(w, http.StatusTooManyRequests, CodeBacklogged,
							"intake queue full after %d of %d events", i, len(events))
						return
					}
					badRequest(w, "event %d: %v", i, err)
					return
				}
			}
			writeJSON(w, http.StatusAccepted, EventsReply{Accepted: len(events), Version: srv.Snapshot().Version})
			return
		}
		ctx, cancel := rebuildCtx(req)
		defer cancel()
		applied, recomputed, err := srv.ApplyBatch(ctx, events)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				writeErr(w, http.StatusServiceUnavailable, CodeTimeout,
					"batched rebuild abandoned, previous snapshot kept: %v", err)
				return
			}
			badRequest(w, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, EventsReply{
			Applied:    applied,
			Coalesced:  len(events) - applied,
			Recomputed: recomputed,
			Version:    srv.Snapshot().Version,
		})
	}

	handleStats := func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	}

	handleSlowlog := func(w http.ResponseWriter, req *http.Request) {
		slow := srv.SlowQueries()
		if slow == nil {
			slow = []SlowQuery{}
		}
		writeJSON(w, http.StatusOK, slow)
	}

	// mount registers the v1 route and its retired unversioned alias.
	// With WithLegacyAPI the alias answers identically plus a Deprecation
	// header and a Link to the successor (RFC 8594 successor-version
	// relation); without it the alias is a 404 that still carries the
	// Link header, so old clients learn the forwarding address.
	alias := func(legacy string, v1 string, h http.HandlerFunc) {
		mux.HandleFunc(legacy, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", v1))
			if !hc.legacyAPI {
				writeErr(w, http.StatusNotFound, CodeLegacyRetired,
					"retired legacy endpoint; use %s (or serve with -legacy-api)", v1)
				return
			}
			w.Header().Set("Deprecation", "true")
			h(w, req)
		})
	}
	mount := func(v1 string, legacy string, h http.HandlerFunc) {
		mux.HandleFunc(v1, h)
		alias(legacy, v1, h)
	}

	mount("/v1/route", "/route", handleRoute)
	mux.HandleFunc("/v1/routes", routesHandler(
		func(w http.ResponseWriter, req *http.Request) batchView {
			sn := srv.Snapshot()
			if !versionGate(w, req, sn.Version) {
				return nil
			}
			return leaderBatch{sn: sn, srv: srv}
		},
		func(queries int) {
			srv.batchRequests.Add(1)
			srv.batchQueries.Add(uint64(queries))
			srv.queries.Add(uint64(queries))
		}))
	mux.HandleFunc("/v1/prefixes", handlePrefixes)
	mount("/v1/paths", "/paths", handlePaths)
	mount("/v1/events", "/events", handleEvents)
	alias("/event", "/v1/events", handleEvents) // historical singular form
	mount("/v1/stats", "/stats", handleStats)
	mount("/v1/slowlog", "/slowlog", handleSlowlog)
	if reg != nil {
		metrics := reg.Handler()
		mount("/v1/metrics", "/metrics", func(w http.ResponseWriter, req *http.Request) {
			metrics.ServeHTTP(w, req)
		})
	}
	return mux
}

// decodeEvents accepts either the batch shape {"events":[...]} or a
// bare single EventRequest object (the historical POST /event body).
func decodeEvents(raw []byte, batch *EventsRequest) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(batch); err == nil && ensureOneJSONValue(dec) == nil {
		if batch.Events != nil {
			return nil
		}
	}
	var single EventRequest
	dec = json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&single); err != nil {
		return err
	}
	if err := ensureOneJSONValue(dec); err != nil {
		return err
	}
	*batch = EventsRequest{Events: []EventRequest{single}}
	return nil
}

// ensureOneJSONValue rejects trailing garbage after the decoded value.
func ensureOneJSONValue(dec *json.Decoder) error {
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
