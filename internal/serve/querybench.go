package serve

// This file holds the paired query-plane benchmark behind cmd/mrserve
// -query-bench: the same server, the same host and the same live HTTP
// stack answer two workloads in alternating rounds — single-query GET
// /v1/route with JSON bodies (the baseline every external client paid
// before this plane existed) and batched POST /v1/routes in the binary
// wire codec. Before any timing, a differential pass asserts the batch
// and binary answers carry exactly the routing facts the single JSON
// handler reports, so the speedup line in BENCH_query.json is only ever
// quoted for a protocol that answers identically.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"time"

	"metarouting/internal/serve/wire"
	"metarouting/internal/telemetry"
)

// QueryBenchOptions parameterizes a query-plane benchmark run.
type QueryBenchOptions struct {
	// Batch is the queries per binary POST (default 256).
	Batch int
	// Queries is the queries per measured round per side (default 16384).
	Queries int
	// Rounds is how many alternating single/batch rounds to run
	// (default 3).
	Rounds int
	// Seed drives query choice.
	Seed int64
}

// QueryBenchReport is the measured outcome, committed as
// BENCH_query.json. Batch latencies are amortized per query: the whole
// batch round trip divided by the batch size, which is the number an
// external caller resolving N routes actually experiences per route.
type QueryBenchReport struct {
	Nodes        int `json:"nodes"`
	Destinations int `json:"destinations"`
	BatchSize    int `json:"batch_size"`
	Rounds       int `json:"rounds"`
	GoMaxProcs   int `json:"gomaxprocs"`

	SingleQueries uint64  `json:"single_queries"`
	SingleQPS     float64 `json:"single_qps"`
	SingleP50US   float64 `json:"single_p50_us"`
	SingleP99US   float64 `json:"single_p99_us"`

	BatchQueries uint64  `json:"batch_queries"`
	BatchQPS     float64 `json:"batch_qps"`
	BatchP50US   float64 `json:"batch_p50_us"`
	BatchP99US   float64 `json:"batch_p99_us"`

	// Speedup is BatchQPS / SingleQPS on the same host, same server.
	Speedup float64 `json:"speedup"`
	// DifferentialOK records that the pre-timing equivalence pass held:
	// JSON batch elements byte-identical to single replies, binary
	// answers carrying the same facts, one snapshot version per batch.
	DifferentialOK bool   `json:"differential_ok"`
	Note           string `json:"note"`
}

// QueryBench boots a loopback HTTP listener over the server's live
// handler and runs the paired workloads. The server keeps running.
func QueryBench(s *Server, opts QueryBenchOptions) (*QueryBenchReport, error) {
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.Batch > wire.MaxBatch {
		opts.Batch = wire.MaxBatch
	}
	if opts.Queries <= 0 {
		opts.Queries = 16384
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: NewHandler(s, nil)}
	go hs.Serve(ln) //nolint:errcheck — closed below
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	dests := s.Dests()
	n := s.base.N
	r := rand.New(rand.NewSource(opts.Seed))
	pick := func() (int, int) { return r.Intn(n), dests[r.Intn(len(dests))] }

	diffOK, err := queryBenchDifferential(client, base, s, opts.Batch)
	if err != nil {
		return nil, err
	}

	var singleLats, batchLats []int64
	var singleNS, batchNS int64
	var singleQ, batchQ uint64
	buf := make([]byte, 0, 64<<10)
	qs := make([]wire.Query, 0, opts.Batch)
	for round := 0; round < opts.Rounds; round++ {
		// Single-query side: sequential GETs on one kept-alive connection.
		t0 := time.Now()
		for i := 0; i < opts.Queries; i++ {
			from, dest := pick()
			q0 := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/v1/route?from=%d&dest=%d", base, from, dest))
			if err != nil {
				return nil, err
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("query-bench: single GET status %d", resp.StatusCode)
			}
			singleLats = append(singleLats, time.Since(q0).Nanoseconds())
			singleQ++
		}
		singleNS += time.Since(t0).Nanoseconds()

		// Batched binary side: the same number of queries per round.
		batches := opts.Queries / opts.Batch
		t0 = time.Now()
		for b := 0; b < batches; b++ {
			qs = qs[:0]
			for i := 0; i < opts.Batch; i++ {
				from, dest := pick()
				qs = append(qs, wire.Query{Kind: wire.QueryDest, From: int32(from), Arg: uint32(dest)})
			}
			buf, err = wire.AppendQueryRequest(buf[:0], qs)
			if err != nil {
				return nil, err
			}
			q0 := time.Now()
			resp, err := client.Post(base+"/v1/routes", wire.ContentType, bytes.NewReader(buf))
			if err != nil {
				return nil, err
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("query-bench: binary POST status %d", resp.StatusCode)
			}
			batchLats = append(batchLats, time.Since(q0).Nanoseconds()/int64(opts.Batch))
			batchQ += uint64(opts.Batch)
		}
		batchNS += time.Since(t0).Nanoseconds()
	}

	sq := telemetry.Quantiles(singleLats, 0.50, 0.99)
	bq := telemetry.Quantiles(batchLats, 0.50, 0.99)
	rep := &QueryBenchReport{
		Nodes:          n,
		Destinations:   len(dests),
		BatchSize:      opts.Batch,
		Rounds:         opts.Rounds,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		SingleQueries:  singleQ,
		SingleQPS:      float64(singleQ) / (float64(singleNS) / 1e9),
		SingleP50US:    float64(sq[0]) / 1e3,
		SingleP99US:    float64(sq[1]) / 1e3,
		BatchQueries:   batchQ,
		BatchQPS:       float64(batchQ) / (float64(batchNS) / 1e9),
		BatchP50US:     float64(bq[0]) / 1e3,
		BatchP99US:     float64(bq[1]) / 1e3,
		DifferentialOK: diffOK,
		Note: "paired same host over loopback HTTP (see gomaxprocs for the CPU budget; " +
			"the committed run used one CPU); batch latencies amortized per query " +
			"(frame round trip / batch size); the win is batching + the binary codec " +
			"amortizing HTTP/JSON per-query overhead, not faster route resolution",
	}
	if rep.SingleQPS > 0 {
		rep.Speedup = rep.BatchQPS / rep.SingleQPS
	}
	return rep, nil
}

// queryBenchDifferential asserts, over one mixed batch against the live
// listener, that (1) JSON batch elements are byte-identical to the
// single handler's replies, (2) the binary answers carry the same
// routing facts, and (3) every answer pins one snapshot version.
func queryBenchDifferential(client *http.Client, base string, s *Server, batch int) (bool, error) {
	r := rand.New(rand.NewSource(97))
	dests := s.Dests()
	n := s.base.N
	if batch > 64 {
		batch = 64
	}
	jqs := make([]BatchQuery, batch)
	wqs := make([]wire.Query, batch)
	for i := range jqs {
		from, dest := r.Intn(n), dests[r.Intn(len(dests))]
		d := dest
		jqs[i] = BatchQuery{From: from, Dest: &d}
		wqs[i] = wire.Query{Kind: wire.QueryDest, From: int32(from), Arg: uint32(dest)}
	}

	// Single replies, one per query.
	singles := make([][]byte, batch)
	var pinned uint64
	for i, q := range jqs {
		resp, err := client.Get(fmt.Sprintf("%s/v1/route?from=%d&dest=%d", base, q.From, *q.Dest))
		if err != nil {
			return false, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("query-bench differential: single GET: %v (status %d)", err, resp.StatusCode)
		}
		singles[i] = bytes.TrimSpace(body)
		var rr RouteReply
		if err := json.Unmarshal(body, &rr); err != nil {
			return false, err
		}
		if i == 0 {
			pinned = rr.Version
		} else if rr.Version != pinned {
			return false, fmt.Errorf("query-bench differential: snapshot moved mid-pass")
		}
	}

	// JSON batch: byte identity per element, one version.
	jbody, err := json.Marshal(BatchRequest{Queries: jqs})
	if err != nil {
		return false, err
	}
	resp, err := client.Post(base+"/v1/routes", "application/json", bytes.NewReader(jbody))
	if err != nil {
		return false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("query-bench differential: JSON batch: %v (status %d)", err, resp.StatusCode)
	}
	var breply struct {
		Version uint64            `json:"version"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &breply); err != nil {
		return false, err
	}
	if breply.Version != pinned || len(breply.Results) != batch {
		return false, fmt.Errorf("query-bench differential: batch version %d / %d results", breply.Version, len(breply.Results))
	}
	for i := range breply.Results {
		if !bytes.Equal(bytes.TrimSpace(breply.Results[i]), singles[i]) {
			return false, fmt.Errorf("query-bench differential: JSON element %d diverges from single reply", i)
		}
	}

	// Binary batch: same facts, same version.
	frame, err := wire.AppendQueryRequest(nil, wqs)
	if err != nil {
		return false, err
	}
	resp, err = client.Post(base+"/v1/routes", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		return false, err
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("query-bench differential: binary batch: %v (status %d)", err, resp.StatusCode)
	}
	version, answers, pool, err := wire.DecodeAnswerResponse(body, nil, nil)
	if err != nil {
		return false, err
	}
	if version != pinned || len(answers) != batch {
		return false, fmt.Errorf("query-bench differential: binary version %d / %d answers", version, len(answers))
	}
	for i, a := range answers {
		var rr RouteReply
		if err := json.Unmarshal(singles[i], &rr); err != nil {
			return false, err
		}
		if a.Routed() != rr.Routed || (a.Matched() && int(a.Dest) != rr.Dest) {
			return false, fmt.Errorf("query-bench differential: binary answer %d diverges (%+v vs %+v)", i, a, rr)
		}
		span := pool[a.NhOff : uint32(a.NhOff)+uint32(a.NhLen)]
		if len(span) != len(rr.ECMP) {
			return false, fmt.Errorf("query-bench differential: binary ECMP %d diverges", i)
		}
		for j, nh := range span {
			if int(nh) != rr.ECMP[j] {
				return false, fmt.Errorf("query-bench differential: binary ECMP %d diverges", i)
			}
		}
	}
	return true, nil
}
