package serve

// White-box allocation guard for the binary batch hot path. The serve
// package promises that resolveWireBatch allocates nothing once the
// scratch buffers are warm — that property is what lets the handler
// answer wire batches entirely out of a sync.Pool'd scratch. A
// regression here silently reintroduces per-query garbage at qps scale,
// so the ceiling is pinned to exactly zero, and CI runs this file under
// -race as well.

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve/wire"
	"metarouting/internal/value"
)

func TestResolveWireBatchAllocs(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(rand.New(rand.NewSource(11)), 3, 3, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 8: value.Pair{A: 2, B: 1}}
	srv, err := New(exec.For(a.OT), g, origins, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The interface conversion boxes the two-word leaderBatch once; the
	// handler likewise pins one batchView per request, so only the
	// per-query resolution below must be allocation-free.
	var view batchView = leaderBatch{sn: srv.Snapshot(), srv: srv}

	// Mixed kinds, including unmatched lookups and an unrouted slot, so
	// the guard covers every arm of the resolution switch.
	qs := []wire.Query{
		{Kind: wire.QueryDest, From: 1, Arg: 0},
		{Kind: wire.QueryDest, From: 4, Arg: 8},
		{Kind: wire.QueryDest, From: 1, Arg: 3},
		{Kind: wire.QueryAddr, From: 3, Arg: 10<<24 | 8},
		{Kind: wire.QueryAddr, From: 3, Arg: 10<<24 | 3},
		{Kind: wire.QueryPrefix, From: 6, Arg: 10 << 24, PLen: 32},
		{Kind: wire.QueryPrefix, From: 6, Arg: 10<<24 | 9<<16, PLen: 16},
	}
	as := make([]wire.Answer, 0, len(qs))
	pool := make([]int32, 0, 64)
	// One warm pass grows the append targets to their steady-state
	// capacity; after that every run must reuse them in place.
	if as, pool, err = resolveWireBatch(view, qs, as[:0], pool[:0]); err != nil {
		t.Fatal(err)
	}
	if len(as) != len(qs) {
		t.Fatalf("warm pass answered %d of %d queries", len(as), len(qs))
	}
	n := testing.AllocsPerRun(200, func() {
		var rerr error
		as, pool, rerr = resolveWireBatch(view, qs, as[:0], pool[:0])
		if rerr != nil {
			t.Fatal(rerr)
		}
	})
	if n != 0 {
		t.Fatalf("resolveWireBatch allocates %.1f per batch with warm scratch, want 0", n)
	}
}
