package serve_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/rib"
	"metarouting/internal/scenario"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// randExpr draws a random finite algebra expression (kept small so
// composite carriers stay well under the compile cap).
func randExpr(r *rand.Rand, depth int) string {
	bases := []string{"delay(8,2)", "delay(16,3)", "bw(4)", "bw(8)", "hops(8)", "lp(3)"}
	if depth <= 0 || r.Intn(3) == 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("lex(%s, %s)", randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return fmt.Sprintf("scoped(%s, %s)", randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return fmt.Sprintf("addtop(%s)", randExpr(r, depth-1))
	default:
		return fmt.Sprintf("left(%s)", randExpr(r, depth-1))
	}
}

// randTopo draws one of the three topology families of the acceptance
// criterion: GNP random, ring, grid.
func randTopo(r *rand.Rand, labels int) *graph.Graph {
	switch r.Intn(3) {
	case 0:
		return graph.Random(r, 5+r.Intn(8), 0.3, graph.UniformLabels(labels))
	case 1:
		return graph.Ring(r, 5+r.Intn(8), graph.UniformLabels(labels))
	default:
		return graph.Grid(r, 2+r.Intn(3), 2+r.Intn(3), graph.UniformLabels(labels))
	}
}

func randOrigin(r *rand.Rand, elems []value.V) value.V { return elems[r.Intn(len(elems))] }

// enabledSubgraph builds the "mutated graph" from scratch: a fresh
// graph.New over exactly the enabled arcs (relative order preserved).
func enabledSubgraph(t *testing.T, base *graph.Graph, disabled []bool) *graph.Graph {
	t.Helper()
	var arcs []graph.Arc
	for i, a := range base.Arcs {
		if !disabled[i] {
			arcs = append(arcs, a)
		}
	}
	g, err := graph.New(base.N, arcs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameTables compares the served snapshot against a freshly built RIB,
// entry by entry.
func sameTables(t *testing.T, label string, sn *serve.Snapshot, fresh *rib.RIB, dests []int, n int) {
	t.Helper()
	for _, d := range dests {
		for u := 0; u < n; u++ {
			got, want := sn.Lookup(u, d), fresh.Lookup(u, d)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: entry (%d→%d) differs:\n served: %+v\n  fresh: %+v", label, u, d, got, want)
			}
		}
	}
}

// TestServeDifferentialIncremental is the tentpole acceptance test:
// random finite algebras × GNP/ring/grid topologies, random origination
// sets, random link fail/recover sequences — after every event the
// served snapshot must be bit-identical to a fresh rib.BuildEngine on a
// from-scratch graph holding exactly the enabled arcs.
func TestServeDifferentialIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 25; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue
		}
		g := randTopo(r, a.OT.F.Size())
		elems := a.OT.Carrier().Elems
		origins := map[int]value.V{0: randOrigin(r, elems)}
		for len(origins) < 1+r.Intn(3) {
			origins[r.Intn(g.N)] = randOrigin(r, elems)
		}
		vs := make([]value.V, 0, len(origins))
		for _, v := range origins {
			vs = append(vs, v)
		}
		// The server runs whatever backend exec.For picks; the reference
		// build runs an independent dynamic engine.
		srv, err := serve.New(exec.For(a.OT, vs...), g, origins, serve.WithWorkers(1+r.Intn(4)))
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		disabled := make([]bool, len(g.Arcs))
		label := fmt.Sprintf("trial %d: %s on %s", trial, src, g)
		check := func(step int) {
			fresh, _ := rib.BuildEngine(exec.NewDynamic(a.OT), enabledSubgraph(t, g, disabled), origins)
			sameTables(t, fmt.Sprintf("%s step %d", label, step), srv.Snapshot(), fresh, srv.Dests(), g.N)
		}
		check(-1)
		recomputedTotal := 0
		for step := 0; step < 10; step++ {
			arc := r.Intn(len(g.Arcs))
			fail := !disabled[arc]
			if r.Intn(4) == 0 {
				fail = !fail // sprinkle in no-op events
			}
			applied, recomputed, err := srv.ApplyEvent(context.Background(), arc, fail)
			if err != nil {
				t.Fatalf("%s step %d: %v", label, step, err)
			}
			if applied != (disabled[arc] != fail) {
				t.Fatalf("%s step %d: applied=%v but disabled[%d]=%v fail=%v", label, step, applied, arc, disabled[arc], fail)
			}
			disabled[arc] = fail
			recomputedTotal += recomputed
			check(step)
		}
		// The incremental path must actually skip work sometimes on
		// multi-destination setups; this is a sanity bound, not a perf
		// assertion (10 events × dests is the full-recompute ceiling).
		if max := 10 * len(origins); recomputedTotal > max {
			t.Fatalf("%s: recomputed %d columns > ceiling %d", label, recomputedTotal, max)
		}
		srv.Close()
	}
}

// TestServeConcurrentReaders: readers hammer Lookup/Forward lock-free
// while a writer applies a stream of events; old snapshots stay
// internally consistent. Run under -race in CI.
func TestServeConcurrentReaders(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(r, 4, 4, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 15: value.Pair{A: 4, B: 1}}
	srv, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	held := srv.Snapshot()
	heldPath, heldErr := held.Forward(5, 0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, dest := rr.Intn(g.N), srv.Dests()[rr.Intn(2)]
				srv.Lookup(from, dest)
				srv.Forward(from, dest) //nolint:errcheck
				srv.ECMPWidth(from, dest)
			}
		}(int64(i))
	}
	for step := 0; step < 40; step++ {
		arc := r.Intn(len(g.Arcs))
		if _, _, err := srv.ApplyEvent(context.Background(), arc, step%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The snapshot captured before the event stream is immutable: same
	// answer now as then.
	p2, e2 := held.Forward(5, 0)
	if (heldErr == nil) != (e2 == nil) || !reflect.DeepEqual(heldPath, p2) {
		t.Fatalf("held snapshot mutated: %v/%v then, %v/%v now", heldPath, heldErr, p2, e2)
	}
	if srv.Snapshot().Version < 2 {
		t.Fatal("events must have produced snapshot swaps")
	}
}

// TestServeCounters: the observability counters add up.
func TestServeCounters(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, err := core.InferString("delay(32,4)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(r, 6, graph.UniformLabels(a.OT.F.Size()))
	srv, err := serve.New(exec.For(a.OT), g, map[int]value.V{0: 0, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st := srv.Stats()
	if st.SnapshotVersion != 1 || st.SnapshotSwaps != 1 || st.Destinations != 2 {
		t.Fatalf("fresh server stats wrong: %+v", st)
	}
	srv.Lookup(1, 0)
	srv.Forward(2, 3) //nolint:errcheck
	if got := srv.Stats().Queries; got != 2 {
		t.Fatalf("queries counter: got %d, want 2", got)
	}
	if _, _, err := srv.ApplyEvent(context.Background(), 0, true); err != nil {
		t.Fatal(err)
	}
	if applied, _, err := srv.ApplyEvent(context.Background(), 0, true); err != nil || applied {
		t.Fatalf("duplicate failure must be a no-op (applied=%v err=%v)", applied, err)
	}
	st = srv.Stats()
	if st.EventsApplied != 1 || st.SnapshotSwaps != 2 || st.DisabledArcs != 1 {
		t.Fatalf("post-event stats wrong: %+v", st)
	}
	if st.IncrementalRecomputes+st.FullRecomputes != 1 {
		t.Fatalf("recompute counters wrong: %+v", st)
	}
	if st.DestRecomputes+st.DestReuses != 2 {
		t.Fatalf("dest counters must cover both destinations: %+v", st)
	}
	if err := srv.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.FullRecomputes < 1 || st.SnapshotVersion != 3 {
		t.Fatalf("rebuild stats wrong: %+v", st)
	}
	if _, _, err := srv.ApplyEvent(context.Background(), 99, true); err == nil {
		t.Fatal("out-of-range arc must error")
	}
	if _, _, err := srv.ApplyEventEndpoints(context.Background(), 0, 3, true); err == nil {
		t.Fatal("missing endpoint arc must error")
	}
}

// TestServeDeprecatedOptions: the PR-2 Options struct still works as an
// option value, so pre-v1 positional call sites compile and behave
// unchanged.
func TestServeDeprecatedOptions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, err := core.InferString("delay(32,4)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(r, 6, graph.UniformLabels(a.OT.F.Size()))
	reg := telemetry.NewRegistry()
	srv, err := serve.New(exec.For(a.OT), g, map[int]value.V{0: 0},
		serve.Options{Workers: 2, Telemetry: reg, SlowQueryNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if st := srv.Stats(); st.Workers != 2 {
		t.Fatalf("Options.Workers ignored: %+v", st)
	}
	if _, _, err := srv.ApplyEvent(context.Background(), 0, true); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mrserve_events_applied_total 1") {
		t.Fatal("Options.Telemetry must register the server's metrics")
	}
}

// TestServeFromScenario: a scenario file boots a server, its events
// replay in firing order, and the end state matches a fresh build on the
// final topology.
func TestServeFromScenario(t *testing.T) {
	src := `
expr   delay(64, 4)
nodes  3
arc    1 0 +1
arc    2 1 +1
arc    2 0 +4
dest   0
origin 0
event  50  fail 1 0
event  200 up   1 0
event  300 fail 2 0
`
	sc, err := scenario.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewFromScenario(sc, serve.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	applied, err := srv.Replay(context.Background(), sc.SortedEvents())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("want 3 applied events, got %d", applied)
	}
	// Final topology: arc 1→0 up again, arc 2→0 down.
	disabled := []bool{false, false, true}
	fresh, err := rib.BuildEngine(exec.NewDynamic(sc.Algebra.OT), enabledSubgraph(t, sc.Graph, disabled),
		map[int]value.V{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	sameTables(t, "scenario", srv.Snapshot(), fresh, srv.Dests(), sc.Graph.N)
	// Node 2 lost its direct arc; it must route via 1 with weight 2.
	p, err := srv.Forward(2, 0)
	if err != nil || !reflect.DeepEqual(p, graph.Path{2, 1, 0}) {
		t.Fatalf("post-replay path wrong: %v (%v)", p, err)
	}
}
