package serve_test

// Tests for the prefix destination plane in the serve layer: address-
// and prefix-form route queries must answer bit-identically to the
// node-keyed path, aggregation must suppress same-anchor
// more-specifics, and the snapshot footprint gauges must be visible in
// /v1/stats and /v1/metrics.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/rib"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// prefixServer boots a server over explicit prefix announcements on a
// 16-node ring with a compiled delay algebra.
func prefixServer(t *testing.T, announced []rib.PrefixOrigin, opts ...serve.Option) *serve.Server {
	t.Helper()
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(11)), 16, graph.UniformLabels(a.OT.F.Size()))
	srv, err := serve.NewPrefix(exec.For(a.OT, 0), g, announced, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func mustPrefix(t *testing.T, s string) rib.Prefix {
	t.Helper()
	p, err := rib.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPrefixQueryDifferential is the serve-level acceptance check:
// /v1/route answered via prefix= and addr= must be byte-identical to
// the node-keyed dest= reply (apart from the echoed query fields).
func TestPrefixQueryDifferential(t *testing.T) {
	srv := prefixServer(t, []rib.PrefixOrigin{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Node: 0, Origin: 0},
		{Prefix: mustPrefix(t, "172.16.0.0/12"), Node: 5, Origin: 0},
	})
	h := serve.NewHandler(srv, nil)
	get := func(url string) serve.RouteReply {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body)
		}
		var reply serve.RouteReply
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	for from := 0; from < 16; from++ {
		for _, tc := range []struct {
			dest   int
			prefix string
			addr   string
		}{
			{0, "10.3.0.0/16", "10.99.1.2"},
			{5, "172.16.5.0/24", "172.17.0.9"},
		} {
			node := get(fmt.Sprintf("/v1/route?from=%d&dest=%d", from, tc.dest))
			byPrefix := get(fmt.Sprintf("/v1/route?from=%d&prefix=%s", from, tc.prefix))
			byAddr := get(fmt.Sprintf("/v1/route?from=%d&addr=%s", from, tc.addr))
			for _, got := range []serve.RouteReply{byPrefix, byAddr} {
				if got.Dest != tc.dest || got.Routed != node.Routed || got.Weight != node.Weight ||
					fmt.Sprint(got.ECMP) != fmt.Sprint(node.ECMP) || fmt.Sprint(got.Path) != fmt.Sprint(node.Path) {
					t.Fatalf("from %d: prefix-plane reply %+v diverges from node-keyed %+v", from, got, node)
				}
			}
			if byPrefix.Matched == "" || byAddr.Matched == "" {
				t.Fatalf("prefix-plane replies must echo the matched prefix: %+v / %+v", byPrefix, byAddr)
			}
		}
	}
	// Unannounced space answers routed=false with an explanation, not an
	// HTTP error.
	miss := get("/v1/route?from=1&addr=192.168.0.1")
	if miss.Routed || miss.Err == "" || miss.Dest != -1 {
		t.Fatalf("unannounced address: %+v", miss)
	}
	// Malformed prefixes are 400s.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/route?from=1&prefix=10.0.0.0/40", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad prefix: code %d", rec.Code)
	}
}

// TestPrefixSuppression checks DoubleZero-style aggregation end to
// end: a /32 covered by a same-anchor prefix is suppressed (no extra
// destination column) yet still resolves through the cover.
func TestPrefixSuppression(t *testing.T) {
	srv := prefixServer(t, []rib.PrefixOrigin{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Node: 0, Origin: 0},
		{Prefix: mustPrefix(t, "10.1.2.3/32"), Node: 0, Origin: 0}, // suppressed
		{Prefix: mustPrefix(t, "10.9.0.0/16"), Node: 3, Origin: 0}, // kept: different anchor
	})
	st := srv.Stats()
	if st.Prefixes != 2 || st.SuppressedPrefixes != 1 {
		t.Fatalf("prefixes = %d suppressed = %d, want 2/1", st.Prefixes, st.SuppressedPrefixes)
	}
	if st.Destinations != 2 {
		t.Fatalf("destinations = %d, want 2 (anchors only)", st.Destinations)
	}
	sn := srv.Snapshot()
	if po, ok := sn.MatchAddr(mustPrefix(t, "10.1.2.3").Addr); !ok || po.Node != 0 {
		t.Fatalf("suppressed /32 must resolve through its cover: %+v %v", po, ok)
	}
	if po, ok := sn.MatchAddr(mustPrefix(t, "10.9.1.1").Addr); !ok || po.Node != 3 {
		t.Fatalf("more-specific with a different anchor must win: %+v %v", po, ok)
	}
	// /v1/prefixes lists both kept and suppressed announcements.
	h := serve.NewHandler(srv, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/prefixes", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/prefixes = %d", rec.Code)
	}
	var listing struct {
		TrieNodes int                 `json:"trie_nodes"`
		Prefixes  []serve.PrefixReply `json:"prefixes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Prefixes) != 3 || listing.TrieNodes <= 0 {
		t.Fatalf("listing = %+v", listing)
	}
	suppressed := 0
	for _, p := range listing.Prefixes {
		if p.Suppressed {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Fatalf("listing marks %d suppressed, want 1", suppressed)
	}
}

// TestConflictingAnnouncements pins the validation errors.
func TestConflictingAnnouncements(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(2)), 8, graph.UniformLabels(a.OT.F.Size()))
	if _, err := serve.NewPrefix(exec.For(a.OT, 0), g, []rib.PrefixOrigin{
		{Prefix: rib.MakePrefix(10<<24, 8), Node: 1, Origin: 0},
		{Prefix: rib.MakePrefix(10<<24, 8), Node: 2, Origin: 0},
	}); err == nil {
		t.Fatal("conflicting anchors must error")
	}
	if _, err := serve.NewPrefix(exec.For(a.OT, 0), g, []rib.PrefixOrigin{
		{Prefix: rib.MakePrefix(10<<24, 8), Node: 99, Origin: 0},
	}); err == nil {
		t.Fatal("out-of-range anchor must error")
	}
}

// TestAutoPrefixPlane checks that node-keyed servers get the synthetic
// 10/8 auto-prefix plane for free.
func TestAutoPrefixPlane(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(4)), 12, graph.UniformLabels(a.OT.F.Size()))
	srv, err := serve.New(exec.For(a.OT, 0), g, map[int]value.V{0: 0, 7: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sn := srv.Snapshot()
	if po, ok := sn.MatchAddr(rib.AutoPrefix(7).Addr); !ok || po.Node != 7 {
		t.Fatalf("auto prefix for node 7: %+v %v", po, ok)
	}
	h := serve.NewHandler(srv, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/route?from=3&addr=10.0.0.7", nil))
	var reply serve.RouteReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Dest != 7 || !reply.Routed {
		t.Fatalf("addr-form query on a node-keyed server: %+v", reply)
	}
}

// TestFootprintGauges checks the memory gauges surface in /v1/stats
// and /v1/metrics and stay consistent across an event-driven swap.
func TestFootprintGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := prefixServer(t, []rib.PrefixOrigin{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Node: 0, Origin: 0},
		{Prefix: mustPrefix(t, "11.0.0.0/8"), Node: 5, Origin: 0},
	}, serve.WithRegistry(reg))
	st := srv.Stats()
	sn := srv.Snapshot()
	if st.ArenaBytes <= 0 || st.ArenaBytes != sn.ArenaBytes() {
		t.Fatalf("ArenaBytes = %d (snapshot %d)", st.ArenaBytes, sn.ArenaBytes())
	}
	if st.LiveEntries != 32 { // 2 destinations × 16-node ring, all routed
		t.Fatalf("LiveEntries = %d, want 32", st.LiveEntries)
	}
	if st.TrieNodes <= 0 || st.TrieNodes != sn.TrieNodes() {
		t.Fatalf("TrieNodes = %d (snapshot %d)", st.TrieNodes, sn.TrieNodes())
	}
	h := serve.NewHandler(srv, reg)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	body := rec.Body.String()
	for _, metric := range []string{
		"mrserve_snapshot_arena_bytes",
		"mrserve_snapshot_live_entries",
		"mrserve_snapshot_trie_nodes",
		"mrserve_prefixes",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/v1/metrics missing %s", metric)
		}
	}
}

// TestMeasureScaleSmoke runs the scale bench at toy sizes and checks
// the report shape plus the arena win.
func TestMeasureScaleSmoke(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.Compile(a.OT)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(nodes int) (exec.Algebra, *graph.Graph, map[int]value.V, error) {
		g := graph.ScaleFree(rand.New(rand.NewSource(9)), nodes, 2, graph.UniformLabels(a.OT.F.Size()))
		return eng, g, map[int]value.V{0: 0, nodes / 2: 0}, nil
	}
	rep, err := serve.MeasureScale(mk, []int{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if !p.LPMDifferentialOK {
			t.Fatalf("LPM differential not recorded: %+v", p)
		}
		if p.Entries <= 0 || p.ArenaBytes <= 0 || p.PointerBytes <= 0 {
			t.Fatalf("empty measurement: %+v", p)
		}
		if p.Ratio < 1.5 {
			t.Fatalf("arena ratio %.2f at n=%d — expected a clear win even at toy sizes", p.Ratio, p.Nodes)
		}
	}
}
