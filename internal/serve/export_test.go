package serve

// WithoutBatcher returns an Option that skips starting the intake
// batcher, so tests can fill the queue and exercise the backpressure
// policies deterministically, draining by hand with DrainForTest.
func WithoutBatcher() Option { return optionFunc(func(c *config) { c.noBatcher = true }) }

// DrainForTest runs one batcher drain cycle synchronously: everything
// queued plus the pending coalesced state becomes one applied batch.
func (s *Server) DrainForTest() error { return s.drainAndApply(nil) }
