package serve

// This file measures what delta replication records buy over shipping
// full snapshots: a leader under small-perturbation storms (the
// delta-bench regime — a handful of arcs failed as one batch, restored
// as another) publishes its record stream through a measuring sink
// while a follower applies it, so one run yields the wire-size ratio
// (full snapshot bytes vs delta record bytes), the apply-vs-solve cost
// ratio, and an end-to-end checksum check. cmd/mrserve -replica-bench
// writes the result to BENCH_replica.json.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"metarouting/internal/replica"
)

// ReplicaReport is the replication wire-format measurement.
type ReplicaReport struct {
	Nodes        int    `json:"nodes"`
	Arcs         int    `json:"arcs"`
	Destinations int    `json:"destinations"`
	StormArcs    int    `json:"storm_arcs"`
	Rounds       int    `json:"rounds"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Engine       string `json:"engine"`

	// FullRecords/DeltaRecords count the published stream by kind.
	FullRecords  int `json:"full_records"`
	DeltaRecords int `json:"delta_records"`
	// BytesFullPerRecord is the mean framed size of a full snapshot
	// (the bootstrap record plus one EncodeFull sample per round, so the
	// figure tracks the post-storm table, not just the pristine one).
	BytesFullPerRecord float64 `json:"bytes_full_per_record"`
	// BytesDeltaPerRecord is the mean framed delta record size.
	BytesDeltaPerRecord float64 `json:"bytes_delta_per_record"`
	// FullToDeltaRatio is the headline: how many times smaller the
	// delta records are than shipping a full snapshot per swap.
	FullToDeltaRatio float64 `json:"full_to_delta_ratio"`

	// LeaderBatchUS is the leader's mean cost per storm batch (solve +
	// encode + publish); FollowerApplyUS is the follower's mean cost to
	// decode and apply one record of the same stream.
	LeaderBatchUS   float64 `json:"leader_batch_us"`
	FollowerApplyUS float64 `json:"follower_apply_us"`
	// ApplySpeedup is LeaderBatchUS / FollowerApplyUS — what a read
	// replica saves by applying records instead of re-solving.
	ApplySpeedup float64 `json:"apply_speedup"`

	// ChecksumOK confirms the follower's final routing content digest
	// matched the leader's.
	ChecksumOK bool `json:"checksum_ok"`
}

// benchSink buffers published frames for the measuring loop to drain.
type benchSink struct{ frames [][]byte }

func (b *benchSink) PublishRecord(version uint64, frame []byte) error {
	b.frames = append(b.frames, frame)
	return nil
}

func (b *benchSink) take() [][]byte {
	out := b.frames
	b.frames = nil
	return out
}

// MeasureReplica builds a leader via mk (which must attach the provided
// sink with WithReplication), replays rounds deterministic storms —
// stormArcs distinct arcs failed as one batch, restored as another —
// and applies the captured record stream to a follower, timing both
// sides and weighing the records by kind.
func MeasureReplica(mk func(sink RecordSink) (*Server, error), stormArcs, rounds int, seed int64) (*ReplicaReport, error) {
	if stormArcs <= 0 {
		stormArcs = 4
	}
	if rounds <= 0 {
		rounds = 10
	}
	sink := &benchSink{}
	srv, err := mk(sink)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	if srv.sink == nil {
		return nil, fmt.Errorf("serve: mk must attach the sink with WithReplication")
	}
	if len(srv.base.Arcs) < stormArcs {
		return nil, fmt.Errorf("serve: topology has %d arcs, storm wants %d", len(srv.base.Arcs), stormArcs)
	}

	rep := &ReplicaReport{
		Nodes:        srv.base.N,
		Arcs:         len(srv.base.Arcs),
		Destinations: len(srv.dests),
		StormArcs:    stormArcs,
		Rounds:       rounds,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Engine:       string(srv.eng.Mode()),
	}

	fol := NewFollower(nil)
	var fullBytes, deltaBytes, applyNS int64
	var leaderNS int64
	applyAll := func() error {
		for _, frame := range sink.take() {
			rec, err := replica.DecodeRecord(frame)
			if err != nil {
				return err
			}
			switch rec.Kind {
			case replica.KindFull:
				rep.FullRecords++
				fullBytes += int64(rec.WireBytes)
			case replica.KindDelta:
				rep.DeltaRecords++
				deltaBytes += int64(rec.WireBytes)
			}
			t0 := time.Now()
			if err := fol.Apply(rec); err != nil {
				return err
			}
			applyNS += time.Since(t0).Nanoseconds()
		}
		return nil
	}
	// Bootstrap record from the initial build.
	if err := applyAll(); err != nil {
		return nil, err
	}

	r := rand.New(rand.NewSource(seed))
	batches := 0
	for round := 0; round < rounds; round++ {
		arcs := r.Perm(len(srv.base.Arcs))[:stormArcs]
		for _, fail := range []bool{true, false} {
			batch := make([]ArcEvent, len(arcs))
			for i, a := range arcs {
				batch[i] = ArcEvent{Arc: a, Fail: fail}
			}
			t0 := time.Now()
			if _, _, err := srv.ApplyBatch(context.Background(), batch); err != nil {
				return nil, err
			}
			leaderNS += time.Since(t0).Nanoseconds()
			batches++
			if err := applyAll(); err != nil {
				return nil, err
			}
		}
		// Sample a full snapshot at this round's table so the full-size
		// mean reflects storm-era content, not just the pristine build.
		if _, frame, err := srv.EncodeFull(); err == nil {
			rep.FullRecords++
			fullBytes += int64(len(frame))
		}
	}

	if rep.FullRecords > 0 {
		rep.BytesFullPerRecord = float64(fullBytes) / float64(rep.FullRecords)
	}
	if rep.DeltaRecords > 0 {
		rep.BytesDeltaPerRecord = float64(deltaBytes) / float64(rep.DeltaRecords)
		rep.FullToDeltaRatio = rep.BytesFullPerRecord / rep.BytesDeltaPerRecord
	}
	if batches > 0 {
		rep.LeaderBatchUS = float64(leaderNS) / float64(batches) / 1e3
	}
	if n := rep.FullRecords + rep.DeltaRecords - rounds; n > 0 {
		// Applied records exclude the per-round EncodeFull samples.
		rep.FollowerApplyUS = float64(applyNS) / float64(n) / 1e3
	}
	if rep.FollowerApplyUS > 0 {
		rep.ApplySpeedup = rep.LeaderBatchUS / rep.FollowerApplyUS
	}
	rep.ChecksumOK = fol.Version() == srv.Snapshot().Version && fol.Checksum() == srv.Checksum()
	if !rep.ChecksumOK {
		return rep, fmt.Errorf("serve: follower diverged (v%d crc %08x vs leader v%d crc %08x)",
			fol.Version(), fol.Checksum(), srv.Snapshot().Version, srv.Checksum())
	}
	return rep, nil
}
