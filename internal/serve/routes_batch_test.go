package serve_test

// Tests for the batched query plane (POST /v1/routes). The two load-
// bearing properties are differential: every JSON batch element must be
// byte-identical to what the single /v1/route handler answers for the
// same query at the same snapshot, and the binary codec must carry the
// same routing facts as the JSON form. Both are asserted against live
// handler responses, not against fixtures, so any drift in either
// surface fails loudly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metarouting/internal/rib"
	"metarouting/internal/serve"
	"metarouting/internal/serve/wire"
	"metarouting/internal/telemetry"
)

// postRoutes POSTs a body to /v1/routes under the given content type.
func postRoutes(h http.Handler, contentType string, body []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/routes", bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	h.ServeHTTP(rec, req)
	return rec
}

// batchFixtureQueries covers every query form against httpFixture's 3x3
// grid with origins {0, 8} (synthetic announcements 10.0.0.0/32 and
// 10.0.0.8/32): dest routed, unoriginated and self; addr and prefix
// both matched and uncovered.
func batchFixtureQueries() []serve.BatchQuery {
	d0, d3, d8 := 0, 3, 8
	return []serve.BatchQuery{
		{From: 1, Dest: &d0},
		{From: 4, Dest: &d8},
		{From: 1, Dest: &d3}, // in range but unoriginated: routed=false
		{From: 0, Dest: &d0}, // at the destination itself
		{From: 3, Addr: "10.0.0.8"},
		{From: 3, Addr: "10.0.0.3"}, // no announcement covers it
		{From: 6, Prefix: "10.0.0.0/32"},
		{From: 6, Prefix: "10.9.0.0/16"}, // no announcement covers it
	}
}

// wireFixtureQueries renders batchFixtureQueries in binary form.
func wireFixtureQueries(t testing.TB) []wire.Query {
	t.Helper()
	queries := batchFixtureQueries()
	wqs := make([]wire.Query, len(queries))
	for i, q := range queries {
		switch {
		case q.Prefix != "":
			p, err := rib.ParsePrefix(q.Prefix)
			if err != nil {
				t.Fatal(err)
			}
			wqs[i] = wire.Query{Kind: wire.QueryPrefix, From: int32(q.From), Arg: p.Addr, PLen: p.Len}
		case q.Addr != "":
			addr, err := rib.ParseAddr(q.Addr)
			if err != nil {
				t.Fatal(err)
			}
			wqs[i] = wire.Query{Kind: wire.QueryAddr, From: int32(q.From), Arg: addr}
		default:
			wqs[i] = wire.Query{Kind: wire.QueryDest, From: int32(q.From), Arg: uint32(*q.Dest)}
		}
	}
	return wqs
}

// singleTarget renders the /v1/route query string equivalent of a
// batch query.
func singleTarget(q serve.BatchQuery) string {
	switch {
	case q.Prefix != "":
		return fmt.Sprintf("/v1/route?from=%d&prefix=%s", q.From, q.Prefix)
	case q.Addr != "":
		return fmt.Sprintf("/v1/route?from=%d&addr=%s", q.From, q.Addr)
	default:
		return fmt.Sprintf("/v1/route?from=%d&dest=%d", q.From, *q.Dest)
	}
}

// TestBatchJSONDifferential: a JSON batch answers each query with the
// exact bytes the single handler produces, and the whole batch pins
// one snapshot version.
func TestBatchJSONDifferential(t *testing.T) {
	_, h := httpFixture(t, nil)
	queries := batchFixtureQueries()
	body, err := json.Marshal(serve.BatchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	rec := postRoutes(h, "application/json", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	var reply struct {
		Version uint64            `json:"version"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(reply.Results), len(queries))
	}
	for i, q := range queries {
		single := get(h, singleTarget(q))
		if single.Code != http.StatusOK {
			t.Fatalf("single %s: status %d: %s", singleTarget(q), single.Code, single.Body)
		}
		want := bytes.TrimSpace(single.Body.Bytes())
		if !bytes.Equal(bytes.TrimSpace(reply.Results[i]), want) {
			t.Fatalf("query %d diverges from single handler:\nbatch  %s\nsingle %s",
				i, reply.Results[i], want)
		}
		var rr serve.RouteReply
		if err := json.Unmarshal(reply.Results[i], &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Version != reply.Version {
			t.Fatalf("query %d pinned v%d; batch reports v%d", i, rr.Version, reply.Version)
		}
	}
}

// TestBatchWireDifferential: the binary form answers the same routing
// facts as the JSON batch — matched/routed flags, resolved destination,
// ECMP set and snapshot version all agree query by query.
func TestBatchWireDifferential(t *testing.T) {
	srv, h := httpFixture(t, nil)
	queries := batchFixtureQueries()
	frame, err := wire.AppendQueryRequest(nil, wireFixtureQueries(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := postRoutes(h, wire.ContentType, frame)
	if rec.Code != http.StatusOK {
		t.Fatalf("wire batch status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("response content type %q, want %q", ct, wire.ContentType)
	}
	version, answers, pool, err := wire.DecodeAnswerResponse(rec.Body.Bytes(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != srv.Snapshot().Version {
		t.Fatalf("wire version %d, snapshot %d", version, srv.Snapshot().Version)
	}
	if len(answers) != len(queries) {
		t.Fatalf("got %d answers for %d queries", len(answers), len(queries))
	}
	for i, q := range queries {
		var rr serve.RouteReply
		single := get(h, singleTarget(q))
		if err := json.Unmarshal(single.Body.Bytes(), &rr); err != nil {
			t.Fatal(err)
		}
		a := answers[i]
		matched := q.Dest != nil || rr.Matched != ""
		if a.Matched() != matched {
			t.Fatalf("query %d: wire matched=%v, JSON %+v", i, a.Matched(), rr)
		}
		if a.Routed() != rr.Routed {
			t.Fatalf("query %d: wire routed=%v, JSON routed=%v", i, a.Routed(), rr.Routed)
		}
		if a.Matched() && int(a.Dest) != rr.Dest {
			t.Fatalf("query %d: wire dest=%d, JSON dest=%d", i, a.Dest, rr.Dest)
		}
		span := pool[a.NhOff : uint32(a.NhOff)+uint32(a.NhLen)]
		if len(span) != len(rr.ECMP) {
			t.Fatalf("query %d: wire ECMP %v, JSON ECMP %v", i, span, rr.ECMP)
		}
		for j, nh := range span {
			if int(nh) != rr.ECMP[j] {
				t.Fatalf("query %d: wire ECMP %v, JSON ECMP %v", i, span, rr.ECMP)
			}
		}
	}
}

// TestBatchErrors: malformed batches are client errors with the
// uniform envelope, never 5xx or panics.
func TestBatchErrors(t *testing.T) {
	_, h := httpFixture(t, nil)
	if rec := get(h, "/v1/routes"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", rec.Code)
	}
	jsonCases := []string{
		``, `{`, `[]`,
		`{"queries":[]}`,
		`{"queries":[{"from":999,"dest":0}]}`,
		`{"queries":[{"from":1,"dest":99}]}`,
		`{"queries":[{"from":1}]}`,
		`{"queries":[{"from":1,"dest":0,"extra":1}]}`,
		`{"queries":[{"from":1,"addr":"not-an-addr"}]}`,
		`{"queries":[{"from":1,"prefix":"10.0.0.0/64"}]}`,
	}
	for _, body := range jsonCases {
		rec := postRoutes(h, "application/json", []byte(body))
		if rec.Code < 400 || rec.Code >= 500 {
			t.Fatalf("JSON body %q: status %d, want 4xx", body, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Fatalf("JSON body %q: missing error envelope: %s", body, rec.Body)
		}
	}
	// An oversized batch is rejected by count before any resolution.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= wire.MaxBatch; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"from":1,"dest":0}`)
	}
	sb.WriteString(`]}`)
	if rec := postRoutes(h, "application/json", []byte(sb.String())); rec.Code < 400 || rec.Code >= 500 {
		t.Fatalf("oversized batch: status %d, want 4xx", rec.Code)
	}
	// Binary garbage: truncated frames, corrupt CRC, non-frames.
	good, err := wire.AppendQueryRequest(nil, []wire.Query{{Kind: wire.QueryDest, From: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff // break the CRC
	wireCases := [][]byte{nil, good[:3], good[:len(good)-2], bad, []byte("not a frame")}
	for i, body := range wireCases {
		rec := postRoutes(h, wire.ContentType, body)
		if rec.Code < 400 || rec.Code >= 500 {
			t.Fatalf("wire case %d: status %d, want 4xx: %s", i, rec.Code, rec.Body)
		}
	}
	// Out-of-range nodes fail the whole binary frame: the binary
	// protocol is machine-generated, so a bad query is a client bug.
	oob, err := wire.AppendQueryRequest(nil, []wire.Query{{Kind: wire.QueryDest, From: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := postRoutes(h, wire.ContentType, oob); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range wire query: status %d, want 400", rec.Code)
	}
}

// TestQueryBenchSmoke: the paired query benchmark runs end to end on a
// live loopback listener and its differential pass holds.
func TestQueryBenchSmoke(t *testing.T) {
	srv, _ := httpFixture(t, nil)
	rep, err := serve.QueryBench(srv, serve.QueryBenchOptions{Batch: 16, Queries: 64, Rounds: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DifferentialOK {
		t.Fatal("differential pass must hold")
	}
	if rep.SingleQueries != 64 || rep.BatchQueries != 64 {
		t.Fatalf("query counts wrong: single=%d batch=%d", rep.SingleQueries, rep.BatchQueries)
	}
	if rep.SingleQPS <= 0 || rep.BatchQPS <= 0 || rep.Speedup <= 0 {
		t.Fatalf("rates must be positive: %+v", rep)
	}
}

// TestBatchTelemetry: the batch counters advance per request and per
// query, on both content types.
func TestBatchTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, h := httpFixture(t, reg)
	d0 := 0
	body, err := json.Marshal(serve.BatchRequest{Queries: []serve.BatchQuery{
		{From: 1, Dest: &d0}, {From: 2, Dest: &d0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := postRoutes(h, "application/json", body); rec.Code != http.StatusOK {
		t.Fatalf("JSON batch: status %d: %s", rec.Code, rec.Body)
	}
	frame, err := wire.AppendQueryRequest(nil, []wire.Query{{Kind: wire.QueryDest, From: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := postRoutes(h, wire.ContentType, frame); rec.Code != http.StatusOK {
		t.Fatalf("wire batch: status %d: %s", rec.Code, rec.Body)
	}
	st := srv.Stats()
	if st.BatchRequests != 2 || st.BatchQueries != 3 {
		t.Fatalf("batch counters: requests=%d queries=%d, want 2/3", st.BatchRequests, st.BatchQueries)
	}
}
