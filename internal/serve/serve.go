// Package serve is the long-lived route-query service layered on the
// unified execution layer: it owns per-destination route tables, answers
// concurrent Lookup/Forward queries lock-free against an immutable
// snapshot, and reconverges incrementally when topology events arrive.
//
// The design is RCU-style. A worker pool (each worker holding a reusable
// solve.Workspace) computes per-destination entry columns in parallel;
// the columns are assembled into a Snapshot and swapped in atomically,
// so readers racing a rebuild keep the previous snapshot and are never
// blocked. Topology events recompute only destinations whose routes the
// event can actually touch: destination d is skipped when the event's
// arc leaves d itself (the fixpoint solver never consults the
// destination's out-arcs) or when the arc's head has no route toward d
// in the current snapshot (then the arc never contributed a candidate in
// any solver round — routedness on a static graph only grows — so the
// from-scratch trajectory on the mutated graph is unchanged). Skipped
// columns are shared with the previous snapshot by reference; the
// differential tests assert every incremental snapshot is bit-identical
// to a fresh rib.BuildEngine on the mutated graph.
//
// Reconvergence after arbitrary topology change is exactly what
// increasing algebras guarantee (Daggitt & Griffin, PAPERS.md); for
// non-increasing algebras a destination may fail to converge within the
// solver budget, which the snapshot reports instead of hiding.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/scenario"
	"metarouting/internal/solve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the snapshot builder's worker pool (≤ 0: 4).
	Workers int
	// Telemetry, when non-nil, registers the server's metrics (counters,
	// convergence gauges, query/reconvergence latency histograms,
	// per-solve timings) under the mrserve_ prefix and enables the
	// slow-query log. Query latencies are sampled 1-in-16 (see
	// querySampleMask) so the timing cost stays inside the overhead
	// budget. With a nil registry the server keeps only its bare
	// counters — the Stats JSON shape is identical either way, and the
	// query path pays zero timing overhead.
	Telemetry *telemetry.Registry
	// SlowQueryNS is the slow-query log threshold in nanoseconds
	// (≤ 0: 1ms). Only meaningful with Telemetry set.
	SlowQueryNS int64
}

// Snapshot is one immutable generation of route tables. All methods are
// safe for concurrent use; a snapshot never changes after publication,
// so a reader holding one sees a consistent view regardless of how many
// events the server has absorbed since.
type Snapshot struct {
	// Version increments with every swap (the initial build is 1).
	Version uint64
	// Graph is the topology view the snapshot was computed on (arcs
	// disabled by events are masked out; indices match the base graph).
	Graph *graph.Graph
	// Disabled records the per-arc failure state at build time.
	Disabled []bool
	// Unconverged lists destinations whose fixpoint did not settle
	// within the solver budget (possible for non-increasing algebras).
	Unconverged []int

	table map[int][]*rib.Entry
	rib   *rib.RIB
}

// RIB exposes the snapshot's route table.
func (sn *Snapshot) RIB() *rib.RIB { return sn.rib }

// Lookup returns node's entry toward dest (nil when unrouted/unknown).
func (sn *Snapshot) Lookup(node, dest int) *rib.Entry { return sn.rib.Lookup(node, dest) }

// Forward resolves the forwarding path from a node toward dest.
func (sn *Snapshot) Forward(from, dest int) (graph.Path, error) { return sn.rib.Forward(from, dest) }

// ECMPWidth returns the equal-cost next-hop count at node toward dest.
func (sn *Snapshot) ECMPWidth(node, dest int) int { return sn.rib.ECMPWidth(node, dest) }

// Stats is a point-in-time reading of the server's counters — the seed
// of the observability layer, surfaced at /stats and in BENCH_serve.json.
type Stats struct {
	Queries               uint64 `json:"queries"`
	SnapshotSwaps         uint64 `json:"snapshot_swaps"`
	EventsApplied         uint64 `json:"events_applied"`
	IncrementalRecomputes uint64 `json:"incremental_recomputes"`
	FullRecomputes        uint64 `json:"full_recomputes"`
	DestRecomputes        uint64 `json:"dest_recomputes"`
	DestReuses            uint64 `json:"dest_reuses"`
	SnapshotVersion       uint64 `json:"snapshot_version"`
	Destinations          int    `json:"destinations"`
	Nodes                 int    `json:"nodes"`
	Arcs                  int    `json:"arcs"`
	DisabledArcs          int    `json:"disabled_arcs"`
	Engine                string `json:"engine"`
	Workers               int    `json:"workers"`
}

// Server owns route state for a fixed origination set and serves
// concurrent queries against atomically swapped snapshots. Queries
// (Lookup, Forward, Snapshot) never take the writer lock; events and
// rebuilds serialize on it.
type Server struct {
	eng     exec.Algebra
	base    *graph.Graph
	origins map[int]value.V
	dests   []int // sorted, for deterministic build order
	workers int

	mu       sync.Mutex // serializes topology mutation + publication
	disabled []bool
	closed   bool

	snap atomic.Pointer[Snapshot]

	tasks chan func(*solve.Workspace)
	wg    sync.WaitGroup

	queries, swaps, events     telemetry.Counter
	incremental, full          telemetry.Counter
	destRecomputes, destReuses telemetry.Counter

	// Instrumentation below is nil/zero unless Options.Telemetry was set.
	flaps        telemetry.Counter // route entries changed across swaps
	queryNS      *telemetry.Histogram
	eventNS      *telemetry.Histogram
	lastEventNS  telemetry.Gauge
	solveMetrics *solve.Metrics
	slowNS       int64
	slow         *telemetry.Ring[SlowQuery]
}

// SlowQuery is one record in the slow-query log: a Forward resolution
// that crossed the Options.SlowQueryNS threshold.
type SlowQuery struct {
	From    int    `json:"from"`
	Dest    int    `json:"dest"`
	NS      int64  `json:"ns"`
	Version uint64 `json:"snapshot_version"`
}

// New builds a server over an execution engine, a base topology and the
// origination set (destination → originated weight), computes the
// initial snapshot with the worker pool and publishes it. The engine is
// wrapped with exec.Concurrent, so a dynamic backend may be handed in
// directly. Destinations that do not converge within the solver budget
// are reported in the snapshot, not as an error.
func New(eng exec.Algebra, g *graph.Graph, origins map[int]value.V, opts Options) (*Server, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("serve: no destinations originated")
	}
	dests := make([]int, 0, len(origins))
	for d, origin := range origins {
		if d < 0 || d >= g.N {
			return nil, fmt.Errorf("serve: destination %d out of range [0,%d)", d, g.N)
		}
		if _, err := eng.Intern(origin); err != nil {
			return nil, fmt.Errorf("serve: destination %d: %v", d, err)
		}
		dests = append(dests, d)
	}
	sort.Ints(dests)
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	s := &Server{
		eng:      exec.Concurrent(eng),
		base:     g,
		origins:  origins,
		dests:    dests,
		workers:  workers,
		disabled: make([]bool, len(g.Arcs)),
		tasks:    make(chan func(*solve.Workspace)),
	}
	if opts.Telemetry != nil {
		s.queryNS = telemetry.NewLatencyHistogram()
		s.eventNS = telemetry.NewLatencyHistogram()
		s.solveMetrics = solve.NewMetrics()
		s.slowNS = opts.SlowQueryNS
		if s.slowNS <= 0 {
			s.slowNS = int64(time.Millisecond)
		}
		s.slow = telemetry.NewRing[SlowQuery](128)
		s.register(opts.Telemetry)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ws := solve.NewWorkspace()
			ws.Metrics = s.solveMetrics
			for fn := range s.tasks {
				fn(ws)
			}
		}()
	}
	view := g.MaskArcs(s.disabled)
	table, unconv, err := s.buildDests(view, dests, nil)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.publish(view, table, unconv)
	return s, nil
}

// register exposes the server's metrics in reg. Called once from New;
// the gauge funcs read live server state at scrape time.
func (s *Server) register(reg *telemetry.Registry) {
	reg.AddCounter("mrserve_queries_total", "Route queries served (Lookup, Forward, ECMPWidth).", &s.queries)
	reg.AddCounter("mrserve_snapshot_swaps_total", "Snapshots published.", &s.swaps)
	reg.AddCounter("mrserve_events_applied_total", "Topology events that changed the graph.", &s.events)
	reg.AddCounter(`mrserve_recomputes_total{kind="incremental"}`, "Snapshot builds by kind.", &s.incremental)
	reg.AddCounter(`mrserve_recomputes_total{kind="full"}`, "", &s.full)
	reg.AddCounter("mrserve_dest_recomputes_total", "Destination columns recomputed.", &s.destRecomputes)
	reg.AddCounter("mrserve_dest_reuses_total", "Destination columns shared with the previous snapshot.", &s.destReuses)
	reg.AddCounter("mrserve_route_flaps_total", "Route entries that changed across snapshot swaps.", &s.flaps)
	reg.AddGaugeFunc("mrserve_snapshot_version", "Version of the published snapshot.", func() float64 {
		if sn := s.snap.Load(); sn != nil {
			return float64(sn.Version)
		}
		return 0
	})
	reg.AddGaugeFunc("mrserve_convergence_unconverged_destinations",
		"Destinations whose fixpoint did not settle in the published snapshot.", func() float64 {
			if sn := s.snap.Load(); sn != nil {
				return float64(len(sn.Unconverged))
			}
			return 0
		})
	reg.AddGaugeFunc("mrserve_convergence_last_event_seconds",
		"Reconvergence time of the most recent applied topology event.", func() float64 {
			return float64(s.lastEventNS.Load()) / 1e9
		})
	reg.AddGaugeFunc("mrserve_disabled_arcs", "Arcs currently failed.", func() float64 {
		n := 0
		if sn := s.snap.Load(); sn != nil {
			for _, d := range sn.Disabled {
				if d {
					n++
				}
			}
		}
		return float64(n)
	})
	reg.AddGaugeFunc("mrserve_destinations", "Originated destinations.", func() float64 { return float64(len(s.dests)) })
	reg.AddGaugeFunc("mrserve_nodes", "Topology node count.", func() float64 { return float64(s.base.N) })
	reg.AddGaugeFunc("mrserve_arcs", "Topology arc count.", func() float64 { return float64(len(s.base.Arcs)) })
	reg.AddGaugeFunc("mrserve_workers", "Snapshot builder worker pool size.", func() float64 { return float64(s.workers) })
	reg.AddHistogram("mrserve_query_seconds", "Per-query latency (a Forward resolution).", s.queryNS, 1e9)
	reg.AddHistogram("mrserve_convergence_event_seconds",
		"Reconvergence latency per applied topology event (recompute + snapshot swap).", s.eventNS, 1e9)
	s.solveMetrics.Register(reg, "mrserve_solve")
}

// NewFromScenario builds a server from a parsed scenario: its engine,
// topology, and single origination. Replay the scenario's events with
// Replay(sc.SortedEvents()).
func NewFromScenario(sc *scenario.Scenario, opts Options) (*Server, error) {
	return New(sc.Engine, sc.Graph, map[int]value.V{sc.Dest: sc.Origin}, opts)
}

// Close stops the worker pool. The current snapshot stays readable, but
// ApplyEvent/Rebuild must not be called afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.tasks)
	s.wg.Wait()
}

// buildDests computes entry columns for the recompute set on view,
// sharding destinations across the worker pool; columns for every other
// destination are shared with prev by reference (they are immutable).
func (s *Server) buildDests(view *graph.Graph, recompute []int, prev map[int][]*rib.Entry) (map[int][]*rib.Entry, []int, error) {
	table := make(map[int][]*rib.Entry, len(s.dests))
	if prev != nil {
		inRecompute := make(map[int]bool, len(recompute))
		for _, d := range recompute {
			inRecompute[d] = true
		}
		for d, col := range prev {
			if !inRecompute[d] {
				table[d] = col
			}
		}
	}
	type built struct {
		entries   []*rib.Entry
		converged bool
		err       error
	}
	results := make([]built, len(recompute))
	var wg sync.WaitGroup
	for i, d := range recompute {
		i, d := i, d
		wg.Add(1)
		s.tasks <- func(ws *solve.Workspace) {
			defer wg.Done()
			entries, converged, err := rib.BuildDestEngine(s.eng, view, d, s.origins[d], ws)
			results[i] = built{entries: entries, converged: converged, err: err}
		}
	}
	wg.Wait()
	var unconverged []int
	for i, d := range recompute {
		if results[i].err != nil {
			return nil, nil, results[i].err
		}
		if !results[i].converged {
			unconverged = append(unconverged, d)
		}
		table[d] = results[i].entries
	}
	sort.Ints(unconverged)
	return table, unconverged, nil
}

// publish swaps in a new snapshot built from table. Callers hold s.mu.
func (s *Server) publish(view *graph.Graph, table map[int][]*rib.Entry, unconverged []int) {
	var version uint64 = 1
	if cur := s.snap.Load(); cur != nil {
		version = cur.Version + 1
		if s.queryNS != nil {
			s.flaps.Add(countFlaps(cur.table, table))
		}
	}
	sn := &Snapshot{
		Version:     version,
		Graph:       view,
		Disabled:    append([]bool(nil), s.disabled...),
		Unconverged: unconverged,
		table:       table,
		rib:         rib.FromEntries(s.eng, view, table),
	}
	s.snap.Store(sn)
	s.swaps.Add(1)
}

// countFlaps compares recomputed columns against their predecessors and
// counts entries that actually changed (weight or ECMP set) — the
// route-flap reading behind mrserve_route_flaps_total. Columns shared
// by reference (skipped destinations) are recognized and cost nothing;
// the comparison of recomputed columns is O(N) per column, the same
// order as the recompute that produced them.
func countFlaps(prev, next map[int][]*rib.Entry) uint64 {
	var flaps uint64
	for d, col := range next {
		old, ok := prev[d]
		if !ok || len(col) == 0 || len(old) != len(col) {
			continue
		}
		if &old[0] == &col[0] {
			continue // shared column: untouched by this swap
		}
		for u := range col {
			if !entryEqual(col[u], old[u]) {
				flaps++
			}
		}
	}
	return flaps
}

func entryEqual(a, b *rib.Entry) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Weight != b.Weight || len(a.NextHops) != len(b.NextHops) {
		return false
	}
	for i := range a.NextHops {
		if a.NextHops[i] != b.NextHops[i] {
			return false
		}
	}
	return true
}

// ApplyEvent applies a link failure (fail=true) or recovery to the arc
// with the given index, recomputing only invalidated destinations, and
// publishes the resulting snapshot. It reports whether the event changed
// anything (re-failing a failed arc is a no-op) and how many
// destinations were recomputed. Readers are never blocked: they keep
// resolving against the previous snapshot until the swap.
func (s *Server) ApplyEvent(arc int, fail bool) (applied bool, recomputed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, 0, fmt.Errorf("serve: server is closed")
	}
	if arc < 0 || arc >= len(s.base.Arcs) {
		return false, 0, fmt.Errorf("serve: arc %d out of range [0,%d)", arc, len(s.base.Arcs))
	}
	if s.disabled[arc] == fail {
		return false, 0, nil
	}
	var t0 time.Time
	if s.eventNS != nil {
		t0 = time.Now()
	}
	cur := s.snap.Load()
	s.disabled[arc] = fail
	view := cur.Graph.WithArcToggled(arc, s.disabled)
	a := s.base.Arcs[arc]
	var recompute []int
	for _, d := range s.dests {
		// Sound skips (see the package comment): the solver never
		// consults the destination's own out-arcs, and an arc whose head
		// holds no route toward d never contributes a candidate in any
		// round of a from-scratch run.
		if a.From == d || cur.rib.Lookup(a.To, d) == nil {
			continue
		}
		recompute = append(recompute, d)
	}
	table, unconv, err := s.buildDests(view, recompute, cur.table)
	if err != nil {
		s.disabled[arc] = !fail
		return false, 0, err
	}
	s.publish(view, table, unconv)
	s.events.Add(1)
	if len(recompute) == len(s.dests) {
		s.full.Add(1)
	} else {
		s.incremental.Add(1)
	}
	s.destRecomputes.Add(uint64(len(recompute)))
	s.destReuses.Add(uint64(len(s.dests) - len(recompute)))
	if s.eventNS != nil {
		ns := time.Since(t0).Nanoseconds()
		s.eventNS.Observe(ns)
		s.lastEventNS.Set(ns)
	}
	return true, len(recompute), nil
}

// ApplyEventEndpoints is ApplyEvent with the arc named by its endpoints
// (the form HTTP clients and scenario files use).
func (s *Server) ApplyEventEndpoints(from, to int, fail bool) (bool, int, error) {
	for ai, a := range s.base.Arcs {
		if a.From == from && a.To == to {
			return s.ApplyEvent(ai, fail)
		}
	}
	return false, 0, fmt.Errorf("serve: no arc %d → %d", from, to)
}

// Replay applies topology events in firing order (protocol.LinkEvent.At
// ascending) and returns how many changed the topology.
func (s *Server) Replay(events []protocol.LinkEvent) (applied int, err error) {
	evs := append([]protocol.LinkEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ok, _, err := s.ApplyEvent(ev.Arc, ev.Fail)
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// Rebuild recomputes every destination from scratch on the current
// topology and publishes the result — the full-rebuild baseline the
// incremental path is benchmarked against.
func (s *Server) Rebuild() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server is closed")
	}
	view := s.base.MaskArcs(s.disabled)
	table, unconv, err := s.buildDests(view, s.dests, nil)
	if err != nil {
		return err
	}
	s.publish(view, table, unconv)
	s.full.Add(1)
	s.destRecomputes.Add(uint64(len(s.dests)))
	return nil
}

// Snapshot returns the current snapshot (never nil after New).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Dests lists the originated destinations in ascending order.
func (s *Server) Dests() []int { return append([]int(nil), s.dests...) }

// Lookup resolves node's entry toward dest against the current snapshot,
// lock-free.
func (s *Server) Lookup(node, dest int) *rib.Entry {
	s.queries.Add(1)
	return s.snap.Load().Lookup(node, dest)
}

// querySampleMask selects which queries are timed when telemetry is
// enabled: every (mask+1)-th query (per the shared counter) pays the
// two clock reads and the histogram observe, the rest run bare. A
// resolution is fast enough (hundreds of ns on compiled engines) that
// unsampled timing would cost more than the 10 % overhead budget
// allows; 1-in-16 sampling keeps the histogram statistically faithful —
// the sample index is decoupled from query content — at a sixteenth of
// the cost. The slow-query log sees sampled queries only.
const querySampleMask = 15

// Forward resolves the forwarding path from a node toward dest against
// the current snapshot, lock-free. This is the instrumented query path:
// with telemetry enabled every querySampleMask+1-th resolution lands in
// the query latency histogram, and sampled resolutions over the
// slow-query threshold are logged.
func (s *Server) Forward(from, dest int) (graph.Path, error) {
	n := s.queries.Add(1)
	if s.queryNS == nil || n&querySampleMask != 0 {
		return s.snap.Load().Forward(from, dest)
	}
	t0 := time.Now()
	sn := s.snap.Load()
	p, err := sn.Forward(from, dest)
	ns := time.Since(t0).Nanoseconds()
	s.queryNS.Observe(ns)
	if ns >= s.slowNS {
		s.slow.Push(SlowQuery{From: from, Dest: dest, NS: ns, Version: sn.Version})
	}
	return p, err
}

// SlowQueries returns the retained slow-query log, oldest first (empty
// without telemetry).
func (s *Server) SlowQueries() []SlowQuery {
	if s.slow == nil {
		return nil
	}
	return s.slow.Items()
}

// ECMPWidth returns the equal-cost next-hop count at node toward dest in
// the current snapshot, lock-free.
func (s *Server) ECMPWidth(node, dest int) int {
	s.queries.Add(1)
	return s.snap.Load().ECMPWidth(node, dest)
}

// Stats reads the counters.
func (s *Server) Stats() Stats {
	sn := s.snap.Load()
	disabled := 0
	for _, d := range sn.Disabled {
		if d {
			disabled++
		}
	}
	return Stats{
		Queries:               s.queries.Load(),
		SnapshotSwaps:         s.swaps.Load(),
		EventsApplied:         s.events.Load(),
		IncrementalRecomputes: s.incremental.Load(),
		FullRecomputes:        s.full.Load(),
		DestRecomputes:        s.destRecomputes.Load(),
		DestReuses:            s.destReuses.Load(),
		SnapshotVersion:       sn.Version,
		Destinations:          len(s.dests),
		Nodes:                 s.base.N,
		Arcs:                  len(s.base.Arcs),
		DisabledArcs:          disabled,
		Engine:                string(s.eng.Mode()),
		Workers:               s.workers,
	}
}
