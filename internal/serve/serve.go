// Package serve is the long-lived route-query service layered on the
// unified execution layer: it owns per-destination route tables, answers
// concurrent Lookup/Forward queries lock-free against an immutable
// snapshot, and reconverges incrementally when topology events arrive.
//
// The design is RCU-style. A sched.Pool worker pool (each worker holding
// a reusable solve.Workspace) computes per-destination entry columns in
// parallel — the per-destination DBF computations are independent
// (Daggitt & Griffin, PAPERS.md), so destinations shard freely across
// workers; the columns are assembled into a Snapshot and swapped in
// atomically, so readers racing a rebuild keep the previous snapshot and
// are never blocked. Topology events recompute only destinations whose
// routes the event can actually touch: destination d is skipped when the
// event's arc leaves d itself (the fixpoint solver never consults the
// destination's out-arcs) or when the arc's head has no route toward d
// in the current snapshot (then the arc never contributed a candidate in
// any solver round — routedness on a static graph only grows — so the
// from-scratch trajectory on the mutated graph is unchanged). Skipped
// columns are shared with the previous snapshot by reference; the
// differential tests assert every incremental snapshot is bit-identical
// to a fresh rib.BuildEngine on the mutated graph.
//
// Event bursts are absorbed in batches. ApplyBatch coalesces a sequence
// of events to its net per-arc effect (a down followed by an up cancels,
// duplicate downs dedupe) and pays one recompute + one snapshot swap for
// the whole batch; the per-destination skip rule extends soundly to
// batches because a destination is only skipped when every toggled arc
// individually satisfies the rule against the pre-batch snapshot, and a
// skipped destination's column — the only state the rule reads — is then
// unchanged at every intermediate step of applying the batch one arc at
// a time. EnqueueEvent feeds an intake queue drained by a background
// batcher, with a selectable full-queue policy: reject (surfaced as HTTP
// 429) or degrade-to-stale (absorb the event into pending coalesced
// state and let the published snapshot lag until the batcher catches
// up).
//
// Reconvergence after arbitrary topology change is exactly what
// increasing algebras guarantee (Daggitt & Griffin, PAPERS.md); for
// non-increasing algebras a destination may fail to converge within the
// solver budget, which the snapshot reports instead of hiding.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/scenario"
	"metarouting/internal/sched"
	"metarouting/internal/solve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// Backpressure selects what EnqueueEvent does when the intake queue is
// full.
type Backpressure int

const (
	// BackpressureReject makes EnqueueEvent fail with ErrBacklogged when
	// the queue is full; HTTP surfaces it as 429 Too Many Requests.
	BackpressureReject Backpressure = iota
	// BackpressureStale makes EnqueueEvent absorb the event into the
	// pending coalesced state instead of failing: nothing is lost, but
	// the published snapshot may lag further behind the topology until
	// the batcher catches up.
	BackpressureStale
)

// String names the policy the way ParseBackpressure spells it.
func (b Backpressure) String() string {
	if b == BackpressureStale {
		return "stale"
	}
	return "reject"
}

// ParseBackpressure reads a policy name: "reject" or "stale".
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "reject":
		return BackpressureReject, nil
	case "stale":
		return BackpressureStale, nil
	}
	return 0, fmt.Errorf("serve: unknown backpressure policy %q (want reject or stale)", s)
}

// ErrBacklogged is returned by EnqueueEvent under BackpressureReject
// when the intake queue is full.
var ErrBacklogged = errors.New("serve: event intake queue full")

// config is the resolved Server configuration; Option values edit it.
type config struct {
	workers        int
	registry       *telemetry.Registry
	slowQueryNS    int64
	engine         exec.Algebra
	backpressure   Backpressure
	queueCap       int
	rebuildTimeout time.Duration
	noBatcher      bool // test-only: leave the intake queue undrained
	noDelta        bool
	flatColumns    bool
	deltaProps     prop.Set
	prefixes       *rib.PrefixTable
	sink           RecordSink
	scenario       *scenario.Scenario
	announced      []rib.PrefixOrigin
	hasAnnounced   bool
}

func defaultConfig() config {
	return config{queueCap: 1024}
}

// Option configures a Server at construction (New / NewFromScenario).
type Option interface{ apply(*config) }

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithWorkers sizes the snapshot builder's worker pool (≤ 0: GOMAXPROCS).
func WithWorkers(n int) Option {
	return optionFunc(func(c *config) { c.workers = n })
}

// WithRegistry registers the server's metrics (counters, convergence
// gauges, query/reconvergence latency histograms, batch and shard
// histograms, per-solve timings) under the mrserve_ prefix and enables
// the slow-query log. Query latencies are sampled 1-in-16 (see
// querySampleMask) so the timing cost stays inside the overhead budget.
// Without a registry the server keeps only its bare counters — the
// Stats JSON shape is identical either way, and the query path pays
// zero timing overhead.
func WithRegistry(reg *telemetry.Registry) Option {
	return optionFunc(func(c *config) { c.registry = reg })
}

// WithSlowQuery sets the slow-query log threshold (≤ 0: 1ms). Only
// meaningful together with WithRegistry.
func WithSlowQuery(threshold time.Duration) Option {
	return optionFunc(func(c *config) { c.slowQueryNS = threshold.Nanoseconds() })
}

// WithEngine overrides the execution engine the server runs on — the
// way to pin a backend when booting from a scenario, whose own engine
// NewFromScenario would otherwise use.
func WithEngine(eng exec.Algebra) Option {
	return optionFunc(func(c *config) { c.engine = eng })
}

// WithBackpressure selects the full-queue policy for EnqueueEvent
// (default BackpressureReject).
func WithBackpressure(policy Backpressure) Option {
	return optionFunc(func(c *config) { c.backpressure = policy })
}

// WithQueueCapacity bounds the event intake queue (≤ 0: 1024).
func WithQueueCapacity(n int) Option {
	return optionFunc(func(c *config) { c.queueCap = n })
}

// WithDelta enables or disables warm-start delta reconvergence
// (default enabled). Even when enabled, the delta path only runs for
// algebras whose inferred properties license it (rib.DeltaLicensed) —
// the metarouting contract of properties choosing algorithms — and
// individual rebuilds still fall back to from-scratch sweeps on
// oversized frontiers or unusable warm starts. Disabling it pins every
// rebuild to the from-scratch solver; the delta benchmark uses that as
// its baseline.
func WithDelta(enabled bool) Option {
	return optionFunc(func(c *config) { c.noDelta = !enabled })
}

// WithPagedColumns selects the snapshot column layout (default paged).
// Paged columns are fixed-size copy-on-write pages behind a page
// table: a delta rebuild clones only the pages holding touched slots
// or shifted ECMP spans and shares every other page with the previous
// snapshot by pointer, making a swap's data-plane cost O(frontier)
// instead of O(N). WithPagedColumns(false) pins the legacy flat
// layout (one contiguous slot arena per column, full copy per delta
// rebuild) — the storm benchmark's baseline.
func WithPagedColumns(enabled bool) Option {
	return optionFunc(func(c *config) { c.flatColumns = !enabled })
}

// WithDeltaProps supplies an inferred property set to the delta gate.
// Composite algebras built by core inference carry their derived M/I
// judgements on the Algebra node, not on the order transform the
// execution engine exposes, so callers that ran inference pass a.Props
// here to let theorem-derived licenses (e.g. I(lex) via Theorem 5)
// enable the warm-start path. The set only ever widens the license;
// WithDelta(false) still wins.
func WithDeltaProps(p prop.Set) Option {
	return optionFunc(func(c *config) { c.deltaProps = p })
}

// WithPrefixes supplies an explicit prefix table. The table's per-node
// origins must match the origination set handed to New — NewPrefix
// wires both from one announcement list and is the usual entry point.
// Without this option New synthesizes one rib.AutoPrefix /32 per
// destination so address-form queries work on node-keyed scenarios.
func WithPrefixes(pt *rib.PrefixTable) Option {
	return optionFunc(func(c *config) { c.prefixes = pt })
}

// WithScenario seeds the server from a parsed scenario: its engine,
// topology and single origination fill whatever the Config leaves zero,
// and — when the scenario ran inference — its derived property set
// feeds the delta gate unless WithDeltaProps was given explicitly.
// Explicit Config fields and WithEngine always win over the scenario.
func WithScenario(sc *scenario.Scenario) Option {
	return optionFunc(func(c *config) { c.scenario = sc })
}

// WithAnnouncements builds the server over a prefix announcement set:
// the table is aggregated (rib.NewPrefixTable — covering prefixes with
// the same anchor and origin suppress their more-specifics) and, when
// the Config names no origins, the per-node origins are derived from
// the kept announcements. Supersedes WithPrefixes when both are given.
func WithAnnouncements(announced []rib.PrefixOrigin) Option {
	return optionFunc(func(c *config) { c.announced, c.hasAnnounced = announced, true })
}

// WithRebuildTimeout bounds each batched recompute: the batcher and the
// HTTP event handlers derive a deadline-carrying context from it (0: no
// deadline). A rebuild that hits the deadline is abandoned and the
// previous snapshot stays published.
func WithRebuildTimeout(d time.Duration) Option {
	return optionFunc(func(c *config) { c.rebuildTimeout = d })
}

// Options is the PR-2 configuration struct.
//
// Deprecated: pass functional options (WithWorkers, WithRegistry,
// WithSlowQuery, ...) instead. Options still satisfies Option so
// positional call sites compile unchanged while they migrate.
type Options struct {
	// Workers sizes the snapshot builder's worker pool (≤ 0: GOMAXPROCS).
	Workers int
	// Telemetry, when non-nil, is WithRegistry.
	Telemetry *telemetry.Registry
	// SlowQueryNS is WithSlowQuery in nanoseconds (≤ 0: 1ms).
	SlowQueryNS int64
}

func (o Options) apply(c *config) {
	if o.Workers > 0 {
		c.workers = o.Workers
	}
	if o.Telemetry != nil {
		c.registry = o.Telemetry
	}
	if o.SlowQueryNS > 0 {
		c.slowQueryNS = o.SlowQueryNS
	}
}

// Snapshot is one immutable generation of route tables. All methods are
// safe for concurrent use; a snapshot never changes after publication,
// so a reader holding one sees a consistent view regardless of how many
// events the server has absorbed since. Route columns are arena-form
// (paged rib.PagedColumn by default, flat rib.Column under
// WithPagedColumns(false)); destinations untouched by a rebuild share
// their column with the previous snapshot by pointer, and under the
// paged layout even recomputed columns share every page outside the
// delta frontier.
type Snapshot struct {
	// Version increments with every swap (the initial build is 1).
	Version uint64
	// Graph is the topology view the snapshot was computed on (arcs
	// disabled by events are masked out; indices match the base graph).
	Graph *graph.Graph
	// Disabled records the per-arc failure state at build time.
	Disabled []bool
	// Unconverged lists destinations whose fixpoint did not settle
	// within the solver budget (possible for non-increasing algebras).
	Unconverged []int

	cols     map[int]rib.Col
	prefixes *rib.PrefixTable
	rib      *rib.RIB

	// Footprint gauges, computed once at publish.
	arenaBytes  int
	liveEntries int
}

// RIB exposes the snapshot's route table.
func (sn *Snapshot) RIB() *rib.RIB { return sn.rib }

// Column returns dest's arena column (nil when unknown) — the
// index-form read path; Lookup materializes the legacy view.
func (sn *Snapshot) Column(dest int) rib.Col {
	c, ok := sn.cols[dest]
	if !ok {
		return nil
	}
	return c
}

// Prefixes exposes the snapshot's prefix table. The prefix set is
// fixed at boot, so every snapshot of a server shares one table; it is
// carried on the snapshot so readers resolve addresses and columns
// against one consistent generation.
func (sn *Snapshot) Prefixes() *rib.PrefixTable { return sn.prefixes }

// MatchAddr resolves an address by longest prefix match to its anchor
// announcement (ok=false when no announced prefix covers it).
func (sn *Snapshot) MatchAddr(addr uint32) (rib.PrefixOrigin, bool) {
	return sn.prefixes.Match(addr)
}

// MatchPrefix resolves a prefix query to the longest announcement
// covering it.
func (sn *Snapshot) MatchPrefix(p rib.Prefix) (rib.PrefixOrigin, bool) {
	return sn.prefixes.MatchPrefix(p)
}

// ArenaBytes reports the summed arena footprint of the snapshot's
// columns (slot + pool backing arrays).
func (sn *Snapshot) ArenaBytes() int { return sn.arenaBytes }

// LiveEntries reports the number of routed slots across all columns.
func (sn *Snapshot) LiveEntries() int { return sn.liveEntries }

// TrieNodes reports the prefix trie's flat pool size.
func (sn *Snapshot) TrieNodes() int { return sn.prefixes.TrieNodes() }

// Lookup returns node's entry toward dest (nil when unrouted/unknown).
func (sn *Snapshot) Lookup(node, dest int) *rib.Entry { return sn.rib.Lookup(node, dest) }

// Forward resolves the forwarding path from a node toward dest.
func (sn *Snapshot) Forward(from, dest int) (graph.Path, error) { return sn.rib.Forward(from, dest) }

// ECMPWidth returns the equal-cost next-hop count at node toward dest.
func (sn *Snapshot) ECMPWidth(node, dest int) int { return sn.rib.ECMPWidth(node, dest) }

// Stats is a point-in-time reading of the server's counters — the seed
// of the observability layer, surfaced at /v1/stats and in
// BENCH_serve.json.
type Stats struct {
	Queries               uint64 `json:"queries"`
	BatchRequests         uint64 `json:"batch_requests"`
	BatchQueries          uint64 `json:"batch_queries"`
	SnapshotSwaps         uint64 `json:"snapshot_swaps"`
	EventsApplied         uint64 `json:"events_applied"`
	IncrementalRecomputes uint64 `json:"incremental_recomputes"`
	FullRecomputes        uint64 `json:"full_recomputes"`
	DestRecomputes        uint64 `json:"dest_recomputes"`
	DestReuses            uint64 `json:"dest_reuses"`
	DeltaDestRebuilds     uint64 `json:"dest_delta_rebuilds"`
	ScratchDestRebuilds   uint64 `json:"dest_scratch_rebuilds"`
	DeltaFrontierNodes    uint64 `json:"delta_frontier_nodes"`
	DeltaTouchedNodes     uint64 `json:"delta_touched_nodes"`
	DeltaEnabled          bool   `json:"delta_enabled"`
	PagedColumns          bool   `json:"paged_columns"`
	PagesCloned           uint64 `json:"pages_cloned"`
	PagesShared           uint64 `json:"pages_shared"`
	BatchesApplied        uint64 `json:"batches_applied"`
	EventsCoalesced       uint64 `json:"events_coalesced"`
	EventsRejected        uint64 `json:"events_rejected"`
	BatchErrors           uint64 `json:"batch_errors"`
	QueueDepth            int    `json:"queue_depth"`
	QueueCapacity         int    `json:"queue_capacity"`
	Backpressure          string `json:"backpressure"`
	SnapshotVersion       uint64 `json:"snapshot_version"`
	Destinations          int    `json:"destinations"`
	Nodes                 int    `json:"nodes"`
	Arcs                  int    `json:"arcs"`
	DisabledArcs          int    `json:"disabled_arcs"`
	Engine                string `json:"engine"`
	Workers               int    `json:"workers"`
	ArenaBytes            int    `json:"snapshot_arena_bytes"`
	LiveEntries           int    `json:"snapshot_live_entries"`
	TrieNodes             int    `json:"snapshot_trie_nodes"`
	Prefixes              int    `json:"prefixes"`
	SuppressedPrefixes    int    `json:"prefixes_suppressed"`
}

// ArcEvent names one topology event by arc index: the unit the batched
// pipeline coalesces and applies.
type ArcEvent struct {
	Arc  int  `json:"arc"`
	Fail bool `json:"fail"`
}

// Server owns route state for a fixed origination set and serves
// concurrent queries against atomically swapped snapshots. Queries
// (Lookup, Forward, Snapshot) never take the writer lock; events and
// rebuilds serialize on it.
type Server struct {
	eng      exec.Algebra
	base     *graph.Graph
	origins  map[int]value.V
	dests    []int // sorted, for deterministic build order
	prefixes *rib.PrefixTable
	workers  int

	mu       sync.Mutex // serializes topology mutation + publication
	disabled []bool
	closed   bool

	// deltaOK gates the warm-start rebuild path: WithDelta(true-by-
	// default) AND the algebra's inferred properties licensing it.
	deltaOK bool

	// paged selects the snapshot column layout (WithPagedColumns,
	// default true): copy-on-write paged columns vs legacy flat arenas.
	paged bool

	snap atomic.Pointer[Snapshot]

	// scrapeSnap pins one snapshot generation for the duration of a
	// metrics scrape (stored by the registry scrape hook), so every
	// snapshot-derived gauge in one exposition reports the same version
	// even when a swap races the scrape.
	scrapeSnap atomic.Pointer[Snapshot]

	// Replication (nil sink: disabled). fingerprint digests the base
	// topology; nameCount is the monotone count of weight names already
	// shipped on the record stream, guarded by mu like the publish path.
	sink        RecordSink
	fingerprint uint64
	nameCount   int

	pool *sched.Pool[*solve.Workspace]

	// Event intake: a bounded queue drained by the batcher goroutine,
	// plus the overflow coalesced state the stale policy absorbs into.
	backpressure   Backpressure
	intake         chan ArcEvent
	pendingMu      sync.Mutex
	pending        map[int]bool // arc → desired fail state
	stop           chan struct{}
	stopOnce       sync.Once
	batcherWG      sync.WaitGroup
	rebuildTimeout time.Duration

	queries, swaps, events      telemetry.Counter
	batchRequests, batchQueries telemetry.Counter
	incremental, full           telemetry.Counter
	destRecomputes, destReuses  telemetry.Counter
	batches, coalesced          telemetry.Counter
	rejected, batchErrors       telemetry.Counter
	deltaDests, scratchDests    telemetry.Counter
	frontierNodes, touchedNodes telemetry.Counter
	pagesCloned, pagesShared    telemetry.Counter
	repFull, repDelta           telemetry.Counter
	repErrors                   telemetry.Counter
	repBytes                    *telemetry.Histogram

	// Instrumentation below is nil/zero unless a registry was supplied.
	flaps        telemetry.Counter // route entries changed across swaps
	queryNS      *telemetry.Histogram
	eventNS      *telemetry.Histogram
	batchSize    *telemetry.Histogram
	shardNS      *telemetry.Histogram
	frontierHist *telemetry.Histogram
	touchedHist  *telemetry.Histogram
	lastEventNS  telemetry.Gauge
	solveMetrics *solve.Metrics
	slowNS       int64
	slow         *telemetry.Ring[SlowQuery]
}

// SlowQuery is one record in the slow-query log: a Forward resolution
// that crossed the slow-query threshold.
type SlowQuery struct {
	From    int    `json:"from"`
	Dest    int    `json:"dest"`
	NS      int64  `json:"ns"`
	Version uint64 `json:"snapshot_version"`
}

// batchSizeBuckets is the bucket layout for the event batch-size
// histogram: powers of two up to 1024, matching the default queue cap.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// nodeCountBuckets is the bucket layout for the delta frontier-size and
// nodes-touched histograms: powers of two spanning laptop-scale through
// large topologies.
var nodeCountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536}

// recordByteBuckets is the bucket layout for replication bytes-on-wire
// histograms: powers of two from 64 B to 64 MB.
var recordByteBuckets = []int64{64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10,
	8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10,
	1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20}

// Config names the core server inputs for NewServer. Every field may be
// left zero when an option supplies it instead (WithScenario fills all
// three, WithAnnouncements derives Origins).
type Config struct {
	// Engine is the execution backend (wrapped with exec.Concurrent at
	// construction; WithEngine overrides it).
	Engine exec.Algebra
	// Graph is the base topology.
	Graph *graph.Graph
	// Origins maps destination node → originated weight.
	Origins map[int]value.V
}

// NewServer is the single constructor behind every server form: plain
// engine+topology+origins, prefix announcement sets (WithAnnouncements)
// and scenario boots (WithScenario) all funnel here. It computes the
// initial snapshot with the worker pool and publishes it. The engine is
// wrapped with exec.Concurrent, so a dynamic backend may be handed in
// directly. Destinations that do not converge within the solver budget
// are reported in the snapshot, not as an error.
func NewServer(c Config, opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o.apply(&cfg)
		}
	}
	eng, g, origins := c.Engine, c.Graph, c.Origins
	if sc := cfg.scenario; sc != nil {
		if eng == nil {
			eng = sc.Engine
		}
		if g == nil {
			g = sc.Graph
		}
		if origins == nil {
			origins = map[int]value.V{sc.Dest: sc.Origin}
		}
		if cfg.deltaProps == nil && sc.Algebra != nil {
			// The scenario ran inference, so its derived property set can
			// license the delta path; an explicit WithDeltaProps wins.
			cfg.deltaProps = sc.Algebra.Props
		}
	}
	if cfg.engine != nil {
		eng = cfg.engine
	}
	if eng == nil {
		return nil, fmt.Errorf("serve: nil execution engine")
	}
	if g == nil {
		return nil, fmt.Errorf("serve: nil topology")
	}
	if cfg.hasAnnounced {
		pt, err := rib.NewPrefixTable(cfg.announced)
		if err != nil {
			return nil, err
		}
		for _, po := range pt.Kept() {
			if po.Node < 0 || po.Node >= g.N {
				return nil, fmt.Errorf("serve: prefix %v anchored at node %d out of range [0,%d)", po.Prefix, po.Node, g.N)
			}
		}
		cfg.prefixes = pt
		if origins == nil {
			origins = pt.Origins()
		}
	}
	if len(origins) == 0 {
		return nil, fmt.Errorf("serve: no destinations originated")
	}
	dests := make([]int, 0, len(origins))
	for d, origin := range origins {
		if d < 0 || d >= g.N {
			return nil, fmt.Errorf("serve: destination %d out of range [0,%d)", d, g.N)
		}
		if _, err := eng.Intern(origin); err != nil {
			return nil, fmt.Errorf("serve: destination %d: %v", d, err)
		}
		dests = append(dests, d)
	}
	sort.Ints(dests)
	prefixes := cfg.prefixes
	if prefixes == nil {
		var err error
		prefixes, err = rib.AutoPrefixTable(origins)
		if err != nil {
			return nil, fmt.Errorf("serve: auto prefix table: %v", err)
		}
	}
	if cfg.queueCap <= 0 {
		cfg.queueCap = 1024
	}
	s := &Server{
		eng:            exec.Concurrent(eng),
		base:           g,
		origins:        origins,
		dests:          dests,
		prefixes:       prefixes,
		disabled:       make([]bool, len(g.Arcs)),
		backpressure:   cfg.backpressure,
		intake:         make(chan ArcEvent, cfg.queueCap),
		pending:        make(map[int]bool),
		stop:           make(chan struct{}),
		rebuildTimeout: cfg.rebuildTimeout,
		sink:           cfg.sink,
		fingerprint:    fingerprintGraph(g),
	}
	licensed := cfg.deltaProps != nil && rib.DeltaLicensedSet(cfg.deltaProps)
	if ot := s.eng.Source(); ot != nil && !licensed {
		licensed = rib.DeltaLicensed(ot)
	}
	s.deltaOK = !cfg.noDelta && licensed
	s.paged = !cfg.flatColumns
	if cfg.registry != nil {
		s.queryNS = telemetry.NewLatencyHistogram()
		s.eventNS = telemetry.NewLatencyHistogram()
		s.shardNS = telemetry.NewLatencyHistogram()
		s.batchSize = telemetry.NewHistogram(batchSizeBuckets)
		s.frontierHist = telemetry.NewHistogram(nodeCountBuckets)
		s.touchedHist = telemetry.NewHistogram(nodeCountBuckets)
		s.solveMetrics = solve.NewMetrics()
		s.slowNS = cfg.slowQueryNS
		if s.slowNS <= 0 {
			s.slowNS = int64(time.Millisecond)
		}
		s.slow = telemetry.NewRing[SlowQuery](128)
		if s.sink != nil {
			s.repBytes = telemetry.NewHistogram(recordByteBuckets)
		}
	}
	// The pool's workers create their workspaces eagerly, so the solve
	// metrics sink must be in place before the pool starts.
	s.pool = sched.New(cfg.workers, func() *solve.Workspace {
		ws := solve.NewWorkspace()
		ws.Metrics = s.solveMetrics
		return ws
	})
	s.workers = s.pool.Workers()
	if cfg.registry != nil {
		s.register(cfg.registry)
	}
	view := g.MaskArcs(s.disabled)
	table, unconv, _, err := s.buildDests(context.Background(), view, dests, nil, nil)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.publish(view, table, unconv, nil, nil)
	if !cfg.noBatcher {
		s.batcherWG.Add(1)
		go s.batchLoop()
	}
	return s, nil
}

// register exposes the server's metrics in reg. Called once from New;
// the gauge funcs read live server state at scrape time — except
// snapshot-derived gauges, which read the generation the scrape hook
// pinned at the start of the render, so /v1/metrics and /v1/stats
// agree on one snapshot version even when swaps race the scrape.
func (s *Server) register(reg *telemetry.Registry) {
	reg.AddScrapeHook(func() { s.scrapeSnap.Store(s.snap.Load()) })
	reg.AddCounter("mrserve_queries_total", "Route queries served (Lookup, Forward, ECMPWidth).", &s.queries)
	reg.AddCounter("mrserve_batch_requests_total", "POST /v1/routes batch requests served.", &s.batchRequests)
	reg.AddCounter("mrserve_batch_queries_total", "Route queries answered inside batches.", &s.batchQueries)
	reg.AddCounter("mrserve_snapshot_swaps_total", "Snapshots published.", &s.swaps)
	reg.AddCounter("mrserve_events_applied_total", "Topology events that changed the graph.", &s.events)
	reg.AddCounter(`mrserve_recomputes_total{kind="incremental"}`, "Snapshot builds by kind.", &s.incremental)
	reg.AddCounter(`mrserve_recomputes_total{kind="full"}`, "", &s.full)
	reg.AddCounter("mrserve_dest_recomputes_total", "Destination columns recomputed.", &s.destRecomputes)
	reg.AddCounter("mrserve_dest_reuses_total", "Destination columns shared with the previous snapshot.", &s.destReuses)
	reg.AddCounter(`mrserve_dest_rebuilds_total{kind="delta"}`,
		"Destination column rebuilds by solver path: warm-start delta drains vs from-scratch sweeps.", &s.deltaDests)
	reg.AddCounter(`mrserve_dest_rebuilds_total{kind="scratch"}`, "", &s.scratchDests)
	reg.AddCounter(`mrserve_column_pages_total{kind="cloned"}`,
		"Copy-on-write column pages per rebuild, by fate: cloned into the new snapshot vs shared with the previous one by pointer.", &s.pagesCloned)
	reg.AddCounter(`mrserve_column_pages_total{kind="shared"}`, "", &s.pagesShared)
	reg.AddCounter("mrserve_route_flaps_total", "Route entries that changed across snapshot swaps.", &s.flaps)
	reg.AddCounter("mrserve_event_batches_total", "Coalesced event batches applied.", &s.batches)
	reg.AddCounter("mrserve_events_coalesced_total",
		"Events absorbed by coalescing without a recompute of their own (cancelled, duplicate or no-op).", &s.coalesced)
	reg.AddCounter("mrserve_events_rejected_total",
		"Events rejected by the full intake queue under the reject policy.", &s.rejected)
	reg.AddCounter("mrserve_event_batch_errors_total",
		"Batched recomputes abandoned on error or deadline.", &s.batchErrors)
	reg.AddGaugeFunc("mrserve_event_queue_depth",
		"Events waiting in the intake queue plus pending coalesced arcs.", func() float64 {
			return float64(s.queueDepth())
		})
	reg.AddGaugeFunc("mrserve_snapshot_version", "Version of the published snapshot.", func() float64 {
		if sn := s.pinnedSnap(); sn != nil {
			return float64(sn.Version)
		}
		return 0
	})
	reg.AddGaugeFunc("mrserve_convergence_unconverged_destinations",
		"Destinations whose fixpoint did not settle in the published snapshot.", func() float64 {
			if sn := s.pinnedSnap(); sn != nil {
				return float64(len(sn.Unconverged))
			}
			return 0
		})
	reg.AddGaugeFunc("mrserve_convergence_last_event_seconds",
		"Reconvergence time of the most recent applied topology batch.", func() float64 {
			return float64(s.lastEventNS.Load()) / 1e9
		})
	reg.AddGaugeFunc("mrserve_disabled_arcs", "Arcs currently failed.", func() float64 {
		n := 0
		if sn := s.pinnedSnap(); sn != nil {
			for _, d := range sn.Disabled {
				if d {
					n++
				}
			}
		}
		return float64(n)
	})
	reg.AddGaugeFunc("mrserve_snapshot_arena_bytes",
		"Arena footprint of the published snapshot's route columns (slot + next-hop pool bytes).", func() float64 {
			if sn := s.pinnedSnap(); sn != nil {
				return float64(sn.arenaBytes)
			}
			return 0
		})
	reg.AddGaugeFunc("mrserve_snapshot_live_entries",
		"Routed slots across the published snapshot's columns.", func() float64 {
			if sn := s.pinnedSnap(); sn != nil {
				return float64(sn.liveEntries)
			}
			return 0
		})
	reg.AddGaugeFunc("mrserve_snapshot_trie_nodes",
		"Flat node-pool size of the prefix LPM trie.", func() float64 {
			return float64(s.prefixes.TrieNodes())
		})
	reg.AddGaugeFunc("mrserve_prefixes",
		"Announced prefixes kept after aggregation.", func() float64 {
			return float64(s.prefixes.Len())
		})
	reg.AddGaugeFunc("mrserve_destinations", "Originated destinations.", func() float64 { return float64(len(s.dests)) })
	reg.AddGaugeFunc("mrserve_nodes", "Topology node count.", func() float64 { return float64(s.base.N) })
	reg.AddGaugeFunc("mrserve_arcs", "Topology arc count.", func() float64 { return float64(len(s.base.Arcs)) })
	reg.AddGaugeFunc("mrserve_workers", "Snapshot builder worker pool size.", func() float64 { return float64(s.workers) })
	reg.AddHistogram("mrserve_query_seconds", "Per-query latency (a Forward resolution).", s.queryNS, 1e9)
	reg.AddHistogram("mrserve_convergence_event_seconds",
		"Reconvergence latency per applied topology batch (coalesce + recompute + snapshot swap).", s.eventNS, 1e9)
	reg.AddHistogram("mrserve_event_batch_size", "Raw events per applied batch, before coalescing.", s.batchSize, 1)
	reg.AddHistogram("mrserve_shard_rebuild_seconds",
		"Per-destination column rebuild latency inside the sharded snapshot builder.", s.shardNS, 1e9)
	reg.AddHistogram("mrserve_delta_frontier_nodes",
		"Seed frontier size per warm-start delta rebuild (invalidated subtree plus raised-arc tails).", s.frontierHist, 1)
	reg.AddHistogram("mrserve_delta_touched_nodes",
		"Nodes re-relaxed per warm-start delta rebuild.", s.touchedHist, 1)
	if s.sink != nil {
		reg.AddCounter(`mrserve_replica_published_records_total{kind="full"}`,
			"Replication records published to the sink, by kind.", &s.repFull)
		reg.AddCounter(`mrserve_replica_published_records_total{kind="delta"}`, "", &s.repDelta)
		reg.AddCounter("mrserve_replica_publish_errors_total",
			"Replication records the sink failed to accept (log write failures).", &s.repErrors)
		reg.AddHistogram("mrserve_replica_record_bytes",
			"Framed replication record size on the wire.", s.repBytes, 1)
	}
	s.solveMetrics.Register(reg, "mrserve_solve")
}

// pinnedSnap returns the snapshot generation pinned for the current
// metrics scrape, falling back to the live snapshot outside a scrape
// (or before the first one).
func (s *Server) pinnedSnap() *Snapshot {
	if sn := s.scrapeSnap.Load(); sn != nil {
		return sn
	}
	return s.snap.Load()
}

// New builds a server over an execution engine, a base topology and the
// origination set.
//
// Deprecated: use NewServer(Config{Engine: eng, Graph: g, Origins:
// origins}, opts...). New remains as a thin wrapper so existing call
// sites compile unchanged while they migrate.
func New(eng exec.Algebra, g *graph.Graph, origins map[int]value.V, opts ...Option) (*Server, error) {
	return NewServer(Config{Engine: eng, Graph: g, Origins: origins}, opts...)
}

// NewPrefix builds a server over a prefix announcement set.
//
// Deprecated: use NewServer(Config{Engine: eng, Graph: g},
// WithAnnouncements(announced), opts...), which applies the same
// aggregation and origin derivation.
func NewPrefix(eng exec.Algebra, g *graph.Graph, announced []rib.PrefixOrigin, opts ...Option) (*Server, error) {
	return NewServer(Config{Engine: eng, Graph: g},
		append([]Option{WithAnnouncements(announced)}, opts...)...)
}

// NewFromScenario builds a server from a parsed scenario: its engine,
// topology, and single origination (WithEngine overrides the engine).
// Replay the scenario's events with Replay(ctx, sc.SortedEvents()).
//
// Deprecated: use NewServer(Config{}, WithScenario(sc), opts...).
func NewFromScenario(sc *scenario.Scenario, opts ...Option) (*Server, error) {
	return NewServer(Config{}, append([]Option{WithScenario(sc)}, opts...)...)
}

// stopBatcher halts the intake batcher exactly once and waits it out.
func (s *Server) stopBatcher() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.batcherWG.Wait()
	})
}

// Close stops the batcher and the worker pool. The current snapshot
// stays readable, but ApplyEvent/ApplyBatch/Rebuild must not be called
// afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stopBatcher()
	// Reacquiring the writer lock waits out any in-flight mutation
	// before the pool goes away; new ones bail on the closed flag.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Close()
}

// buildDests computes arena columns for the recompute set on view,
// sharding destinations (columns) across the worker pool; columns for
// every other destination are shared with prev's snapshot by pointer
// (they are immutable). When the delta gate is open and toggles
// describe the batch, each recomputed destination warm-starts from its
// previous column via rib.DeltaDestPaged (rib.DeltaDestColumn under
// the flat layout) — the warm start reads engine weight indices
// straight out of the previous arena, so nothing is re-interned —
// while destinations the previous snapshot reported unconverged
// rebuild from scratch (their columns are not a fixpoint to warm-start
// from). Under the paged layout a delta rebuild clones only the pages
// the drain dirtied and shares the rest with the previous column by
// pointer, so the swap's data-plane cost tracks the frontier, not N.
// A ctx cancellation abandons the build and returns ctx.Err().
//
// When a replication sink is configured, the returned hints map holds,
// for each destination whose column came from the delta drain, a
// sorted node set outside which every slot is bit-identical to the
// previous column — touched nodes plus toggle tails on the flat path,
// the dirty pages' slot ranges on the paged path — the only slots
// delta record encoding needs to scan. Destinations absent from the
// map were rebuilt from scratch and must be scanned in full.
func (s *Server) buildDests(ctx context.Context, view *graph.Graph, recompute []int, prev *Snapshot, toggles []ArcEvent) (map[int]rib.Col, []int, map[int][]int, error) {
	cols := make(map[int]rib.Col, len(s.dests))
	var prevCols map[int]rib.Col
	prevUnconv := make(map[int]bool, 4)
	if prev != nil {
		prevCols = prev.cols
		for _, d := range prev.Unconverged {
			prevUnconv[d] = true
		}
		inRecompute := make(map[int]bool, len(recompute))
		for _, d := range recompute {
			inRecompute[d] = true
		}
		for d, col := range prevCols {
			if !inRecompute[d] {
				cols[d] = col
			}
		}
	}
	var solveToggles []solve.ArcToggle
	if s.deltaOK && prev != nil {
		solveToggles = make([]solve.ArcToggle, len(toggles))
		for i, t := range toggles {
			solveToggles[i] = solve.ArcToggle{Arc: t.Arc, Down: t.Fail}
		}
	}
	results := make([]rib.Col, len(recompute))
	var hintsArr [][]int
	if s.sink != nil {
		hintsArr = make([][]int, len(recompute))
	}
	err := s.pool.Map(ctx, len(recompute), func(i int, ws *solve.Workspace) error {
		d := recompute[i]
		var t0 time.Time
		if s.shardNS != nil {
			t0 = time.Now()
		}
		var warmable rib.Col
		if solveToggles != nil && !prevUnconv[d] {
			warmable = prevCols[d]
		}
		var col rib.Col
		var st solve.DeltaStats
		var err error
		delta := false
		if s.paged {
			pprev, _ := warmable.(*rib.PagedColumn)
			var pc *rib.PagedColumn
			if pprev != nil {
				var ps rib.PageStats
				pc, st, ps, err = rib.DeltaDestPaged(
					s.eng, view, s.disabled, d, s.origins[d], ws, pprev, solveToggles)
				if err == nil {
					delta = st.UsedDelta
					s.pagesCloned.Add(uint64(ps.Cloned))
					s.pagesShared.Add(uint64(ps.Shared))
					if delta && hintsArr != nil {
						hintsArr[i] = pagedHint(view.N, ps.DirtyPages)
					}
				}
			} else {
				pc, err = rib.BuildDestPaged(s.eng, view, d, s.origins[d], ws)
				if err == nil {
					s.pagesCloned.Add(uint64(len(pc.Pages)))
				}
			}
			if err == nil {
				col = pc
			}
		} else {
			fprev, _ := warmable.(*rib.Column)
			var fc *rib.Column
			if fprev != nil {
				fc, st, err = rib.DeltaDestColumn(
					s.eng, view, s.disabled, d, s.origins[d], ws, fprev, solveToggles)
				if err == nil {
					delta = st.UsedDelta
					if delta && hintsArr != nil {
						hintsArr[i] = deltaHint(view, d, st, solveToggles)
					}
				}
			} else {
				fc, err = rib.BuildDestColumn(s.eng, view, d, s.origins[d], ws)
			}
			if err == nil {
				col = fc
			}
		}
		if err != nil {
			return err
		}
		if delta {
			s.deltaDests.Add(1)
			s.frontierNodes.Add(uint64(st.Frontier))
			s.touchedNodes.Add(uint64(len(st.Touched)))
			if s.frontierHist != nil {
				s.frontierHist.Observe(int64(st.Frontier))
				s.touchedHist.Observe(int64(len(st.Touched)))
			}
		} else {
			s.scratchDests.Add(1)
		}
		if s.shardNS != nil {
			s.shardNS.Observe(time.Since(t0).Nanoseconds())
		}
		results[i] = col
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var unconverged []int
	var hints map[int][]int
	for i, d := range recompute {
		if !results[i].IsConverged() {
			unconverged = append(unconverged, d)
		}
		cols[d] = results[i]
		if hintsArr != nil && hintsArr[i] != nil {
			if hints == nil {
				hints = make(map[int][]int, len(recompute))
			}
			hints[d] = hintsArr[i]
		}
	}
	sort.Ints(unconverged)
	return cols, unconverged, hints, nil
}

// deltaHint merges a delta run's touched set with the toggle tails
// outside it — exactly the nodes rib.DeltaDestColumn rebuilt rather
// than transplanted from the previous column — into one sorted,
// deduplicated slice. The result is never nil: an empty hint still
// records "no slot of this column can differ".
func deltaHint(view *graph.Graph, dest int, st solve.DeltaStats, toggles []solve.ArcToggle) []int {
	hint := append(make([]int, 0, len(st.Touched)+len(toggles)), st.Touched...)
	for _, t := range toggles {
		if x := view.Arcs[t.Arc].From; x != dest {
			hint = append(hint, x)
		}
	}
	sort.Ints(hint)
	out := hint[:0]
	for i, u := range hint {
		if i == 0 || u != hint[i-1] {
			out = append(out, u)
		}
	}
	return out
}

// pagedHint expands a delta rebuild's dirty-page set into the sorted
// node list the replication encoder scans: every slot of every cloned
// page, clipped to the node count. The expansion is a superset of the
// nodes whose slots actually changed (unchanged slots inside a dirty
// page were transplanted bit-identically, and the encoder skips equal
// slots), and outside it every page — hence every slot — is shared
// with the previous column by pointer. Never nil: an empty dirty set
// still records "no slot of this column can differ".
func pagedHint(n int, dirty []int32) []int {
	hint := make([]int, 0, len(dirty)*rib.PageSize)
	for _, pi := range dirty {
		lo := int(pi) << rib.PageShift
		hi := lo + rib.PageSize
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			hint = append(hint, u)
		}
	}
	return hint
}

// publish swaps in a new snapshot built from cols and, when a
// replication sink is configured, ships the swap as a replica record
// (a delta described by toggles and hints, or a full snapshot when
// toggles is nil). Callers hold s.mu.
func (s *Server) publish(view *graph.Graph, cols map[int]rib.Col, unconverged []int, toggles []ArcEvent, hints map[int][]int) {
	cur := s.snap.Load()
	var version uint64 = 1
	if cur != nil {
		version = cur.Version + 1
		if s.queryNS != nil {
			s.flaps.Add(countFlaps(cur.cols, cols))
		}
	}
	sn := &Snapshot{
		Version:     version,
		Graph:       view,
		Disabled:    append([]bool(nil), s.disabled...),
		Unconverged: unconverged,
		cols:        cols,
		prefixes:    s.prefixes,
		rib:         rib.FromCols(s.eng, view, cols),
	}
	for _, c := range cols {
		sn.arenaBytes += c.Bytes()
		sn.liveEntries += c.Live()
	}
	s.snap.Store(sn)
	s.swaps.Add(1)
	s.replicate(cur, sn, toggles, hints)
}

// countFlaps compares recomputed columns against their predecessors and
// counts slots that actually changed (weight or ECMP set) — the
// route-flap reading behind mrserve_route_flaps_total. Columns shared
// by pointer (skipped destinations) are recognized and cost nothing;
// paged column pairs additionally skip pages shared by pointer, so the
// comparison tracks the frontier. Flat recomputed columns pay an O(N)
// scan, the same order as the recompute that produced them.
func countFlaps(prev, next map[int]rib.Col) uint64 {
	var flaps uint64
	for d, col := range next {
		old, ok := prev[d]
		if !ok || old == col || old.NumNodes() != col.NumNodes() {
			continue
		}
		if pc, ok := col.(*rib.PagedColumn); ok {
			if oc, ok := old.(*rib.PagedColumn); ok {
				flaps += countFlapsPaged(oc, pc)
				continue
			}
		}
		for u := 0; u < col.NumNodes(); u++ {
			if !slotEqual(col, old, u) {
				flaps++
			}
		}
	}
	return flaps
}

// countFlapsPaged counts changed slots between two paged columns of
// equal length, skipping pages shared by pointer.
func countFlapsPaged(old, col *rib.PagedColumn) uint64 {
	var flaps uint64
	n := col.NumNodes()
	for pi, np := range col.Pages {
		if pi < len(old.Pages) && old.Pages[pi] == np {
			continue
		}
		lo := pi << rib.PageShift
		hi := lo + rib.PageSize
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			if !slotEqual(col, old, u) {
				flaps++
			}
		}
	}
	return flaps
}

// slotEqual compares node u's route across two columns: routedness,
// engine weight index, and ECMP next-hop sequence. Weight indices are
// comparable directly because both columns were built on the same
// engine, whose intern table assigns each weight one stable index.
func slotEqual(a, b rib.Col, u int) bool {
	wa, ra := a.Route(u)
	wb, rb := b.Route(u)
	if ra != rb {
		return false
	}
	if !ra {
		return true
	}
	if wa != wb {
		return false
	}
	na, nb := a.NextHops(u), b.NextHops(u)
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// Coalesce reduces an event sequence to its net per-arc effect against
// the given failure state: the last event for an arc names its desired
// state, and arcs whose desired state equals disabled[arc] drop out —
// so a down followed by an up cancels, and duplicate downs dedupe to
// one toggle. The result is the toggle set, sorted by arc index, each
// entry carrying the arc's new state. Events naming arcs outside
// [0, len(disabled)) are an error.
func Coalesce(events []ArcEvent, disabled []bool) ([]ArcEvent, error) {
	desired := make(map[int]bool, len(events))
	for _, ev := range events {
		if ev.Arc < 0 || ev.Arc >= len(disabled) {
			return nil, fmt.Errorf("serve: arc %d out of range [0,%d)", ev.Arc, len(disabled))
		}
		desired[ev.Arc] = ev.Fail
	}
	toggles := make([]ArcEvent, 0, len(desired))
	for arc, fail := range desired {
		if disabled[arc] != fail {
			toggles = append(toggles, ArcEvent{Arc: arc, Fail: fail})
		}
	}
	sort.Slice(toggles, func(i, j int) bool { return toggles[i].Arc < toggles[j].Arc })
	return toggles, nil
}

// invalidated returns, in ascending order, the destinations whose
// columns any of the toggled arcs can touch — the union of the
// per-event skip rule over the batch, evaluated against the pre-batch
// snapshot (sound for the whole batch; see the package comment).
// Callers hold s.mu.
func (s *Server) invalidated(cur *Snapshot, toggles []ArcEvent) []int {
	var recompute []int
	for _, d := range s.dests {
		col := cur.cols[d]
		for _, t := range toggles {
			a := s.base.Arcs[t.Arc]
			if a.From == d || col == nil {
				continue
			}
			if _, routed := col.Route(a.To); !routed {
				continue
			}
			recompute = append(recompute, d)
			break
		}
	}
	return recompute
}

// ApplyBatch coalesces events to their net per-arc effect and applies
// the result as one recompute + one snapshot swap. It reports how many
// arcs actually toggled and how many destination columns were
// recomputed; a batch that coalesces to nothing publishes nothing and
// costs nothing. On error — including ctx cancellation or deadline —
// the previous snapshot and failure state stay intact. Readers are
// never blocked: they keep resolving against the previous snapshot
// until the swap.
func (s *Server) ApplyBatch(ctx context.Context, events []ArcEvent) (applied, recomputed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("serve: server is closed")
	}
	toggles, err := Coalesce(events, s.disabled)
	if err != nil {
		return 0, 0, err
	}
	s.coalesced.Add(uint64(len(events) - len(toggles)))
	if len(toggles) == 0 {
		return 0, 0, nil
	}
	var t0 time.Time
	if s.eventNS != nil {
		t0 = time.Now()
	}
	cur := s.snap.Load()
	revert := func() {
		for _, t := range toggles {
			s.disabled[t.Arc] = !t.Fail
		}
	}
	for _, t := range toggles {
		s.disabled[t.Arc] = t.Fail
	}
	var view *graph.Graph
	switch {
	case len(toggles) == 1:
		// Single toggle: copy-on-write view, O(N + deg) instead of a full
		// re-index.
		view = cur.Graph.WithArcToggled(toggles[0].Arc, s.disabled)
	case len(toggles) <= 32:
		// Small storm: one header copy plus one row rebuild per endpoint,
		// still far under the O(N + M) full re-index.
		ais := make([]int, len(toggles))
		for i, t := range toggles {
			ais[i] = t.Arc
		}
		view = cur.Graph.WithArcsToggled(ais, s.disabled)
	default:
		view = s.base.MaskArcs(s.disabled)
	}
	recompute := s.invalidated(cur, toggles)
	table, unconv, hints, err := s.buildDests(ctx, view, recompute, cur, toggles)
	if err != nil {
		revert()
		return 0, 0, err
	}
	s.publish(view, table, unconv, toggles, hints)
	s.events.Add(uint64(len(toggles)))
	s.batches.Add(1)
	if s.batchSize != nil {
		s.batchSize.Observe(int64(len(events)))
	}
	if len(recompute) == len(s.dests) {
		s.full.Add(1)
	} else {
		s.incremental.Add(1)
	}
	s.destRecomputes.Add(uint64(len(recompute)))
	s.destReuses.Add(uint64(len(s.dests) - len(recompute)))
	if s.eventNS != nil {
		ns := time.Since(t0).Nanoseconds()
		s.eventNS.Observe(ns)
		s.lastEventNS.Set(ns)
	}
	return len(toggles), len(recompute), nil
}

// ApplyEvent applies a link failure (fail=true) or recovery to the arc
// with the given index, recomputing only invalidated destinations, and
// publishes the resulting snapshot. It reports whether the event changed
// anything (re-failing a failed arc is a no-op) and how many
// destinations were recomputed. A ctx cancellation or deadline abandons
// the recompute and leaves the previous snapshot intact.
func (s *Server) ApplyEvent(ctx context.Context, arc int, fail bool) (applied bool, recomputed int, err error) {
	n, recomputed, err := s.ApplyBatch(ctx, []ArcEvent{{Arc: arc, Fail: fail}})
	return n > 0, recomputed, err
}

// ApplyEventEndpoints is ApplyEvent with the arc named by its endpoints
// (the form HTTP clients and scenario files use).
func (s *Server) ApplyEventEndpoints(ctx context.Context, from, to int, fail bool) (bool, int, error) {
	ai, err := s.arcByEndpoints(from, to)
	if err != nil {
		return false, 0, err
	}
	return s.ApplyEvent(ctx, ai, fail)
}

// arcByEndpoints resolves a from→to arc to its index.
func (s *Server) arcByEndpoints(from, to int) (int, error) {
	for ai, a := range s.base.Arcs {
		if a.From == from && a.To == to {
			return ai, nil
		}
	}
	return 0, fmt.Errorf("serve: no arc %d → %d", from, to)
}

// EnqueueEvent hands an event to the intake queue for asynchronous
// batched application. When the queue is full the configured
// backpressure policy decides: BackpressureReject fails with
// ErrBacklogged, BackpressureStale absorbs the event into the pending
// coalesced state (per-arc last-write-wins) and lets the snapshot lag.
func (s *Server) EnqueueEvent(ev ArcEvent) error {
	if ev.Arc < 0 || ev.Arc >= len(s.base.Arcs) {
		return fmt.Errorf("serve: arc %d out of range [0,%d)", ev.Arc, len(s.base.Arcs))
	}
	select {
	case <-s.stop:
		return fmt.Errorf("serve: server is closed")
	default:
	}
	select {
	case s.intake <- ev:
		return nil
	default:
	}
	if s.backpressure == BackpressureStale {
		s.pendingMu.Lock()
		s.pending[ev.Arc] = ev.Fail
		s.pendingMu.Unlock()
		return nil
	}
	s.rejected.Add(1)
	return ErrBacklogged
}

// queueDepth reads the intake backlog: queued events plus pending
// coalesced arcs.
func (s *Server) queueDepth() int {
	s.pendingMu.Lock()
	p := len(s.pending)
	s.pendingMu.Unlock()
	return len(s.intake) + p
}

// batchLoop is the intake batcher: it sleeps on the queue, then drains
// every event queued behind the first — a burst becomes one coalesced
// batch, one recompute, one swap.
func (s *Server) batchLoop() {
	defer s.batcherWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case ev := <-s.intake:
			if err := s.drainAndApply(&ev); err != nil {
				s.batchErrors.Add(1)
			}
		}
	}
}

// drainAndApply collects first (when non-nil), everything currently
// queued and the pending coalesced state into one batch and applies it.
// Pending entries append last, so under the stale policy the newest
// per-arc state wins.
func (s *Server) drainAndApply(first *ArcEvent) error {
	batch := make([]ArcEvent, 0, 16)
	if first != nil {
		batch = append(batch, *first)
	}
drain:
	for {
		select {
		case ev := <-s.intake:
			batch = append(batch, ev)
		default:
			break drain
		}
	}
	s.pendingMu.Lock()
	for arc, fail := range s.pending {
		batch = append(batch, ArcEvent{Arc: arc, Fail: fail})
	}
	clear(s.pending)
	s.pendingMu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	ctx := context.Background()
	if s.rebuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.rebuildTimeout)
		defer cancel()
	}
	_, _, err := s.ApplyBatch(ctx, batch)
	return err
}

// Replay applies topology events in firing order and returns how many
// changed the topology. The input may arrive unsorted: like
// scenario.SortedEvents, Replay stable-sorts a copy by LinkEvent.At
// before applying, so a scenario's semantics never depend on file
// order.
func (s *Server) Replay(ctx context.Context, events []protocol.LinkEvent) (applied int, err error) {
	evs := append([]protocol.LinkEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ok, _, err := s.ApplyEvent(ctx, ev.Arc, ev.Fail)
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// Rebuild recomputes every destination from scratch on the current
// topology and publishes the result — the full-rebuild baseline the
// incremental path is benchmarked against. A ctx cancellation abandons
// the rebuild and leaves the previous snapshot intact.
func (s *Server) Rebuild(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server is closed")
	}
	view := s.base.MaskArcs(s.disabled)
	table, unconv, _, err := s.buildDests(ctx, view, s.dests, nil, nil)
	if err != nil {
		return err
	}
	s.publish(view, table, unconv, nil, nil)
	s.full.Add(1)
	s.destRecomputes.Add(uint64(len(s.dests)))
	return nil
}

// RebuildTimeout reports the configured per-rebuild deadline (0: none);
// the HTTP event handlers derive request contexts from it.
func (s *Server) RebuildTimeout() time.Duration { return s.rebuildTimeout }

// Snapshot returns the current snapshot (never nil after New).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Dests lists the originated destinations in ascending order.
func (s *Server) Dests() []int { return append([]int(nil), s.dests...) }

// Lookup resolves node's entry toward dest against the current snapshot,
// lock-free.
func (s *Server) Lookup(node, dest int) *rib.Entry {
	s.queries.Add(1)
	return s.snap.Load().Lookup(node, dest)
}

// querySampleMask selects which queries are timed when telemetry is
// enabled: every (mask+1)-th query (per the shared counter) pays the
// two clock reads and the histogram observe, the rest run bare. A
// resolution is fast enough (hundreds of ns on compiled engines) that
// unsampled timing would cost more than the 10 % overhead budget
// allows; 1-in-16 sampling keeps the histogram statistically faithful —
// the sample index is decoupled from query content — at a sixteenth of
// the cost. The slow-query log sees sampled queries only.
const querySampleMask = 15

// Forward resolves the forwarding path from a node toward dest against
// the current snapshot, lock-free. This is the instrumented query path:
// with telemetry enabled every querySampleMask+1-th resolution lands in
// the query latency histogram, and sampled resolutions over the
// slow-query threshold are logged.
func (s *Server) Forward(from, dest int) (graph.Path, error) {
	n := s.queries.Add(1)
	if s.queryNS == nil || n&querySampleMask != 0 {
		return s.snap.Load().Forward(from, dest)
	}
	t0 := time.Now()
	sn := s.snap.Load()
	p, err := sn.Forward(from, dest)
	ns := time.Since(t0).Nanoseconds()
	s.queryNS.Observe(ns)
	if ns >= s.slowNS {
		s.slow.Push(SlowQuery{From: from, Dest: dest, NS: ns, Version: sn.Version})
	}
	return p, err
}

// SlowQueries returns the retained slow-query log, oldest first (empty
// without telemetry).
func (s *Server) SlowQueries() []SlowQuery {
	if s.slow == nil {
		return nil
	}
	return s.slow.Items()
}

// ECMPWidth returns the equal-cost next-hop count at node toward dest in
// the current snapshot, lock-free.
func (s *Server) ECMPWidth(node, dest int) int {
	s.queries.Add(1)
	return s.snap.Load().ECMPWidth(node, dest)
}

// Stats reads the counters.
func (s *Server) Stats() Stats {
	sn := s.snap.Load()
	disabled := 0
	for _, d := range sn.Disabled {
		if d {
			disabled++
		}
	}
	return Stats{
		Queries:               s.queries.Load(),
		BatchRequests:         s.batchRequests.Load(),
		BatchQueries:          s.batchQueries.Load(),
		SnapshotSwaps:         s.swaps.Load(),
		EventsApplied:         s.events.Load(),
		IncrementalRecomputes: s.incremental.Load(),
		FullRecomputes:        s.full.Load(),
		DestRecomputes:        s.destRecomputes.Load(),
		DestReuses:            s.destReuses.Load(),
		DeltaDestRebuilds:     s.deltaDests.Load(),
		ScratchDestRebuilds:   s.scratchDests.Load(),
		DeltaFrontierNodes:    s.frontierNodes.Load(),
		DeltaTouchedNodes:     s.touchedNodes.Load(),
		DeltaEnabled:          s.deltaOK,
		PagedColumns:          s.paged,
		PagesCloned:           s.pagesCloned.Load(),
		PagesShared:           s.pagesShared.Load(),
		BatchesApplied:        s.batches.Load(),
		EventsCoalesced:       s.coalesced.Load(),
		EventsRejected:        s.rejected.Load(),
		BatchErrors:           s.batchErrors.Load(),
		QueueDepth:            s.queueDepth(),
		QueueCapacity:         cap(s.intake),
		Backpressure:          s.backpressure.String(),
		SnapshotVersion:       sn.Version,
		Destinations:          len(s.dests),
		Nodes:                 s.base.N,
		Arcs:                  len(s.base.Arcs),
		DisabledArcs:          disabled,
		Engine:                string(s.eng.Mode()),
		Workers:               s.workers,
		ArenaBytes:            sn.arenaBytes,
		LiveEntries:           sn.liveEntries,
		TrieNodes:             sn.prefixes.TrieNodes(),
		Prefixes:              sn.prefixes.Len(),
		SuppressedPrefixes:    len(sn.prefixes.Suppressed()),
	}
}
