// Package serve is the long-lived route-query service layered on the
// unified execution layer: it owns per-destination route tables, answers
// concurrent Lookup/Forward queries lock-free against an immutable
// snapshot, and reconverges incrementally when topology events arrive.
//
// The design is RCU-style. A worker pool (each worker holding a reusable
// solve.Workspace) computes per-destination entry columns in parallel;
// the columns are assembled into a Snapshot and swapped in atomically,
// so readers racing a rebuild keep the previous snapshot and are never
// blocked. Topology events recompute only destinations whose routes the
// event can actually touch: destination d is skipped when the event's
// arc leaves d itself (the fixpoint solver never consults the
// destination's out-arcs) or when the arc's head has no route toward d
// in the current snapshot (then the arc never contributed a candidate in
// any solver round — routedness on a static graph only grows — so the
// from-scratch trajectory on the mutated graph is unchanged). Skipped
// columns are shared with the previous snapshot by reference; the
// differential tests assert every incremental snapshot is bit-identical
// to a fresh rib.BuildEngine on the mutated graph.
//
// Reconvergence after arbitrary topology change is exactly what
// increasing algebras guarantee (Daggitt & Griffin, PAPERS.md); for
// non-increasing algebras a destination may fail to converge within the
// solver budget, which the snapshot reports instead of hiding.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/scenario"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the snapshot builder's worker pool (≤ 0: 4).
	Workers int
}

// Snapshot is one immutable generation of route tables. All methods are
// safe for concurrent use; a snapshot never changes after publication,
// so a reader holding one sees a consistent view regardless of how many
// events the server has absorbed since.
type Snapshot struct {
	// Version increments with every swap (the initial build is 1).
	Version uint64
	// Graph is the topology view the snapshot was computed on (arcs
	// disabled by events are masked out; indices match the base graph).
	Graph *graph.Graph
	// Disabled records the per-arc failure state at build time.
	Disabled []bool
	// Unconverged lists destinations whose fixpoint did not settle
	// within the solver budget (possible for non-increasing algebras).
	Unconverged []int

	table map[int][]*rib.Entry
	rib   *rib.RIB
}

// RIB exposes the snapshot's route table.
func (sn *Snapshot) RIB() *rib.RIB { return sn.rib }

// Lookup returns node's entry toward dest (nil when unrouted/unknown).
func (sn *Snapshot) Lookup(node, dest int) *rib.Entry { return sn.rib.Lookup(node, dest) }

// Forward resolves the forwarding path from a node toward dest.
func (sn *Snapshot) Forward(from, dest int) (graph.Path, error) { return sn.rib.Forward(from, dest) }

// ECMPWidth returns the equal-cost next-hop count at node toward dest.
func (sn *Snapshot) ECMPWidth(node, dest int) int { return sn.rib.ECMPWidth(node, dest) }

// Stats is a point-in-time reading of the server's counters — the seed
// of the observability layer, surfaced at /stats and in BENCH_serve.json.
type Stats struct {
	Queries               uint64 `json:"queries"`
	SnapshotSwaps         uint64 `json:"snapshot_swaps"`
	EventsApplied         uint64 `json:"events_applied"`
	IncrementalRecomputes uint64 `json:"incremental_recomputes"`
	FullRecomputes        uint64 `json:"full_recomputes"`
	DestRecomputes        uint64 `json:"dest_recomputes"`
	DestReuses            uint64 `json:"dest_reuses"`
	SnapshotVersion       uint64 `json:"snapshot_version"`
	Destinations          int    `json:"destinations"`
	Nodes                 int    `json:"nodes"`
	Arcs                  int    `json:"arcs"`
	DisabledArcs          int    `json:"disabled_arcs"`
	Engine                string `json:"engine"`
	Workers               int    `json:"workers"`
}

// Server owns route state for a fixed origination set and serves
// concurrent queries against atomically swapped snapshots. Queries
// (Lookup, Forward, Snapshot) never take the writer lock; events and
// rebuilds serialize on it.
type Server struct {
	eng     exec.Algebra
	base    *graph.Graph
	origins map[int]value.V
	dests   []int // sorted, for deterministic build order
	workers int

	mu       sync.Mutex // serializes topology mutation + publication
	disabled []bool
	closed   bool

	snap atomic.Pointer[Snapshot]

	tasks chan func(*solve.Workspace)
	wg    sync.WaitGroup

	queries, swaps, events     atomic.Uint64
	incremental, full          atomic.Uint64
	destRecomputes, destReuses atomic.Uint64
}

// New builds a server over an execution engine, a base topology and the
// origination set (destination → originated weight), computes the
// initial snapshot with the worker pool and publishes it. The engine is
// wrapped with exec.Concurrent, so a dynamic backend may be handed in
// directly. Destinations that do not converge within the solver budget
// are reported in the snapshot, not as an error.
func New(eng exec.Algebra, g *graph.Graph, origins map[int]value.V, opts Options) (*Server, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("serve: no destinations originated")
	}
	dests := make([]int, 0, len(origins))
	for d, origin := range origins {
		if d < 0 || d >= g.N {
			return nil, fmt.Errorf("serve: destination %d out of range [0,%d)", d, g.N)
		}
		if _, err := eng.Intern(origin); err != nil {
			return nil, fmt.Errorf("serve: destination %d: %v", d, err)
		}
		dests = append(dests, d)
	}
	sort.Ints(dests)
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	s := &Server{
		eng:      exec.Concurrent(eng),
		base:     g,
		origins:  origins,
		dests:    dests,
		workers:  workers,
		disabled: make([]bool, len(g.Arcs)),
		tasks:    make(chan func(*solve.Workspace)),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ws := solve.NewWorkspace()
			for fn := range s.tasks {
				fn(ws)
			}
		}()
	}
	view := g.MaskArcs(s.disabled)
	table, unconv, err := s.buildDests(view, dests, nil)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.publish(view, table, unconv)
	return s, nil
}

// NewFromScenario builds a server from a parsed scenario: its engine,
// topology, and single origination. Replay the scenario's events with
// Replay(sc.SortedEvents()).
func NewFromScenario(sc *scenario.Scenario, opts Options) (*Server, error) {
	return New(sc.Engine, sc.Graph, map[int]value.V{sc.Dest: sc.Origin}, opts)
}

// Close stops the worker pool. The current snapshot stays readable, but
// ApplyEvent/Rebuild must not be called afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.tasks)
	s.wg.Wait()
}

// buildDests computes entry columns for the recompute set on view,
// sharding destinations across the worker pool; columns for every other
// destination are shared with prev by reference (they are immutable).
func (s *Server) buildDests(view *graph.Graph, recompute []int, prev map[int][]*rib.Entry) (map[int][]*rib.Entry, []int, error) {
	table := make(map[int][]*rib.Entry, len(s.dests))
	if prev != nil {
		inRecompute := make(map[int]bool, len(recompute))
		for _, d := range recompute {
			inRecompute[d] = true
		}
		for d, col := range prev {
			if !inRecompute[d] {
				table[d] = col
			}
		}
	}
	type built struct {
		entries   []*rib.Entry
		converged bool
		err       error
	}
	results := make([]built, len(recompute))
	var wg sync.WaitGroup
	for i, d := range recompute {
		i, d := i, d
		wg.Add(1)
		s.tasks <- func(ws *solve.Workspace) {
			defer wg.Done()
			entries, converged, err := rib.BuildDestEngine(s.eng, view, d, s.origins[d], ws)
			results[i] = built{entries: entries, converged: converged, err: err}
		}
	}
	wg.Wait()
	var unconverged []int
	for i, d := range recompute {
		if results[i].err != nil {
			return nil, nil, results[i].err
		}
		if !results[i].converged {
			unconverged = append(unconverged, d)
		}
		table[d] = results[i].entries
	}
	sort.Ints(unconverged)
	return table, unconverged, nil
}

// publish swaps in a new snapshot built from table. Callers hold s.mu.
func (s *Server) publish(view *graph.Graph, table map[int][]*rib.Entry, unconverged []int) {
	var version uint64 = 1
	if cur := s.snap.Load(); cur != nil {
		version = cur.Version + 1
	}
	sn := &Snapshot{
		Version:     version,
		Graph:       view,
		Disabled:    append([]bool(nil), s.disabled...),
		Unconverged: unconverged,
		table:       table,
		rib:         rib.FromEntries(s.eng, view, table),
	}
	s.snap.Store(sn)
	s.swaps.Add(1)
}

// ApplyEvent applies a link failure (fail=true) or recovery to the arc
// with the given index, recomputing only invalidated destinations, and
// publishes the resulting snapshot. It reports whether the event changed
// anything (re-failing a failed arc is a no-op) and how many
// destinations were recomputed. Readers are never blocked: they keep
// resolving against the previous snapshot until the swap.
func (s *Server) ApplyEvent(arc int, fail bool) (applied bool, recomputed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, 0, fmt.Errorf("serve: server is closed")
	}
	if arc < 0 || arc >= len(s.base.Arcs) {
		return false, 0, fmt.Errorf("serve: arc %d out of range [0,%d)", arc, len(s.base.Arcs))
	}
	if s.disabled[arc] == fail {
		return false, 0, nil
	}
	cur := s.snap.Load()
	s.disabled[arc] = fail
	view := cur.Graph.WithArcToggled(arc, s.disabled)
	a := s.base.Arcs[arc]
	var recompute []int
	for _, d := range s.dests {
		// Sound skips (see the package comment): the solver never
		// consults the destination's own out-arcs, and an arc whose head
		// holds no route toward d never contributes a candidate in any
		// round of a from-scratch run.
		if a.From == d || cur.rib.Lookup(a.To, d) == nil {
			continue
		}
		recompute = append(recompute, d)
	}
	table, unconv, err := s.buildDests(view, recompute, cur.table)
	if err != nil {
		s.disabled[arc] = !fail
		return false, 0, err
	}
	s.publish(view, table, unconv)
	s.events.Add(1)
	if len(recompute) == len(s.dests) {
		s.full.Add(1)
	} else {
		s.incremental.Add(1)
	}
	s.destRecomputes.Add(uint64(len(recompute)))
	s.destReuses.Add(uint64(len(s.dests) - len(recompute)))
	return true, len(recompute), nil
}

// ApplyEventEndpoints is ApplyEvent with the arc named by its endpoints
// (the form HTTP clients and scenario files use).
func (s *Server) ApplyEventEndpoints(from, to int, fail bool) (bool, int, error) {
	for ai, a := range s.base.Arcs {
		if a.From == from && a.To == to {
			return s.ApplyEvent(ai, fail)
		}
	}
	return false, 0, fmt.Errorf("serve: no arc %d → %d", from, to)
}

// Replay applies topology events in firing order (protocol.LinkEvent.At
// ascending) and returns how many changed the topology.
func (s *Server) Replay(events []protocol.LinkEvent) (applied int, err error) {
	evs := append([]protocol.LinkEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ok, _, err := s.ApplyEvent(ev.Arc, ev.Fail)
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// Rebuild recomputes every destination from scratch on the current
// topology and publishes the result — the full-rebuild baseline the
// incremental path is benchmarked against.
func (s *Server) Rebuild() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server is closed")
	}
	view := s.base.MaskArcs(s.disabled)
	table, unconv, err := s.buildDests(view, s.dests, nil)
	if err != nil {
		return err
	}
	s.publish(view, table, unconv)
	s.full.Add(1)
	s.destRecomputes.Add(uint64(len(s.dests)))
	return nil
}

// Snapshot returns the current snapshot (never nil after New).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Dests lists the originated destinations in ascending order.
func (s *Server) Dests() []int { return append([]int(nil), s.dests...) }

// Lookup resolves node's entry toward dest against the current snapshot,
// lock-free.
func (s *Server) Lookup(node, dest int) *rib.Entry {
	s.queries.Add(1)
	return s.snap.Load().Lookup(node, dest)
}

// Forward resolves the forwarding path from a node toward dest against
// the current snapshot, lock-free.
func (s *Server) Forward(from, dest int) (graph.Path, error) {
	s.queries.Add(1)
	return s.snap.Load().Forward(from, dest)
}

// ECMPWidth returns the equal-cost next-hop count at node toward dest in
// the current snapshot, lock-free.
func (s *Server) ECMPWidth(node, dest int) int {
	s.queries.Add(1)
	return s.snap.Load().ECMPWidth(node, dest)
}

// Stats reads the counters.
func (s *Server) Stats() Stats {
	sn := s.snap.Load()
	disabled := 0
	for _, d := range sn.Disabled {
		if d {
			disabled++
		}
	}
	return Stats{
		Queries:               s.queries.Load(),
		SnapshotSwaps:         s.swaps.Load(),
		EventsApplied:         s.events.Load(),
		IncrementalRecomputes: s.incremental.Load(),
		FullRecomputes:        s.full.Load(),
		DestRecomputes:        s.destRecomputes.Load(),
		DestReuses:            s.destReuses.Load(),
		SnapshotVersion:       sn.Version,
		Destinations:          len(s.dests),
		Nodes:                 s.base.N,
		Arcs:                  len(s.base.Arcs),
		DisabledArcs:          disabled,
		Engine:                string(s.eng.Mode()),
		Workers:               s.workers,
	}
}
