package serve_test

// Tests for the batched parallel rebuild pipeline: coalescing semantics,
// the batched-vs-serial differential across both engine backends, the
// intake queue's backpressure policies, rebuild cancellation, replay
// ordering, and a concurrent ApplyEvent+Lookup stress run. CI runs this
// file under -race.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// TestCoalesce is the coalescing unit table: last event per arc wins,
// cancels and duplicates drop out, output is sorted by arc.
func TestCoalesce(t *testing.T) {
	down := serve.ArcEvent{Arc: 0, Fail: true}
	up := serve.ArcEvent{Arc: 0, Fail: false}
	for _, tc := range []struct {
		name     string
		events   []serve.ArcEvent
		disabled []bool
		want     []serve.ArcEvent
		wantErr  bool
	}{
		{name: "empty", events: nil, disabled: []bool{false}, want: nil},
		{name: "single down", events: []serve.ArcEvent{down}, disabled: []bool{false},
			want: []serve.ArcEvent{down}},
		{name: "down then up cancels", events: []serve.ArcEvent{down, up}, disabled: []bool{false},
			want: nil},
		{name: "up then down is a down", events: []serve.ArcEvent{up, down}, disabled: []bool{false},
			want: []serve.ArcEvent{down}},
		{name: "duplicate downs dedupe", events: []serve.ArcEvent{down, down, down}, disabled: []bool{false},
			want: []serve.ArcEvent{down}},
		{name: "down of already-failed arc is a no-op", events: []serve.ArcEvent{down}, disabled: []bool{true},
			want: nil},
		{name: "up of a failed arc toggles", events: []serve.ArcEvent{up}, disabled: []bool{true},
			want: []serve.ArcEvent{up}},
		{name: "interleaved arcs keep their own last state",
			events: []serve.ArcEvent{
				{Arc: 2, Fail: true}, {Arc: 0, Fail: true}, {Arc: 2, Fail: false},
				{Arc: 1, Fail: true}, {Arc: 0, Fail: false}, {Arc: 1, Fail: true},
			},
			disabled: []bool{false, false, false},
			want:     []serve.ArcEvent{{Arc: 1, Fail: true}}},
		{name: "output sorted by arc",
			events:   []serve.ArcEvent{{Arc: 3, Fail: true}, {Arc: 1, Fail: true}, {Arc: 2, Fail: true}},
			disabled: []bool{false, false, false, false},
			want:     []serve.ArcEvent{{Arc: 1, Fail: true}, {Arc: 2, Fail: true}, {Arc: 3, Fail: true}}},
		{name: "out of range arc", events: []serve.ArcEvent{{Arc: 5, Fail: true}}, disabled: []bool{false},
			wantErr: true},
		{name: "negative arc", events: []serve.ArcEvent{{Arc: -1, Fail: true}}, disabled: []bool{false},
			wantErr: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := serve.Coalesce(tc.events, tc.disabled)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// engineBackends returns the two execution backends of the acceptance
// criterion for an algebra: the dynamic interpreter and — when the
// carrier compiles — the tabled compiled engine.
func engineBackends(t *testing.T, ot *ost.OrderTransform) map[string]exec.Algebra {
	t.Helper()
	backends := map[string]exec.Algebra{"dynamic": exec.NewDynamic(ot)}
	if compiled, err := exec.Compile(ot); err == nil {
		backends["compiled"] = compiled
	}
	return backends
}

// TestServeDifferentialBatched is the tentpole acceptance test for the
// batched pipeline: random finite algebras × GNP/ring/grid topologies,
// run on both engine backends. A serial single-worker server applies
// each storm one event at a time; a multi-worker server absorbs the same
// storm as one ApplyBatch. After every storm the two snapshots must be
// bit-identical to each other and to a fresh from-scratch build on the
// mutated graph. CI runs this under -race.
func TestServeDifferentialBatched(t *testing.T) {
	r := rand.New(rand.NewSource(1729))
	trials := 0
	for trials < 12 {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue
		}
		trials++
		g := randTopo(r, a.OT.F.Size())
		elems := a.OT.Carrier().Elems
		origins := map[int]value.V{0: randOrigin(r, elems)}
		for len(origins) < 2+r.Intn(3) {
			origins[r.Intn(g.N)] = randOrigin(r, elems)
		}
		for name, eng := range engineBackends(t, a.OT) {
			label := fmt.Sprintf("trial %d: %s on %s (%s)", trials, src, g, name)
			serial, err := serve.New(eng, g, origins, serve.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			batched, err := serve.New(eng, g, origins, serve.WithWorkers(4))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			disabled := make([]bool, len(g.Arcs))
			for storm := 0; storm < 4; storm++ {
				// A storm holds repeats and cancels so coalescing has real
				// work; track the net effect for the reference build.
				events := make([]serve.ArcEvent, 3+r.Intn(6))
				for i := range events {
					events[i] = serve.ArcEvent{Arc: r.Intn(len(g.Arcs)), Fail: r.Intn(2) == 0}
				}
				for _, ev := range events {
					if _, _, err := serial.ApplyEvent(context.Background(), ev.Arc, ev.Fail); err != nil {
						t.Fatalf("%s storm %d: serial: %v", label, storm, err)
					}
					disabled[ev.Arc] = ev.Fail
				}
				if _, _, err := batched.ApplyBatch(context.Background(), events); err != nil {
					t.Fatalf("%s storm %d: batched: %v", label, storm, err)
				}
				// Serial vs batched: identical tables.
				sGot, bGot := serial.Snapshot(), batched.Snapshot()
				if !reflect.DeepEqual(sGot.Disabled, bGot.Disabled) {
					t.Fatalf("%s storm %d: disabled state diverged:\n serial:  %v\n batched: %v",
						label, storm, sGot.Disabled, bGot.Disabled)
				}
				for _, d := range serial.Dests() {
					for u := 0; u < g.N; u++ {
						if se, be := sGot.Lookup(u, d), bGot.Lookup(u, d); !reflect.DeepEqual(se, be) {
							t.Fatalf("%s storm %d: entry (%d→%d) diverged:\n serial:  %+v\n batched: %+v",
								label, storm, u, d, se, be)
						}
					}
				}
				// Both vs a fresh from-scratch build on the mutated graph.
				fresh, err := rib.BuildEngine(exec.NewDynamic(a.OT), enabledSubgraph(t, g, disabled), origins)
				if err != nil {
					t.Fatalf("%s storm %d: fresh build: %v", label, storm, err)
				}
				sameTables(t, fmt.Sprintf("%s storm %d", label, storm), bGot, fresh, batched.Dests(), g.N)
			}
			serial.Close()
			batched.Close()
		}
	}
}

// batchFixture boots a deterministic multi-destination server with the
// given extra options; the batcher is left out so tests drive the queue
// by hand.
func batchFixture(t testing.TB, opts ...serve.Option) *serve.Server {
	t.Helper()
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(23))
	g := graph.Grid(r, 4, 4, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 15: value.Pair{A: 3, B: 2}}
	srv, err := serve.New(exec.For(a.OT), g, origins, append([]serve.Option{serve.WithWorkers(2)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestServeBackpressureReject: with the reject policy a full intake
// queue surfaces ErrBacklogged and counts the rejection; queued events
// still apply on the next drain.
func TestServeBackpressureReject(t *testing.T) {
	srv := batchFixture(t, serve.WithoutBatcher(), serve.WithQueueCapacity(2))
	if err := srv.EnqueueEvent(serve.ArcEvent{Arc: 0, Fail: true}); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnqueueEvent(serve.ArcEvent{Arc: 1, Fail: true}); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnqueueEvent(serve.ArcEvent{Arc: 2, Fail: true}); !errors.Is(err, serve.ErrBacklogged) {
		t.Fatalf("full queue must reject: got %v", err)
	}
	if err := srv.EnqueueEvent(serve.ArcEvent{Arc: -1, Fail: true}); err == nil || errors.Is(err, serve.ErrBacklogged) {
		t.Fatalf("out-of-range arc must fail validation, not backpressure: %v", err)
	}
	st := srv.Stats()
	if st.EventsRejected != 1 || st.QueueDepth != 2 || st.QueueCapacity != 2 || st.Backpressure != "reject" {
		t.Fatalf("stats wrong: %+v", st)
	}
	if err := srv.DrainForTest(); err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.QueueDepth != 0 || st.BatchesApplied != 1 || st.EventsApplied != 2 || st.DisabledArcs != 2 {
		t.Fatalf("post-drain stats wrong: %+v", st)
	}
	if d := srv.Snapshot().Disabled; !d[0] || !d[1] || d[2] {
		t.Fatalf("drain applied the wrong arcs: %v", d)
	}
}

// TestServeBackpressureStale: the stale policy absorbs overflow into the
// pending coalesced state — nothing lost, newest per-arc state wins, the
// snapshot lags until the next drain.
func TestServeBackpressureStale(t *testing.T) {
	srv := batchFixture(t, serve.WithoutBatcher(), serve.WithQueueCapacity(1),
		serve.WithBackpressure(serve.BackpressureStale))
	version := srv.Snapshot().Version
	// Queue takes one; the rest overflow into pending, where arc 1's later
	// up overwrites its down.
	for _, ev := range []serve.ArcEvent{
		{Arc: 0, Fail: true}, {Arc: 1, Fail: true}, {Arc: 2, Fail: true}, {Arc: 1, Fail: false},
	} {
		if err := srv.EnqueueEvent(ev); err != nil {
			t.Fatalf("stale policy must absorb %+v: %v", ev, err)
		}
	}
	st := srv.Stats()
	if st.EventsRejected != 0 || st.QueueDepth != 3 { // 1 queued + 2 pending arcs (arc 1 coalesced in place)
		t.Fatalf("pre-drain stats wrong: %+v", st)
	}
	if srv.Snapshot().Version != version {
		t.Fatal("snapshot must lag until the drain")
	}
	if err := srv.DrainForTest(); err != nil {
		t.Fatal(err)
	}
	if d := srv.Snapshot().Disabled; !d[0] || d[1] || !d[2] {
		t.Fatalf("drain must apply newest per-arc state: %v", d)
	}
	if st := srv.Stats(); st.QueueDepth != 0 || st.EventsApplied != 2 {
		t.Fatalf("post-drain stats wrong: %+v", st)
	}
}

// TestServeBatcherLive: the background batcher drains EnqueueEvent
// without manual help.
func TestServeBatcherLive(t *testing.T) {
	srv := batchFixture(t) // batcher on
	if err := srv.EnqueueEvent(serve.ArcEvent{Arc: 3, Fail: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().BatchesApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("batcher never applied the event: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if d := srv.Snapshot().Disabled; !d[3] {
		t.Fatalf("batcher applied the wrong state: %v", d)
	}
}

// TestServeCanceledRebuild: a canceled or expired context abandons the
// recompute — error out, previous snapshot and failure state intact —
// and the server keeps working afterwards.
func TestServeCanceledRebuild(t *testing.T) {
	srv := batchFixture(t, serve.WithoutBatcher())
	before := srv.Snapshot()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := srv.ApplyEvent(canceled, 0, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ApplyEvent: got %v", err)
	}
	if err := srv.Rebuild(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Rebuild: got %v", err)
	}
	expired, cancel2 := context.WithTimeout(context.Background(), -time.Second)
	defer cancel2()
	if _, _, err := srv.ApplyBatch(expired, []serve.ArcEvent{{Arc: 1, Fail: true}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ApplyBatch: got %v", err)
	}
	after := srv.Snapshot()
	if after != before {
		t.Fatalf("abandoned rebuilds must keep the previous snapshot: version %d → %d", before.Version, after.Version)
	}
	for i, d := range after.Disabled {
		if d {
			t.Fatalf("abandoned rebuild leaked failure state: arc %d disabled", i)
		}
	}
	// The failure state reverted, so the same event still applies cleanly.
	applied, _, err := srv.ApplyEvent(context.Background(), 0, true)
	if err != nil || !applied {
		t.Fatalf("post-cancel ApplyEvent: applied=%v err=%v", applied, err)
	}
	if sn := srv.Snapshot(); sn.Version != before.Version+1 || !sn.Disabled[0] {
		t.Fatalf("post-cancel snapshot wrong: %+v", sn)
	}
}

// TestServeReplayUnsorted: Replay must not depend on input order —
// events arriving unsorted by timestamp produce the same final state as
// the sorted sequence (regression for the firing-order contract).
func TestServeReplayUnsorted(t *testing.T) {
	// Arc 0 fails at t=50 and recovers at t=200; arc 2 fails at t=300.
	// Presented in scrambled order, the timestamps must still decide.
	events := []protocol.LinkEvent{
		{At: 300, Arc: 2, Fail: true},
		{At: 50, Arc: 0, Fail: true},
		{At: 200, Arc: 0, Fail: false},
	}
	sorted := batchFixture(t, serve.WithoutBatcher())
	shuffled := batchFixture(t, serve.WithoutBatcher())
	if _, err := sorted.Replay(context.Background(), []protocol.LinkEvent{events[1], events[2], events[0]}); err != nil {
		t.Fatal(err)
	}
	applied, err := shuffled.Replay(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("want 3 applied events, got %d", applied)
	}
	sGot, uGot := sorted.Snapshot(), shuffled.Snapshot()
	if !reflect.DeepEqual(sGot.Disabled, uGot.Disabled) {
		t.Fatalf("unsorted replay diverged: %v vs %v", sGot.Disabled, uGot.Disabled)
	}
	if d := uGot.Disabled; d[0] || !d[2] {
		t.Fatalf("timestamps must decide: arc 0 recovered, arc 2 failed: %v", d)
	}
	for _, d := range shuffled.Dests() {
		for u := 0; u < 16; u++ {
			if se, ue := sGot.Lookup(u, d), uGot.Lookup(u, d); !reflect.DeepEqual(se, ue) {
				t.Fatalf("entry (%d→%d) diverged after unsorted replay", u, d)
			}
		}
	}
}

// TestServeConcurrentApplyStress: 16 goroutines race ApplyEvent,
// ApplyBatch and queries; afterwards the snapshot must be bit-identical
// to a fresh build on whatever final state the race settled on. Run
// under -race in CI.
func TestServeConcurrentApplyStress(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	g := graph.Grid(r, 4, 4, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 15: value.Pair{A: 3, B: 2}}
	srv, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(4), serve.WithoutBatcher())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for step := 0; step < 30; step++ {
				switch rr.Intn(4) {
				case 0:
					if _, _, err := srv.ApplyEvent(context.Background(), rr.Intn(len(g.Arcs)), rr.Intn(2) == 0); err != nil {
						t.Errorf("ApplyEvent: %v", err)
						return
					}
				case 1:
					batch := []serve.ArcEvent{
						{Arc: rr.Intn(len(g.Arcs)), Fail: rr.Intn(2) == 0},
						{Arc: rr.Intn(len(g.Arcs)), Fail: rr.Intn(2) == 0},
					}
					if _, _, err := srv.ApplyBatch(context.Background(), batch); err != nil {
						t.Errorf("ApplyBatch: %v", err)
						return
					}
				case 2:
					srv.Lookup(rr.Intn(g.N), srv.Dests()[rr.Intn(2)])
					srv.Forward(rr.Intn(g.N), srv.Dests()[rr.Intn(2)]) //nolint:errcheck
				default:
					srv.Stats()
					srv.Snapshot().ECMPWidth(rr.Intn(g.N), 0)
				}
			}
		}(int64(i))
	}
	wg.Wait()

	final := srv.Snapshot()
	disabled := append([]bool(nil), final.Disabled...)
	fresh, err := rib.BuildEngine(exec.NewDynamic(a.OT), enabledSubgraph(t, g, disabled), origins)
	if err != nil {
		t.Fatal(err)
	}
	sameTables(t, "post-stress", final, fresh, srv.Dests(), g.N)
}
