package serve_test

// Tests for the versioned v1 API surface: legacy unversioned aliases
// answer identically plus a Deprecation header, the uniform error
// envelope, batch POST /v1/events with coalescing, and the async intake
// path's backpressure statuses.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// errEnvelope decodes the uniform {"error":{"code","message"}} payload
// and fails the test if the body has any other shape.
func errEnvelope(t *testing.T, rec *httptest.ResponseRecorder) serve.APIError {
	t.Helper()
	var body struct {
		Error serve.APIError `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, rec.Body)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope must carry code and message: %s", rec.Body)
	}
	return body.Error
}

// TestHandlerV1Aliases: every legacy route answers byte-identically to
// its /v1 successor, adds Deprecation and successor-version Link
// headers, and the v1 spelling stays clean of both.
func TestHandlerV1Aliases(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, h := httpFixture(t, reg)
	for _, tc := range []struct{ legacy, v1 string }{
		{"/route?from=1&dest=0", "/v1/route?from=1&dest=0"},
		{"/paths?dest=0", "/v1/paths?dest=0"},
		{"/stats", "/v1/stats"},
		{"/slowlog", "/v1/slowlog"},
		{"/metrics", "/v1/metrics"},
		{"/event?arc=0&kind=up", "/v1/events?arc=0&kind=up"},
		{"/events?arc=0&kind=up", "/v1/events?arc=0&kind=up"},
	} {
		legacy, v1 := get(h, tc.legacy), get(h, tc.v1)
		if legacy.Code != v1.Code {
			t.Fatalf("%s: status %d, successor %s: %d", tc.legacy, legacy.Code, tc.v1, v1.Code)
		}
		if legacy.Body.String() != v1.Body.String() {
			t.Fatalf("%s answered differently from %s:\n legacy: %s\n v1:     %s",
				tc.legacy, tc.v1, legacy.Body, v1.Body)
		}
		if got := legacy.Header().Get("Deprecation"); got != "true" {
			t.Fatalf("%s: Deprecation header = %q, want \"true\"", tc.legacy, got)
		}
		link := legacy.Header().Get("Link")
		if !strings.Contains(link, `rel="successor-version"`) || !strings.Contains(link, "/v1/") {
			t.Fatalf("%s: Link header %q must point at the v1 successor", tc.legacy, link)
		}
		if v1.Header().Get("Deprecation") != "" || v1.Header().Get("Link") != "" {
			t.Fatalf("%s must not be marked deprecated", tc.v1)
		}
	}
}

// TestHandlerLegacyRetired: without WithLegacyAPI the unversioned
// aliases answer 404 with the legacy_api_retired envelope and a Link
// header naming the successor, while the /v1 spellings keep working.
func TestHandlerLegacyRetired(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, _ := httpFixture(t, reg)
	h := serve.NewHandler(srv, reg)
	for _, tc := range []struct{ legacy, v1 string }{
		{"/route?from=1&dest=0", "/v1/route?from=1&dest=0"},
		{"/paths?dest=0", "/v1/paths?dest=0"},
		{"/stats", "/v1/stats"},
		{"/slowlog", "/v1/slowlog"},
		{"/metrics", "/v1/metrics"},
		{"/event?arc=0&kind=up", "/v1/events?arc=0&kind=up"},
		{"/events?arc=0&kind=up", "/v1/events?arc=0&kind=up"},
	} {
		rec := get(h, tc.legacy)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s without -legacy-api: status %d, want 404", tc.legacy, rec.Code)
		}
		if e := errEnvelope(t, rec); e.Code != serve.CodeLegacyRetired {
			t.Fatalf("%s: code %q, want %q", tc.legacy, e.Code, serve.CodeLegacyRetired)
		}
		link := rec.Header().Get("Link")
		if !strings.Contains(link, `rel="successor-version"`) || !strings.Contains(link, "/v1/") {
			t.Fatalf("%s: Link header %q must name the v1 successor", tc.legacy, link)
		}
		if v1 := get(h, tc.v1); v1.Code != http.StatusOK {
			t.Fatalf("%s: status %d, the successor must keep working", tc.v1, v1.Code)
		}
	}
}

// TestHandlerEventsBatch: POST /v1/events with the batch shape applies
// one coalesced recompute; a self-cancelling batch applies nothing; bad
// bodies answer the error envelope.
func TestHandlerEventsBatch(t *testing.T) {
	srv, h := httpFixture(t, nil)
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/events", strings.NewReader(body)))
		return rec
	}
	// Three raw events, one net toggle: arc 0's down+up cancels.
	rec := post(`{"events":[
		{"arc":0,"kind":"fail"},{"arc":1,"kind":"fail"},{"arc":0,"kind":"up"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch POST: status %d: %s", rec.Code, rec.Body)
	}
	var reply serve.EventsReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Applied != 1 || reply.Coalesced != 2 {
		t.Fatalf("want 1 applied / 2 coalesced, got %+v", reply)
	}
	if st := srv.Stats(); st.DisabledArcs != 1 || st.BatchesApplied != 1 {
		t.Fatalf("batch must have applied once: %+v", st)
	}
	version := srv.Snapshot().Version
	// A batch that coalesces to nothing publishes nothing.
	rec = post(`{"events":[{"arc":2,"kind":"fail"},{"arc":2,"kind":"up"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("no-op batch: status %d: %s", rec.Code, rec.Body)
	}
	if srv.Snapshot().Version != version {
		t.Fatal("no-op batch must not swap the snapshot")
	}
	// Error envelope on malformed and invalid bodies.
	for body, wantCode := range map[string]string{
		`{"events":[]}`: serve.CodeInvalidArgument,
		`{"events":[{"arc":9999,"kind":"fail"}]}`:  serve.CodeInvalidArgument,
		`{"events":[{"kind":"sideways","arc":0}]}`: serve.CodeInvalidArgument,
		`{"events":"nope"}`:                        serve.CodeInvalidArgument,
		`{"arc":0,"kind":"fail"}{"extra":1}`:       serve.CodeInvalidArgument,
	} {
		rec := post(body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, rec.Code)
		}
		if e := errEnvelope(t, rec); e.Code != wantCode {
			t.Fatalf("body %q: code %q, want %q", body, e.Code, wantCode)
		}
	}
	// Oversized body: 413 with the payload_too_large code.
	huge := `{"events":[{"arc":0,"kind":"fail","pad":"` + strings.Repeat("x", 2<<20) + `"}]}`
	rec = post(huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge body: status %d, want 413", rec.Code)
	}
	if e := errEnvelope(t, rec); e.Code != serve.CodePayloadTooLarge {
		t.Fatalf("huge body: code %q", e.Code)
	}
}

// asyncFixture boots a server with a tiny hand-drained intake queue so
// the async HTTP path's backpressure statuses are deterministic.
func asyncFixture(t *testing.T, policy serve.Backpressure) (*serve.Server, *http.ServeMux) {
	t.Helper()
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	g := graph.Grid(r, 3, 3, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}}
	srv, err := serve.New(exec.For(a.OT), g, origins,
		serve.WithWorkers(1), serve.WithoutBatcher(), serve.WithQueueCapacity(2), serve.WithBackpressure(policy))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, serve.NewHandler(srv, nil)
}

// TestHandlerEventsAsync: "async":true feeds the intake queue — 202
// with the accepted count, 429 with the backlogged code when the queue
// fills under the reject policy, 202 under the stale policy.
func TestHandlerEventsAsync(t *testing.T) {
	srv, h := asyncFixture(t, serve.BackpressureReject)
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/events", strings.NewReader(body)))
		return rec
	}
	rec := post(`{"events":[{"arc":0,"kind":"fail"},{"arc":1,"kind":"fail"}],"async":true}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async batch: status %d: %s", rec.Code, rec.Body)
	}
	var reply serve.EventsReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Accepted != 2 || reply.Applied != 0 {
		t.Fatalf("async reply wrong: %+v", reply)
	}
	if srv.Stats().DisabledArcs != 0 {
		t.Fatal("async events must not apply synchronously")
	}
	// Queue is now full (cap 2, no batcher): the next async event is 429.
	rec = post(`{"events":[{"arc":2,"kind":"fail"}],"async":true}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", rec.Code, rec.Body)
	}
	if e := errEnvelope(t, rec); e.Code != serve.CodeBacklogged {
		t.Fatalf("full queue: code %q, want %q", e.Code, serve.CodeBacklogged)
	}
	// Drain applies what was accepted.
	if err := srv.DrainForTest(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.DisabledArcs != 2 || st.QueueDepth != 0 {
		t.Fatalf("post-drain stats wrong: %+v", st)
	}

	// Same overflow under the stale policy: absorbed, still 202.
	staleSrv, staleH := asyncFixture(t, serve.BackpressureStale)
	rec = httptest.NewRecorder()
	staleH.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/events",
		strings.NewReader(`{"events":[{"arc":0,"kind":"fail"},{"arc":1,"kind":"fail"},{"arc":2,"kind":"fail"}],"async":true}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("stale overflow: status %d: %s", rec.Code, rec.Body)
	}
	if err := staleSrv.DrainForTest(); err != nil {
		t.Fatal(err)
	}
	if st := staleSrv.Stats(); st.DisabledArcs != 3 || st.EventsRejected != 0 {
		t.Fatalf("stale drain must apply everything: %+v", st)
	}
}
