package serve

// This file measures what warm-start delta reconvergence buys over
// from-scratch rebuilds: paired storm replays on identically built
// servers, one warm-starting every per-destination rebuild from the
// current snapshot column, one pinned to full sweeps by WithDelta(false).
// Storms are small perturbations — a handful of arcs failed as one
// batch, then restored as another — which is exactly the regime the
// frontier heuristic bets on. cmd/mrserve -delta-bench writes the result
// to BENCH_delta.json.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// DeltaReport is the paired delta-vs-scratch measurement. Timings are
// mean per-batch cost in microseconds; a storm is one fail batch plus
// one restore batch, so each round contributes two batches per server.
type DeltaReport struct {
	Nodes        int    `json:"nodes"`
	Arcs         int    `json:"arcs"`
	Destinations int    `json:"destinations"`
	StormArcs    int    `json:"storm_arcs"`
	Rounds       int    `json:"rounds"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Engine       string `json:"engine"`

	// ScratchBatchUS is the baseline: every rebuild a full sweep.
	ScratchBatchUS float64 `json:"scratch_batch_us"`
	// DeltaBatchUS is the warm-start pipeline on identical batches.
	DeltaBatchUS float64 `json:"delta_batch_us"`
	// SpeedupDelta is ScratchBatchUS / DeltaBatchUS — the headline.
	SpeedupDelta float64 `json:"speedup_delta"`

	// DeltaRebuilds and ScratchRebuilds count the delta server's
	// per-destination rebuilds by path taken; ScratchRebuilds > 0 here
	// means frontier cutovers or unusable warm starts, not a gate miss.
	DeltaRebuilds   uint64 `json:"delta_rebuilds"`
	ScratchRebuilds uint64 `json:"scratch_rebuilds"`
	// MeanFrontier and MeanTouched are per-delta-rebuild averages of the
	// seeded frontier and the nodes the drain ever enqueued.
	MeanFrontier float64 `json:"mean_frontier_nodes"`
	MeanTouched  float64 `json:"mean_touched_nodes"`
}

// MeasureDelta builds two identically configured servers via mk — one
// with delta reconvergence enabled, one pinned to from-scratch sweeps —
// and replays rounds deterministic small-perturbation storms through
// both. Each storm fails stormArcs distinct random arcs as one batch,
// then restores them as another; both batches are timed on both
// servers, so the two timings cover identical work and every round ends
// back at the all-enabled topology. The delta server must actually have
// the warm-start path licensed (serve the bench an M or I algebra).
func MeasureDelta(mk func(delta bool) (*Server, error), stormArcs, rounds int, seed int64) (*DeltaReport, error) {
	if stormArcs <= 0 {
		stormArcs = 4
	}
	if rounds <= 0 {
		rounds = 10
	}
	scratch, err := mk(false)
	if err != nil {
		return nil, err
	}
	defer scratch.Close()
	delta, err := mk(true)
	if err != nil {
		return nil, err
	}
	defer delta.Close()
	if scratch.base.N != delta.base.N || len(scratch.base.Arcs) != len(delta.base.Arcs) {
		return nil, fmt.Errorf("serve: mk built different topologies (%d/%d nodes, %d/%d arcs)",
			scratch.base.N, delta.base.N, len(scratch.base.Arcs), len(delta.base.Arcs))
	}
	if scratch.Stats().DeltaEnabled {
		return nil, fmt.Errorf("serve: baseline server has delta enabled — mk must honour WithDelta(false)")
	}
	if !delta.Stats().DeltaEnabled {
		return nil, fmt.Errorf("serve: delta server has no warm-start license — bench needs an M or I algebra")
	}
	arcs := len(scratch.base.Arcs)
	if stormArcs > arcs {
		stormArcs = arcs
	}

	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))

	// A storm is stormArcs distinct arcs failed together, then restored
	// together — the small-cut regime where most destination columns
	// move a little or not at all.
	makeStorm := func() ([]ArcEvent, []ArcEvent) {
		picked := make(map[int]bool, stormArcs)
		fail := make([]ArcEvent, 0, stormArcs)
		restore := make([]ArcEvent, 0, stormArcs)
		for len(fail) < stormArcs {
			arc := r.Intn(arcs)
			if picked[arc] {
				continue
			}
			picked[arc] = true
			fail = append(fail, ArcEvent{Arc: arc, Fail: true})
			restore = append(restore, ArcEvent{Arc: arc, Fail: false})
		}
		return fail, restore
	}
	runStorm := func(s *Server, fail, restore []ArcEvent) (time.Duration, error) {
		t0 := time.Now()
		if _, _, err := s.ApplyBatch(ctx, fail); err != nil {
			return 0, err
		}
		if _, _, err := s.ApplyBatch(ctx, restore); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}

	var scratchNS, deltaNS int64
	// Round -1 is an unmeasured warmup.
	for round := -1; round < rounds; round++ {
		fail, restore := makeStorm()
		ds, err := runStorm(scratch, fail, restore)
		if err != nil {
			return nil, err
		}
		dd, err := runStorm(delta, fail, restore)
		if err != nil {
			return nil, err
		}
		if round >= 0 {
			scratchNS += ds.Nanoseconds()
			deltaNS += dd.Nanoseconds()
		}
	}

	// Two batches per measured round.
	batches := float64(2 * rounds)
	st := delta.Stats()
	rep := &DeltaReport{
		Nodes:           scratch.base.N,
		Arcs:            arcs,
		Destinations:    len(scratch.dests),
		StormArcs:       stormArcs,
		Rounds:          rounds,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Engine:          st.Engine,
		ScratchBatchUS:  float64(scratchNS) / batches / 1e3,
		DeltaBatchUS:    float64(deltaNS) / batches / 1e3,
		DeltaRebuilds:   st.DeltaDestRebuilds,
		ScratchRebuilds: st.ScratchDestRebuilds,
	}
	if rep.DeltaBatchUS > 0 {
		rep.SpeedupDelta = rep.ScratchBatchUS / rep.DeltaBatchUS
	}
	if st.DeltaDestRebuilds > 0 {
		rep.MeanFrontier = float64(st.DeltaFrontierNodes) / float64(st.DeltaDestRebuilds)
		rep.MeanTouched = float64(st.DeltaTouchedNodes) / float64(st.DeltaDestRebuilds)
	}
	return rep, nil
}
