package serve

// This file measures what the arena-flat column store buys over the
// pointer-table baseline at Internet-ish scale: for each node count it
// builds the same destination columns twice — once as rib.Column arenas,
// once as legacy []*rib.Entry pointer columns — and reads the retained
// heap delta around each build, so the bytes-per-route-entry numbers in
// BENCH_scale.json reflect what a resident snapshot actually costs, not
// struct arithmetic. The same run drives the LPM differential: every
// destination's auto-prefix must resolve through the trie to a column
// bit-identical to the node-keyed pointer path.

import (
	"fmt"
	"runtime"
	"time"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/rib"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// ScalePoint is one node-count measurement in the scale report.
type ScalePoint struct {
	Nodes        int `json:"nodes"`
	Arcs         int `json:"arcs"`
	Destinations int `json:"destinations"`
	// Entries counts routed slots across all measured columns — the
	// denominator of both per-entry readings.
	Entries int `json:"route_entries"`
	// ArenaBytes/PointerBytes are retained-heap deltas (double-GC
	// ReadMemStats) around the respective builds.
	ArenaBytes   int64 `json:"arena_bytes"`
	PointerBytes int64 `json:"pointer_bytes"`
	// TrieNodes is the flat pool size of the LPM trie over the
	// destinations' auto-prefixes.
	TrieNodes int `json:"trie_nodes"`

	ArenaBytesPerEntry   float64 `json:"arena_bytes_per_entry"`
	PointerBytesPerEntry float64 `json:"pointer_bytes_per_entry"`
	// Ratio is PointerBytesPerEntry / ArenaBytesPerEntry — the headline
	// number; the acceptance bar is ≥ 2.
	Ratio float64 `json:"pointer_to_arena_ratio"`

	// ArenaBuildMS/PointerBuildMS are wall-clock build times for the
	// measured (second) build of each representation.
	ArenaBuildMS   float64 `json:"arena_build_ms"`
	PointerBuildMS float64 `json:"pointer_build_ms"`

	// LPMDifferentialOK records that every destination's auto-prefix
	// resolved through the trie to a column bit-identical to the
	// node-keyed pointer path.
	LPMDifferentialOK bool `json:"lpm_differential_ok"`
}

// ScaleReport is the BENCH_scale.json shape.
type ScaleReport struct {
	Engine     string       `json:"engine"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ScalePoint `json:"points"`
}

// retainedBytes runs build between two double-GC heap readings and
// returns the retained delta (clamped at zero: an unrelated release
// concurrent with the build must not produce a negative footprint).
func retainedBytes(build func()) int64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m0)
	build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	d := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

// MeasureScale runs the arena-vs-pointer measurement at each node
// count. mk builds the workload for one node count: the engine (a
// compiled backend keeps the measurement clean; a dynamic backend is
// pre-warmed by a throwaway build so its intern growth lands outside
// the measured windows), the topology, and the origination set. The
// returned report carries one point per node count; an LPM
// differential failure is an error, not a report field quietly set to
// false.
func MeasureScale(mk func(nodes int) (exec.Algebra, *graph.Graph, map[int]value.V, error), nodeCounts []int) (*ScaleReport, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1000, 10000, 100000}
	}
	rep := &ScaleReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range nodeCounts {
		eng, g, origins, err := mk(n)
		if err != nil {
			return nil, err
		}
		if rep.Engine == "" {
			rep.Engine = string(eng.Mode())
		}
		pt, err := rib.AutoPrefixTable(origins)
		if err != nil {
			return nil, err
		}
		dests := make([]int, 0, len(origins))
		for d := range origins {
			dests = append(dests, d)
		}
		ws := solve.NewWorkspace()
		// Pre-warm: one throwaway column per destination interns every
		// weight a dynamic backend will ever see for this workload, so
		// engine-table growth cannot leak into the measured windows.
		for _, d := range dests {
			if _, err := rib.BuildDestColumn(eng, g, d, origins[d], ws); err != nil {
				return nil, err
			}
		}

		point := ScalePoint{Nodes: g.N, Arcs: len(g.Arcs), Destinations: len(dests), TrieNodes: pt.TrieNodes()}
		var cols map[int]*rib.Column
		var buildErr error
		t0 := time.Now()
		point.ArenaBytes = retainedBytes(func() {
			cols = make(map[int]*rib.Column, len(dests))
			for _, d := range dests {
				col, err := rib.BuildDestColumn(eng, g, d, origins[d], ws)
				if err != nil {
					buildErr = err
					return
				}
				cols[d] = col
			}
		})
		point.ArenaBuildMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		if buildErr != nil {
			return nil, buildErr
		}
		var table map[int][]*rib.Entry
		t0 = time.Now()
		point.PointerBytes = retainedBytes(func() {
			table = make(map[int][]*rib.Entry, len(dests))
			for _, d := range dests {
				entries, _, err := rib.BuildDestEngine(eng, g, d, origins[d], ws)
				if err != nil {
					buildErr = err
					return
				}
				table[d] = entries
			}
		})
		point.PointerBuildMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		if buildErr != nil {
			return nil, buildErr
		}

		for _, col := range cols {
			point.Entries += col.Live()
		}
		if point.Entries > 0 {
			point.ArenaBytesPerEntry = float64(point.ArenaBytes) / float64(point.Entries)
			point.PointerBytesPerEntry = float64(point.PointerBytes) / float64(point.Entries)
		}
		if point.ArenaBytesPerEntry > 0 {
			point.Ratio = point.PointerBytesPerEntry / point.ArenaBytesPerEntry
		}

		// LPM differential: each destination's auto-prefix must resolve
		// through the trie to its anchor, and the anchored arena column
		// must be bit-identical to the node-keyed pointer column.
		for _, d := range dests {
			po, ok := pt.Match(rib.AutoPrefix(d).Addr)
			if !ok || po.Node != d {
				return nil, fmt.Errorf("serve: scale bench: auto-prefix for destination %d resolved to %+v", d, po)
			}
			col, entries := cols[po.Node], table[d]
			for u := 0; u < g.N; u++ {
				if err := slotMatchesEntry(eng, col, entries, u); err != nil {
					return nil, fmt.Errorf("serve: scale bench: n=%d dest %d node %d: %v", n, d, u, err)
				}
			}
		}
		point.LPMDifferentialOK = true
		runtime.KeepAlive(table)
		rep.Points = append(rep.Points, point)
	}
	return rep, nil
}

// slotMatchesEntry compares one arena slot against its legacy pointer
// entry: routedness, resolved weight, ECMP sequence.
func slotMatchesEntry(eng exec.Algebra, col *rib.Column, entries []*rib.Entry, u int) error {
	e := entries[u]
	s := col.Slots[u]
	if (e != nil) != s.Routed {
		return fmt.Errorf("routedness differs (arena %v, pointer %v)", s.Routed, e != nil)
	}
	if e == nil {
		return nil
	}
	if w := eng.Value(s.W); w != e.Weight {
		return fmt.Errorf("weight differs (arena %v, pointer %v)", w, e.Weight)
	}
	nh := col.NextHops(u)
	if len(nh) != len(e.NextHops) {
		return fmt.Errorf("ECMP width differs (arena %v, pointer %v)", nh, e.NextHops)
	}
	for i, v := range e.NextHops {
		if int(nh[i]) != v {
			return fmt.Errorf("ECMP set differs (arena %v, pointer %v)", nh, e.NextHops)
		}
	}
	return nil
}
