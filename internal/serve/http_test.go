package serve_test

// Tests and fuzz targets for the HTTP/JSON API. The fuzz targets state
// the handler's crash-safety contract: arbitrary query strings and
// bodies — malformed JSON, out-of-range node ids, huge payloads — must
// produce 4xx (or well-formed 2xx) replies and never panic. CI runs
// them as regression corpora under `go test` and as short live fuzz
// sessions in the fuzz-smoke job.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// httpFixture boots a small deterministic server and its handler.
func httpFixture(t testing.TB, reg *telemetry.Registry) (*serve.Server, *http.ServeMux) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	g := graph.Grid(r, 3, 3, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 8: value.Pair{A: 2, B: 1}}
	srv, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(2), serve.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	// The fixture opts in to the retired aliases so the byte-identity
	// alias tests keep covering the flag-on path; TestHandlerLegacyRetired
	// builds a default handler to pin the flag-off 404s.
	return srv, serve.NewHandler(srv, reg, serve.WithLegacyAPI())
}

func get(h http.Handler, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHandlerRoute(t *testing.T) {
	_, h := httpFixture(t, nil)
	rec := get(h, "/route?from=1&dest=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var reply serve.RouteReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Routed || len(reply.Path) == 0 {
		t.Fatalf("node 1 must route to 0: %+v", reply)
	}
	// Out-of-range and malformed ids are client errors, not empty 200s.
	for _, target := range []string{
		"/route?from=999&dest=0", "/route?from=-1&dest=0", "/route?from=1&dest=99",
		"/route?from=x&dest=0", "/route?dest=0", "/route",
		"/paths?dest=999", "/paths?dest=y", "/paths",
	} {
		if rec := get(h, target); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", target, rec.Code)
		}
	}
	// In-range but unoriginated destination: valid question, empty answer.
	rec = get(h, "/route?from=1&dest=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("unoriginated dest: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil || reply.Routed {
		t.Fatalf("unoriginated dest must answer routed=false: %+v (%v)", reply, err)
	}
}

func TestHandlerEventPost(t *testing.T) {
	srv, h := httpFixture(t, nil)
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/event", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := post(`{"arc":0,"kind":"fail"}`); rec.Code != http.StatusOK {
		t.Fatalf("valid POST: status %d: %s", rec.Code, rec.Body)
	}
	if got := srv.Stats().DisabledArcs; got != 1 {
		t.Fatalf("event must have applied: %d disabled arcs", got)
	}
	for _, body := range []string{
		``, `{`, `[]`, `{"kind":"sideways","arc":0}`, `{"kind":"fail"}`,
		`{"kind":"fail","arc":99999}`, `{"kind":"up","from":1}`,
		`{"kind":"fail","arc":0,"extra":true}`,
	} {
		if rec := post(body); rec.Code < 400 || rec.Code >= 500 {
			t.Fatalf("body %q: status %d, want 4xx", body, rec.Code)
		}
	}
	// A huge payload must be rejected, never buffered into a panic/5xx.
	huge := `{"kind":"fail","arc":0,"pad":"` + strings.Repeat("x", 2<<20) + `"}`
	if rec := post(huge); rec.Code < 400 || rec.Code >= 500 {
		t.Fatalf("huge body: status %d, want 4xx", rec.Code)
	}
	// GET form still works, endpoints variant included.
	if rec := get(h, "/event?arc=0&kind=up"); rec.Code != http.StatusOK {
		t.Fatalf("GET event: status %d: %s", rec.Code, rec.Body)
	}
	if rec := get(h, "/event?from=0&to=5&kind=fail"); rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
		t.Fatalf("GET endpoints event: status %d", rec.Code)
	}
}

func TestHandlerStatsAndSlowlog(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, h := httpFixture(t, reg)
	rec := get(h, "/stats")
	var st serve.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 9 || st.Destinations != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	rec = get(h, "/slowlog")
	var slow []serve.SlowQuery
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("slowlog must be a JSON array: %v (%s)", err, rec.Body)
	}
	rec = get(h, "/metrics")
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("mrserve_query_seconds_bucket")) {
		t.Fatalf("/metrics must expose the query histogram: %d\n%s", rec.Code, rec.Body)
	}
}

// FuzzRouteHandler: arbitrary /route and /paths query strings never
// panic and never produce a 5xx.
func FuzzRouteHandler(f *testing.F) {
	_, h := httpFixture(f, nil)
	for _, seed := range []string{
		"from=1&dest=0", "from=999&dest=0", "from=-1&dest=-9999999999999999999",
		"from=x&dest=", "from=1&dest=0&from=2", "%zz=1", "from=+1&dest=0x10",
		"from=1;dest=0", "", "dest=8&from=4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		for _, path := range []string{"/route", "/paths"} {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, path, nil)
			req.URL.RawQuery = query
			h.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("%s?%s: status %d", path, query, rec.Code)
			}
			if rec.Code == http.StatusOK && !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s?%s: 200 with invalid JSON: %s", path, query, rec.Body)
			}
		}
	})
}

// FuzzEventHandler: arbitrary /event query strings and POST bodies
// never panic, never 5xx, and leave the server answering queries.
func FuzzEventHandler(f *testing.F) {
	srv, h := httpFixture(f, nil)
	for _, seed := range [][2]string{
		{"arc=0&kind=fail", ""},
		{"", `{"arc":0,"kind":"fail"}`},
		{"", `{"from":0,"to":5,"kind":"up"}`},
		{"", `{"arc":18446744073709551615,"kind":"fail"}`},
		{"", `{"arc":0,"kind":"fail","pad":"` + strings.Repeat("y", 4096) + `"}`},
		{"kind=fail&from=0", `not json at all`},
		{"arc=-1&kind=up", `{"kind":`},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, query, body string) {
		rec := httptest.NewRecorder()
		method := http.MethodGet
		if body != "" {
			method = http.MethodPost
		}
		req := httptest.NewRequest(method, "/event", strings.NewReader(body))
		req.URL.RawQuery = query
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("event %q %q: status %d", query, body, rec.Code)
		}
		// Whatever the event stream did, the server must keep answering.
		if sn := srv.Snapshot(); sn == nil {
			t.Fatal("snapshot lost after event")
		}
		srv.Lookup(0, 0)
	})
}

// FuzzRouteHandlerV1 is FuzzRouteHandler over the versioned spellings:
// /v1/route and /v1/paths must never 500 and must answer valid JSON on
// 200, whatever the query string holds.
func FuzzRouteHandlerV1(f *testing.F) {
	_, h := httpFixture(f, nil)
	for _, seed := range []string{
		"from=1&dest=0", "from=999&dest=0", "from=-1&dest=-9999999999999999999",
		"from=x&dest=", "from=1&dest=0&from=2", "%zz=1", "from=+1&dest=0x10",
		"from=1;dest=0", "", "dest=8&from=4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		for _, path := range []string{"/v1/route", "/v1/paths"} {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, path, nil)
			req.URL.RawQuery = query
			h.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("%s?%s: status %d", path, query, rec.Code)
			}
			if rec.Code == http.StatusOK && !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s?%s: 200 with invalid JSON: %s", path, query, rec.Body)
			}
		}
	})
}

// FuzzEventsHandlerV1 throws arbitrary query strings and JSON bodies —
// batch envelopes, bare events, async requests, garbage — at the
// versioned /v1/events endpoint: no 500s, and the server must keep
// serving snapshots afterwards.
func FuzzEventsHandlerV1(f *testing.F) {
	srv, h := httpFixture(f, nil)
	for _, seed := range [][2]string{
		{"arc=0&kind=fail", ""},
		{"", `{"events":[{"arc":0,"kind":"fail"},{"arc":1,"kind":"up"}]}`},
		{"", `{"events":[{"arc":0,"kind":"fail"}],"async":true}`},
		{"", `{"events":[]}`},
		{"", `{"events":null,"async":true}`},
		{"", `{"arc":0,"kind":"fail"}`},
		{"", `{"from":0,"to":5,"kind":"up"}`},
		{"", `{"events":[{"arc":18446744073709551615,"kind":"fail"}]}`},
		{"", `{"events":[{"arc":0,"kind":"` + strings.Repeat("z", 4096) + `"}]}`},
		{"kind=fail&from=0", `not json at all`},
		{"arc=-1&kind=up", `{"events":[`},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, query, body string) {
		rec := httptest.NewRecorder()
		method := http.MethodGet
		if body != "" {
			method = http.MethodPost
		}
		req := httptest.NewRequest(method, "/v1/events", strings.NewReader(body))
		req.URL.RawQuery = query
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("events %q %q: status %d", query, body, rec.Code)
		}
		if sn := srv.Snapshot(); sn == nil {
			t.Fatal("snapshot lost after events")
		}
		srv.Lookup(0, 0)
	})
}
