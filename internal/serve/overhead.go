package serve

// This file measures what the telemetry subsystem costs on the query
// path: two identically built servers — one bare, one with a registry —
// answer the same deterministic query mix in interleaved rounds, and
// the per-op difference is the instrumentation overhead. cmd/mrserve
// -telemetry-bench writes the result to BENCH_telemetry.json; the
// acceptance bar is ≤ 10% overhead.

import (
	"math/rand"
	"runtime"
	"time"
)

// OverheadReport is the paired instrumented-vs-bare measurement.
type OverheadReport struct {
	QueriesPerSide      int     `json:"queries_per_side"`
	Rounds              int     `json:"rounds"`
	BareNSPerOp         float64 `json:"bare_ns_per_op"`
	InstrumentedNSPerOp float64 `json:"instrumented_ns_per_op"`
	OverheadPct         float64 `json:"overhead_pct"`
	Engine              string  `json:"engine"`
	Nodes               int     `json:"nodes"`
	Arcs                int     `json:"arcs"`
	Destinations        int     `json:"destinations"`
}

// MeasureOverhead drives bare and instrumented — two servers built over
// the same engine, topology and originations, differing only in
// Options.Telemetry — with an identical deterministic Forward query
// sequence, rounds times each, alternating which side goes first so
// clock drift and cache warmth cancel. queries is the per-round batch
// size (≤ 0: 50 000), rounds the number of measured batches per side
// (≤ 0: 5); one unmeasured warmup round runs first.
func MeasureOverhead(bare, instrumented *Server, queries, rounds int, seed int64) *OverheadReport {
	if queries <= 0 {
		queries = 50_000
	}
	if rounds <= 0 {
		rounds = 5
	}
	r := rand.New(rand.NewSource(seed))
	dests := bare.Dests()
	n := bare.base.N
	froms := make([]int, queries)
	tos := make([]int, queries)
	for i := range froms {
		froms[i] = r.Intn(n)
		tos[i] = dests[r.Intn(len(dests))]
	}
	batch := func(s *Server) time.Duration {
		t0 := time.Now()
		for i := range froms {
			s.Forward(froms[i], tos[i]) //nolint:errcheck — missing routes are a valid answer
		}
		return time.Since(t0)
	}

	// Warmup both sides, then drain the garbage so collector pauses do
	// not land inside one side's batches.
	batch(bare)
	batch(instrumented)
	runtime.GC()

	var bareNS, instNS int64
	for round := 0; round < rounds; round++ {
		if round%2 == 0 {
			bareNS += batch(bare).Nanoseconds()
			instNS += batch(instrumented).Nanoseconds()
		} else {
			instNS += batch(instrumented).Nanoseconds()
			bareNS += batch(bare).Nanoseconds()
		}
	}

	ops := float64(queries * rounds)
	rep := &OverheadReport{
		QueriesPerSide:      queries * rounds,
		Rounds:              rounds,
		BareNSPerOp:         float64(bareNS) / ops,
		InstrumentedNSPerOp: float64(instNS) / ops,
		Engine:              bare.Stats().Engine,
		Nodes:               n,
		Arcs:                len(bare.base.Arcs),
		Destinations:        len(dests),
	}
	if bareNS > 0 {
		rep.OverheadPct = (rep.InstrumentedNSPerOp - rep.BareNSPerOp) / rep.BareNSPerOp * 100
	}
	return rep
}
