package serve_test

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// TestMeasureStormSmoke runs the paired paged-vs-flat storm
// measurement end to end at toy scale: both servers must come up in
// their assigned layouts, every per-swap differential must pass, and
// the COW counters must show genuine page sharing.
func TestMeasureStormSmoke(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	origin := a.OT.DefaultOrigin()
	mk := func(paged bool) (*serve.Server, error) {
		g := graph.ScaleFree(rand.New(rand.NewSource(9)), 96, 2, graph.UniformLabels(a.OT.F.Size()))
		origins := map[int]value.V{0: origin, 31: origin, 63: origin}
		return serve.New(exec.For(a.OT, origin), g, origins,
			serve.WithWorkers(2), serve.WithDeltaProps(a.Props), serve.WithPagedColumns(paged))
	}
	rep, err := serve.MeasureStorm(mk, 2, 3, 5)
	if err != nil {
		t.Fatalf("MeasureStorm: %v", err)
	}
	if !rep.DifferentialOK || rep.DifferentialChecks == 0 {
		t.Fatalf("differential: ok=%v over %d checks", rep.DifferentialOK, rep.DifferentialChecks)
	}
	// 2 swaps (fail + restore) per round, warmup round included in the
	// differential but not the timings.
	if want := 2 * (3 + 1); rep.DifferentialChecks != want {
		t.Fatalf("differential checks = %d, want %d", rep.DifferentialChecks, want)
	}
	if rep.Nodes != 96 || rep.StormArcs != 2 || rep.Rounds != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.PagesShared == 0 {
		t.Fatal("storm shared no pages — copy-on-write never engaged")
	}
	if rep.DeltaRebuilds == 0 {
		t.Fatal("storm never took the delta path")
	}
	if rep.FlatSwapUS <= 0 || rep.PagedSwapUS <= 0 {
		t.Fatalf("degenerate timings: flat %.3fµs paged %.3fµs", rep.FlatSwapUS, rep.PagedSwapUS)
	}
}
