package serve

// The follower's HTTP API mirrors the leader's read surface —
// /v1/route, /v1/paths, /v1/prefixes, /v1/stats, /v1/metrics — with
// the same reply shapes, so a load balancer can spread reads across
// replicas without clients caring which role answered. Mutations are
// refused: /v1/events answers 403 read_only (events go to the leader,
// whose swap comes back down the record stream). Until the first full
// snapshot has applied every data endpoint answers 503 not_ready.

import (
	"fmt"
	"net/http"
	"strconv"

	"metarouting/internal/rib"
	"metarouting/internal/telemetry"
)

// FollowerStats is the /v1/stats shape a follower answers: replication
// progress instead of solver counters, plus the same topology footprint
// fields the leader reports. Role lets clients and smoke tests tell the
// two apart without guessing from field sets.
type FollowerStats struct {
	Role               string `json:"role"`
	SnapshotVersion    uint64 `json:"snapshot_version"`
	Head               uint64 `json:"head"`
	Lag                uint64 `json:"lag"`
	AppliedFull        uint64 `json:"applied_full_records"`
	AppliedDelta       uint64 `json:"applied_delta_records"`
	StaleSkipped       uint64 `json:"stale_records_skipped"`
	ApplyErrors        uint64 `json:"apply_errors"`
	Nodes              int    `json:"nodes"`
	Destinations       int    `json:"destinations"`
	DisabledArcs       int    `json:"disabled_arcs"`
	Unconverged        int    `json:"unconverged_destinations"`
	ArenaBytes         int    `json:"arena_bytes"`
	LiveEntries        int    `json:"live_entries"`
	Prefixes           int    `json:"prefixes"`
	SuppressedPrefixes int    `json:"suppressed_prefixes"`
	TrieNodes          int    `json:"trie_nodes"`
	Checksum           string `json:"checksum"`
}

// NewFollowerHandler returns the follower's HTTP API; reg non-nil also
// mounts /v1/metrics. The unversioned aliases are not mounted —
// followers are new surface with no legacy clients.
func NewFollowerHandler(f *Follower, reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	badRequest := func(w http.ResponseWriter, format string, args ...any) {
		writeErr(w, http.StatusBadRequest, CodeInvalidArgument, format, args...)
	}
	// ready gates data endpoints on bootstrap and read-your-version.
	ready := func(w http.ResponseWriter, req *http.Request) *followerView {
		v := f.view()
		if v == nil {
			writeErr(w, http.StatusServiceUnavailable, CodeNotReady,
				"follower has not applied a full snapshot yet")
			return nil
		}
		if !versionGate(w, req, v.state.Version) {
			return nil
		}
		return v
	}
	nodeArg := func(req *http.Request, key string, n int) (int, error) {
		v, err := strconv.Atoi(req.URL.Query().Get(key))
		if err != nil {
			return 0, fmt.Errorf("bad or missing %q parameter", key)
		}
		if v < 0 || v >= n {
			return 0, fmt.Errorf("%q = %d out of range [0,%d)", key, v, n)
		}
		return v, nil
	}

	mux.HandleFunc("/v1/route", func(w http.ResponseWriter, req *http.Request) {
		v := ready(w, req)
		if v == nil {
			return
		}
		st := v.state
		from, err := nodeArg(req, "from", st.Nodes)
		if err != nil {
			badRequest(w, "want /v1/route?from=U&dest=D (or prefix=P, addr=A): %v", err)
			return
		}
		reply := RouteReply{From: from, Dest: -1, Version: st.Version}
		q := req.URL.Query()
		var dest int
		switch {
		case q.Get("prefix") != "":
			p, err := rib.ParsePrefix(q.Get("prefix"))
			if err != nil {
				badRequest(w, "%v", err)
				return
			}
			reply.Query = p.String()
			po, ok := v.pt.MatchPrefix(p)
			if !ok {
				reply.Err = "no announced prefix covers " + p.String()
				writeJSON(w, http.StatusOK, reply)
				return
			}
			reply.Matched = po.Prefix.String()
			dest = po.Node
		case q.Get("addr") != "":
			addr, err := rib.ParseAddr(q.Get("addr"))
			if err != nil {
				badRequest(w, "%v", err)
				return
			}
			reply.Query = q.Get("addr")
			po, ok := v.pt.Match(addr)
			if !ok {
				reply.Err = "no announced prefix covers " + q.Get("addr")
				writeJSON(w, http.StatusOK, reply)
				return
			}
			reply.Matched = po.Prefix.String()
			dest = po.Node
		default:
			dest, err = nodeArg(req, "dest", st.Nodes)
			if err != nil {
				badRequest(w, "want /v1/route?from=U&dest=D (or prefix=P, addr=A): %v", err)
				return
			}
		}
		reply.Dest = dest
		if c := st.Cols[dest]; c != nil && c.Slots[from].Routed {
			slot := c.Slots[from]
			reply.Routed = true
			reply.Weight = st.WeightName(slot.W)
			for _, nh := range c.NextHops(from) {
				reply.ECMP = append(reply.ECMP, int(nh))
			}
			if path, err := c.Forward(from); err == nil {
				reply.Path = path
			} else {
				reply.Err = err.Error()
			}
		}
		writeJSON(w, http.StatusOK, reply)
	})

	// The batch endpoint is read-only by construction, so followers
	// serve it at full parity with the leader (same handler core).
	mux.HandleFunc("/v1/routes", routesHandler(
		func(w http.ResponseWriter, req *http.Request) batchView {
			if v := ready(w, req); v != nil {
				return v
			}
			return nil
		}, nil))

	mux.HandleFunc("/v1/paths", func(w http.ResponseWriter, req *http.Request) {
		v := ready(w, req)
		if v == nil {
			return
		}
		st := v.state
		dest, err := nodeArg(req, "dest", st.Nodes)
		if err != nil {
			badRequest(w, "want /v1/paths?dest=D: %v", err)
			return
		}
		c := st.Cols[dest]
		type nodePath struct {
			Node int    `json:"node"`
			Path []int  `json:"path,omitempty"`
			Err  string `json:"error,omitempty"`
		}
		var out []nodePath
		for u := 0; u < st.Nodes; u++ {
			np := nodePath{Node: u}
			if c == nil {
				np.Err = fmt.Sprintf("rib: unknown destination %d", dest)
			} else if path, err := c.Forward(u); err == nil {
				np.Path = path
			} else {
				np.Err = err.Error()
			}
			out = append(out, np)
		}
		writeJSON(w, http.StatusOK, map[string]any{"dest": dest, "version": st.Version, "paths": out})
	})

	mux.HandleFunc("/v1/prefixes", func(w http.ResponseWriter, req *http.Request) {
		v := ready(w, req)
		if v == nil {
			return
		}
		pt := v.pt
		out := make([]PrefixReply, 0, len(pt.Kept())+len(pt.Suppressed()))
		for _, po := range pt.Kept() {
			out = append(out, PrefixReply{Prefix: po.Prefix.String(), Node: po.Node})
		}
		for _, po := range pt.Suppressed() {
			out = append(out, PrefixReply{Prefix: po.Prefix.String(), Node: po.Node, Suppressed: true})
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version":    v.state.Version,
			"trie_nodes": pt.TrieNodes(),
			"prefixes":   out,
		})
	})

	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, f.StatsReply())
	})

	mux.HandleFunc("/v1/events", func(w http.ResponseWriter, req *http.Request) {
		writeErr(w, http.StatusForbidden, CodeReadOnly,
			"follower is read-only; send events to the leader")
	})

	if reg != nil {
		metrics := reg.Handler()
		mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, req *http.Request) {
			metrics.ServeHTTP(w, req)
		})
	}
	return mux
}

// StatsReply assembles the follower's /v1/stats payload.
func (f *Follower) StatsReply() FollowerStats {
	fs := FollowerStats{
		Role:            "follower",
		SnapshotVersion: f.Version(),
		Head:            f.Head(),
		Lag:             f.Lag(),
		AppliedFull:     f.appliedFull.Load(),
		AppliedDelta:    f.appliedDelta.Load(),
		StaleSkipped:    f.staleSkipped.Load(),
		ApplyErrors:     f.applyErrors.Load(),
	}
	v := f.view()
	if v == nil {
		return fs
	}
	st := v.state
	fs.Nodes = st.Nodes
	fs.Destinations = len(st.Cols)
	for _, d := range st.Disabled {
		if d {
			fs.DisabledArcs++
		}
	}
	fs.Unconverged = len(st.Unconverged)
	for _, c := range st.Cols {
		fs.ArenaBytes += c.Bytes()
		fs.LiveEntries += c.Live()
	}
	fs.Prefixes = v.pt.Len()
	fs.SuppressedPrefixes = len(v.pt.Suppressed())
	fs.TrieNodes = v.pt.TrieNodes()
	fs.Checksum = fmt.Sprintf("%08x", st.Checksum())
	return fs
}
