// Package wire is the binary query codec of the zero-allocation query
// plane: a length-prefixed, CRC-framed request/response format for
// batched route queries, negotiated on POST /v1/routes via
// Content-Type: application/x-mr-query.
//
// It follows the framing discipline of internal/replica's record
// format. Every message is one frame:
//
//	| payloadLen u32 | payload | crc32(payload) u32 |
//
// with payload = | formatVersion u8 | kind u8 | body |, all integers
// little-endian, CRC = IEEE crc32 over the payload. Bodies are
// fixed-width slot arrays so encode and decode are straight copies:
//
//	request  body = | count u32 | count × query slot (10 B) |
//	response body = | version u64 | count u32 | count × answer slot (16 B)
//	               | poolLen u32 | poolLen × i32 |
//
// A query slot is | kind u8 | from i32 | arg u32 | plen u8 | — arg is
// the destination node (KindDest), the prefix address (KindPrefix) or
// the lookup address (KindAddr). An answer slot is | flags u8 |
// matchLen u8 | nhLen u16 | dest i32 | w i32 | nhOff u32 |; next-hop
// sets of all answers share the trailing pool segment, referenced by
// (nhOff, nhLen) spans, exactly like rib.Column's arena layout.
//
// All counts are bounds-checked against the received byte budget (and
// the MaxBatch ceiling) before any allocation, so truncated or hostile
// frames error without panicking or over-allocating — FuzzQueryWire
// hammers exactly these properties. The Append*/Decode* entry points
// are append-style: callers pass reusable buffers and the hot path
// allocates nothing (the serve handlers pool their scratch).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ContentType negotiates the binary codec on POST /v1/routes; any other
// content type gets the JSON batch path.
const ContentType = "application/x-mr-query"

// FormatVersion is the wire format generation; decoders reject frames
// carrying any other value.
const FormatVersion = 1

// Frame kinds.
const (
	// KindQuery is a batched query request.
	KindQuery byte = 1
	// KindAnswer is a batched answer response.
	KindAnswer byte = 2
)

// Query kinds (the Kind field of a Query slot).
const (
	// QueryDest resolves a route by destination node id (Arg).
	QueryDest byte = 0
	// QueryPrefix resolves by exact announced prefix Arg/PLen.
	QueryPrefix byte = 1
	// QueryAddr resolves by longest-prefix match on address Arg.
	QueryAddr byte = 2
)

// Answer flag bits.
const (
	// FlagMatched is set when the query resolved to a destination.
	FlagMatched uint8 = 1 << iota
	// FlagRouted is set when the queried node holds a route.
	FlagRouted
)

// MaxBatch bounds the query count of one frame; larger counts are
// rejected on both encode and decode before any allocation.
const MaxBatch = 8192

// maxFrame bounds a frame payload; larger length prefixes are rejected
// before any allocation.
const maxFrame = 1 << 24

const (
	querySlotBytes  = 10
	answerSlotBytes = 16
	headerBytes     = 2 // formatVersion + kind
)

// Query is one route query slot.
type Query struct {
	// Kind is QueryDest, QueryPrefix or QueryAddr.
	Kind byte
	// From is the querying node.
	From int32
	// Arg is the destination node, prefix address or lookup address.
	Arg uint32
	// PLen is the prefix length (QueryPrefix only).
	PLen uint8
}

// Answer is one route answer slot. Next hops live in the response's
// shared pool segment as the span [NhOff, NhOff+NhLen).
type Answer struct {
	// Flags holds FlagMatched/FlagRouted.
	Flags uint8
	// MatchLen is the matched prefix length (prefix/addr queries).
	MatchLen uint8
	// NhLen is the ECMP next-hop count.
	NhLen uint16
	// Dest is the resolved destination node (-1 when unmatched).
	Dest int32
	// W is the engine weight index at the queried node (valid when
	// FlagRouted; pair with the snapshot's weight naming to render).
	W int32
	// NhOff is the answer's offset into the shared pool segment.
	NhOff uint32
}

// Matched reports the FlagMatched bit.
func (a Answer) Matched() bool { return a.Flags&FlagMatched != 0 }

// Routed reports the FlagRouted bit.
func (a Answer) Routed() bool { return a.Flags&FlagRouted != 0 }

// beginFrame reserves the length prefix and writes the payload header.
func beginFrame(dst []byte, kind byte) []byte {
	dst = append(dst, 0, 0, 0, 0)
	return append(dst, FormatVersion, kind)
}

// endFrame patches the length prefix for the payload written since
// beginFrame (which left it at offset start) and appends the CRC.
func endFrame(dst []byte, start int) []byte {
	payload := dst[start+4:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// AppendQueryRequest appends one framed query request to dst and
// returns the extended buffer. It fails only on oversized batches.
func AppendQueryRequest(dst []byte, qs []Query) ([]byte, error) {
	if len(qs) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d queries exceeds limit %d", len(qs), MaxBatch)
	}
	start := len(dst)
	dst = beginFrame(dst, KindQuery)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(qs)))
	for i := range qs {
		q := &qs[i]
		dst = append(dst, q.Kind)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q.From))
		dst = binary.LittleEndian.AppendUint32(dst, q.Arg)
		dst = append(dst, q.PLen)
	}
	return endFrame(dst, start), nil
}

// AppendAnswerResponse appends one framed answer response to dst and
// returns the extended buffer. pool is the shared next-hop segment the
// answers' (NhOff, NhLen) spans index.
func AppendAnswerResponse(dst []byte, version uint64, as []Answer, pool []int32) ([]byte, error) {
	if len(as) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d answers exceeds limit %d", len(as), MaxBatch)
	}
	start := len(dst)
	dst = beginFrame(dst, KindAnswer)
	dst = binary.LittleEndian.AppendUint64(dst, version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(as)))
	for i := range as {
		a := &as[i]
		dst = append(dst, a.Flags, a.MatchLen)
		dst = binary.LittleEndian.AppendUint16(dst, a.NhLen)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Dest))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a.W))
		dst = binary.LittleEndian.AppendUint32(dst, a.NhOff)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pool)))
	for _, v := range pool {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return endFrame(dst, start), nil
}

// openFrame validates the outer frame (length prefix, CRC, format
// version, kind) and returns the payload body.
func openFrame(data []byte, wantKind byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: frame shorter than its length prefix")
	}
	n := binary.LittleEndian.Uint32(data)
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, maxFrame)
	}
	if uint64(len(data)) != 4+uint64(n)+4 {
		return nil, fmt.Errorf("wire: frame payload %d does not match %d input bytes", n, len(data))
	}
	payload := data[4 : 4+n]
	if crc := binary.LittleEndian.Uint32(data[4+n:]); crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("wire: frame CRC mismatch")
	}
	if len(payload) < headerBytes {
		return nil, fmt.Errorf("wire: frame payload shorter than its header")
	}
	if payload[0] != FormatVersion {
		return nil, fmt.Errorf("wire: unsupported format version %d (want %d)", payload[0], FormatVersion)
	}
	if payload[1] != wantKind {
		return nil, fmt.Errorf("wire: frame kind %d, want %d", payload[1], wantKind)
	}
	return payload[headerBytes:], nil
}

// DecodeQueryRequest decodes one framed query request, appending the
// queries to qs (pass a reused qs[:0] for an allocation-free decode
// once the scratch has grown). Any input either decodes or errors —
// never panics, never allocates beyond what the input length warrants.
func DecodeQueryRequest(data []byte, qs []Query) ([]Query, error) {
	body, err := openFrame(data, KindQuery)
	if err != nil {
		return qs, err
	}
	if len(body) < 4 {
		return qs, fmt.Errorf("wire: query body shorter than its count")
	}
	n := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if n > MaxBatch {
		return qs, fmt.Errorf("wire: batch of %d queries exceeds limit %d", n, MaxBatch)
	}
	if len(body) != n*querySlotBytes {
		return qs, fmt.Errorf("wire: %d query slots need %d bytes, have %d", n, n*querySlotBytes, len(body))
	}
	for i := 0; i < n; i++ {
		s := body[i*querySlotBytes:]
		k := s[0]
		if k > QueryAddr {
			return qs, fmt.Errorf("wire: query %d has unknown kind %d", i, k)
		}
		plen := s[9]
		if plen > 32 {
			return qs, fmt.Errorf("wire: query %d prefix length %d > 32", i, plen)
		}
		qs = append(qs, Query{
			Kind: k,
			From: int32(binary.LittleEndian.Uint32(s[1:])),
			Arg:  binary.LittleEndian.Uint32(s[5:]),
			PLen: plen,
		})
	}
	return qs, nil
}

// DecodeAnswerResponse decodes one framed answer response, appending
// the answers to as and the shared next-hop segment to pool (pass
// reused slices for allocation-free decodes). The same no-panic,
// bounded-allocation contract as DecodeQueryRequest applies.
func DecodeAnswerResponse(data []byte, as []Answer, pool []int32) (version uint64, _ []Answer, _ []int32, err error) {
	body, err := openFrame(data, KindAnswer)
	if err != nil {
		return 0, as, pool, err
	}
	if len(body) < 12 {
		return 0, as, pool, fmt.Errorf("wire: answer body shorter than its header")
	}
	version = binary.LittleEndian.Uint64(body)
	n := int(binary.LittleEndian.Uint32(body[8:]))
	body = body[12:]
	if n > MaxBatch {
		return 0, as, pool, fmt.Errorf("wire: batch of %d answers exceeds limit %d", n, MaxBatch)
	}
	if len(body) < n*answerSlotBytes+4 {
		return 0, as, pool, fmt.Errorf("wire: %d answer slots need %d bytes, have %d",
			n, n*answerSlotBytes+4, len(body))
	}
	poolBase := len(pool)
	poolLen := int(binary.LittleEndian.Uint32(body[n*answerSlotBytes:]))
	poolBytes := body[n*answerSlotBytes+4:]
	if len(poolBytes) != poolLen*4 {
		return 0, as, pool, fmt.Errorf("wire: pool of %d entries needs %d bytes, have %d",
			poolLen, poolLen*4, len(poolBytes))
	}
	for i := 0; i < n; i++ {
		s := body[i*answerSlotBytes:]
		a := Answer{
			Flags:    s[0],
			MatchLen: s[1],
			NhLen:    binary.LittleEndian.Uint16(s[2:]),
			Dest:     int32(binary.LittleEndian.Uint32(s[4:])),
			W:        int32(binary.LittleEndian.Uint32(s[8:])),
			NhOff:    binary.LittleEndian.Uint32(s[12:]),
		}
		if a.Flags&^(FlagMatched|FlagRouted) != 0 {
			return 0, as, pool, fmt.Errorf("wire: answer %d has unknown flags %#x", i, a.Flags)
		}
		if a.MatchLen > 32 {
			return 0, as, pool, fmt.Errorf("wire: answer %d match length %d > 32", i, a.MatchLen)
		}
		if int(a.NhOff)+int(a.NhLen) > poolLen {
			return 0, as, pool, fmt.Errorf("wire: answer %d span [%d,%d) overruns pool of %d",
				i, a.NhOff, int(a.NhOff)+int(a.NhLen), poolLen)
		}
		// Rebase spans onto the caller's (possibly pre-populated) pool
		// slice so append-style reuse keeps them valid.
		a.NhOff += uint32(poolBase)
		as = append(as, a)
	}
	for i := 0; i < poolLen; i++ {
		pool = append(pool, int32(binary.LittleEndian.Uint32(poolBytes[i*4:])))
	}
	return version, as, pool, nil
}
