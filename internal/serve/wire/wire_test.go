package wire

import (
	"bytes"
	"testing"
)

func testQueries() []Query {
	return []Query{
		{Kind: QueryDest, From: 3, Arg: 7},
		{Kind: QueryPrefix, From: 1, Arg: 0x0a000000, PLen: 8},
		{Kind: QueryAddr, From: 5, Arg: 0x0a000001},
		{Kind: QueryDest, From: 0, Arg: 0},
	}
}

func testAnswers() ([]Answer, []int32) {
	pool := []int32{2, 4, 9}
	return []Answer{
		{Flags: FlagMatched | FlagRouted, Dest: 7, W: 12, NhOff: 0, NhLen: 2},
		{Flags: FlagMatched, MatchLen: 8, Dest: 4, W: 0},
		{Flags: 0, Dest: -1},
		{Flags: FlagMatched | FlagRouted, MatchLen: 24, Dest: 1, W: 3, NhOff: 2, NhLen: 1},
	}, pool
}

func TestQueryRoundTrip(t *testing.T) {
	qs := testQueries()
	buf, err := AppendQueryRequest(nil, qs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQueryRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Fatalf("query %d: got %+v want %+v", i, got[i], qs[i])
		}
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	as, pool := testAnswers()
	buf, err := AppendAnswerResponse(nil, 99, as, pool)
	if err != nil {
		t.Fatal(err)
	}
	ver, got, gotPool, err := DecodeAnswerResponse(buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 99 {
		t.Fatalf("version %d, want 99", ver)
	}
	if len(got) != len(as) || len(gotPool) != len(pool) {
		t.Fatalf("decoded %d answers/%d pool, want %d/%d", len(got), len(gotPool), len(as), len(pool))
	}
	for i := range as {
		if got[i] != as[i] {
			t.Fatalf("answer %d: got %+v want %+v", i, got[i], as[i])
		}
	}
	for i := range pool {
		if gotPool[i] != pool[i] {
			t.Fatalf("pool %d: got %d want %d", i, gotPool[i], pool[i])
		}
	}
}

// TestAnswerDecodeRebase: append-style reuse must rebase NhOff spans
// onto the caller's pre-populated pool.
func TestAnswerDecodeRebase(t *testing.T) {
	as, pool := testAnswers()
	buf, err := AppendAnswerResponse(nil, 1, as, pool)
	if err != nil {
		t.Fatal(err)
	}
	prePool := []int32{-1, -1, -1, -1, -1}
	_, got, outPool, err := DecodeAnswerResponse(buf, nil, prePool)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		want := as[i].NhOff + uint32(len(prePool))
		if a.NhLen > 0 && a.NhOff != want {
			t.Fatalf("answer %d: NhOff %d not rebased to %d", i, a.NhOff, want)
		}
		for j := uint32(0); j < uint32(a.NhLen); j++ {
			if hop := outPool[a.NhOff+j]; hop != pool[as[i].NhOff+j] {
				t.Fatalf("answer %d hop %d: got %d want %d", i, j, hop, pool[as[i].NhOff+j])
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf, err := AppendQueryRequest(nil, testQueries())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     buf[:len(buf)/2],
		"huge len":  {0xff, 0xff, 0xff, 0xff, 1, 2, 3},
		"wrong len": append([]byte{9, 0, 0, 0}, buf[4:]...),
	}
	flip := append([]byte(nil), buf...)
	flip[len(flip)-1] ^= 0x40
	cases["bad crc"] = flip
	badVer := append([]byte(nil), buf...)
	badVer[4] = 0x7e
	cases["bad version"] = badVer
	for name, data := range cases {
		if _, err := DecodeQueryRequest(data, nil); err == nil {
			t.Fatalf("%s: decode accepted corrupt frame", name)
		}
	}
	// An answer frame must not decode as a query frame and vice versa.
	as, pool := testAnswers()
	abuf, err := AppendAnswerResponse(nil, 1, as, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQueryRequest(abuf, nil); err == nil {
		t.Fatal("query decoder accepted an answer frame")
	}
	if _, _, _, err := DecodeAnswerResponse(buf, nil, nil); err == nil {
		t.Fatal("answer decoder accepted a query frame")
	}
}

func TestBatchCeiling(t *testing.T) {
	big := make([]Query, MaxBatch+1)
	if _, err := AppendQueryRequest(nil, big); err == nil {
		t.Fatal("encode accepted an oversized batch")
	}
	// Hand-build a frame claiming an enormous count on a short body:
	// decode must reject it before allocating.
	buf, err := AppendQueryRequest(nil, testQueries()[:1])
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the count field (payload offset 2) and refresh the CRC
	// by re-framing manually.
	payload := append([]byte(nil), buf[4:len(buf)-4]...)
	payload[2] = 0xff
	payload[3] = 0xff
	payload[4] = 0xff
	payload[5] = 0xff
	hostile := beginFrame(nil, KindQuery)
	hostile = append(hostile[:4], payload...)
	hostile = endFrame(hostile, 0)
	if _, err := DecodeQueryRequest(hostile, nil); err == nil {
		t.Fatal("decode accepted an oversized count")
	}
}

// TestCodecAllocs: with warm scratch, a full encode+decode round trip
// of both frame kinds allocates nothing.
func TestCodecAllocs(t *testing.T) {
	qs := testQueries()
	as, pool := testAnswers()
	reqBuf, _ := AppendQueryRequest(nil, qs)
	respBuf, _ := AppendAnswerResponse(nil, 7, as, pool)
	qScratch := make([]Query, 0, 16)
	aScratch := make([]Answer, 0, 16)
	pScratch := make([]int32, 0, 16)
	got := testing.AllocsPerRun(200, func() {
		var err error
		reqBuf, err = AppendQueryRequest(reqBuf[:0], qs)
		if err != nil {
			t.Fatal(err)
		}
		qScratch, err = DecodeQueryRequest(reqBuf, qScratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		respBuf, err = AppendAnswerResponse(respBuf[:0], 7, as, pool)
		if err != nil {
			t.Fatal(err)
		}
		_, aScratch, pScratch, err = DecodeAnswerResponse(respBuf, aScratch[:0], pScratch[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Fatalf("codec round trip allocates %.1f times per run, want 0", got)
	}
}

// FuzzQueryWire hammers both decoders with arbitrary bytes: malformed
// frames, truncations and oversized counts must error, never panic, and
// never allocate beyond what the input warrants. Valid decodes must
// round-trip canonically.
func FuzzQueryWire(f *testing.F) {
	req, _ := AppendQueryRequest(nil, testQueries())
	as, pool := testAnswers()
	resp, _ := AppendAnswerResponse(nil, 42, as, pool)
	f.Add(req)
	f.Add(resp)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	flip := append([]byte(nil), req...)
	flip[len(flip)-2] ^= 0x10
	f.Add(flip)
	f.Add(req[:len(req)/2])
	badVer := append([]byte(nil), resp...)
	badVer[4] = 0x7f
	f.Add(badVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		if qs, err := DecodeQueryRequest(data, nil); err == nil {
			again, err := AppendQueryRequest(nil, qs)
			if err != nil {
				t.Fatalf("re-encode of valid decode failed: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("query decode/encode not canonical:\n in  %x\n out %x", data, again)
			}
		}
		if ver, as, pool, err := DecodeAnswerResponse(data, nil, nil); err == nil {
			again, err := AppendAnswerResponse(nil, ver, as, pool)
			if err != nil {
				t.Fatalf("re-encode of valid decode failed: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("answer decode/encode not canonical:\n in  %x\n out %x", data, again)
			}
		}
	})
}
