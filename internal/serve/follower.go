package serve

// This file is the read-replica side of snapshot replication: a
// Follower consumes the leader's record stream (over TCP via
// replica.Subscribe, or straight from an event-log file) and publishes
// each applied version as an atomically swapped view, so read queries
// are as lock-free on a follower as they are on the leader. Followers
// never solve: they only decode, patch columns, and swap.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"metarouting/internal/replica"
	"metarouting/internal/rib"
	"metarouting/internal/telemetry"
)

// followerView is one applied replica version: the decoded state plus
// the restored prefix table. Immutable once stored.
type followerView struct {
	state *replica.State
	pt    *rib.PrefixTable
}

// Follower applies a leader's replica record stream and serves reads
// from the resulting snapshots. Apply is single-writer (guarded by mu —
// the subscribe loop or the log replayer); readers load the current
// view atomically and never block.
type Follower struct {
	mu  sync.Mutex
	cur atomic.Pointer[followerView]
	// head is the highest version observed in the stream, even if its
	// record was skipped as stale — the lag gauge reads head - version.
	head atomic.Uint64

	appliedFull  telemetry.Counter
	appliedDelta telemetry.Counter
	staleSkipped telemetry.Counter
	applyErrors  telemetry.Counter
	recordBytes  *telemetry.Histogram
}

// NewFollower builds an empty follower and, when reg is non-nil,
// registers its replication metrics.
func NewFollower(reg *telemetry.Registry) *Follower {
	f := &Follower{recordBytes: telemetry.NewHistogram(recordByteBuckets)}
	if reg != nil {
		reg.AddGaugeFunc("mrserve_replica_version", "Snapshot version this follower serves.",
			func() float64 { return float64(f.Version()) })
		reg.AddGaugeFunc("mrserve_replica_head", "Highest record version observed in the stream.",
			func() float64 { return float64(f.head.Load()) })
		reg.AddGaugeFunc("mrserve_replica_lag", "Records observed but not yet applied (head - version).",
			func() float64 { return float64(f.Lag()) })
		reg.AddCounter(`mrserve_replica_applied_records_total{kind="full"}`,
			"Replica records applied, by kind.", &f.appliedFull)
		reg.AddCounter(`mrserve_replica_applied_records_total{kind="delta"}`, "", &f.appliedDelta)
		reg.AddCounter("mrserve_replica_stale_records_total",
			"Records skipped because their version was already applied (bootstrap overlap).", &f.staleSkipped)
		reg.AddCounter("mrserve_replica_apply_errors_total",
			"Records that failed to apply (stream gaps, fingerprint mismatches, decode errors).", &f.applyErrors)
		reg.AddHistogram("mrserve_replica_record_bytes",
			"Framed replication record size on the wire.", f.recordBytes, 1)
	}
	return f
}

// Apply decodes-and-applies one replica record. A stale record (version
// at or below the applied one — the overlap between a full bootstrap
// and buffered deltas) is skipped silently; a delta arriving before any
// full snapshot, or one whose FromVersion does not chain onto the
// applied version, is an error — the caller (replica.Subscribe's apply
// hook) reports it and the client re-bootstraps from a full snapshot.
func (f *Follower) Apply(rec *replica.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v := rec.Version(); v > f.head.Load() {
		f.head.Store(v)
	}
	cur := f.cur.Load()
	switch rec.Kind {
	case replica.KindFull:
		if cur != nil && rec.Full.Version <= cur.state.Version {
			f.staleSkipped.Add(1)
			return nil
		}
		if cur != nil && rec.Full.Fingerprint != cur.state.Fingerprint {
			f.applyErrors.Add(1)
			return fmt.Errorf("serve: full record fingerprint %016x does not match follower %016x",
				rec.Full.Fingerprint, cur.state.Fingerprint)
		}
		st, err := replica.ApplyFull(rec.Full)
		if err != nil {
			f.applyErrors.Add(1)
			return err
		}
		f.install(st)
		f.appliedFull.Add(1)
	case replica.KindDelta:
		if cur == nil {
			f.applyErrors.Add(1)
			return fmt.Errorf("serve: delta record v%d before any full snapshot", rec.Delta.Version)
		}
		st, err := replica.ApplyDelta(cur.state, rec.Delta)
		if err != nil {
			f.applyErrors.Add(1)
			return err
		}
		if st == nil {
			f.staleSkipped.Add(1)
			return nil
		}
		f.install(st)
		f.appliedDelta.Add(1)
	default:
		f.applyErrors.Add(1)
		return fmt.Errorf("serve: record kind %d is not applicable", rec.Kind)
	}
	f.recordBytes.Observe(int64(rec.WireBytes))
	return nil
}

// install swaps st in as the served view. Callers hold f.mu.
func (f *Follower) install(st *replica.State) {
	kept := toOrigins(st.Kept)
	suppressed := toOrigins(st.Suppressed)
	f.cur.Store(&followerView{state: st, pt: rib.RestorePrefixTable(kept, suppressed)})
}

func toOrigins(as []replica.Announcement) []rib.PrefixOrigin {
	// Origins stay zero: a follower never re-solves, it only maps
	// longest-match hits onto replicated columns.
	out := make([]rib.PrefixOrigin, len(as))
	for i, a := range as {
		out[i] = rib.PrefixOrigin{Prefix: a.Prefix, Node: a.Node}
	}
	return out
}

// view returns the served view, nil before the first full snapshot.
func (f *Follower) view() *followerView { return f.cur.Load() }

// Version returns the applied snapshot version (0 before bootstrap).
func (f *Follower) Version() uint64 {
	if v := f.cur.Load(); v != nil {
		return v.state.Version
	}
	return 0
}

// Head returns the highest record version observed in the stream.
func (f *Follower) Head() uint64 { return f.head.Load() }

// Lag returns how far the applied version trails the observed head.
func (f *Follower) Lag() uint64 {
	if h, v := f.head.Load(), f.Version(); h > v {
		return h - v
	}
	return 0
}

// Checksum digests the applied snapshot's routing content; it equals
// the leader's Checksum at the same version.
func (f *Follower) Checksum() uint32 {
	if v := f.cur.Load(); v != nil {
		return v.state.Checksum()
	}
	return 0
}

// State returns the applied replica state (nil before bootstrap).
func (f *Follower) State() *replica.State {
	if v := f.cur.Load(); v != nil {
		return v.state
	}
	return nil
}
