package serve_test

// Equivalence tests for the consolidated constructor: NewServer with
// WithScenario / WithAnnouncements must build the same server the
// deprecated New / NewPrefix / NewFromScenario wrappers do — same
// checksum, version and footprint — because the wrappers are now thin
// forwards and any drift means the folding broke a form.

import (
	"math/rand"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/rib"
	"metarouting/internal/scenario"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// sameServer asserts two freshly built servers agree on the published
// state and its footprint.
func sameServer(t *testing.T, a, b *serve.Server) {
	t.Helper()
	if a.Checksum() != b.Checksum() {
		t.Fatalf("checksums diverge: %08x vs %08x", a.Checksum(), b.Checksum())
	}
	as, bs := a.Stats(), b.Stats()
	if as.Nodes != bs.Nodes || as.Destinations != bs.Destinations ||
		as.Prefixes != bs.Prefixes || as.LiveEntries != bs.LiveEntries {
		t.Fatalf("stats diverge:\n%+v\n%+v", as, bs)
	}
	if a.Snapshot().Version != b.Snapshot().Version {
		t.Fatalf("versions diverge: %d vs %d", a.Snapshot().Version, b.Snapshot().Version)
	}
}

func TestNewServerEquivalence(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(11)), 16, graph.UniformLabels(a.OT.F.Size()))

	t.Run("origins", func(t *testing.T) {
		origins := map[int]value.V{0: 0, 5: 1}
		oldSrv, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer oldSrv.Close()
		newSrv, err := serve.NewServer(serve.Config{Engine: exec.For(a.OT), Graph: g, Origins: origins},
			serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer newSrv.Close()
		sameServer(t, oldSrv, newSrv)
	})

	t.Run("announcements", func(t *testing.T) {
		announced := []rib.PrefixOrigin{
			{Prefix: mustPrefix(t, "10.0.0.0/8"), Node: 0, Origin: 0},
			{Prefix: mustPrefix(t, "172.16.0.0/12"), Node: 5, Origin: 0},
		}
		oldSrv, err := serve.NewPrefix(exec.For(a.OT), g, announced, serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer oldSrv.Close()
		newSrv, err := serve.NewServer(serve.Config{Engine: exec.For(a.OT), Graph: g},
			serve.WithAnnouncements(announced), serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer newSrv.Close()
		sameServer(t, oldSrv, newSrv)
		// An out-of-range anchor still fails construction.
		if _, err := serve.NewServer(serve.Config{Engine: exec.For(a.OT), Graph: g},
			serve.WithAnnouncements([]rib.PrefixOrigin{
				{Prefix: mustPrefix(t, "10.0.0.0/8"), Node: 99, Origin: 0},
			})); err == nil {
			t.Fatal("out-of-range anchor must fail")
		}
	})

	t.Run("scenario", func(t *testing.T) {
		src := `
expr   delay(64, 4)
nodes  3
arc    1 0 +1
arc    2 1 +1
arc    2 0 +4
dest   0
origin 0
`
		sc, err := scenario.Parse(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		oldSrv, err := serve.NewFromScenario(sc, serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer oldSrv.Close()
		newSrv, err := serve.NewServer(serve.Config{}, serve.WithScenario(sc), serve.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer newSrv.Close()
		sameServer(t, oldSrv, newSrv)
	})

	t.Run("nil-inputs", func(t *testing.T) {
		if _, err := serve.NewServer(serve.Config{}); err == nil {
			t.Fatal("empty config must fail, not panic")
		}
		if _, err := serve.NewServer(serve.Config{Engine: exec.For(a.OT)}); err == nil {
			t.Fatal("nil graph must fail, not panic")
		}
	})
}
