package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/replica"
	"metarouting/internal/serve"
	"metarouting/internal/serve/wire"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// bootReplicatedPair builds a leader with a capture sink, applies a few
// events, and a follower fed from the captured frames.
func bootReplicatedPair(t *testing.T) (*serve.Server, *serve.Follower, *captureSink) {
	t.Helper()
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(rand.New(rand.NewSource(11)), 3, 3, graph.UniformLabels(a.OT.F.Size()))
	origin := a.OT.Carrier().Elems[0]
	sink := &captureSink{}
	srv, err := serve.New(exec.NewDynamic(a.OT), g, map[int]value.V{0: origin, 4: origin},
		serve.WithReplication(sink))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for arc := 0; arc < 3; arc++ {
		if _, _, err := srv.ApplyEvent(context.Background(), arc, true); err != nil {
			t.Fatal(err)
		}
	}
	fol := serve.NewFollower(telemetry.NewRegistry())
	for _, frame := range sink.take() {
		rec, err := replica.DecodeRecord(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := fol.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	return srv, fol, sink
}

// TestFollowerHandlerParity: the follower's read endpoints answer
// byte-identically to the leader's at the same version.
func TestFollowerHandlerParity(t *testing.T) {
	srv, fol, _ := bootReplicatedPair(t)
	leader := serve.NewHandler(srv, nil)
	follower := serve.NewFollowerHandler(fol, nil)
	if fol.Version() != srv.Snapshot().Version {
		t.Fatalf("follower v%d, leader v%d", fol.Version(), srv.Snapshot().Version)
	}
	for _, url := range []string{
		"/v1/route?from=8&dest=0",
		"/v1/route?from=8&dest=4",
		"/v1/route?from=3&addr=10.0.0.4",
		"/v1/route?from=3&prefix=10.0.0.0/16",
		"/v1/route?from=99&dest=0", // out of range: same 400 envelope
		"/v1/paths?dest=0",
		"/v1/prefixes",
	} {
		lw, fw := httptest.NewRecorder(), httptest.NewRecorder()
		leader.ServeHTTP(lw, httptest.NewRequest("GET", url, nil))
		follower.ServeHTTP(fw, httptest.NewRequest("GET", url, nil))
		if lw.Code != fw.Code || lw.Body.String() != fw.Body.String() {
			t.Fatalf("%s diverges:\nleader   %d %s\nfollower %d %s",
				url, lw.Code, lw.Body.String(), fw.Code, fw.Body.String())
		}
	}
	// POST /v1/routes parity, both content types: the batch plane pins
	// the follower's replicated state and must answer the leader's exact
	// bytes — JSON results and binary frames alike.
	jsonBody, err := json.Marshal(serve.BatchRequest{Queries: []serve.BatchQuery{
		{From: 8, Dest: intp(0)}, {From: 8, Dest: intp(4)},
		{From: 3, Addr: "10.0.0.4"}, {From: 3, Prefix: "10.0.0.0/32"},
		{From: 5, Addr: "10.0.0.7"}, // uncovered
	}})
	if err != nil {
		t.Fatal(err)
	}
	wireBody, err := wire.AppendQueryRequest(nil, []wire.Query{
		{Kind: wire.QueryDest, From: 8, Arg: 0},
		{Kind: wire.QueryDest, From: 8, Arg: 4},
		{Kind: wire.QueryAddr, From: 3, Arg: 10<<24 | 4},
		{Kind: wire.QueryPrefix, From: 3, Arg: 10 << 24, PLen: 32},
		{Kind: wire.QueryAddr, From: 5, Arg: 10<<24 | 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, post := range map[string]struct {
		ct   string
		body []byte
	}{
		"json": {"application/json", jsonBody},
		"wire": {wire.ContentType, wireBody},
	} {
		lw, fw := httptest.NewRecorder(), httptest.NewRecorder()
		for rec, h := range map[*httptest.ResponseRecorder]*http.ServeMux{lw: leader, fw: follower} {
			req := httptest.NewRequest("POST", "/v1/routes", bytes.NewReader(post.body))
			req.Header.Set("Content-Type", post.ct)
			h.ServeHTTP(rec, req)
		}
		if lw.Code != 200 || lw.Code != fw.Code || lw.Body.String() != fw.Body.String() {
			t.Fatalf("batch %s diverges:\nleader   %d %q\nfollower %d %q",
				name, lw.Code, lw.Body.String(), fw.Code, fw.Body.String())
		}
	}
}

// intp is a literal-pointer helper for BatchQuery.Dest.
func intp(v int) *int { return &v }

// TestVersionGate: read-your-version on both roles — a version= beyond
// the served snapshot answers 404 with current_version; at or below it
// answers normally; garbage is a 400.
func TestVersionGate(t *testing.T) {
	srv, fol, _ := bootReplicatedPair(t)
	cur := srv.Snapshot().Version
	muxes := map[string]*http.ServeMux{
		"leader":   serve.NewHandler(srv, nil),
		"follower": serve.NewFollowerHandler(fol, nil),
	}
	for name, mux := range muxes {
		// Satisfied (at or below): normal answer carrying the version.
		for _, v := range []uint64{cur, cur - 1, 1} {
			w := httptest.NewRecorder()
			mux.ServeHTTP(w, httptest.NewRequest("GET", "/v1/route?from=1&dest=0&version="+strconv.FormatUint(v, 10), nil))
			if w.Code != 200 {
				t.Fatalf("%s version=%d: got %d: %s", name, v, w.Code, w.Body.String())
			}
		}
		// Ahead: 404 with the version_behind envelope and current_version.
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", "/v1/route?from=1&dest=0&version="+strconv.FormatUint(cur+5, 10), nil))
		if w.Code != 404 {
			t.Fatalf("%s ahead: got %d: %s", name, w.Code, w.Body.String())
		}
		var behind struct {
			Error          serve.APIError `json:"error"`
			CurrentVersion uint64         `json:"current_version"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &behind); err != nil {
			t.Fatalf("%s ahead body: %v", name, err)
		}
		if behind.Error.Code != serve.CodeVersionBehind || behind.CurrentVersion != cur {
			t.Fatalf("%s ahead envelope: %+v", name, behind)
		}
		// Garbage: 400.
		w = httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", "/v1/route?from=1&dest=0&version=soon", nil))
		if w.Code != 400 {
			t.Fatalf("%s garbage version: got %d", name, w.Code)
		}
	}
}

// TestFollowerNotReadyAndReadOnly: data endpoints 503 before bootstrap,
// mutations always 403.
func TestFollowerNotReadyAndReadOnly(t *testing.T) {
	mux := serve.NewFollowerHandler(serve.NewFollower(nil), nil)
	for _, url := range []string{"/v1/route?from=0&dest=1", "/v1/paths?dest=0", "/v1/prefixes"} {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != 503 || !strings.Contains(w.Body.String(), serve.CodeNotReady) {
			t.Fatalf("%s before bootstrap: got %d: %s", url, w.Code, w.Body.String())
		}
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("POST", "/v1/events", strings.NewReader(`{"arc":0,"kind":"fail"}`)))
	if w.Code != 403 || !strings.Contains(w.Body.String(), serve.CodeReadOnly) {
		t.Fatalf("events on follower: got %d: %s", w.Code, w.Body.String())
	}
	// /v1/stats answers even before bootstrap (role visible, version 0).
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/v1/stats", nil))
	var fs serve.FollowerStats
	if err := json.Unmarshal(w.Body.Bytes(), &fs); err != nil || fs.Role != "follower" || fs.SnapshotVersion != 0 {
		t.Fatalf("stats before bootstrap: %d %s (%v)", w.Code, w.Body.String(), err)
	}
}

// TestScrapePinsSnapshotVersion is the regression test for the
// /v1/stats-vs-/v1/metrics inconsistency: snapshot-derived gauges are
// read lazily one after another during a render, so a swap racing the
// scrape used to let gauges that sort after mrserve_snapshot_version
// report a newer generation than it. The scrape hook now pins one
// snapshot for the whole render; this test forces the worst case by
// registering a gauge that sorts FIRST and applies an event when read —
// the later mrserve_snapshot_version reading must still be the pinned,
// pre-swap version.
func TestScrapePinsSnapshotVersion(t *testing.T) {
	a, err := core.InferString("hops(8)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(rand.New(rand.NewSource(12)), 6, graph.UniformLabels(a.OT.F.Size()))
	reg := telemetry.NewRegistry()
	srv, err := serve.New(exec.NewDynamic(a.OT), g, map[int]value.V{0: a.OT.Carrier().Elems[0]},
		serve.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	arc := 0
	reg.AddGaugeFunc("aaa_swap_trigger", "test-only: swaps a snapshot mid-scrape", func() float64 {
		srv.ApplyEvent(context.Background(), arc, true) //nolint:errcheck
		arc++
		return 0
	})
	before := srv.Snapshot().Version
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().Version; got == before {
		t.Fatalf("trigger gauge did not swap a snapshot (still v%d)", got)
	}
	var rendered uint64
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "mrserve_snapshot_version ") {
			v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			rendered = v
		}
	}
	if rendered != before {
		t.Fatalf("scrape rendered v%d; pinned pre-scrape version was v%d", rendered, before)
	}
}
