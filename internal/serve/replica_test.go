package serve_test

// Differential replication test: a leader under a randomized toggle
// storm publishes replica records through a capture sink; a follower
// applies the stream and must reproduce the leader's routing state
// byte-identically at every version — column arenas (slots, pools,
// offsets), disabled mask, unconverged set, weight-name resolution and
// the restored prefix table. Run on both execution backends; CI runs
// the package under -race, which also exercises the follower's
// atomic-swap publication against concurrent readers.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/replica"
	"metarouting/internal/rib"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// captureSink records every published frame in order.
type captureSink struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *captureSink) PublishRecord(version uint64, frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
	return nil
}

func (c *captureSink) take() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.frames
	c.frames = nil
	return out
}

// leaderState is the per-version ground truth captured from the leader
// right after each swap.
type leaderState struct {
	cols        map[int]*rib.Column
	weights     map[int][]string // weights[d][u]: formatted weight, "" unrouted
	disabled    []bool
	unconverged []int
	checksum    uint32
}

func captureLeader(srv *serve.Server) leaderState {
	sn := srv.Snapshot()
	cols := make(map[int]*rib.Column, len(srv.Dests()))
	weights := make(map[int][]string, len(srv.Dests()))
	for _, d := range srv.Dests() {
		cols[d] = sn.Column(d).Flatten()
		ws := make([]string, sn.Graph.N)
		for u := range ws {
			if e := sn.Lookup(u, d); e != nil {
				ws[u] = value.Format(e.Weight)
			}
		}
		weights[d] = ws
	}
	return leaderState{
		cols:        cols,
		weights:     weights,
		disabled:    sn.Disabled,
		unconverged: sn.Unconverged,
		checksum:    srv.Checksum(),
	}
}

func TestReplicaDifferentialStorm(t *testing.T) {
	const src = "lex(delay(16,3), hops(8))"
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	origin := a.OT.Carrier().Elems[0]
	engines := map[string]func() exec.Algebra{
		"dynamic": func() exec.Algebra { return exec.NewDynamic(a.OT) },
		"compiled": func() exec.Algebra {
			eng, err := exec.New(a.OT, exec.ModeCompiled, origin)
			if err != nil {
				t.Fatal(err)
			}
			return eng
		},
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(20260808))
			g := graph.Random(r, 12, 0.35, graph.UniformLabels(a.OT.F.Size()))
			origins := map[int]value.V{0: origin, 3: origin, 7: origin}
			sink := &captureSink{}
			srv, err := serve.New(mk(), g, origins,
				serve.WithWorkers(3), serve.WithReplication(sink))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			// The leader runs the default paged copy-on-write columns, so
			// this storm also proves follower byte-identity against paged
			// leaders (records flatten at the encode boundary).
			if !srv.Stats().PagedColumns {
				t.Fatal("leader expected to default to paged columns")
			}

			// Drive the storm, capturing ground truth after every swap.
			truth := map[uint64]leaderState{srv.Snapshot().Version: captureLeader(srv)}
			disabled := make([]bool, len(g.Arcs))
			events := 0
			for round := 0; events < 200; round++ {
				if round == 40 {
					// A mid-storm explicit rebuild must ship as a full record
					// and chain seamlessly for the follower.
					if err := srv.Rebuild(context.Background()); err != nil {
						t.Fatalf("round %d: rebuild: %v", round, err)
					}
				} else {
					batch := make([]serve.ArcEvent, 1+r.Intn(4))
					for i := range batch {
						arc := r.Intn(len(g.Arcs))
						batch[i] = serve.ArcEvent{Arc: arc, Fail: !disabled[arc]}
						disabled[arc] = !disabled[arc]
					}
					if _, _, err := srv.ApplyBatch(context.Background(), batch); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					events += len(batch)
				}
				truth[srv.Snapshot().Version] = captureLeader(srv)
			}

			frames := sink.take()
			if len(frames) != len(truth) {
				t.Fatalf("published %d frames for %d versions", len(frames), len(truth))
			}
			fullRecords := 0
			fol := serve.NewFollower(nil)
			for i, frame := range frames {
				rec, err := replica.DecodeRecord(frame)
				if err != nil {
					t.Fatalf("frame %d: decode: %v", i, err)
				}
				if rec.Kind == replica.KindFull {
					fullRecords++
				}
				if err := fol.Apply(rec); err != nil {
					t.Fatalf("frame %d (v%d): apply: %v", i, rec.Version(), err)
				}
				compareFollower(t, fmt.Sprintf("frame %d v%d", i, rec.Version()), srv, fol, truth[fol.Version()])
			}
			if fol.Version() != srv.Snapshot().Version {
				t.Fatalf("follower ended at v%d, leader at v%d", fol.Version(), srv.Snapshot().Version)
			}
			// Initial build + mid-storm rebuild: at least two fulls, and the
			// storm must have actually exercised the delta path.
			if fullRecords < 2 || fullRecords == len(frames) {
				t.Fatalf("record mix degenerate: %d full of %d total", fullRecords, len(frames))
			}
		})
	}
}

// compareFollower checks the follower's applied state bit-for-bit
// against the leader ground truth captured at the same version.
func compareFollower(t *testing.T, label string, srv *serve.Server, fol *serve.Follower, want leaderState) {
	t.Helper()
	if want.cols == nil {
		t.Fatalf("%s: follower at version %d the leader never published", label, fol.Version())
	}
	st := fol.State()
	if !reflect.DeepEqual(st.Disabled, want.disabled) {
		t.Fatalf("%s: disabled mask differs\n got %v\nwant %v", label, st.Disabled, want.disabled)
	}
	if !reflect.DeepEqual(st.Unconverged, want.unconverged) {
		t.Fatalf("%s: unconverged differs: got %v want %v", label, st.Unconverged, want.unconverged)
	}
	if len(st.Cols) != len(want.cols) {
		t.Fatalf("%s: %d columns, want %d", label, len(st.Cols), len(want.cols))
	}
	for d, wc := range want.cols {
		gc := st.Cols[d]
		if gc == nil {
			t.Fatalf("%s: missing column for dest %d", label, d)
		}
		if !reflect.DeepEqual(gc, wc) {
			t.Fatalf("%s: column %d differs\n got %+v\nwant %+v", label, d, gc, wc)
		}
		// Weight names must resolve identically to the leader's engine
		// formatting at every routed slot.
		for u := range gc.Slots {
			if !gc.Slots[u].Routed {
				continue
			}
			if got := st.WeightName(gc.Slots[u].W); got != want.weights[d][u] {
				t.Fatalf("%s: weight name (%d→%d): got %q want %q", label, u, d, got, want.weights[d][u])
			}
		}
	}
	if got := fol.Checksum(); got != want.checksum {
		t.Fatalf("%s: checksum %08x, want %08x", label, got, want.checksum)
	}
	// The restored prefix table must answer like the leader's.
	leaderPT := srv.Snapshot().Prefixes()
	folStats := fol.StatsReply()
	if folStats.Prefixes != leaderPT.Len() || folStats.TrieNodes != leaderPT.TrieNodes() ||
		folStats.SuppressedPrefixes != len(leaderPT.Suppressed()) {
		t.Fatalf("%s: prefix table mismatch: follower %d/%d/%d leader %d/%d/%d", label,
			folStats.Prefixes, folStats.TrieNodes, folStats.SuppressedPrefixes,
			leaderPT.Len(), leaderPT.TrieNodes(), len(leaderPT.Suppressed()))
	}
}
