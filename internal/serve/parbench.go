package serve

// This file measures what the parallel destination-sharded rebuild
// pipeline buys over the PR-2 serial path: paired storm replays on
// identically built servers, one applying the storm event by event the
// way the old API did, one absorbing it as a single coalesced batch —
// at one worker and at the full pool width. cmd/mrserve -parallel-bench
// writes the result to BENCH_parallel.json; the acceptance bar is ≥ 2×
// on the batched pipeline for a ≥ 64-node, ≥ 8-destination storm, with
// no regression at one worker.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// ParallelReport is the paired serial-vs-parallel, single-vs-batched
// measurement. All timings are the mean per-storm cost in microseconds.
type ParallelReport struct {
	Nodes        int    `json:"nodes"`
	Arcs         int    `json:"arcs"`
	Destinations int    `json:"destinations"`
	StormEvents  int    `json:"storm_events"`
	Rounds       int    `json:"rounds"`
	Workers      int    `json:"workers"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Engine       string `json:"engine"`

	// SerialPerEventUS is the baseline: one worker, the storm applied
	// one ApplyEvent at a time — a recompute and snapshot swap per event.
	SerialPerEventUS float64 `json:"serial_per_event_us"`
	// BatchedOneWorkerUS is the coalesced pipeline at one worker: the
	// storm absorbed as a single ApplyBatch (the no-regression guard).
	BatchedOneWorkerUS float64 `json:"batched_one_worker_us"`
	// PerEventWorkersUS is per-event application with the full pool —
	// what parallelism alone buys without batching.
	PerEventWorkersUS float64 `json:"per_event_workers_us"`
	// BatchedWorkersUS is the full pipeline: coalesced batch, sharded
	// across the full pool.
	BatchedWorkersUS float64 `json:"batched_workers_us"`

	// SpeedupPipeline is SerialPerEventUS / BatchedWorkersUS — the
	// headline serial-vs-parallel number.
	SpeedupPipeline float64 `json:"speedup_pipeline"`
	// SpeedupBatchOnly is SerialPerEventUS / BatchedOneWorkerUS —
	// the share of the win owed to coalescing alone.
	SpeedupBatchOnly float64 `json:"speedup_batch_only"`
}

// MeasureParallel builds two identically configured servers via mk —
// one with a single worker, one with workers (≤ 0: GOMAXPROCS) — and
// replays rounds deterministic event storms of stormEvents random link
// toggles through four configurations: per-event at one worker (the
// PR-2 serial path), batched at one worker, per-event at full width,
// batched at full width. Every configuration starts each storm from the
// all-enabled topology (the storm is reverted, untimed, between
// measurements), so the four timings cover identical work.
func MeasureParallel(mk func(workers int) (*Server, error), workers, stormEvents, rounds int, seed int64) (*ParallelReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if stormEvents <= 0 {
		stormEvents = 32
	}
	if rounds <= 0 {
		rounds = 10
	}
	serial, err := mk(1)
	if err != nil {
		return nil, err
	}
	defer serial.Close()
	parallel, err := mk(workers)
	if err != nil {
		return nil, err
	}
	defer parallel.Close()
	if serial.base.N != parallel.base.N || len(serial.base.Arcs) != len(parallel.base.Arcs) {
		return nil, fmt.Errorf("serve: mk built different topologies (%d/%d nodes, %d/%d arcs)",
			serial.base.N, parallel.base.N, len(serial.base.Arcs), len(parallel.base.Arcs))
	}

	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))
	arcs := len(serial.base.Arcs)

	// A storm is a deterministic sequence of state-changing toggles
	// starting from the all-enabled topology: arc picks repeat (so
	// coalescing has duplicates to absorb) but each event flips the
	// arc's simulated state, so the per-event path never gets a free
	// no-op the batch path would also skip.
	makeStorm := func() []ArcEvent {
		sim := make(map[int]bool, stormEvents)
		storm := make([]ArcEvent, stormEvents)
		for i := range storm {
			arc := r.Intn(arcs)
			storm[i] = ArcEvent{Arc: arc, Fail: !sim[arc]}
			sim[arc] = !sim[arc]
		}
		return storm
	}
	// revert returns a server to the all-enabled state, untimed.
	revert := func(s *Server) error {
		var undo []ArcEvent
		for arc, failed := range s.Snapshot().Disabled {
			if failed {
				undo = append(undo, ArcEvent{Arc: arc, Fail: false})
			}
		}
		_, _, err := s.ApplyBatch(ctx, undo)
		return err
	}
	perEvent := func(s *Server, storm []ArcEvent) (time.Duration, error) {
		t0 := time.Now()
		for _, ev := range storm {
			if _, _, err := s.ApplyEvent(ctx, ev.Arc, ev.Fail); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	batched := func(s *Server, storm []ArcEvent) (time.Duration, error) {
		t0 := time.Now()
		if _, _, err := s.ApplyBatch(ctx, storm); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}

	var serialNS, batched1NS, perEventWNS, batchedWNS int64
	// Round -1 is an unmeasured warmup.
	for round := -1; round < rounds; round++ {
		storm := makeStorm()
		for _, cfg := range []struct {
			srv  *Server
			run  func(*Server, []ArcEvent) (time.Duration, error)
			sink *int64
		}{
			{serial, perEvent, &serialNS},
			{serial, batched, &batched1NS},
			{parallel, perEvent, &perEventWNS},
			{parallel, batched, &batchedWNS},
		} {
			d, err := cfg.run(cfg.srv, storm)
			if err != nil {
				return nil, err
			}
			if err := revert(cfg.srv); err != nil {
				return nil, err
			}
			if round >= 0 {
				*cfg.sink += d.Nanoseconds()
			}
		}
	}

	mean := func(total int64) float64 { return float64(total) / float64(rounds) / 1e3 }
	rep := &ParallelReport{
		Nodes:              serial.base.N,
		Arcs:               arcs,
		Destinations:       len(serial.dests),
		StormEvents:        stormEvents,
		Rounds:             rounds,
		Workers:            workers,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Engine:             serial.Stats().Engine,
		SerialPerEventUS:   mean(serialNS),
		BatchedOneWorkerUS: mean(batched1NS),
		PerEventWorkersUS:  mean(perEventWNS),
		BatchedWorkersUS:   mean(batchedWNS),
	}
	if rep.BatchedWorkersUS > 0 {
		rep.SpeedupPipeline = rep.SerialPerEventUS / rep.BatchedWorkersUS
	}
	if rep.BatchedOneWorkerUS > 0 {
		rep.SpeedupBatchOnly = rep.SerialPerEventUS / rep.BatchedOneWorkerUS
	}
	return rep, nil
}
