package serve_test

// Tests for the serve layer's warm-start delta reconvergence: the
// delta-vs-scratch differential across random licensed algebras,
// topologies and event storms on both engine backends, the property
// gate's refusal to warm-start unlicensed (non-monotone) algebras, and
// a smoke run of the paired benchmark harness. CI runs this file under
// -race.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/rib"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// TestServeDifferentialDelta is the tentpole acceptance test for the
// delta pipeline: random licensed finite algebras × GNP/ring/grid
// topologies × random event storms, on both engine backends. A
// delta-enabled server and a WithDelta(false) server absorb identical
// batches; after every storm the two snapshots must be bit-identical to
// each other and to a fresh from-scratch build on the mutated graph.
func TestServeDifferentialDelta(t *testing.T) {
	r := rand.New(rand.NewSource(2027))
	trials := 0
	var deltaRebuilds uint64
	for trials < 10 {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 || !rib.DeltaLicensedSet(a.Props) {
			continue
		}
		trials++
		g := randTopo(r, a.OT.F.Size())
		elems := a.OT.Carrier().Elems
		origins := map[int]value.V{0: randOrigin(r, elems)}
		for len(origins) < 2+r.Intn(3) {
			origins[r.Intn(g.N)] = randOrigin(r, elems)
		}
		for name, eng := range engineBackends(t, a.OT) {
			label := fmt.Sprintf("trial %d: %s on %s (%s)", trials, src, g, name)
			warm, err := serve.New(eng, g, origins, serve.WithWorkers(2), serve.WithDeltaProps(a.Props))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			cold, err := serve.New(eng, g, origins, serve.WithWorkers(2), serve.WithDelta(false))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !warm.Stats().DeltaEnabled {
				t.Fatalf("%s: licensed algebra must enable the delta path", label)
			}
			if cold.Stats().DeltaEnabled {
				t.Fatalf("%s: WithDelta(false) must pin from-scratch rebuilds", label)
			}
			disabled := make([]bool, len(g.Arcs))
			for storm := 0; storm < 5; storm++ {
				events := make([]serve.ArcEvent, 1+r.Intn(5))
				for i := range events {
					events[i] = serve.ArcEvent{Arc: r.Intn(len(g.Arcs)), Fail: r.Intn(2) == 0}
					disabled[events[i].Arc] = events[i].Fail
				}
				if _, _, err := warm.ApplyBatch(context.Background(), events); err != nil {
					t.Fatalf("%s storm %d: warm: %v", label, storm, err)
				}
				if _, _, err := cold.ApplyBatch(context.Background(), events); err != nil {
					t.Fatalf("%s storm %d: cold: %v", label, storm, err)
				}
				wGot, cGot := warm.Snapshot(), cold.Snapshot()
				if !reflect.DeepEqual(wGot.Disabled, cGot.Disabled) {
					t.Fatalf("%s storm %d: disabled state diverged", label, storm)
				}
				for _, d := range warm.Dests() {
					for u := 0; u < g.N; u++ {
						if we, ce := wGot.Lookup(u, d), cGot.Lookup(u, d); !reflect.DeepEqual(we, ce) {
							t.Fatalf("%s storm %d: entry (%d→%d) diverged:\n warm: %+v\n cold: %+v",
								label, storm, u, d, we, ce)
						}
					}
				}
				fresh, err := rib.BuildEngine(exec.NewDynamic(a.OT), enabledSubgraph(t, g, disabled), origins)
				if err != nil {
					t.Fatalf("%s storm %d: fresh build: %v", label, storm, err)
				}
				sameTables(t, fmt.Sprintf("%s storm %d", label, storm), wGot, fresh, warm.Dests(), g.N)
			}
			deltaRebuilds += warm.Stats().DeltaDestRebuilds
			warm.Close()
			cold.Close()
		}
	}
	// The differential is vacuous if the heuristic always cut over.
	if deltaRebuilds < 20 {
		t.Fatalf("only %d delta rebuilds across all trials — the warm path barely ran", deltaRebuilds)
	}
}

// TestServeDeltaUnlicensedFallsBack exercises the non-monotone fallback:
// the widest-shortest lex product (the paper's canonical M-failure) must
// leave the gate closed even with the inferred property set supplied,
// every rebuild must take the from-scratch path, and the served tables
// must still match a fresh build.
func TestServeDeltaUnlicensedFallsBack(t *testing.T) {
	a, err := core.InferString("lex(bw(4), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	if rib.DeltaLicensedSet(a.Props) {
		t.Fatal("widest-shortest must not be licensed — the fixture lost its teeth")
	}
	r := rand.New(rand.NewSource(11))
	g := graph.Grid(r, 4, 4, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 4, B: 0}, 15: value.Pair{A: 4, B: 0}}
	srv, err := serve.New(exec.For(a.OT), g, origins,
		serve.WithWorkers(2), serve.WithDeltaProps(a.Props))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Stats().DeltaEnabled {
		t.Fatal("unlicensed algebra must not enable the delta path")
	}
	disabled := make([]bool, len(g.Arcs))
	for storm := 0; storm < 3; storm++ {
		events := make([]serve.ArcEvent, 1+r.Intn(4))
		for i := range events {
			events[i] = serve.ArcEvent{Arc: r.Intn(len(g.Arcs)), Fail: r.Intn(2) == 0}
			disabled[events[i].Arc] = events[i].Fail
		}
		if _, _, err := srv.ApplyBatch(context.Background(), events); err != nil {
			t.Fatalf("storm %d: %v", storm, err)
		}
		fresh, err := rib.BuildEngine(exec.NewDynamic(a.OT), enabledSubgraph(t, g, disabled), origins)
		if err != nil {
			t.Fatalf("storm %d: fresh build: %v", storm, err)
		}
		sameTables(t, fmt.Sprintf("storm %d", storm), srv.Snapshot(), fresh, srv.Dests(), g.N)
	}
	st := srv.Stats()
	if st.DeltaDestRebuilds != 0 {
		t.Fatalf("unlicensed server took the delta path %d times", st.DeltaDestRebuilds)
	}
	if st.ScratchDestRebuilds == 0 {
		t.Fatal("storms must have forced from-scratch rebuilds")
	}
}

// TestMeasureDeltaSmoke runs the paired benchmark harness at a toy size:
// the report must be structurally sane and the delta server must have
// actually exercised the warm path.
func TestMeasureDeltaSmoke(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(delta bool) (*serve.Server, error) {
		r := rand.New(rand.NewSource(5))
		g := graph.Random(r, 16, 0.25, graph.UniformLabels(a.OT.F.Size()))
		origins := map[int]value.V{0: 0, g.N - 1: 1}
		return serve.New(exec.For(a.OT), g, origins,
			serve.WithWorkers(2), serve.WithDelta(delta), serve.WithDeltaProps(a.Props))
	}
	rep, err := serve.MeasureDelta(mk, 2, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 16 || rep.StormArcs != 2 || rep.Rounds != 2 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.DeltaBatchUS <= 0 || rep.ScratchBatchUS <= 0 || rep.SpeedupDelta <= 0 {
		t.Fatalf("timings missing: %+v", rep)
	}
	if rep.DeltaRebuilds == 0 {
		t.Fatalf("delta server never warm-started: %+v", rep)
	}
	// The baseline must refuse a delta-enabled server.
	if _, err := serve.MeasureDelta(func(bool) (*serve.Server, error) {
		return mk(true)
	}, 2, 1, 99); err == nil {
		t.Fatal("harness must reject a baseline with delta enabled")
	}
}
