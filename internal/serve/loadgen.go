package serve

// This file holds the in-repo load generator: it drives a Server with a
// concurrent mix of route queries and topology events, recording
// throughput and latency percentiles plus the incremental-vs-full
// event-handling cost — the numbers committed to BENCH_serve.json by
// cmd/mrserve -loadgen and scripts/loadgen.sh.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"metarouting/internal/telemetry"
)

// LoadOptions parameterizes a load run.
type LoadOptions struct {
	// Duration is the query phase length (default 2s).
	Duration time.Duration
	// Readers is the number of concurrent query goroutines (default 4).
	Readers int
	// EventEvery injects a random link toggle at this period (0: no
	// events during the query phase).
	EventEvery time.Duration
	// Seed drives query and event choice.
	Seed int64
	// ComparePairs is how many quiescent (incremental event, full
	// rebuild) timing pairs to take after the query phase (default 20).
	// Pairing both timings on the same topology state keeps the
	// comparison fair: each toggle changes the graph, and per-destination
	// solve cost changes with it.
	ComparePairs int
}

// LoadReport is the measured outcome of a load run. Latencies are per
// query (a Forward resolution), in microseconds.
type LoadReport struct {
	DurationSec float64 `json:"duration_sec"`
	Readers     int     `json:"readers"`
	Queries     uint64  `json:"queries"`
	QPS         float64 `json:"qps"`
	P50us       float64 `json:"p50_us"`
	P90us       float64 `json:"p90_us"`
	P99us       float64 `json:"p99_us"`
	// MaxReadStallUS is the worst single-query latency observed while
	// events and snapshot rebuilds were running concurrently — the
	// evidence that readers are never blocked by rebuilds.
	MaxReadStallUS float64 `json:"max_read_stall_us"`
	// Events counts topology toggles applied during the query phase.
	Events int `json:"events"`
	// EventUnderLoadUS is the mean ApplyEvent cost while the readers were
	// saturating the machine: it includes scheduler contention, so it is
	// an availability number, not a reconvergence-cost number.
	EventUnderLoadUS float64 `json:"event_under_load_us"`
	// IncrementalEventUS is the mean quiescent cost of an incremental
	// ApplyEvent (recompute of invalidated destinations + snapshot swap).
	// Each sample is paired with a full rebuild on the identical
	// topology, so it is directly comparable to FullRebuildUS.
	IncrementalEventUS float64 `json:"incremental_event_us"`
	// FullRebuildUS is the mean quiescent cost of a from-scratch rebuild
	// of every destination — the baseline the incremental path must beat.
	FullRebuildUS float64 `json:"full_rebuild_us"`
	Stats         Stats   `json:"stats"`
}

// Load drives the server with opts and reports the measurements. The
// server is left running (with whatever link state the event mix ended
// on).
func Load(s *Server, opts LoadOptions) *LoadReport {
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.Readers <= 0 {
		opts.Readers = 4
	}
	if opts.ComparePairs <= 0 {
		opts.ComparePairs = 20
	}
	dests := s.Dests()
	n := s.base.N
	deadline := time.Now().Add(opts.Duration)

	type readerOut struct {
		queries uint64
		lats    []int64 // sampled, nanoseconds
		maxNS   int64
	}
	outs := make([]readerOut, opts.Readers)
	var wg sync.WaitGroup
	for i := 0; i < opts.Readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
			const sampleEvery = 8
			for time.Now().Before(deadline) {
				// A burst between clock checks keeps timer overhead low.
				for b := 0; b < 256; b++ {
					from := r.Intn(n)
					dest := dests[r.Intn(len(dests))]
					t0 := time.Now()
					s.Forward(from, dest) //nolint:errcheck — missing routes are a valid answer
					lat := time.Since(t0).Nanoseconds()
					outs[i].queries++
					if lat > outs[i].maxNS {
						outs[i].maxNS = lat
					}
					if outs[i].queries%sampleEvery == 0 && len(outs[i].lats) < 1<<17 {
						outs[i].lats = append(outs[i].lats, lat)
					}
				}
			}
		}()
	}

	var evCount int
	var evTotalNS int64
	if opts.EventEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
			down := map[int]bool{}
			for time.Now().Before(deadline) {
				time.Sleep(opts.EventEvery)
				arc := r.Intn(len(s.base.Arcs))
				t0 := time.Now()
				applied, _, err := s.ApplyEvent(context.Background(), arc, !down[arc])
				if err != nil {
					return
				}
				if applied {
					down[arc] = !down[arc]
					evCount++
					evTotalNS += time.Since(t0).Nanoseconds()
				}
			}
		}()
	}
	wg.Wait()

	var lats []int64
	var queries uint64
	var maxNS int64
	for _, o := range outs {
		queries += o.queries
		lats = append(lats, o.lats...)
		if o.maxNS > maxNS {
			maxNS = o.maxNS
		}
	}
	// Percentiles come from the shared telemetry quantile code (same
	// nearest-rank convention this report has always used).
	qs := telemetry.Quantiles(lats, 0.50, 0.90, 0.99)

	// Drain the garbage the query phase generated so collector pauses do
	// not land inside the timing pairs below.
	runtime.GC()

	// Quiescent comparison: with the readers gone, take paired timings —
	// an incremental event, then a full rebuild of the resulting
	// topology — so the two means cover the same sequence of graph
	// states and differ only in how much route computation each path
	// performs.
	r := rand.New(rand.NewSource(opts.Seed ^ 0x1e4e))
	var pairCount int
	var incNS, rebuildNS int64
	for i := 0; i < opts.ComparePairs; i++ {
		arc := r.Intn(len(s.base.Arcs))
		fail := !s.Snapshot().Disabled[arc]
		t0 := time.Now()
		if _, _, err := s.ApplyEvent(context.Background(), arc, fail); err != nil {
			break
		}
		incNS += time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if err := s.Rebuild(context.Background()); err != nil {
			break
		}
		rebuildNS += time.Since(t0).Nanoseconds()
		pairCount++
	}

	rep := &LoadReport{
		DurationSec:    opts.Duration.Seconds(),
		Readers:        opts.Readers,
		Queries:        queries,
		QPS:            float64(queries) / opts.Duration.Seconds(),
		P50us:          float64(qs[0]) / 1e3,
		P90us:          float64(qs[1]) / 1e3,
		P99us:          float64(qs[2]) / 1e3,
		MaxReadStallUS: float64(maxNS) / 1e3,
		Events:         evCount,
		Stats:          s.Stats(),
	}
	if evCount > 0 {
		rep.EventUnderLoadUS = float64(evTotalNS) / float64(evCount) / 1e3
	}
	if pairCount > 0 {
		rep.IncrementalEventUS = float64(incNS) / float64(pairCount) / 1e3
		rep.FullRebuildUS = float64(rebuildNS) / float64(pairCount) / 1e3
	}
	return rep
}
