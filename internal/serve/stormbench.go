package serve

// This file measures what the paged copy-on-write column layout buys
// at snapshot-swap time: paired storm replays on identically built
// servers — one on flat arena columns (every delta rebuild copies the
// whole O(N) column), one on paged columns (a rebuild clones only the
// pages the delta drain dirtied) — timing every swap, metering its
// allocation bytes, and counting cloned vs shared pages. Both servers
// run the same warm-start delta solver, so the pairing isolates the
// data-plane copy cost the page table removes. After every swap the
// paged snapshot is flattened and compared bit for bit against the
// flat one — the built-in differential that keeps the speedup honest.
// cmd/mrserve -storm-bench writes the result to BENCH_storm.json.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"metarouting/internal/rib"
)

// StormReport is the paired paged-vs-flat swap measurement for one
// topology size and storm width. Timings are mean per-swap (one
// ApplyBatch) cost in microseconds; alloc figures are mean bytes
// allocated per swap.
type StormReport struct {
	Nodes          int    `json:"nodes"`
	Arcs           int    `json:"arcs"`
	Destinations   int    `json:"destinations"`
	StormArcs      int    `json:"storm_arcs"`
	Rounds         int    `json:"rounds"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	Engine         string `json:"engine"`
	PagesPerColumn int    `json:"pages_per_column"`

	// FlatSwapUS is the baseline: every recomputed column re-laid in
	// full. PagedSwapUS covers identical batches on the paged server.
	FlatSwapUS   float64 `json:"flat_swap_us"`
	PagedSwapUS  float64 `json:"paged_swap_us"`
	SpeedupPaged float64 `json:"speedup_paged"`

	FlatSwapAllocBytes  float64 `json:"flat_swap_alloc_bytes"`
	PagedSwapAllocBytes float64 `json:"paged_swap_alloc_bytes"`

	// PagesCloned / PagesShared are the paged server's totals across
	// the measured window; ClonedFraction is the headline COW reading.
	PagesCloned    uint64  `json:"pages_cloned"`
	PagesShared    uint64  `json:"pages_shared"`
	ClonedFraction float64 `json:"cloned_page_fraction"`

	// DeltaRebuilds / ScratchRebuilds count the paged server's
	// per-destination rebuilds by solver path in the measured window.
	DeltaRebuilds   uint64 `json:"delta_rebuilds"`
	ScratchRebuilds uint64 `json:"scratch_rebuilds"`

	// DifferentialChecks counts the post-swap bit-identity comparisons
	// between the flattened paged snapshot and the flat snapshot; all
	// must pass for DifferentialOK.
	DifferentialChecks int  `json:"differential_checks"`
	DifferentialOK     bool `json:"differential_ok"`
}

// MeasureStorm builds two identically configured servers via mk — one
// on flat arena columns, one on paged copy-on-write columns — and
// replays rounds deterministic storms through both. Each storm fails
// stormArcs distinct random arcs as one batch, then restores them as
// another, so every round ends back at the all-enabled topology and
// both servers see identical work. Every swap is timed and
// alloc-metered separately per server, and after every paired swap the
// paged snapshot is flattened and compared bit for bit against the
// flat one. Both servers must have the warm-start delta path licensed
// (serve the bench an M or I algebra) — the point is to isolate
// data-plane copy cost, not solver cost.
func MeasureStorm(mk func(paged bool) (*Server, error), stormArcs, rounds int, seed int64) (*StormReport, error) {
	if stormArcs <= 0 {
		stormArcs = 4
	}
	if rounds <= 0 {
		rounds = 10
	}
	flat, err := mk(false)
	if err != nil {
		return nil, err
	}
	defer flat.Close()
	paged, err := mk(true)
	if err != nil {
		return nil, err
	}
	defer paged.Close()
	if flat.base.N != paged.base.N || len(flat.base.Arcs) != len(paged.base.Arcs) {
		return nil, fmt.Errorf("serve: mk built different topologies (%d/%d nodes, %d/%d arcs)",
			flat.base.N, paged.base.N, len(flat.base.Arcs), len(paged.base.Arcs))
	}
	if flat.Stats().PagedColumns {
		return nil, fmt.Errorf("serve: baseline server is paged — mk must honour WithPagedColumns(false)")
	}
	if !paged.Stats().PagedColumns {
		return nil, fmt.Errorf("serve: paged server came up flat — mk must honour WithPagedColumns(true)")
	}
	if !flat.Stats().DeltaEnabled || !paged.Stats().DeltaEnabled {
		return nil, fmt.Errorf("serve: storm bench needs the delta path licensed on both servers (M or I algebra)")
	}
	arcs := len(flat.base.Arcs)
	if stormArcs > arcs {
		stormArcs = arcs
	}

	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))
	makeStorm := func() ([]ArcEvent, []ArcEvent) {
		picked := make(map[int]bool, stormArcs)
		fail := make([]ArcEvent, 0, stormArcs)
		restore := make([]ArcEvent, 0, stormArcs)
		for len(fail) < stormArcs {
			arc := r.Intn(arcs)
			if picked[arc] {
				continue
			}
			picked[arc] = true
			fail = append(fail, ArcEvent{Arc: arc, Fail: true})
			restore = append(restore, ArcEvent{Arc: arc, Fail: false})
		}
		return fail, restore
	}

	// timedSwap applies one batch, returning wall time and the bytes
	// allocated. The forced collection and mem-stats reads sit outside
	// the timed window: quiescing the heap first keeps one server's
	// garbage (the flat baseline churns whole columns per swap) from
	// billing GC assist time to the other's measurement.
	var ms0, ms1 runtime.MemStats
	timedSwap := func(s *Server, batch []ArcEvent) (int64, uint64, error) {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if _, _, err := s.ApplyBatch(ctx, batch); err != nil {
			return 0, 0, err
		}
		ns := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		return ns, ms1.TotalAlloc - ms0.TotalAlloc, nil
	}

	rep := &StormReport{
		Nodes:          flat.base.N,
		Arcs:           arcs,
		Destinations:   len(flat.dests),
		StormArcs:      stormArcs,
		Rounds:         rounds,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Engine:         flat.Stats().Engine,
		PagesPerColumn: (flat.base.N + rib.PageSize - 1) >> rib.PageShift,
		DifferentialOK: true,
	}
	var flatNS, pagedNS int64
	var flatAlloc, pagedAlloc uint64
	var base Stats
	// Round -1 is an unmeasured warmup; the counter baseline is read
	// after it so the page and rebuild totals cover measured swaps only.
	for round := -1; round < rounds; round++ {
		if round == 0 {
			base = paged.Stats()
		}
		fail, restore := makeStorm()
		for _, batch := range [][]ArcEvent{fail, restore} {
			fns, fab, err := timedSwap(flat, batch)
			if err != nil {
				return nil, err
			}
			pns, pab, err := timedSwap(paged, batch)
			if err != nil {
				return nil, err
			}
			if round >= 0 {
				flatNS += fns
				pagedNS += pns
				flatAlloc += fab
				pagedAlloc += pab
			}
			if err := stormDifferential(flat, paged); err != nil {
				rep.DifferentialOK = false
				return rep, fmt.Errorf("serve: storm bench round %d: %v", round, err)
			}
			rep.DifferentialChecks++
		}
	}

	swaps := float64(2 * rounds)
	st := paged.Stats()
	rep.FlatSwapUS = float64(flatNS) / swaps / 1e3
	rep.PagedSwapUS = float64(pagedNS) / swaps / 1e3
	if rep.PagedSwapUS > 0 {
		rep.SpeedupPaged = rep.FlatSwapUS / rep.PagedSwapUS
	}
	rep.FlatSwapAllocBytes = float64(flatAlloc) / swaps
	rep.PagedSwapAllocBytes = float64(pagedAlloc) / swaps
	rep.PagesCloned = st.PagesCloned - base.PagesCloned
	rep.PagesShared = st.PagesShared - base.PagesShared
	if total := rep.PagesCloned + rep.PagesShared; total > 0 {
		rep.ClonedFraction = float64(rep.PagesCloned) / float64(total)
	}
	rep.DeltaRebuilds = st.DeltaDestRebuilds - base.DeltaDestRebuilds
	rep.ScratchRebuilds = st.ScratchDestRebuilds - base.ScratchDestRebuilds
	return rep, nil
}

// stormDifferential compares the two servers' current snapshots bit
// for bit: same version, and every paged column flattens to exactly
// the flat server's column — slots, pool, convergence and the clean
// certificate included.
func stormDifferential(flat, paged *Server) error {
	fs, ps := flat.Snapshot(), paged.Snapshot()
	if fs.Version != ps.Version {
		return fmt.Errorf("snapshot versions diverged (flat v%d, paged v%d)", fs.Version, ps.Version)
	}
	for _, d := range flat.dests {
		fc, ok := fs.cols[d].(*rib.Column)
		if !ok {
			return fmt.Errorf("dest %d: flat server holds a %T", d, fs.cols[d])
		}
		pc, ok := ps.cols[d].(*rib.PagedColumn)
		if !ok {
			return fmt.Errorf("dest %d: paged server holds a %T", d, ps.cols[d])
		}
		if got := pc.Flatten(); !reflect.DeepEqual(got, fc) {
			return fmt.Errorf("dest %d: flattened paged column differs from flat column\n got %+v\nwant %+v", d, got, fc)
		}
	}
	return nil
}
