package serve

// BenchmarkSingleRoute meters the full GET /v1/route handler path —
// query parsing, snapshot resolution, JSON encoding — per request,
// with allocs/op as the headline. The response writer is a stub so
// the measurement covers the handler, not httptest bookkeeping.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// discardResponse is a minimal ResponseWriter that retains nothing.
type discardResponse struct {
	h http.Header
}

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

func benchServer(b *testing.B) *Server {
	b.Helper()
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		b.Fatal(err)
	}
	origin := a.OT.DefaultOrigin()
	g := graph.Random(rand.New(rand.NewSource(7)), 64, 0.15, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: origin, 21: origin, 42: origin}
	srv, err := New(exec.For(a.OT, origin), g, origins, WithWorkers(2))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func BenchmarkSingleRoute(b *testing.B) {
	srv := benchServer(b)
	mux := NewHandler(srv, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/route?from=5&dest=0", nil)
	w := &discardResponse{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range w.h {
			delete(w.h, k)
		}
		mux.ServeHTTP(w, req)
	}
}
