package serve_test

import (
	"context"
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

// benchServer builds the standard bench fixture: a 64-node GNP topology
// over lex(delay, bw) with 8 originated destinations.
func benchServer(b *testing.B, workers int) (*serve.Server, *graph.Graph) {
	b.Helper()
	a, err := core.InferString("lex(delay(32,3), bw(8))")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	g := graph.Random(r, 64, 0.08, graph.UniformLabels(a.OT.F.Size()))
	origins := make(map[int]value.V)
	for d := 0; d < 8; d++ {
		origins[d*8] = value.Pair{A: 0, B: 8}
	}
	srv, err := serve.New(exec.For(a.OT, value.Pair{A: 0, B: 8}), g, origins, serve.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv, g
}

// BenchmarkServeLookup: the lock-free read path under parallel load.
func BenchmarkServeLookup(b *testing.B) {
	srv, g := benchServer(b, 4)
	dests := srv.Dests()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(2))
		for pb.Next() {
			srv.Lookup(r.Intn(g.N), dests[r.Intn(len(dests))])
		}
	})
}

// BenchmarkServeForward: full path resolution per query.
func BenchmarkServeForward(b *testing.B) {
	srv, g := benchServer(b, 4)
	dests := srv.Dests()
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Forward(r.Intn(g.N), dests[r.Intn(len(dests))]) //nolint:errcheck
	}
}

// BenchmarkServeEventIncremental: one link toggle handled by the
// incremental reconvergence path (recompute invalidated destinations
// only, swap snapshot).
func BenchmarkServeEventIncremental(b *testing.B) {
	srv, g := benchServer(b, 4)
	r := rand.New(rand.NewSource(4))
	down := make([]bool, len(g.Arcs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arc := r.Intn(len(g.Arcs))
		if _, _, err := srv.ApplyEvent(context.Background(), arc, !down[arc]); err != nil {
			b.Fatal(err)
		}
		down[arc] = !down[arc]
	}
}

// BenchmarkServeRebuildFull: the from-scratch baseline the incremental
// path is measured against.
func BenchmarkServeRebuildFull(b *testing.B) {
	srv, _ := benchServer(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Rebuild(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
