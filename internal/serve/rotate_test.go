package serve_test

// End-to-end log rotation: a leader publishing through a real
// replica.Publisher with a small byte cap must roll its on-disk log
// into numbered segments mid-storm, seed each fresh segment with a
// full checkpoint, and leave behind (a) a live file that replays to
// the current snapshot on its own and (b) a directory whose full
// segment chain replays across every rotation boundary — both
// checksum-identical to the leader.

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/replica"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

func TestLogRotationAcrossSegments(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	origin := a.OT.DefaultOrigin()
	r := rand.New(rand.NewSource(42))
	g := graph.Random(r, 16, 0.3, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: origin, 5: origin, 11: origin}

	dir := t.TempDir()
	log, err := replica.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var srv *serve.Server
	pub := replica.NewPublisher(func() (uint64, []byte, error) { return srv.EncodeFull() }, log)
	pub.SetLogMaxBytes(2048)
	defer pub.Close()
	srv, err = serve.New(exec.For(a.OT, origin), g, origins,
		serve.WithWorkers(2), serve.WithDeltaProps(a.Props), serve.WithReplication(pub))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	disabled := make([]bool, len(g.Arcs))
	for i := 0; i < 120; i++ {
		arc := r.Intn(len(g.Arcs))
		if _, _, err := srv.ApplyEvent(context.Background(), arc, !disabled[arc]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		disabled[arc] = !disabled[arc]
	}

	segs, err := replica.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("storm left %d segment files, want rotation to have produced at least 3 (got %v)", len(segs), segs)
	}

	wantVersion, wantCRC := srv.Snapshot().Version, srv.Checksum()

	// The live file alone replays to the current snapshot — its first
	// record is the checkpoint that seeded the segment.
	live := serve.NewFollower(nil)
	if err := replica.ReplayLog(filepath.Join(dir, replica.LogName), live.Apply); err != nil {
		t.Fatalf("replay live log: %v", err)
	}
	if live.Version() != wantVersion || live.Checksum() != wantCRC {
		t.Fatalf("live-log follower at v%d crc %08x, leader at v%d crc %08x",
			live.Version(), live.Checksum(), wantVersion, wantCRC)
	}

	// The whole directory replays across every rotation boundary.
	chain := serve.NewFollower(nil)
	if err := replica.ReplayLog(dir, chain.Apply); err != nil {
		t.Fatalf("replay segment chain: %v", err)
	}
	if chain.Version() != wantVersion || chain.Checksum() != wantCRC {
		t.Fatalf("chain follower at v%d crc %08x, leader at v%d crc %08x",
			chain.Version(), chain.Checksum(), wantVersion, wantCRC)
	}
}
