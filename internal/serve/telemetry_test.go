package serve_test

// Integration tests for the serve-side telemetry: the query histogram,
// the slow-query ring, route-flap counting and the solver stage
// counters, all observed through the Prometheus exposition the way an
// operator would.

import (
	"bytes"
	"context"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

// metricValue extracts a sample by exact line prefix ("name " or
// "name{labels} ") from a Prometheus exposition dump.
func metricValue(t *testing.T, dump, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(dump, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, dump)
	return 0
}

func TestServeTelemetry(t *testing.T) {
	a, err := core.InferString("lex(delay(16,3), hops(8))")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	g := graph.Grid(r, 4, 4, graph.UniformLabels(a.OT.F.Size()))
	origins := map[int]value.V{0: value.Pair{A: 0, B: 0}, 15: value.Pair{A: 1, B: 0}}
	reg := telemetry.NewRegistry()
	srv, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(2), serve.WithRegistry(reg),
		serve.WithSlowQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dump := func() string {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// The query path samples 1 in 16 resolutions into the histogram (and
	// the slow log); the queries counter still sees every call.
	const queries = 32
	const sampled = queries / 16
	for i := 0; i < queries; i++ {
		if _, err := srv.Forward(i%g.N, 0); err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
	}
	d := dump()
	if got := metricValue(t, d, "mrserve_queries_total"); got != queries {
		t.Fatalf("queries_total = %v, want %d", got, queries)
	}
	if got := metricValue(t, d, "mrserve_query_seconds_count"); got != sampled {
		t.Fatalf("query histogram count = %v, want %d sampled", got, sampled)
	}
	if got := metricValue(t, d, `mrserve_query_seconds_bucket{le="+Inf"}`); got != sampled {
		t.Fatalf("+Inf bucket = %v, want %d", got, sampled)
	}
	// Snapshot building ran the solver through instrumented workspaces.
	if got := metricValue(t, d, "mrserve_solve_runs_total"); got < 2 {
		t.Fatalf("solve runs = %v, want ≥ number of destinations", got)
	}
	if got := metricValue(t, d, "mrserve_solve_relaxations_total"); got <= 0 {
		t.Fatalf("solve relaxations = %v, want > 0", got)
	}

	// With a 1ns threshold every sampled query lands in the slow-query
	// ring, newest-capped at the ring size.
	slow := srv.SlowQueries()
	if len(slow) != sampled {
		t.Fatalf("slow queries = %d, want %d", len(slow), sampled)
	}
	for _, sq := range slow {
		if sq.NS <= 0 || sq.Dest != 0 {
			t.Fatalf("bad slow-query record: %+v", sq)
		}
	}

	// Fail an arc that carries a live forwarding path: the affected
	// nodes must re-select, which the flap counter records.
	path, err := srv.Forward(5, 0)
	if err != nil || len(path) < 2 {
		t.Fatalf("need a multi-hop path to break: %v %v", path, err)
	}
	arcIdxs, ok := g.ArcsOf(path)
	if !ok {
		t.Fatalf("path %v not an arc walk", path)
	}
	if _, _, err := srv.ApplyEvent(context.Background(), arcIdxs[0], true); err != nil {
		t.Fatal(err)
	}
	d = dump()
	if got := metricValue(t, d, "mrserve_route_flaps_total"); got <= 0 {
		t.Fatalf("route_flaps_total = %v, want > 0 after breaking a live path", got)
	}
	if got := metricValue(t, d, "mrserve_events_applied_total"); got != 1 {
		t.Fatalf("events_applied_total = %v, want 1", got)
	}
	if got := metricValue(t, d, "mrserve_convergence_event_seconds_count"); got != 1 {
		t.Fatalf("event histogram count = %v, want 1", got)
	}
	if got := metricValue(t, d, "mrserve_disabled_arcs"); got != 1 {
		t.Fatalf("disabled_arcs = %v, want 1", got)
	}

	// The uninstrumented configuration keeps the hot path bare: no
	// histogram, no slow ring, but the cheap counters still serve Stats.
	bare, err := serve.New(exec.For(a.OT), g, origins, serve.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Forward(3, 0); err != nil {
		t.Fatal(err)
	}
	if got := bare.SlowQueries(); got != nil {
		t.Fatalf("bare server must not keep a slow log: %v", got)
	}
	if st := bare.Stats(); st.Queries != 1 {
		t.Fatalf("bare stats queries = %d, want 1", st.Queries)
	}
}
