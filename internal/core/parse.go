package core

import (
	"fmt"
	"strconv"
	"unicode"
)

// Parse parses a metarouting-language expression such as
//
//	scoped(lp(4), lex(hops(16), bw(8)))
//
// into an AST. Whitespace is insignificant. Base-algebra arguments are
// integer literals; operator arguments are subexpressions.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse but panics on error; for tests and literals in code.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (p.pos > start && c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) expr() (Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		// A bare identifier is a base algebra with no parameters.
		if IsOp(name) {
			return nil, p.errorf("operator %s requires arguments", name)
		}
		return BaseExpr{Name: name}, nil
	}
	p.pos++ // consume '('
	if IsOp(name) {
		op := Op(name)
		var args []Expr
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		min, max := op.arity()
		if len(args) < min || (max >= 0 && len(args) > max) {
			return nil, p.errorf("%s expects %d%s arguments, got %d",
				name, min, arityHint(min, max), len(args))
		}
		return OpExpr{Op: op, Args: args}, nil
	}
	// Base algebra with integer parameters.
	var ints []int
	p.skipSpace()
	if p.peek() != ')' {
		for {
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			ints = append(ints, n)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return BaseExpr{Name: name, Args: ints}, nil
}

func (p *parser) intLit() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errorf("expected integer literal")
	}
	return strconv.Atoi(p.src[start:p.pos])
}

func arityHint(min, max int) string {
	switch {
	case max < 0:
		return "+"
	case max == min:
		return ""
	default:
		return fmt.Sprintf("..%d", max)
	}
}
