package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metarouting/internal/prop"
)

// randExpr derives a deterministic random expression from a seed: small
// base algebras composed with random operators, depth ≤ 3.
func randExpr(r *rand.Rand, depth int) Expr {
	bases := []Expr{
		Base("delay", 3, 1),
		Base("bw", 3),
		Base("lp", 2),
		Base("origin", 2),
		Base("tags", 1),
		Base("unit"),
		Base("gadget"),
	}
	if depth == 0 || r.Intn(3) == 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(5) {
	case 0:
		return Lex(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return Scoped(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return Delta(randExpr(r, depth-1), randExpr(r, depth-1))
	case 3:
		return LeftE(randExpr(r, depth-1))
	default:
		return RightE(randExpr(r, depth-1))
	}
}

// Property: for every random expression, the rule-derived judgements
// never contradict exhaustive model checks — soundness of the whole
// inference engine over its expressible universe.
func TestQuickInferenceSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 2)
		a, err := InferWith(e, Options{Fallback: false})
		if err != nil {
			return true // expression invalid (e.g. oversized): vacuous
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 600 {
			return true // too large to model check in a quick property
		}
		for _, id := range routingIDs {
			derived := a.Props.Status(id)
			if derived == prop.Unknown {
				continue
			}
			j := a.OT.Check(id, nil, 0)
			if j.Status != derived {
				t.Logf("expr %s: %s derived %v, model %v (%s)", e, id, derived, j.Status, j.Witness)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: parse(render(e)) is identity on rendered form for random
// expressions.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 3)
		again, err := Parse(e.String())
		if err != nil {
			return false
		}
		return again.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: lex is associative at the property level — lex(a, b, c)
// derives the same routing properties as lex(lex(a, b), c).
func TestQuickLexPropertyAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randExpr(r, 0)
		b := randExpr(r, 0)
		c := randExpr(r, 0)
		flat, err1 := InferWith(Lex(a, b, c), Options{Fallback: false})
		nested, err2 := InferWith(Lex(Lex(a, b), c), Options{Fallback: false})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		for _, id := range routingIDs {
			if flat.Props.Status(id) != nested.Props.Status(id) {
				t.Logf("%s/%s/%s: %s differs: %v vs %v", a, b, c, id,
					flat.Props.Status(id), nested.Props.Status(id))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fallback never *changes* a rule-derived judgement — it only
// fills Unknowns.
func TestQuickFallbackOnlyFills(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 2)
		bare, err := InferWith(e, Options{Fallback: false})
		if err != nil {
			return true
		}
		full, err := InferWith(e, Options{Fallback: true})
		if err != nil {
			return false
		}
		for _, id := range routingIDs {
			b := bare.Props.Status(id)
			if b != prop.Unknown && full.Props.Status(id) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: SI ⇒ I and I ⇒ ND never violated in derived property sets
// (logical coherence of the judgements the engine hands out).
func TestQuickPropertyImplications(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 2)
		a, err := Infer(e)
		if err != nil {
			return true
		}
		si, i, nd := a.Props.Status(prop.SILeft), a.Props.Status(prop.ILeft), a.Props.Status(prop.NDLeft)
		if si == prop.True && i == prop.False {
			return false
		}
		// I ⇒ ND holds only when ⊤-equivalent elements also satisfy
		// a ≲ f(a)… which T guarantees; check the guarded implication.
		if i == prop.True && a.Props.Holds(prop.TopFixed) && nd == prop.False {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
