package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONEncodeShape(t *testing.T) {
	e := MustParse("scoped(bw(4), delay(64,3))")
	data, err := MarshalExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op": "scoped"`, `"base": "bw"`, `"params"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	back, err := UnmarshalExpr(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != e.String() {
		t.Fatalf("round trip: %s vs %s", back.String(), e.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 3)
		data, err := MarshalExpr(e)
		if err != nil {
			return false
		}
		back, err := UnmarshalExpr(data)
		if err != nil {
			t.Logf("unmarshal of %s: %v", data, err)
			return false
		}
		return back.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONValidation(t *testing.T) {
	cases := []struct{ src, want string }{
		{`{"base": "delay", "op": "lex"}`, "both base"},
		{`{"base": "delay", "args": [{"base": "bw"}]}`, "must not have expression args"},
		{`{"base": "lex"}`, "is an operator"},
		{`{"op": "nosuch", "args": [{"base":"unit"},{"base":"unit"}]}`, "unknown operator"},
		{`{"op": "lex", "params": [1]}`, "must not have integer params"},
		{`{"op": "left", "args": []}`, "wants 1"},
		{`{"op": "scoped", "args": [{"base":"unit"}]}`, "wants 2"},
		{`{}`, `needs "base" or "op"`},
		{`[1,2]`, "bad expression JSON"},
	}
	for _, c := range cases {
		_, err := UnmarshalExpr([]byte(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestJSONThenInfer(t *testing.T) {
	data := []byte(`{
	  "op": "scoped",
	  "args": [
	    {"base": "bw", "params": [4]},
	    {"base": "delay", "params": [64, 3]}
	  ]
	}`)
	e, err := UnmarshalExpr(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Infer(e)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SupportsGlobalOptima() {
		t.Fatal("the JSON-loaded scoped product must be monotone")
	}
}

func TestReportJSON(t *testing.T) {
	a, err := InferString("scoped(bw(4), delay(16,2))")
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.MarshalReport()
	if err != nil {
		t.Fatal(err)
	}
	var r ReportJSON
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if !r.GlobalOptima || r.LocalOptima || r.Dijkstra {
		t.Fatalf("verdicts wrong: %+v", r)
	}
	if r.Properties["M"].Status != "true" {
		t.Fatalf("M judgement missing: %+v", r.Properties)
	}
	if len(r.Children) != 2 || r.Children[0].Expr != "bw(4)" {
		t.Fatalf("children wrong: %+v", r.Children)
	}
	if r.Children[0].Properties["N"].Witness == "" {
		t.Fatal("witnesses must survive serialization")
	}
}
