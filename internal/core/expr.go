// Package core implements the metarouting language: a small declarative
// language whose expressions denote routing algebras (order transforms)
// and whose *properties* — monotonicity M, nondecreasing ND, increasing I,
// cancellative N, condensed C, top-fixing T — are derived automatically
// from the expression structure, the way types are derived in a
// programming language (§I of the paper).
//
// The language has the base algebras of internal/baselib and the operators
// of §II:
//
//	lex(e1, …, en)   lexicographic product ×lex (n-ary, left-associated)
//	scoped(e1, e2)   BGP-like scoped product ⊙
//	delta(e1, e2)    OSPF-area-like partition Δ
//	union(e1, e2)    disjoint function union + (operands must share carriers)
//	left(e)          constant functions only (local-preference shape)
//	right(e)         identity function only (origin shape)
//	addtop(e)        adjoin an "unreachable" ⊤ fixed by every function
//
// Inference uses the exact rules of Theorems 4 and 5 for lex, with the
// left/right/union rules of §V; the scoped and Δ characterizations
// (Theorems 6 and 7) then *emerge* from rule composition, exactly as the
// paper derives them. When no rule applies, the engine falls back to
// model checking on finite structures.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a node of the metarouting language AST.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// BaseExpr names a base algebra with integer parameters, e.g. delay(16,3).
type BaseExpr struct {
	Name string
	Args []int
}

func (BaseExpr) exprNode() {}

// String implements fmt.Stringer.
func (e BaseExpr) String() string {
	if len(e.Args) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = strconv.Itoa(a)
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// OpExpr applies a language operator to subexpressions.
type OpExpr struct {
	Op   Op
	Args []Expr
}

func (OpExpr) exprNode() {}

// String implements fmt.Stringer.
func (e OpExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return string(e.Op) + "(" + strings.Join(parts, ", ") + ")"
}

// Op identifies a language operator.
type Op string

// The language operators.
const (
	OpLex    Op = "lex"
	OpScoped Op = "scoped"
	OpDelta  Op = "delta"
	OpUnion  Op = "union"
	OpLeft   Op = "left"
	OpRight  Op = "right"
	OpAddTop Op = "addtop"
	// OpPlus is the additive-composite combination ⊞ of §VI's discussion
	// (EIGRP-style fixed-formula metrics, after Gouda & Schneider): both
	// components accumulate, comparison is by their sum.
	OpPlus Op = "plus"
)

// arity returns the (min, max) argument counts of an operator; max < 0
// means unbounded.
func (o Op) arity() (int, int) {
	switch o {
	case OpLex:
		return 2, -1
	case OpScoped, OpDelta, OpUnion:
		return 2, 2
	case OpPlus:
		return 2, 2
	case OpLeft, OpRight, OpAddTop:
		return 1, 1
	default:
		return 0, 0
	}
}

// IsOp reports whether name is a language operator.
func IsOp(name string) bool {
	switch Op(name) {
	case OpLex, OpScoped, OpDelta, OpUnion, OpLeft, OpRight, OpAddTop, OpPlus:
		return true
	}
	return false
}

// Lex builds an n-ary lexicographic product expression.
func Lex(args ...Expr) Expr { return OpExpr{Op: OpLex, Args: args} }

// Scoped builds a scoped-product expression S ⊙ T.
func Scoped(s, t Expr) Expr { return OpExpr{Op: OpScoped, Args: []Expr{s, t}} }

// Delta builds an OSPF-like partition expression S Δ T.
func Delta(s, t Expr) Expr { return OpExpr{Op: OpDelta, Args: []Expr{s, t}} }

// UnionE builds a disjoint-function-union expression S + T.
func UnionE(s, t Expr) Expr { return OpExpr{Op: OpUnion, Args: []Expr{s, t}} }

// LeftE builds left(e).
func LeftE(e Expr) Expr { return OpExpr{Op: OpLeft, Args: []Expr{e}} }

// RightE builds right(e).
func RightE(e Expr) Expr { return OpExpr{Op: OpRight, Args: []Expr{e}} }

// AddTopE builds addtop(e).
func AddTopE(e Expr) Expr { return OpExpr{Op: OpAddTop, Args: []Expr{e}} }

// Plus builds an additive-composite expression S ⊞ T.
func Plus(s, t Expr) Expr { return OpExpr{Op: OpPlus, Args: []Expr{s, t}} }

// Base builds a base-algebra expression.
func Base(name string, args ...int) Expr { return BaseExpr{Name: name, Args: args} }
