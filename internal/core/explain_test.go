package core

import (
	"strings"
	"testing"

	"metarouting/internal/prop"
)

func TestExplainLexMFailure(t *testing.T) {
	a := infer(t, "lex(bw(8), delay(8,3))")
	out := a.Explain(prop.MLeft)
	for _, want := range []string{
		"M = false",
		"Theorem 4",
		"N(bw(8)) = false",
		"C(delay(8,3)) = false",
		"scoped product",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	// Both components ARE monotone — the hint fires only because the
	// side condition is the sole failure.
	if !strings.Contains(out, "M(bw(8)) = true") {
		t.Errorf("explanation should show the operands' M:\n%s", out)
	}
}

func TestExplainLexMSuccess(t *testing.T) {
	a := infer(t, "lex(origin(3), delay(4,2))")
	out := a.Explain(prop.MLeft)
	if !strings.Contains(out, "M = true") {
		t.Fatalf("explanation:\n%s", out)
	}
	if !strings.Contains(out, "N(origin(3)) = true") {
		t.Errorf("the cancellative guard should appear:\n%s", out)
	}
	if strings.Contains(out, "hint:") {
		t.Errorf("no hint needed when the property holds:\n%s", out)
	}
}

func TestExplainDeltaHintPointsAtScoped(t *testing.T) {
	a := infer(t, "delta(bw(6), delay(6,2))")
	out := a.Explain(prop.MLeft)
	if !strings.Contains(out, "Theorem 7") || !strings.Contains(out, "scoped product ⊙") {
		t.Errorf("Δ failure should point at ⊙:\n%s", out)
	}
}

func TestExplainScopedM(t *testing.T) {
	a := infer(t, "scoped(bw(6), delay(6,2))")
	out := a.Explain(prop.MLeft)
	if !strings.Contains(out, "M = true") || !strings.Contains(out, "Theorem 6") {
		t.Errorf("explanation:\n%s", out)
	}
}

func TestExplainRecursesIntoFaultyOperator(t *testing.T) {
	// The inner lex fails M; the outer union must recurse into it.
	a := infer(t, "union(lex(bw(4), delay(4,2)), lex(bw(4), delay(4,2)))")
	out := a.Explain(prop.MLeft)
	if strings.Count(out, "Theorem 4") < 1 {
		t.Errorf("union explanation must descend into the failing lex:\n%s", out)
	}
}

func TestExplainLeftRight(t *testing.T) {
	l := infer(t, "left(delay(3,1))")
	out := l.Explain(prop.NDLeft)
	if !strings.Contains(out, "single equivalence class") {
		t.Errorf("left ND explanation:\n%s", out)
	}
	r := infer(t, "right(delay(3,1))")
	out = r.Explain(prop.ILeft)
	if !strings.Contains(out, "single equivalence class") {
		t.Errorf("right I explanation:\n%s", out)
	}
}

func TestExplainBaseAlgebra(t *testing.T) {
	a := infer(t, "bw(4)")
	out := a.Explain(prop.ILeft)
	if !strings.Contains(out, "I = false") || !strings.Contains(out, "witness") {
		t.Errorf("base explanation must carry the declared witness:\n%s", out)
	}
}

func TestExplainWitnessSurfaced(t *testing.T) {
	// Fallback-decided properties carry model-check witnesses; Explain
	// must surface them.
	a := infer(t, "plus(delay(3,1), lp(3))")
	out := a.Explain(prop.NDLeft)
	if !strings.Contains(out, "ND =") {
		t.Fatalf("explanation:\n%s", out)
	}
}
