package core

import (
	"fmt"
	"strings"

	"metarouting/internal/prop"
)

// Explain renders a causal account of why a routing property holds or
// fails for the algebra — §III's promise made executable: "if an algebra
// fails to meet the required standards, we will be able to deduce exactly
// which components are at fault, and in what way."
//
// The explanation shows the rule that decided the property at this node,
// the component judgements the rule consumed (with witnesses), recursion
// into the children that are actually at fault, and — where the theory
// offers one — a repair hint (e.g. "both operands are monotone: a scoped
// product would be monotone where this lexicographic product is not").
func (a *Algebra) Explain(id prop.ID) string {
	var b strings.Builder
	a.explain(&b, id, 0)
	return b.String()
}

func (a *Algebra) explain(b *strings.Builder, id prop.ID, depth int) {
	indent := strings.Repeat("  ", depth)
	label := a.OT.Name
	if a.Expr != nil {
		label = a.Expr.String()
	}
	j := a.Props.Get(id)
	fmt.Fprintf(b, "%s%s: %s = %s", indent, label, id, j.Status)
	if j.Rule != "" {
		fmt.Fprintf(b, "  [%s]", j.Rule)
	}
	if j.Witness != "" {
		fmt.Fprintf(b, "\n%s  witness: %s", indent, j.Witness)
	}
	b.WriteByte('\n')

	op, ok := a.Expr.(OpExpr)
	if !ok || len(a.Children) == 0 {
		return
	}
	reqs, hint := requirements(op.Op, id, a)
	if len(reqs) == 0 {
		return
	}
	fmt.Fprintf(b, "%s  requires %s\n", indent, requirementFormula(op.Op, id))
	for _, r := range reqs {
		child := a.Children[r.child]
		cj := child.Props.Get(r.id)
		// Recurse only into judgements that contributed to a failure (or
		// all of them when this node's judgement is True/Unknown — the
		// reader may want the support either way, one level deep).
		childLabel := child.OT.Name
		if child.Expr != nil {
			childLabel = child.Expr.String()
		}
		fmt.Fprintf(b, "%s  - %s(%s) = %s", indent, r.id, childLabel, cj.Status)
		if cj.Witness != "" {
			fmt.Fprintf(b, " (%s)", cj.Witness)
		}
		b.WriteByte('\n')
		if j.Status == prop.False && cj.Status == prop.False {
			if _, isOp := child.Expr.(OpExpr); isOp {
				child.explain(b, r.id, depth+2)
			}
		}
	}
	if hint != "" {
		fmt.Fprintf(b, "%s  hint: %s\n", indent, hint)
	}
}

// req names a component judgement a rule consumes.
type req struct {
	child int
	id    prop.ID
}

// requirements lists the component judgements behind (op, id), and an
// optional repair hint computed from the actual component statuses.
func requirements(op Op, id prop.ID, a *Algebra) ([]req, string) {
	kids := a.Children
	stOf := func(i int, p prop.ID) prop.Status {
		if i >= len(kids) {
			return prop.Unknown
		}
		return kids[i].Props.Status(p)
	}
	switch op {
	case OpLex:
		// n-ary lex folds left; explain over the flat operand list:
		// S = first operand, T = the rest (approximating the fold is
		// exact for binary lex, the common case).
		last := len(kids) - 1
		switch id {
		case prop.MLeft:
			reqs := []req{{0, prop.MLeft}, {last, prop.MLeft}, {0, prop.NLeft}, {last, prop.CLeft}}
			hint := ""
			if a.Props.Fails(prop.MLeft) &&
				stOf(0, prop.MLeft) == prop.True && stOf(last, prop.MLeft) == prop.True {
				hint = "both operands are monotone; only the side condition N(S)∨C(T) fails — " +
					"a scoped product (Theorem 6) is monotone with these exact operands"
			}
			return reqs, hint
		case prop.NDLeft:
			return []req{{0, prop.SILeft}, {0, prop.NDLeft}, {last, prop.NDLeft}}, ""
		case prop.SILeft:
			return []req{{0, prop.SILeft}, {0, prop.NDLeft}, {last, prop.SILeft}}, ""
		case prop.ILeft:
			return []req{{0, prop.ILeft}, {0, prop.TopFixed}, {last, prop.ILeft},
				{0, prop.SILeft}, {0, prop.NDLeft}, {last, prop.SILeft}}, ""
		case prop.NLeft:
			return []req{{0, prop.NLeft}, {last, prop.NLeft}}, ""
		case prop.CLeft:
			return []req{{0, prop.CLeft}, {last, prop.CLeft}}, ""
		case prop.TopFixed:
			return []req{{0, prop.HasTop}, {last, prop.HasTop}, {0, prop.TopFixed}, {last, prop.TopFixed}}, ""
		}
	case OpScoped:
		switch id {
		case prop.MLeft:
			return []req{{0, prop.MLeft}, {1, prop.MLeft}}, ""
		case prop.NDLeft:
			return []req{{0, prop.SILeft}, {1, prop.NDLeft}}, ""
		case prop.ILeft:
			return []req{{0, prop.SILeft}, {1, prop.ILeft}, {1, prop.SILeft}}, ""
		}
	case OpDelta:
		switch id {
		case prop.MLeft:
			reqs := []req{{0, prop.MLeft}, {1, prop.MLeft}, {0, prop.NLeft}, {1, prop.CLeft}}
			hint := ""
			if a.Props.Fails(prop.MLeft) &&
				stOf(0, prop.MLeft) == prop.True && stOf(1, prop.MLeft) == prop.True {
				hint = "Δ keeps lex's N(S)∨C(T) requirement (Theorem 7); the scoped product ⊙ " +
					"needs only M(S)∧M(T) (Theorem 6) and would be monotone here"
			}
			return reqs, hint
		case prop.NDLeft:
			return []req{{0, prop.SILeft}, {1, prop.NDLeft}}, ""
		}
	case OpUnion, OpPlus:
		return []req{{0, id}, {1, id}}, ""
	case OpLeft:
		switch id {
		case prop.NLeft:
			return []req{{0, FactStrictPair}}, ""
		case prop.NDLeft, prop.ILeft:
			return []req{{0, FactMultiClass}}, ""
		}
	case OpRight:
		switch id {
		case prop.ILeft, prop.CLeft:
			return []req{{0, FactMultiClass}}, ""
		case prop.TopFixed:
			return []req{{0, prop.HasTop}}, ""
		}
	case OpAddTop:
		switch id {
		case prop.MLeft, prop.NLeft, prop.NDLeft:
			return []req{{0, id}}, ""
		case prop.ILeft:
			return []req{{0, prop.SILeft}}, ""
		}
	}
	return nil, ""
}

// requirementFormula renders the rule shape for (op, id) — display only.
func requirementFormula(op Op, id prop.ID) string {
	switch op {
	case OpLex:
		switch id {
		case prop.MLeft:
			return "M(S) ∧ M(T) ∧ (N(S) ∨ C(T))   (Theorem 4)"
		case prop.NDLeft:
			return "SI(S) ∨ (ND(S) ∧ ND(T))   (Theorem 5)"
		case prop.SILeft:
			return "SI(S) ∨ (ND(S) ∧ SI(T))   (Theorem 5)"
		case prop.ILeft:
			return "I(S)∧T(S)∧I(T) with both tops; SI(S×T) otherwise"
		case prop.NLeft:
			return "N(S) ∧ N(T)"
		case prop.CLeft:
			return "C(S) ∧ C(T)"
		case prop.TopFixed:
			return "both tops exist ∧ T(S) ∧ T(T)"
		}
	case OpScoped:
		switch id {
		case prop.MLeft:
			return "M(S) ∧ M(T)   (Theorem 6)"
		case prop.NDLeft:
			return "SI(S) ∧ ND(T)   (Theorem 6, SI form)"
		case prop.ILeft:
			return "SI(S) ∧ I-side conditions   (Theorem 6, SI form)"
		}
	case OpDelta:
		switch id {
		case prop.MLeft:
			return "M(S) ∧ M(T) ∧ (N(S) ∨ C(T))   (Theorem 7)"
		case prop.NDLeft:
			return "SI(S) ∧ ND(T)   (Theorem 7, SI form)"
		}
	case OpUnion:
		return fmt.Sprintf("%s(S) ∧ %s(T)   (union rule)", id, id)
	case OpPlus:
		return fmt.Sprintf("%s(S) ∧ %s(T)   (Gouda–Schneider, sufficient)", id, id)
	case OpLeft:
		switch id {
		case prop.NLeft:
			return "no strict pair in the order"
		case prop.NDLeft, prop.ILeft:
			return "a single equivalence class"
		}
	case OpRight:
		switch id {
		case prop.ILeft, prop.CLeft:
			return "a single equivalence class"
		case prop.TopFixed:
			return "the order has a ⊤"
		}
	case OpAddTop:
		if id == prop.ILeft {
			return "SI(S) — every old element must strictly increase"
		}
		return fmt.Sprintf("%s(S)   (addtop preserves it)", id)
	}
	return "(see the rule name above)"
}
