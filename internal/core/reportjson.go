package core

import (
	"encoding/json"

	"metarouting/internal/prop"
)

// ReportJSON is the machine-readable form of an inference result, for
// tooling (CI gates on routing-policy changes, dashboards).
type ReportJSON struct {
	// Expr is the source expression.
	Expr string `json:"expr"`
	// Carrier is the weight-set size (-1 when infinite).
	Carrier int `json:"carrier"`
	// GlobalOptima/LocalOptima/Dijkstra mirror the Supports* predicates.
	GlobalOptima bool `json:"globalOptima"`
	LocalOptima  bool `json:"localOptima"`
	Dijkstra     bool `json:"dijkstra"`
	// Properties maps property names to judgements.
	Properties map[string]JudgementJSON `json:"properties"`
	// Children are the operand reports.
	Children []ReportJSON `json:"children,omitempty"`
}

// JudgementJSON is the wire form of a property judgement.
type JudgementJSON struct {
	Status  string `json:"status"`
	Rule    string `json:"rule,omitempty"`
	Witness string `json:"witness,omitempty"`
}

// ToReport builds the machine-readable report tree.
func (a *Algebra) ToReport() ReportJSON {
	label := a.OT.Name
	if a.Expr != nil {
		label = a.Expr.String()
	}
	r := ReportJSON{
		Expr:         label,
		Carrier:      a.OT.Carrier().Size(),
		GlobalOptima: a.SupportsGlobalOptima(),
		LocalOptima:  a.SupportsLocalOptima(),
		Dijkstra:     a.SupportsDijkstra(),
		Properties:   make(map[string]JudgementJSON, len(routingIDs)),
	}
	for _, id := range routingIDs {
		j := a.Props.Get(id)
		if j.Status == prop.Unknown {
			continue
		}
		r.Properties[string(id)] = JudgementJSON{
			Status: j.Status.String(), Rule: j.Rule, Witness: j.Witness,
		}
	}
	for _, c := range a.Children {
		r.Children = append(r.Children, c.ToReport())
	}
	return r
}

// MarshalReport renders the report tree as indented JSON.
func (a *Algebra) MarshalReport() ([]byte, error) {
	return json.MarshalIndent(a.ToReport(), "", "  ")
}
