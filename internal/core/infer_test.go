package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"metarouting/internal/baselib"
	"metarouting/internal/fn"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// inferNoFallback evaluates with rules only, so tests can tell rule-derived
// judgements apart from model-checked ones.
func inferNoFallback(t *testing.T, src string) *Algebra {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := InferWith(e, Options{Fallback: false})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func infer(t *testing.T, src string) *Algebra {
	t.Helper()
	a, err := InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// checkAgainstModel model-checks every rule-derived judgement of a finite
// algebra: the inference engine must never contradict the model.
func checkAgainstModel(t *testing.T, a *Algebra, label string) {
	t.Helper()
	if !a.OT.Finite() {
		return
	}
	for _, id := range routingIDs {
		derived := a.Props.Status(id)
		if derived == prop.Unknown {
			continue
		}
		j := a.OT.Check(id, nil, 0)
		if j.Status != derived {
			t.Errorf("%s: %s inferred %v (rule %q) but model says %v (%s)",
				label, id, derived, a.Props.Get(id).Rule, j.Status, j.Witness)
		}
	}
	for _, c := range a.Children {
		checkAgainstModel(t, c, label)
	}
}

func TestBaseInference(t *testing.T) {
	a := infer(t, "delay(6,2)")
	if !a.Props.Holds(prop.MLeft) || !a.Props.Holds(prop.ILeft) {
		t.Fatal("bounded delay must be M and I")
	}
	if !a.SupportsGlobalOptima() || !a.SupportsLocalOptima() {
		t.Fatal("delay supports both optima")
	}
	checkAgainstModel(t, a, "delay")
}

func TestUnknownBase(t *testing.T) {
	if _, err := InferString("nosuch(3)"); err == nil || !strings.Contains(err.Error(), "unknown base") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadArity(t *testing.T) {
	if _, err := InferString("delay(4)"); err == nil || !strings.Contains(err.Error(), "arguments") {
		t.Fatalf("err = %v", err)
	}
}

// TestTheorem4ViaRules: the rules alone (no fallback) must decide M for
// lex products of base algebras, and the answers must match the model.
func TestTheorem4ViaRules(t *testing.T) {
	cases := []struct {
		src  string
		want prop.Status
	}{
		// M(delay)∧M(bw)∧(N? delay bounded: ¬N; C(bw): ¬C) ⇒ ¬M.
		{"lex(delay(4,2), bw(4))", prop.False},
		// bw first: ¬N(bw), ¬C(delay) ⇒ ¬M — the §III example.
		{"lex(bw(4), delay(4,2))", prop.False},
		// origin is N (identity is injective); M(origin)∧M(delay)∧N(origin) ⇒ M.
		{"lex(origin(3), delay(4,2))", prop.True},
		// lp is C on the right side: M(bw)∧M(lp)∧(¬N(bw) but C(lp)) ⇒ M.
		{"lex(bw(4), lp(3))", prop.True},
		// tags is N (discrete order) and M ⇒ lex(tags, anything-M) is M.
		{"lex(tags(2), bw(3))", prop.True},
	}
	for _, c := range cases {
		a := inferNoFallback(t, c.src)
		got := a.Props.Status(prop.MLeft)
		if got != c.want {
			t.Errorf("%s: inferred M=%v, want %v (rule %q, witness %q)",
				c.src, got, c.want, a.Props.Get(prop.MLeft).Rule, a.Props.Get(prop.MLeft).Witness)
		}
		if !strings.Contains(a.Props.Get(prop.MLeft).Rule, "Thm4") {
			t.Errorf("%s: M must be decided by the Theorem 4 rule, got %q", c.src, a.Props.Get(prop.MLeft).Rule)
		}
		checkAgainstModel(t, a, c.src)
	}
}

// TestTheorem5ViaRules: ND and I of lex products.
func TestTheorem5ViaRules(t *testing.T) {
	cases := []struct {
		src    string
		wantND prop.Status
		wantI  prop.Status
	}{
		// Bounded delay has a ⊤ (its ceiling), so SI fails and ND of the
		// product needs ND of *both* factors; lp is not ND.
		{"lex(delay(4,2), lp(3))", prop.False, prop.False},
		// ND(bw) ∧ ND(origin) ⇒ ND; ¬I(bw) ⇒ ¬I (both operands topped).
		{"lex(bw(4), origin(2))", prop.True, prop.False},
		// ND(bw) ∧ ND(delay) ⇒ ND; ¬I(bw) kills I under the topped rule.
		{"lex(bw(4), delay(4,2))", prop.True, prop.False},
		// Both topped with I(S)∧T(S)∧I(T): the positive I case.
		{"lex(delay(4,2), delay(4,2))", prop.True, prop.True},
		// ¬ND(lp) and ¬SI(lp) ⇒ neither.
		{"lex(lp(3), delay(4,2))", prop.False, prop.False},
	}
	for _, c := range cases {
		a := inferNoFallback(t, c.src)
		if got := a.Props.Status(prop.NDLeft); got != c.wantND {
			t.Errorf("%s: ND=%v, want %v", c.src, got, c.wantND)
		}
		if got := a.Props.Status(prop.ILeft); got != c.wantI {
			t.Errorf("%s: I=%v, want %v", c.src, got, c.wantI)
		}
		checkAgainstModel(t, a, c.src)
	}
}

// TestTheorem6ScopedEmerges: the ⊙ characterization must fall out of rule
// composition: ND(S⊙T) ⟺ I(S)∧ND(T); I(S⊙T) ⟺ I(S)∧I(T);
// M(S⊙T) ⟺ M(S)∧M(T).
func TestTheorem6ScopedEmerges(t *testing.T) {
	// bw ⊙ delay: M(bw)∧M(delay) ⇒ M — even though lex fails.
	a := inferNoFallback(t, "scoped(bw(4), delay(4,2))")
	if a.Props.Status(prop.MLeft) != prop.True {
		t.Fatalf("M(bw ⊙ delay) must be derived True: %s", a.Props.Get(prop.MLeft))
	}
	// ND(S⊙T) ⟺ I(S)∧ND(T): ¬I(bw) ⇒ ¬ND.
	if a.Props.Status(prop.NDLeft) != prop.False {
		t.Fatalf("ND(bw ⊙ delay) must be False (bw is not increasing): %s", a.Props.Get(prop.NDLeft))
	}
	checkAgainstModel(t, a, "scoped(bw,delay)")

	// Bounded delay ⊙ bounded delay: M ∧ M ⇒ M; but the ceiling means
	// SI fails, so the refined rules (and the model!) deny I — the
	// paper-literal I(S)∧I(T) claim holds only for top-free operands.
	b := inferNoFallback(t, "scoped(delay(3,1), delay(3,1))")
	if b.Props.Status(prop.MLeft) != prop.True {
		t.Fatalf("M(delay ⊙ delay) must be True: %s", b.Props.Get(prop.MLeft))
	}
	if b.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("I(bounded delay ⊙ bounded delay) must be False: %s", b.Props.Get(prop.ILeft))
	}
	checkAgainstModel(t, b, "scoped(delay,delay)")

	// Top-free operands recover the paper-literal Theorem 6 verbatim:
	// I(S⊙T) ⟺ I(S)∧I(T) and ND(S⊙T) ⟺ I(S)∧ND(T).
	u := inferNoFallback(t, "scoped(delay(0,1), delay(0,1))")
	if u.Props.Status(prop.ILeft) != prop.True {
		t.Fatalf("I(delay∞ ⊙ delay∞) must be True: %s", u.Props.Get(prop.ILeft))
	}
	if u.Props.Status(prop.NDLeft) != prop.True {
		t.Fatalf("ND(delay∞ ⊙ delay∞) must be True: %s", u.Props.Get(prop.NDLeft))
	}
	if u.Props.Status(prop.MLeft) != prop.True {
		t.Fatalf("M(delay∞ ⊙ delay∞) must be True: %s", u.Props.Get(prop.MLeft))
	}

	// delay∞ ⊙ bw: I(delay∞)∧ND(bw) ⇒ ND; ¬I(bw) ⇒ ¬I.
	c := inferNoFallback(t, "scoped(delay(0,1), bw(3))")
	if c.Props.Status(prop.NDLeft) != prop.True {
		t.Fatalf("ND(delay∞ ⊙ bw) must be True: %s", c.Props.Get(prop.NDLeft))
	}
	if c.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("I(delay∞ ⊙ bw) must be False: %s", c.Props.Get(prop.ILeft))
	}
}

// TestTheorem7DeltaEmerges: M(SΔT) ⟺ M(S)∧M(T)∧(N(S)∨C(T)) — Δ keeps
// lex's extra requirement, unlike ⊙.
func TestTheorem7DeltaEmerges(t *testing.T) {
	a := inferNoFallback(t, "delta(bw(4), delay(4,2))")
	if a.Props.Status(prop.MLeft) != prop.False {
		t.Fatalf("M(bw Δ delay) must be False: %s", a.Props.Get(prop.MLeft))
	}
	checkAgainstModel(t, a, "delta(bw,delay)")

	b := inferNoFallback(t, "delta(origin(3), delay(4,2))")
	if b.Props.Status(prop.MLeft) != prop.True {
		t.Fatalf("M(origin Δ delay) must be True (N(origin)): %s", b.Props.Get(prop.MLeft))
	}
	// I(SΔT) ⟺ I(S)∧I(T): ¬I(origin) ⇒ ¬I.
	if b.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("I(origin Δ delay) must be False: %s", b.Props.Get(prop.ILeft))
	}
	checkAgainstModel(t, b, "delta(origin,delay)")
}

// TestLeftRightRules validates the §V facts the scoped expansion relies on.
func TestLeftRightRules(t *testing.T) {
	l := inferNoFallback(t, "left(delay(3,1))")
	if !l.Props.Holds(prop.MLeft) || !l.Props.Holds(prop.CLeft) {
		t.Fatal("left must be M and C by rule")
	}
	if !l.Props.Fails(prop.NDLeft) || !l.Props.Fails(prop.ILeft) {
		t.Fatal("left over a multi-class order must fail ND and I")
	}
	checkAgainstModel(t, l, "left(delay)")

	r := inferNoFallback(t, "right(delay(3,1))")
	if !r.Props.Holds(prop.MLeft) || !r.Props.Holds(prop.NLeft) || !r.Props.Holds(prop.NDLeft) {
		t.Fatal("right must be M, N, ND by rule")
	}
	if !r.Props.Fails(prop.ILeft) || !r.Props.Fails(prop.CLeft) {
		t.Fatal("right over a multi-class order must fail I and C")
	}
	checkAgainstModel(t, r, "right(delay)")

	// left/right over the unit algebra: single class flips the verdicts.
	lu := inferNoFallback(t, "left(unit)")
	if !lu.Props.Holds(prop.NDLeft) || !lu.Props.Holds(prop.ILeft) || !lu.Props.Holds(prop.NLeft) {
		t.Fatal("left(unit) must be ND, I and N")
	}
	checkAgainstModel(t, lu, "left(unit)")
}

func TestUnionRules(t *testing.T) {
	u := infer(t, "union(right(delay(3,1)), delay(3,1))")
	// union: P ⟺ P(S)∧P(T); right is ND, delay is ND ⇒ ND. right not I ⇒ ¬I.
	if !u.Props.Holds(prop.NDLeft) {
		t.Fatal("union must be ND")
	}
	if !u.Props.Fails(prop.ILeft) {
		t.Fatal("union with right(·) must fail I")
	}
	checkAgainstModel(t, u, "union")
}

func TestUnionRejectsMismatchedOrders(t *testing.T) {
	_, err := InferString("union(delay(3,1), bw(3))")
	if err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("err = %v", err)
	}
}

func TestAddTopRules(t *testing.T) {
	a := infer(t, "addtop(tags(2))")
	if !a.Props.Holds(prop.TopFixed) || !a.Props.Holds(prop.HasTop) {
		t.Fatal("addtop must fix a fresh ⊤")
	}
	if !a.Props.Fails(prop.CLeft) {
		t.Fatal("addtop kills C")
	}
	checkAgainstModel(t, a, "addtop(tags)")
}

// TestAddTopIRule: I(addtop(S)) ⟺ SI(S) — the old ceiling no longer
// counts as ⊤, so only an everywhere-strict S survives.
func TestAddTopIRule(t *testing.T) {
	a := inferNoFallback(t, "addtop(delay(3,1))")
	if a.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("I(addtop(bounded delay)) must be False: %s", a.Props.Get(prop.ILeft))
	}
	checkAgainstModel(t, a, "addtop(delay)")
	b := inferNoFallback(t, "addtop(delay(0,2))")
	if b.Props.Status(prop.ILeft) != prop.True {
		t.Fatalf("I(addtop(delay∞)) must be True (SI(delay∞)): %s", b.Props.Get(prop.ILeft))
	}
}

// TestFallbackOnUndeclaredBase: a registered base algebra with no declared
// properties leaves everything Unknown under rules alone; fallback model
// checking must settle every property of the finite structure.
func TestFallbackOnUndeclaredBase(t *testing.T) {
	Register(BaseSpec{
		Name: "mystery_test", Usage: "mystery_test(cap)", MinArgs: 1, MaxArgs: 1,
		Doc: "delay without declarations, for fallback testing",
		Build: func(a []int) (*ost.OrderTransform, error) {
			d := baselib.Delay(a[0], 1)
			d.Props = prop.Make() // strip declarations
			return d, nil
		},
	})
	defer delete(Registry, "mystery_test")
	noFb := inferNoFallback(t, "mystery_test(3)")
	if noFb.Props.Status(prop.MLeft) != prop.Unknown {
		t.Fatal("undeclared base must be Unknown without fallback")
	}
	withFb := infer(t, "mystery_test(3)")
	j := withFb.Props.Get(prop.MLeft)
	if j.Status != prop.True || !strings.Contains(j.Rule, "fallback") {
		t.Fatalf("fallback must establish M with provenance: %s", j)
	}
	if withFb.Props.Status(prop.ILeft) != prop.True {
		t.Fatal("fallback must establish I")
	}
}

// TestScopedOnInfiniteCarrier: the scoped expansion must work where the
// extensional union check cannot (unbounded delay), and the rules must
// still decide M.
func TestScopedOnInfiniteCarrier(t *testing.T) {
	a := inferNoFallback(t, "scoped(bw(8), delay(0,3))")
	if a.Props.Status(prop.MLeft) != prop.True {
		t.Fatalf("M(bw ⊙ delay∞) = %s", a.Props.Get(prop.MLeft))
	}
}

// TestBGPShape: the flagship expression — a BGP-like protocol:
// scoped(lex(lp, hops), lex(hops, bw)) … simplified to
// scoped(lp, lex(hops, bw)): inter-domain local-pref guarding an
// AS-internal hops-then-bandwidth lex.
func TestBGPShape(t *testing.T) {
	a := infer(t, "scoped(lex(lp(4), hops(8)), lex(hops(8), bw(4)))")
	// lp is not increasing, so the product cannot promise local optima
	// through the rules; check the engine produces a definite verdict on
	// every property for this finite structure.
	for _, id := range routingIDs {
		if a.Props.Status(id) == prop.Unknown {
			t.Fatalf("%s left Unknown on a finite structure", id)
		}
	}
	checkAgainstModel(t, a, "bgp-shape")
}

// TestNAryLexCorollary2: I(S1×…×Sn) ⟺ ∃k: SI(Sk) ∧ ∀j<k: ND(Sj) — the
// guard-chain structure of Corollary 2, with I read as SI per the
// truncation refinement.
func TestNAryLexCorollary2(t *testing.T) {
	// bw (ND, ¬SI), origin (ND, ¬SI), delay∞ (SI): the chain is I.
	a := inferNoFallback(t, "lex(bw(3), origin(2), delay(0,1))")
	if a.Props.Status(prop.ILeft) != prop.True {
		t.Fatalf("ND-guarded SI tail must give I: %s", a.Props.Get(prop.ILeft))
	}
	// The bounded tail is topped, so its SI fails and I dies with it —
	// and the model agrees.
	ab := inferNoFallback(t, "lex(bw(3), origin(2), delay(3,1))")
	if ab.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("bounded tail must fail I: %s", ab.Props.Get(prop.ILeft))
	}
	checkAgainstModel(t, ab, "3-ary lex bounded")
	// lp (¬ND) first: everything after is unguarded.
	b := inferNoFallback(t, "lex(lp(3), delay(3,1), delay(3,1))")
	if b.Props.Status(prop.ILeft) != prop.False {
		t.Fatalf("lp-first chain must fail I: %s", b.Props.Get(prop.ILeft))
	}
	checkAgainstModel(t, b, "lp-first lex")
}

func TestSampledFactsOnInfinite(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	e := MustParse("delay(0,2)")
	a, err := InferWith(e, Options{Fallback: true, Samples: 200, Rand: r})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Props.Holds(FactStrictPair) || !a.Props.Holds(FactMultiClass) {
		t.Fatal("sampling must find witnesses for the existential facts")
	}
}

func TestReportAndVerdict(t *testing.T) {
	a := infer(t, "scoped(bw(4), delay(4,2))")
	rep := a.Report()
	for _, want := range []string{"scoped(bw(4), delay(4,2))", "global optima", "M", "bw(4)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(a.Verdict(), "global optima") {
		t.Fatalf("verdict = %q", a.Verdict())
	}
	b := infer(t, "lex(bw(4), delay(0,3))")
	if !strings.Contains(b.Verdict(), "local optima") || strings.Contains(b.Verdict(), "global and local") {
		t.Fatalf("verdict = %q", b.Verdict())
	}
}

func TestRegistryListing(t *testing.T) {
	names := BaseNames()
	if len(names) < 8 {
		t.Fatalf("expected ≥8 base algebras, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("BaseNames must be sorted")
		}
	}
}

func TestRegisterRejectsOperatorNames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register(BaseSpec{Name: "lex"})
}

// TestPlusOperator: the additive composite ⊞. The Gouda–Schneider rule
// fires when both operands are ND; otherwise fallback model checking
// settles the properties.
func TestPlusOperator(t *testing.T) {
	a := infer(t, "plus(delay(4,1), delay(4,2))")
	j := a.Props.Get(prop.NDLeft)
	if j.Status != prop.True {
		t.Fatalf("ND(delay ⊞ delay) must hold: %s", j)
	}
	if !strings.Contains(j.Rule, "Gouda") {
		t.Fatalf("ND must come from the Gouda–Schneider rule: %q", j.Rule)
	}
	checkAgainstModel(t, a, "plus(delay,delay)")

	// lp is not ND: the sufficient rule stays silent and fallback decides.
	b := infer(t, "plus(delay(3,1), lp(3))")
	jb := b.Props.Get(prop.NDLeft)
	if jb.Status == prop.Unknown {
		t.Fatal("fallback must settle ND on a finite composite")
	}
	if !strings.Contains(jb.Rule, "fallback") {
		t.Fatalf("non-ND operand must route through fallback: %q", jb.Rule)
	}
	checkAgainstModel(t, b, "plus(delay,lp)")
}

// TestPlusFallbackOnRuleSilence: when a component is not ND the
// sufficient rule stays silent and fallback decides. (On finite carriers
// the answer is necessarily False — any loss is unmasked at the other
// component's ceiling — which E14 records as a small theorem; the §VI
// gap only opens on unbounded carriers, which plus rejects.)
func TestPlusFallbackOnRuleSilence(t *testing.T) {
	// "discount" loses 1 per hop (not ND); delay(8,2) gains ≥1. Sum is
	// nondecreasing only if every delay step outweighs the discount: use
	// steps of exactly 1 loss vs gains of ≥1… gains of 1 tie, so use
	// minStep 2 via delay(8,2) with only +2 functions? delay's steps are
	// 1..maxStep; build the gap instance through the registry instead.
	Register(BaseSpec{
		Name: "discount_test", Usage: "discount_test(cap)", MinArgs: 1, MaxArgs: 1,
		Doc: "loses one unit per hop; not ND in isolation",
		Build: func(args []int) (*ost.OrderTransform, error) {
			cap := args[0]
			d := baselib.Delay(cap, 1) // reuse carrier/order shape
			dec := fn.Fn{Name: "-1", Apply: func(v value.V) value.V {
				x := v.(int) - 1
				if x < 0 {
					x = 0
				}
				return x
			}}
			return ost.New("discount", d.Ord, fn.NewFinite("F", []fn.Fn{dec})), nil
		},
	})
	defer delete(Registry, "discount_test")
	Register(BaseSpec{
		Name: "gain2_test", Usage: "gain2_test(cap)", MinArgs: 1, MaxArgs: 1,
		Doc: "gains exactly two units per hop",
		Build: func(args []int) (*ost.OrderTransform, error) {
			cap := args[0]
			d := baselib.Delay(cap, 1)
			inc := fn.Fn{Name: "+2", Apply: func(v value.V) value.V {
				x := v.(int) + 2
				if x > cap {
					x = cap
				}
				return x
			}}
			return ost.New("gain2", d.Ord, fn.NewFinite("F", []fn.Fn{inc})), nil
		},
	})
	defer delete(Registry, "gain2_test")

	a := infer(t, "plus(discount_test(8), gain2_test(8))")
	j := a.Props.Get(prop.NDLeft)
	// At the gain ceiling the sum drops (-1 + 0), so the model must find
	// False — the point is that the judgement is settled by fallback.
	if j.Status == prop.Unknown {
		t.Fatal("fallback must decide")
	}
	if strings.Contains(j.Rule, "Gouda") {
		t.Fatal("the sufficient rule must not fire (discount is not ND)")
	}
	checkAgainstModel(t, a, "plus(discount,gain2)")
}

func TestPlusRejectsInfiniteCarrier(t *testing.T) {
	if _, err := InferString("plus(delay(0,1), delay(4,1))"); err == nil {
		t.Fatal("plus over an infinite carrier must be rejected")
	}
}

// TestHugeFiniteCarrierFastPath: fact computation on very large finite
// carriers must not enumerate quadratically — inference of a 64k-element
// delay must return promptly (the guard routes it to the sampled path).
func TestHugeFiniteCarrierFastPath(t *testing.T) {
	done := make(chan *Algebra, 1)
	go func() {
		a, err := InferString("delay(65535,3)")
		if err != nil {
			t.Error(err)
		}
		done <- a
	}()
	select {
	case a := <-done:
		// Declared routing properties still arrive.
		if !a.Props.Holds(prop.MLeft) || !a.Props.Holds(prop.ILeft) {
			t.Fatal("declared properties must survive the fast path")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("inference on a 64k carrier took too long — fact enumeration guard broken")
	}
}

// TestRegistryArgumentValidation: every base algebra rejects out-of-range
// parameters with a usage message.
func TestRegistryArgumentValidation(t *testing.T) {
	bad := []string{
		"delay(0,0)",
		"hops(0)x", // parse error, not registry — keep the engine honest too
		"bw(0)",
		"rel(1)",
		"lp(0)",
		"origin(0)",
		"tags(0)",
		"tags(17)",
	}
	for _, src := range bad {
		if _, err := InferString(src); err == nil {
			t.Errorf("%s: expected an error", src)
		}
	}
	// hops(0) is the valid unbounded variant.
	if _, err := InferString("hops(0)"); err != nil {
		t.Errorf("hops(0) must be the unbounded hop count: %v", err)
	}
}

// TestScopedNAryComposition: policy hierarchies nest (inter-continent ⊙
// (inter-AS ⊙ intra-AS)) and the rules keep composing.
func TestScopedNAryComposition(t *testing.T) {
	a := infer(t, "scoped(origin(2), scoped(bw(3), delay(4,1)))")
	if !a.Props.Holds(prop.MLeft) {
		t.Fatal("nested scoped products of monotone operands must stay monotone (Theorem 6 twice)")
	}
	checkAgainstModel(t, a, "nested scoped")
}
