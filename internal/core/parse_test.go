package core

import (
	"strings"
	"testing"
)

func TestParseBase(t *testing.T) {
	e, err := Parse("delay(16, 3)")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := e.(BaseExpr)
	if !ok || b.Name != "delay" || len(b.Args) != 2 || b.Args[0] != 16 || b.Args[1] != 3 {
		t.Fatalf("parsed %#v", e)
	}
}

func TestParseBareBase(t *testing.T) {
	e, err := Parse("unit")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := e.(BaseExpr); !ok || b.Name != "unit" || len(b.Args) != 0 {
		t.Fatalf("parsed %#v", e)
	}
}

func TestParseNested(t *testing.T) {
	e, err := Parse(" scoped( lp(4), lex( hops(16), bw(8) ) ) ")
	if err != nil {
		t.Fatal(err)
	}
	op, ok := e.(OpExpr)
	if !ok || op.Op != OpScoped || len(op.Args) != 2 {
		t.Fatalf("parsed %#v", e)
	}
	inner, ok := op.Args[1].(OpExpr)
	if !ok || inner.Op != OpLex || len(inner.Args) != 2 {
		t.Fatalf("inner = %#v", op.Args[1])
	}
}

func TestParseNAryLex(t *testing.T) {
	e, err := Parse("lex(lp(4), hops(16), bw(8), origin(2))")
	if err != nil {
		t.Fatal(err)
	}
	if op := e.(OpExpr); len(op.Args) != 4 {
		t.Fatalf("lex arity = %d", len(op.Args))
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"delay(16,3)",
		"lex(hops(16), bw(8))",
		"scoped(lp(4), lex(hops(16), bw(8)))",
		"union(right(delay(4,1)), right(delay(4,1)))",
		"addtop(tags(3))",
	}
	for _, src := range srcs {
		e := MustParse(src)
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("%s: round trip failed: %v", src, err)
		}
		if again.String() != e.String() {
			t.Fatalf("%s: %q != %q", src, again.String(), e.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "identifier"},
		{"lex", "requires arguments"},
		{"lex(delay(4,1))", "expects 2"},
		{"left(a, b)", "expects 1"},
		{"scoped(lp(4), lp(4), lp(4))", "expects 2"},
		{"delay(4,1) trailing", "trailing"},
		{"delay(4,", "integer"},
		{"delay(4,1", `expected ")"`},
		{"123", "identifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("(((")
}

func TestBuilderHelpers(t *testing.T) {
	e := Scoped(Base("lp", 4), Lex(Base("hops", 16), Base("bw", 8)))
	want := "scoped(lp(4), lex(hops(16), bw(8)))"
	if e.String() != want {
		t.Fatalf("builder rendering = %q, want %q", e.String(), want)
	}
}

// FuzzParse: the parser must never panic, and everything it accepts must
// render and re-parse to the same tree (run with `go test -fuzz=FuzzParse`;
// the seed corpus runs in normal test mode).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"delay(16,3)",
		"scoped(lp(4), lex(hops(16), bw(8)))",
		"lex(a, b, c)",
		"union(right(x), left(y))",
		"plus(delay(4,1), delay(4,2))",
		"addtop(addtop(tags(2)))",
		"lex((((",
		"123abc",
		"delay(999999999999999999999)",
		"lex(delay(1,1), delay(1,1)", // unbalanced
		"  unit  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("rendering not a fixpoint: %q vs %q", again.String(), rendered)
		}
	})
}
