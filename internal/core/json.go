package core

import (
	"encoding/json"
	"fmt"
)

// Expressions marshal to a small JSON schema so algebra definitions can
// live in configuration files:
//
//	{"base": "delay", "params": [64, 3]}
//	{"op": "scoped", "args": [{"base": "bw", "params": [4]},
//	                          {"base": "delay", "params": [64, 3]}]}
//
// MarshalExpr/UnmarshalExpr are the entry points; both round-trip with
// Parse/String (TestJSONRoundTrip fuzzes this).

// exprJSON is the wire form of an expression node.
type exprJSON struct {
	Base   string     `json:"base,omitempty"`
	Params []int      `json:"params,omitempty"`
	Op     string     `json:"op,omitempty"`
	Args   []exprJSON `json:"args,omitempty"`
}

// MarshalExpr encodes an expression as JSON.
func MarshalExpr(e Expr) ([]byte, error) {
	w, err := toWire(e)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(w, "", "  ")
}

// UnmarshalExpr decodes an expression from JSON, validating operator
// arities and node shapes (base-algebra existence is checked at Infer
// time, like the parser does).
func UnmarshalExpr(data []byte) (Expr, error) {
	var w exprJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: bad expression JSON: %w", err)
	}
	return fromWire(w)
}

func toWire(e Expr) (exprJSON, error) {
	switch n := e.(type) {
	case BaseExpr:
		return exprJSON{Base: n.Name, Params: n.Args}, nil
	case OpExpr:
		args := make([]exprJSON, len(n.Args))
		for i, a := range n.Args {
			w, err := toWire(a)
			if err != nil {
				return exprJSON{}, err
			}
			args[i] = w
		}
		return exprJSON{Op: string(n.Op), Args: args}, nil
	default:
		return exprJSON{}, fmt.Errorf("core: unknown expression node %T", e)
	}
}

func fromWire(w exprJSON) (Expr, error) {
	switch {
	case w.Base != "" && w.Op != "":
		return nil, fmt.Errorf("core: node has both base %q and op %q", w.Base, w.Op)
	case w.Base != "":
		if len(w.Args) != 0 {
			return nil, fmt.Errorf("core: base %q must not have expression args", w.Base)
		}
		if IsOp(w.Base) {
			return nil, fmt.Errorf("core: %q is an operator, use \"op\"", w.Base)
		}
		return BaseExpr{Name: w.Base, Args: w.Params}, nil
	case w.Op != "":
		if !IsOp(w.Op) {
			return nil, fmt.Errorf("core: unknown operator %q", w.Op)
		}
		if len(w.Params) != 0 {
			return nil, fmt.Errorf("core: operator %q must not have integer params", w.Op)
		}
		op := Op(w.Op)
		min, max := op.arity()
		if len(w.Args) < min || (max >= 0 && len(w.Args) > max) {
			return nil, fmt.Errorf("core: operator %q wants %d%s args, got %d",
				w.Op, min, arityHint(min, max), len(w.Args))
		}
		args := make([]Expr, len(w.Args))
		for i, aw := range w.Args {
			a, err := fromWire(aw)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return OpExpr{Op: op, Args: args}, nil
	default:
		return nil, fmt.Errorf("core: expression node needs \"base\" or \"op\"")
	}
}
