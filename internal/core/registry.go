package core

import (
	"fmt"
	"sort"

	"metarouting/internal/baselib"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
)

// Cardinality facts used by the inference rules for left(·) and right(·)
// (§V: "if S has two or more elements…", "unless S consists of a single
// equivalence class…"). They live in the same prop.Set as the routing
// properties.
const (
	// FactMultiElem: the carrier has at least two elements.
	FactMultiElem prop.ID = "≥2elems"
	// FactMultiClass: the order has at least two equivalence classes
	// (equivalently, it is not chaotic).
	FactMultiClass prop.ID = "≥2classes"
	// FactStrictPair: there exist a, b with a < b.
	FactStrictPair prop.ID = "∃a<b"
)

// BaseSpec describes a base algebra available to the language.
type BaseSpec struct {
	// Name is the identifier used in expressions.
	Name string
	// Usage documents the parameter list, e.g. "delay(cap, maxStep)".
	Usage string
	// Doc is a one-line description.
	Doc string
	// MinArgs and MaxArgs bound the integer-parameter count.
	MinArgs, MaxArgs int
	// Build constructs the order transform. Declared properties on the
	// result seed the inference engine.
	Build func(args []int) (*ost.OrderTransform, error)
}

// Registry maps base-algebra names to their specifications. It is
// populated with the baselib algebras at init and may be extended with
// Register.
var Registry = map[string]BaseSpec{}

// Register adds (or replaces) a base algebra. It panics if name collides
// with a language operator.
func Register(spec BaseSpec) {
	if IsOp(spec.Name) {
		panic("core: base algebra name collides with operator: " + spec.Name)
	}
	Registry[spec.Name] = spec
}

// BaseNames returns the registered base-algebra names, sorted.
func BaseNames() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func argErr(name, usage string, args []int) error {
	return fmt.Errorf("core: %s: bad arguments %v (usage: %s)", name, args, usage)
}

func init() {
	Register(BaseSpec{
		Name: "delay", Usage: "delay(cap, maxStep)", MinArgs: 2, MaxArgs: 2,
		Doc: "additive delay, ≤ preferred; cap 0 = unbounded (cancellative)",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 0 || a[1] < 1 {
				return nil, argErr("delay", "delay(cap≥0, maxStep≥1)", a)
			}
			return baselib.Delay(a[0], a[1]), nil
		},
	})
	Register(BaseSpec{
		Name: "hops", Usage: "hops(cap)", MinArgs: 1, MaxArgs: 1,
		Doc: "hop count, ≤ preferred; cap 0 = unbounded",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 0 {
				return nil, argErr("hops", "hops(cap≥0)", a)
			}
			return baselib.HopCount(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "bw", Usage: "bw(cap)", MinArgs: 1, MaxArgs: 1,
		Doc: "bottleneck bandwidth, ≥ preferred",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 1 {
				return nil, argErr("bw", "bw(cap≥1)", a)
			}
			return baselib.Bandwidth(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "rel", Usage: "rel(levels)", MinArgs: 1, MaxArgs: 1,
		Doc: "path reliability on a [0,1] grid, ≥ preferred",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 2 {
				return nil, argErr("rel", "rel(levels≥2)", a)
			}
			return baselib.Reliability(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "lp", Usage: "lp(levels)", MinArgs: 1, MaxArgs: 1,
		Doc: "local preference (constants), higher preferred",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 1 {
				return nil, argErr("lp", "lp(levels≥1)", a)
			}
			return baselib.LocalPref(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "origin", Usage: "origin(n)", MinArgs: 1, MaxArgs: 1,
		Doc: "origin codes (identity only), lower preferred",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 1 {
				return nil, argErr("origin", "origin(n≥1)", a)
			}
			return baselib.Origin(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "tags", Usage: "tags(bits)", MinArgs: 1, MaxArgs: 1,
		Doc: "community tags under the discrete order",
		Build: func(a []int) (*ost.OrderTransform, error) {
			if a[0] < 1 || a[0] > 16 {
				return nil, argErr("tags", "tags(1≤bits≤16)", a)
			}
			return baselib.Tags(a[0]), nil
		},
	})
	Register(BaseSpec{
		Name: "gadget", Usage: "gadget", MinArgs: 0, MaxArgs: 0,
		Doc: "stable-paths-problem gadget algebra (direct/via filtering)",
		Build: func(a []int) (*ost.OrderTransform, error) {
			return baselib.SPPGadget(), nil
		},
	})
	Register(BaseSpec{
		Name: "unit", Usage: "unit", MinArgs: 0, MaxArgs: 0,
		Doc: "the one-element algebra (×lex identity)",
		Build: func(a []int) (*ost.OrderTransform, error) {
			return baselib.Unit(), nil
		},
	})
}
