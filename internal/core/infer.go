package core

import (
	"fmt"
	"math/rand"
	"strings"

	"metarouting/internal/ost"
	"metarouting/internal/prop"
)

// Algebra is the result of evaluating a metarouting expression: the
// constructed order transform together with the inferred property set and
// the evaluated children (for reporting).
type Algebra struct {
	// Expr is the source expression (nil for internal nodes synthesized
	// while expanding scoped/delta).
	Expr Expr
	// OT is the constructed routing algebra.
	OT *ost.OrderTransform
	// Props holds the inferred routing properties and cardinality facts.
	Props prop.Set
	// Children are the evaluated operand algebras.
	Children []*Algebra
}

// SupportsGlobalOptima reports whether the algebra is known monotonic —
// the requirement for globally optimal routing (§II). Monotonicity
// guarantees that a converged fixpoint iteration yields weights that
// dominate every path; see SupportsDijkstra for the stronger condition
// under which the greedy Dijkstra generalization is also correct.
func (a *Algebra) SupportsGlobalOptima() bool { return a.Props.Holds(prop.MLeft) }

// SupportsDijkstra reports whether the generalized Dijkstra algorithm is
// known correct for the algebra: monotone (M), nondecreasing (ND — the
// greedy settle order assumes extensions never improve a route), and a
// full (total) preorder so that a minimal unsettled node always exists.
func (a *Algebra) SupportsDijkstra() bool {
	return a.Props.Holds(prop.MLeft) && a.Props.Holds(prop.NDLeft) && a.Props.Holds(prop.Full)
}

// SupportsLocalOptima reports whether the algebra is known increasing —
// the requirement for path-vector convergence to locally optimal paths
// (§II).
func (a *Algebra) SupportsLocalOptima() bool { return a.Props.Holds(prop.ILeft) }

// Options configures inference.
type Options struct {
	// Fallback enables model checking for properties the rules leave
	// Unknown, on finitely enumerable structures.
	Fallback bool
	// Samples bounds sampled checks on infinite structures (0 disables
	// sampling).
	Samples int
	// Rand seeds sampled checks; required when Samples > 0.
	Rand *rand.Rand
}

// DefaultOptions enables fallback model checking with no sampling.
func DefaultOptions() Options { return Options{Fallback: true} }

// Infer parses nothing — it evaluates an already-parsed expression with
// DefaultOptions.
func Infer(e Expr) (*Algebra, error) { return InferWith(e, DefaultOptions()) }

// InferString parses and evaluates a source expression.
func InferString(src string) (*Algebra, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Infer(e)
}

// InferWith evaluates an expression: it builds the order transform
// bottom-up and derives each node's properties from its children's using
// the exact rules (Theorems 4–5 for ×lex, the §V rules for left, right
// and +; scoped and Δ are expanded into those operators, so Theorems 6–7
// emerge by composition). Properties the rules cannot decide are model
// checked when opt.Fallback is set and the structure is finite.
func InferWith(e Expr, opt Options) (*Algebra, error) {
	switch n := e.(type) {
	case BaseExpr:
		spec, ok := Registry[n.Name]
		if !ok {
			return nil, fmt.Errorf("core: unknown base algebra %q (known: %s)",
				n.Name, strings.Join(BaseNames(), ", "))
		}
		if len(n.Args) < spec.MinArgs || len(n.Args) > spec.MaxArgs {
			return nil, fmt.Errorf("core: %s: want %d..%d arguments, got %d (usage: %s)",
				n.Name, spec.MinArgs, spec.MaxArgs, len(n.Args), spec.Usage)
		}
		ot, err := spec.Build(n.Args)
		if err != nil {
			return nil, err
		}
		a := &Algebra{Expr: e, OT: ot, Props: seedProps(ot, opt)}
		finishNode(a, opt)
		return a, nil
	case OpExpr:
		kids := make([]*Algebra, len(n.Args))
		for i, arg := range n.Args {
			k, err := InferWith(arg, opt)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		var a *Algebra
		var err error
		switch n.Op {
		case OpLex:
			a = kids[0]
			for _, k := range kids[1:] {
				a = combineLex(a, k)
			}
		case OpLeft:
			a = applyLeft(kids[0])
		case OpRight:
			a = applyRight(kids[0])
		case OpAddTop:
			a = applyAddTop(kids[0])
		case OpPlus:
			a, err = combinePlus(kids[0], kids[1], opt)
		case OpUnion:
			a, err = combineUnion(kids[0], kids[1])
		case OpScoped:
			// The two summands share their order by construction, so the
			// extensional order check is unnecessary (and would reject
			// infinite carriers it cannot compare).
			a = combineUnionUnchecked(combineLex(kids[0], applyLeft(kids[1])),
				combineLex(applyRight(kids[0]), kids[1]))
			a.OT.Name = "(" + kids[0].OT.Name + " ⊙ " + kids[1].OT.Name + ")"
		case OpDelta:
			a = combineUnionUnchecked(combineLex(kids[0], kids[1]),
				combineLex(applyRight(kids[0]), kids[1]))
			a.OT.Name = "(" + kids[0].OT.Name + " Δ " + kids[1].OT.Name + ")"
		default:
			err = fmt.Errorf("core: unknown operator %q", n.Op)
		}
		if err != nil {
			return nil, err
		}
		a.Expr = e
		a.Children = kids
		finishNode(a, opt)
		return a, nil
	default:
		return nil, fmt.Errorf("core: unknown expression node %T", e)
	}
}

// routingIDs are the properties the engine derives for every node.
var routingIDs = []prop.ID{prop.MLeft, prop.NLeft, prop.CLeft, prop.NDLeft, prop.ILeft, prop.SILeft, prop.TopFixed}

// seedProps initializes a base node's property set from the algebra's
// declared properties plus computed/sampled cardinality facts.
func seedProps(ot *ost.OrderTransform, opt Options) prop.Set {
	p := prop.Make()
	for _, id := range routingIDs {
		if j := ot.Props.Get(id); j.Status != prop.Unknown {
			p.Put(id, j)
		}
	}
	computeFacts(ot, p, opt)
	return p
}

// computeFacts fills in HasTop and the cardinality facts. Existential
// facts (≥2 elements, ≥2 classes, a strict pair) are established by
// witness: enumeration when finite, sampling otherwise — a sampled
// witness is still a proof.
// factEnumLimit bounds the carrier size for exhaustive fact enumeration;
// larger finite carriers fall back to the sampled-witness path (the
// enumeration is quadratic — a delay(65535,·) carrier would cost billions
// of comparisons).
const factEnumLimit = 2048

func computeFacts(ot *ost.OrderTransform, p prop.Set, opt Options) {
	car := ot.Ord.Car
	if car.Finite() && len(car.Elems) <= factEnumLimit {
		if _, ok := ot.Ord.Top(); ok {
			p.Derive(prop.HasTop, prop.True, "enumerated")
		} else {
			p.Derive(prop.HasTop, prop.False, "enumerated")
		}
		p.Derive(FactMultiElem, prop.FromBool(len(car.Elems) >= 2), "enumerated")
		multiClass, strictPair, full := prop.False, prop.False, prop.True
		for i, a := range car.Elems {
			for _, b := range car.Elems[i+1:] {
				if !ot.Ord.Equiv(a, b) {
					multiClass = prop.True
				}
				if ot.Ord.Lt(a, b) || ot.Ord.Lt(b, a) {
					strictPair = prop.True
				}
				if ot.Ord.Incomp(a, b) {
					full = prop.False
				}
			}
		}
		p.Derive(FactMultiClass, multiClass, "enumerated")
		p.Derive(FactStrictPair, strictPair, "enumerated")
		p.Derive(prop.Full, full, "enumerated")
		return
	}
	// Infinite carrier: HasTop as declared on the order; existential
	// facts by sampled witness.
	if j := ot.Ord.Props.Get(prop.HasTop); j.Status != prop.Unknown {
		p.Put(prop.HasTop, j)
	}
	if j := ot.Ord.Props.Get(prop.Full); j.Status != prop.Unknown {
		p.Put(prop.Full, j)
	}
	p.Derive(FactMultiElem, prop.True, "infinite carrier")
	if opt.Samples > 0 && opt.Rand != nil {
		for i := 0; i < opt.Samples; i++ {
			a, b := car.Draw(opt.Rand), car.Draw(opt.Rand)
			if !ot.Ord.Equiv(a, b) && p.Status(FactMultiClass) != prop.True {
				p.Derive(FactMultiClass, prop.True, "sampled witness")
			}
			if (ot.Ord.Lt(a, b) || ot.Ord.Lt(b, a)) && p.Status(FactStrictPair) != prop.True {
				p.Derive(FactStrictPair, prop.True, "sampled witness")
			}
			if p.Holds(FactMultiClass) && p.Holds(FactStrictPair) {
				break
			}
		}
	}
}

// finishNode runs fallback model checking for rule-undecided properties.
func finishNode(a *Algebra, opt Options) {
	if !opt.Fallback {
		return
	}
	for _, id := range routingIDs {
		if a.Props.Status(id) != prop.Unknown {
			continue
		}
		if !a.OT.Finite() && (opt.Samples == 0 || opt.Rand == nil) {
			continue
		}
		j := a.OT.Check(id, opt.Rand, opt.Samples)
		if j.Status != prop.Unknown {
			j.Rule = "fallback " + j.Rule
			a.Props.Put(id, j)
		}
	}
}

// st is shorthand for a child's property status.
func st(a *Algebra, id prop.ID) prop.Status { return a.Props.Status(id) }

// combineLex derives S ×lex T: the order transform via ost.Lex and the
// properties via the exact rules.
func combineLex(s, t *Algebra) *Algebra {
	p := prop.Make()
	// Theorem 4: M(S×T) ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T)).
	p.Derive(prop.MLeft,
		prop.And(prop.And(st(s, prop.MLeft), st(t, prop.MLeft)),
			prop.Or(st(s, prop.NLeft), st(t, prop.CLeft))),
		"Thm4: M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T))")
	// Theorem 5, with I read as SI (strictly increasing everywhere) —
	// the exemption-free form under which the rule is exact for order
	// transforms whose ⊤, if any, is an ordinary saturating weight.
	// When neither operand has a ⊤ the paper-literal statement
	// (ND(S×T) ⟺ I(S)∨(ND(S)∧ND(T))) is recovered verbatim, since SI = I
	// in the absence of a top.
	siProd := prop.Or(st(s, prop.SILeft), prop.And(st(s, prop.NDLeft), st(t, prop.SILeft)))
	p.Derive(prop.SILeft, siProd, "Thm5: SI(S×T) ⟺ SI(S)∨(ND(S)∧SI(T))")
	p.Derive(prop.NDLeft,
		prop.Or(st(s, prop.SILeft), prop.And(st(s, prop.NDLeft), st(t, prop.NDLeft))),
		"Thm5: ND(S×T) ⟺ SI(S)∨(ND(S)∧ND(T))")
	// I (with the ⊤ exemption) depends on where the product's ⊤ comes
	// from. When both operands have tops, the product top is the pair of
	// tops and the exemption only covers it, so every non-top pair —
	// including pairs whose first component is ⊤_S — must strictly
	// increase: I(S×T) ⟺ I(S) ∧ T(S) ∧ I(T). When the product has no
	// top, I coincides with SI.
	hs, ht := st(s, prop.HasTop), st(t, prop.HasTop)
	prodTop := prop.And(hs, ht)
	var iProd prop.Status
	iRule := "Thm5(I): topless product ⇒ I = SI"
	switch {
	case prodTop == prop.True:
		iProd = prop.And(st(s, prop.ILeft), prop.And(st(s, prop.TopFixed), st(t, prop.ILeft)))
		iRule = "Thm5(I): both tops ⇒ I(S×T) ⟺ I(S)∧T(S)∧I(T)"
	case prodTop == prop.False:
		iProd = siProd
	default:
		iProd = prop.Unknown
		if siProd == prop.True {
			iProd = prop.True // SI ⇒ I regardless of tops.
			iRule = "SI ⇒ I"
		}
	}
	p.Derive(prop.ILeft, iProd, iRule)
	// Componentwise lemmas (validated by TestLexComponentwiseLemmas):
	// lex equivalence is componentwise, so N, C and T distribute.
	p.Derive(prop.NLeft, prop.And(st(s, prop.NLeft), st(t, prop.NLeft)),
		"lemma: N(S×T) ⟺ N(S)∧N(T)")
	p.Derive(prop.CLeft, prop.And(st(s, prop.CLeft), st(t, prop.CLeft)),
		"lemma: C(S×T) ⟺ C(S)∧C(T)")
	hasTop := prop.And(st(s, prop.HasTop), st(t, prop.HasTop))
	p.Derive(prop.HasTop, hasTop, "lex tops pair up")
	p.Derive(prop.TopFixed, prop.And(hasTop, prop.And(st(s, prop.TopFixed), st(t, prop.TopFixed))),
		"lemma: T(S×T) ⟺ ⊤ exists ∧ T(S)∧T(T)")
	// Cardinality facts combine disjunctively; fullness conjunctively
	// (the lex product of full preorders is full, and an incomparable
	// pair in either factor lifts to the product).
	p.Derive(FactMultiElem, prop.Or(st(s, FactMultiElem), st(t, FactMultiElem)), "product")
	p.Derive(FactMultiClass, prop.Or(st(s, FactMultiClass), st(t, FactMultiClass)), "product")
	p.Derive(FactStrictPair, prop.Or(st(s, FactStrictPair), st(t, FactStrictPair)), "product")
	p.Derive(prop.Full, prop.And(st(s, prop.Full), st(t, prop.Full)), "lex of full orders is full")
	return &Algebra{OT: ost.Lex(s.OT, t.OT), Props: p}
}

// applyLeft derives left(S) (§V): constants are monotone and condensed;
// N fails exactly when S has a strict pair; ND and I fail exactly when S
// has more than one equivalence class; T requires a one-element carrier.
func applyLeft(s *Algebra) *Algebra {
	p := prop.Make()
	p.Derive(prop.MLeft, prop.True, "left: constants are monotone")
	p.Derive(prop.CLeft, prop.True, "left: constants are condensed")
	p.Derive(prop.NLeft, prop.Not(st(s, FactStrictPair)), "left: N ⟺ no strict pair")
	p.Derive(prop.NDLeft, prop.Not(st(s, FactMultiClass)), "left: ND ⟺ single class")
	p.Derive(prop.ILeft, prop.Not(st(s, FactMultiClass)), "left: I ⟺ single class")
	p.Derive(prop.SILeft, prop.False, "left: κ_a(a) = a never strictly increases")
	p.Derive(prop.TopFixed,
		prop.And(st(s, prop.HasTop), prop.Not(st(s, FactMultiClass))),
		"left: T ⟺ single class with ⊤ (κ_b(⊤) ~ ⊤ for all b)")
	copyFacts(s, p)
	return &Algebra{OT: ost.Left(s.OT), Props: p}
}

// applyRight derives right(S) (§V): the identity is monotone,
// cancellative and nondecreasing; I and C hold exactly when the order is
// a single equivalence class; T holds exactly when ⊤ exists.
func applyRight(s *Algebra) *Algebra {
	p := prop.Make()
	p.Derive(prop.MLeft, prop.True, "right: id is monotone")
	p.Derive(prop.NLeft, prop.True, "right: id is cancellative")
	p.Derive(prop.NDLeft, prop.True, "right: a ≲ id(a)")
	p.Derive(prop.ILeft, prop.Not(st(s, FactMultiClass)), "right: I ⟺ single class")
	p.Derive(prop.SILeft, prop.False, "right: id never strictly increases")
	p.Derive(prop.CLeft, prop.Not(st(s, FactMultiClass)), "right: C ⟺ single class")
	p.Derive(prop.TopFixed, st(s, prop.HasTop), "right: id fixes ⊤ when it exists")
	copyFacts(s, p)
	return &Algebra{OT: ost.Right(s.OT), Props: p}
}

// applyAddTop derives addtop(S): the fresh ⊤ is fixed by construction;
// M, N and ND restrict to S; C dies (⊤ is separated from everything);
// I is only derivable when S had no ⊤ — otherwise the old top class must
// now strictly increase, which the rules cannot see, so it is left
// Unknown for fallback checking.
func applyAddTop(s *Algebra) *Algebra {
	p := prop.Make()
	p.Derive(prop.MLeft, st(s, prop.MLeft), "addtop preserves M")
	p.Derive(prop.NLeft, st(s, prop.NLeft), "addtop preserves N")
	p.Derive(prop.NDLeft, st(s, prop.NDLeft), "addtop preserves ND")
	p.Derive(prop.CLeft, prop.False, "addtop: ⊤ is separated from S")
	p.Derive(prop.TopFixed, prop.True, "addtop: ⊤ fixed by construction")
	p.Derive(prop.HasTop, prop.True, "addtop")
	// Every old element must now strictly increase (none is equivalent to
	// the fresh ⊤), so I(addtop(S)) is exactly SI(S); and the fresh ⊤
	// itself never strictly increases, so SI dies.
	p.Derive(prop.ILeft, st(s, prop.SILeft), "addtop: I(addtop(S)) ⟺ SI(S)")
	p.Derive(prop.SILeft, prop.False, "addtop: ⊤ does not strictly increase")
	p.Derive(FactMultiElem, prop.True, "addtop adds an element")
	p.Derive(FactMultiClass, prop.True, "addtop: ⊤ is a new class")
	p.Derive(FactStrictPair, prop.True, "addtop: a < ⊤")
	p.Derive(prop.Full, st(s, prop.Full), "addtop: ⊤ is comparable to everything")
	return &Algebra{OT: ost.AddTop(s.OT), Props: p}
}

// combinePlus derives the additive composite S ⊞ T (§VI discussion).
// Only Gouda & Schneider's *sufficient* condition is known:
// ND(S) ∧ ND(T) ⇒ ND(S⊞T) — the paper explicitly leaves exact criteria
// open, so everything else goes to fallback model checking. Both
// operands must have finite int carriers.
func combinePlus(s, t *Algebra, opt Options) (*Algebra, error) {
	for _, k := range []*Algebra{s, t} {
		if !k.OT.Carrier().Finite() {
			return nil, fmt.Errorf("core: plus requires finite carriers (%s is not)", k.OT.Name)
		}
		for _, e := range k.OT.Carrier().Elems {
			if _, ok := e.(int); !ok {
				return nil, fmt.Errorf("core: plus requires int carriers (%s is not)", k.OT.Name)
			}
		}
	}
	ot := ost.AdditiveComposite(s.OT, t.OT, 1, 1)
	p := prop.Make()
	if prop.And(st(s, prop.NDLeft), st(t, prop.NDLeft)) == prop.True {
		p.Derive(prop.NDLeft, prop.True, "Gouda–Schneider: ND(S)∧ND(T) ⇒ ND(S⊞T) (sufficient only)")
	}
	computeFacts(ot, p, opt)
	return &Algebra{OT: ot, Props: p}, nil
}

// combineUnion derives S + T (§V): P(S+T) ⟺ P(S) ∧ P(T) for every
// universally quantified routing property. The operands must share their
// weight order; this is checked extensionally for finite carriers.
func combineUnion(s, t *Algebra) (*Algebra, error) {
	if err := sameOrder(s.OT, t.OT); err != nil {
		return nil, err
	}
	return combineUnionUnchecked(s, t), nil
}

// combineUnionUnchecked is combineUnion for operands known by
// construction to share their order (the scoped/Δ expansions).
func combineUnionUnchecked(s, t *Algebra) *Algebra {
	p := prop.Make()
	for _, id := range routingIDs {
		p.Derive(id, prop.And(st(s, id), st(t, id)), "union: P(S+T) ⟺ P(S)∧P(T)")
	}
	p.Derive(prop.HasTop, st(s, prop.HasTop), "union shares the order")
	copyFacts(s, p)
	return &Algebra{OT: ost.Union(s.OT, t.OT), Props: p}
}

// copyFacts copies the cardinality facts of s into p (operators that keep
// the carrier and order unchanged).
func copyFacts(s *Algebra, p prop.Set) {
	for _, id := range []prop.ID{FactMultiElem, FactMultiClass, FactStrictPair, prop.Full} {
		if j := s.Props.Get(id); j.Status != prop.Unknown {
			p.Put(id, j)
		}
	}
	if _, ok := p[prop.HasTop]; !ok {
		if j := s.Props.Get(prop.HasTop); j.Status != prop.Unknown {
			p.Put(prop.HasTop, j)
		}
	}
}

// sameOrder verifies that two order transforms share their weight order,
// as the disjoint function union requires. Identical pointers always
// pass; finite carriers are compared extensionally; anything else fails.
func sameOrder(a, b *ost.OrderTransform) error {
	if a.Ord == b.Ord {
		return nil
	}
	ca, cb := a.Ord.Car, b.Ord.Car
	if !ca.Finite() || !cb.Finite() || len(ca.Elems) != len(cb.Elems) {
		return fmt.Errorf("core: union operands %s and %s do not share a carrier", a.Name, b.Name)
	}
	for _, x := range ca.Elems {
		if !cb.Contains(x) {
			return fmt.Errorf("core: union operands %s and %s have different carriers (%s only in the first)",
				a.Name, b.Name, fmt.Sprint(x))
		}
	}
	for _, x := range ca.Elems {
		for _, y := range ca.Elems {
			if a.Ord.Leq(x, y) != b.Ord.Leq(x, y) {
				return fmt.Errorf("core: union operands %s and %s order %v, %v differently",
					a.Name, b.Name, x, y)
			}
		}
	}
	return nil
}
