package core

import (
	"fmt"
	"strings"

	"metarouting/internal/prop"
)

// Report renders the inferred algebra as a property report: a header with
// the algorithmic verdict, then one line per property with its provenance,
// then the children indented — the metarouting analogue of a type-checker
// trace.
func (a *Algebra) Report() string {
	var b strings.Builder
	a.report(&b, 0)
	return b.String()
}

func (a *Algebra) report(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	label := a.OT.Name
	if a.Expr != nil {
		label = a.Expr.String()
	}
	fmt.Fprintf(b, "%s%s\n", indent, label)
	if depth == 0 {
		fmt.Fprintf(b, "%s  global optima (monotone):   %v\n", indent, a.SupportsGlobalOptima())
		fmt.Fprintf(b, "%s  local optima (increasing):  %v\n", indent, a.SupportsLocalOptima())
		fmt.Fprintf(b, "%s  Dijkstra applicable (M∧ND∧total): %v\n", indent, a.SupportsDijkstra())
	}
	for _, id := range routingIDs {
		j := a.Props.Get(id)
		if j.Status == prop.Unknown {
			fmt.Fprintf(b, "%s  %-3s unknown\n", indent, id)
			continue
		}
		fmt.Fprintf(b, "%s  %-3s %s\n", indent, id, j)
	}
	for _, c := range a.Children {
		c.report(b, depth+1)
	}
}

// Verdict summarizes in one line which optima the algebra supports.
func (a *Algebra) Verdict() string {
	switch {
	case a.SupportsGlobalOptima() && a.SupportsLocalOptima():
		return "global and local optima computable (M ∧ I)"
	case a.SupportsGlobalOptima():
		return "global optima computable (M); path-vector convergence not guaranteed (¬I)"
	case a.SupportsLocalOptima():
		return "local optima computable (I); global optimality not guaranteed (¬M)"
	default:
		return "neither M nor I established — no optimality guarantee"
	}
}
