package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metarouting/internal/prop"
)

func TestSimplifyRewrites(t *testing.T) {
	cases := []struct{ in, want string }{
		{"lex(lex(bw(4), delay(4,1)), origin(2))", "lex(bw(4), delay(4,1), origin(2))"},
		{"lex(bw(4), lex(delay(4,1), origin(2)))", "lex(bw(4), delay(4,1), origin(2))"},
		{"lex(unit, bw(4), unit)", "bw(4)"},
		{"lex(unit, unit)", "unit"},
		{"left(left(delay(3,1)))", "left(delay(3,1))"},
		{"left(right(delay(3,1)))", "left(delay(3,1))"},
		{"right(right(delay(3,1)))", "right(delay(3,1))"},
		{"right(left(delay(3,1)))", "right(delay(3,1))"},
		{"addtop(addtop(tags(2)))", "addtop(tags(2))"},
		{"scoped(bw(4), delay(4,1))", "scoped(bw(4), delay(4,1))"}, // untouched
		{"scoped(lex(lex(lp(2), hops(4)), bw(4)), delay(4,1))",
			"scoped(lex(lp(2), hops(4), bw(4)), delay(4,1))"}, // rewrites under operators
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestSimplifyPreservesProperties fuzzes the key contract: simplification
// never changes any inferred routing property.
func TestSimplifyPreservesProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 3)
		before, err1 := Infer(e)
		after, err2 := Infer(Simplify(e))
		if err1 != nil || err2 != nil {
			return (err1 != nil) == (err2 != nil)
		}
		for _, id := range routingIDs {
			b, a := before.Props.Status(id), after.Props.Status(id)
			if b != prop.Unknown && a != prop.Unknown && b != a {
				t.Logf("%s → %s: %s changed %v → %v", e, Simplify(e), id, b, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifyIdempotent: Simplify(Simplify(e)) = Simplify(e).
func TestSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := Simplify(randExpr(r, 3))
		return Simplify(e).String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddTopIdempotentCarrier(t *testing.T) {
	a := infer(t, "addtop(addtop(tags(2)))")
	b := infer(t, "addtop(tags(2))")
	if a.OT.Carrier().Size() != b.OT.Carrier().Size() {
		t.Fatalf("double addtop must not duplicate ⊤: %d vs %d",
			a.OT.Carrier().Size(), b.OT.Carrier().Size())
	}
}
