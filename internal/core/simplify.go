package core

// Simplify rewrites an expression using property-preserving algebraic
// identities of the metarouting operators:
//
//	lex(a)                     → a
//	lex(a, lex(b, c), d)       → lex(a, b, c, d)     (×lex associativity)
//	lex(…, unit, …)            → lex without unit    (unit is the ×lex identity)
//	left(left(a))              → left(a)             (left depends only on the order)
//	left(right(a))             → left(a)
//	right(right(a))            → right(a)
//	right(left(a))             → right(a)
//	addtop(addtop(a))          → addtop(a)           (⊤ adjunction is idempotent)
//
// The result denotes an isomorphic algebra with identical inferred
// properties (TestSimplifyPreservesProperties fuzzes this).
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case BaseExpr:
		return n
	case OpExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Simplify(a)
		}
		switch n.Op {
		case OpLex:
			var flat []Expr
			for _, a := range args {
				if inner, ok := a.(OpExpr); ok && inner.Op == OpLex {
					flat = append(flat, inner.Args...)
					continue
				}
				flat = append(flat, a)
			}
			var kept []Expr
			for _, a := range flat {
				if b, ok := a.(BaseExpr); ok && b.Name == "unit" {
					continue
				}
				kept = append(kept, a)
			}
			switch len(kept) {
			case 0:
				return Base("unit")
			case 1:
				return kept[0]
			default:
				return OpExpr{Op: OpLex, Args: kept}
			}
		case OpLeft:
			if inner, ok := args[0].(OpExpr); ok && (inner.Op == OpLeft || inner.Op == OpRight) {
				return OpExpr{Op: OpLeft, Args: inner.Args}
			}
		case OpRight:
			if inner, ok := args[0].(OpExpr); ok && (inner.Op == OpLeft || inner.Op == OpRight) {
				return OpExpr{Op: OpRight, Args: inner.Args}
			}
		case OpAddTop:
			if inner, ok := args[0].(OpExpr); ok && inner.Op == OpAddTop {
				return inner
			}
		}
		return OpExpr{Op: n.Op, Args: args}
	default:
		return e
	}
}
