// Package sched is a small fixed-size worker pool with per-worker
// reusable state — the scheduling substrate under the serve snapshot
// builder. Each worker goroutine owns one state value (there, a
// *solve.Workspace) for its whole lifetime, so scratch buffers are
// reused across tasks without synchronization or pooling churn.
//
// The pool deliberately stays dumb: no priorities, no work stealing
// beyond a shared atomic index, no dynamic sizing. The metarouting
// workload it exists for — per-destination DBF solves, which are
// independent of each other (Daggitt & Griffin, PAPERS.md) — is
// embarrassingly parallel and uniform enough that a claim-next-index
// loop is within noise of anything fancier, and the simple shape keeps
// the cancellation and error semantics easy to state exactly.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when callers pass ≤ 0:
// GOMAXPROCS, the number of solver goroutines the runtime will actually
// run in parallel.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool is a fixed set of worker goroutines, each owning one reusable
// state value of type S. Submit and Map are safe for concurrent use;
// Close must be called exactly once, after all submitters are done.
type Pool[S any] struct {
	workers int
	tasks   chan func(S)
	wg      sync.WaitGroup
	depth   atomic.Int64
}

// New starts a pool of workers goroutines (≤ 0: DefaultWorkers), each
// owning one state value passed to every task it runs. newState runs
// synchronously in New, once per worker, so callers may finish wiring
// shared sinks the states capture before any task executes.
func New[S any](workers int, newState func() S) *Pool[S] {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool[S]{workers: workers, tasks: make(chan func(S))}
	for i := 0; i < workers; i++ {
		state := newState()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn(state)
				p.depth.Add(-1)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool[S]) Workers() int { return p.workers }

// Depth returns the number of tasks submitted but not yet finished
// (queued or running) — the pool's backlog gauge reading.
func (p *Pool[S]) Depth() int { return int(p.depth.Load()) }

// Submit hands fn to a worker, blocking until one accepts it. fn must
// return; a task that never returns wedges one worker forever.
func (p *Pool[S]) Submit(fn func(S)) {
	p.depth.Add(1)
	p.tasks <- fn
}

// Map runs fn(i, state) for every i in [0, n), sharding the index space
// across the workers via a shared claim counter, and blocks until every
// claimed index has finished. The first non-nil error stops further
// claims and is returned; indices already claimed still complete. When
// ctx is canceled, unclaimed indices are abandoned and Map returns
// ctx.Err() — results for completed indices are whatever fn wrote, so
// callers must treat the whole result set as invalid on error.
//
// fn runs on at most min(workers, n) workers concurrently; it must not
// call Submit, Map or Close on the same pool (the runner tasks occupy
// workers until Map returns, so a nested call can deadlock).
func (p *Pool[S]) Map(ctx context.Context, n int, fn func(i int, state S) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		runners  sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
	}
	bail := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	width := p.workers
	if width > n {
		width = n
	}
	for r := 0; r < width; r++ {
		runners.Add(1)
		p.Submit(func(state S) {
			defer runners.Done()
			for {
				if err := ctx.Err(); err != nil {
					setErr(err)
					return
				}
				if bail() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i, state); err != nil {
					setErr(err)
					return
				}
			}
		})
	}
	runners.Wait()
	return firstErr
}

// Close shuts the task channel and waits for the workers to drain. No
// Submit or Map may be in flight or issued afterwards.
func (p *Pool[S]) Close() {
	close(p.tasks)
	p.wg.Wait()
}
