package sched_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"metarouting/internal/sched"
)

// TestMapCoversEveryIndex: Map must call fn exactly once per index,
// with per-worker state values that never cross goroutines.
func TestMapCoversEveryIndex(t *testing.T) {
	var states atomic.Int64
	p := sched.New(3, func() *int64 {
		states.Add(1)
		v := new(int64)
		return v
	})
	defer p.Close()

	const n = 100
	var hits [n]atomic.Int64
	err := p.Map(context.Background(), n, func(i int, state *int64) error {
		*state++ // races iff two workers share a state value
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
	if got := states.Load(); got != 3 {
		t.Fatalf("newState called %d times, want once per worker (3)", got)
	}
	if err := p.Map(context.Background(), 0, func(int, *int64) error { return nil }); err != nil {
		t.Fatalf("empty Map: %v", err)
	}
}

// TestMapFirstErrorWins: an fn error stops further claims and surfaces.
func TestMapFirstErrorWins(t *testing.T) {
	p := sched.New(2, func() struct{} { return struct{}{} })
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int64
	err := p.Map(context.Background(), 1000, func(i int, _ struct{}) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("error must stop further claims; ran all %d", got)
	}
}

// TestMapCanceledContext: a pre-canceled context runs nothing and
// reports ctx.Err(); cancellation mid-run stops the claim loop.
func TestMapCanceledContext(t *testing.T) {
	p := sched.New(2, func() struct{} { return struct{}{} })
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.Map(ctx, 50, func(int, struct{}) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-canceled ctx must run nothing, ran %d", got)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	var ran2 atomic.Int64
	err = p.Map(ctx2, 10_000, func(i int, _ struct{}) error {
		if ran2.Add(1) == 5 {
			cancel2()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ran2.Load(); got >= 10_000 {
		t.Fatal("cancellation must abandon unclaimed indices")
	}
}

// TestSubmitAndDepth: Submit runs tasks and the backlog gauge returns
// to zero once they drain.
func TestSubmitAndDepth(t *testing.T) {
	p := sched.New(1, func() struct{} { return struct{}{} })
	var done sync.WaitGroup
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		done.Add(1)
		p.Submit(func(struct{}) {
			defer done.Done()
			ran.Add(1)
		})
	}
	done.Wait()
	p.Close() // waits for the workers, so Depth is settled after this
	if got := ran.Load(); got != 8 {
		t.Fatalf("ran %d tasks, want 8", got)
	}
	if got := p.Depth(); got != 0 {
		t.Fatalf("drained pool depth = %d, want 0", got)
	}
}

// TestConcurrentMaps: overlapping Map calls from several goroutines
// share the pool without deadlock or cross-talk.
func TestConcurrentMaps(t *testing.T) {
	p := sched.New(4, func() struct{} { return struct{}{} })
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			if err := p.Map(context.Background(), 200, func(i int, _ struct{}) error {
				sum.Add(int64(i))
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if got := sum.Load(); got != 199*200/2 {
				t.Errorf("sum = %d, want %d", got, 199*200/2)
			}
		}()
	}
	wg.Wait()
}

// TestMapCancelMidShard models the parallel simulator's cancellation
// path: workers are mid-task (a shard half-delivered) when the context
// dies. Map must wait for in-flight tasks, return ctx.Err(), and leave
// the pool fully reusable for the next simulation window.
func TestMapCancelMidShard(t *testing.T) {
	p := sched.New(2, func() struct{} { return struct{}{} })
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started, finished atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Map(ctx, 64, func(i int, _ struct{}) error {
			if started.Add(1) <= 2 {
				<-release // both workers block mid-shard
			}
			finished.Add(1)
			return nil
		})
	}()
	for started.Load() < 2 {
	}
	cancel()
	close(release)
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := finished.Load(); got >= 64 {
		t.Fatal("cancellation mid-shard must abandon unclaimed shards")
	}
	if got, want := finished.Load(), started.Load(); got != want {
		t.Fatalf("in-flight shards must complete before Map returns: finished %d of %d started", got, want)
	}

	// The same pool serves the next window as if nothing happened.
	var hits atomic.Int64
	if err := p.Map(context.Background(), 32, func(int, struct{}) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("pool not reusable after cancellation: %v", err)
	}
	if got := hits.Load(); got != 32 {
		t.Fatalf("post-cancel Map ran %d of 32 indices", got)
	}
}

// TestSubmitDuringMap: fire-and-forget Submits interleave with an
// active Map on the same pool — the two entry points share workers
// without starving each other (Map's doc forbids only *nested* Maps).
func TestSubmitDuringMap(t *testing.T) {
	p := sched.New(3, func() struct{} { return struct{}{} })
	defer p.Close()
	var submitted atomic.Int64
	var wg sync.WaitGroup
	err := p.Map(context.Background(), 50, func(i int, _ struct{}) error {
		if i%10 == 0 {
			wg.Add(1)
			go p.Submit(func(struct{}) {
				defer wg.Done()
				submitted.Add(1)
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := submitted.Load(); got != 5 {
		t.Fatalf("submitted tasks ran %d times, want 5", got)
	}
}

// TestConcurrentMapsWithCancellation: several goroutines share one pool
// and one of them is canceled mid-run — the others must finish
// untouched. This is the corpus runner's shape: many simulations, one
// pool, independent lifetimes.
func TestConcurrentMapsWithCancellation(t *testing.T) {
	p := sched.New(4, func() struct{} { return struct{}{} })
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	results := make([]error, 5)
	counts := make([]atomic.Int64, 5)
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := context.Background()
			if g == 0 {
				c = ctx
			}
			results[g] = p.Map(c, 500, func(i int, _ struct{}) error {
				if g == 0 && counts[g].Add(1) == 3 {
					cancel()
					return c.Err()
				}
				counts[g].Add(0)
				if g != 0 {
					counts[g].Add(1)
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	if !errors.Is(results[0], context.Canceled) {
		t.Fatalf("canceled map: want context.Canceled, got %v", results[0])
	}
	for g := 1; g < 5; g++ {
		if results[g] != nil {
			t.Fatalf("map %d: unexpected error %v", g, results[g])
		}
		if got := counts[g].Load(); got != 500 {
			t.Fatalf("map %d ran %d of 500 indices", g, got)
		}
	}
}
