package expt

import (
	"math/rand"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/fn"
	"metarouting/internal/gen"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/quadrant"
	"metarouting/internal/sg"
	"metarouting/internal/sgt"
	"metarouting/internal/value"
)

// QuadrantsTable regenerates Fig 1: the quadrants model, with this
// library's representative instance and key properties for each quadrant.
func QuadrantsTable() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Fig 1: the quadrants model of algebraic routing",
		Header: []string{"computation \\ summarization", "algebraic (⊕)", "ordered (≲)"},
	}
	t.AddRow("algebraic (⊗)",
		"bisemigroups — e.g. "+baselib.MinPlus(8).Name,
		"order semigroups — e.g. "+baselib.ShortestPathOSG(8).Name)
	t.AddRow("functional (F)",
		"semigroup transforms — e.g. "+baselib.BoundedDistSGT(8).Name,
		"order transforms — e.g. "+baselib.Delay(8, 2).Name)
	t.Notes = append(t.Notes,
		"translations implemented: Cayley (⊗→F), NOᴸ/NOᴿ (⊕→≲), min-set map (≲→⊕ over antichains)")

	// Exercise each translation once so the table reflects working code.
	b := baselib.MinPlus(6)
	tr := quadrant.Cayley(b)
	st, _ := tr.CheckM(nil, 0)
	t.AddRow("Cayley(min-plus) homomorphic", st, "")
	o := quadrant.NOL(b)
	st, _ = o.CheckM(true, nil, 0)
	t.AddRow("NOᴸ(min-plus) monotone", st, "")
	reg := quadrant.NewSetRegistry()
	ms := quadrant.MinSetTransform(baselib.Delay(3, 1), reg)
	st, _ = ms.CheckM(nil, 0)
	t.AddRow("min-set(delay) homomorphic", st, "")
	return t
}

// BandwidthDelayLex regenerates §III's motivating example:
// M((ℕ,≤,+) ×lex (ℕ,≥,min)) and ¬M((ℕ,≥,min) ×lex (ℕ,≤,+)), via the
// inference engine on the unbounded algebras and the model checker on
// bounded truncations.
func BandwidthDelayLex() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "§III example: lex of delay and bandwidth — who is monotone, and why",
		Header: []string{"algebra", "M", "decided by", "witness / reason"},
		Notes: []string{
			"delay(0,·) is the unbounded (ℕ,≤,+): cancellative, so it can guard anything",
			"bw is (ℕ,≥,min): not cancellative (N fails at the bottleneck), so it cannot guard a non-condensed tail",
		},
	}
	rows := []string{
		"lex(delay(0,3), bw(8))",
		"lex(bw(8), delay(0,3))",
		"lex(delay(8,3), bw(8))",
		"lex(bw(8), delay(8,3))",
	}
	for _, src := range rows {
		a, err := core.InferString(src)
		if err != nil {
			t.AddRow(src, "error", err.Error(), "")
			continue
		}
		j := a.Props.Get(prop.MLeft)
		reason := j.Witness
		if reason == "" {
			reason = "components: " + a.Children[0].Props.Summary()
		}
		t.AddRow(src, j.Status, j.Rule, reason)
	}
	// Model-check the bounded variants to confirm the derivations.
	for _, src := range []string{"lex(bw(8), delay(8,3))", "lex(delay(8,3), bw(8))"} {
		a, _ := core.InferString(src)
		st, w := a.OT.CheckM(nil, 0)
		t.AddRow("model check "+src, st, "exhaustive", w)
	}
	return t
}

// PolicyPartitionValidation regenerates §V / Theorems 6–7: the scoped
// product ⊙ and the OSPF-like Δ, both as named instances (the
// bandwidth-delay headline) and as random sweeps of the M
// characterizations M(S⊙T) ⟺ M∧M versus M(SΔT) ⟺ M∧M∧(N∨C).
func PolicyPartitionValidation(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "§V / Theorems 6–7: policy partitions ⊙ and Δ",
		Header: []string{"instance / sweep", "M", "ND", "I", "verdict"},
		Notes: []string{
			"headline: bandwidth ⊙ delay is monotone although bandwidth ×lex delay is not — local autonomy compatible with global optimality",
			"sweeps validate the M characterizations on random order transforms with ≥2 elements and ≥2 classes",
		},
	}
	for _, src := range []string{
		"lex(bw(6), delay(6,2))",
		"scoped(bw(6), delay(6,2))",
		"delta(bw(6), delay(6,2))",
		"scoped(delay(0,2), delay(0,2))",
		"scoped(origin(3), delay(6,2))",
		"delta(origin(3), delay(6,2))",
	} {
		a, err := core.InferString(src)
		if err != nil {
			t.AddRow(src, "error", err.Error(), "", "")
			continue
		}
		t.AddRow(src,
			a.Props.Status(prop.MLeft),
			a.Props.Status(prop.NDLeft),
			a.Props.Status(prop.ILeft),
			a.Verdict())
	}

	r := rand.New(rand.NewSource(seed))
	scopedT, deltaT := &tally{}, &tally{}
	for scopedT.trials < trials {
		s, u := randRichOT(r), randRichOT(r)
		sc := ost.Scoped(s, u)
		lhs, _ := sc.CheckM(nil, 0)
		ms, _ := s.CheckM(nil, 0)
		mt, _ := u.CheckM(nil, 0)
		scopedT.record(lhs, prop.And(ms, mt), func() string { return s.Ord.Name })

		dl := ost.Delta(s, u)
		lhsD, _ := dl.CheckM(nil, 0)
		n, _ := s.CheckN(nil, 0)
		c, _ := u.CheckC(nil, 0)
		deltaT.record(lhsD, prop.And(prop.And(ms, mt), prop.Or(n, c)), func() string { return s.Ord.Name })
	}
	t.AddRow("sweep: M(S⊙T) ⟺ M(S)∧M(T)", scopedT.agree, "/", scopedT.trials, verdict(scopedT.agree == scopedT.trials))
	t.AddRow("sweep: M(SΔT) ⟺ M∧M∧(N∨C)", deltaT.agree, "/", deltaT.trials, verdict(deltaT.agree == deltaT.trials))
	return t
}

// SzendreiBoundedMetrics regenerates §VI: the bounded algebra
// ({0..n}, min, {min(n, ·+y)}) necessarily fails N, and the Szendrei
// product ×ω restores usability as a first lexicographic component by
// collapsing ceiling-hitting weights to ω.
func SzendreiBoundedMetrics() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "§VI: Szendrei ×ω and bounded metrics",
		Header: []string{"structure", "property", "status", "witness"},
	}
	bd := baselib.BoundedDistSGT(6)
	stN, w := bd.CheckN(nil, 0)
	t.AddRow(bd.Name, "N", stN, w)
	stM, _ := bd.CheckM(nil, 0)
	t.AddRow(bd.Name, "M (homomorphism)", stM, "")

	// Build the ×ω product of the bounded min semigroup with a max monoid
	// and verify ω absorbs and the carrier excludes ceiling pairs.
	min := baselib.MinSG(6)
	max := baselib.MaxSG(6)
	z, err := sg.SzendreiLex(min, max)
	if err != nil {
		t.AddRow("×ω", "construction", "error", err.Error())
		return t
	}
	if wv, ok := z.Absorber(); ok {
		t.AddRow(z.Name, "absorber", "ω", value.Format(wv))
	}
	z.CheckAll(nil, 0)
	t.AddRow(z.Name, "associative", z.Props.Status(prop.Associative), "")
	t.AddRow(z.Name, "commutative", z.Props.Status(prop.Commutative), "")
	t.AddRow(z.Name, "idempotent", z.Props.Status(prop.Idempotent), "")
	excluded := true
	for _, e := range z.Car.Elems {
		if p, ok := e.(value.Pair); ok && p.A == 0 {
			excluded = false
		}
	}
	t.AddRow(z.Name, "carrier excludes ω_S pairs", verdict(excluded), "")

	// The ×lex/×ω relationship the paper leaves open, explored at the
	// transform level (collapse when a function hits the ceiling):
	// Szendrei-literal absorbing ω does NOT restore the homomorphism
	// property M, but the discard variant (ω as ⊕-identity) does.
	bdT := baselib.BoundedDistSGT(4)
	maxT := sgt.New("T", baselib.MaxSG(3), fn.NewFinite("G", []fn.Fn{fn.Identity()}))
	if lexT, err := sgt.Lex(bdT, maxT); err == nil {
		st, w := lexT.CheckM(nil, 0)
		t.AddRow("bd ×lex T", "M", st, w)
	}
	if abs, err := sgt.SzendreiLex(bdT, maxT, 4); err == nil {
		st, w := abs.CheckM(nil, 0)
		t.AddRow("bd ×ω T (ω absorbing)", "M", st, w)
	}
	if dis, err := sgt.SzendreiLexDiscard(bdT, maxT, 4); err == nil {
		st, _ := dis.CheckM(nil, 0)
		t.AddRow("bd ×ω T (ω discarded)", "M", st, "ω-collapsed routes are dropped from summarization")
	}
	t.Notes = append(t.Notes,
		"exploration of the open ×lex/×ω relationship: only the discard reading of ω restores M — see EXPERIMENTS.md finding 4")
	return t
}

// ReductionLaws regenerates §VI's Wongseelashote reductions: min is a
// reduction on (ℕ,+); a naive filter is not.
func ReductionLaws(seed int64) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "§VI: Wongseelashote reductions",
		Header: []string{"candidate", "semigroup", "laws 1–3", "detail"},
	}
	r := rand.New(rand.NewSource(seed))
	plus := baselib.PlusSatSG(15)
	p := baselib.ShortestPathOSG(15).Ord
	if msg := quadrant.CheckReductionLaws(quadrant.MinReduction(p), plus, r, 400, 5); msg == "" {
		t.AddRow("min≲", plus.Name, "hold", "min-set-map is a reduction")
	} else {
		t.AddRow("min≲", plus.Name, "VIOLATED", msg)
	}
	evens := quadrant.Reduction{Name: "evens", Apply: func(a []value.V) []value.V {
		var out []value.V
		for _, v := range a {
			if v.(int)%2 == 0 {
				out = append(out, v)
			}
		}
		return out
	}}
	if msg := quadrant.CheckReductionLaws(evens, plus, r, 400, 5); msg != "" {
		t.AddRow("evens filter", plus.Name, "violated (expected)", msg)
	} else {
		t.AddRow("evens filter", plus.Name, "UNEXPECTEDLY HOLD", "")
	}
	return t
}

// randRichOT draws a random order transform guaranteed to have ≥2
// elements and ≥2 equivalence classes, as Theorems 6–7 require.
func randRichOT(r *rand.Rand) *ost.OrderTransform {
	for {
		n := 2 + r.Intn(3)
		o := gen.Preorder(r, n)
		multiClass := false
		for i, a := range o.Car.Elems {
			for _, b := range o.Car.Elems[i+1:] {
				if !o.Equiv(a, b) {
					multiClass = true
				}
			}
		}
		if !multiClass {
			continue
		}
		return ost.New("rnd", o, gen.FnSet(r, n, 1+r.Intn(3)))
	}
}
