package expt

import (
	"fmt"

	"metarouting/internal/core"
	"metarouting/internal/prop"
)

// LanguageMatrix regenerates the language-summary view of the original
// metarouting paper: for every ordered pair of base algebras and every
// binary partition operator, which algorithmic guarantees the derived
// properties yield. It reports, per operator, how many pairs are
// monotone (global optima), increasing (local optima), both, or neither
// — and lists the both-winners, the combinations a network operator
// could deploy with full guarantees.
func LanguageMatrix(seed int64) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "language coverage: guarantees by operator over the base-algebra pairs",
		Header: []string{"operator", "pairs", "M (global)", "I (local)", "M∧I (both)", "neither"},
		Notes: []string{
			"bases: delay∞ delay≤16 bw rel lp origin tags — 49 ordered pairs per operator",
			"every verdict is rule-derived (with model-check fallback on finite structures)",
		},
	}
	bases := []string{
		"delay(0,3)", "delay(16,3)", "bw(8)", "rel(6)", "lp(4)", "origin(3)", "tags(2)",
	}
	type op struct{ name, format string }
	ops := []op{
		{"lex", "lex(%s, %s)"},
		{"scoped", "scoped(%s, %s)"},
		{"delta", "delta(%s, %s)"},
	}
	var winners []string
	for _, o := range ops {
		var m, i, both, neither, pairs int
		for _, s := range bases {
			for _, u := range bases {
				src := fmt.Sprintf(o.format, s, u)
				a, err := core.InferString(src)
				if err != nil {
					continue
				}
				pairs++
				hasM := a.Props.Holds(prop.MLeft)
				hasI := a.Props.Holds(prop.ILeft)
				if hasM {
					m++
				}
				if hasI {
					i++
				}
				switch {
				case hasM && hasI:
					both++
					if len(winners) < 6 {
						winners = append(winners, src)
					}
				case !hasM && !hasI:
					neither++
				}
			}
		}
		t.AddRow(o.name, pairs, m, i, both, neither)
	}
	for _, w := range winners {
		t.Notes = append(t.Notes, "full-guarantee example: "+w)
	}
	return t
}
