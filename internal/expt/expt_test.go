package expt

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRunAndValidate runs the full suite with a fixed seed
// and asserts that every theorem-validation row reports EXACT and no
// table is empty.
func TestAllExperimentsRunAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow")
	}
	tables := All(42)
	if len(tables) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		out := tab.Render()
		if strings.Contains(out, "MISMATCH") {
			t.Errorf("%s: validation mismatch:\n%s", tab.ID, out)
		}
		if strings.Contains(out, "error") {
			t.Errorf("%s: error row:\n%s", tab.ID, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow(1, "yes")
	tab.AddRow("longer", 2)
	tab.Notes = append(tab.Notes, "a note")
	out := tab.Render()
	for _, want := range []string{"X — demo", "a       bb", "longer  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestGlobalOptimaValidationExact(t *testing.T) {
	tab := GlobalOptimaValidation(7, 60)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "EXACT" {
			t.Fatalf("E2 row not exact: %v", row)
		}
	}
}

func TestLocalOptimaValidationExact(t *testing.T) {
	tab := LocalOptimaValidation(8, 60)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "EXACT" {
			t.Fatalf("E3 row not exact: %v", row)
		}
	}
}

func TestBandwidthDelayLexShape(t *testing.T) {
	tab := BandwidthDelayLex()
	// Row 0: delay∞ first ⇒ M true; row 1: bw first ⇒ M false.
	if tab.Rows[0][1] != "true" {
		t.Fatalf("lex(delay∞, bw) must be M: %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "false" {
		t.Fatalf("lex(bw, delay∞) must fail M: %v", tab.Rows[1])
	}
}

func TestPolicyPartitionHeadline(t *testing.T) {
	tab := PolicyPartitionValidation(9, 40)
	var lexM, scopedM string
	for _, row := range tab.Rows {
		switch row[0] {
		case "lex(bw(6), delay(6,2))":
			lexM = row[1]
		case "scoped(bw(6), delay(6,2))":
			scopedM = row[1]
		}
	}
	if lexM != "false" || scopedM != "true" {
		t.Fatalf("headline broken: lex M=%s scoped M=%s", lexM, scopedM)
	}
}

func TestConvergenceDynamicsShape(t *testing.T) {
	tab := ConvergenceDynamics(10, 6)
	var badConverged, delayConverged string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "BAD GADGET") {
			badConverged = row[3]
		}
		if strings.HasPrefix(row[0], "random graphs") {
			delayConverged = row[3]
		}
	}
	if badConverged != "0" {
		t.Fatalf("BAD GADGET converged %s times, want 0", badConverged)
	}
	if delayConverged != "6" {
		t.Fatalf("delay converged %s/6 runs", delayConverged)
	}
}

func TestOptimaOnGraphsShape(t *testing.T) {
	tab := OptimaOnGraphs(11, 8)
	// delay + dijkstra must be fully optimal; gadget rows must not be.
	var delayDijkstraGlobal, gadgetGlobal string
	for _, row := range tab.Rows {
		if row[0] == "delay(255,4)" && row[2] == "dijkstra" {
			delayDijkstraGlobal = row[4]
		}
		if row[0] == "gadget" && row[2] == "dijkstra" {
			gadgetGlobal = row[4]
		}
	}
	if delayDijkstraGlobal != "8/8" {
		t.Fatalf("delay/dijkstra global-opt = %s, want 8/8", delayDijkstraGlobal)
	}
	if gadgetGlobal == "8/8" {
		t.Fatal("gadget must not be globally optimal everywhere")
	}
}

func TestInferenceVsModelCheckAgrees(t *testing.T) {
	tab := InferenceVsModelCheck(12)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "EXACT" {
			t.Fatalf("inference disagrees with model check: %v", row)
		}
	}
}

func TestCompositeGapExact(t *testing.T) {
	tab := CompositeMetricGap(5, 80)
	row := tab.Rows[0]
	if row[4] != "EXACT" {
		t.Fatalf("Gouda–Schneider soundness broken: %v", row)
	}
	// On finite carriers the rule is exact, so the gap must be 0.
	if row[5] != "0" {
		t.Fatalf("finite-carrier gap must be 0: %v", row)
	}
}

func TestKBestAndClosureAllExact(t *testing.T) {
	tab := KBestAndClosure(6, 6)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "EXACT" {
			t.Fatalf("row not exact: %v", row)
		}
	}
}

func TestDynamicRoutingAllStable(t *testing.T) {
	tab := DynamicRouting(7, 8)
	row := tab.Rows[0]
	if row[2] != "8" || row[3] != "8" {
		t.Fatalf("reconvergence must be total: %v", row)
	}
}

func TestConvergenceScalingShapes(t *testing.T) {
	tab := ConvergenceScaling(8, 3)
	// Ring rounds must grow with n (diameter-bound); random rounds must
	// stay far below ring rounds at n=32.
	var ring8, ring32, rand32 float64
	for _, row := range tab.Rows {
		if row[0] == "ring" && row[1] == "8" {
			fmt.Sscanf(row[4], "%f", &ring8)
		}
		if row[0] == "ring" && row[1] == "32" {
			fmt.Sscanf(row[4], "%f", &ring32)
		}
		if row[0] == "random p=0.25" && row[1] == "32" {
			fmt.Sscanf(row[4], "%f", &rand32)
		}
	}
	if ring32 <= ring8 {
		t.Fatalf("ring rounds must grow with n: %v vs %v", ring8, ring32)
	}
	if rand32 >= ring32 {
		t.Fatalf("random graphs must converge in fewer rounds than rings at n=32: %v vs %v", rand32, ring32)
	}
}
