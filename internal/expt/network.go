package expt

import (
	"fmt"
	"math/rand"
	"time"

	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// optimaCase binds an algebra expression to its origin value and the
// property profile it demonstrates.
type optimaCase struct {
	src    string
	origin value.V
	note   string
}

// OptimaOnGraphs regenerates the algorithm-applicability story implied by
// §II: for each algebra profile (M∧ND∧I, M∧ND, M alone, ¬M, neither) it
// runs generalized Dijkstra and Bellman–Ford on random graphs and reports
// how often each solution is globally optimal, path-dominating, and
// locally optimal — the "who wins where" table.
func OptimaOnGraphs(seed int64, graphsPer int) *Table {
	t := &Table{
		ID:    "E11",
		Title: "algorithm applicability by algebra profile (random graphs, brute-force ground truth)",
		Header: []string{"algebra", "profile", "solver", "converged",
			"global-opt", "dominates", "local-opt"},
		Notes: []string{
			"global-opt: weights match the minimal simple-path weights exactly",
			"dominates: weights ≲ every simple-path weight (the M-only fixpoint guarantee)",
			"local-opt: the solution is stable (no neighbour offers a strictly better route)",
		},
	}
	cases := []optimaCase{
		{"delay(255,4)", 0, "M∧ND∧I"},
		{"bw(8)", 8, "M∧ND ¬I"},
		{"scoped(bw(4), delay(64,4))", value.Pair{A: 4, B: 0}, "M ¬ND"},
		{"lex(bw(4), delay(64,4))", value.Pair{A: 4, B: 0}, "¬M I-ish"},
		{"gadget", 0, "¬M ¬ND"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, c := range cases {
		a, err := core.InferString(c.src)
		if err != nil {
			t.AddRow(c.src, "error", err.Error(), "", "", "", "")
			continue
		}
		type solverRun struct {
			name string
			run  func(g *graph.Graph) *solve.Result
		}
		solvers := []solverRun{
			{"dijkstra", func(g *graph.Graph) *solve.Result {
				return solve.Dijkstra(a.OT, g, 0, c.origin)
			}},
			{"bellman-ford", func(g *graph.Graph) *solve.Result {
				return solve.BellmanFord(a.OT, g, 0, c.origin, 6*g.N)
			}},
		}
		for _, s := range solvers {
			var conv, global, dom, local int
			for i := 0; i < graphsPer; i++ {
				g := graph.Random(r, 7, 0.35, graph.UniformLabels(len(a.OT.F.Fns)))
				res := s.run(g)
				if res.Converged {
					conv++
				}
				if ok, _ := solve.VerifyGlobal(a.OT, g, 0, c.origin, res); ok {
					global++
				}
				if ok, _ := solve.VerifyDominates(a.OT, g, 0, c.origin, res); ok {
					dom++
				}
				if res.Converged {
					if ok, _ := solve.VerifyLocal(a.OT, g, 0, c.origin, res); ok {
						local++
					}
				}
			}
			t.AddRow(c.src, c.note, s.name,
				frac(conv, graphsPer), frac(global, graphsPer), frac(dom, graphsPer), frac(local, graphsPer))
		}
	}
	return t
}

// ConvergenceDynamics regenerates the convergence story of §I–§II with
// the asynchronous path-vector simulator: increasing algebras quiesce,
// BAD GADGET (¬ND policies with path filtering) oscillates forever, and
// two-level scoped-product topologies converge region by region.
func ConvergenceDynamics(seed int64, runs int) *Table {
	t := &Table{
		ID:    "E12",
		Title: "asynchronous path-vector dynamics (event-driven simulator)",
		Header: []string{"scenario", "algebra", "runs", "converged",
			"mean steps", "stable (local-opt)"},
		Notes: []string{
			"simulator: per-link FIFO, seeded random delays, quiescence detection, step budget for divergence",
			"BAD GADGET reproduces persistent route oscillation [16]: 0 converged runs expected",
		},
	}
	r := rand.New(rand.NewSource(seed))

	// Increasing algebra on random graphs.
	dl, _ := core.InferString("delay(255,3)")
	var conv, stable, steps int
	for i := 0; i < runs; i++ {
		g := graph.Random(r, 10, 0.3, graph.UniformLabels(3))
		out := protocol.Run(dl.OT, g, protocol.Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: r})
		if out.Converged {
			conv++
			steps += out.Steps
			if verifyOutcomeStable(dl.OT, g, 0, out) {
				stable++
			}
		}
	}
	t.AddRow("random graphs n=10", "delay (I)", runs, conv, mean(steps, conv), stable)

	// Scoped product on two-level topologies.
	sc, _ := core.InferString("scoped(lex(lp(3), hops(32)), delay(64,3))")
	nInter := countInterFns(sc.OT)
	var convS, stepsS int
	for i := 0; i < runs; i++ {
		regions := graph.TwoLevel(r, 3, 3, 0.3, 2,
			func(rr *rand.Rand, _, _ int) int { return nInter + rr.Intn(len(sc.OT.F.Fns)-nInter) },
			func(rr *rand.Rand, _, _ int) int { return rr.Intn(nInter) })
		out := protocol.Run(sc.OT, regions.Graph, protocol.Config{
			Dest: 0, Origin: value.Pair{A: value.Pair{A: 0, B: 0}, B: 0},
			MaxDelay: 3, Rand: r, MaxSteps: 40000,
		})
		if out.Converged {
			convS++
			stepsS += out.Steps
		}
	}
	t.AddRow("two-level (3 regions × 3)", "lp/hops ⊙ delay", runs, convS, mean(stepsS, convS), "-")

	// Distance-vector vs path-vector after a failure: bounded
	// count-to-infinity (RIP-style ⊤ ceiling) vs loop-rejecting withdrawal.
	dvAlg, _ := core.InferString("delay(16,1)")
	dvG := graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0}, {From: 2, To: 1, Label: 0}, {From: 1, To: 2, Label: 0},
	})
	var dvSteps, pvSteps int
	for i := 0; i < runs; i++ {
		seed := rand.New(rand.NewSource(int64(i)))
		dv := protocol.Run(dvAlg.OT, dvG, protocol.Config{Dest: 0, Origin: 0, MaxDelay: 1,
			Rand: seed, DistanceVector: true,
			Events: []protocol.LinkEvent{{At: 50, Arc: 0, Fail: true}}})
		pv := protocol.Run(dvAlg.OT, dvG, protocol.Config{Dest: 0, Origin: 0, MaxDelay: 1,
			Rand:   rand.New(rand.NewSource(int64(i))),
			Events: []protocol.LinkEvent{{At: 50, Arc: 0, Fail: true}}})
		dvSteps += dv.Steps
		pvSteps += pv.Steps
	}
	t.AddRow("count-to-⊤: distance vector", "delay≤16, exit fails", runs, runs,
		mean(dvSteps, runs), "-")
	t.AddRow("withdrawal: path vector", "same failure", runs, runs,
		mean(pvSteps, runs), "-")

	// BAD GADGET.
	gd, _ := core.InferString("gadget")
	g, _ := graph.BadGadgetArcs()
	var convB int
	for i := 0; i < runs; i++ {
		out := protocol.Run(gd.OT, g, protocol.Config{Dest: 0, Origin: 0, MaxSteps: 2000, MaxDelay: 2, Rand: r})
		if out.Converged {
			convB++
		}
	}
	t.AddRow("BAD GADGET", "sppgadget (¬M ¬ND)", runs, convB, "budget-capped", "-")

	// GOOD GADGET: same topology, direct preferred (via arcs demoted).
	gg := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0}, {From: 2, To: 0, Label: 0}, {From: 3, To: 0, Label: 0},
	})
	var convG int
	for i := 0; i < runs; i++ {
		out := protocol.Run(gd.OT, gg, protocol.Config{Dest: 0, Origin: 0, MaxSteps: 2000, MaxDelay: 2, Rand: r})
		if out.Converged {
			convG++
		}
	}
	t.AddRow("GOOD GADGET (direct only)", "sppgadget", runs, convG, "-", "-")
	return t
}

// InferenceVsModelCheck regenerates the metarouting pitch of §I: deriving
// properties from the expression (type-checking) versus model checking
// the composed structure, across expression depth — correctness agreement
// and wall-clock cost.
func InferenceVsModelCheck(seed int64) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "inference (rules) vs model checking: agreement and cost by expression depth",
		Header: []string{"expression", "carrier", "rules µs", "model-check µs", "speedup", "agree"},
		Notes: []string{
			"rules cost is O(expression size); model checking is O(|carrier|²·|F|) per property and grows with each product",
		},
	}
	exprs := []string{
		"delay(8,2)",
		"lex(bw(8), delay(8,2))",
		"scoped(bw(8), delay(8,2))",
		"lex(tags(2), bw(8), delay(8,2))",
		"scoped(lex(lp(3), hops(8)), lex(hops(8), bw(4)))",
	}
	for _, src := range exprs {
		e, err := core.Parse(src)
		if err != nil {
			t.AddRow(src, "error", err.Error(), "", "", "")
			continue
		}
		startR := time.Now()
		aRules, err := core.InferWith(e, core.Options{Fallback: false})
		rulesDur := time.Since(startR)
		if err != nil {
			t.AddRow(src, "error", err.Error(), "", "", "")
			continue
		}
		startM := time.Now()
		checked := ost.New("chk", aRules.OT.Ord, aRules.OT.F)
		checked.CheckAll(nil, 0)
		mcDur := time.Since(startM)
		agree := true
		for _, id := range []prop.ID{prop.MLeft, prop.NLeft, prop.CLeft, prop.NDLeft, prop.ILeft, prop.SILeft, prop.TopFixed} {
			rs := aRules.Props.Status(id)
			cs := checked.Props.Status(id)
			if rs != prop.Unknown && cs != prop.Unknown && rs != cs {
				agree = false
			}
		}
		speedup := "-"
		if rulesDur > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(mcDur)/float64(rulesDur))
		}
		t.AddRow(src, aRules.OT.Carrier().Size(),
			rulesDur.Microseconds(), mcDur.Microseconds(), speedup, verdict(agree))
	}
	return t
}

// --- helpers ---

func frac(n, d int) string { return fmt.Sprintf("%d/%d", n, d) }

func mean(total, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(total)/float64(n))
}

func verifyOutcomeStable(a *ost.OrderTransform, g *graph.Graph, dest int, out *protocol.Outcome) bool {
	res := &solve.Result{Dest: dest, Routed: out.Routed, Weights: out.Weights, NextHop: make([]int, g.N)}
	for u := range res.NextHop {
		res.NextHop[u] = -1
		if out.Routed[u] && len(out.Paths[u]) > 1 {
			res.NextHop[u] = out.Paths[u][1]
		}
	}
	ok, _ := solve.VerifyLocal(a, g, dest, out.Weights[dest], res)
	return ok
}

// countInterFns counts the tag-0 (inter-region) functions of a scoped
// product's function set, which fn.DisjointUnion lists first.
func countInterFns(a *ost.OrderTransform) int {
	n := 0
	for _, f := range a.F.Fns {
		if len(f.Name) > 3 && f.Name[:3] == "(1," {
			n++
		}
	}
	if n == 0 {
		n = len(a.F.Fns) / 2
	}
	return n
}
