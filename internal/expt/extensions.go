package expt

import (
	"fmt"
	"math/rand"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/gen"
	"metarouting/internal/graph"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/quadrant"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// CompositeMetricGap regenerates §VI's discussion of additive composite
// metrics (EIGRP, Gouda & Schneider): it validates the sufficient rule
// ND(S)∧ND(T) ⇒ ND(S⊞T) on random finite order transforms and
// quantifies its incompleteness — the fraction of composites that are ND
// although the rule stays silent, the gap the paper leaves open.
func CompositeMetricGap(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "§VI: additive composite metrics — Gouda–Schneider sufficiency and its gap",
		Header: []string{"population", "trials", "rule fires", "ND actually", "rule sound", "gap (ND w/o rule)"},
		Notes: []string{
			"S ⊞ T: componentwise functions, order by the component sum (EIGRP-style fixed formula)",
			"measured gap 0 is a small theorem: on *finite* carriers any component loss is unmasked at the other component's ceiling (where gains are ≤0), so ND(S⊞T) ⟺ ND(S)∧ND(T) — Gouda–Schneider is exact here; genuine gaps need unbounded carriers",
		},
	}
	r := rand.New(rand.NewSource(seed))
	var fires, ndTrue, gap int
	sound := true
	for i := 0; i < trials; i++ {
		s := randIntOT(r)
		u := randIntOT(r)
		comp := ost.AdditiveComposite(s, u, 1, 1)
		ndS, _ := s.CheckND(nil, 0)
		ndT, _ := u.CheckND(nil, 0)
		truth, _ := comp.CheckND(nil, 0)
		ruleFires := ndS == prop.True && ndT == prop.True
		if ruleFires {
			fires++
			if truth != prop.True {
				sound = false
			}
		}
		if truth == prop.True {
			ndTrue++
			if !ruleFires {
				gap++
			}
		}
	}
	t.AddRow("random int order transforms", trials, fires, ndTrue, verdict(sound), gap)
	return t
}

// KBestAndClosure regenerates the §VI "reduction idea" payoff (k-best
// paths) and the algebraic-path substrate of §III: k-min reduction laws,
// k-best fixpoint vs brute force on DAGs, and the matrix closure on the
// classic bisemigroups.
func KBestAndClosure(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "§VI reductions in action: k-best paths and algebraic closures",
		Header: []string{"artefact", "instance", "result", "verdict"},
	}
	r := rand.New(rand.NewSource(seed))

	// k-min reduction laws on (ℕ,+sat).
	plus := baselib.PlusSatSG(15)
	p := baselib.ShortestPathOSG(15).Ord
	for _, k := range []int{1, 2, 4} {
		msg := quadrant.CheckReductionLaws(quadrant.KBestReduction(p, k), plus, r, 200, 5)
		t.AddRow("k-min reduction laws", fmt.Sprintf("k=%d on (ℕ,+)", k),
			map[bool]string{true: "laws 1–3 hold", false: msg}[msg == ""], verdict(msg == ""))
	}

	// k-best fixpoint vs brute force on random DAGs.
	a, _ := core.InferString("delay(255,4)")
	exact, total := 0, 0
	for i := 0; i < trials; i++ {
		g := randDAG(r, 7, 0.4, 4)
		for _, k := range []int{2, 3} {
			total++
			res := solve.KBest(a.OT, g, 0, 0, k, 0)
			truth := solve.KBestBruteForce(a.OT, g, 0, 0, k)
			ok := res.Converged
			for u := 0; u < g.N && ok; u++ {
				if len(res.Weights[u]) != len(truth[u]) {
					ok = false
					break
				}
				for i := range truth[u] {
					if res.Weights[u][i] != truth[u][i] {
						ok = false
						break
					}
				}
			}
			if ok {
				exact++
			}
		}
	}
	t.AddRow("k-best fixpoint vs brute force", fmt.Sprintf("%d random DAGs, k∈{2,3}", trials),
		fmt.Sprintf("%d/%d exact", exact, total), verdict(exact == total))

	// Matrix closures over the Fig 1 bisemigroups.
	g := graph.MustNew(4, []graph.Arc{
		{From: 0, To: 1, Label: 0}, {From: 0, To: 2, Label: 0},
		{From: 1, To: 3, Label: 0}, {From: 2, To: 3, Label: 0},
		{From: 0, To: 3, Label: 0},
	})
	mp := solve.Closure(baselib.MinPlus(64), g, []value.V{1}, 0)
	t.AddRow("closure (ℕ,min,+)", "diamond, d(0,3)", mp.X[0][3], verdict(mp.Converged && mp.X[0][3] == 1))
	pt := solve.Closure(baselib.PlusTimes(100), g, []value.V{1}, 0)
	t.AddRow("closure (ℕ,+,×) path count", "diamond, #paths(0,3)", pt.X[0][3], verdict(pt.Converged && pt.X[0][3] == 3))
	bl := solve.Closure(baselib.BoolReach(), g, []value.V{1}, 0)
	t.AddRow("closure (bool,∨,∧) reachability", "diamond, 0→3", bl.X[0][3], verdict(bl.Converged && bl.X[0][3] == 1))

	// Pareto fronts under a pointwise partial order via the lazy min-set
	// transform, validated against brute-force fronts.
	lexAlg, _ := core.InferString("lex(delay(32,3), bw(8))")
	pointwise := ost.New("pw", paretoOrder(lexAlg.OT), lexAlg.OT.F)
	reg := quadrant.NewSetRegistry()
	lazy := quadrant.MinSetTransformLazy(pointwise, reg)
	paretoOK, paretoTotal := 0, 0
	for i := 0; i < trials; i++ {
		g := graph.Random(r, 6, 0.35, graph.UniformLabels(len(pointwise.F.Fns)))
		origin := value.Pair{A: 0, B: 8}
		res := solve.Fixpoint(lazy, g, 0, reg.Intern([]value.V{origin}), 4*g.N)
		truth := solve.BruteForce(pointwise, g, 0, origin, 0)
		for u := 0; u < g.N; u++ {
			paretoTotal++
			var got []value.V
			if res.Routed[u] {
				got = reg.Members(res.Weights[u].(quadrant.VSet))
			}
			if res.Converged && reg.Intern(got) == reg.Intern(truth[u]) {
				paretoOK++
			}
		}
	}
	t.AddRow("Pareto fronts (lazy min-set) vs brute force",
		fmt.Sprintf("%d random graphs, pointwise delay×bw", trials),
		fmt.Sprintf("%d/%d fronts exact", paretoOK, paretoTotal), verdict(paretoOK == paretoTotal))
	return t
}

// paretoOrder is the componentwise order over a (delay, bw) pair carrier.
func paretoOrder(a *ost.OrderTransform) *order.Preorder {
	return order.New("pw", a.Carrier(), func(x, y value.V) bool {
		p, q := x.(value.Pair), y.(value.Pair)
		return p.A.(int) <= q.A.(int) && p.B.(int) >= q.B.(int)
	})
}

// DynamicRouting regenerates the dynamic setting of Sobrinho's [23] with
// the simulator's link events: increasing algebras reconverge to stable
// routings of the surviving topology after failures.
func DynamicRouting(seed int64, runs int) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "dynamic routing: reconvergence under link failures (Sobrinho [23] setting)",
		Header: []string{"scenario", "runs", "reconverged", "stable after failure", "mean steps"},
	}
	r := rand.New(rand.NewSource(seed))
	a, _ := core.InferString("delay(255,3)")
	var conv, stable, steps int
	for i := 0; i < runs; i++ {
		g := graph.Random(r, 9, 0.35, graph.UniformLabels(3))
		evts := []protocol.LinkEvent{
			{At: 25, Arc: r.Intn(len(g.Arcs)), Fail: true},
			{At: 60, Arc: r.Intn(len(g.Arcs)), Fail: true},
		}
		out := protocol.Run(a.OT, g, protocol.Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: r, Events: evts})
		if !out.Converged {
			continue
		}
		conv++
		steps += out.Steps
		var arcs []graph.Arc
		for idx, arc := range g.Arcs {
			dead := false
			for _, e := range evts {
				if e.Arc == idx && e.Fail {
					dead = true
				}
			}
			if !dead {
				arcs = append(arcs, arc)
			}
		}
		sur := graph.MustNew(g.N, arcs)
		if verifyOutcomeStable(a.OT, sur, 0, out) {
			stable++
		}
	}
	t.AddRow("delay (I), two staggered failures", runs, conv, stable, mean(steps, conv))
	return t
}

// randIntOT draws a random order transform over an int carrier with the
// usual ≤ order and random int-to-int functions — the population for the
// composite-metric sweep.
func randIntOT(r *rand.Rand) *ost.OrderTransform {
	n := 3 + r.Intn(3)
	o := baselib.ShortestPathOSG(n - 1).Ord
	return ost.New("rndint", o, gen.FnSet(r, n, 1+r.Intn(3)))
}

// randDAG builds a random DAG with arcs from higher to lower ids.
func randDAG(r *rand.Rand, n int, p float64, labels int) *graph.Graph {
	var arcs []graph.Arc
	seen := map[[2]int]bool{}
	add := func(u, v int) {
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			arcs = append(arcs, graph.Arc{From: u, To: v, Label: r.Intn(labels)})
		}
	}
	for u := 1; u < n; u++ {
		add(u, r.Intn(u))
		for v := 0; v < u; v++ {
			if r.Float64() < p {
				add(u, v)
			}
		}
	}
	return graph.MustNew(n, arcs)
}
