package expt

import (
	"fmt"
	"math/rand"

	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/solve"
)

// ConvergenceScaling regenerates the figure-shaped result implicit in the
// paper's algorithmic story: how convergence cost scales with network
// size and shape, for the asynchronous protocol (messages) and the
// synchronous iterations (rounds), on an increasing algebra. The series
// show the expected shapes: messages grow roughly linearly in |arcs|;
// Gauss–Seidel needs no more rounds than Jacobi; ring diameters dominate
// round counts.
func ConvergenceScaling(seed int64, runsPer int) *Table {
	t := &Table{
		ID:    "E17",
		Title: "convergence scaling: cost vs network size and shape (delay algebra)",
		Header: []string{"topology", "n", "arcs", "async msgs (mean)",
			"jacobi rounds", "gauss-seidel rounds"},
		Notes: []string{
			"async msgs: mean delivered messages to quiescence over seeded runs",
			"rounds: synchronous iterations to fixpoint (Jacobi = Bellman–Ford, Gauss–Seidel = in-place)",
		},
	}
	a, _ := core.InferString("delay(0,3)")
	r := rand.New(rand.NewSource(seed))

	type family struct {
		name string
		make func(n int) *graph.Graph
	}
	families := []family{
		{"random p=0.25", func(n int) *graph.Graph {
			return graph.Random(r, n, 0.25, graph.UniformLabels(3))
		}},
		{"scale-free m=2", func(n int) *graph.Graph {
			return graph.ScaleFree(r, n, 2, graph.UniformLabels(3))
		}},
		{"ring", func(n int) *graph.Graph {
			return graph.Ring(r, n, graph.UniformLabels(3))
		}},
	}
	for _, fam := range families {
		for _, n := range []int{8, 16, 32} {
			var msgs, jac, gs, arcs int
			for i := 0; i < runsPer; i++ {
				g := fam.make(n)
				arcs += len(g.Arcs)
				out := protocol.Run(a.OT, g, protocol.Config{
					Dest: 0, Origin: 0, MaxDelay: 3, Rand: r, MaxSteps: 500 * n * n,
				})
				if out.Converged {
					msgs += out.Steps
				}
				jac += solve.BellmanFord(a.OT, g, 0, 0, 0).Rounds
				gs += solve.GaussSeidel(a.OT, g, 0, 0, 0).Rounds
			}
			t.AddRow(fam.name, n, arcs/runsPer,
				fmt.Sprintf("%.0f", float64(msgs)/float64(runsPer)),
				fmt.Sprintf("%.1f", float64(jac)/float64(runsPer)),
				fmt.Sprintf("%.1f", float64(gs)/float64(runsPer)))
		}
	}
	return t
}
