package expt

import (
	"fmt"
	"math/rand"

	"metarouting/internal/bsg"
	"metarouting/internal/gen"
	"metarouting/internal/order"
	"metarouting/internal/osg"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/sgt"
)

// tally accumulates agreement statistics for a theorem validation sweep.
type tally struct {
	trials, agree, lhsTrue int
	mismatch               string
}

func (t *tally) record(lhs, rhs prop.Status, describe func() string) {
	t.trials++
	if lhs == rhs {
		t.agree++
	} else if t.mismatch == "" {
		t.mismatch = describe()
	}
	if lhs == prop.True {
		t.lhsTrue++
	}
}

func (t *tally) row(tab *Table, label string) {
	status := "EXACT"
	if t.agree != t.trials {
		status = "MISMATCH: " + t.mismatch
	}
	tab.AddRow(label, t.trials, t.agree, t.lhsTrue, status)
}

// GlobalOptimaValidation regenerates Fig 2 + Theorem 4: for each quadrant
// it draws random structures, model-checks M of the lexicographic product
// and the rule M(S)∧M(T)∧(N(S)∨C(T)), and reports agreement. For the
// algebraic quadrants the sweep is restricted to "pure" products (first
// ⊕ selective or α_T inert) — see the E2 notes and bsg's tests for the
// machine-found counterexample outside that setting.
func GlobalOptimaValidation(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Fig 2 / Theorem 4: M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T)), validated per quadrant",
		Header: []string{"quadrant", "trials", "agree", "M(S×T) true", "verdict"},
		Notes: []string{
			"each trial: exhaustive model check of both sides of the iff on random finite structures",
			"bisemigroups/semigroup transforms: restricted to selective ⊕_S or ⊗/F fixing α_T (the §III semiring axiom); without it the α-injection of §IV.A breaks the rule — counterexample pinned in internal/bsg tests",
		},
	}
	r := rand.New(rand.NewSource(seed))

	// Order semigroups.
	osgT := &tally{}
	for osgT.trials < trials {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := osg.New("S", gen.Preorder(r, ns), gen.AssocOp(r, ns))
		u := osg.New("T", gen.Preorder(r, nt), gen.AssocOp(r, nt))
		lhs, _ := osg.Lex(s, u).CheckM(true, nil, 0)
		ms, _ := s.CheckM(true, nil, 0)
		mt, _ := u.CheckM(true, nil, 0)
		n, _ := s.CheckN(true, nil, 0)
		c, _ := u.CheckC(true, nil, 0)
		osgT.record(lhs, prop.And(prop.And(ms, mt), prop.Or(n, c)), func() string {
			return fmt.Sprintf("%s/%s × %s/%s", s.Ord.Name, s.Mul.Name, u.Ord.Name, u.Mul.Name)
		})
	}
	osgT.row(t, "order semigroups")

	// Order transforms.
	ostT := &tally{}
	for ostT.trials < trials {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := ost.New("S", gen.Preorder(r, ns), gen.FnSet(r, ns, 1+r.Intn(3)))
		u := ost.New("T", gen.Preorder(r, nt), gen.FnSet(r, nt, 1+r.Intn(3)))
		lhs, _ := ost.Lex(s, u).CheckM(nil, 0)
		ms, _ := s.CheckM(nil, 0)
		mt, _ := u.CheckM(nil, 0)
		n, _ := s.CheckN(nil, 0)
		c, _ := u.CheckC(nil, 0)
		ostT.record(lhs, prop.And(prop.And(ms, mt), prop.Or(n, c)), func() string {
			return s.Ord.Name + " × " + u.Ord.Name
		})
	}
	ostT.row(t, "order transforms")

	// Bisemigroups (pure setting).
	bsgT := &tally{}
	for bsgT.trials < trials {
		s := randPureBSG(r)
		u := randPureBSG(r)
		if selective(s.Add) != prop.True && !alphaAbsorbed(u) {
			continue
		}
		prod, err := bsg.Lex(s, u)
		if err != nil {
			continue
		}
		lhs, _ := prod.CheckM(true, nil, 0)
		ms, _ := s.CheckM(true, nil, 0)
		mt, _ := u.CheckM(true, nil, 0)
		n, _ := s.CheckN(true, nil, 0)
		c, _ := u.CheckC(true, nil, 0)
		bsgT.record(lhs, prop.And(prop.And(ms, mt), prop.Or(n, c)), func() string {
			return s.Add.Name + "/" + s.Mul.Name + " × " + u.Add.Name + "/" + u.Mul.Name
		})
	}
	bsgT.row(t, "bisemigroups")

	// Semigroup transforms (pure setting).
	sgtT := &tally{}
	for sgtT.trials < trials {
		s := randSGT(r)
		u := randSGT(r)
		if selective(s.Add) != prop.True && !alphaFixedSGT(u) {
			continue
		}
		prod, err := sgt.Lex(s, u)
		if err != nil {
			continue
		}
		lhs, _ := prod.CheckM(nil, 0)
		ms, _ := s.CheckM(nil, 0)
		mt, _ := u.CheckM(nil, 0)
		n, _ := s.CheckN(nil, 0)
		c, _ := u.CheckC(nil, 0)
		sgtT.record(lhs, prop.And(prop.And(ms, mt), prop.Or(n, c)), func() string {
			return s.Add.Name + " × " + u.Add.Name
		})
	}
	sgtT.row(t, "semigroup transforms")
	return t
}

// LocalOptimaValidation regenerates Fig 3 + Theorem 5: the ND and I
// rules, in their paper-literal form for the algebraic quadrants and
// their SI-exact form for the ordered quadrants.
func LocalOptimaValidation(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Fig 3 / Theorem 5: ND and I of lexicographic products, validated per quadrant",
		Header: []string{"quadrant", "rule", "trials", "agree", "verdict"},
		Notes: []string{
			"algebraic quadrants use the paper-literal rules (their I is exemption-free)",
			"ordered quadrants use the SI refinement: ND ⟺ SI(S)∨(ND∧ND); I splits on where ⊤ comes from",
		},
	}
	r := rand.New(rand.NewSource(seed))

	// Semigroup transforms: paper-literal.
	nd, i := &tally{}, &tally{}
	for nd.trials < trials {
		s, u := randSGT(r), randSGT(r)
		prod, err := sgt.Lex(s, u)
		if err != nil {
			continue
		}
		ndS, _ := s.CheckND(nil, 0)
		ndT, _ := u.CheckND(nil, 0)
		iS, _ := s.CheckI(nil, 0)
		iT, _ := u.CheckI(nil, 0)
		lhsND, _ := prod.CheckND(nil, 0)
		lhsI, _ := prod.CheckI(nil, 0)
		nd.record(lhsND, prop.Or(iS, prop.And(ndS, ndT)), func() string { return s.Add.Name })
		i.record(lhsI, prop.Or(iS, prop.And(ndS, iT)), func() string { return s.Add.Name })
	}
	nd.row(t, "semigroup transforms ND ⟺ I(S)∨(ND∧ND)")
	i.row(t, "semigroup transforms I ⟺ I(S)∨(ND∧I)")

	// Order transforms: SI form.
	ndO, siO := &tally{}, &tally{}
	for ndO.trials < trials {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := ost.New("S", gen.Preorder(r, ns), gen.FnSet(r, ns, 1+r.Intn(3)))
		u := ost.New("T", gen.Preorder(r, nt), gen.FnSet(r, nt, 1+r.Intn(3)))
		prod := ost.Lex(s, u)
		siS, _ := s.CheckSI(nil, 0)
		siT, _ := u.CheckSI(nil, 0)
		ndS, _ := s.CheckND(nil, 0)
		ndT, _ := u.CheckND(nil, 0)
		lhsND, _ := prod.CheckND(nil, 0)
		lhsSI, _ := prod.CheckSI(nil, 0)
		ndO.record(lhsND, prop.Or(siS, prop.And(ndS, ndT)), func() string { return s.Ord.Name })
		siO.record(lhsSI, prop.Or(siS, prop.And(ndS, siT)), func() string { return s.Ord.Name })
	}
	ndO.row(t, "order transforms ND ⟺ SI(S)∨(ND∧ND)")
	siO.row(t, "order transforms SI ⟺ SI(S)∨(ND∧SI)")
	return t
}

// LexSemigroupLaws regenerates §IV.A: Theorem 2 (definedness and CI of
// n-ary lexicographic semigroup products) and Theorem 3 (the natural
// order commutes with lex).
func LexSemigroupLaws(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "§IV.A / Theorems 2–3: lexicographic semigroup product laws",
		Header: []string{"law", "trials", "pass", "verdict"},
	}
	r := rand.New(rand.NewSource(seed))

	// Theorem 2: definedness + CI of random valid chains.
	defOK, ciOK := 0, 0
	for i := 0; i < trials; i++ {
		chain := randChain(r)
		prod, err := sg.LexN(chain...)
		if err != nil {
			continue
		}
		defOK++
		a, _ := prod.CheckAssociative(nil, 0)
		c, _ := prod.CheckCommutative(nil, 0)
		d, _ := prod.CheckIdempotent(nil, 0)
		if a == prop.True && c == prop.True && d == prop.True {
			ciOK++
		}
	}
	t.AddRow("Thm 2: valid chains defined & CI", defOK, ciOK, verdict(defOK == ciOK && defOK > 0))

	// Theorem 3: NOᴸ/NOᴿ commute with ×lex.
	commuteL, commuteR, tried := 0, 0, 0
	for tried < trials {
		s := gen.CISemigroup(r, 2+r.Intn(3))
		u := gen.CISemigroup(r, 2+r.Intn(3))
		if _, ok := u.Identity(); !ok {
			continue
		}
		prod, err := sg.Lex(s, u)
		if err != nil {
			continue
		}
		tried++
		if ordersEqual(sg.NaturalLeft(prod), order.Lex(sg.NaturalLeft(s), sg.NaturalLeft(u))) {
			commuteL++
		}
		if ordersEqual(sg.NaturalRight(prod), order.Lex(sg.NaturalRight(s), sg.NaturalRight(u))) {
			commuteR++
		}
	}
	t.AddRow("Thm 3: NOᴸ(S×T) = NOᴸ(S)×NOᴸ(T)", tried, commuteL, verdict(commuteL == tried))
	t.AddRow("Thm 3: NOᴿ(S×T) = NOᴿ(S)×NOᴿ(T)", tried, commuteR, verdict(commuteR == tried))
	return t
}

// CorollaryValidation regenerates Corollary 1 (two-sided monotonicity of
// order-semigroup products) and Corollary 2 (n-ary increasing chains).
func CorollaryValidation(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Corollaries 1–2: two-sided M and n-ary I guard chains",
		Header: []string{"corollary", "trials", "agree", "verdict"},
	}
	r := rand.New(rand.NewSource(seed))

	c1 := &tally{}
	for c1.trials < trials {
		ns, nt := 2+r.Intn(3), 2+r.Intn(3)
		s := osg.New("S", gen.Preorder(r, ns), gen.AssocOp(r, ns))
		u := osg.New("T", gen.Preorder(r, nt), gen.AssocOp(r, nt))
		prod := osg.Lex(s, u)
		lhsL, _ := prod.CheckM(true, nil, 0)
		lhsR, _ := prod.CheckM(false, nil, 0)
		mSL, _ := s.CheckM(true, nil, 0)
		mSR, _ := s.CheckM(false, nil, 0)
		mTL, _ := u.CheckM(true, nil, 0)
		mTR, _ := u.CheckM(false, nil, 0)
		nSL, _ := s.CheckN(true, nil, 0)
		nSR, _ := s.CheckN(false, nil, 0)
		cTL, _ := u.CheckC(true, nil, 0)
		cTR, _ := u.CheckC(false, nil, 0)
		side := prop.Or(prop.Or(prop.And(nSL, nSR), prop.And(nSL, cTR)),
			prop.Or(prop.And(nSR, cTL), prop.And(cTL, cTR)))
		rhs := prop.And(prop.And(prop.And(mSL, mSR), prop.And(mTL, mTR)), side)
		c1.record(prop.And(lhsL, lhsR), rhs, func() string { return s.Ord.Name })
	}
	c1.row(t, "Cor 1: two-sided M (order semigroups)")

	// Corollary 2 over order transforms, SI form: I(S1×…×Sn) ⟺
	// ∃k: SI(Sk) ∧ ∀j<k: ND(Sj) — validated in the topless setting
	// where I = SI.
	c2 := &tally{}
	for c2.trials < trials {
		k := 2 + r.Intn(2)
		parts := make([]*ost.OrderTransform, k)
		for j := range parts {
			n := 2 + r.Intn(2)
			parts[j] = ost.New("S", gen.Preorder(r, n), gen.FnSet(r, n, 1+r.Intn(2)))
		}
		prod := parts[0]
		for _, p := range parts[1:] {
			prod = ost.Lex(prod, p)
		}
		lhs, _ := prod.CheckSI(nil, 0)
		rhs := prop.False
		for kk := 0; kk < k; kk++ {
			si, _ := parts[kk].CheckSI(nil, 0)
			cond := si
			for j := 0; j < kk; j++ {
				nd, _ := parts[j].CheckND(nil, 0)
				cond = prop.And(cond, nd)
			}
			rhs = prop.Or(rhs, cond)
		}
		c2.record(lhs, rhs, func() string { return fmt.Sprintf("%d-ary", k) })
	}
	c2.row(t, "Cor 2: n-ary SI guard chain (order transforms)")
	return t
}

// SufficientVsExact regenerates the §II comparison: the original
// metarouting paper's sufficient conditions versus this paper's exact
// rules, measured as decision power on random semigroup transforms.
func SufficientVsExact(seed int64, trials int) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "§II: SIGCOMM'05 sufficient conditions vs exact Theorem 5 rules",
		Header: []string{"rule set", "decided ND", "decided I", "of trials", "sound"},
		Notes: []string{
			"sufficient rules decide only when their premise fires (and can never derive a False)",
			"exact rules decide every instance, in both directions",
		},
	}
	r := rand.New(rand.NewSource(seed))
	var suffND, suffI, exactND, exactI, n int
	sound := true
	for n < trials {
		s, u := randSGT(r), randSGT(r)
		prod, err := sgt.Lex(s, u)
		if err != nil {
			continue
		}
		n++
		ndS, _ := s.CheckND(nil, 0)
		ndT, _ := u.CheckND(nil, 0)
		iS, _ := s.CheckI(nil, 0)
		iT, _ := u.CheckI(nil, 0)
		truthND, _ := prod.CheckND(nil, 0)
		truthI, _ := prod.CheckI(nil, 0)
		// Sufficient: ND∧ND ⇒ ND; I(S)∨(ND∧I(T)) ⇒ I.
		if ndS == prop.True && ndT == prop.True {
			suffND++
			if truthND != prop.True {
				sound = false
			}
		}
		if iS == prop.True || (ndS == prop.True && iT == prop.True) {
			suffI++
			if truthI != prop.True {
				sound = false
			}
		}
		// Exact rules decide always (and agree with truth, per E3).
		exactND++
		exactI++
	}
	t.AddRow("SIGCOMM'05 sufficient", suffND, suffI, n, verdict(sound))
	t.AddRow("Theorem 5 exact", exactND, exactI, n, "by construction")
	return t
}

// --- helpers ---

func verdict(ok bool) string {
	if ok {
		return "EXACT"
	}
	return "MISMATCH"
}

func selective(s *sg.Semigroup) prop.Status {
	st, _ := s.CheckSelective(nil, 0)
	return st
}

func randPureBSG(r *rand.Rand) *bsg.Bisemigroup {
	add := gen.CISemigroup(r, 2+r.Intn(3))
	mul := gen.AssocOp(r, add.Car.Size())
	return bsg.New("rnd", add, mul)
}

func alphaAbsorbed(b *bsg.Bisemigroup) bool {
	alpha, ok := b.Add.Identity()
	if !ok {
		return false
	}
	for _, c := range b.Carrier().Elems {
		if b.Mul.Op(c, alpha) != alpha || b.Mul.Op(alpha, c) != alpha {
			return false
		}
	}
	return true
}

func randSGT(r *rand.Rand) *sgt.SemigroupTransform {
	add := gen.CISemigroup(r, 2+r.Intn(3))
	return sgt.New("rnd", add, gen.FnSet(r, add.Car.Size(), 1+r.Intn(3)))
}

func alphaFixedSGT(s *sgt.SemigroupTransform) bool {
	alpha, ok := s.Add.Identity()
	if !ok {
		return false
	}
	for _, f := range s.F.Fns {
		if f.Apply(alpha) != alpha {
			return false
		}
	}
	return true
}

// randChain draws a Theorem 2-shaped chain: selective* · any · monoid*.
func randChain(r *rand.Rand) []*sg.Semigroup {
	k := 2 + r.Intn(2)
	out := make([]*sg.Semigroup, 0, k)
	pivot := r.Intn(k)
	for i := 0; i < k; i++ {
		for {
			s := gen.CISemigroup(r, 2+r.Intn(2))
			sel := selective(s) == prop.True
			_, monoid := s.Identity()
			if i < pivot && !sel {
				continue
			}
			if i > pivot && !monoid {
				continue
			}
			out = append(out, s)
			break
		}
	}
	return out
}

func ordersEqual(a, b *order.Preorder) bool {
	for _, x := range a.Car.Elems {
		for _, y := range a.Car.Elems {
			if a.Leq(x, y) != b.Leq(x, y) {
				return false
			}
		}
	}
	return true
}
