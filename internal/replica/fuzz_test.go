package replica

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the wire decoder with arbitrary bytes:
// truncated frames, flipped CRCs, bad version bytes, hostile counts.
// Every input must either decode to a record that re-encodes to the
// same frame, or error — never panic, and never allocate beyond what
// the input length warrants (the count checks run before every
// allocation; see TestReadRecordBoundsAllocation for the explicit
// allocation probe).
func FuzzDecodeRecord(f *testing.F) {
	f.Add(EncodeFull(testFull()))
	f.Add(EncodeDelta(testDelta()))
	f.Add(EncodeSubscribe(42))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	// A well-formed frame with each corruption class applied.
	base := EncodeFull(testFull())
	flipCRC := append([]byte(nil), base...)
	flipCRC[len(flipCRC)-2] ^= 0x10
	f.Add(flipCRC)
	f.Add(base[:len(base)/2])
	badVer := append([]byte(nil), base...)
	badVer[4] = 0x7f
	f.Add(badVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		// Valid decodes must round-trip: re-encoding the record
		// reproduces the input frame bit for bit, so the codec has one
		// canonical form.
		var again []byte
		switch rec.Kind {
		case KindFull:
			again = EncodeFull(rec.Full)
		case KindDelta:
			again = EncodeDelta(rec.Delta)
		case KindSubscribe:
			again = EncodeSubscribe(rec.SubscribeFrom)
		default:
			t.Fatalf("decoded unknown kind %d", rec.Kind)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, again)
		}
		// The streaming reader must agree with the in-memory decoder.
		rec2, err := ReadRecord(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("ReadRecord rejected a frame DecodeRecord accepted: %v", err)
		}
		if rec2.Kind != rec.Kind || rec2.Version() != rec.Version() {
			t.Fatalf("stream decode disagrees: kind %d/%d version %d/%d",
				rec.Kind, rec2.Kind, rec.Version(), rec2.Version())
		}
	})
}
