package replica

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLogAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.Append(EncodeFull(testFull())); err != nil {
		t.Fatalf("append full: %v", err)
	}
	if err := l.Append(EncodeDelta(testDelta())); err != nil {
		t.Fatalf("append delta: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []uint64
	err = ReplayLog(filepath.Join(dir, LogName), func(r *Record) error {
		got = append(got, r.Version())
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("replayed versions %v, want [7 8]", got)
	}
}

func TestLogReopenAppends(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		l, err := OpenLog(dir)
		if err != nil {
			t.Fatalf("OpenLog #%d: %v", i, err)
		}
		if err := l.Append(EncodeSubscribe(uint64(i))); err != nil {
			t.Fatalf("append #%d: %v", i, err)
		}
		l.Close()
	}
	n := 0
	if err := ReplayLog(filepath.Join(dir, LogName), func(*Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records after reopen, want 2", n)
	}
}

func TestLogRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.SetMaxBytes(1)
	if l.RotateDue() {
		t.Fatal("empty log reports rotation due")
	}
	full, delta := EncodeFull(testFull()), EncodeDelta(testDelta())
	if err := l.Append(full); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(delta); err != nil {
		t.Fatalf("append: %v", err)
	}
	if !l.RotateDue() {
		t.Fatal("over-cap log not due for rotation")
	}
	// The caller (the leader) seeds the fresh segment with a full
	// checkpoint of the version the stream has reached.
	if err := l.Rotate(8, full); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := l.Append(delta); err != nil {
		t.Fatalf("append after rotate: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	segs, err := Segments(dir)
	if err != nil {
		t.Fatalf("Segments: %v", err)
	}
	want := []string{filepath.Join(dir, segmentName(0)), filepath.Join(dir, LogName)}
	if len(segs) != 2 || segs[0] != want[0] || segs[1] != want[1] {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	// Directory replay crosses the boundary seamlessly: both segments'
	// records arrive in order, the checkpoint included.
	var versions []uint64
	if err := ReplayLog(dir, func(r *Record) error {
		versions = append(versions, r.Version())
		return nil
	}); err != nil {
		t.Fatalf("replay dir: %v", err)
	}
	if len(versions) != 4 || versions[0] != 7 || versions[1] != 8 || versions[2] != 7 || versions[3] != 8 {
		t.Fatalf("replayed versions %v, want [7 8 7 8]", versions)
	}
	// The live file alone is self-contained: it opens with the full
	// checkpoint.
	n := 0
	first := uint64(0)
	if err := ReplayLog(filepath.Join(dir, LogName), func(r *Record) error {
		if n == 0 {
			first = r.Version()
			if r.Kind != KindFull {
				t.Fatalf("live log opens with kind %d, want full checkpoint", r.Kind)
			}
		}
		n++
		return nil
	}); err != nil {
		t.Fatalf("replay live: %v", err)
	}
	if n != 2 || first != 7 {
		t.Fatalf("live log: %d records starting at v%d, want 2 from v7", n, first)
	}

	// A reopened log resumes segment numbering past what exists.
	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	l2.SetMaxBytes(1)
	if err := l2.Rotate(9, full); err != nil {
		t.Fatalf("rotate after reopen: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatalf("second rotation did not produce segment 1: %v", err)
	}
}

func TestReplayToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := OpenLog(dir)
	l.Append(EncodeFull(testFull()))
	l.Append(EncodeDelta(testDelta()))
	l.Close()
	path := filepath.Join(dir, LogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A leader killed mid-append leaves a partial final frame; replay
	// must surface the complete prefix and stop cleanly.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReplayLog(path, func(*Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay of truncated log: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records from truncated log, want 1", n)
	}
}

func TestReplayReportsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := OpenLog(dir)
	l.Append(EncodeFull(testFull()))
	l.Append(EncodeDelta(testDelta()))
	l.Close()
	path := filepath.Join(dir, LogName)
	raw, _ := os.ReadFile(path)
	raw[10] ^= 0xff // inside the first frame's payload
	os.WriteFile(path, raw, 0o644)
	if err := ReplayLog(path, func(*Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a corrupt mid-log record")
	}
}
