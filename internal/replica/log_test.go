package replica

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLogAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.Append(EncodeFull(testFull())); err != nil {
		t.Fatalf("append full: %v", err)
	}
	if err := l.Append(EncodeDelta(testDelta())); err != nil {
		t.Fatalf("append delta: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []uint64
	err = ReplayLog(filepath.Join(dir, LogName), func(r *Record) error {
		got = append(got, r.Version())
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("replayed versions %v, want [7 8]", got)
	}
}

func TestLogReopenAppends(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		l, err := OpenLog(dir)
		if err != nil {
			t.Fatalf("OpenLog #%d: %v", i, err)
		}
		if err := l.Append(EncodeSubscribe(uint64(i))); err != nil {
			t.Fatalf("append #%d: %v", i, err)
		}
		l.Close()
	}
	n := 0
	if err := ReplayLog(filepath.Join(dir, LogName), func(*Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records after reopen, want 2", n)
	}
}

func TestReplayToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := OpenLog(dir)
	l.Append(EncodeFull(testFull()))
	l.Append(EncodeDelta(testDelta()))
	l.Close()
	path := filepath.Join(dir, LogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A leader killed mid-append leaves a partial final frame; replay
	// must surface the complete prefix and stop cleanly.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReplayLog(path, func(*Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay of truncated log: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records from truncated log, want 1", n)
	}
}

func TestReplayReportsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := OpenLog(dir)
	l.Append(EncodeFull(testFull()))
	l.Append(EncodeDelta(testDelta()))
	l.Close()
	path := filepath.Join(dir, LogName)
	raw, _ := os.ReadFile(path)
	raw[10] ^= 0xff // inside the first frame's payload
	os.WriteFile(path, raw, 0o644)
	if err := ReplayLog(path, func(*Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a corrupt mid-log record")
	}
}
