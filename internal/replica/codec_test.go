package replica

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"

	"metarouting/internal/rib"
	"metarouting/internal/solve"
)

// mkColumn builds a column in canonical layout from per-node content:
// routes[u] == nil means unrouted, otherwise routes[u] is {w, hops...}
// (the destination's entry is just {w}).
func mkColumn(dest int, converged bool, routes [][]int32) *rib.Column {
	c := &rib.Column{Dest: dest, Converged: converged, Slots: make([]rib.EntrySlot, len(routes))}
	for u, r := range routes {
		if r == nil {
			continue
		}
		c.Slots[u] = rib.EntrySlot{W: r[0], Routed: true, NhOff: int32(len(c.Pool)), NhLen: int32(len(r) - 1)}
		c.Pool = append(c.Pool, r[1:]...)
	}
	return c
}

func testFull() *Full {
	return &Full{
		Version:     7,
		Fingerprint: 0xdeadbeefcafef00d,
		Nodes:       4,
		Disabled:    []bool{false, true, false, false, true, false, false, false, true},
		Unconverged: []int{2},
		Names:       []string{"(0, 1)", "(3, 2)", "inf"},
		Kept: []Announcement{
			{Prefix: rib.MakePrefix(10<<24, 8), Node: 0},
			{Prefix: rib.MakePrefix(10<<24|3, 32), Node: 3},
		},
		Suppressed: []Announcement{{Prefix: rib.MakePrefix(10<<24|1, 32), Node: 0}},
		Columns: []*rib.Column{
			mkColumn(0, true, [][]int32{{0}, {1, 0}, {2, 0, 3}, {1, 0}}),
			mkColumn(3, false, [][]int32{nil, {2, 3}, nil, {0}}),
		},
	}
}

func testDelta() *Delta {
	return &Delta{
		FromVersion: 7,
		Version:     8,
		Fingerprint: 0xdeadbeefcafef00d,
		Toggles:     []solve.ArcToggle{{Arc: 5, Down: true}, {Arc: 1, Down: false}},
		Unconverged: nil,
		NameBase:    3,
		NamesTail:   []string{"(4, 4)"},
		Scratch:     []*rib.Column{mkColumn(0, true, [][]int32{{0}, nil, {3, 0, 3}, {1, 0}})},
		Diffs: []ColumnDiff{
			{Dest: 3, Converged: true, Changes: []SlotChange{
				{Node: 0, Routed: true, W: 3, NextHop: []int32{1, 2}},
				{Node: 2, Routed: false},
			}},
		},
	}
}

func TestFullRoundTrip(t *testing.T) {
	f := testFull()
	frame := EncodeFull(f)
	rec, err := DecodeRecord(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Kind != KindFull {
		t.Fatalf("kind = %d, want %d", rec.Kind, KindFull)
	}
	if rec.WireBytes != len(frame) {
		t.Fatalf("WireBytes = %d, want %d", rec.WireBytes, len(frame))
	}
	if !reflect.DeepEqual(rec.Full, f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", rec.Full, f)
	}
	// NhOff never travels; the decoder must have reconstructed the
	// canonical offsets exactly.
	for i, c := range rec.Full.Columns {
		for u, s := range c.Slots {
			want := f.Columns[i].Slots[u]
			if s.NhOff != want.NhOff {
				t.Fatalf("column %d node %d NhOff = %d, want %d", c.Dest, u, s.NhOff, want.NhOff)
			}
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := testDelta()
	frame := EncodeDelta(d)
	rec, err := DecodeRecord(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Kind != KindDelta {
		t.Fatalf("kind = %d, want %d", rec.Kind, KindDelta)
	}
	if !reflect.DeepEqual(rec.Delta, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", rec.Delta, d)
	}
	if rec.Version() != 8 {
		t.Fatalf("Version() = %d, want 8", rec.Version())
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	frame := EncodeSubscribe(42)
	rec, err := DecodeRecord(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Kind != KindSubscribe || rec.SubscribeFrom != 42 {
		t.Fatalf("got kind %d from %d", rec.Kind, rec.SubscribeFrom)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame := EncodeFull(testFull())
	cases := map[string]func([]byte) []byte{
		"truncated frame":  func(b []byte) []byte { return b[:len(b)-5] },
		"truncated prefix": func(b []byte) []byte { return b[:3] },
		"flipped crc":      func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"flipped payload":  func(b []byte) []byte { b[20] ^= 0x40; return b },
		"bad format version": func(b []byte) []byte {
			b[4] = FormatVersion + 1
			return refresh(b)
		},
		"unknown kind": func(b []byte) []byte {
			b[5] = 99
			return refresh(b)
		},
		"trailing bytes": func(b []byte) []byte {
			// Grow the payload by four zero bytes (with a matching length
			// prefix and CRC) so only the semantic trailing-bytes check can
			// reject it.
			n := binary.LittleEndian.Uint32(b)
			grown := append(b[:4+n:4+n], 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(grown, n+4)
			return refresh(append(grown, 0, 0, 0, 0))
		},
		"oversized length prefix": func(b []byte) []byte {
			b[3] = 0xff
			return b
		},
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), frame...))
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}
}

// refresh recomputes a frame's CRC after deliberate payload edits, so
// the test exercises the semantic check rather than the checksum.
func refresh(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	binary.LittleEndian.PutUint32(b[4+n:], crc32.ChecksumIEEE(b[4:4+n]))
	return b
}

func TestDecodeRejectsBadColumns(t *testing.T) {
	cases := map[string]*Full{
		"pool length mismatch": {Nodes: 2, Columns: []*rib.Column{{
			Dest:  0,
			Slots: []rib.EntrySlot{{Routed: true}, {Routed: true, NhLen: 2}},
			Pool:  []int32{0}, // span sum says 2
		}}},
		"next hop out of range": {Nodes: 2, Columns: []*rib.Column{{
			Dest:  0,
			Slots: []rib.EntrySlot{{Routed: true}, {Routed: true, NhLen: 1}},
			Pool:  []int32{7},
		}}},
		"dest out of range": {Nodes: 2, Columns: []*rib.Column{{
			Dest:  5,
			Slots: []rib.EntrySlot{{}, {}},
		}}},
		"slot count mismatch": {Nodes: 3, Columns: []*rib.Column{{
			Dest:  0,
			Slots: []rib.EntrySlot{{Routed: true}},
		}}},
	}
	for name, f := range cases {
		if _, err := DecodeRecord(EncodeFull(f)); err == nil {
			t.Errorf("%s: decode accepted invalid column", name)
		}
	}
}

func TestDecodeRejectsNonAscendingDiff(t *testing.T) {
	d := testDelta()
	d.Diffs[0].Changes[1].Node = 0 // duplicate of change 0
	if _, err := DecodeRecord(EncodeDelta(d)); err == nil {
		t.Fatal("decode accepted non-ascending diff nodes")
	}
}

func TestReadRecordStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(EncodeFull(testFull()))
	buf.Write(EncodeDelta(testDelta()))
	br := bufio.NewReader(&buf)
	r1, err := ReadRecord(br)
	if err != nil || r1.Kind != KindFull {
		t.Fatalf("first record: %v kind %d", err, r1.Kind)
	}
	r2, err := ReadRecord(br)
	if err != nil || r2.Kind != KindDelta {
		t.Fatalf("second record: %v kind %d", err, r2.Kind)
	}
	if _, err := ReadRecord(br); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestReadRecordBoundsAllocation(t *testing.T) {
	// A stream claiming a 200MB payload but carrying 10 bytes must fail
	// on short read, not allocate 200MB up front. Run with a tight
	// allocation probe: the chunked reader allocates at most one 64KB
	// chunk before the read fails.
	hdr := []byte{0, 0, 0, 0x0c} // 0x0c000000 = 201326592 bytes claimed
	stream := append(hdr, make([]byte, 10)...)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadRecord(bufio.NewReader(bytes.NewReader(stream))); err == nil {
			t.Fatal("short stream decoded")
		}
	})
	// bufio.Reader + one chunk + error wrapping stay far below the
	// hundreds of allocations a full-size buffer grow would need.
	if allocs > 20 {
		t.Fatalf("short oversized frame cost %.0f allocs", allocs)
	}
}

func TestChecksumTracksContent(t *testing.T) {
	colsA := map[int]*rib.Column{
		0: mkColumn(0, true, [][]int32{{0}, {1, 0}}),
		1: mkColumn(1, true, [][]int32{{2, 1}, {0}}),
	}
	colsB := map[int]*rib.Column{
		0: mkColumn(0, true, [][]int32{{0}, {1, 0}}),
		1: mkColumn(1, true, [][]int32{{2, 1}, {0}}),
	}
	dis := []bool{false, true}
	if Checksum(dis, colsA) != Checksum(dis, colsB) {
		t.Fatal("identical content hashed differently")
	}
	colsB[1].Pool[0] = 0
	if Checksum(dis, colsA) == Checksum(dis, colsB) {
		t.Fatal("pool change not reflected in checksum")
	}
	if Checksum([]bool{true, true}, colsA) == Checksum(dis, colsA) {
		t.Fatal("disabled mask change not reflected in checksum")
	}
}

func TestDecodeErrorsMentionOffset(t *testing.T) {
	f := testFull()
	f.Columns[0].Pool = f.Columns[0].Pool[:len(f.Columns[0].Pool)-1]
	_, err := DecodeRecord(EncodeFull(f))
	if err == nil {
		t.Fatal("decode accepted pool/span mismatch")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %q does not locate the fault", err)
	}
}
