package replica

import (
	"reflect"
	"testing"

	"metarouting/internal/solve"
)

func bootstrap(t *testing.T) *State {
	t.Helper()
	st, err := ApplyFull(testFull())
	if err != nil {
		t.Fatalf("ApplyFull: %v", err)
	}
	return st
}

func TestApplyFull(t *testing.T) {
	st := bootstrap(t)
	if st.Version != 7 || st.Nodes != 4 || len(st.Cols) != 2 {
		t.Fatalf("state = v%d nodes %d cols %d", st.Version, st.Nodes, len(st.Cols))
	}
	if st.WeightName(1) != "(3, 2)" || st.WeightName(9) != "?" || st.WeightName(-1) != "?" {
		t.Fatalf("weight names wrong: %q %q %q", st.WeightName(1), st.WeightName(9), st.WeightName(-1))
	}
}

func TestApplyFullRejectsDuplicates(t *testing.T) {
	f := testFull()
	f.Columns = append(f.Columns, f.Columns[0])
	if _, err := ApplyFull(f); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestApplyDeltaMergesDiff(t *testing.T) {
	st := bootstrap(t)
	next, err := ApplyDelta(st, testDelta())
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if next.Version != 8 {
		t.Fatalf("version = %d, want 8", next.Version)
	}
	// Toggles: arc 5 down, arc 1 up.
	if !next.Disabled[5] || next.Disabled[1] {
		t.Fatalf("disabled mask not toggled: %v", next.Disabled)
	}
	// Scratch replaced column 0 wholesale (adopted columns are
	// normalized, so the expectation is too).
	want0 := mkColumn(0, true, [][]int32{{0}, nil, {3, 0, 3}, {1, 0}})
	want0.Normalize()
	if !reflect.DeepEqual(next.Cols[0], want0) {
		t.Fatalf("scratch column:\n got %+v\nwant %+v", next.Cols[0], want0)
	}
	// Diff rewrote column 3: node 0 gains {w 3, hops 1 2}, node 2 stays
	// unrouted (it already was), nodes 1 and 3 transplant, and the pool
	// is rebuilt in canonical order — byte-identical to a fresh build.
	want3 := mkColumn(3, true, [][]int32{{3, 1, 2}, {2, 3}, nil, {0}})
	want3.Normalize()
	if !reflect.DeepEqual(next.Cols[3], want3) {
		t.Fatalf("diffed column:\n got %+v\nwant %+v", next.Cols[3], want3)
	}
	// Names tail appended past the bootstrap's table.
	if got := next.WeightName(3); got != "(4, 4)" {
		t.Fatalf("appended name = %q", got)
	}
	// The base state must be untouched (immutable snapshots).
	if st.Version != 7 || st.Disabled[5] || st.Cols[3].Slots[0].Routed {
		t.Fatal("ApplyDelta mutated its input state")
	}
}

func TestApplyDeltaStaleSkips(t *testing.T) {
	st := bootstrap(t)
	d := testDelta()
	d.FromVersion, d.Version = 6, 7
	next, err := ApplyDelta(st, d)
	if err != nil || next != nil {
		t.Fatalf("stale delta: next=%v err=%v, want nil/nil", next, err)
	}
}

func TestApplyDeltaRejectsGapAndFingerprint(t *testing.T) {
	st := bootstrap(t)
	gap := testDelta()
	gap.FromVersion, gap.Version = 9, 10
	if _, err := ApplyDelta(st, gap); err == nil {
		t.Fatal("version gap accepted")
	}
	fp := testDelta()
	fp.Fingerprint++
	if _, err := ApplyDelta(st, fp); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if _, err := ApplyDelta(nil, testDelta()); err == nil {
		t.Fatal("delta before bootstrap accepted")
	}
}

func TestApplyDeltaOverlappingNamesTail(t *testing.T) {
	// A follower that bootstrapped from a full snapshot already carrying
	// names the delta tail repeats must append only the new suffix.
	st := bootstrap(t)
	d := testDelta()
	d.NameBase = 2
	d.NamesTail = []string{"inf", "(4, 4)"} // index 2 already known
	next, err := ApplyDelta(st, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	want := []string{"(0, 1)", "(3, 2)", "inf", "(4, 4)"}
	if !reflect.DeepEqual(next.Names, want) {
		t.Fatalf("names = %v, want %v", next.Names, want)
	}
}

func TestApplyDeltaSharesUntouchedColumns(t *testing.T) {
	st := bootstrap(t)
	d := &Delta{
		FromVersion: 7, Version: 8, Fingerprint: st.Fingerprint,
		Toggles:  []solve.ArcToggle{{Arc: 0, Down: true}},
		NameBase: len(st.Names),
		Diffs: []ColumnDiff{{Dest: 0, Converged: true, Changes: []SlotChange{
			{Node: 1, Routed: true, W: 2, NextHop: []int32{0}},
		}}},
	}
	next, err := ApplyDelta(st, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if next.Cols[3] != st.Cols[3] {
		t.Fatal("untouched column was copied, not shared")
	}
	if next.Cols[0] == st.Cols[0] {
		t.Fatal("diffed column was shared, not rebuilt")
	}
}

func TestApplyDeltaRejectsBadDiffs(t *testing.T) {
	st := bootstrap(t)
	unknown := testDelta()
	unknown.Diffs[0].Dest = 2 // no such column
	if _, err := ApplyDelta(st, unknown); err == nil {
		t.Fatal("diff for unknown destination accepted")
	}
	oob := testDelta()
	oob.Diffs[0].Changes[1].Node = 99
	if _, err := ApplyDelta(st, oob); err == nil {
		t.Fatal("out-of-range change node accepted")
	}
	badTog := testDelta()
	badTog.Toggles[0].Arc = len(st.Disabled)
	if _, err := ApplyDelta(st, badTog); err == nil {
		t.Fatal("out-of-range toggle arc accepted")
	}
	badScr := testDelta()
	badScr.Scratch[0] = mkColumn(2, true, [][]int32{{0}, nil, nil, nil})
	if _, err := ApplyDelta(st, badScr); err == nil {
		t.Fatal("scratch column for unknown destination accepted")
	}
}

func TestStateChecksumMatchesPackageChecksum(t *testing.T) {
	st := bootstrap(t)
	if st.Checksum() != Checksum(st.Disabled, st.Cols) {
		t.Fatal("State.Checksum disagrees with package Checksum")
	}
}
