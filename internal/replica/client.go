package replica

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"
)

// Subscribe maintains a follower's subscription to a leader publisher
// at addr: dial, announce the follower's current version, apply the
// streamed records, and on any disconnect or apply failure back off,
// redial and resubscribe. current is consulted on every (re)connect so
// catch-up resumes from wherever the follower actually is; after an
// apply error the next subscribe requests version 0, forcing a clean
// full-snapshot bootstrap. Subscribe returns only when ctx is done.
func Subscribe(ctx context.Context, addr string, current func() uint64, apply func(*Record) error) error {
	backoff := 100 * time.Millisecond
	const maxBackoff = 3 * time.Second
	forceFull := false
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		from := uint64(0)
		if !forceFull {
			from = current()
		}
		err := subscribeOnce(ctx, addr, from, apply, func() { backoff = 100 * time.Millisecond })
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// An apply error means this session's state can no longer extend
		// the stream (gap, fingerprint change); rebootstrap from scratch.
		forceFull = err != nil && !isConnError(err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// connError tags transport-level failures, which resubscribe from the
// follower's current version rather than forcing a full bootstrap.
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

func isConnError(err error) bool {
	_, ok := err.(*connError)
	return ok
}

// subscribeOnce runs a single connect-and-stream session. onRecord
// resets the caller's backoff once records flow.
func subscribeOnce(ctx context.Context, addr string, from uint64, apply func(*Record) error, onRecord func()) error {
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return &connError{err}
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if _, err := conn.Write(EncodeSubscribe(from)); err != nil {
		return &connError{fmt.Errorf("replica: subscribe handshake: %w", err)}
	}
	br := bufio.NewReader(conn)
	for {
		rec, err := ReadRecord(br)
		if err != nil {
			return &connError{err}
		}
		onRecord()
		if err := apply(rec); err != nil {
			return err
		}
	}
}
