package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ringSize is how many recent framed records the publisher retains for
// delta catch-up; a subscriber further behind bootstraps from a full
// snapshot instead.
const ringSize = 512

// subBuffer is the per-subscriber record queue depth. A subscriber
// that falls further behind than this is dropped (its connection
// closes) and re-bootstraps on reconnect — slow readers must never
// stall the leader's swap path.
const subBuffer = 64

type ringEntry struct {
	version uint64
	frame   []byte
}

type subscriber struct {
	ch   chan []byte
	dead bool
}

// Publisher fans the leader's record stream out to subscribers: every
// snapshot swap hands it one framed record, which it appends to the
// optional on-disk log, retains in a catch-up ring, and broadcasts to
// every live TCP subscriber. It implements the serve package's record
// sink contract (PublishRecord).
type Publisher struct {
	// source produces a framed full snapshot of the leader's current
	// state, for subscribers too far behind the ring. It is called
	// OUTSIDE the publisher mutex: the source takes the leader's own
	// lock, and the leader calls PublishRecord while holding it, so
	// calling source under p.mu would invert that order.
	source func() (version uint64, frame []byte, err error)

	mu     sync.Mutex
	ring   []ringEntry
	head   uint64
	subs   map[*subscriber]struct{}
	closed bool

	log *Log
	ln  net.Listener
	wg  sync.WaitGroup
}

// NewPublisher builds a publisher over the given full-snapshot source.
// log may be nil (no on-disk record log).
func NewPublisher(source func() (uint64, []byte, error), log *Log) *Publisher {
	return &Publisher{source: source, subs: make(map[*subscriber]struct{}), log: log}
}

// PublishRecord ships one swap's framed record: log, ring, broadcast.
// It never blocks on a subscriber — one that cannot keep up is dropped.
func (p *Publisher) PublishRecord(version uint64, frame []byte) error {
	var logErr error
	if p.log != nil {
		logErr = p.log.Append(frame)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.head = version
	p.ring = append(p.ring, ringEntry{version: version, frame: frame})
	if len(p.ring) > ringSize {
		p.ring = p.ring[len(p.ring)-ringSize:]
	}
	for s := range p.subs {
		if s.dead {
			continue
		}
		select {
		case s.ch <- frame:
		default:
			s.dead = true
			close(s.ch)
			delete(p.subs, s)
		}
	}
	return logErr
}

// SetLogMaxBytes arms size-based rotation on the publisher's on-disk
// log (a no-op without one): once the live replica.log passes n bytes
// the leader retires it to a numbered segment and reseeds the fresh
// file with a full checkpoint. n ≤ 0 disables rotation.
func (p *Publisher) SetLogMaxBytes(n int64) {
	if p.log != nil {
		p.log.SetMaxBytes(n)
	}
}

// RotateDue implements the serve package's log-rotation surface: true
// when the on-disk log has outgrown its armed byte cap.
func (p *Publisher) RotateDue() bool {
	return p.log != nil && p.log.RotateDue()
}

// RotateLog retires the live log segment, seeding its successor with
// the provided full-snapshot frame. Called by the leader under its
// writer lock, like PublishRecord.
func (p *Publisher) RotateLog(version uint64, full []byte) error {
	if p.log == nil {
		return nil
	}
	return p.log.Rotate(version, full)
}

// Head returns the newest published version.
func (p *Publisher) Head() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.head
}

// Serve accepts subscribers on ln until Close. Each connection sends
// one Subscribe record; the publisher answers with either the delta
// tail from the subscriber's version (when the ring still covers it)
// or a fresh full snapshot, then streams records as they are
// published.
func (p *Publisher) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("replica: publisher closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// handle serves one subscriber connection.
func (p *Publisher) handle(conn net.Conn) {
	defer conn.Close()
	rec, err := ReadRecord(bufio.NewReader(conn))
	if err != nil || rec.Kind != KindSubscribe {
		return
	}
	from := rec.SubscribeFrom

	// Register first, then materialize catch-up: records published from
	// this point buffer in the channel, and the stale-version skip on
	// the follower absorbs any overlap with the catch-up payload.
	sub := &subscriber{ch: make(chan []byte, subBuffer)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.subs[sub] = struct{}{}
	var tail [][]byte
	needFull := true
	if from == p.head {
		needFull = false
	} else if from < p.head {
		// The ring covers from+1..head iff its oldest retained version is
		// ≤ from+1 (versions in the ring are consecutive).
		if len(p.ring) > 0 && p.ring[0].version <= from+1 {
			needFull = false
			for _, e := range p.ring {
				if e.version > from {
					tail = append(tail, e.frame)
				}
			}
		}
	}
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		if !sub.dead {
			sub.dead = true
			close(sub.ch)
			delete(p.subs, sub)
		}
		p.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	if needFull {
		_, frame, err := p.source()
		if err != nil {
			return
		}
		tail = [][]byte{frame}
	}
	for _, frame := range tail {
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
	if err := w.Flush(); err != nil {
		return
	}
	for frame := range sub.ch {
		if _, err := w.Write(frame); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the accept loop, disconnects subscribers, and waits for
// connection handlers to finish.
func (p *Publisher) Close() error {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for s := range p.subs {
		if !s.dead {
			s.dead = true
			close(s.ch)
		}
		delete(p.subs, s)
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}
