package replica

import (
	"fmt"
	"hash/crc32"
	"sort"

	"metarouting/internal/rib"
)

// State is a follower's materialized view of the leader's snapshot at
// one version. It is immutable once built: applying a record produces a
// fresh State that shares every untouched column pointer with its
// predecessor, mirroring the leader's own RCU snapshot discipline.
type State struct {
	Version     uint64
	Fingerprint uint64
	Nodes       int
	Disabled    []bool
	Unconverged []int
	Names       []string
	Kept        []Announcement
	Suppressed  []Announcement
	// Cols maps destination → column, sharing pointers across versions.
	Cols map[int]*rib.Column
}

// ApplyFull materializes a full snapshot record into a State.
func ApplyFull(f *Full) (*State, error) {
	st := &State{
		Version:     f.Version,
		Fingerprint: f.Fingerprint,
		Nodes:       f.Nodes,
		Disabled:    append([]bool(nil), f.Disabled...),
		Unconverged: append([]int(nil), f.Unconverged...),
		Names:       append([]string(nil), f.Names...),
		Kept:        append([]Announcement(nil), f.Kept...),
		Suppressed:  append([]Announcement(nil), f.Suppressed...),
		Cols:        make(map[int]*rib.Column, len(f.Columns)),
	}
	for _, c := range f.Columns {
		if len(c.Slots) != f.Nodes {
			return nil, fmt.Errorf("replica: column %d has %d slots, snapshot has %d nodes", c.Dest, len(c.Slots), f.Nodes)
		}
		if _, dup := st.Cols[c.Dest]; dup {
			return nil, fmt.Errorf("replica: duplicate column for destination %d", c.Dest)
		}
		c.Normalize()
		st.Cols[c.Dest] = c
	}
	return st, nil
}

// ApplyDelta applies a delta record on top of cur, returning the new
// State. A stale delta (Version ≤ cur.Version — the publisher ring can
// replay across a resubscribe) returns (nil, nil): skip, no error. A
// gap (FromVersion ≠ cur.Version) or fingerprint mismatch errors; the
// caller is expected to fall back to a full bootstrap.
func ApplyDelta(cur *State, d *Delta) (*State, error) {
	if cur == nil {
		return nil, fmt.Errorf("replica: delta %d→%d before any full snapshot", d.FromVersion, d.Version)
	}
	if d.Version <= cur.Version {
		return nil, nil
	}
	if d.FromVersion != cur.Version {
		return nil, fmt.Errorf("replica: delta applies to version %d, state is at %d", d.FromVersion, cur.Version)
	}
	if d.Fingerprint != cur.Fingerprint {
		return nil, fmt.Errorf("replica: delta fingerprint %016x does not match state %016x", d.Fingerprint, cur.Fingerprint)
	}
	if d.NameBase > len(cur.Names) {
		return nil, fmt.Errorf("replica: delta name base %d beyond known %d names", d.NameBase, len(cur.Names))
	}
	st := &State{
		Version:     d.Version,
		Fingerprint: cur.Fingerprint,
		Nodes:       cur.Nodes,
		Disabled:    append([]bool(nil), cur.Disabled...),
		Unconverged: append([]int(nil), d.Unconverged...),
		Names:       cur.Names,
		Kept:        cur.Kept,
		Suppressed:  cur.Suppressed,
		Cols:        make(map[int]*rib.Column, len(cur.Cols)),
	}
	// The names table is append-only on the leader; the delta tail may
	// overlap what a full bootstrap already carried, so only append the
	// genuinely new suffix.
	if end := d.NameBase + len(d.NamesTail); end > len(cur.Names) {
		st.Names = append(append([]string(nil), cur.Names...), d.NamesTail[len(cur.Names)-d.NameBase:]...)
	}
	for _, t := range d.Toggles {
		if t.Arc < 0 || t.Arc >= len(st.Disabled) {
			return nil, fmt.Errorf("replica: toggle arc %d out of range [0,%d)", t.Arc, len(st.Disabled))
		}
		st.Disabled[t.Arc] = t.Down
	}
	for dest, c := range cur.Cols {
		st.Cols[dest] = c
	}
	for _, c := range d.Scratch {
		if len(c.Slots) != st.Nodes {
			return nil, fmt.Errorf("replica: scratch column %d has %d slots, state has %d nodes", c.Dest, len(c.Slots), st.Nodes)
		}
		if _, known := cur.Cols[c.Dest]; !known {
			return nil, fmt.Errorf("replica: scratch column for unknown destination %d", c.Dest)
		}
		c.Normalize()
		st.Cols[c.Dest] = c
	}
	for i := range d.Diffs {
		nc, err := applyDiff(cur.Cols[d.Diffs[i].Dest], &d.Diffs[i], st.Nodes)
		if err != nil {
			return nil, err
		}
		st.Cols[nc.Dest] = nc
	}
	return st, nil
}

// applyDiff merges one destination's touched-entry set into its
// previous column, rebuilding the pool in canonical ascending-node
// order so the result is byte-identical to the leader's column.
func applyDiff(prev *rib.Column, diff *ColumnDiff, nodes int) (*rib.Column, error) {
	if prev == nil {
		return nil, fmt.Errorf("replica: diff for unknown destination %d", diff.Dest)
	}
	if len(prev.Slots) != nodes {
		return nil, fmt.Errorf("replica: diff base column %d has %d slots, state has %d nodes", diff.Dest, len(prev.Slots), nodes)
	}
	c := &rib.Column{Dest: diff.Dest, Converged: diff.Converged, Slots: make([]rib.EntrySlot, nodes)}
	c.Pool = make([]int32, 0, len(prev.Pool))
	next := 0
	for u := 0; u < nodes; u++ {
		if next < len(diff.Changes) && diff.Changes[next].Node == u {
			ch := &diff.Changes[next]
			next++
			if !ch.Routed {
				continue
			}
			if u == diff.Dest && len(ch.NextHop) != 0 {
				return nil, fmt.Errorf("replica: diff gives destination %d a next-hop set", diff.Dest)
			}
			c.Slots[u] = rib.EntrySlot{W: ch.W, Routed: true, NhOff: int32(len(c.Pool)), NhLen: int32(len(ch.NextHop))}
			c.Pool = append(c.Pool, ch.NextHop...)
			continue
		}
		s := prev.Slots[u]
		if !s.Routed {
			continue
		}
		c.Slots[u] = rib.EntrySlot{W: s.W, Routed: true, NhOff: int32(len(c.Pool)), NhLen: s.NhLen}
		c.Pool = append(c.Pool, prev.Pool[s.NhOff:s.NhOff+s.NhLen]...)
	}
	if next != len(diff.Changes) {
		return nil, fmt.Errorf("replica: diff for destination %d has change node %d out of range [0,%d)", diff.Dest, diff.Changes[next].Node, nodes)
	}
	c.Normalize()
	return c, nil
}

// WeightName renders weight index w from the state's name table, or
// "?" when the index is beyond what the stream has carried so far.
func (s *State) WeightName(w int32) string {
	if w < 0 || int(w) >= len(s.Names) {
		return "?"
	}
	return s.Names[w]
}

// Checksum digests the routing content of a snapshot — every column in
// ascending destination order plus the disabled mask — with CRC32. The
// leader and a caught-up follower at the same version must agree; the
// CI smoke compares exactly this value across the two processes.
func Checksum(disabled []bool, cols map[int]*rib.Column) uint32 {
	dests := make([]int, 0, len(cols))
	for d := range cols {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	var w wbuf
	w.bits(disabled)
	for _, d := range dests {
		w.column(cols[d])
	}
	return crc32.ChecksumIEEE(w.b)
}

// Checksum digests the state's routing content; see the package-level
// Checksum.
func (s *State) Checksum() uint32 {
	return Checksum(s.Disabled, s.Cols)
}
