package replica

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startPublisher boots a publisher over a synthetic record sequence on
// a loopback listener and returns its address. The source serves a
// full snapshot at whatever head the caller has published so far.
func startPublisher(t *testing.T, p *Publisher) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go p.Serve(ln)
	t.Cleanup(func() { p.Close() })
	return ln.Addr().String()
}

// fullAt fabricates a full record frame at the given version.
func fullAt(version uint64) []byte {
	f := testFull()
	f.Version = version
	return EncodeFull(f)
}

// deltaAt fabricates a consecutive delta record frame.
func deltaAt(version uint64) []byte {
	d := testDelta()
	d.FromVersion, d.Version = version-1, version
	return EncodeDelta(d)
}

func collect(t *testing.T, addr string, from uint64, want int) []uint64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	versions := make([]uint64, 0, want)
	err := Subscribe(ctx, addr, func() uint64 { return from }, func(r *Record) error {
		versions = append(versions, r.Version())
		if len(versions) == want {
			cancel()
		}
		return nil
	})
	if len(versions) != want {
		t.Fatalf("collected %d records %v (want %d): %v", len(versions), versions, want, err)
	}
	return versions
}

func TestPublisherRingCatchUp(t *testing.T) {
	var head atomic.Uint64
	p := NewPublisher(func() (uint64, []byte, error) {
		v := head.Load()
		return v, fullAt(v), nil
	}, nil)
	head.Store(1)
	p.PublishRecord(1, fullAt(1))
	for v := uint64(2); v <= 5; v++ {
		head.Store(v)
		p.PublishRecord(v, deltaAt(v))
	}
	addr := startPublisher(t, p)

	// A subscriber at version 2 is inside the ring: it gets the delta
	// tail 3..5, no full snapshot.
	got := collect(t, addr, 2, 3)
	for i, v := range []uint64{3, 4, 5} {
		if got[i] != v {
			t.Fatalf("ring tail = %v, want [3 4 5]", got)
		}
	}
	if p.Head() != 5 {
		t.Fatalf("head = %d, want 5", p.Head())
	}
}

func TestPublisherFullBootstrap(t *testing.T) {
	var head atomic.Uint64
	var sourceCalls atomic.Int32
	p := NewPublisher(func() (uint64, []byte, error) {
		sourceCalls.Add(1)
		v := head.Load()
		return v, fullAt(v), nil
	}, nil)
	// Publish far more records than the ring retains so version 0 is
	// unreachable by tail replay.
	head.Store(1)
	p.PublishRecord(1, fullAt(1))
	for v := uint64(2); v <= uint64(ringSize+10); v++ {
		head.Store(v)
		p.PublishRecord(v, deltaAt(v))
	}
	addr := startPublisher(t, p)

	got := collect(t, addr, 0, 1)
	if got[0] != uint64(ringSize+10) {
		t.Fatalf("bootstrap served version %d, want head %d", got[0], ringSize+10)
	}
	if sourceCalls.Load() != 1 {
		t.Fatalf("source called %d times, want 1", sourceCalls.Load())
	}

	// A subscriber already at head needs nothing until the next publish.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gotCh := make(chan uint64, 1)
	go Subscribe(ctx, addr, func() uint64 { return head.Load() }, func(r *Record) error {
		gotCh <- r.Version()
		cancel()
		return nil
	})
	time.Sleep(50 * time.Millisecond)
	next := head.Load() + 1
	head.Store(next)
	p.PublishRecord(next, deltaAt(next))
	select {
	case v := <-gotCh:
		if v != next {
			t.Fatalf("live record version %d, want %d", v, next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live record never arrived")
	}
}

func TestSubscribeReconnects(t *testing.T) {
	var head atomic.Uint64
	p := NewPublisher(func() (uint64, []byte, error) {
		v := head.Load()
		return v, fullAt(v), nil
	}, nil)
	head.Store(1)
	p.PublishRecord(1, fullAt(1))
	addr := startPublisher(t, p)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var current atomic.Uint64
	done := make(chan struct{})
	go Subscribe(ctx, addr, current.Load, func(r *Record) error {
		if v := r.Version(); v > current.Load() {
			current.Store(v)
		}
		if current.Load() >= 3 {
			select {
			case <-done:
			default:
				close(done)
			}
		}
		return nil
	})

	// Wait for the bootstrap, then sever every subscriber and publish
	// more records: the client must redial, resubscribe at its current
	// version, and pick up the tail.
	waitFor(t, func() bool { return current.Load() >= 1 })
	p.mu.Lock()
	for s := range p.subs {
		s.dead = true
		close(s.ch)
		delete(p.subs, s)
	}
	p.mu.Unlock()
	for v := uint64(2); v <= 3; v++ {
		head.Store(v)
		p.PublishRecord(v, deltaAt(v))
	}
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatalf("client stuck at version %d after reconnect", current.Load())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPublisherDropsSlowSubscriber(t *testing.T) {
	var head atomic.Uint64
	p := NewPublisher(func() (uint64, []byte, error) {
		v := head.Load()
		return v, fullAt(v), nil
	}, nil)
	head.Store(1)
	p.PublishRecord(1, fullAt(1))
	addr := startPublisher(t, p)

	// Dial raw and never read: once the TCP window and the per-sub
	// buffer fill, the publisher must drop the subscriber rather than
	// block its publish path.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(EncodeSubscribe(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		p.mu.Lock()
		n := len(p.subs)
		p.mu.Unlock()
		return n == 1
	})
	done := make(chan struct{})
	go func() {
		for v := uint64(2); v <= uint64(subBuffer)*8; v++ {
			head.Store(v)
			p.PublishRecord(v, deltaAt(v))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish path blocked on a slow subscriber")
	}
	waitFor(t, func() bool {
		p.mu.Lock()
		n := len(p.subs)
		p.mu.Unlock()
		return n == 0
	})
}
