// Package replica is the snapshot replication layer: a versioned,
// length-prefixed binary wire format for full route-table snapshots and
// snapshot deltas, an append-only event log, and the leader/follower
// transport that extends the deterministic per-destination DBF
// computations (Daggitt & Griffin, PAPERS.md) across processes. The
// leader records every snapshot swap as either a full snapshot or the
// delta touched-entry set; a follower that applies the records in order
// reconstructs the leader's arena columns byte for byte, because both
// sides lay pools out in the same canonical ascending-node order. That
// makes "follower == leader at every version" a testable invariant (the
// serve differential storm test asserts exactly that) instead of a
// hope.
//
// Wire format. Every record is one frame:
//
//	| payloadLen u32 | payload | crc32(payload) u32 |
//
// with payload = | formatVersion u8 | kind u8 | body |, all integers
// little-endian. The CRC is IEEE crc32 over the payload, so a flipped
// bit anywhere — version byte included — fails the frame before any
// body decoding runs. Bodies are bounds-checked against the received
// byte count before any count-sized allocation, so truncated or
// hostile frames error without panicking or over-allocating
// (FuzzDecodeRecord hammers exactly these properties).
//
// Columns travel without their NhOff fields: every column builder in
// internal/rib appends next-hop spans in ascending node order, so the
// offsets are reproducible from the span lengths alone. The decoder
// recomputes them and cross-checks the pool length, which both saves
// four bytes a slot and turns the canonical-layout assumption into a
// checked invariant.
package replica

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"metarouting/internal/rib"
	"metarouting/internal/solve"
)

// FormatVersion is the wire format generation; decoders reject frames
// carrying any other value.
const FormatVersion = 1

// Record kinds.
const (
	// KindFull is a complete snapshot: disabled mask, weight-name table,
	// prefix announcements and every destination column.
	KindFull byte = 1
	// KindDelta is one swap's touched-entry set: the arc toggles, the
	// per-destination slot diffs (or full columns where the diff would
	// not pay) and the weight-name table tail.
	KindDelta byte = 2
	// KindSubscribe is the client → leader handshake carrying the
	// follower's current version (0 = bootstrap from a full snapshot).
	KindSubscribe byte = 3
)

// maxFrame bounds a frame payload; larger length prefixes are rejected
// before any allocation.
const maxFrame = 1 << 28

// Announcement is one prefix announcement on the wire: the prefix and
// its anchor node. Origin weights do not travel — a follower never
// re-solves, so it only needs the longest-match mapping onto columns.
type Announcement struct {
	Prefix rib.Prefix
	Node   int
}

// Full is a complete snapshot record.
type Full struct {
	// Version is the leader snapshot version the record captures.
	Version uint64
	// Fingerprint identifies the leader's base topology and algebra;
	// followers refuse to mix records from different fingerprints.
	Fingerprint uint64
	// Nodes is the node count every column's slot slice must match.
	Nodes int
	// Disabled is the per-arc failure mask at this version.
	Disabled []bool
	// Unconverged lists destinations whose fixpoint did not settle.
	Unconverged []int
	// Names maps engine weight indices to their formatted values, so a
	// follower renders weights without holding the leader's intern
	// table. The table is append-only across a record stream.
	Names []string
	// Kept and Suppressed mirror the leader's aggregated prefix table in
	// its exact insertion order, so the rebuilt LPM trie answers
	// identically node for node.
	Kept, Suppressed []Announcement
	// Columns holds every destination column, ascending by destination.
	Columns []*rib.Column
}

// SlotChange is one changed route entry inside a ColumnDiff.
type SlotChange struct {
	Node    int
	Routed  bool
	W       int32
	NextHop []int32
}

// ColumnDiff is one destination's touched-entry set: the slots whose
// content changed across the swap, ascending by node. Applying it to
// the previous column in canonical layout reproduces the leader's new
// column byte for byte.
type ColumnDiff struct {
	Dest      int
	Converged bool
	Changes   []SlotChange
}

// Delta is one snapshot swap's record.
type Delta struct {
	// FromVersion is the version the delta applies on top of; Version is
	// the resulting one.
	FromVersion, Version uint64
	Fingerprint          uint64
	// Toggles is the coalesced arc state change of the swap; followers
	// apply it to their disabled mask.
	Toggles []solve.ArcToggle
	// Unconverged is the full unconverged list at Version.
	Unconverged []int
	// NameBase/NamesTail extend the follower's weight-name table:
	// NamesTail holds names for indices [NameBase, NameBase+len).
	NameBase  int
	NamesTail []string
	// Scratch carries full columns for destinations whose diff would
	// have been larger than the column itself.
	Scratch []*rib.Column
	// Diffs carries the touched-entry sets, one per delta-encoded
	// destination.
	Diffs []ColumnDiff
}

// Record is one decoded frame.
type Record struct {
	Kind byte
	// WireBytes is the full frame size including header and CRC — the
	// bytes-on-wire reading the replication histograms observe.
	WireBytes int

	Full          *Full
	Delta         *Delta
	SubscribeFrom uint64
}

// Version returns the snapshot version a full or delta record produces
// (0 for subscribe records).
func (r *Record) Version() uint64 {
	switch r.Kind {
	case KindFull:
		return r.Full.Version
	case KindDelta:
		return r.Delta.Version
	}
	return 0
}

// ---------------------------------------------------------------------
// Encoding

// wbuf is a little-endian append buffer.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i32(v int32)  { w.u32(uint32(v)) }
func (w *wbuf) bool(v bool)  { w.u8(map[bool]byte{false: 0, true: 1}[v]) }
func (w *wbuf) str(s string) { w.u32(uint32(len(s))); w.b = append(w.b, s...) }
func (w *wbuf) bits(v []bool) {
	w.u32(uint32(len(v)))
	var cur byte
	for i, b := range v {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			w.u8(cur)
			cur = 0
		}
	}
	if len(v)&7 != 0 {
		w.u8(cur)
	}
}

func (w *wbuf) ints(v []int) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(int32(x))
	}
}

func (w *wbuf) column(c *rib.Column) {
	w.u32(uint32(c.Dest))
	w.bool(c.Converged)
	w.u32(uint32(len(c.Slots)))
	for i := range c.Slots {
		s := &c.Slots[i]
		if !s.Routed {
			w.u8(0)
			continue
		}
		w.u8(1)
		w.i32(s.W)
		w.u32(uint32(s.NhLen))
	}
	w.u32(uint32(len(c.Pool)))
	for _, v := range c.Pool {
		w.i32(v)
	}
}

func (w *wbuf) announcements(as []Announcement) {
	w.u32(uint32(len(as)))
	for _, a := range as {
		w.u32(a.Prefix.Addr)
		w.u8(a.Prefix.Len)
		w.u32(uint32(a.Node))
	}
}

// frame wraps a payload body in the record frame.
func frame(kind byte, body []byte) []byte {
	payload := make([]byte, 0, len(body)+2)
	payload = append(payload, FormatVersion, kind)
	payload = append(payload, body...)
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// EncodeFull frames a full snapshot record.
func EncodeFull(f *Full) []byte {
	var w wbuf
	w.u64(f.Version)
	w.u64(f.Fingerprint)
	w.u32(uint32(f.Nodes))
	w.bits(f.Disabled)
	w.ints(f.Unconverged)
	w.u32(uint32(len(f.Names)))
	for _, s := range f.Names {
		w.str(s)
	}
	w.announcements(f.Kept)
	w.announcements(f.Suppressed)
	w.u32(uint32(len(f.Columns)))
	for _, c := range f.Columns {
		w.column(c)
	}
	return frame(KindFull, w.b)
}

// EncodeDelta frames a snapshot delta record.
func EncodeDelta(d *Delta) []byte {
	var w wbuf
	w.u64(d.FromVersion)
	w.u64(d.Version)
	w.u64(d.Fingerprint)
	w.u32(uint32(len(d.Toggles)))
	for _, t := range d.Toggles {
		w.u32(uint32(t.Arc))
		w.bool(t.Down)
	}
	w.ints(d.Unconverged)
	w.u32(uint32(d.NameBase))
	w.u32(uint32(len(d.NamesTail)))
	for _, s := range d.NamesTail {
		w.str(s)
	}
	w.u32(uint32(len(d.Scratch)))
	for _, c := range d.Scratch {
		w.column(c)
	}
	w.u32(uint32(len(d.Diffs)))
	for _, diff := range d.Diffs {
		w.u32(uint32(diff.Dest))
		w.bool(diff.Converged)
		w.u32(uint32(len(diff.Changes)))
		for _, ch := range diff.Changes {
			w.u32(uint32(ch.Node))
			if !ch.Routed {
				w.u8(0)
				continue
			}
			w.u8(1)
			w.i32(ch.W)
			w.u32(uint32(len(ch.NextHop)))
			for _, h := range ch.NextHop {
				w.i32(h)
			}
		}
	}
	return frame(KindDelta, w.b)
}

// EncodeSubscribe frames the client handshake.
func EncodeSubscribe(fromVersion uint64) []byte {
	var w wbuf
	w.u64(fromVersion)
	return frame(KindSubscribe, w.b)
}

// ---------------------------------------------------------------------
// Decoding

// rbuf is a bounds-checked little-endian reader over a payload body.
// Every count is validated against the remaining byte budget before the
// corresponding slice is allocated, so a hostile length field cannot
// force an allocation larger than the received frame.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) fail(format string, args ...any) error {
	return fmt.Errorf("replica: decode at offset %d: %s", r.off, fmt.Sprintf(format, args...))
}

func (r *rbuf) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, r.fail("need %d bytes, have %d", n, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *rbuf) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *rbuf) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, r.fail("bad bool byte %d", v)
	}
	return v == 1, nil
}

func (r *rbuf) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *rbuf) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *rbuf) i32() (int32, error) {
	v, err := r.u32()
	return int32(v), err
}

// count reads a u32 count and validates that at least count*minElem
// bytes remain, making count-sized allocations safe.
func (r *rbuf) count(minElem int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || (minElem > 0 && len(r.b)-r.off < n*minElem) {
		return 0, r.fail("count %d exceeds remaining %d bytes (min elem %d)", n, len(r.b)-r.off, minElem)
	}
	return n, nil
}

func (r *rbuf) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	return string(b), err
}

func (r *rbuf) bits() ([]bool, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	nb := (int(n) + 7) / 8
	raw, err := r.take(nb)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]>>(i&7)&1 == 1
	}
	return out, nil
}

func (r *rbuf) ints() ([]int, error) {
	n, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.i32()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// column decodes one column, recomputing NhOff from the canonical
// ascending-node pool layout and cross-checking the pool length.
func (r *rbuf) column(nodes int) (*rib.Column, error) {
	dest, err := r.u32()
	if err != nil {
		return nil, err
	}
	converged, err := r.bool()
	if err != nil {
		return nil, err
	}
	nSlots, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if nodes > 0 && nSlots != nodes {
		return nil, r.fail("column %d has %d slots, want %d", dest, nSlots, nodes)
	}
	if int(dest) >= nSlots {
		return nil, r.fail("column dest %d out of range [0,%d)", dest, nSlots)
	}
	c := &rib.Column{Dest: int(dest), Converged: converged, Slots: make([]rib.EntrySlot, nSlots)}
	var off int64
	for i := range c.Slots {
		routed, err := r.bool()
		if err != nil {
			return nil, err
		}
		if !routed {
			continue
		}
		w, err := r.i32()
		if err != nil {
			return nil, err
		}
		nh, err := r.u32()
		if err != nil {
			return nil, err
		}
		c.Slots[i] = rib.EntrySlot{W: w, Routed: true, NhOff: int32(off), NhLen: int32(nh)}
		off += int64(nh)
		if off > int64(maxFrame) {
			return nil, r.fail("column %d pool overflows", dest)
		}
	}
	poolLen, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if int64(poolLen) != off {
		return nil, r.fail("column %d pool length %d does not match span sum %d", dest, poolLen, off)
	}
	if poolLen == 0 {
		return c, nil
	}
	c.Pool = make([]int32, poolLen)
	for i := range c.Pool {
		v, err := r.i32()
		if err != nil {
			return nil, err
		}
		if v < 0 || int(v) >= nSlots {
			return nil, r.fail("column %d next hop %d out of range [0,%d)", dest, v, nSlots)
		}
		c.Pool[i] = v
	}
	return c, nil
}

func (r *rbuf) announcements() ([]Announcement, error) {
	n, err := r.count(9)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Announcement, n)
	for i := range out {
		addr, err := r.u32()
		if err != nil {
			return nil, err
		}
		l, err := r.u8()
		if err != nil {
			return nil, err
		}
		if l > 32 {
			return nil, r.fail("prefix length %d > 32", l)
		}
		node, err := r.u32()
		if err != nil {
			return nil, err
		}
		p := rib.MakePrefix(addr, l)
		if p.Addr != addr {
			return nil, r.fail("prefix %v not masked to its length", p)
		}
		out[i] = Announcement{Prefix: p, Node: int(node)}
	}
	return out, nil
}

func decodeFull(r *rbuf) (*Full, error) {
	f := &Full{}
	var err error
	if f.Version, err = r.u64(); err != nil {
		return nil, err
	}
	if f.Fingerprint, err = r.u64(); err != nil {
		return nil, err
	}
	nodes, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nodes > maxFrame {
		return nil, r.fail("node count %d too large", nodes)
	}
	f.Nodes = int(nodes)
	if f.Disabled, err = r.bits(); err != nil {
		return nil, err
	}
	if f.Unconverged, err = r.ints(); err != nil {
		return nil, err
	}
	nNames, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if nNames > 0 {
		f.Names = make([]string, nNames)
	}
	for i := range f.Names {
		if f.Names[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	if f.Kept, err = r.announcements(); err != nil {
		return nil, err
	}
	if f.Suppressed, err = r.announcements(); err != nil {
		return nil, err
	}
	nCols, err := r.count(9)
	if err != nil {
		return nil, err
	}
	if nCols > 0 {
		f.Columns = make([]*rib.Column, nCols)
	}
	for i := range f.Columns {
		if f.Columns[i], err = r.column(f.Nodes); err != nil {
			return nil, err
		}
	}
	if r.off != len(r.b) {
		return nil, r.fail("%d trailing bytes", len(r.b)-r.off)
	}
	return f, nil
}

func decodeDelta(r *rbuf) (*Delta, error) {
	d := &Delta{}
	var err error
	if d.FromVersion, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Version, err = r.u64(); err != nil {
		return nil, err
	}
	if d.Fingerprint, err = r.u64(); err != nil {
		return nil, err
	}
	nTog, err := r.count(5)
	if err != nil {
		return nil, err
	}
	if nTog > 0 {
		d.Toggles = make([]solve.ArcToggle, nTog)
	}
	for i := range d.Toggles {
		arc, err := r.u32()
		if err != nil {
			return nil, err
		}
		down, err := r.bool()
		if err != nil {
			return nil, err
		}
		d.Toggles[i] = solve.ArcToggle{Arc: int(arc), Down: down}
	}
	if d.Unconverged, err = r.ints(); err != nil {
		return nil, err
	}
	base, err := r.u32()
	if err != nil {
		return nil, err
	}
	if base > maxFrame {
		return nil, r.fail("name base %d too large", base)
	}
	d.NameBase = int(base)
	nTail, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if nTail > 0 {
		d.NamesTail = make([]string, nTail)
	}
	for i := range d.NamesTail {
		if d.NamesTail[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	nScratch, err := r.count(9)
	if err != nil {
		return nil, err
	}
	if nScratch > 0 {
		d.Scratch = make([]*rib.Column, nScratch)
	}
	for i := range d.Scratch {
		if d.Scratch[i], err = r.column(0); err != nil {
			return nil, err
		}
	}
	nDiffs, err := r.count(9)
	if err != nil {
		return nil, err
	}
	if nDiffs > 0 {
		d.Diffs = make([]ColumnDiff, nDiffs)
	}
	for i := range d.Diffs {
		dest, err := r.u32()
		if err != nil {
			return nil, err
		}
		converged, err := r.bool()
		if err != nil {
			return nil, err
		}
		nCh, err := r.count(5)
		if err != nil {
			return nil, err
		}
		diff := ColumnDiff{Dest: int(dest), Converged: converged}
		if nCh > 0 {
			diff.Changes = make([]SlotChange, nCh)
		}
		prevNode := -1
		for j := range diff.Changes {
			node, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(node) <= prevNode {
				return nil, r.fail("diff for dest %d not ascending at node %d", dest, node)
			}
			prevNode = int(node)
			ch := SlotChange{Node: int(node)}
			routed, err := r.bool()
			if err != nil {
				return nil, err
			}
			if routed {
				ch.Routed = true
				if ch.W, err = r.i32(); err != nil {
					return nil, err
				}
				nh, err := r.count(4)
				if err != nil {
					return nil, err
				}
				if nh > 0 {
					ch.NextHop = make([]int32, nh)
				}
				for k := range ch.NextHop {
					if ch.NextHop[k], err = r.i32(); err != nil {
						return nil, err
					}
				}
			}
			diff.Changes[j] = ch
		}
		d.Diffs[i] = diff
	}
	if r.off != len(r.b) {
		return nil, r.fail("%d trailing bytes", len(r.b)-r.off)
	}
	return d, nil
}

// DecodeRecord decodes one complete frame held in memory. It is the
// fuzz surface: any input must either yield a valid record or an
// error, never a panic and never an allocation larger than the input
// warrants.
func DecodeRecord(data []byte) (*Record, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("replica: frame shorter than its length prefix")
	}
	n := binary.LittleEndian.Uint32(data)
	if n > maxFrame {
		return nil, fmt.Errorf("replica: frame payload %d exceeds limit %d", n, maxFrame)
	}
	if uint64(len(data)) != 4+uint64(n)+4 {
		return nil, fmt.Errorf("replica: frame payload %d does not match %d input bytes", n, len(data))
	}
	payload := data[4 : 4+n]
	crc := binary.LittleEndian.Uint32(data[4+n:])
	return decodePayload(payload, crc, len(data))
}

func decodePayload(payload []byte, crc uint32, wire int) (*Record, error) {
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("replica: frame CRC mismatch")
	}
	if len(payload) < 2 {
		return nil, fmt.Errorf("replica: frame payload shorter than its header")
	}
	if payload[0] != FormatVersion {
		return nil, fmt.Errorf("replica: unsupported format version %d (want %d)", payload[0], FormatVersion)
	}
	rec := &Record{Kind: payload[1], WireBytes: wire}
	r := &rbuf{b: payload[2:]}
	var err error
	switch rec.Kind {
	case KindFull:
		rec.Full, err = decodeFull(r)
	case KindDelta:
		rec.Delta, err = decodeDelta(r)
	case KindSubscribe:
		if rec.SubscribeFrom, err = r.u64(); err == nil && r.off != len(r.b) {
			err = r.fail("%d trailing bytes", len(r.b)-r.off)
		}
	default:
		err = fmt.Errorf("replica: unknown record kind %d", rec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadRecord reads and decodes one frame from a stream. The payload is
// read in bounded chunks, so a hostile length prefix on a short stream
// cannot force a large allocation.
func ReadRecord(br *bufio.Reader) (*Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("replica: frame payload %d exceeds limit %d", n, maxFrame)
	}
	payload, err := readN(br, int(n))
	if err != nil {
		return nil, fmt.Errorf("replica: short frame payload: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return nil, fmt.Errorf("replica: short frame CRC: %w", err)
	}
	return decodePayload(payload, binary.LittleEndian.Uint32(crcb[:]), 4+int(n)+4)
}

// readN reads exactly n bytes, growing the buffer in bounded chunks so
// allocation tracks bytes actually received.
func readN(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	out := make([]byte, 0, min(n, chunk))
	for len(out) < n {
		step := min(n-len(out), chunk)
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
