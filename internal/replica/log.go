package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// LogName is the file name the leader appends records to inside its
// -log-dir.
const LogName = "replica.log"

// Log is an append-only on-disk record log: the durable form of the
// replication stream. Records are written frame-by-frame exactly as
// they travel on the wire, so a follower replaying the file runs the
// same decode path as one subscribed over TCP.
type Log struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenLog opens (creating if needed) the record log inside dir for
// appending.
func OpenLog(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: log dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: open log: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one framed record and flushes it to the OS, so a
// follower tailing the file sees complete frames only.
func (l *Log) Append(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(frame); err != nil {
		return err
	}
	return l.w.Flush()
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReplayLog decodes every record in the log file at path, invoking
// apply in order. A cleanly-truncated final frame (leader killed
// mid-append) terminates the replay without error; a corrupt frame
// earlier in the file is reported.
func ReplayLog(path string, apply func(*Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("replica: open log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for n := 0; ; n++ {
		rec, err := ReadRecord(br)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("replica: log record %d: %w", n, err)
		}
		if err := apply(rec); err != nil {
			return fmt.Errorf("replica: applying log record %d: %w", n, err)
		}
	}
}
