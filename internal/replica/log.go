package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LogName is the file name the leader appends records to inside its
// -log-dir. Rotated segments sit beside it as replica-NNNNNN.log.
const LogName = "replica.log"

// Log is an append-only on-disk record log: the durable form of the
// replication stream. Records are written frame-by-frame exactly as
// they travel on the wire, so a follower replaying the file runs the
// same decode path as one subscribed over TCP. With a byte cap armed
// (SetMaxBytes) the live file rotates to a numbered segment once it
// outgrows the cap; the caller seeds the fresh file with a full
// checkpoint so every segment — and in particular the live one —
// replays to a complete snapshot on its own.
type Log struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	w        *bufio.Writer
	size     int64
	maxBytes int64
	seq      int // number the next rotated segment takes
}

// segmentName renders the rotated-segment file name for sequence n.
func segmentName(n int) string {
	return fmt.Sprintf("replica-%06d.log", n)
}

// segmentSeq parses a rotated-segment file name, reporting ok=false
// for anything else.
func segmentSeq(name string) (int, bool) {
	num, found := strings.CutPrefix(name, "replica-")
	num, ok := strings.CutSuffix(num, ".log")
	if !found || !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 || segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// OpenLog opens (creating if needed) the record log inside dir for
// appending. A reopened log resumes its size accounting from the file
// and its segment numbering from whatever rotations already happened.
func OpenLog(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: log dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("replica: stat log: %w", err)
	}
	l := &Log{dir: dir, f: f, w: bufio.NewWriter(f), size: st.Size()}
	if segs, err := Segments(dir); err == nil {
		for _, s := range segs {
			if n, ok := segmentSeq(filepath.Base(s)); ok && n >= l.seq {
				l.seq = n + 1
			}
		}
	}
	return l, nil
}

// SetMaxBytes arms size-based rotation: once the live file holds at
// least n bytes the log reports RotateDue, and the next Rotate call
// retires it to a numbered segment. n ≤ 0 disables rotation.
func (l *Log) SetMaxBytes(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.maxBytes = n
}

// RotateDue reports whether the live file has outgrown the armed byte
// cap.
func (l *Log) RotateDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxBytes > 0 && l.size >= l.maxBytes
}

// Rotate retires the live file to the next numbered segment and starts
// a fresh one seeded with full — a framed full-snapshot checkpoint of
// the version the stream has reached — so the new segment (and a
// follower replaying only it) is self-contained.
func (l *Log) Rotate(version uint64, full []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	live := filepath.Join(l.dir, LogName)
	if err := os.Rename(live, filepath.Join(l.dir, segmentName(l.seq))); err != nil {
		return fmt.Errorf("replica: rotate log: %w", err)
	}
	l.seq++
	f, err := os.OpenFile(live, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("replica: rotate log: %w", err)
	}
	l.f, l.w = f, bufio.NewWriter(f)
	if _, err := l.w.Write(full); err != nil {
		return err
	}
	l.size = int64(len(full))
	_ = version // the checkpoint frame already carries it
	return l.w.Flush()
}

// Append writes one framed record and flushes it to the OS, so a
// follower tailing the file sees complete frames only.
func (l *Log) Append(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	return l.w.Flush()
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Segments lists a log directory's record files in replay order:
// every rotated segment ascending by sequence number, then the live
// log. Each rotated boundary starts with a full checkpoint, so the
// concatenation replays as one seamless stream (and the live file
// alone still replays to the current snapshot).
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("replica: log dir: %w", err)
	}
	type seg struct {
		n    int
		path string
	}
	var segs []seg
	live := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if e.Name() == LogName {
			live = true
			continue
		}
		if n, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, seg{n, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	out := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		out = append(out, s.path)
	}
	if live {
		out = append(out, filepath.Join(dir, LogName))
	}
	return out, nil
}

// ReplayLog decodes every record in the log file at path, invoking
// apply in order. A cleanly-truncated final frame (leader killed
// mid-append) terminates the replay without error; a corrupt frame
// earlier in the file is reported. When path is a log DIRECTORY, every
// segment replays in rotation order followed by the live log.
func ReplayLog(path string, apply func(*Record) error) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		paths, err := Segments(path)
		if err != nil {
			return err
		}
		for _, p := range paths {
			if err := replayFile(p, apply); err != nil {
				return err
			}
		}
		return nil
	}
	return replayFile(path, apply)
}

func replayFile(path string, apply func(*Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("replica: open log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for n := 0; ; n++ {
		rec, err := ReadRecord(br)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("replica: log record %d in %s: %w", n, filepath.Base(path), err)
		}
		if err := apply(rec); err != nil {
			return fmt.Errorf("replica: applying log record %d in %s: %w", n, filepath.Base(path), err)
		}
	}
}
