package sobrinho

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// shortestPath is the (ℕ≤cap, ≤, {+d}) algebra in Sobrinho form.
func shortestPath(cap int) *Algebra {
	car := value.Ints(0, cap)
	return New("sp", order.IntLeq("≤", car), []string{"+1", "+2", "+3"},
		func(label int, a value.V) value.V {
			x := a.(int) + label + 1
			if x > cap {
				x = cap
			}
			return x
		})
}

func TestValidate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if err := shortestPath(8).Validate(r, 0); err != nil {
		t.Fatal(err)
	}
	// Discrete order is not full: not a preference relation.
	d := New("disc", order.Discrete(value.Ints(0, 3)), []string{"id"},
		func(_ int, a value.V) value.V { return a })
	if err := d.Validate(r, 0); err == nil {
		t.Fatal("non-full order must fail validation")
	}
	// No labels.
	n := New("empty", order.IntLeq("≤", value.Ints(0, 3)), nil, nil)
	if err := n.Validate(r, 0); err == nil {
		t.Fatal("empty label set must fail validation")
	}
}

func TestApplyConvention(t *testing.T) {
	s := shortestPath(32)
	// Path labels [+1, +3], destination-side last: 0 → +3 → +1 = 4.
	if got := s.Apply([]int{0, 2}, 0); got != 4 {
		t.Fatalf("Apply = %v, want 4", got)
	}
}

func TestLabelIndex(t *testing.T) {
	s := shortestPath(8)
	if i, ok := s.LabelIndex("+2"); !ok || i != 1 {
		t.Fatalf("LabelIndex = %d, %v", i, ok)
	}
	if _, ok := s.LabelIndex("nope"); ok {
		t.Fatal("unknown label must not resolve")
	}
}

// TestIndexingIsPure: converting to an order transform and checking
// properties there matches checking through the label view — (L, •) is
// pure indexing of F (§III).
func TestIndexingIsPure(t *testing.T) {
	s := shortestPath(8)
	ot := s.ToOrderTransform()
	if ot.F.Size() != len(s.Labels) {
		t.Fatal("one function per label")
	}
	for i, l := range s.Labels {
		f, ok := ot.F.ByName(l)
		if !ok {
			t.Fatalf("label %s missing from F", l)
		}
		for _, a := range ot.Carrier().Elems {
			if f.Apply(a) != s.Dot(i, a) {
				t.Fatalf("g_%s(%v) ≠ %s • %v", l, a, l, a)
			}
		}
	}
	st, w := ot.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("shortest path must be monotone: %s", w)
	}
	st, _ = ot.CheckND(nil, 0)
	if st != prop.True {
		t.Fatal("shortest path must be ND")
	}
}

func TestRoundTrip(t *testing.T) {
	s := shortestPath(6)
	back, err := s.RoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Labels) != len(s.Labels) {
		t.Fatal("labels must survive")
	}
	for i := range s.Labels {
		if back.Labels[i] != s.Labels[i] {
			t.Fatalf("label %d: %s vs %s", i, back.Labels[i], s.Labels[i])
		}
		for _, a := range s.Ord.Car.Elems {
			if back.Dot(i, a) != s.Dot(i, a) {
				t.Fatalf("• differs at label %d, %v", i, a)
			}
		}
	}
}

func TestFromOrderTransform(t *testing.T) {
	d := baselib.Delay(6, 2)
	s, err := FromOrderTransform(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels) != 2 || s.Labels[0] != "+1" || s.Labels[1] != "+2" {
		t.Fatalf("labels = %v", s.Labels)
	}
	if got := s.Apply([]int{1}, 3); got != 5 {
		t.Fatalf("apply through labels = %v", got)
	}
	r := rand.New(rand.NewSource(2))
	if err := s.Validate(r, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFromOrderTransformRejectsInfiniteF(t *testing.T) {
	// A sampled (non-enumerable) function set cannot be labelled.
	car := value.Ints(0, 3)
	inf := ost.New("inf", order.IntLeq("≤", car),
		fn.NewSampled("F∞", func(r *rand.Rand) fn.Fn { return fn.Const(r.Intn(4)) }))
	if _, err := FromOrderTransform(inf); err == nil {
		t.Fatal("infinite function sets must be rejected")
	}
	// While a finite F — even over an infinite carrier — is fine.
	if _, err := FromOrderTransform(baselib.Delay(0, 2)); err != nil {
		t.Fatalf("unbounded delay has a finite F: %v", err)
	}
}
