// Package sobrinho provides the label-indexed presentation of routing
// algebras used by Sobrinho's papers and the original metarouting work:
// a structure (S, ⪯, L, •) where ⪯ is a preference relation (a full
// preorder) over signatures S, L is a set of labels, and • maps L × S to
// S. As §III of the paper observes, this is exactly an order transform
// (S, ⪯, F_L) with F_L = {g_λ | λ ∈ L}, g_λ(a) = λ • a — the pair (L, •)
// merely *indexes* the function set. This package implements the
// translation in both directions and the protocol-facing conveniences
// (label lookup, path application) that the indexed view affords.
package sobrinho

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// Algebra is a Sobrinho routing algebra (S, ⪯, L, •).
type Algebra struct {
	// Name is a diagnostic label.
	Name string
	// Ord is the signature preference (⪯); Sobrinho requires it full,
	// which Validate checks.
	Ord *order.Preorder
	// Labels names the label set L.
	Labels []string
	// Dot is the label application •: Dot(i, a) = Labels[i] • a.
	Dot func(label int, a value.V) value.V
}

// New builds a Sobrinho algebra.
func New(name string, ord *order.Preorder, labels []string, dot func(int, value.V) value.V) *Algebra {
	return &Algebra{Name: name, Ord: ord, Labels: labels, Dot: dot}
}

// Validate checks the Sobrinho-specific structural requirements: at least
// one label, and ⪯ a preference relation (full preorder) — exhaustively
// on finite carriers, by sampling otherwise.
func (s *Algebra) Validate(r *rand.Rand, samples int) error {
	if len(s.Labels) == 0 {
		return fmt.Errorf("sobrinho: %s has no labels", s.Name)
	}
	if st, w := s.Ord.CheckReflexive(r, samples); st == prop.False {
		return fmt.Errorf("sobrinho: %s: ⪯ not reflexive: %s", s.Name, w)
	}
	if st, w := s.Ord.CheckTransitive(r, samples); st == prop.False {
		return fmt.Errorf("sobrinho: %s: ⪯ not transitive: %s", s.Name, w)
	}
	if st, w := s.Ord.CheckFull(r, samples); st == prop.False {
		return fmt.Errorf("sobrinho: %s: ⪯ not a preference relation (not full): %s", s.Name, w)
	}
	return nil
}

// LabelIndex returns the index of the named label.
func (s *Algebra) LabelIndex(name string) (int, bool) {
	for i, l := range s.Labels {
		if l == name {
			return i, true
		}
	}
	return 0, false
}

// Apply applies a sequence of labels to an originated signature,
// destination-side label last — the path-weight convention of §II.
func (s *Algebra) Apply(labels []int, a value.V) value.V {
	v := a
	for i := len(labels) - 1; i >= 0; i-- {
		v = s.Dot(labels[i], v)
	}
	return v
}

// ToOrderTransform realizes the algebra as an order transform:
// F_L = {g_λ | λ ∈ L} with g_λ(a) = λ • a.
func (s *Algebra) ToOrderTransform() *ost.OrderTransform {
	fns := make([]fn.Fn, len(s.Labels))
	for i, l := range s.Labels {
		i := i
		fns[i] = fn.Fn{Name: l, Apply: func(a value.V) value.V { return s.Dot(i, a) }}
	}
	return ost.New(s.Name, s.Ord, fn.NewFinite("F_"+s.Name, fns))
}

// FromOrderTransform presents a finite-function-set order transform as a
// Sobrinho algebra, with the function names as labels.
func FromOrderTransform(t *ost.OrderTransform) (*Algebra, error) {
	if !t.F.Finite() {
		return nil, fmt.Errorf("sobrinho: %s has an infinite function set", t.Name)
	}
	labels := make([]string, len(t.F.Fns))
	for i, f := range t.F.Fns {
		labels[i] = f.Name
	}
	fns := t.F.Fns
	return New(t.Name, t.Ord, labels, func(i int, a value.V) value.V {
		return fns[i].Apply(a)
	}), nil
}

// RoundTrip converts to an order transform and back; used by tests to
// confirm the §III observation that (L, •) is pure indexing.
func (s *Algebra) RoundTrip() (*Algebra, error) {
	return FromOrderTransform(s.ToOrderTransform())
}
