// Package gen generates random finite algebraic structures — preorders,
// commutative idempotent semigroups, associative operations, and function
// sets — used to machine-validate the paper's characterization theorems:
// for thousands of random structures we evaluate both sides of each iff
// by exhaustive enumeration and assert equivalence. Structures are drawn
// from parameterized families that guarantee the defining laws
// (transitivity, associativity) by construction while covering diverse
// property profiles (monotone and not, cancellative and not, selective
// and not, …).
package gen

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

// Preorder draws a random preorder on {0..n-1}. Families:
//   - total order with random ties (a full preorder),
//   - partial order from a random DAG's reflexive-transitive closure,
//   - discrete, chaotic,
//   - layered: random rank function with incomparable same-rank elements.
func Preorder(r *rand.Rand, n int) *order.Preorder {
	car := value.Ints(0, n-1)
	switch r.Intn(5) {
	case 0: // total with ties: random monotone rank
		rank := randomRanks(r, n, true)
		return order.New("rnd-total", car, func(a, b value.V) bool {
			return rank[a.(int)] <= rank[b.(int)]
		})
	case 1: // random partial order: closure of a random DAG on index order
		leq := randomDAGClosure(r, n)
		return order.New("rnd-poset", car, func(a, b value.V) bool {
			return leq[a.(int)][b.(int)]
		})
	case 2:
		return order.Discrete(car)
	case 3:
		return order.Chaotic(car)
	default: // layered: equal ranks incomparable (a non-full preorder with ties)
		rank := randomRanks(r, n, false)
		return order.New("rnd-layered", car, func(a, b value.V) bool {
			x, y := a.(int), b.(int)
			if x == y {
				return true
			}
			return rank[x] < rank[y]
		})
	}
}

func randomRanks(r *rand.Rand, n int, allowManyTies bool) []int {
	levels := 1 + r.Intn(n)
	if !allowManyTies && levels < 2 && n > 1 {
		levels = 2
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = r.Intn(levels)
	}
	return ranks
}

func randomDAGClosure(r *rand.Rand, n int) [][]bool {
	leq := make([][]bool, n)
	for i := range leq {
		leq[i] = make([]bool, n)
		leq[i][i] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.4 {
				leq[i][j] = true
			}
		}
	}
	// Warshall transitive closure (stays antisymmetric: arcs only i<j).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !leq[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if leq[k][j] {
					leq[i][j] = true
				}
			}
		}
	}
	return leq
}

// FnSet draws k random unary functions on {0..n-1}: a mix of arbitrary
// lookup tables, constants, the identity, and order-free "shift-and-clamp"
// maps — enough variety to hit every truth combination of M/N/C/ND/I.
func FnSet(r *rand.Rand, n, k int) *fn.Set {
	fns := make([]fn.Fn, 0, k)
	for i := 0; i < k; i++ {
		switch r.Intn(4) {
		case 0:
			fns = append(fns, fn.Identity())
		case 1:
			fns = append(fns, fn.Const(r.Intn(n)))
		case 2: // clamped shift
			d := r.Intn(n)
			fns = append(fns, fn.Fn{Name: fmt.Sprintf("shift%d", d), Apply: func(v value.V) value.V {
				x := v.(int) + d
				if x >= n {
					x = n - 1
				}
				return x
			}})
		default: // arbitrary table
			table := make([]int, n)
			for j := range table {
				table[j] = r.Intn(n)
			}
			fns = append(fns, fn.Fn{Name: fmt.Sprintf("tbl%v", table), Apply: func(v value.V) value.V {
				return table[v.(int)]
			}})
		}
	}
	return fn.NewFinite("F_rnd", fns)
}

// CISemigroup draws a random commutative idempotent semigroup on a
// carrier of n elements. Families (all CI by construction):
//   - min under a random permutation of a total order (selective),
//   - max under a random permutation (selective),
//   - bitwise AND on {0..2^k-1} (a meet semilattice, not selective),
//   - bitwise OR (a join semilattice, not selective).
//
// For the bitwise families the carrier is rounded down to a power of two
// of size ≤ n (at least 2).
func CISemigroup(r *rand.Rand, n int) *sg.Semigroup {
	switch r.Intn(4) {
	case 0, 1:
		perm := r.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		car := value.Ints(0, n-1)
		if r.Intn(2) == 0 {
			return sg.New("rnd-min", car, func(a, b value.V) value.V {
				if inv[a.(int)] <= inv[b.(int)] {
					return a
				}
				return b
			})
		}
		return sg.New("rnd-max", car, func(a, b value.V) value.V {
			if inv[a.(int)] >= inv[b.(int)] {
				return a
			}
			return b
		})
	default:
		bits := 1
		for (1 << (bits + 1)) <= n {
			bits++
		}
		car := value.Ints(0, 1<<bits-1)
		if r.Intn(2) == 0 {
			return sg.New("rnd-and", car, func(a, b value.V) value.V { return a.(int) & b.(int) })
		}
		return sg.New("rnd-or", car, func(a, b value.V) value.V { return a.(int) | b.(int) })
	}
}

// AssocOp draws a random associative operation on {0..n-1} from families
// that are associative by construction:
//   - constant, left projection, right projection,
//   - min/max under a random permutation,
//   - addition or multiplication mod n transported through a random
//     bijection,
//   - saturating addition under a random permutation.
func AssocOp(r *rand.Rand, n int) *sg.Semigroup {
	car := value.Ints(0, n-1)
	perm := r.Perm(n)
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	via := func(op func(x, y int) int, name string) *sg.Semigroup {
		return sg.New(name, car, func(a, b value.V) value.V {
			return perm[op(inv[a.(int)], inv[b.(int)])%n]
		})
	}
	switch r.Intn(7) {
	case 0:
		k := r.Intn(n)
		return sg.New("rnd-const", car, func(a, b value.V) value.V { return k })
	case 1:
		return sg.New("rnd-left", car, func(a, b value.V) value.V { return a })
	case 2:
		return sg.New("rnd-right", car, func(a, b value.V) value.V { return b })
	case 3:
		return via(func(x, y int) int {
			if x < y {
				return x
			}
			return y
		}, "rnd-minp")
	case 4:
		return via(func(x, y int) int { return (x + y) % n }, "rnd-addmod")
	case 5:
		return via(func(x, y int) int { return (x * y) % n }, "rnd-mulmod")
	default:
		return via(func(x, y int) int {
			s := x + y
			if s >= n {
				s = n - 1
			}
			return s
		}, "rnd-addsat")
	}
}
