package gen

import (
	"math/rand"
	"testing"

	"metarouting/internal/prop"
)

// TestPreordersAreLawful: every generated relation is reflexive and
// transitive, exhaustively checked.
func TestPreordersAreLawful(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		p := Preorder(r, 2+r.Intn(4))
		if st, w := p.CheckReflexive(nil, 0); st != prop.True {
			t.Fatalf("%s not reflexive: %s", p.Name, w)
		}
		if st, w := p.CheckTransitive(nil, 0); st != prop.True {
			t.Fatalf("%s not transitive: %s", p.Name, w)
		}
	}
}

// TestPreorderFamiliesAreDiverse: generation must produce full and
// non-full, antisymmetric and non-antisymmetric relations.
func TestPreorderFamiliesAreDiverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var sawFull, sawPartial, sawTies bool
	for i := 0; i < 200; i++ {
		p := Preorder(r, 4)
		full, _ := p.CheckFull(nil, 0)
		anti, _ := p.CheckAntisymmetric(nil, 0)
		if full == prop.True {
			sawFull = true
		} else {
			sawPartial = true
		}
		if anti == prop.False {
			sawTies = true
		}
	}
	if !sawFull || !sawPartial || !sawTies {
		t.Fatalf("diversity: full=%v partial=%v ties=%v", sawFull, sawPartial, sawTies)
	}
}

// TestCISemigroupsAreLawful: associative, commutative, idempotent —
// exhaustively checked.
func TestCISemigroupsAreLawful(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		s := CISemigroup(r, 2+r.Intn(5))
		for _, check := range []struct {
			name string
			run  func() (prop.Status, string)
		}{
			{"associative", func() (prop.Status, string) { return s.CheckAssociative(nil, 0) }},
			{"commutative", func() (prop.Status, string) { return s.CheckCommutative(nil, 0) }},
			{"idempotent", func() (prop.Status, string) { return s.CheckIdempotent(nil, 0) }},
		} {
			if st, w := check.run(); st != prop.True {
				t.Fatalf("%s not %s: %s", s.Name, check.name, w)
			}
		}
	}
}

// TestCISemigroupDiversity: both selective and non-selective families
// must appear.
func TestCISemigroupDiversity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var sel, nonsel bool
	for i := 0; i < 200; i++ {
		s := CISemigroup(r, 5)
		if st, _ := s.CheckSelective(nil, 0); st == prop.True {
			sel = true
		} else {
			nonsel = true
		}
	}
	if !sel || !nonsel {
		t.Fatalf("diversity: selective=%v nonselective=%v", sel, nonsel)
	}
}

// TestAssocOpsAreAssociative, exhaustively.
func TestAssocOpsAreAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		s := AssocOp(r, 2+r.Intn(4))
		if st, w := s.CheckAssociative(nil, 0); st != prop.True {
			t.Fatalf("%s not associative: %s", s.Name, w)
		}
	}
}

// TestFnSetsTotal: every generated function maps the carrier into itself.
func TestFnSetsTotal(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(5)
		fs := FnSet(r, n, 1+r.Intn(4))
		for _, f := range fs.Fns {
			for x := 0; x < n; x++ {
				y := f.Apply(x).(int)
				if y < 0 || y >= n {
					t.Fatalf("%s maps %d to %d outside the carrier", f.Name, x, y)
				}
			}
		}
	}
}
