package value

import (
	"math/rand"
	"testing"
)

func TestPairEquality(t *testing.T) {
	if (Pair{1, 2}) != (Pair{1, 2}) {
		t.Fatal("identical pairs must compare equal")
	}
	if (Pair{1, 2}) == (Pair{2, 1}) {
		t.Fatal("distinct pairs must compare unequal")
	}
	nested := Pair{A: Pair{1, 2}, B: 3}
	if nested != (Pair{A: Pair{1, 2}, B: 3}) {
		t.Fatal("nested pairs must compare structurally")
	}
}

func TestTaggedEquality(t *testing.T) {
	if (Tagged{0, "x"}) == (Tagged{1, "x"}) {
		t.Fatal("tags must distinguish union elements")
	}
	if (Tagged{0, "x"}) != (Tagged{0, "x"}) {
		t.Fatal("same tag and payload must compare equal")
	}
}

func TestSentinelsDistinct(t *testing.T) {
	vals := []V{Top{}, Bot{}, Omega{}}
	for i, a := range vals {
		for j, b := range vals {
			if (i == j) != (a == b) {
				t.Fatalf("sentinel equality wrong for %v vs %v", a, b)
			}
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		in   V
		want string
	}{
		{3, "3"},
		{"abc", "abc"},
		{Pair{1, 2}, "(1, 2)"},
		{Tagged{1, 7}, "1·7"},
		{Top{}, "⊤"},
		{Bot{}, "⊥"},
		{Omega{}, "ω"},
		{nil, "∅"},
		{Pair{A: Tagged{0, 1}, B: Top{}}, "(0·1, ⊤)"},
	}
	for _, c := range cases {
		if got := Format(c.in); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSetSorted(t *testing.T) {
	got := FormatSet([]V{3, 1, 2})
	if got != "{1, 2, 3}" {
		t.Fatalf("FormatSet = %q", got)
	}
}

func TestIntsCarrier(t *testing.T) {
	c := Ints(2, 5)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	if !c.Finite() {
		t.Fatal("Ints must be finite")
	}
	for i := 2; i <= 5; i++ {
		if !c.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if c.Contains(6) {
		t.Error("contains 6")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := c.Draw(r).(int)
		if v < 2 || v > 5 {
			t.Fatalf("Draw out of range: %d", v)
		}
	}
}

func TestIntsPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ints(5, 2)
}

func TestProductCarrier(t *testing.T) {
	p := Product(Ints(0, 1), Ints(0, 2))
	if p.Size() != 6 {
		t.Fatalf("size = %d", p.Size())
	}
	if !p.Contains(Pair{1, 2}) {
		t.Fatal("missing (1,2)")
	}
	r := rand.New(rand.NewSource(2))
	v := p.Draw(r)
	if _, ok := v.(Pair); !ok {
		t.Fatalf("Draw returned %T", v)
	}
}

func TestProductInfinite(t *testing.T) {
	inf := NewSampled("ℕ", func(r *rand.Rand) V { return r.Intn(10) })
	p := Product(inf, Ints(0, 1))
	if p.Finite() {
		t.Fatal("product with infinite factor must be infinite")
	}
	r := rand.New(rand.NewSource(3))
	if _, ok := p.Draw(r).(Pair); !ok {
		t.Fatal("Draw must return a Pair")
	}
}

func TestUnionCarrier(t *testing.T) {
	u := Union(Ints(0, 1), Ints(0, 1))
	if u.Size() != 4 {
		t.Fatalf("size = %d", u.Size())
	}
	if !u.Contains(Tagged{0, 1}) || !u.Contains(Tagged{1, 1}) {
		t.Fatal("missing tagged elements")
	}
}

func TestAdjoinAndWithout(t *testing.T) {
	c := Adjoin(Ints(0, 2), Top{}, "x")
	if c.Size() != 4 || !c.Contains(Top{}) {
		t.Fatalf("Adjoin failed: size=%d", c.Size())
	}
	w := Without(c, Top{}, "y")
	if w.Size() != 3 || w.Contains(Top{}) {
		t.Fatalf("Without failed: size=%d", w.Size())
	}
}

func TestAdjoinInfiniteSamplesNewElement(t *testing.T) {
	inf := NewSampled("ℕ", func(r *rand.Rand) V { return r.Intn(3) })
	c := Adjoin(inf, Top{}, "ℕ∪⊤")
	r := rand.New(rand.NewSource(7))
	seen := false
	for i := 0; i < 200; i++ {
		if c.Draw(r) == V(Top{}) {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("adjoined element never sampled")
	}
}

func TestSame(t *testing.T) {
	a := Ints(0, 3)
	b := Ints(0, 3)
	if !Same(a, a) || !Same(a, b) {
		t.Fatal("extensionally equal finite carriers must be Same")
	}
	if Same(a, Ints(0, 4)) || Same(a, Ints(1, 4)) {
		t.Fatal("different element sets must not be Same")
	}
	inf1 := NewSampled("x", func(r *rand.Rand) V { return 0 })
	inf2 := NewSampled("y", func(r *rand.Rand) V { return 1 })
	if !Same(inf1, inf2) {
		t.Fatal("two infinite carriers are accepted on trust")
	}
	if Same(a, inf1) {
		t.Fatal("finite vs infinite must not be Same")
	}
}

func TestUnionInfinite(t *testing.T) {
	inf := NewSampled("ℕ", func(r *rand.Rand) V { return r.Intn(3) })
	u := Union(inf, Ints(0, 1))
	if u.Finite() {
		t.Fatal("union with an infinite side must be infinite")
	}
	r := rand.New(rand.NewSource(5))
	saw := map[int]bool{}
	for i := 0; i < 100; i++ {
		saw[u.Draw(r).(Tagged).Tag] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatal("both summands must be sampled")
	}
}

func TestWithoutPanicsOnInfinite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Without(NewSampled("ℕ", func(r *rand.Rand) V { return 0 }), 0, "x")
}

func TestDrawPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Carrier{Name: "∅"}).Draw(rand.New(rand.NewSource(1)))
}

func TestAdjoinIdempotent(t *testing.T) {
	c := Adjoin(Ints(0, 2), Top{}, "c1")
	c2 := Adjoin(c, Top{}, "c2")
	if c2.Size() != c.Size() {
		t.Fatalf("double adjoin duplicated: %d vs %d", c2.Size(), c.Size())
	}
}
