// Package value provides the dynamic value substrate shared by every
// algebraic structure in the metarouting library.
//
// Metarouting composes algebras at run time (an expression such as
// scoped(localpref, lex(aspath, med)) is parsed and evaluated into a single
// routing algebra), so carrier elements must have a uniform dynamic
// representation. A value.V is an interface value whose dynamic type is
// comparable with ==: machine integers, strings, booleans, Pair, Tagged,
// Top, Bot, Omega, or user-registered comparable types. Comparability lets
// values act as map keys, which the property checkers and solvers rely on
// throughout.
package value

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// V is a dynamic carrier element. The dynamic type must be comparable with
// ==; composite carriers use Pair and Tagged, which preserve comparability.
type V = any

// Pair is the carrier element of a product algebra S × T.
// Pairs nest: a triple is Pair{A, Pair{B, C}} under right-associated
// products. Pair is comparable whenever its components are.
type Pair struct {
	A, B V
}

// String renders the pair as "(a, b)".
func (p Pair) String() string { return "(" + Format(p.A) + ", " + Format(p.B) + ")" }

// Tagged is the carrier element of a disjoint union. Tag identifies the
// summand (0-based); X is the payload. Tagged is comparable whenever X is.
type Tagged struct {
	Tag int
	X   V
}

// String renders the tagged value as "tag·x".
func (t Tagged) String() string { return fmt.Sprintf("%d·%s", t.Tag, Format(t.X)) }

// Top is the distinguished least-preferred ("unreachable") element added by
// the AddTop construction. There is exactly one Top value.
type Top struct{}

// String implements fmt.Stringer.
func (Top) String() string { return "⊤" }

// Bot is the distinguished most-preferred element added by the AddBot
// construction. There is exactly one Bot value.
type Bot struct{}

// String implements fmt.Stringer.
func (Bot) String() string { return "⊥" }

// Omega is the absorbing element introduced by the Szendrei lexicographic
// product ×ω. It is distinct from Top so that "least preferred" and "error"
// can be told apart, as §VI of the paper requires.
type Omega struct{}

// String implements fmt.Stringer.
func (Omega) String() string { return "ω" }

// Format renders a value for diagnostics. It prefers fmt.Stringer, then
// falls back to %v.
func Format(v V) string {
	switch x := v.(type) {
	case nil:
		return "∅"
	case string:
		return x
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// FormatSet renders a slice of values as "{a, b, c}" in sorted order,
// for stable diagnostics.
func FormatSet(vs []V) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = Format(v)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Eq reports whether two values are identical. All carrier elements used in
// this library are comparable, so == is the right notion; Eq exists to give
// the comparison a name at call sites and a single place to extend if a
// non-comparable carrier ever becomes necessary.
func Eq(a, b V) bool { return a == b }

// Carrier describes the set of elements an algebra ranges over.
//
// A carrier is either finite — Elems is non-nil and enumerates every
// element — or infinite/large, in which case Elems is nil and Sample must
// be provided so property checkers can draw random elements. Finite
// carriers admit exhaustive property checking, the backbone of the
// theorem-validation experiments.
type Carrier struct {
	// Name is a short diagnostic label, e.g. "ℕ≤8" or "{0,1}×{a,b}".
	Name string
	// Elems enumerates the carrier if it is finite; nil otherwise.
	Elems []V
	// Sample draws a random element; required when Elems is nil,
	// optional (defaults to uniform over Elems) when finite.
	Sample func(r *rand.Rand) V
}

// Finite reports whether the carrier enumerates its elements.
func (c *Carrier) Finite() bool { return c.Elems != nil }

// Size returns the number of elements of a finite carrier, or -1.
func (c *Carrier) Size() int {
	if c.Elems == nil {
		return -1
	}
	return len(c.Elems)
}

// Contains reports whether v is an element of a finite carrier.
// For infinite carriers it returns true (membership is not tracked).
func (c *Carrier) Contains(v V) bool {
	if c.Elems == nil {
		return true
	}
	for _, e := range c.Elems {
		if e == v {
			return true
		}
	}
	return false
}

// Draw returns a random element of the carrier.
func (c *Carrier) Draw(r *rand.Rand) V {
	if c.Sample != nil {
		return c.Sample(r)
	}
	if len(c.Elems) == 0 {
		panic("value: Draw on empty carrier " + c.Name)
	}
	return c.Elems[r.Intn(len(c.Elems))]
}

// Same reports whether two carriers describe the same element set: either
// the same object, or finite carriers with identical element sequences.
// Two distinct infinite carriers cannot be compared and are accepted on
// trust (the structure constructors document this).
func Same(a, b *Carrier) bool {
	if a == b {
		return true
	}
	if a.Finite() && b.Finite() {
		if len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if a.Elems[i] != b.Elems[i] {
				return false
			}
		}
		return true
	}
	return !a.Finite() && !b.Finite()
}

// NewFinite builds a finite carrier from an element list.
func NewFinite(name string, elems []V) *Carrier {
	return &Carrier{Name: name, Elems: elems}
}

// NewSampled builds an infinite (or too-large-to-enumerate) carrier from a
// sampler.
func NewSampled(name string, sample func(r *rand.Rand) V) *Carrier {
	return &Carrier{Name: name, Sample: sample}
}

// Ints returns the finite carrier {lo, lo+1, …, hi}.
func Ints(lo, hi int) *Carrier {
	if hi < lo {
		panic("value: Ints with hi < lo")
	}
	elems := make([]V, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		elems = append(elems, i)
	}
	return &Carrier{
		Name:  fmt.Sprintf("{%d..%d}", lo, hi),
		Elems: elems,
		Sample: func(r *rand.Rand) V {
			return lo + r.Intn(hi-lo+1)
		},
	}
}

// Product returns the carrier of pairs drawn from s and t. It is finite iff
// both factors are.
func Product(s, t *Carrier) *Carrier {
	name := s.Name + "×" + t.Name
	if s.Finite() && t.Finite() {
		elems := make([]V, 0, len(s.Elems)*len(t.Elems))
		for _, a := range s.Elems {
			for _, b := range t.Elems {
				elems = append(elems, Pair{a, b})
			}
		}
		return &Carrier{Name: name, Elems: elems, Sample: func(r *rand.Rand) V {
			return Pair{s.Draw(r), t.Draw(r)}
		}}
	}
	return NewSampled(name, func(r *rand.Rand) V {
		return Pair{s.Draw(r), t.Draw(r)}
	})
}

// Union returns the carrier of the disjoint union of s and t: elements of s
// tagged 0 and elements of t tagged 1.
func Union(s, t *Carrier) *Carrier {
	name := s.Name + "⊎" + t.Name
	if s.Finite() && t.Finite() {
		elems := make([]V, 0, len(s.Elems)+len(t.Elems))
		for _, a := range s.Elems {
			elems = append(elems, Tagged{0, a})
		}
		for _, b := range t.Elems {
			elems = append(elems, Tagged{1, b})
		}
		return &Carrier{Name: name, Elems: elems}
	}
	return NewSampled(name, func(r *rand.Rand) V {
		if r.Intn(2) == 0 {
			return Tagged{0, s.Draw(r)}
		}
		return Tagged{1, t.Draw(r)}
	})
}

// Adjoin returns a carrier extended with the extra element x (used by
// AddTop, AddBot and the Szendrei construction). Adjoining an element the
// finite carrier already contains is a no-op on the element list, so the
// construction is idempotent.
func Adjoin(c *Carrier, x V, name string) *Carrier {
	if c.Finite() {
		if c.Contains(x) {
			return &Carrier{Name: name, Elems: append([]V(nil), c.Elems...)}
		}
		elems := make([]V, 0, len(c.Elems)+1)
		elems = append(elems, c.Elems...)
		elems = append(elems, x)
		return &Carrier{Name: name, Elems: elems}
	}
	return NewSampled(name, func(r *rand.Rand) V {
		// Give the adjoined element a modest but non-negligible weight so
		// sampled property checks exercise it.
		if r.Intn(8) == 0 {
			return x
		}
		return c.Draw(r)
	})
}

// Without returns a finite carrier with every occurrence of x removed.
// It panics on infinite carriers.
func Without(c *Carrier, x V, name string) *Carrier {
	if !c.Finite() {
		panic("value: Without on infinite carrier " + c.Name)
	}
	elems := make([]V, 0, len(c.Elems))
	for _, e := range c.Elems {
		if e != x {
			elems = append(elems, e)
		}
	}
	return &Carrier{Name: name, Elems: elems}
}
