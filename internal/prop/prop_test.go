package prop

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStatusString(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Fatal("Status.String wrong")
	}
}

func TestKleeneTruthTables(t *testing.T) {
	type row struct{ a, b, and, or Status }
	rows := []row{
		{True, True, True, True},
		{True, False, False, True},
		{True, Unknown, Unknown, True},
		{False, True, False, True},
		{False, False, False, False},
		{False, Unknown, False, Unknown},
		{Unknown, True, Unknown, True},
		{Unknown, False, False, Unknown},
		{Unknown, Unknown, Unknown, Unknown},
	}
	for _, r := range rows {
		if got := And(r.a, r.b); got != r.and {
			t.Errorf("And(%v,%v) = %v, want %v", r.a, r.b, got, r.and)
		}
		if got := Or(r.a, r.b); got != r.or {
			t.Errorf("Or(%v,%v) = %v, want %v", r.a, r.b, got, r.or)
		}
	}
}

func TestNot(t *testing.T) {
	if Not(True) != False || Not(False) != True || Not(Unknown) != Unknown {
		t.Fatal("Not wrong")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != True || FromBool(false) != False {
		t.Fatal("FromBool wrong")
	}
}

// Kleene logic laws checked property-style over the 3-element domain.
func TestKleeneLaws(t *testing.T) {
	statuses := []Status{True, False, Unknown}
	for _, a := range statuses {
		for _, b := range statuses {
			if And(a, b) != And(b, a) {
				t.Fatalf("And not commutative at %v,%v", a, b)
			}
			if Or(a, b) != Or(b, a) {
				t.Fatalf("Or not commutative at %v,%v", a, b)
			}
			// De Morgan.
			if Not(And(a, b)) != Or(Not(a), Not(b)) {
				t.Fatalf("De Morgan (And) fails at %v,%v", a, b)
			}
			if Not(Or(a, b)) != And(Not(a), Not(b)) {
				t.Fatalf("De Morgan (Or) fails at %v,%v", a, b)
			}
			for _, c := range statuses {
				if And(And(a, b), c) != And(a, And(b, c)) {
					t.Fatalf("And not associative")
				}
				if Or(Or(a, b), c) != Or(a, Or(b, c)) {
					t.Fatalf("Or not associative")
				}
				// Distributivity holds in Kleene logic.
				if And(a, Or(b, c)) != Or(And(a, b), And(a, c)) {
					t.Fatalf("distributivity fails at %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestKleeneInvolution(t *testing.T) {
	f := func(n uint8) bool {
		s := Status(n % 3)
		return Not(Not(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := Make()
	if s.Status(MLeft) != Unknown {
		t.Fatal("empty set must read Unknown")
	}
	s.Declare(MLeft)
	if !s.Holds(MLeft) || s.Fails(MLeft) {
		t.Fatal("Declare must make property hold")
	}
	if s.Get(MLeft).Rule != "declared" {
		t.Fatal("Declare must record provenance")
	}
	s.DeclareFalse(ILeft, "witness here")
	if !s.Fails(ILeft) {
		t.Fatal("DeclareFalse must make property fail")
	}
	if s.Get(ILeft).Witness != "witness here" {
		t.Fatal("DeclareFalse must record the witness")
	}
}

func TestNilSetReads(t *testing.T) {
	var s Set
	if s.Status(MLeft) != Unknown || s.Holds(MLeft) || s.Fails(MLeft) {
		t.Fatal("nil set must behave as all-Unknown")
	}
}

func TestClone(t *testing.T) {
	s := Make()
	s.Declare(MLeft)
	c := s.Clone()
	c.DeclareFalse(MLeft, "changed")
	if !s.Holds(MLeft) {
		t.Fatal("Clone must not alias")
	}
}

func TestSummaryDeterministic(t *testing.T) {
	s := Make()
	s.Declare(NDLeft)
	s.DeclareFalse(CLeft, "w")
	s.Derive(MLeft, Unknown, "x") // Unknown entries are omitted
	got := s.Summary()
	if got != "C:false ND:true" {
		t.Fatalf("Summary = %q", got)
	}
	if strings.Contains(got, "M") {
		t.Fatal("Unknown must not appear in summary")
	}
}

func TestJudgementString(t *testing.T) {
	j := Judgement{Status: False, Rule: "model-check", Witness: "a=1"}
	got := j.String()
	if !strings.Contains(got, "false") || !strings.Contains(got, "model-check") || !strings.Contains(got, "a=1") {
		t.Fatalf("Judgement.String = %q", got)
	}
}
