// Package prop defines the property vocabulary of the metarouting
// inference engine: the named algebraic properties of routing structures,
// a three-valued truth status, and property sets with provenance.
//
// The whole point of metarouting is that these properties are *derived*
// from the structure of an algebra expression, the way types are derived
// in a programming language. A property judgement is therefore never a
// bare boolean: a True carries the rule or witness that established it, a
// False carries a counterexample, and an Unknown signals that neither the
// rules nor the (possibly sampled) model checker could decide.
package prop

import (
	"fmt"
	"sort"
	"strings"
)

// ID names an algebraic property. The per-quadrant meanings follow
// Figures 2 and 3 of the paper; order- and semigroup-level properties
// follow §II–§IV.
type ID string

// Order properties (of a preorder ≲).
const (
	// Reflexive: x ≲ x.
	Reflexive ID = "Reflexive"
	// Transitive: x ≲ y ∧ y ≲ z ⇒ x ≲ z.
	Transitive ID = "Transitive"
	// Antisymmetric: x ≲ y ∧ y ≲ x ⇒ x = y.
	Antisymmetric ID = "Antisymmetric"
	// Full (total as a preorder): x ≲ y ∨ y ≲ x.
	Full ID = "Full"
	// HasTop: there is ⊤ with x ≲ ⊤ for all x (a least-preferred element).
	HasTop ID = "HasTop"
	// HasBot: there is ⊥ with ⊥ ≲ x for all x (a most-preferred element).
	HasBot ID = "HasBot"
)

// Semigroup properties (of a binary operation).
const (
	// Associative: (a·b)·c = a·(b·c).
	Associative ID = "Associative"
	// Commutative: a·b = b·a.
	Commutative ID = "Commutative"
	// Idempotent: a·a = a.
	Idempotent ID = "Idempotent"
	// Selective: a·b ∈ {a, b}.
	Selective ID = "Selective"
	// HasIdentity: ∃α. α·a = a = a·α.
	HasIdentity ID = "HasIdentity"
	// HasAbsorber: ∃ω. ω·a = ω = a·ω.
	HasAbsorber ID = "HasAbsorber"
)

// Routing properties in their left/right flavours. For structures where
// the distinction is meaningless (transforms apply functions on one side
// only) the left name is canonical and the right is not populated.
const (
	// MLeft is left-monotonicity (Fig 2): per quadrant,
	//   bisemigroup:        c⊗(a⊕b) = (c⊗a)⊕(c⊗b)   (left distributivity)
	//   order semigroup:    a ≲ b ⇒ c⊗a ≲ c⊗b
	//   semigroup transform: f(a⊕b) = f(a)⊕f(b)      (homomorphism)
	//   order transform:    a ≲ b ⇒ f(a) ≲ f(b)
	MLeft ID = "M"
	// MRight is right-monotonicity, operands reversed (algebraic quadrants).
	MRight ID = "M-right"
	// NLeft is left-cancellativity (Fig 2): per quadrant,
	//   bisemigroup:        c⊗a = c⊗b ⇒ a = b
	//   order semigroup:    c⊗a ~ c⊗b ⇒ a ~ b ∨ a # b
	//   semigroup transform: f(a) = f(b) ⇒ a = b
	//   order transform:    f(a) ~ f(b) ⇒ a ~ b ∨ a # b
	NLeft ID = "N"
	// NRight is right-cancellativity.
	NRight ID = "N-right"
	// CLeft is the left condensed property (Fig 2): per quadrant,
	//   bisemigroup:        c⊗a = c⊗b
	//   order semigroup:    c⊗a ~ c⊗b
	//   semigroup transform: f(a) = f(b)
	//   order transform:    f(a) ~ f(b)
	CLeft ID = "C"
	// CRight is the right condensed property.
	CRight ID = "C-right"
	// NDLeft is nondecreasing (Fig 3): per quadrant,
	//   bisemigroup:        a = a ⊕ (c⊗a)
	//   order semigroup:    a ≲ c⊗a
	//   semigroup transform: a = a ⊕ f(a)
	//   order transform:    a ≲ f(a)
	NDLeft ID = "ND"
	// NDRight is the right flavour of ND.
	NDRight ID = "ND-right"
	// SILeft is *strictly increasing everywhere* — the I property with no
	// ⊤ exemption: a < f(a) (resp. a < c⊗a) for every a. In the algebraic
	// quadrants (bisemigroups, semigroup transforms) Fig 3's I is already
	// exemption-free, so there SI coincides with I. In the ordered
	// quadrants SI is strictly stronger than I whenever a ⊤ exists, and
	// it is SI — not I — that makes the lexicographic ND/I rules of
	// Theorem 5 exact on carriers whose ⊤ is an ordinary saturating
	// weight rather than an adjoined error element (cf. the §VI
	// discussion of ×ω and error values).
	SILeft ID = "SI"
	// SIRight is the right flavour of SI.
	SIRight ID = "SI-right"
	// ILeft is increasing (Fig 3): per quadrant,
	//   bisemigroup:        a = a ⊕ (c⊗a) ≠ c⊗a
	//   order semigroup:    a ≠ ⊤ ⇒ a < c⊗a
	//   semigroup transform: a = a ⊕ f(a) ≠ f(a)
	//   order transform:    a ≠ ⊤ ⇒ a < f(a)
	ILeft ID = "I"
	// IRight is the right flavour of I.
	IRight ID = "I-right"
	// TopFixed is the T property of §II: every arc function fixes ⊤,
	// f(⊤) = ⊤ (only meaningful when the order has a top).
	TopFixed ID = "T"
)

// Status is a three-valued truth judgement.
type Status int8

// The three truth values. The zero value is Unknown so an absent entry in
// a Set reads correctly.
const (
	Unknown Status = iota
	True
	False
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// And is three-valued conjunction (Kleene).
func And(a, b Status) Status {
	switch {
	case a == False || b == False:
		return False
	case a == True && b == True:
		return True
	default:
		return Unknown
	}
}

// Or is three-valued disjunction (Kleene).
func Or(a, b Status) Status {
	switch {
	case a == True || b == True:
		return True
	case a == False && b == False:
		return False
	default:
		return Unknown
	}
}

// Not is three-valued negation.
func Not(a Status) Status {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// FromBool lifts a boolean into a Status.
func FromBool(b bool) Status {
	if b {
		return True
	}
	return False
}

// Judgement is a property status with provenance: either the name of the
// inference rule that derived it, or a concrete witness/counterexample
// found by model checking.
type Judgement struct {
	Status Status
	// Rule names the inference rule that produced the judgement
	// (e.g. "Thm4: M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T))"), or "declared",
	// or "model-check"/"sampled" for direct checks.
	Rule string
	// Witness holds a human-readable counterexample for False
	// judgements found by checking, e.g. "a=1 b=2 c=0: c⊗a ~ c⊗b but a<b".
	Witness string
}

// String implements fmt.Stringer.
func (j Judgement) String() string {
	s := j.Status.String()
	if j.Rule != "" {
		s += " [" + j.Rule + "]"
	}
	if j.Witness != "" {
		s += " (" + j.Witness + ")"
	}
	return s
}

// Set maps properties to judgements. A nil Set behaves as all-Unknown for
// reads; use Make or copy-on-write helpers for writes.
type Set map[ID]Judgement

// Make returns an empty, writable property set.
func Make() Set { return Set{} }

// Get returns the judgement for p (zero Judgement, i.e. Unknown, if absent).
func (s Set) Get(p ID) Judgement {
	if s == nil {
		return Judgement{}
	}
	return s[p]
}

// Status returns just the status for p.
func (s Set) Status(p ID) Status { return s.Get(p).Status }

// Holds reports whether p is known True.
func (s Set) Holds(p ID) bool { return s.Status(p) == True }

// Fails reports whether p is known False.
func (s Set) Fails(p ID) bool { return s.Status(p) == False }

// Put records a judgement for p, overwriting any previous value.
func (s Set) Put(p ID, j Judgement) { s[p] = j }

// Declare records p as true by declaration (used by base algebras whose
// properties are established by the library's own tests).
func (s Set) Declare(p ID) { s[p] = Judgement{Status: True, Rule: "declared"} }

// DeclareFalse records p as false by declaration.
func (s Set) DeclareFalse(p ID, witness string) {
	s[p] = Judgement{Status: False, Rule: "declared", Witness: witness}
}

// Derive records a judgement produced by the named inference rule.
func (s Set) Derive(p ID, st Status, rule string) {
	s[p] = Judgement{Status: st, Rule: rule}
}

// Clone returns a writable copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Summary renders the known (non-Unknown) judgements sorted by property
// name, e.g. "C:false I:true M:true ND:true".
func (s Set) Summary() string {
	keys := make([]string, 0, len(s))
	for k, v := range s {
		if v.Status != Unknown {
			keys = append(keys, string(k))
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%s", k, s[ID(k)].Status)
	}
	return strings.Join(parts, " ")
}

// RoutingIDs lists the properties that govern routing-algorithm
// applicability, in display order.
var RoutingIDs = []ID{MLeft, MRight, NLeft, NRight, CLeft, CRight, NDLeft, NDRight, ILeft, IRight, SILeft, SIRight, TopFixed}

// OrderIDs lists the order-level properties in display order.
var OrderIDs = []ID{Reflexive, Transitive, Antisymmetric, Full, HasTop, HasBot}

// SemigroupIDs lists the semigroup-level properties in display order.
var SemigroupIDs = []ID{Associative, Commutative, Idempotent, Selective, HasIdentity, HasAbsorber}
