// Package router realizes the paper's opening equation
//
//	routing protocol = routing language + routing algorithm + proof
//
// as an API: a Router pairs an inferred algebra with a routing algorithm,
// and construction *fails* — with the inference engine's causal
// explanation — when the algebra's derived properties do not license the
// algorithm. The "proof" component is the machine-checked property
// derivation.
//
// Construction also fixes the execution backend: algebras whose derived
// carrier is finite (and small enough for dense tables) run compiled,
// everything else runs the dynamic interpreter — the same decision the
// property engine makes for licensing, extended to execution strategy.
package router

import (
	"fmt"
	"math/rand"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// Algorithm names a routing algorithm with a property-based license.
type Algorithm string

// The available algorithms and what licenses them.
const (
	// Dijkstra requires M ∧ ND over a full (total) preorder; yields
	// global optima.
	Dijkstra Algorithm = "dijkstra"
	// Fixpoint (synchronous Bellman–Ford/Gauss–Seidel) requires M; its
	// converged solution dominates every path (global optima over walks).
	Fixpoint Algorithm = "fixpoint"
	// PathVector requires I; the asynchronous protocol is then guaranteed
	// to converge to a stable routing (local optima).
	PathVector Algorithm = "pathvector"
	// DistanceVector requires I plus a function-fixed ⊤ (T and HasTop):
	// without paths, termination after withdrawals rests on bounded
	// counting into the ⊤ ceiling.
	DistanceVector Algorithm = "distancevector"
)

// Algorithms lists every algorithm in display order.
var Algorithms = []Algorithm{Dijkstra, Fixpoint, PathVector, DistanceVector}

// LicenseError reports a refused pairing, carrying the engine's causal
// explanation of the missing property.
type LicenseError struct {
	Algorithm Algorithm
	Missing   prop.ID
	// Explanation is Algebra.Explain(Missing).
	Explanation string
}

// Error implements error.
func (e *LicenseError) Error() string {
	return fmt.Sprintf("router: %s requires %s, which the algebra lacks:\n%s",
		e.Algorithm, e.Missing, e.Explanation)
}

// Router is a licensed (algebra, algorithm) pairing.
type Router struct {
	// Algebra is the inferred routing algebra.
	Algebra *core.Algebra
	// Algo is the licensed algorithm.
	Algo Algorithm
	// Mode is the execution backend New selected from the algebra's
	// derived shape: ModeCompiled when the carrier is finite and within
	// the auto-compile limit, ModeDynamic otherwise.
	Mode exec.Mode
}

// New checks the license and builds a Router. The returned error, when
// non-nil, is a *LicenseError naming the first missing property with its
// causal explanation.
func New(a *core.Algebra, algo Algorithm) (*Router, error) {
	var required []prop.ID
	switch algo {
	case Dijkstra:
		required = []prop.ID{prop.MLeft, prop.NDLeft, prop.Full}
	case Fixpoint:
		required = []prop.ID{prop.MLeft}
	case PathVector:
		required = []prop.ID{prop.ILeft}
	case DistanceVector:
		required = []prop.ID{prop.ILeft, prop.HasTop, prop.TopFixed}
	default:
		return nil, fmt.Errorf("router: unknown algorithm %q", algo)
	}
	for _, id := range required {
		if !a.Props.Holds(id) {
			return nil, &LicenseError{Algorithm: algo, Missing: id, Explanation: a.Explain(id)}
		}
	}
	mode := exec.ModeDynamic
	if a.OT.Finite() && a.OT.Carrier().Size() <= exec.AutoLimit {
		mode = exec.ModeCompiled
	}
	return &Router{Algebra: a, Algo: algo, Mode: mode}, nil
}

// Licensed returns the algorithms the algebra's properties license, in
// display order — the "what may I run?" query.
func Licensed(a *core.Algebra) []Algorithm {
	var out []Algorithm
	for _, algo := range Algorithms {
		if _, err := New(a, algo); err == nil {
			out = append(out, algo)
		}
	}
	return out
}

// Engine builds the execution engine for one originated weight under the
// backend New selected. A compiled router whose origin falls outside the
// compiled carrier (possible for sampled origins of addtop-style
// wrappers) degrades to the dynamic interpreter rather than failing.
func (r *Router) Engine(origin value.V) exec.Algebra {
	eng, err := exec.New(r.Algebra.OT, r.Mode, origin)
	if err != nil {
		return exec.NewDynamic(r.Algebra.OT)
	}
	return eng
}

// Solve computes routes to dest with the licensed algorithm on the
// selected execution backend. The asynchronous algorithms (PathVector,
// DistanceVector) are driven with a seeded scheduler and their quiescent
// state is returned in Result form.
func (r *Router) Solve(g *graph.Graph, dest int, origin value.V, seed int64) (*solve.Result, error) {
	eng := r.Engine(origin)
	switch r.Algo {
	case Dijkstra:
		return solve.DijkstraEngine(eng, g, dest, origin), nil
	case Fixpoint:
		res := solve.BellmanFordEngine(eng, g, dest, origin, 0)
		if !res.Converged {
			return res, fmt.Errorf("router: fixpoint did not converge within budget")
		}
		return res, nil
	case PathVector, DistanceVector:
		out := protocol.RunEngine(eng, g, protocol.Config{
			Dest: dest, Origin: origin, MaxDelay: 3,
			Rand:           rand.New(rand.NewSource(seed)),
			DistanceVector: r.Algo == DistanceVector,
		})
		if !out.Converged {
			return nil, fmt.Errorf("router: protocol did not quiesce within budget")
		}
		res := &solve.Result{
			Dest:      dest,
			Routed:    out.Routed,
			Weights:   out.Weights,
			NextHop:   out.NextHop,
			Rounds:    out.Steps,
			Converged: true,
		}
		return res, nil
	default:
		return nil, fmt.Errorf("router: unknown algorithm %q", r.Algo)
	}
}

// Guarantee describes, in prose, what the licensed pairing promises —
// the statement the paper's proof component would make.
func (r *Router) Guarantee() string {
	switch r.Algo {
	case Dijkstra:
		return "globally optimal routes: M ∧ ND over a total preorder make the greedy settle order exact"
	case Fixpoint:
		return "path-dominating routes: M makes the converged fixpoint ≲ every path weight"
	case PathVector:
		return "convergence to a stable routing under any message schedule: I forbids policy disputes"
	case DistanceVector:
		return "convergence with bounded counting: I drives weights into the function-fixed ⊤ after loss"
	default:
		return "unknown"
	}
}
