package router

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

func alg(t testing.TB, src string) *core.Algebra {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLicensingMatrix(t *testing.T) {
	cases := []struct {
		src  string
		want map[Algorithm]bool
	}{
		// delay: M ∧ ND ∧ I ∧ T ∧ total — everything is licensed.
		{"delay(64,3)", map[Algorithm]bool{Dijkstra: true, Fixpoint: true, PathVector: true, DistanceVector: true}},
		// bw: M ∧ ND but ¬I — global methods only.
		{"bw(8)", map[Algorithm]bool{Dijkstra: true, Fixpoint: true, PathVector: false, DistanceVector: false}},
		// scoped(bw, delay): M but ¬ND — fixpoint only.
		{"scoped(bw(4), delay(16,2))", map[Algorithm]bool{Dijkstra: false, Fixpoint: true, PathVector: false, DistanceVector: false}},
		// gadget: nothing.
		{"gadget", map[Algorithm]bool{Dijkstra: false, Fixpoint: false, PathVector: false, DistanceVector: false}},
	}
	for _, c := range cases {
		a := alg(t, c.src)
		for algo, want := range c.want {
			_, err := New(a, algo)
			if (err == nil) != want {
				t.Errorf("%s / %s: licensed=%v, want %v (err: %v)", c.src, algo, err == nil, want, err)
			}
		}
		lic := Licensed(a)
		count := 0
		for _, want := range c.want {
			if want {
				count++
			}
		}
		if len(lic) != count {
			t.Errorf("%s: Licensed() = %v, want %d entries", c.src, lic, count)
		}
	}
}

func TestLicenseErrorExplains(t *testing.T) {
	a := alg(t, "lex(bw(8), delay(8,3))")
	_, err := New(a, Dijkstra)
	var le *LicenseError
	if !errors.As(err, &le) {
		t.Fatalf("want *LicenseError, got %v", err)
	}
	if le.Missing != "M" {
		t.Fatalf("missing = %s, want M (checked first)", le.Missing)
	}
	if !strings.Contains(le.Explanation, "Theorem 4") {
		t.Fatalf("explanation must cite the rule:\n%s", le.Explanation)
	}
	if !strings.Contains(le.Error(), "requires M") {
		t.Fatalf("Error() = %q", le.Error())
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := New(alg(t, "delay(8,1)"), Algorithm("ospf")); err == nil {
		t.Fatal("unknown algorithm must be rejected")
	}
}

// TestSolveAgreementAcrossAlgorithms: on an everything-licensed algebra,
// all four algorithms agree on weights.
func TestSolveAgreementAcrossAlgorithms(t *testing.T) {
	a := alg(t, "delay(255,3)")
	r := rand.New(rand.NewSource(3))
	g := graph.Random(r, 9, 0.3, graph.UniformLabels(3))
	var results []*solve.Result
	for _, algo := range Algorithms {
		rt, err := New(a, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		res, err := rt.Solve(g, 0, 0, 7)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		results = append(results, res)
	}
	base := results[0]
	for i, res := range results[1:] {
		for u := 0; u < g.N; u++ {
			if base.Routed[u] != res.Routed[u] {
				t.Fatalf("%s node %d: routedness differs", Algorithms[i+1], u)
			}
			if base.Routed[u] && base.Weights[u] != res.Weights[u] {
				t.Fatalf("%s node %d: %v vs %v", Algorithms[i+1], u, base.Weights[u], res.Weights[u])
			}
		}
	}
}

func TestGuaranteeProse(t *testing.T) {
	a := alg(t, "delay(16,1)")
	for _, algo := range Algorithms {
		rt, err := New(a, algo)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Guarantee() == "" || rt.Guarantee() == "unknown" {
			t.Fatalf("%s: empty guarantee", algo)
		}
	}
}

func TestFixpointOnScopedProduct(t *testing.T) {
	a := alg(t, "scoped(bw(4), delay(16,2))")
	rt, err := New(a, Fixpoint)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	g := graph.Random(r, 7, 0.35, graph.UniformLabels(len(a.OT.F.Fns)))
	res, err := rt.Solve(g, 0, value.Pair{A: 4, B: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := solve.VerifyDominates(a.OT, g, 0, value.Pair{A: 4, B: 0}, res); !ok {
		t.Fatalf("the licensed guarantee must hold: %s", why)
	}
}
