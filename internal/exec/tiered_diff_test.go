// Differential tests for the tiered backend: random algebras crossed
// with random topologies, asserting the tiered engine is *bit-identical*
// to the pure interpreter — identical materialized Results AND identical
// index-form Raw solutions (same int32 weight indices), through both
// solver entry forms. Index-level identity is the property the serve
// snapshot builder depends on: arena columns store engine indices, so a
// backend that merely agreed up to value equality could still produce
// different columns.
package exec_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/rib"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// tierPair builds the dynamic oracle and the tiered engine for one
// algebra. Neither can fail.
func tierPair(t *testing.T, ot *ost.OrderTransform, origins ...value.V) (dyn, tier exec.Algebra) {
	t.Helper()
	dyn, err := exec.New(ot, exec.ModeDynamic, origins...)
	if err != nil {
		t.Fatalf("%s: dynamic: %v", ot.Name, err)
	}
	tier, err = exec.New(ot, exec.ModeTiered, origins...)
	if err != nil {
		t.Fatalf("%s: tiered: %v", ot.Name, err)
	}
	if tier.Mode() != exec.ModeTiered {
		t.Fatalf("%s: tiered engine reports mode %q", ot.Name, tier.Mode())
	}
	return dyn, tier
}

// ownRaw deep-copies a Raw out of its workspace aliasing so two raws
// from different workspaces can be compared after further solves.
func ownRaw(r solve.Raw) solve.Raw {
	r.Routed = append([]bool(nil), r.Routed...)
	r.W = append([]int32(nil), r.W...)
	r.NextHop = append([]int(nil), r.NextHop...)
	return r
}

// tierDiffBoth runs both Bellman-Ford entry forms — the materialized
// *Result form and the index-form Raw — on both backends and asserts
// bit-identity, including the raw int32 weight indices.
func tierDiffBoth(t *testing.T, label string, dyn, tier exec.Algebra, g *graph.Graph, origin value.V) {
	t.Helper()
	wsD, wsT := solve.NewWorkspace(), solve.NewWorkspace()

	rd := wsD.BellmanFord(dyn, g, 0, origin, 0)
	rt := wsT.BellmanFord(tier, g, 0, origin, 0)
	if !reflect.DeepEqual(rd, rt) {
		t.Fatalf("%s: BellmanFord results differ:\n dyn: %+v\ntier: %+v", label, rd, rt)
	}

	rawD := ownRaw(wsD.BellmanFordRaw(dyn, g, 0, origin, 0))
	rawT := ownRaw(wsT.BellmanFordRaw(tier, g, 0, origin, 0))
	if !reflect.DeepEqual(rawD, rawT) {
		t.Fatalf("%s: BellmanFordRaw index forms differ (weight indices not bit-identical):\n dyn: %+v\ntier: %+v",
			label, rawD, rawT)
	}
}

// TestTieredDifferentialSolvers: every solver agrees bit-identically
// between the tiered backend and the dynamic oracle on random algebra ×
// topology pairs, and both Bellman-Ford entry forms (materialized and
// index-form Raw) agree down to the int32 weight indices.
func TestTieredDifferentialSolvers(t *testing.T) {
	r := rand.New(rand.NewSource(9091))
	for trial := 0; trial < 60; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		origin := diffOrigin(r, a.OT)
		dyn, tier := tierPair(t, a.OT, origin)
		g := randTopo(r, a.OT.F.Size())
		label := fmt.Sprintf("trial %d: %s on %s origin %s", trial, src, g, value.Format(origin))

		sameResult(t, label+" dijkstra",
			solve.DijkstraEngine(dyn, g, 0, origin), solve.DijkstraEngine(tier, g, 0, origin))
		sameResult(t, label+" dijkstra-heap",
			solve.DijkstraHeapEngine(dyn, g, 0, origin), solve.DijkstraHeapEngine(tier, g, 0, origin))
		sameResult(t, label+" gauss-seidel",
			solve.GaussSeidelEngine(dyn, g, 0, origin, 0), solve.GaussSeidelEngine(tier, g, 0, origin, 0))
		tierDiffBoth(t, label, dyn, tier, g, origin)

		k := 1 + r.Intn(4)
		kd := solve.KBestEngine(dyn, g, 0, origin, k, 0)
		kt := solve.KBestEngine(tier, g, 0, origin, k, 0)
		if !reflect.DeepEqual(kd, kt) {
			t.Fatalf("%s kbest(k=%d): dynamic and tiered differ:\n dyn: %+v\ntier: %+v", label, k, kd, kt)
		}
	}
}

// TestTieredDifferentialRIB: RIB contents agree bit-identically between
// tiered and dynamic backends.
func TestTieredDifferentialRIB(t *testing.T) {
	r := rand.New(rand.NewSource(40404))
	for trial := 0; trial < 25; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		g := randTopo(r, a.OT.F.Size())
		origins := make(map[int]value.V)
		for _, d := range []int{0, g.N - 1} {
			origins[d] = diffOrigin(r, a.OT)
		}
		vs := make([]value.V, 0, len(origins))
		for _, v := range origins {
			vs = append(vs, v)
		}
		dyn, tier := tierPair(t, a.OT, vs...)
		rd, errD := rib.BuildEngine(dyn, g, origins)
		rt, errT := rib.BuildEngine(tier, g, origins)
		if (errD == nil) != (errT == nil) {
			t.Fatalf("trial %d: %s: build errors differ: %v vs %v", trial, src, errD, errT)
		}
		for d := range origins {
			for u := 0; u < g.N; u++ {
				ed, et := rd.Lookup(u, d), rt.Lookup(u, d)
				if !reflect.DeepEqual(ed, et) {
					t.Fatalf("trial %d: %s: entry (%d→%d) differs:\n dyn: %+v\ntier: %+v",
						trial, src, u, d, ed, et)
				}
			}
		}
	}
}

// TestTieredBigCarrier: on a carrier above AutoLimit — the population
// tiered compilation exists for — For() auto-selects the tiered backend
// under the default policy and the results stay bit-identical to the
// interpreter through both entry forms.
func TestTieredBigCarrier(t *testing.T) {
	const src = "lex(delay(127,2), delay(63,2))" // 128 × 64 = 8192 > AutoLimit
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := a.OT.Carrier().Size(); n <= exec.AutoLimit {
		t.Fatalf("carrier size %d does not exceed AutoLimit %d — test needs a bigger product", n, exec.AutoLimit)
	}
	b, ok := a.OT.Ord.Bot()
	if !ok {
		t.Fatalf("%s: no bottom origin", src)
	}
	if exec.DefaultMode() == exec.ModeAuto {
		if m := exec.For(a.OT, b).Mode(); m != exec.ModeTiered {
			t.Fatalf("For() on a %d-carrier picked %q, want tiered", a.OT.Carrier().Size(), m)
		}
	}
	r := rand.New(rand.NewSource(555))
	dyn, tier := tierPair(t, a.OT, b)
	for trial := 0; trial < 6; trial++ {
		g := randTopo(r, a.OT.F.Size())
		tierDiffBoth(t, fmt.Sprintf("big-carrier trial %d on %s", trial, g), dyn, tier, g, b)
	}
}
