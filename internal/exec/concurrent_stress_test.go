package exec_test

// Stress test for exec.Concurrent: N goroutines hammer one shared
// wrapped dynamic algebra with mixed Intern/Apply/Value/order calls
// while the race detector watches, and every observation is checked
// against the uninstrumented order transform as a serial oracle. The
// property under test is that the mutex wrapper makes the hash-consing
// table linearizable: one value ⇒ one index, forever, from every
// goroutine.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/value"
)

func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 4000
	)
	for _, expr := range []string{
		"lex(delay(8,2), bw(4))",
		"scoped(lp(3), hops(8))",
		"addtop(delay(16,3))",
	} {
		expr := expr
		t.Run(expr, func(t *testing.T) {
			a, err := core.InferString(expr)
			if err != nil {
				t.Fatal(err)
			}
			ot := a.OT
			shared := exec.Concurrent(exec.NewDynamic(ot))
			elems := ot.Carrier().Elems
			labels := ot.F.Size()

			type obs struct {
				v   value.V
				idx int32
			}
			observed := make([][]obs, goroutines)
			var wg sync.WaitGroup
			for gi := 0; gi < goroutines; gi++ {
				gi := gi
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(gi)*104729 + 7))
					for op := 0; op < opsPerG; op++ {
						v := elems[r.Intn(len(elems))]
						idx, err := shared.Intern(v)
						if err != nil {
							t.Errorf("g%d: intern %s: %v", gi, value.Format(v), err)
							return
						}
						observed[gi] = append(observed[gi], obs{v, idx})
						switch op % 4 {
						case 0: // Apply must match the oracle by value.
							l := r.Intn(labels)
							got := shared.Value(shared.Apply(l, idx))
							want := ot.F.Fns[l].Apply(v)
							if !reflect.DeepEqual(got, want) {
								t.Errorf("g%d: apply fn%d(%s) = %s, want %s",
									gi, l, value.Format(v), value.Format(got), value.Format(want))
								return
							}
						case 1: // Value must round-trip the interned element.
							if got := shared.Value(idx); !reflect.DeepEqual(got, v) {
								t.Errorf("g%d: value(intern(%s)) = %s", gi, value.Format(v), value.Format(got))
								return
							}
						case 2: // Order relations must match the preorder.
							w := elems[r.Intn(len(elems))]
							widx, _ := shared.Intern(w)
							if got, want := shared.Leq(idx, widx), ot.Ord.Leq(v, w); got != want {
								t.Errorf("g%d: leq(%s,%s) = %v, want %v",
									gi, value.Format(v), value.Format(w), got, want)
								return
							}
						case 3:
							w := elems[r.Intn(len(elems))]
							widx, _ := shared.Intern(w)
							if got, want := shared.Equiv(idx, widx), ot.Ord.Equiv(v, w); got != want {
								t.Errorf("g%d: equiv(%s,%s) = %v, want %v",
									gi, value.Format(v), value.Format(w), got, want)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Hash-consing consistency across the whole run: every
			// goroutine that interned a value saw the same index, and a
			// serial re-intern still agrees.
			canon := map[string]int32{}
			for gi, seen := range observed {
				for _, o := range seen {
					key := value.Format(o.v)
					if prev, ok := canon[key]; ok && prev != o.idx {
						t.Fatalf("g%d: value %s interned to both %d and %d", gi, key, prev, o.idx)
					}
					canon[key] = o.idx
					if again, _ := shared.Intern(o.v); again != o.idx {
						t.Fatalf("re-intern %s: %d, then %d", key, o.idx, again)
					}
				}
			}
			if len(canon) == 0 {
				t.Fatal("no observations recorded")
			}
		})
	}
}
