// Differential tests for the unified execution layer: randomly generated
// finite algebras crossed with GNP/ring/grid topologies, asserting that
// the dynamic and compiled backends produce *identical* results — same
// weights, next hops, round counts, protocol outcomes and RIB contents —
// for every solver and the simulator. This is the executable statement
// that the compiled tables are a faithful image of the dynamic algebra,
// which is what licenses exec.For to pick backends silently.
package exec_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/bsg"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// randExpr draws a random finite algebra expression. Bases are kept
// small so composite carriers stay well under the compile cap.
func randExpr(r *rand.Rand, depth int) string {
	bases := []string{"delay(8,2)", "delay(16,3)", "bw(4)", "bw(8)", "hops(8)", "lp(3)"}
	if depth <= 0 || r.Intn(3) == 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(5) {
	case 0:
		return fmt.Sprintf("lex(%s, %s)", randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return fmt.Sprintf("scoped(%s, %s)", randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return fmt.Sprintf("addtop(%s)", randExpr(r, depth-1))
	case 3:
		return fmt.Sprintf("left(%s)", randExpr(r, depth-1))
	default:
		return fmt.Sprintf("right(%s)", randExpr(r, depth-1))
	}
}

// randTopo draws one of the three topology families.
func randTopo(r *rand.Rand, labels int) *graph.Graph {
	switch r.Intn(3) {
	case 0:
		return graph.Random(r, 4+r.Intn(8), 0.3, graph.UniformLabels(labels))
	case 1:
		return graph.Ring(r, 4+r.Intn(8), graph.UniformLabels(labels))
	default:
		return graph.Grid(r, 2+r.Intn(3), 2+r.Intn(3), graph.UniformLabels(labels))
	}
}

// enginePair builds the two backends for one algebra, skipping algebras
// the compiler rejects (none are expected from randExpr's size budget).
func enginePair(t *testing.T, ot *ost.OrderTransform, origin value.V) (dyn, comp exec.Algebra) {
	t.Helper()
	dyn, err := exec.New(ot, exec.ModeDynamic, origin)
	if err != nil {
		t.Fatalf("%s: dynamic: %v", ot.Name, err)
	}
	comp, err = exec.New(ot, exec.ModeCompiled, origin)
	if err != nil {
		t.Fatalf("%s: compile: %v", ot.Name, err)
	}
	return dyn, comp
}

func diffOrigin(r *rand.Rand, ot *ost.OrderTransform) value.V {
	if b, ok := ot.Ord.Bot(); ok && r.Intn(2) == 0 {
		return b
	}
	elems := ot.Carrier().Elems
	return elems[r.Intn(len(elems))]
}

func sameResult(t *testing.T, label string, a, b *solve.Result) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: dynamic and compiled results differ:\n dyn: %+v\ncomp: %+v", label, a, b)
	}
}

// TestEngineDifferentialSolvers: all five order-transform solvers agree
// across backends on random algebra × topology pairs.
func TestEngineDifferentialSolvers(t *testing.T) {
	r := rand.New(rand.NewSource(1729))
	for trial := 0; trial < 60; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue // size budget: keep compiles fast
		}
		origin := diffOrigin(r, a.OT)
		dyn, comp := enginePair(t, a.OT, origin)
		g := randTopo(r, a.OT.F.Size())
		label := fmt.Sprintf("trial %d: %s on %s origin %s", trial, src, g, value.Format(origin))

		sameResult(t, label+" dijkstra",
			solve.DijkstraEngine(dyn, g, 0, origin), solve.DijkstraEngine(comp, g, 0, origin))
		sameResult(t, label+" dijkstra-heap",
			solve.DijkstraHeapEngine(dyn, g, 0, origin), solve.DijkstraHeapEngine(comp, g, 0, origin))
		sameResult(t, label+" bellman-ford",
			solve.BellmanFordEngine(dyn, g, 0, origin, 0), solve.BellmanFordEngine(comp, g, 0, origin, 0))
		sameResult(t, label+" gauss-seidel",
			solve.GaussSeidelEngine(dyn, g, 0, origin, 0), solve.GaussSeidelEngine(comp, g, 0, origin, 0))

		k := 1 + r.Intn(4)
		kd := solve.KBestEngine(dyn, g, 0, origin, k, 0)
		kc := solve.KBestEngine(comp, g, 0, origin, k, 0)
		if !reflect.DeepEqual(kd, kc) {
			t.Fatalf("%s kbest(k=%d): dynamic and compiled differ:\n dyn: %+v\ncomp: %+v", label, k, kd, kc)
		}
	}
}

// TestEngineDifferentialProtocol: the asynchronous simulator, driven by
// identical seeds and link-event schedules, is bit-for-bit identical
// across backends.
func TestEngineDifferentialProtocol(t *testing.T) {
	r := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 40; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue
		}
		origin := diffOrigin(r, a.OT)
		dyn, comp := enginePair(t, a.OT, origin)
		g := randTopo(r, a.OT.F.Size())
		var events []protocol.LinkEvent
		if len(g.Arcs) > 0 && r.Intn(2) == 0 {
			arc := r.Intn(len(g.Arcs))
			events = append(events,
				protocol.LinkEvent{At: 20, Arc: arc, Fail: true},
				protocol.LinkEvent{At: 120, Arc: arc, Fail: false})
		}
		seed := r.Int63()
		run := func(eng exec.Algebra) *protocol.Outcome {
			return protocol.RunEngine(eng, g, protocol.Config{
				Dest: 0, Origin: origin, MaxDelay: 3, MaxSteps: 60 * g.N * g.N,
				Rand: rand.New(rand.NewSource(seed)), Events: events,
			})
		}
		od, oc := run(dyn), run(comp)
		if !reflect.DeepEqual(od, oc) {
			t.Fatalf("trial %d: %s on %s: protocol outcomes differ:\n dyn: %+v\ncomp: %+v",
				trial, src, g, od, oc)
		}
	}
}

// TestEngineDifferentialRIB: RIB contents (weights, full ECMP next-hop
// sets, forwarding paths) agree across backends.
func TestEngineDifferentialRIB(t *testing.T) {
	r := rand.New(rand.NewSource(31415))
	for trial := 0; trial < 25; trial++ {
		src := randExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue
		}
		g := randTopo(r, a.OT.F.Size())
		origins := make(map[int]value.V)
		for _, d := range []int{0, g.N - 1} {
			origins[d] = diffOrigin(r, a.OT)
		}
		vs := make([]value.V, 0, len(origins))
		for _, v := range origins {
			vs = append(vs, v)
		}
		dyn, err := exec.New(a.OT, exec.ModeDynamic, vs...)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := exec.New(a.OT, exec.ModeCompiled, vs...)
		if err != nil {
			t.Fatal(err)
		}
		rd, errD := rib.BuildEngine(dyn, g, origins)
		rc, errC := rib.BuildEngine(comp, g, origins)
		if (errD == nil) != (errC == nil) {
			t.Fatalf("trial %d: %s: build errors differ: %v vs %v", trial, src, errD, errC)
		}
		for d := range origins {
			for u := 0; u < g.N; u++ {
				ed, ec := rd.Lookup(u, d), rc.Lookup(u, d)
				if !reflect.DeepEqual(ed, ec) {
					t.Fatalf("trial %d: %s: entry (%d→%d) differs:\n dyn: %+v\ncomp: %+v",
						trial, src, u, d, ed, ec)
				}
			}
		}
	}
}

// TestEngineDifferentialClosure: the algebraic-path solver agrees across
// semiring backends on the three stock bisemigroups.
func TestEngineDifferentialClosure(t *testing.T) {
	r := rand.New(rand.NewSource(1618))
	for trial := 0; trial < 15; trial++ {
		max := 8 + r.Intn(56)
		for _, b := range []*bsg.Bisemigroup{
			baselib.MinPlus(max), baselib.MaxMin(max), baselib.PlusTimes(max),
		} {
			nLabels := 3 + r.Intn(3)
			weights := make([]value.V, nLabels)
			for i := range weights {
				weights[i] = r.Intn(max + 1)
			}
			g := randTopo(r, nLabels)
			dyn := exec.NewDynamicSemiring(b)
			comp, err := exec.CompileSemiring(b)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, b.Name, err)
			}
			cd := solve.ClosureEngine(dyn, g, weights, 0)
			cc := solve.ClosureEngine(comp, g, weights, 0)
			if !reflect.DeepEqual(cd, cc) {
				t.Fatalf("trial %d: %s on %s: closures differ:\n dyn: %+v\ncomp: %+v",
					trial, b.Name, g, cd, cc)
			}
		}
	}
}
