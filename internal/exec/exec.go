// Package exec is the unified algebra execution layer: every routing
// algorithm in the repository — the five solvers of internal/solve, the
// asynchronous protocol simulator, the RIB builder and the licensed
// routers — consumes a single Algebra interface whose weights are dense
// int32 indices.
//
// Two implementations exist. The compiled backend wraps the dense tables
// of internal/compile: weight application and preference comparison are
// array lookups, removing all interface dispatch and map traffic from the
// hot path. The dynamic backend wraps an *ost.OrderTransform directly and
// hash-conses every weight it encounters, so index equality coincides
// with value equality and the two backends are observationally identical
// — the engine-differential tests assert exactly that for every solver
// and the simulator.
//
// A third, tiered backend (tiered.go) sits between them: it hash-conses
// like the dynamic backend but memoises Apply and the preorder into dense
// tables over the first-touch hot sub-carrier, so algebras past the
// auto-compile ceiling still execute mostly off tables.
//
// For(...) picks the backend automatically: finite algebras up to the
// auto-compile limit are compiled once (memoised per order transform) and
// everything else falls back to tiered. This realizes the design goal
// that the compiled form is the universal execution substrate rather than
// a Dijkstra-only special case.
package exec

import (
	"fmt"
	"sync"

	"metarouting/internal/compile"
	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// Mode selects an execution backend.
type Mode string

// The engine modes accepted by For, New and the CLIs' -engine flag.
const (
	// ModeAuto compiles finite algebras up to AutoLimit, else dynamic.
	ModeAuto Mode = "auto"
	// ModeDynamic always interprets the order transform directly.
	ModeDynamic Mode = "dynamic"
	// ModeCompiled requires dense tables; New fails if the algebra is not
	// finitely compilable.
	ModeCompiled Mode = "compiled"
	// ModeTiered interprets with first-touch dense memo tables over the
	// hot sub-carrier (see tiered.go). ModeAuto falls back to it for
	// carriers above AutoLimit.
	ModeTiered Mode = "tiered"
)

// ParseMode validates a -engine flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAuto, ModeDynamic, ModeCompiled, ModeTiered:
		return Mode(s), nil
	}
	return "", fmt.Errorf("exec: unknown engine mode %q (want auto, dynamic, compiled or tiered)", s)
}

// Algebra is the execution interface every routing algorithm consumes.
// Weights are int32 indices; Intern converts an originated value.V into
// index form and Value resolves indices back for results and diagnostics.
// Index equality coincides with value equality (==) on both backends.
//
// Implementations are safe for concurrent readers only when compiled;
// the dynamic backend interns lazily and must not be shared across
// goroutines.
type Algebra interface {
	// Name labels the underlying algebra.
	Name() string
	// Mode reports the backend kind (ModeDynamic, ModeCompiled or
	// ModeTiered).
	Mode() Mode
	// Source returns the order transform the engine executes.
	Source() *ost.OrderTransform
	// NumFns returns the arc-function count (graph labels must be below
	// it), or -1 for an infinite (sampled) function set.
	NumFns() int
	// Intern maps a carrier element to its weight index. The compiled
	// backend fails on values outside the carrier; the dynamic backend
	// never fails.
	Intern(v value.V) (int32, error)
	// Value resolves a weight index to its carrier element.
	Value(w int32) value.V
	// Apply applies arc function label to weight w.
	Apply(label int, w int32) int32
	// Leq, Lt and Equiv are the algebra's preorder on weight indices.
	Leq(a, b int32) bool
	Lt(a, b int32) bool
	Equiv(a, b int32) bool
}

// AutoLimit is the carrier-size ceiling for automatic compilation. The
// tables are quadratic (2·n² bytes plus n² preorder evaluations to
// build), so ModeAuto stops well below compile.New's 2¹⁵ hard cap:
// 4096² ≈ 16.7M entries ≈ 33 MB builds in well under a second, while a
// 12 870-element scoped product would already cost ~330 MB and tens of
// seconds. ModeCompiled goes to the hard cap on explicit request.
const AutoLimit = 4096

// defaultMode is consulted by For; the CLIs set it from -engine before
// any routing work starts (it is not synchronized for mid-run mutation).
var defaultMode = ModeAuto

// SetDefaultMode sets the backend selection policy used by For. Call it
// once at startup, before routing work begins.
func SetDefaultMode(m Mode) { defaultMode = m }

// DefaultMode returns the backend selection policy used by For.
func DefaultMode() Mode { return defaultMode }

// dynamic executes an order transform directly, hash-consing weights so
// that index equality is value equality.
type dynamic struct {
	ot    *ost.OrderTransform
	elems []value.V
	index map[value.V]int32
}

// NewDynamic builds the dynamic (interpreting) backend. It never fails
// and accepts infinite carriers and function sets.
func NewDynamic(t *ost.OrderTransform) Algebra {
	return &dynamic{ot: t, index: make(map[value.V]int32, 16)}
}

func (d *dynamic) Name() string                { return d.ot.Name }
func (d *dynamic) Mode() Mode                  { return ModeDynamic }
func (d *dynamic) Source() *ost.OrderTransform { return d.ot }

func (d *dynamic) NumFns() int { return d.ot.F.Size() }

func (d *dynamic) intern(v value.V) int32 {
	if w, ok := d.index[v]; ok {
		return w
	}
	w := int32(len(d.elems))
	d.elems = append(d.elems, v)
	d.index[v] = w
	return w
}

func (d *dynamic) Intern(v value.V) (int32, error) { return d.intern(v), nil }
func (d *dynamic) Value(w int32) value.V           { return d.elems[w] }

func (d *dynamic) Apply(label int, w int32) int32 {
	return d.intern(d.ot.F.Fns[label].Apply(d.elems[w]))
}

func (d *dynamic) Leq(a, b int32) bool { return d.ot.Ord.Leq(d.elems[a], d.elems[b]) }
func (d *dynamic) Lt(a, b int32) bool  { return d.ot.Ord.Lt(d.elems[a], d.elems[b]) }
func (d *dynamic) Equiv(a, b int32) bool {
	return d.ot.Ord.Equiv(d.elems[a], d.elems[b])
}

// tabled executes the dense-table form built by internal/compile.
type tabled struct {
	ot *ost.OrderTransform
	c  *compile.Compiled
}

// Compile builds the compiled backend. It fails exactly when compile.New
// does: infinite carriers or function sets, or carriers above the 2¹⁵
// hard cap.
func Compile(t *ost.OrderTransform) (Algebra, error) {
	c, err := compile.New(t)
	if err != nil {
		return nil, err
	}
	return &tabled{ot: t, c: c}, nil
}

func (e *tabled) Name() string                { return e.ot.Name }
func (e *tabled) Mode() Mode                  { return ModeCompiled }
func (e *tabled) Source() *ost.OrderTransform { return e.ot }
func (e *tabled) NumFns() int                 { return len(e.c.Fn) }

func (e *tabled) Intern(v value.V) (int32, error) {
	if w, ok := e.c.Index[v]; ok {
		return int32(w), nil
	}
	return 0, fmt.Errorf("exec: %s is not in the compiled carrier of %s",
		value.Format(v), e.ot.Name)
}

func (e *tabled) Value(w int32) value.V { return e.c.Elems[w] }

func (e *tabled) Apply(label int, w int32) int32 { return e.c.Fn[label][w] }

func (e *tabled) Leq(a, b int32) bool { return e.c.LeqBits[int(a)*e.c.N+int(b)] == 1 }
func (e *tabled) Lt(a, b int32) bool  { return e.c.LtBits[int(a)*e.c.N+int(b)] == 1 }
func (e *tabled) Equiv(a, b int32) bool {
	n := e.c.N
	return e.c.LeqBits[int(a)*n+int(b)] == 1 && e.c.LeqBits[int(b)*n+int(a)] == 1
}

// compileCache memoises compiled backends per order transform, so that
// repeated solver calls on the same algebra (the shape of every
// experiment sweep) pay the quadratic table build once. Failed compiles
// are cached too.
var compileCache sync.Map // *ost.OrderTransform → Algebra (nil entry = failed)

func cachedCompile(t *ost.OrderTransform) (Algebra, bool) {
	if got, ok := compileCache.Load(t); ok {
		eng, valid := got.(Algebra)
		return eng, valid && eng != nil
	}
	eng, err := Compile(t)
	if err != nil {
		compileCache.Store(t, (Algebra)(nil))
		return nil, false
	}
	actual, _ := compileCache.LoadOrStore(t, eng)
	if a, ok := actual.(Algebra); ok && a != nil {
		return a, true
	}
	return eng, true
}

// compilable reports whether t is worth compiling under the auto policy.
func compilable(t *ost.OrderTransform, limit int) bool {
	return t.Finite() && t.Carrier().Size() <= limit
}

// For picks the execution backend for t under the default mode: compiled
// (memoised) when the algebra is finite, within the auto limit, compiles
// cleanly and every origin in origins interns; tiered otherwise, so big
// lex products past the AutoLimit ceiling still execute the hot
// sub-carrier off dense tables. ModeDynamic forces the pure interpreter.
// It is the constructor the ost-level solver entry points use, which is
// what makes the compiled form the universal substrate.
func For(t *ost.OrderTransform, origins ...value.V) Algebra {
	if defaultMode == ModeDynamic {
		return NewDynamic(t)
	}
	if defaultMode != ModeTiered && compilable(t, AutoLimit) {
		if eng, ok := cachedCompile(t); ok {
			for _, o := range origins {
				if _, err := eng.Intern(o); err != nil {
					return NewTiered(t)
				}
			}
			return eng
		}
	}
	return NewTiered(t)
}

// New builds a backend under an explicit mode: ModeDynamic and
// ModeCompiled force their backend (compiled fails with the compile
// error, or when an origin does not intern); ModeAuto behaves like For.
func New(t *ost.OrderTransform, m Mode, origins ...value.V) (Algebra, error) {
	switch m {
	case ModeDynamic:
		return NewDynamic(t), nil
	case ModeTiered:
		return NewTiered(t), nil
	case ModeCompiled:
		eng, err := Compile(t)
		if err != nil {
			return nil, err
		}
		for _, o := range origins {
			if _, err := eng.Intern(o); err != nil {
				return nil, err
			}
		}
		return eng, nil
	case ModeAuto, "":
		return For(t, origins...), nil
	}
	return nil, fmt.Errorf("exec: unknown engine mode %q", m)
}

// Concurrent returns an engine safe for use from multiple goroutines —
// the sharing contract the serve snapshot builder relies on. Compiled
// backends are immutable after construction and are returned unchanged
// (lock-free); dynamic backends intern lazily and are wrapped in a
// mutex. Wrapping is idempotent.
func Concurrent(a Algebra) Algebra {
	if a.Mode() == ModeCompiled {
		return a
	}
	if _, ok := a.(*locked); ok {
		return a
	}
	return &locked{inner: a}
}

// locked serializes every weight operation of a non-thread-safe backend.
type locked struct {
	mu    sync.Mutex
	inner Algebra
}

func (l *locked) Name() string                { return l.inner.Name() }
func (l *locked) Mode() Mode                  { return l.inner.Mode() }
func (l *locked) Source() *ost.OrderTransform { return l.inner.Source() }
func (l *locked) NumFns() int                 { return l.inner.NumFns() }

func (l *locked) Intern(v value.V) (int32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Intern(v)
}

func (l *locked) Value(w int32) value.V {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Value(w)
}

func (l *locked) Apply(label int, w int32) int32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Apply(label, w)
}

func (l *locked) Leq(a, b int32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Leq(a, b)
}

func (l *locked) Lt(a, b int32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Lt(a, b)
}

func (l *locked) Equiv(a, b int32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Equiv(a, b)
}

// MustIntern interns v and panics on failure — for callers that already
// validated the origin against the engine (For and New do).
func MustIntern(e Algebra, v value.V) int32 {
	w, err := e.Intern(v)
	if err != nil {
		panic(err)
	}
	return w
}
