package exec

// White-box tests for the tiered backend's internals: the cold tail
// (indices past the hot capacity must interpret, and stay bit-identical
// to the dynamic oracle) and the table-growth path (memo contents filled
// before a grow must survive the copy into the wider layout).

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
)

// TestTieredColdTail drives a tiered engine whose hot capacity is
// artificially tiny (4) against the dynamic oracle: most operations land
// in the cold tail, and every index, Apply result and order answer must
// still be bit-identical.
func TestTieredColdTail(t *testing.T) {
	ot := baselib.Delay(200, 3)
	tier := newTieredCap(ot, 4)
	dyn := NewDynamic(ot)
	r := rand.New(rand.NewSource(77))

	var ws []int32
	for i := 0; i < 120; i++ {
		v := r.Intn(201)
		wt, _ := tier.Intern(v)
		wd, _ := dyn.Intern(v)
		if wt != wd {
			t.Fatalf("intern(%d): tiered index %d != dynamic index %d", v, wt, wd)
		}
		ws = append(ws, wt)
	}
	if tier.hotSize() != 4 {
		t.Fatalf("hot capacity grew past its cap: %d", tier.hotSize())
	}
	for i := 0; i < 2000; i++ {
		w := ws[r.Intn(len(ws))]
		label := r.Intn(ot.F.Size())
		// Apply twice: the first call may fill a memo cell, the second
		// must replay it — both must match the oracle.
		for k := 0; k < 2; k++ {
			at, ad := tier.Apply(label, w), dyn.Apply(label, w)
			if at != ad {
				t.Fatalf("apply(%d, w=%d): tiered %d != dynamic %d", label, w, at, ad)
			}
		}
		a, b := ws[r.Intn(len(ws))], ws[r.Intn(len(ws))]
		for k := 0; k < 2; k++ {
			if tier.Leq(a, b) != dyn.Leq(a, b) {
				t.Fatalf("leq(%d,%d): tiered and dynamic differ", a, b)
			}
			if tier.Lt(a, b) != dyn.Lt(a, b) {
				t.Fatalf("lt(%d,%d): tiered and dynamic differ", a, b)
			}
			if tier.Equiv(a, b) != dyn.Equiv(a, b) {
				t.Fatalf("equiv(%d,%d): tiered and dynamic differ", a, b)
			}
		}
	}
}

// TestTieredGrowth interns past the initial hot capacity and checks that
// order and Apply memo cells filled before the grow still answer
// correctly afterwards (the copy into the wider layout must preserve
// the (a,b) indexing).
func TestTieredGrowth(t *testing.T) {
	ot := baselib.Delay(1000, 2)
	tier := newTieredCap(ot, TierLimit)
	dyn := NewDynamic(ot)
	r := rand.New(rand.NewSource(99))

	// Intern the initial hot set.
	for i := 0; i < tierInitial; i++ {
		tier.intern(i)
		dyn.(*dynamic).intern(i)
	}
	// Fill memo cells while the tables are small. (Apply interns fresh
	// successor values, so the hot capacity may already double here —
	// the point is that cells filled in a narrow layout survive later
	// widenings.)
	type probe struct{ a, b int32 }
	var probes []probe
	for i := 0; i < 500; i++ {
		p := probe{int32(r.Intn(tierInitial)), int32(r.Intn(tierInitial))}
		tier.Leq(p.a, p.b)
		tier.Lt(p.a, p.b)
		tier.Apply(0, p.a)
		probes = append(probes, p)
	}

	// Trigger growth past two doublings.
	for i := tierInitial; i <= 1000; i++ {
		tier.intern(i)
		dyn.(*dynamic).intern(i)
	}
	if tier.hotSize() != 1024 {
		t.Fatalf("hot capacity after interning 1001 elements: %d, want 1024", tier.hotSize())
	}

	// Pre-growth memo cells must have moved with their coordinates.
	for _, p := range probes {
		if tier.Leq(p.a, p.b) != dyn.Leq(p.a, p.b) {
			t.Fatalf("post-grow leq(%d,%d) differs from oracle", p.a, p.b)
		}
		if tier.Lt(p.a, p.b) != dyn.Lt(p.a, p.b) {
			t.Fatalf("post-grow lt(%d,%d) differs from oracle", p.a, p.b)
		}
		if tier.Apply(0, p.a) != dyn.Apply(0, p.a) {
			t.Fatalf("post-grow apply(0,%d) differs from oracle", p.a)
		}
	}
}
