package exec

// This file holds the tiered backend: the middle rung between the
// dense-table compiled engine (carriers ≤ AutoLimit) and the pure
// interpreter. Big lex products blow past the auto-compile ceiling —
// the quadratic preorder tables stop paying — but their *working set*
// under any one topology is tiny: a solver run touches the weights
// reachable from the origins, which is orders of magnitude smaller
// than the carrier. The tiered engine therefore compiles the hot
// sub-carrier on first touch: weights are hash-consed exactly like the
// dynamic backend (so index assignment — and with it every solver
// result — is bit-identical to pure interpretation), and the first
// TierLimit indices get dense memo tables for Apply/Leq/Lt/Equiv that
// fill as operations run. Cold-tail weights (indices ≥ the hot
// capacity) fall back to interpreting the order transform directly.
//
// Memoization is sound because order transforms are pure: Apply and
// the preorder are deterministic value functions, and hash-consing
// already canonicalizes indices, so replaying a cached answer is
// observationally identical to recomputing it. A memo hit also cannot
// perturb index assignment: the result it replays was interned when
// the entry was filled, and a dynamic backend re-running the same
// operation would find the same value in its hash map rather than
// allocating a fresh index. The tiered-vs-dynamic differential tests
// assert this bit-identity across solvers and entry forms.
//
// Tables grow geometrically (256 → 512 → … → TierLimit square for the
// order memo) so small dynamic algebras do not pay the full ~16 MB
// footprint a saturated 4096-hot-set order table costs; growth stops
// at TierLimit and everything beyond stays interpreted.

import (
	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// TierLimit is the hot sub-carrier capacity of the tiered backend: the
// first TierLimit distinct weights touched (hash-cons order) get dense
// memo tables; later weights are interpreted. It deliberately equals
// AutoLimit — the table shapes the compiled backend proved cheap are
// exactly the ones the hot tier reuses.
const TierLimit = AutoLimit

// tierLabelCap bounds how many arc-function labels get Apply memo
// rows; algebras with infinite (sampled) function sets can present
// unbounded label values, which stay uncached past the cap.
const tierLabelCap = 4096

// tierInitial is the initial hot capacity; tables double up to
// TierLimit as the intern table grows past them.
const tierInitial = 256

// Bits of one order-memo byte (per hot (a,b) pair).
const (
	leqKnown = 1 << iota
	leqBit
	ltKnown
	ltBit
)

// tiered interprets an order transform with first-touch dense memo
// tables over the hot sub-carrier. Not safe for concurrent use (it
// interns and fills tables lazily); Concurrent wraps it like the
// dynamic backend.
type tiered struct {
	ot    *ost.OrderTransform
	elems []value.V
	index map[value.V]int32

	// hotN is the current hot capacity (≤ limit, which is TierLimit in
	// production and smaller in the cold-tail white-box tests). ord is
	// the hotN×hotN order memo; fn[label] is the per-label Apply memo
	// row (len hotN, -1 = unfilled), allocated on first use of the
	// label.
	hotN  int32
	limit int32
	ord   []uint8
	fn    [][]int32
}

// NewTiered builds the tiered backend. Like the dynamic backend it
// never fails and accepts infinite carriers and function sets; unlike
// it, the hot sub-carrier executes off dense tables once touched.
func NewTiered(t *ost.OrderTransform) Algebra {
	return newTieredCap(t, TierLimit)
}

// newTieredCap builds a tiered backend with an explicit hot-capacity
// ceiling; the white-box tests use tiny caps to exercise the cold tail
// without interning thousands of weights.
func newTieredCap(t *ost.OrderTransform, limit int32) *tiered {
	hot := int32(tierInitial)
	if hot > limit {
		hot = limit
	}
	return &tiered{
		ot:    t,
		index: make(map[value.V]int32, 16),
		hotN:  hot,
		limit: limit,
		ord:   make([]uint8, hot*hot),
	}
}

func (e *tiered) Name() string                { return e.ot.Name }
func (e *tiered) Mode() Mode                  { return ModeTiered }
func (e *tiered) Source() *ost.OrderTransform { return e.ot }
func (e *tiered) NumFns() int                 { return e.ot.F.Size() }

// grow widens the hot tables to capacity n (≤ TierLimit), copying the
// filled order rows into the wider layout and extending every
// allocated Apply row with unfilled entries.
func (e *tiered) grow(n int32) {
	old := e.hotN
	ord := make([]uint8, int(n)*int(n))
	for a := int32(0); a < old; a++ {
		copy(ord[a*n:a*n+old], e.ord[a*old:(a+1)*old])
	}
	e.ord = ord
	for i, row := range e.fn {
		if row == nil {
			continue
		}
		wider := make([]int32, n)
		copy(wider, row)
		for j := old; j < n; j++ {
			wider[j] = -1
		}
		e.fn[i] = wider
	}
	e.hotN = n
}

func (e *tiered) intern(v value.V) int32 {
	if w, ok := e.index[v]; ok {
		return w
	}
	w := int32(len(e.elems))
	e.elems = append(e.elems, v)
	e.index[v] = w
	// Keep the hot tier covering the intern table while it still fits
	// under the cap: doubling amortizes the copy, first-touch order
	// decides membership.
	if w >= e.hotN && e.hotN < e.limit {
		n := e.hotN
		for w >= n && n < e.limit {
			n *= 2
		}
		if n > e.limit {
			n = e.limit
		}
		e.grow(n)
	}
	return w
}

func (e *tiered) Intern(v value.V) (int32, error) { return e.intern(v), nil }
func (e *tiered) Value(w int32) value.V           { return e.elems[w] }

func (e *tiered) Apply(label int, w int32) int32 {
	if w < e.hotN && label < tierLabelCap {
		if label >= len(e.fn) {
			e.fn = append(e.fn, make([][]int32, label+1-len(e.fn))...)
		}
		row := e.fn[label]
		if row == nil {
			row = make([]int32, e.hotN)
			for i := range row {
				row[i] = -1
			}
			e.fn[label] = row
		}
		if out := row[w]; out >= 0 {
			return out
		}
		out := e.intern(e.ot.F.Fns[label].Apply(e.elems[w]))
		// intern may have grown the tables; re-read the row.
		e.fn[label][w] = out
		return out
	}
	return e.intern(e.ot.F.Fns[label].Apply(e.elems[w]))
}

func (e *tiered) Leq(a, b int32) bool {
	if a < e.hotN && b < e.hotN {
		cell := &e.ord[a*e.hotN+b]
		if *cell&leqKnown == 0 {
			if e.ot.Ord.Leq(e.elems[a], e.elems[b]) {
				*cell |= leqKnown | leqBit
			} else {
				*cell |= leqKnown
			}
		}
		return *cell&leqBit != 0
	}
	return e.ot.Ord.Leq(e.elems[a], e.elems[b])
}

func (e *tiered) Lt(a, b int32) bool {
	if a < e.hotN && b < e.hotN {
		cell := &e.ord[a*e.hotN+b]
		if *cell&ltKnown == 0 {
			if e.ot.Ord.Lt(e.elems[a], e.elems[b]) {
				*cell |= ltKnown | ltBit
			} else {
				*cell |= ltKnown
			}
		}
		return *cell&ltBit != 0
	}
	return e.ot.Ord.Lt(e.elems[a], e.elems[b])
}

func (e *tiered) Equiv(a, b int32) bool {
	// The stock preorders all satisfy Equiv = Leq ∧ Leq-converse (the
	// compiled backend is built on exactly that identity and the
	// engine differentials hold), but tiered serves arbitrary dynamic
	// algebras, so Equiv consults Ord.Equiv directly and only borrows
	// the memo when both directions are already cached.
	if a < e.hotN && b < e.hotN {
		ab, ba := e.ord[a*e.hotN+b], e.ord[b*e.hotN+a]
		if ab&leqKnown != 0 && ba&leqKnown != 0 {
			return ab&leqBit != 0 && ba&leqBit != 0
		}
	}
	return e.ot.Ord.Equiv(e.elems[a], e.elems[b])
}

// hotSize reports the current hot capacity (white-box tests).
func (e *tiered) hotSize() int32 { return e.hotN }
