package exec

import (
	"math/rand"
	"sync"
	"testing"

	"metarouting/internal/core"
)

func ot(t *testing.T, src string) *core.Algebra {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"auto", "dynamic", "compiled"} {
		if _, err := ParseMode(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseMode("jit"); err == nil {
		t.Fatal("bogus mode must be rejected")
	}
}

func TestForPicksCompiledForFinite(t *testing.T) {
	a := ot(t, "delay(16,2)")
	if eng := For(a.OT, 0); eng.Mode() != ModeCompiled {
		t.Fatalf("finite algebra should auto-compile, got %s", eng.Mode())
	}
}

func TestForFallsBackToTiered(t *testing.T) {
	// Infinite carrier: delay(0, k) is the unbounded delay algebra. No
	// dense tables exist for it, but the tiered backend still memoises
	// the hot sub-carrier.
	a := ot(t, "delay(0,2)")
	if eng := For(a.OT, 0); eng.Mode() != ModeTiered {
		t.Fatalf("infinite algebra must run tiered, got %s", eng.Mode())
	}
}

func TestForHonorsDefaultMode(t *testing.T) {
	a := ot(t, "delay(16,2)")
	SetDefaultMode(ModeDynamic)
	defer SetDefaultMode(ModeAuto)
	if eng := For(a.OT, 0); eng.Mode() != ModeDynamic {
		t.Fatalf("default mode dynamic must win, got %s", eng.Mode())
	}
}

func TestCompileMemoised(t *testing.T) {
	a := ot(t, "delay(32,2)")
	e1 := For(a.OT, 0)
	e2 := For(a.OT, 1)
	if e1.Mode() != ModeCompiled || e1 != e2 {
		t.Fatal("compiled engines must be memoised per order transform")
	}
}

func TestNewCompiledRejectsInfinite(t *testing.T) {
	a := ot(t, "delay(0,2)")
	if _, err := New(a.OT, ModeCompiled, 0); err == nil {
		t.Fatal("ModeCompiled must fail on infinite carriers")
	}
}

func TestDynamicInterning(t *testing.T) {
	a := ot(t, "delay(16,2)")
	eng := NewDynamic(a.OT)
	w1 := MustIntern(eng, 3)
	w2 := eng.Apply(0, MustIntern(eng, 2)) // +1 saturating: 2 → 3
	if w1 != w2 {
		t.Fatalf("equal values must intern to equal indices: %d vs %d", w1, w2)
	}
	if eng.Value(w1) != 3 {
		t.Fatalf("round-trip failed: %v", eng.Value(w1))
	}
}

// TestConcurrent: the compiled backend passes through unchanged; the
// dynamic backend gains a lock and survives concurrent interning from
// many goroutines (run under -race in CI).
func TestConcurrent(t *testing.T) {
	a, err := core.InferString("delay(64,4)")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := New(a.OT, ModeCompiled, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Concurrent(comp) != comp {
		t.Fatal("compiled backend must pass through Concurrent unchanged")
	}
	dyn := NewDynamic(a.OT)
	safe := Concurrent(dyn)
	if safe == dyn {
		t.Fatal("dynamic backend must be wrapped")
	}
	if Concurrent(safe) != safe {
		t.Fatal("Concurrent must be idempotent")
	}
	if safe.Name() != dyn.Name() || safe.Mode() != ModeDynamic || safe.NumFns() != dyn.NumFns() {
		t.Fatal("wrapper must delegate metadata")
	}
	var wg sync.WaitGroup
	for gor := 0; gor < 8; gor++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				w, err := safe.Intern(r.Intn(65))
				if err != nil {
					t.Error(err)
					return
				}
				w2 := safe.Apply(r.Intn(safe.NumFns()), w)
				safe.Leq(w, w2)
				safe.Lt(w2, w)
				safe.Equiv(w, w)
				if safe.Value(w) == nil {
					t.Error("Value returned nil")
					return
				}
			}
		}(int64(gor))
	}
	wg.Wait()
	// Semantics match the raw backend.
	fresh := NewDynamic(a.OT)
	wa, _ := safe.Intern(3)
	wb, _ := fresh.Intern(3)
	if safe.Value(wa) != fresh.Value(wb) {
		t.Fatal("wrapped and raw backends disagree")
	}
}
