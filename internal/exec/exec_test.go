package exec

import (
	"testing"

	"metarouting/internal/core"
)

func ot(t *testing.T, src string) *core.Algebra {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseMode(t *testing.T) {
	for _, s := range []string{"auto", "dynamic", "compiled"} {
		if _, err := ParseMode(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseMode("jit"); err == nil {
		t.Fatal("bogus mode must be rejected")
	}
}

func TestForPicksCompiledForFinite(t *testing.T) {
	a := ot(t, "delay(16,2)")
	if eng := For(a.OT, 0); eng.Mode() != ModeCompiled {
		t.Fatalf("finite algebra should auto-compile, got %s", eng.Mode())
	}
}

func TestForFallsBackToDynamic(t *testing.T) {
	// Infinite carrier: delay(0, k) is the unbounded delay algebra.
	a := ot(t, "delay(0,2)")
	if eng := For(a.OT, 0); eng.Mode() != ModeDynamic {
		t.Fatalf("infinite algebra must run dynamic, got %s", eng.Mode())
	}
}

func TestForHonorsDefaultMode(t *testing.T) {
	a := ot(t, "delay(16,2)")
	SetDefaultMode(ModeDynamic)
	defer SetDefaultMode(ModeAuto)
	if eng := For(a.OT, 0); eng.Mode() != ModeDynamic {
		t.Fatalf("default mode dynamic must win, got %s", eng.Mode())
	}
}

func TestCompileMemoised(t *testing.T) {
	a := ot(t, "delay(32,2)")
	e1 := For(a.OT, 0)
	e2 := For(a.OT, 1)
	if e1.Mode() != ModeCompiled || e1 != e2 {
		t.Fatal("compiled engines must be memoised per order transform")
	}
}

func TestNewCompiledRejectsInfinite(t *testing.T) {
	a := ot(t, "delay(0,2)")
	if _, err := New(a.OT, ModeCompiled, 0); err == nil {
		t.Fatal("ModeCompiled must fail on infinite carriers")
	}
}

func TestDynamicInterning(t *testing.T) {
	a := ot(t, "delay(16,2)")
	eng := NewDynamic(a.OT)
	w1 := MustIntern(eng, 3)
	w2 := eng.Apply(0, MustIntern(eng, 2)) // +1 saturating: 2 → 3
	if w1 != w2 {
		t.Fatalf("equal values must intern to equal indices: %d vs %d", w1, w2)
	}
	if eng.Value(w1) != 3 {
		t.Fatalf("round-trip failed: %v", eng.Value(w1))
	}
}
